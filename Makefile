# Single source of truth for the commands CI runs — humans and the
# workflow in .github/workflows/ci.yml invoke the same targets.

GO ?= go

# Pinned staticcheck, installed on demand through the module proxy —
# no global tool install, the version is part of the repo contract.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race race-recovery bench bench-plans bench-serve bench-tenants bench-compare bench-cluster lint fmt vet staticcheck cover

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: full test suite under the race detector (what CI gates on).
race:
	$(GO) test -race ./...

## race-recovery: the crash-recovery suite under the race detector,
## verbose output captured to recovery.log (CI uploads it). Covers
## the WAL round-trip/torn-tail/corrupt-record store tests driven by
## the faultfs injector, and the service-level kill-mid-load tests
## that require re-admission in order plus bit-identical
## re-execution.
race-recovery:
	$(GO) test -race -count=1 -v ./internal/faultfs/ > recovery.log 2>&1 \
		|| { cat recovery.log; exit 1; }
	$(GO) test -race -count=1 -v \
		-run 'Recovery|Crash|Durab|WAL|Torn|Corrupt|Snapshot|WatchDrops' \
		./internal/serve/ >> recovery.log 2>&1 \
		|| { cat recovery.log; exit 1; }
	@grep -cE '^--- PASS' recovery.log | xargs -I{} echo "recovery suite: {} tests passed (recovery.log)"

## bench: one pass over every benchmark plus the S_8 engine perf
## record (written to BENCH_engine.json), including the replay-path
## GOMAXPROCS 1→8 scaling curve. Run with BENCH_ENGINE_GATE=1 (CI's
## bench job does) to additionally fail unless parallel replay beats
## sequential replay by ≥ 1.5x at 4 procs; the gate skips itself on
## hosts with fewer than 4 CPUs, where extra procs only time-slice.
bench:
	BENCH_ENGINE_RECORD=1 $(GO) test -run TestEngineBenchRecord -count=1 .
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

## bench-plans: the compiled-route-plan perf gate. Runs multi-worker
## (GOMAXPROCS=2): writes BENCH_plans.json, fails if plan replay is
## slower than closure resolution on the S_8 sweep, then runs the
## plans parity experiment on the pooled parallel engine.
bench-plans:
	GOMAXPROCS=2 BENCH_PLANS_RECORD=1 $(GO) test -run TestPlanBenchRecord .
	GOMAXPROCS=2 $(GO) run ./cmd/experiments -run plans -engine parallel

## bench-serve: the job-service load smoke. Starts the service
## in-process and drives the closed-loop load generator — every byte
## through the typed v1 client (submit + watch streams) — with
## per-shape machine pooling on and off, a WAL-durable run and a
## bare (metrics-off) run (GOMAXPROCS=2), writes BENCH_serve.json,
## and fails if pooled throughput falls below build-per-job, the WAL
## costs more than 10% of pooled throughput, the observability layer
## costs more than 5% of bare throughput, the /v1/metrics exposition
## fails format validation, or any job result diverges from a
## standalone run.
bench-serve:
	GOMAXPROCS=2 BENCH_SERVE_GATE=1 $(GO) run ./cmd/experiments -run serve

## bench-tenants: the multi-tenant fairness gate. One hot tenant
## (weight 2, 8 closed-loop clients) floods the queue while three
## light tenants (weight 1, 3 clients each) keep working, all over
## real HTTP with per-tenant API keys. Writes BENCH_tenants.json and
## fails if a light tenant's p99 queue wait under contention exceeds
## 2x its solo baseline or any tenant's throughput share deviates
## more than 15% from its fair-queueing weight.
bench-tenants:
	GOMAXPROCS=4 BENCH_TENANTS_GATE=1 $(GO) run ./cmd/experiments -run tenants

## bench-cluster: the sharded-cluster gate. Boots three one-worker
## nodes in-process behind real HTTP listeners, drives the same
## closed-loop load through the routing client against the cluster
## and against a single identical node (GOMAXPROCS=4), writes
## BENCH_cluster.json, and fails if the cluster speedup falls below
## 1.8x, any job result diverges from a standalone run, or the
## drain exercise fails to migrate its held backlog bit-identically.
## The speedup gate skips itself on hosts with fewer than 4 CPUs.
bench-cluster:
	GOMAXPROCS=4 BENCH_CLUSTER_GATE=1 $(GO) run ./cmd/experiments -run cluster

## bench-compare: the interval bench-regression gate. Repeats the
## S_8 sweep (default 5 reps), writes the min/median/max interval to
## BENCH_compare_new.json and fails only when the fresh throughput
## interval falls wholly below the committed BENCH_compare.json
## baseline interval (scaled by BENCH_COMPARE_MARGIN; no
## single-number flake gating).
bench-compare:
	GOMAXPROCS=2 BENCH_COMPARE_GATE=1 $(GO) run ./cmd/experiments -run bench-compare

## lint: gofmt divergence fails the build; vet and staticcheck catch
## the rest.
lint: vet staticcheck
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

vet:
	$(GO) vet ./...

staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

## cover: whole-module coverage profile + per-package floors for the
## scenario registry, the job service, the typed v1 client and the
## metrics core (whose exposition format other tools parse — it gets
## the highest floor). CI uploads coverage.out.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
	$(GO) run ./cmd/covercheck -profile coverage.out \
		-floor starmesh/internal/workload=70 \
		-floor starmesh/internal/serve=94 \
		-floor starmesh/client=80 \
		-floor starmesh/internal/obs=90

fmt:
	gofmt -w .
