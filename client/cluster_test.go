// Cluster routing suite: a real 3-node in-process cluster (three
// services behind httptest listeners sharing one map) driven through
// the routing client — ownership determinism, the full job lifecycle
// by cluster id, merged pagination's exactly-once walk under
// concurrent finishes, the scatter-gather stats merge, batch
// grouping with rollback, and drain-with-migration parity.
package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starmesh/internal/cluster"
	"starmesh/internal/serve"
	"starmesh/internal/workload"
)

// newTestCluster spins up n services behind httptest listeners,
// wires them into one cluster map, and returns the routing client
// plus the per-node services (keyed n1..nN).
func newTestCluster(t *testing.T, n int, cfg serve.Config, opts ...Option) (*ClusterClient, map[string]*serve.Service) {
	t.Helper()
	m := cluster.Map{VNodes: 32}
	services := make(map[string]*serve.Service, n)
	for i := 0; i < n; i++ {
		name := "n" + string(rune('1'+i))
		svc, err := serve.NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = svc.Shutdown(ctx)
		})
		m.Nodes = append(m.Nodes, cluster.Node{Name: name, URL: ts.URL})
		services[name] = svc
	}
	for name, svc := range services {
		if err := svc.SetCluster(name, m); err != nil {
			t.Fatal(err)
		}
	}
	cc, err := NewCluster(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cc, services
}

// specMix returns quick specs spanning several pool shapes
// (stargraph:4, stargraph:8, star:4 twice, star:6, none) so
// ownership spreads across the cluster without any long-running job.
func specMix(count int) []JobSpec {
	shapes := []JobSpec{
		{Kind: "faultroute", N: 4, Faults: 1, Pairs: 2},
		{Kind: "faultroute", N: 8, Faults: 2, Pairs: 2},
		{Kind: "sort", N: 4, Dist: "reversed"},
		{Kind: "sweep", N: 4, Trials: 2},
		{Kind: "sweep", N: 6, Trials: 2},
		{Kind: "permroute", N: 4, Pattern: "random"},
	}
	specs := make([]JobSpec, count)
	for i := range specs {
		specs[i] = shapes[i%len(shapes)]
		specs[i].Seed = int64(i + 1)
	}
	return specs
}

// slowClusterSpec is a multi-hundred-millisecond job (a star:8
// diagnostic sweep; ~15ms per trial once the graph pool is warm) —
// enough wall time per job that a single-worker node holds a queued
// backlog while a test acts on it.
func slowClusterSpec(seed int64) JobSpec {
	return JobSpec{Kind: "sweep", N: 8, Trials: 20, Seed: seed}
}

func TestClusterSubmitRoutesByShape(t *testing.T) {
	cc, services := newTestCluster(t, 3, serve.Config{Workers: 2, Queue: 64})
	ctx := context.Background()

	// DialCluster from any node must agree with the direct map.
	info, ok := services["n2"].Cluster()
	if !ok {
		t.Fatal("node not clustered")
	}
	booted, err := NewCluster(info.Map)
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[string]string)
	for _, spec := range specMix(24) {
		job, err := cc.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		node, _, ok := cluster.SplitID(job.ID)
		if !ok {
			t.Fatalf("job id %q not qualified", job.ID)
		}
		// Same shape always lands on the same node, and any client
		// computing from the same map picks the same owner.
		if prev, seen := owners[job.Shape]; seen && prev != node {
			t.Fatalf("shape %s split across %s and %s", job.Shape, prev, node)
		}
		owners[job.Shape] = node
		if bootNode, _, err := booted.ownerOf(spec); err != nil || bootNode != node {
			t.Fatalf("bootstrapped client owner %q != %q", bootNode, node)
		}
		final, err := cc.Await(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != StatusDone || final.ID != job.ID {
			t.Fatalf("job %s ended %s (%s)", job.ID, final.Status, final.Error)
		}
		// Reads by cluster id hit the right node.
		got, err := cc.Get(ctx, job.ID)
		if err != nil || got.Status != StatusDone {
			t.Fatalf("get %s: %+v %v", job.ID, got.Status, err)
		}
		tr, err := cc.Trace(ctx, job.ID)
		if err != nil || len(tr) == 0 || tr[0].Event != TraceSubmitted {
			t.Fatalf("trace %s: %v %v", job.ID, tr, err)
		}
	}
	if len(owners) < 2 {
		t.Fatalf("all %d shapes landed on one node — ring not spreading", len(owners))
	}
	// Unknown node prefix and unqualified ids fail loudly.
	if _, err := cc.Get(ctx, "nope/job-000001"); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("unknown node err = %v", err)
	}
	if _, err := cc.Get(ctx, "job-000001"); err == nil {
		t.Fatal("unqualified id should fail")
	}
}

// The satellite guarantee: a merged ListAll walk with interleaved
// page fetches yields every job exactly once while jobs are
// finishing concurrently between pages.
func TestClusterMergedPaginationExactlyOnce(t *testing.T) {
	// Workers run DURING the walk, so statuses flip between page
	// fetches; sweep trials keep each job alive a little while.
	cc, _ := newTestCluster(t, 3, serve.Config{Workers: 1, Queue: 128})
	ctx := context.Background()

	specs := specMix(60)
	want := make(map[string]bool, len(specs))
	for _, spec := range specs {
		job, err := cc.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		want[job.ID] = true
	}
	// Small pages force many cursor hops; a sleep between pages lets
	// more jobs finish mid-walk.
	got := make(map[string]int)
	opts := ListOptions{Limit: 7}
	pages := 0
	for {
		page, err := cc.List(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, j := range page.Jobs {
			got[j.ID]++
			node, _, ok := cluster.SplitID(j.ID)
			if !ok || node == "" {
				t.Fatalf("listing leaked unqualified id %q", j.ID)
			}
		}
		if page.NextCursor == "" {
			break
		}
		opts.Cursor = page.NextCursor
		time.Sleep(2 * time.Millisecond)
	}
	if pages < 3 {
		t.Fatalf("walk took %d pages — not exercising the cursor", pages)
	}
	for id := range want {
		if got[id] != 1 {
			t.Fatalf("job %s seen %d times, want exactly once", id, got[id])
		}
	}
	for id := range got {
		if !want[id] {
			t.Fatalf("walk invented job %s", id)
		}
	}
	// Await everything so cleanup is quick.
	for id := range want {
		if _, err := cc.Await(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	all, err := cc.ListAll(ctx, ListOptions{Status: StatusDone, Limit: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(want) {
		t.Fatalf("ListAll(done) = %d jobs, want %d", len(all), len(want))
	}
}

func TestClusterStatsMerge(t *testing.T) {
	cc, services := newTestCluster(t, 3, serve.Config{Workers: 2, Queue: 64})
	ctx := context.Background()

	var ids []string
	for _, spec := range specMix(18) {
		job, err := cc.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		if _, err := cc.Await(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 18 {
		t.Fatalf("merged done = %d, want 18", st.Done)
	}
	var wantRoutes int64
	perNodeDone := 0
	for _, svc := range services {
		s := svc.Stats()
		wantRoutes += s.UnitRoutes
		perNodeDone += s.Done
	}
	if st.UnitRoutes != wantRoutes || perNodeDone != 18 {
		t.Fatalf("merged routes %d vs per-node sum %d (done sum %d)", st.UnitRoutes, wantRoutes, perNodeDone)
	}
	if st.Workers != 6 || st.Durability.Store != "cluster" {
		t.Fatalf("merged config view: %+v", st)
	}
	// The anonymous tenant's merged leaderboard row covers the whole
	// cluster, with a rank interval computed from merged counts.
	if len(st.Tenants) != 1 {
		t.Fatalf("tenants: %+v", st.Tenants)
	}
	row := st.Tenants[0]
	if row.Jobs != 18 || row.Rank != 1 || row.RankLo != 1 || row.RankHi != 1 {
		t.Fatalf("merged tenant row: %+v", row)
	}
	if row.ThroughputLo >= row.ThroughputJobsPerSec || row.ThroughputHi <= row.ThroughputJobsPerSec {
		t.Fatalf("degenerate Poisson interval: %+v", row)
	}
}

func TestClusterSubmitBatchGroupsAndRollsBack(t *testing.T) {
	cc, _ := newTestCluster(t, 3, serve.Config{Workers: 1, Queue: 4})
	ctx := context.Background()

	// A small mixed batch fits every node's queue: admitted in spec
	// order with qualified ids.
	specs := specMix(4)
	jobs, err := cc.SubmitBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("batch returned %d jobs", len(jobs))
	}
	for i, j := range jobs {
		if _, _, ok := cluster.SplitID(j.ID); !ok {
			t.Fatalf("batch job %d id %q unqualified", i, j.ID)
		}
		if j.Spec.Seed != specs[i].Seed {
			t.Fatalf("batch order broken at %d", i)
		}
		if _, err := cc.Await(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
	}

	// A batch whose later group can never fit its owner's queue
	// (bigger than capacity) fails, and the earlier groups' jobs are
	// rolled back — none left queued or running to completion.
	var overload []JobSpec
	head := JobSpec{Kind: "faultroute", N: 4, Faults: 1, Pairs: 2, Seed: 100}
	overload = append(overload, head)
	victim := slowClusterSpec(0) // slow: keeps its owner's queue full
	for i := 0; i < 6; i++ {     // queue cap is 4
		v := victim
		v.Seed = int64(200 + i)
		overload = append(overload, v)
	}
	headNode, _, err := cc.ownerOf(head)
	if err != nil {
		t.Fatal(err)
	}
	victimNode, _, err := cc.ownerOf(victim)
	if err != nil {
		t.Fatal(err)
	}
	if headNode == victimNode {
		t.Skip("shapes landed on one node for this map; rollback path not reachable")
	}
	if _, err := cc.SubmitBatch(ctx, overload); err == nil {
		t.Fatal("overloaded batch should fail")
	} else if !strings.Contains(err.Error(), "earlier groups canceled") {
		t.Fatalf("batch error = %v", err)
	}
}

// Drain-with-migration end to end: a node with a held backlog drains,
// its queued jobs land on survivors, and every migrated job's result
// is bit-identical to a standalone run of the same spec.
func TestClusterDrainMigratesBacklog(t *testing.T) {
	// One worker per node + slow star:8 sweeps (~300ms each, all one
	// shape so one owner) guarantee a queued backlog when the drain
	// fires; a few quick mixed jobs ride along to other nodes.
	cc, services := newTestCluster(t, 3, serve.Config{Workers: 1, Queue: 128})
	ctx := context.Background()

	specs := specMix(6)
	for i := 0; i < 8; i++ {
		specs = append(specs, slowClusterSpec(int64(1000+i)))
	}
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		job, err := cc.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	// Drain the node owning the sweep backlog.
	drained, _, _ := cluster.SplitID(ids[len(ids)-1])
	migrated, err := cc.Drain(ctx, drained)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Nodes()) != 2 {
		t.Fatalf("client still routes %d nodes after drain", len(cc.Nodes()))
	}
	for _, n := range cc.Nodes() {
		if n == drained {
			t.Fatal("drained node still in the routing membership")
		}
	}
	// Migrated successors must live on survivors and reproduce the
	// original spec's results exactly.
	newID := make(map[string]string, len(migrated))
	for _, mj := range migrated {
		node, _, _ := cluster.SplitID(mj.To)
		if node == drained {
			t.Fatalf("migrated job %s resubmitted to the drained node", mj.To)
		}
		newID[mj.From] = mj.To
	}
	finals := 0
	for _, id := range ids {
		target, wasMigrated := newID[id]
		if !wasMigrated {
			target = id
		}
		node, local, _ := cluster.SplitID(target)
		svc := services[node]
		var final Job
		if node == drained {
			// Ran (or is finishing) on the draining node: its listener
			// may already be gone, so await in-process.
			deadline := time.Now().Add(30 * time.Second)
			for {
				j, ok := svc.Job(local)
				if !ok {
					t.Fatalf("job %s lost on draining node", target)
				}
				if j.Status.Terminal() {
					final = j
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s stuck %s on draining node", target, j.Status)
				}
				time.Sleep(time.Millisecond)
			}
		} else {
			var err error
			final, err = cc.Await(ctx, target)
			if err != nil {
				t.Fatalf("await %s: %v", target, err)
			}
		}
		if final.Status != StatusDone {
			t.Fatalf("job %s ended %s (%s)", target, final.Status, final.Error)
		}
		sc, err := workload.ScenarioFor(final.Spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sc.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if final.Result.UnitRoutes != want.UnitRoutes || final.Result.Conflicts != want.Conflicts || !final.Result.OK {
			t.Fatalf("job %s diverged from standalone run: %+v != %+v", target, final.Result, want)
		}
		if wasMigrated {
			finals++
			// The drained node's copy is locally terminal with the
			// migration marker.
			_, oldLocal, _ := cluster.SplitID(id)
			old, ok := services[drained].Job(oldLocal)
			if !ok || old.Status != StatusCanceled || old.Error != serve.MigratedError {
				t.Fatalf("drained copy of %s: %+v", id, old)
			}
		}
	}
	if len(migrated) == 0 {
		t.Fatal("drain migrated nothing — backlog was not held")
	}
	if finals != len(migrated) {
		t.Fatalf("verified %d migrated jobs, want %d", finals, len(migrated))
	}
}
