// Package client is the typed Go client of the starmesh job
// service's v1 API. It is the single supported way to talk to the
// service over HTTP: the CLI's remote subcommands, the load
// generator and the examples all dispatch through it, and the wire
// types are shared with the server (type aliases), so client and
// service can never disagree about the contract.
//
//	c := client.New("http://localhost:8080")
//	job, err := c.Submit(ctx, client.JobSpec{Kind: "sort", N: 5, Seed: 42})
//	final, err := c.Await(ctx, job.ID)
//
// Submissions transparently retry on 429 backpressure, honoring the
// server's Retry-After header and jittering the exponential backoff
// otherwise (see WithMaxRetries / WithBackoff / WithJitter).
// Every non-2xx response becomes a *client.APIError carrying the
// service's typed error code.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"starmesh/internal/serve"
)

// Client talks to one starmesh job service.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
	jitter     func(d time.Duration) time.Duration
	sleep      func(ctx context.Context, d time.Duration) error
	onBackoff  func(d time.Duration)
	apiKey     string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient-equivalent with no special timeouts; watch
// streams are long-lived, so avoid a global client timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds 429 retries per call (default 4; negative
// retries forever — closed-loop drivers that want admission to
// eventually succeed).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the base retry delay used when the server sends
// no Retry-After header (default 100ms, doubling per attempt, capped
// at 2s; each sleep is jittered — see WithJitter).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithJitter substitutes the backoff jitter applied to each
// exponential retry sleep. The default is equal jitter — a delay d
// sleeps uniformly in [d/2, d] — which decorrelates the retry storm
// a fleet of clients raises after a service restart (everyone's
// first retry would otherwise land exactly backoff later, exactly
// when recovery is re-admitting a full queue). Identity (func(d)
// time.Duration { return d }) restores the deterministic pre-jitter
// schedule; server-sent Retry-After waits are honored verbatim and
// never jittered.
func WithJitter(fn func(d time.Duration) time.Duration) Option {
	return func(c *Client) { c.jitter = fn }
}

// WithSleep substitutes the retry sleeper — tests inject a fake
// clock, load harnesses a fast poll. The sleeper must honor ctx.
func WithSleep(fn func(ctx context.Context, d time.Duration) error) Option {
	return func(c *Client) { c.sleep = fn }
}

// WithBackpressureHook registers a callback invoked once per 429
// received (before the retry sleep) — load generators count the
// backpressure they provoke.
func WithBackpressureHook(fn func(d time.Duration)) Option {
	return func(c *Client) { c.onBackoff = fn }
}

// WithAPIKey sends the key as X-API-Key on every request, selecting
// the tenant whose rate limits, queue quota and fair-queueing weight
// govern this client's traffic. Without a key the client is the
// shared anonymous tenant (rejected outright when the server runs
// with require_key).
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080"). The client always speaks the /v1 routes.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       baseURL,
		hc:         &http.Client{},
		maxRetries: 4,
		backoff:    100 * time.Millisecond,
	}
	c.jitter = func(d time.Duration) time.Duration {
		if d <= 1 {
			return d
		}
		half := d / 2
		return half + rand.N(half+1)
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Submit admits one job spec, returning its queued snapshot. 429
// responses are retried per the client's retry policy.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (Job, error) {
	var job Job
	err := c.doRetry(ctx, http.MethodPost, "/v1/jobs", spec, &job)
	return job, err
}

// SubmitBatch admits several specs atomically: every spec becomes a
// queued job (returned in spec order) or none does — one invalid
// spec rejects the whole batch with an APIError whose Details name
// each offending index.
func (c *Client) SubmitBatch(ctx context.Context, specs []JobSpec) ([]Job, error) {
	var resp serve.BatchResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/jobs:batch", serve.BatchRequest{Specs: specs}, &resp)
	return resp.Jobs, err
}

// Get returns a job snapshot by id.
func (c *Client) Get(ctx context.Context, id string) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job)
	return job, err
}

// ListOptions filters and paginates List.
type ListOptions struct {
	// Status keeps only jobs in that state ("" = all).
	Status Status
	// Limit is the page size (0 = server default of 100).
	Limit int
	// Cursor resumes a walk from a previous page's NextCursor.
	Cursor string
}

// List returns one page of the job listing, newest first. Walk the
// full listing by feeding each page's NextCursor back in (or use
// ListAll).
func (c *Client) List(ctx context.Context, opts ListOptions) (JobPage, error) {
	q := url.Values{}
	if opts.Status != "" {
		q.Set("status", string(opts.Status))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page JobPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// ListAll walks the cursor chain to exhaustion and returns every
// matching job, newest first.
func (c *Client) ListAll(ctx context.Context, opts ListOptions) ([]Job, error) {
	var all []Job
	for {
		page, err := c.List(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, page.Jobs...)
		if page.NextCursor == "" {
			return all, nil
		}
		opts.Cursor = page.NextCursor
	}
}

// Cancel aborts a job: queued jobs cancel immediately, running jobs
// at their next cooperative checkpoint (the returned snapshot may
// still show running with cancel_requested; Watch or Await observes
// the terminal transition). Terminal jobs return a conflict
// (IsTerminal).
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &job)
	return job, err
}

// Trace returns a job's trace timeline — the ordered lifecycle
// events (submitted, claimed, machine_ready, … terminal status) with
// per-step durations. A convenience over Get for callers that only
// want the timeline.
func (c *Client) Trace(ctx context.Context, id string) ([]TraceEvent, error) {
	job, err := c.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	return job.Trace, nil
}

// Metrics returns the service's Prometheus text exposition
// (GET /v1/metrics) verbatim. A service running with metrics
// disabled answers 404 (IsNotFound).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", apiErrorFrom(resp, data)
	}
	return string(data), nil
}

// Stats returns the aggregated service view.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Healthz probes the service. A draining service answers 503 but
// with a well-formed Health body, so Healthz returns the decoded
// Health value AND a draining-coded APIError — callers distinguish
// "down" (error only) from "draining" (both).
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	if err != nil {
		if api := AsAPIError(err); api != nil && api.Status == http.StatusServiceUnavailable {
			// The 503 body is the Health document itself, not an error
			// envelope.
			if jsonErr := json.Unmarshal([]byte(api.Message), &h); jsonErr == nil && h.Draining {
				api.Code = CodeDraining
			}
		}
	}
	return h, err
}

// Await watches a job to its terminal status and returns the final
// snapshot — a convenience over Watch.
func (c *Client) Await(ctx context.Context, id string) (Job, error) {
	w, err := c.Watch(ctx, id)
	if err != nil {
		return Job{}, err
	}
	defer w.Close()
	var last Job
	for {
		j, err := w.Next()
		if err == io.EOF {
			if !last.Status.Terminal() {
				return last, fmt.Errorf("client: watch stream of %s ended before a terminal status (%s)", id, last.Status)
			}
			return last, nil
		}
		if err != nil {
			return last, err
		}
		last = j
		if last.Status.Terminal() {
			return last, nil
		}
	}
}

// do issues one request; body (when non-nil) is sent as JSON and the
// response decoded into out. Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiErrorFrom(resp, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// doRetry is do with the 429 retry loop: sleep per Retry-After (or
// exponential backoff), up to maxRetries additional attempts
// (negative = unbounded).
func (c *Client) doRetry(ctx context.Context, method, path string, body, out any) error {
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		err := c.do(ctx, method, path, body, out)
		api := AsAPIError(err)
		if api == nil || api.Status != http.StatusTooManyRequests {
			return err
		}
		if c.maxRetries >= 0 && attempt >= c.maxRetries {
			return err
		}
		wait := delay
		if api.RetryAfter > 0 {
			// The server named a wait: honor it verbatim.
			wait = api.RetryAfter
		} else {
			// Exponential backoff, jittered so simultaneous retriers
			// spread out instead of re-colliding in lockstep.
			wait = c.jitter(delay)
			delay *= 2
			if delay > 2*time.Second {
				delay = 2 * time.Second
			}
		}
		if c.onBackoff != nil {
			c.onBackoff(wait)
		}
		if err := c.sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// apiErrorFrom decodes the service's structured error envelope,
// falling back to the raw body for non-conforming responses.
func apiErrorFrom(resp *http.Response, data []byte) *APIError {
	api := &APIError{Status: resp.StatusCode}
	var body serve.ErrorBody
	if err := json.Unmarshal(data, &body); err == nil && body.Error.Code != "" {
		api.Code = body.Error.Code
		api.Message = body.Error.Message
		api.Details = body.Error.Details
	} else {
		api.Code = serve.CodeInternal
		api.Message = string(data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			api.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return api
}
