// Watch auto-reconnect suite: scripted stream handlers that die
// mid-flight, so the reconnect path is exercised deterministically —
// resume after a dropped connection, replay suppression, retry
// budget exhaustion, and a structured error on reconnect.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"starmesh/internal/serve"
)

// fastSleep removes real backoff waits from reconnect tests.
func fastSleep() Option {
	return WithSleep(func(ctx context.Context, d time.Duration) error { return ctx.Err() })
}

func watchSnap(t *testing.T, w http.ResponseWriter, j Job) {
	t.Helper()
	if err := json.NewEncoder(w).Encode(j); err != nil {
		t.Error(err)
	}
	w.(http.Flusher).Flush()
}

// A stream that dies after the running snapshot must resume
// transparently: the second connection replays queued+running (both
// suppressed) and delivers the terminal state. The caller sees
// queued, running, done — each exactly once.
func TestWatchReconnectsAndResumes(t *testing.T) {
	var attempts atomic.Int32
	job := Job{ID: "job-000001", Status: StatusQueued}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/job-000001/watch", func(w http.ResponseWriter, r *http.Request) {
		switch attempts.Add(1) {
		case 1:
			watchSnap(t, w, job)
			running := job
			running.Status = StatusRunning
			watchSnap(t, w, running)
			// Handler returns mid-lifecycle: the chunked stream ends
			// without a terminal snapshot — a transient disconnect.
		default:
			// The replay a real server sends: current state first.
			running := job
			running.Status = StatusRunning
			watchSnap(t, w, running)
			done := job
			done.Status = StatusDone
			watchSnap(t, w, done)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, fastSleep())
	w, err := c.Watch(context.Background(), "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var seen []Status
	for {
		j, err := w.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v (after %v)", err, seen)
		}
		seen = append(seen, j.Status)
		if j.Status.Terminal() {
			break
		}
	}
	want := []Status{StatusQueued, StatusRunning, StatusDone}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("saw %v, want %v", seen, want)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d connections, want 2", got)
	}
}

// A reconnect answered with a structured error (the job is gone —
// e.g. its node restarted on a memory store) surfaces as an APIError
// instead of retrying forever.
func TestWatchReconnectSurfacesAPIError(t *testing.T) {
	var attempts atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/job-000001/watch", func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			watchSnap(t, w, Job{ID: "job-000001", Status: StatusRunning})
			return
		}
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"job job-000001 gone"}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	w, err := New(ts.URL, fastSleep()).Watch(context.Background(), "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Next(); err != nil {
		t.Fatalf("first snapshot: %v", err)
	}
	_, err = w.Next()
	api := AsAPIError(err)
	if api == nil || !IsNotFound(err) {
		t.Fatalf("Next after dead job = %v, want not_found APIError", err)
	}
}

// A stream that reconnects successfully but never makes progress
// (same stale snapshot, then dies) must exhaust the stall budget and
// error out rather than livelock.
func TestWatchStalledStreamGivesUp(t *testing.T) {
	var attempts atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/job-000001/watch", func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		watchSnap(t, w, Job{ID: "job-000001", Status: StatusQueued})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	w, err := New(ts.URL, fastSleep()).Watch(context.Background(), "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if j, err := w.Next(); err != nil || j.Status != StatusQueued {
		t.Fatalf("first snapshot = %+v, %v", j, err)
	}
	if _, err := w.Next(); err == nil {
		t.Fatal("stalled stream should eventually error")
	}
	if got := attempts.Load(); got < 2 || got > watchMaxReconnects+2 {
		t.Fatalf("server saw %d connections, want a bounded retry burst", got)
	}
}

// Canceling the watch context mid-gap stops the reconnect loop with
// the context's error.
func TestWatchReconnectHonorsContext(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/job-000001/watch", func(w http.ResponseWriter, r *http.Request) {
		watchSnap(t, w, Job{ID: "job-000001", Status: StatusQueued})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	w, err := New(ts.URL, fastSleep()).Watch(ctx, "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := w.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
}

// End-to-end against a real service: a watch opened before the
// terminal transition still completes if its first connection is
// torn down by an idle proxy — simulated by closing the watcher's
// transport mid-stream via a one-shot breaking RoundTripper.
func TestWatchReconnectAgainstRealService(t *testing.T) {
	_, c := newTestService(t, serve.Config{Workers: 2, Queue: 16})
	ctx := context.Background()
	job, err := c.Submit(ctx, quickSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Await(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %s", final.Status)
	}
	// Watch after terminal: one snapshot then EOF — the reconnect
	// logic must not fire on a cleanly-closed finished stream.
	w, err := c.Watch(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if j, err := w.Next(); err != nil || j.Status != StatusDone {
		t.Fatalf("terminal snapshot = %+v, %v", j, err)
	}
	if _, err := w.Next(); err != io.EOF {
		t.Fatalf("after terminal = %v, want io.EOF", err)
	}
}
