package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"starmesh/internal/serve"
)

// TestStatsAndOptions covers the remaining client surface: Stats,
// the HTTP-client and backoff options, exponential backoff without a
// Retry-After header, and the Watch error path.
func TestStatsAndOptions(t *testing.T) {
	_, c := newTestService(t, serve.Config{Workers: 1, Queue: 8})
	ctx := context.Background()

	job, err := c.Submit(ctx, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || len(st.Kinds) != 1 || st.Kinds[0].Kind != "faultroute" {
		t.Fatalf("stats wrong: %+v", st)
	}

	// Watch of an unknown job is a typed 404.
	if _, err := c.Watch(ctx, "job-999999"); !IsNotFound(err) {
		t.Fatalf("watch of unknown job returned %v, want not_found", err)
	}
	// Await inherits it.
	if _, err := c.Await(ctx, "job-999999"); !IsNotFound(err) {
		t.Fatalf("await of unknown job returned %v, want not_found", err)
	}
}

func TestBackoffDoublesWithoutRetryAfter(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 3 {
			// No Retry-After header: the client falls back to its
			// exponential backoff.
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.ErrorBody{Error: serve.ErrorInfo{
				Code: serve.CodeQueueFull, Message: "full"}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(Job{ID: "job-000001", Status: StatusQueued})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL,
		WithHTTPClient(&http.Client{}),
		WithBackoff(10*time.Millisecond),
		WithJitter(func(d time.Duration) time.Duration { return d }), // pin the envelope
		client429Sleeper(&slept))
	if _, err := c.Submit(context.Background(), quickSpec(1)); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (doubling)", i, slept[i], want[i])
		}
	}
}

// TestBackoffJitterBounds pins the default jitter: every exponential
// sleep lands in [d/2, d] of its envelope, and the draws are not all
// identical — the property that breaks up a post-restart thundering
// herd (many clients retrying in lockstep would otherwise all
// re-knock exactly backoff later, right as crash recovery re-admits
// a full queue).
func TestBackoffJitterBounds(t *testing.T) {
	c := New("http://unused")
	const d = 100 * time.Millisecond
	distinct := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		got := c.jitter(d)
		if got < d/2 || got > d {
			t.Fatalf("jitter(%v) = %v, want within [%v, %v]", d, got, d/2, d)
		}
		distinct[got] = true
	}
	if len(distinct) < 2 {
		t.Fatal("200 jitter draws were all identical — no jitter at all")
	}
	// Degenerate envelopes pass through unperturbed.
	if got := c.jitter(1); got != 1 {
		t.Fatalf("jitter(1ns) = %v, want 1ns", got)
	}
}

func TestAPIErrorRendering(t *testing.T) {
	err := &APIError{Status: 429, Code: CodeQueueFull, Message: "queue full"}
	if msg := err.Error(); msg == "" || !IsQueueFull(err) {
		t.Fatalf("APIError surface broken: %q", msg)
	}
	if AsAPIError(context.Canceled) != nil {
		t.Fatal("transport error classified as APIError")
	}
}
