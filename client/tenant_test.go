// Tenant-facing client tests: WithAPIKey threads X-API-Key through
// every call, per-tenant rate limits back off independently (one
// tenant's empty bucket never slows another's client), and the typed
// unauthorized/rate_limited predicates match the server's taxonomy.
package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"starmesh/internal/serve"
)

// newTenantService spins up a service with a tenant registry and
// returns the server URL for per-key clients.
func newTenantService(t *testing.T, cfg serve.Config) string {
	t.Helper()
	svc, err := serve.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return ts.URL
}

// TestPerTenantRateLimitIndependence drives two keyed clients into
// one service: tenant a's bucket holds a single token refilled at
// 0.001/s, tenant b is unlimited. a's client must burn its retry
// budget sleeping exactly the server-computed Retry-After (1000s at
// that rate, observed by a fake clock) and surface rate_limited —
// while b's client, talking to the same server the whole time, never
// sleeps at all.
func TestPerTenantRateLimitIndependence(t *testing.T) {
	url := newTenantService(t, serve.Config{Workers: 1, Queue: 16,
		Tenants: []serve.TenantConfig{
			{Name: "a", Key: "key-a", RatePerSec: 0.001, Burst: 1},
			{Name: "b", Key: "key-b", Weight: 2},
		}})
	ctx := context.Background()

	var sleptA, sleptB []time.Duration
	ca := New(url, WithAPIKey("key-a"), WithMaxRetries(2), client429Sleeper(&sleptA))
	cb := New(url, WithAPIKey("key-b"), client429Sleeper(&sleptB))

	// a's burst token admits one job, attributed to tenant a.
	job, err := ca.Submit(ctx, quickSpec(1))
	if err != nil {
		t.Fatalf("burst submit: %v", err)
	}
	if job.Tenant != "a" {
		t.Fatalf("job tenant %q, want a", job.Tenant)
	}

	// The bucket is empty for the next ~1000s: the client retries on
	// the server's Retry-After, exhausts its budget, and reports the
	// typed rate_limited — distinct from queue_full backpressure.
	_, err = ca.Submit(ctx, quickSpec(2))
	if !IsRateLimited(err) {
		t.Fatalf("empty-bucket submit returned %v, want rate_limited", err)
	}
	if IsQueueFull(err) {
		t.Fatal("rate_limited must not read as queue_full")
	}
	if len(sleptA) != 2 || sleptA[0] != 1000*time.Second || sleptA[1] != 1000*time.Second {
		t.Fatalf("a's fake clock recorded %v, want [1000s 1000s] from the computed Retry-After", sleptA)
	}

	// b's client shares the server but not the bucket: every submit
	// lands first try, no backoff, correct attribution.
	for seed := int64(10); seed < 13; seed++ {
		job, err := cb.Submit(ctx, quickSpec(seed))
		if err != nil {
			t.Fatalf("tenant b submit: %v", err)
		}
		if job.Tenant != "b" {
			t.Fatalf("job tenant %q, want b", job.Tenant)
		}
	}
	if len(sleptB) != 0 {
		t.Fatalf("tenant b slept %v behind a's rate limit", sleptB)
	}
}

// TestClientUnauthorized pins the 401 path: under require_key a
// keyless client and a wrong-key client both get the typed
// unauthorized error, which the retry loop must not retry.
func TestClientUnauthorized(t *testing.T) {
	url := newTenantService(t, serve.Config{Workers: 1, Queue: 8, RequireKey: true,
		Tenants: []serve.TenantConfig{{Name: "ci", Key: "key-ci"}}})
	ctx := context.Background()

	var slept []time.Duration
	for _, key := range []string{"", "wrong"} {
		c := New(url, WithAPIKey(key), WithMaxRetries(5), client429Sleeper(&slept))
		if _, err := c.Submit(ctx, quickSpec(1)); !IsUnauthorized(err) {
			t.Fatalf("key %q returned %v, want unauthorized", key, err)
		}
	}
	if len(slept) != 0 {
		t.Fatalf("client retried a 401 %d times — unauthorized is not transient", len(slept))
	}

	// The real key works, and the whole lifecycle stays keyed: Await
	// polls and the result lands under the tenant.
	c := New(url, WithAPIKey("key-ci"))
	job, err := c.Submit(ctx, quickSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if job, err = c.Await(ctx, job.ID); err != nil || job.Status != StatusDone || job.Tenant != "ci" {
		t.Fatalf("keyed lifecycle: %+v, %v", job, err)
	}
}
