// Watch: the push-style job observer over GET /v1/jobs/{id}/watch.
// The server streams newline-delimited JSON snapshots — the current
// state first, then every status transition — and ends the stream
// after the terminal one.
//
// A watch is long-lived, so the stream can die mid-flight for
// transient reasons (connection reset, proxy idle timeout, a node
// restarting). The Watcher reconnects automatically with capped,
// jittered backoff and resumes from the last seen status: on
// reconnect the server replays the current snapshot, and the Watcher
// suppresses anything the caller has already seen, so Next delivers
// each state at most once and never goes backward. Only a
// structured API error on reconnect (job gone, node unclustered) or
// exhausted retries surface to the caller.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Watcher reads one job's status transitions from the server's
// ndjson stream, transparently reconnecting across transient stream
// errors. Close releases the connection; canceling the ctx passed to
// Watch does too.
type Watcher struct {
	c    *Client
	ctx  context.Context
	id   string
	body io.ReadCloser
	dec  *json.Decoder
	last Job
	seen bool
	// stalls counts consecutive reconnects that delivered no snapshot
	// — a stream that keeps accepting the connection and dying before
	// sending anything must eventually error out, not livelock.
	stalls int
}

// Watch opens a transition stream for a job. The first Next returns
// the job's current snapshot immediately; subsequent calls block
// until the next transition. Next returns io.EOF after the terminal
// snapshot has been delivered.
func (c *Client) Watch(ctx context.Context, id string) (*Watcher, error) {
	w := &Watcher{c: c, ctx: ctx, id: id}
	if err := w.connect(); err != nil {
		return nil, err
	}
	return w, nil
}

// connect opens (or reopens) the stream.
func (w *Watcher) connect() error {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodGet,
		w.c.base+"/v1/jobs/"+url.PathEscape(w.id)+"/watch", nil)
	if err != nil {
		return err
	}
	if w.c.apiKey != "" {
		req.Header.Set("X-API-Key", w.c.apiKey)
	}
	resp, err := w.c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return apiErrorFrom(resp, data)
	}
	w.body = resp.Body
	w.dec = json.NewDecoder(bufio.NewReader(resp.Body))
	return nil
}

// Next returns the next snapshot from the stream; io.EOF once the
// terminal snapshot has been delivered. A broken stream reconnects
// under the hood: the caller only sees an error when the watch
// context dies, the server rejects the reconnect (e.g. the job is
// gone), or the retry budget runs out.
func (w *Watcher) Next() (Job, error) {
	for {
		var j Job
		err := w.dec.Decode(&j)
		if err == nil {
			// Replayed state after a reconnect: skip anything not newer
			// than what the caller already saw. Replays do not reset the
			// stall counter — only real progress does, so a stream that
			// reconnects fine but never advances still errors out.
			if w.seen && !newerSnapshot(j, w.last) {
				continue
			}
			w.stalls = 0
			w.last, w.seen = j, true
			return j, nil
		}
		// Stream broke. After a terminal snapshot that is just the
		// server closing a finished stream.
		if w.seen && w.last.Status.Terminal() {
			return Job{}, io.EOF
		}
		if cerr := w.ctx.Err(); cerr != nil {
			return Job{}, cerr
		}
		if w.stalls++; w.stalls > watchMaxReconnects {
			return Job{}, err
		}
		if rerr := w.reconnect(); rerr != nil {
			return Job{}, rerr
		}
	}
}

// watchMaxReconnects bounds the consecutive failed reconnect
// attempts of one stream gap (a successful reconnect resets it).
const watchMaxReconnects = 5

// reconnect reopens the stream with capped, jittered exponential
// backoff. A structured API error is final — the server answered,
// the stream is not coming back the way the caller expects.
func (w *Watcher) reconnect() error {
	w.body.Close()
	delay := w.c.backoff
	for attempt := 0; ; attempt++ {
		err := w.connect()
		if err == nil {
			return nil
		}
		if api := AsAPIError(err); api != nil {
			return err
		}
		if attempt >= watchMaxReconnects {
			return err
		}
		wait := w.c.jitter(delay)
		delay *= 2
		if delay > 2*time.Second {
			delay = 2 * time.Second
		}
		if serr := w.c.sleep(w.ctx, wait); serr != nil {
			return serr
		}
	}
}

// statusRank orders the lifecycle for resume-after-reconnect
// comparisons: queued < running < terminal.
func statusRank(s Status) int {
	switch {
	case s.Terminal():
		return 2
	case s == StatusRunning:
		return 1
	default:
		return 0
	}
}

// newerSnapshot reports whether j carries state beyond last. The
// lifecycle only moves forward except preemption (running → queued,
// Preemptions incremented), so preemption count dominates, then
// status rank, then the cancel-requested flag.
func newerSnapshot(j, last Job) bool {
	if j.Preemptions != last.Preemptions {
		return j.Preemptions > last.Preemptions
	}
	if jr, lr := statusRank(j.Status), statusRank(last.Status); jr != lr {
		return jr > lr
	}
	return j.CancelRequested && !last.CancelRequested
}

// Close tears the stream down. Safe after EOF.
func (w *Watcher) Close() error { return w.body.Close() }
