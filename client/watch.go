// Watch: the push-style job observer over GET /v1/jobs/{id}/watch.
// The server streams newline-delimited JSON snapshots — the current
// state first, then every status transition — and ends the stream
// after the terminal one.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
)

// Watcher reads one job's status transitions from the server's
// ndjson stream. Close releases the connection; canceling the ctx
// passed to Watch does too.
type Watcher struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// Watch opens a transition stream for a job. The first Next returns
// the job's current snapshot immediately; subsequent calls block
// until the next transition. Next returns io.EOF after the terminal
// snapshot has been delivered.
func (c *Client) Watch(ctx context.Context, id string) (*Watcher, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/watch", nil)
	if err != nil {
		return nil, err
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, apiErrorFrom(resp, data)
	}
	return &Watcher{
		body: resp.Body,
		dec:  json.NewDecoder(bufio.NewReader(resp.Body)),
	}, nil
}

// Next returns the next snapshot from the stream; io.EOF once the
// server has closed it after the terminal transition.
func (w *Watcher) Next() (Job, error) {
	var j Job
	if err := w.dec.Decode(&j); err != nil {
		return Job{}, err
	}
	return j, nil
}

// Close tears the stream down. Safe after EOF.
func (w *Watcher) Close() error { return w.body.Close() }
