// The client's wire vocabulary: type aliases onto the service's own
// types, so the contract has exactly one definition. External
// callers import only this package.
package client

import (
	"errors"
	"time"

	"starmesh/internal/serve"
)

// JobSpec describes one simulation job (kind, machine shape,
// parameters; all randomness derives from Seed).
type JobSpec = serve.JobSpec

// Job is one admitted job and its outcome.
type Job = serve.Job

// Status is a job's lifecycle state.
type Status = serve.Status

// Job lifecycle states.
const (
	StatusQueued   = serve.StatusQueued
	StatusRunning  = serve.StatusRunning
	StatusDone     = serve.StatusDone
	StatusFailed   = serve.StatusFailed
	StatusCanceled = serve.StatusCanceled
)

// TraceEvent is one entry in a job's trace timeline (Job.Trace):
// what happened, when, and how long since the previous event.
type TraceEvent = serve.TraceEvent

// The non-terminal trace event names; terminal events carry the
// job's final Status string ("done", "failed", "canceled").
const (
	TraceSubmitted       = serve.TraceSubmitted
	TraceClaimed         = serve.TraceClaimed
	TraceMachineReady    = serve.TraceMachineReady
	TraceCancelRequested = serve.TraceCancelRequested
	TraceRecovered       = serve.TraceRecovered
	TracePreempted       = serve.TracePreempted
)

// Stats is the aggregated service view (GET /v1/stats).
type Stats = serve.Stats

// TenantStats is one tenant's row in the windowed leaderboard
// (Stats.Tenants).
type TenantStats = serve.TenantStats

// JobPage is one page of the job listing (GET /v1/jobs).
type JobPage = serve.JobPage

// Health is the healthz body (GET /v1/healthz).
type Health = serve.Health

// ErrorCode is the service's machine-readable error class.
type ErrorCode = serve.ErrorCode

// The v1 error codes.
const (
	CodeInvalidSpec     = serve.CodeInvalidSpec
	CodeInvalidArgument = serve.CodeInvalidArgument
	CodeNotFound        = serve.CodeNotFound
	CodeTerminal        = serve.CodeTerminal
	CodeQueueFull       = serve.CodeQueueFull
	CodeRateLimited     = serve.CodeRateLimited
	CodeUnauthorized    = serve.CodeUnauthorized
	CodeDraining        = serve.CodeDraining
	CodeInternal        = serve.CodeInternal
)

// APIError is a non-2xx response, decoded from the service's
// structured error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the typed error class.
	Code ErrorCode
	// Message is the human-readable explanation.
	Message string
	// Details itemizes batch validation failures by spec index.
	Details []serve.BatchItemError
	// RetryAfter is the server's Retry-After hint on 429 (0 if
	// absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return "client: " + string(e.Code) + " (" + e.Message + ")"
}

// AsAPIError extracts the *APIError from an error chain (nil if the
// error is not an API error — e.g. a transport failure).
func AsAPIError(err error) *APIError {
	var api *APIError
	if errors.As(err, &api) {
		return api
	}
	return nil
}

// codeIs reports whether err is an APIError of the given code.
func codeIs(err error, code ErrorCode) bool {
	api := AsAPIError(err)
	return api != nil && api.Code == code
}

// IsNotFound reports a 404 not_found API error.
func IsNotFound(err error) bool { return codeIs(err, CodeNotFound) }

// IsTerminal reports a 409 terminal conflict (cancel of a finished
// job).
func IsTerminal(err error) bool { return codeIs(err, CodeTerminal) }

// IsQueueFull reports 429 backpressure that survived the retry
// budget.
func IsQueueFull(err error) bool { return codeIs(err, CodeQueueFull) }

// IsRateLimited reports a 429 tenant rate-limit rejection that
// survived the retry budget (the tenant's token bucket, as opposed
// to queue backpressure — see IsQueueFull).
func IsRateLimited(err error) bool { return codeIs(err, CodeRateLimited) }

// IsUnauthorized reports a 401 unknown-or-missing API key rejection.
func IsUnauthorized(err error) bool { return codeIs(err, CodeUnauthorized) }

// IsDraining reports a 503 draining rejection.
func IsDraining(err error) bool { return codeIs(err, CodeDraining) }

// IsInvalidSpec reports a 400 spec validation rejection.
func IsInvalidSpec(err error) bool { return codeIs(err, CodeInvalidSpec) }
