// The cluster routing client: N serve nodes presented as one typed
// client. Ownership is client-side — the consistent-hash ring over
// the cluster map assigns every spec's (topology, engine) shape to
// one node, submits go straight to the owner, and reads route by the
// node prefix of the cluster job id ("node/localid"), so no request
// ever takes a second hop and no directory service exists. Reads
// that span the cluster scatter-gather: Stats merges per-node
// leaderboards with recomputed Poisson and rank intervals
// (serve.MergeStats), and List merges per-node pages under a
// compound cursor that inherits each node's cursor stability.
//
//	cc, err := client.DialCluster(ctx, "http://any-node:8080")
//	job, err := cc.Submit(ctx, spec)   // routed to the shape's owner
//	final, err := cc.Await(ctx, job.ID) // "n2/job-000017" routes itself
//
// Drain(node) empties one node for shutdown: the node extracts its
// queued backlog (each job locally canceled with the migration
// marker), and the client resubmits every extracted spec to its
// owner among the survivors. Specs fully determine results, so the
// migrated jobs re-execute bit-identically.
package client

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"starmesh/internal/cluster"
	"starmesh/internal/serve"
)

// ClusterInfo is the GET /v1/cluster body.
type ClusterInfo = serve.ClusterInfo

// ClusterClient routes typed-client calls across the member nodes of
// a starmesh cluster. Safe for concurrent use; Drain atomically
// swaps the membership the routing runs against.
type ClusterClient struct {
	mu    sync.RWMutex
	m     cluster.Map
	ring  *cluster.Ring
	nodes map[string]*Client
	opts  []Option
}

// DialCluster bootstraps a routing client from any member node: it
// fetches the node's cluster map (GET /v1/cluster) and builds one
// typed client per member. The options apply to every per-node
// client (API key, retry policy, HTTP client).
func DialCluster(ctx context.Context, anyNodeURL string, opts ...Option) (*ClusterClient, error) {
	boot := New(anyNodeURL, opts...)
	var info ClusterInfo
	if err := boot.do(ctx, "GET", "/v1/cluster", nil, &info); err != nil {
		return nil, fmt.Errorf("client: cluster bootstrap from %s: %w", anyNodeURL, err)
	}
	return NewCluster(info.Map, opts...)
}

// NewCluster builds a routing client directly from a member map —
// for callers that already hold one (the CLI's -peers flag, the
// bench harness).
func NewCluster(m cluster.Map, opts ...Option) (*ClusterClient, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cc := &ClusterClient{opts: opts}
	cc.install(m)
	return cc, nil
}

// install swaps in a membership: ring and per-node clients rebuilt.
func (cc *ClusterClient) install(m cluster.Map) {
	nodes := make(map[string]*Client, len(m.Nodes))
	for _, n := range m.Nodes {
		nodes[n.Name] = New(n.URL, cc.opts...)
	}
	cc.mu.Lock()
	cc.m, cc.ring, cc.nodes = m, m.Ring(), nodes
	cc.mu.Unlock()
}

// Map returns the membership the client currently routes against.
func (cc *ClusterClient) Map() cluster.Map {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.m
}

// Nodes returns the member names, sorted.
func (cc *ClusterClient) Nodes() []string {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.ring.Nodes()
}

// Node returns the typed client of one member — for per-node probes
// (healthz, metrics) the cluster view deliberately does not merge.
func (cc *ClusterClient) Node(name string) (*Client, bool) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	c, ok := cc.nodes[name]
	return c, ok
}

// ownerOf resolves the node owning a spec's pool shape. The shape is
// computed from the normalized spec (what the server pools by); a
// spec too malformed to normalize routes by its raw shape and lets
// the owner reject it with the service's own 400 — validation errors
// keep exactly one source.
func (cc *ClusterClient) ownerOf(spec JobSpec) (string, *Client, error) {
	shape := spec.Shape()
	if norm, err := spec.Normalized(); err == nil {
		shape = norm.Shape()
	}
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	name := cc.ring.Owner(shape)
	c, ok := cc.nodes[name]
	if !ok {
		return "", nil, fmt.Errorf("client: cluster has no nodes")
	}
	return name, c, nil
}

// nodeFor resolves a cluster job id's owning node from its prefix.
func (cc *ClusterClient) nodeFor(id string) (string, string, *Client, error) {
	node, local, ok := cluster.SplitID(id)
	if !ok {
		return "", "", nil, fmt.Errorf("client: %q is not a cluster job id (want node/jobid)", id)
	}
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	c, found := cc.nodes[node]
	if !found {
		return "", "", nil, fmt.Errorf("client: job %q belongs to unknown node %q", id, node)
	}
	return node, local, c, nil
}

// qualify rewrites a node-local job snapshot into the cluster id
// namespace.
func qualify(node string, j Job) Job {
	j.ID = cluster.QualifyID(node, j.ID)
	return j
}

// Submit admits one job on the node owning its shape, returning the
// queued snapshot under its cluster id ("node/jobid").
func (cc *ClusterClient) Submit(ctx context.Context, spec JobSpec) (Job, error) {
	node, c, err := cc.ownerOf(spec)
	if err != nil {
		return Job{}, err
	}
	job, err := c.Submit(ctx, spec)
	if err != nil {
		return Job{}, err
	}
	return qualify(node, job), nil
}

// SubmitBatch admits a batch across the cluster, grouped by owning
// node, returning the queued jobs in spec order. Atomicity is
// per-node (each node's group is all-or-nothing); if a later group
// fails, the already-admitted groups are canceled best-effort and
// the error returned — callers needing strict all-or-nothing should
// batch specs of one shape, which always land on one node.
func (cc *ClusterClient) SubmitBatch(ctx context.Context, specs []JobSpec) ([]Job, error) {
	type group struct {
		c       *Client
		specs   []JobSpec
		indexes []int
	}
	groups := make(map[string]*group)
	var order []string
	for i, spec := range specs {
		node, c, err := cc.ownerOf(spec)
		if err != nil {
			return nil, err
		}
		g, ok := groups[node]
		if !ok {
			g = &group{c: c}
			groups[node] = g
			order = append(order, node)
		}
		g.specs = append(g.specs, spec)
		g.indexes = append(g.indexes, i)
	}
	out := make([]Job, len(specs))
	var admitted []Job
	for _, node := range order {
		g := groups[node]
		jobs, err := g.c.SubmitBatch(ctx, g.specs)
		if err != nil {
			// Roll the earlier groups back so a partial cluster batch
			// does not run half its jobs. Best-effort: a job a worker
			// already claimed cancels at its next checkpoint.
			for _, j := range admitted {
				_, _ = cc.Cancel(ctx, j.ID)
			}
			return nil, fmt.Errorf("client: batch group on %s failed (earlier groups canceled): %w", node, err)
		}
		for i, j := range jobs {
			q := qualify(node, j)
			out[g.indexes[i]] = q
			admitted = append(admitted, q)
		}
	}
	return out, nil
}

// Get returns a job snapshot by cluster id.
func (cc *ClusterClient) Get(ctx context.Context, id string) (Job, error) {
	node, local, c, err := cc.nodeFor(id)
	if err != nil {
		return Job{}, err
	}
	job, err := c.Get(ctx, local)
	if err != nil {
		return Job{}, err
	}
	return qualify(node, job), nil
}

// Cancel aborts a job by cluster id.
func (cc *ClusterClient) Cancel(ctx context.Context, id string) (Job, error) {
	node, local, c, err := cc.nodeFor(id)
	if err != nil {
		return Job{}, err
	}
	job, err := c.Cancel(ctx, local)
	if err != nil {
		return Job{}, err
	}
	return qualify(node, job), nil
}

// Trace returns a job's trace timeline by cluster id.
func (cc *ClusterClient) Trace(ctx context.Context, id string) ([]TraceEvent, error) {
	job, err := cc.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	return job.Trace, nil
}

// ClusterWatcher is a Watcher whose snapshots carry cluster ids.
type ClusterWatcher struct {
	*Watcher
	node string
}

// Next returns the next snapshot, id qualified.
func (w *ClusterWatcher) Next() (Job, error) {
	j, err := w.Watcher.Next()
	if err != nil {
		return j, err
	}
	return qualify(w.node, j), nil
}

// Watch streams a job's transitions from its owning node (with the
// underlying Watcher's auto-reconnect).
func (cc *ClusterClient) Watch(ctx context.Context, id string) (*ClusterWatcher, error) {
	node, local, c, err := cc.nodeFor(id)
	if err != nil {
		return nil, err
	}
	w, err := c.Watch(ctx, local)
	if err != nil {
		return nil, err
	}
	return &ClusterWatcher{Watcher: w, node: node}, nil
}

// Await watches a job to its terminal status and returns the final
// snapshot.
func (cc *ClusterClient) Await(ctx context.Context, id string) (Job, error) {
	node, local, c, err := cc.nodeFor(id)
	if err != nil {
		return Job{}, err
	}
	job, err := c.Await(ctx, local)
	if err != nil {
		return job, err
	}
	return qualify(node, job), nil
}

// StatsWindow scatter-gathers GET /v1/stats from every node and
// merges them into the one-service view: counts and throughput sum,
// and the per-tenant leaderboard's Poisson throughput intervals and
// simultaneous rank intervals are recomputed from the merged
// per-tenant counts (serve.MergeStats) — rank uncertainty reflects
// cluster-wide evidence, not an average of per-node ranks. window
// uses the server default when ≤ 0. Any node failing fails the
// merge: a partial leaderboard would silently misrank.
func (cc *ClusterClient) StatsWindow(ctx context.Context, window time.Duration) (Stats, error) {
	cc.mu.RLock()
	nodes := make(map[string]*Client, len(cc.nodes))
	for name, c := range cc.nodes {
		nodes[name] = c
	}
	cc.mu.RUnlock()
	if window <= 0 {
		window = serve.DefaultTenantWindow
	}
	path := "/v1/stats?window=" + url.QueryEscape(window.String())
	var (
		mu   sync.Mutex
		per  = make(map[string]Stats, len(nodes))
		errs []error
		wg   sync.WaitGroup
	)
	for name, c := range nodes {
		wg.Add(1)
		go func(name string, c *Client) {
			defer wg.Done()
			var st Stats
			err := c.do(ctx, "GET", path, nil, &st)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", name, err))
				return
			}
			per[name] = st
		}(name, c)
	}
	wg.Wait()
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return Stats{}, fmt.Errorf("client: cluster stats: %w", errs[0])
	}
	return serve.MergeStats(per, window), nil
}

// Stats is StatsWindow with the server-default leaderboard window.
func (cc *ClusterClient) Stats(ctx context.Context) (Stats, error) {
	return cc.StatsWindow(ctx, 0)
}

// List returns one merged page of the cluster job listing, newest
// first by (admission seq, node). The compound cursor folds one
// per-node cursor into an opaque token; each node's slice of the
// walk is its own cursor-stable seq walk, so the merged walk yields
// every job exactly once even while jobs finish (and new admissions,
// which take higher seqs, never appear inside a resumed walk).
func (cc *ClusterClient) List(ctx context.Context, opts ListOptions) (JobPage, error) {
	cc.mu.RLock()
	nodes := make(map[string]*Client, len(cc.nodes))
	for name, c := range cc.nodes {
		nodes[name] = c
	}
	cc.mu.RUnlock()
	per, err := cluster.DecodeCursor(opts.Cursor)
	if err != nil {
		return JobPage{}, fmt.Errorf("client: %w", err)
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = 100
	}
	// One page per node, resumed from that node's cursor. An entry
	// remembers which node a candidate came from, so consuming it
	// advances the right cursor.
	type entry struct {
		node string
		job  Job
		seq  int
	}
	var (
		candidates []entry
		hasMore    = make(map[string]bool, len(nodes))
		names      []string
	)
	for name := range nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		page, err := nodes[name].List(ctx, ListOptions{
			Status: opts.Status, Limit: limit, Cursor: per[name],
		})
		if err != nil {
			return JobPage{}, fmt.Errorf("client: cluster list on %s: %w", name, err)
		}
		for _, j := range page.Jobs {
			candidates = append(candidates, entry{node: name, job: j, seq: serve.SeqOf(j.ID)})
		}
		hasMore[name] = page.NextCursor != ""
	}
	// Newest first; equal seqs (different nodes number independently)
	// break by node name so the order is total and replayable.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].seq != candidates[j].seq {
			return candidates[i].seq > candidates[j].seq
		}
		return candidates[i].node < candidates[j].node
	})
	out := JobPage{Jobs: []Job{}}
	for i, e := range candidates {
		if len(out.Jobs) == limit {
			// Leftover candidates exist below the page: the walk
			// continues from the per-node cursors.
			hasMore[candidates[i].node] = true
			for _, rest := range candidates[i+1:] {
				hasMore[rest.node] = true
			}
			break
		}
		out.Jobs = append(out.Jobs, qualify(e.node, e.job))
		per[e.node] = strconv.Itoa(e.seq)
	}
	more := false
	for _, m := range hasMore {
		more = more || m
	}
	if more {
		out.NextCursor = cluster.EncodeCursor(per)
	}
	return out, nil
}

// ListAll walks the merged cursor chain to exhaustion.
func (cc *ClusterClient) ListAll(ctx context.Context, opts ListOptions) ([]Job, error) {
	var all []Job
	for {
		page, err := cc.List(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, page.Jobs...)
		if page.NextCursor == "" {
			return all, nil
		}
		opts.Cursor = page.NextCursor
	}
}

// MigratedJob maps one drained job to its resubmitted successor.
type MigratedJob struct {
	// From is the job's cluster id on the drained node (locally
	// terminal there: canceled, error "migrated").
	From string `json:"from"`
	// To is the resubmitted job's cluster id on the surviving owner.
	// The spec (and seed) is identical, so To's result is
	// bit-identical to what From would have produced.
	To string `json:"to"`
}

// Drain empties one node for shutdown: the node stops admission and
// extracts its queued backlog (POST /v1/drain — each job locally
// canceled with the migration marker, WAL-logged); the client then
// removes the node from its routing membership and resubmits every
// extracted spec to its new owner among the survivors, in the
// drained node's admission order. Jobs already running on the node
// finish there under its drain grace. Resubmission uses this
// client's credentials; per-tenant keys are a server-side concern
// the migration path deliberately bypasses (the operator draining a
// node acts for all tenants).
func (cc *ClusterClient) Drain(ctx context.Context, node string) ([]MigratedJob, error) {
	cc.mu.RLock()
	c, ok := cc.nodes[node]
	m := cc.m
	cc.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("client: unknown node %q", node)
	}
	var resp serve.DrainResponse
	if err := c.do(ctx, "POST", "/v1/drain", nil, &resp); err != nil {
		return nil, fmt.Errorf("client: drain %s: %w", node, err)
	}
	survivors := m.Without(node)
	if len(survivors.Nodes) == 0 {
		if len(resp.Migrated) > 0 {
			return nil, fmt.Errorf("client: drained the last node %q with %d queued jobs and nowhere to migrate them", node, len(resp.Migrated))
		}
		return nil, nil
	}
	cc.install(survivors)
	migrated := make([]MigratedJob, 0, len(resp.Migrated))
	for _, old := range resp.Migrated {
		job, err := cc.Submit(ctx, old.Spec)
		if err != nil {
			return migrated, fmt.Errorf("client: migrating %s: %w", cluster.QualifyID(node, old.ID), err)
		}
		migrated = append(migrated, MigratedJob{
			From: cluster.QualifyID(node, old.ID),
			To:   job.ID,
		})
	}
	return migrated, nil
}
