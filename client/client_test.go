// Round-trip suite: the typed client against real in-process
// services (httptest) — pagination walks, atomic batch rejection,
// watch streams across the job lifecycle — plus a fake-clock 429
// retry test against a scripted handler.
package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starmesh/internal/serve"
)

// newTestService spins up a service + HTTP server + client.
func newTestService(t *testing.T, cfg serve.Config) (*serve.Service, *Client) {
	t.Helper()
	svc, err := serve.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		// Bounded drain: a test that left a long sweep running (e.g.
		// by failing early) must not hang the suite — the deadline
		// cancels it at its next checkpoint.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, New(ts.URL)
}

// quickSpec is a job that completes in microseconds.
func quickSpec(seed int64) JobSpec {
	return JobSpec{Kind: "faultroute", N: 4, Faults: 1, Pairs: 2, Seed: seed}
}

// slowSpec is a sweep job long enough to straddle test actions (the
// cancellation checkpoints fire before every unit route, so it still
// aborts in microseconds).
func slowSpec() JobSpec {
	return JobSpec{Kind: "sweep", N: 4, Trials: 1_000_000}
}

func TestPaginationWalkAcrossThreePages(t *testing.T) {
	_, c := newTestService(t, serve.Config{Workers: 2, Queue: 16})
	ctx := context.Background()

	const jobs = 7
	var ids []string
	for i := 0; i < jobs; i++ {
		job, err := c.Submit(ctx, quickSpec(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		final, err := c.Await(ctx, id)
		if err != nil {
			t.Fatalf("await %s: %v", id, err)
		}
		if final.Status != StatusDone {
			t.Fatalf("job %s ended %s: %s", id, final.Status, final.Error)
		}
	}

	// Walk pages of 3: 3 + 3 + 1, newest first, no overlap, no gap.
	var walked []string
	cursor := ""
	pages := 0
	for {
		page, err := c.List(ctx, ListOptions{Limit: 3, Cursor: cursor, Status: StatusDone})
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, j := range page.Jobs {
			walked = append(walked, j.ID)
		}
		if page.NextCursor == "" {
			break
		}
		if len(page.Jobs) != 3 {
			t.Fatalf("non-final page holds %d jobs, want 3", len(page.Jobs))
		}
		cursor = page.NextCursor
	}
	if pages != 3 {
		t.Fatalf("walk took %d pages, want 3", pages)
	}
	if len(walked) != jobs {
		t.Fatalf("walk saw %d jobs, want %d", len(walked), jobs)
	}
	for i, id := range walked {
		if id != ids[jobs-1-i] { // newest first
			t.Fatalf("walk order wrong at %d: got %s, want %s", i, id, ids[jobs-1-i])
		}
	}

	// ListAll agrees with the manual walk.
	all, err := c.ListAll(ctx, ListOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != jobs {
		t.Fatalf("ListAll saw %d jobs, want %d", len(all), jobs)
	}
}

func TestSubmitBatchAtomicValidationRejection(t *testing.T) {
	_, c := newTestService(t, serve.Config{Workers: 1, Queue: 16})
	ctx := context.Background()

	specs := []JobSpec{
		quickSpec(1),          // valid
		{Kind: "sort", N: 99}, // n out of range
		{Kind: "warpdrive"},   // unknown kind
		quickSpec(2),          // valid
	}
	_, err := c.SubmitBatch(ctx, specs)
	if err == nil {
		t.Fatal("batch with invalid specs accepted")
	}
	if !IsInvalidSpec(err) {
		t.Fatalf("batch rejection is %v, want invalid_spec", err)
	}
	api := AsAPIError(err)
	if api.Status != http.StatusBadRequest || len(api.Details) != 2 {
		t.Fatalf("batch rejection details wrong: %+v", api)
	}
	if api.Details[0].Index != 1 || api.Details[1].Index != 2 {
		t.Fatalf("batch rejection names indexes %d,%d, want 1,2", api.Details[0].Index, api.Details[1].Index)
	}

	// Atomic: the valid specs were NOT admitted.
	all, err := c.ListAll(ctx, ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 0 {
		t.Fatalf("rejected batch still admitted %d jobs", len(all))
	}

	// A fully valid batch admits every spec, in order.
	jobs, err := c.SubmitBatch(ctx, []JobSpec{quickSpec(3), quickSpec(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID == jobs[1].ID {
		t.Fatalf("batch admission wrong: %+v", jobs)
	}
	for _, j := range jobs {
		if final, err := c.Await(ctx, j.ID); err != nil || final.Status != StatusDone {
			t.Fatalf("batch job %s: %v %v", j.ID, final.Status, err)
		}
	}
}

// TestWatchStreams drives the full lifecycle over the watch stream:
// a blocked worker keeps the observed jobs queued until the test is
// subscribed, so every transition is seen, not raced.
func TestWatchStreams(t *testing.T) {
	svc, c := newTestService(t, serve.Config{Workers: 1, Queue: 16})
	ctx := context.Background()

	// Occupy the single worker with a long sweep.
	blocker, err := c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, blocker.ID, StatusRunning)

	// queued → running → done.
	doneJob, err := c.Submit(ctx, quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	wDone, err := c.Watch(ctx, doneJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer wDone.Close()

	// queued → canceled.
	cancelJob, err := c.Submit(ctx, quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	wCancel, err := c.Watch(ctx, cancelJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer wCancel.Close()
	if _, err := c.Cancel(ctx, cancelJob.ID); err != nil {
		t.Fatal(err)
	}
	if got := statuses(t, wCancel); !equalStatuses(got, []Status{StatusQueued, StatusCanceled}) {
		t.Fatalf("canceled watch saw %v, want [queued canceled]", got)
	}

	// Unblock the worker: the queued quick job runs and completes.
	if _, err := c.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	got := statuses(t, wDone)
	if !equalStatuses(got, []Status{StatusQueued, StatusRunning, StatusDone}) {
		t.Fatalf("done watch saw %v, want [queued running done]", got)
	}

	// The blocker itself ended canceled with partial stats preserved.
	final, err := c.Await(ctx, blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled || final.Result == nil {
		t.Fatalf("blocker ended %s (result %v), want canceled with partial stats", final.Status, final.Result)
	}
	_ = svc
}

// statuses drains a watch stream to its end, deduplicating
// consecutive snapshots of the same status (a cancel_requested
// republish repeats "running").
func statuses(t *testing.T, w *Watcher) []Status {
	t.Helper()
	var out []Status
	for {
		j, err := w.Next()
		if err != nil {
			return out
		}
		if len(out) == 0 || out[len(out)-1] != j.Status {
			out = append(out, j.Status)
		}
		if j.Status.Terminal() {
			return out
		}
	}
}

func equalStatuses(got, want []Status) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func waitStatus(t *testing.T, c *Client, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, err := c.Get(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status == want {
			return
		}
		if job.Status.Terminal() {
			t.Fatalf("job %s ended %s while waiting for %s", id, job.Status, want)
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestRetryHonorsRetryAfterWithFakeClock scripts a backpressured
// server: two 429s with Retry-After: 2, then acceptance. The
// injected sleeper records the waits instead of sleeping.
func TestRetryHonorsRetryAfterWithFakeClock(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.ErrorBody{Error: serve.ErrorInfo{
				Code: serve.CodeQueueFull, Message: "scripted backpressure"}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(Job{ID: "job-000001", Status: StatusQueued})
	}))
	defer ts.Close()

	var slept []time.Duration
	backpressures := 0
	c := New(ts.URL,
		client429Sleeper(&slept),
		WithBackpressureHook(func(time.Duration) { backpressures++ }))
	job, err := c.Submit(context.Background(), quickSpec(1))
	if err != nil {
		t.Fatalf("submit never recovered from 429s: %v", err)
	}
	if job.ID != "job-000001" {
		t.Fatalf("wrong job after retries: %+v", job)
	}
	if attempts != 3 || backpressures != 2 {
		t.Fatalf("attempts=%d backpressures=%d, want 3 and 2", attempts, backpressures)
	}
	if len(slept) != 2 || slept[0] != 2*time.Second || slept[1] != 2*time.Second {
		t.Fatalf("fake clock recorded %v, want [2s 2s] from Retry-After", slept)
	}

	// The retry budget is a ceiling: a permanently-full server fails
	// with queue_full after maxRetries sleeps.
	attempts = 0
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(serve.ErrorBody{Error: serve.ErrorInfo{
			Code: serve.CodeQueueFull, Message: "always full"}})
	}))
	defer always.Close()
	slept = nil
	c2 := New(always.URL, WithMaxRetries(3), client429Sleeper(&slept))
	_, err = c2.Submit(context.Background(), quickSpec(1))
	if !IsQueueFull(err) {
		t.Fatalf("exhausted retries returned %v, want queue_full", err)
	}
	if attempts != 4 || len(slept) != 3 {
		t.Fatalf("budget of 3 retries made %d attempts with %d sleeps", attempts, len(slept))
	}
}

// client429Sleeper injects a recording fake clock.
func client429Sleeper(slept *[]time.Duration) Option {
	return WithSleep(func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	})
}

func TestTypedErrors(t *testing.T) {
	_, c := newTestService(t, serve.Config{Workers: 1, Queue: 4})
	ctx := context.Background()

	if _, err := c.Get(ctx, "job-999999"); !IsNotFound(err) {
		t.Fatalf("missing job returned %v, want not_found", err)
	}
	if _, err := c.Cancel(ctx, "job-999999"); !IsNotFound(err) {
		t.Fatalf("cancel of missing job returned %v, want not_found", err)
	}
	if _, err := c.Submit(ctx, JobSpec{Kind: "sort", N: 1}); !IsInvalidSpec(err) {
		t.Fatalf("bad spec returned %v, want invalid_spec", err)
	}

	// Cancel of a terminal job is the typed 409.
	job, err := c.Submit(ctx, quickSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if job, err = c.Await(ctx, job.ID); err != nil || job.Status != StatusDone {
		t.Fatalf("await: %v %v", job.Status, err)
	}
	_, err = c.Cancel(ctx, job.ID)
	if !IsTerminal(err) {
		t.Fatalf("cancel of done job returned %v, want terminal conflict", err)
	}
	if api := AsAPIError(err); api == nil || api.Status != http.StatusConflict {
		t.Fatalf("terminal conflict carries wrong status: %+v", AsAPIError(err))
	}

	// Healthz: ok while serving.
	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" || h.Draining {
		t.Fatalf("healthz: %+v, %v", h, err)
	}
}

func TestHealthzReportsDraining(t *testing.T) {
	svc, c := newTestService(t, serve.Config{Workers: 1, Queue: 4})
	svc.Drain()
	h, err := c.Healthz(context.Background())
	if !h.Draining || h.Status != "draining" {
		t.Fatalf("healthz after drain: %+v", h)
	}
	if !IsDraining(err) && AsAPIError(err) == nil {
		t.Fatalf("draining healthz should surface the 503: %v", err)
	}
}

func TestTraceAndMetricsAccessors(t *testing.T) {
	_, c := newTestService(t, serve.Config{Workers: 1, Queue: 8})
	ctx := context.Background()

	job, err := c.Submit(ctx, quickSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	trace, err := c.Trace(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 3 || trace[0].Event != TraceSubmitted {
		t.Fatalf("trace of a finished job = %+v, want submitted…terminal", trace)
	}
	if last := trace[len(trace)-1].Event; last != string(StatusDone) {
		t.Fatalf("trace ends with %q, want done", last)
	}
	if _, err := c.Trace(ctx, "job-999999"); !IsNotFound(err) {
		t.Fatalf("Trace of a missing job returned %v, want not_found", err)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "starmesh_jobs_admitted_total") {
		t.Fatalf("metrics exposition missing the admissions family:\n%.300s", text)
	}
}

func TestMetricsDisabledIsNotFound(t *testing.T) {
	_, c := newTestService(t, serve.Config{Workers: 1, Queue: 8, NoObs: true})
	if _, err := c.Metrics(context.Background()); !IsNotFound(err) {
		t.Fatalf("Metrics on a NoObs service returned %v, want not_found", err)
	}
}
