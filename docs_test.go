package starmesh_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve is the docs drift check: every relative link in
// README.md and docs/*.md must point at a file or directory that
// exists in the repository, so renames and deletions cannot silently
// strand the documentation. External (scheme or site-absolute) links
// are out of scope — this is a reference-integrity check, not a
// network check.
func TestDocLinksResolve(t *testing.T) {
	sources := []string{"README.md"}
	entries, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	sources = append(sources, entries...)
	if len(sources) < 3 { // README + architecture + benchmarks at minimum
		t.Fatalf("expected README.md plus docs/*.md, found only %v", sources)
	}

	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, match := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if strings.HasPrefix(target, "#") {
				continue // intra-document anchor
			}
			if strings.HasPrefix(target, "../../") {
				continue // repo-host paths (the CI badge) resolve on the forge, not on disk
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(src), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", src, match[1], err)
			}
		}
	}
}

// TestDocsMentionCommittedRecords keeps docs/benchmarks.md honest:
// every committed BENCH_*.json must be documented there, and every
// documented record must exist.
func TestDocsMentionCommittedRecords(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "benchmarks.md"))
	if err != nil {
		t.Fatal(err)
	}
	records, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no committed BENCH_*.json records found")
	}
	for _, rec := range records {
		if !strings.Contains(string(doc), rec) {
			t.Errorf("docs/benchmarks.md does not document committed record %s", rec)
		}
	}
}
