// Package starmesh is a library reproduction of "Embedding Meshes on
// the Star Graph" (Ranka, Wang, Yeh; Syracuse CIS-89-9, SC 1990).
//
// The star graph S_n connects n! processors, each labeled by a
// permutation of n symbols, with an edge whenever two labels differ
// by exchanging the front symbol with another position. The paper
// shows that the (n-1)-dimensional mesh D_n of shape 2×3×…×n embeds
// into S_n with expansion 1 and dilation 3, and that one SIMD mesh
// unit route runs in at most 3 star unit routes without conflicts —
// so mesh algorithms transfer to the star graph at a constant
// factor.
//
// The root package is the public facade. It exposes:
//
//   - the node conversion algorithms of Figures 5 and 6
//     (MapMeshNode, UnmapStarNode),
//   - the closed-form mesh-neighbor and path constructions of
//     Lemmas 2-3 (MeshNeighbor, EdgePath),
//   - the assembled embedding with quality metrics (NewEmbedding),
//   - the star graph itself (NewStar) with exact distances, optimal
//     routing, diameter and broadcast, and
//   - SIMD machine simulators for both the mesh and the star
//     (NewMeshMachine, NewStarMachine) that count unit routes, the
//     paper's complexity measure, and
//   - engine options (SequentialEngine, ParallelEngine) selecting
//     the execution strategy of every machine: the parallel engine
//     shards each unit route across a persistent per-machine worker
//     pool and merges per-shard results deterministically, so its
//     Stats, register contents and conflict diagnostics are
//     bit-identical to the sequential reference. Register state
//     lives in flat cache-line-aligned banks whose slices stay
//     stable across growth and Reset, so parallel shards partition
//     the PE range without false sharing and hot loops hoist
//     register slices once (docs/architecture.md walks the layers).
//
// # Plans
//
// The machines compile pure unit-route schedules ahead of time
// (WithPlans, on by default): the first execution records each route
// as a dense delivery table — validated against the topology, sorted
// by ascending destination — and later executions replay the tables
// as permutation applies over the register banks (blocky steps
// collapse to copy calls), skipping closure dispatch, Neighbor calls
// and register-map lookups entirely. Record when a schedule will repeat
// (sort phases, sweeps, broadcasts); replay is bit-identical to
// closure resolution, and compiled plans are shared across machines
// of the same shape through SharedPlans. Purity is the contract: a
// recordable schedule consists of unit routes whose port/mask
// functions depend only on the topology; schedules that run
// Set/Apply while recording are marked impure and never replayed.
// Machines running a parallel engine own a lazily started worker
// pool reused across routes — release it with Close when a machine
// is done (garbage collection also reclaims it).
//
// # Scenario registry
//
// Every runnable workload is a scenario family registered in
// internal/workload's Registry — the single source of truth mapping
// a kind string to spec validation and defaults, the machine-pool
// shape key, a resource constructor, a machine-accepting runner and
// the naming scheme. The job service, the experiments, both commands
// and this facade all dispatch through it, so adding a scenario is
// ONE Register call; there are no per-layer kind switches anywhere.
// Ten families ship built in: sort, shear, broadcast, sweep,
// faultroute, embedrect (the appendix's rectangular meshes),
// permroute (oblivious permutation routing), virtual (D_{n+1} on
// S_n), diagnostics (connectivity under vertex holes) and pipeline
// (embed → sort → broadcast chained on one machine with Reset
// between phases). ScenarioKinds lists them, ScenarioCatalog renders
// the registry's catalog (the README table is that exact output),
// and RunScenario executes any spec standalone with results
// bit-identical to the job service's pooled execution.
//
// # Service
//
// The serve layer (internal/serve; `starmesh serve` on the CLI;
// NewJobService/ServeJobs on the facade) runs the simulators as a
// long-running job service: typed JobSpecs — the workload scenarios
// as data — admitted through a bounded scheduler with backpressure
// (a full queue rejects immediately) and cancellation, executed on
// per-shape machine pools, and exposed over a versioned v1 HTTP API:
// POST /v1/jobs (and the atomic /v1/jobs:batch), GET /v1/jobs with
// status filter + cursor pagination, GET /v1/jobs/{id}/watch
// streaming status transitions, DELETE /v1/jobs/{id} — which cancels
// queued AND running jobs, the runners' cooperative checkpoints
// bounding the abort latency — plus /v1/stats and a drain-aware
// /v1/healthz, all with a typed structured-error taxonomy. The
// public typed client (package starmesh/client) is the supported
// remote caller: the CLI's submit/jobs/cancel/watch/stats
// subcommands and the load generator dispatch exclusively through
// it. Graceful drain honors the caller's deadline
// (Service.Shutdown), canceling stragglers at their checkpoints. The pools amortize everything
// expensive about a machine — topology tables, Lemma-3 route
// tables, the embedding's vertex map, compiled-plan binding, engine
// worker pools — across jobs of the same (topology, engine) shape:
// a machine is checked out, runs one job, is Reset (registers and
// stats zeroed, amortized state kept) and parked for the next job.
// Pooled results are bit-identical to building a fresh machine per
// job, because both paths run the same workload runners; the serve
// experiment asserts that parity and BENCH_serve.json records the
// measured closed-loop throughput of pooling on vs off
// (`make bench-serve` regenerates it).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table;
// cmd/experiments regenerates all of them (its -engine and -plan
// flags select the execution engine and the plan layer; the engine
// and plans experiments assert both are bit-identical to the
// sequential closure reference). BENCH_engine.json records the
// engine's measured performance on an S_8 workload (including the
// replay path's GOMAXPROCS scaling curve) and BENCH_plans.json the
// plan layer's; `make bench` and `make bench-plans` regenerate them,
// and docs/benchmarks.md documents every record's schema and CI
// gate.
package starmesh
