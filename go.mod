module starmesh

go 1.24
