package starmesh_test

import (
	"testing"

	"starmesh"
)

func TestFacadeMapUnmap(t *testing.T) {
	p := starmesh.MapMeshNode([]int{1, 0, 3})
	if p.String() != "(0 3 1 2)" {
		t.Fatalf("MapMeshNode = %v", p)
	}
	pt := starmesh.UnmapStarNode(p)
	want := []int{1, 0, 3}
	for i := range want {
		if pt[i] != want[i] {
			t.Fatalf("UnmapStarNode = %v", pt)
		}
	}
}

func TestFacadeNewPerm(t *testing.T) {
	if _, err := starmesh.NewPerm([]int{0, 0}); err == nil {
		t.Fatalf("invalid perm accepted")
	}
	p, err := starmesh.NewPerm([]int{2, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "(3 0 1 2)" {
		t.Fatalf("perm display %q", p)
	}
	if !starmesh.IdentityPerm(3).IsIdentity() {
		t.Fatalf("identity wrong")
	}
}

func TestFacadeStar(t *testing.T) {
	s := starmesh.NewStar(4)
	if s.N() != 4 || s.Order() != 24 || s.Degree() != 3 || s.Diameter() != 4 {
		t.Fatalf("star accessors wrong")
	}
	if len(s.Neighbors(0)) != 3 {
		t.Fatalf("neighbors wrong")
	}
	if s.ID(s.Node(7)) != 7 {
		t.Fatalf("node/id roundtrip")
	}
	if r := s.BroadcastRounds(0); r < 5 {
		t.Fatalf("broadcast rounds = %d", r)
	}
}

func TestFacadeMeshNeighborAndPath(t *testing.T) {
	p := starmesh.MapMeshNode([]int{0, 0, 0})
	q, ok := starmesh.MeshNeighbor(p, 2, +1)
	if !ok {
		t.Fatalf("neighbor missing")
	}
	if d := starmesh.StarDistance(p, q); d != 3 {
		t.Fatalf("distance = %d", d)
	}
	path, ok := starmesh.EdgePath(p, 2, +1)
	if !ok || len(path) != 4 || !path[3].Equal(q) {
		t.Fatalf("path wrong: %v", path)
	}
	route := starmesh.StarRoute(p, q)
	if len(route)-1 != 3 {
		t.Fatalf("route length %d", len(route)-1)
	}
}

func TestFacadeEmbedding(t *testing.T) {
	e := starmesh.NewEmbedding(4)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Dilation() != 3 {
		t.Fatalf("dilation = %d", e.Dilation())
	}
	m := e.Metrics()
	if m.Expansion != 1 || m.Dilation != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	d := starmesh.NewDMesh(4)
	if e.HostID(d.ID([]int{1, 0, 3})) != starmesh.NewStar(4).ID(starmesh.MapMeshNode([]int{1, 0, 3})) {
		t.Fatalf("HostID mismatch")
	}
}

func TestFacadeDMesh(t *testing.T) {
	d := starmesh.NewDMesh(5)
	if d.Order() != 120 || d.Dims() != 4 {
		t.Fatalf("DMesh shape wrong")
	}
	if d.ID(d.Coords(77)) != 77 {
		t.Fatalf("coords roundtrip")
	}
}

func TestFacadeMachines(t *testing.T) {
	mm := starmesh.NewMeshMachine([]int{2, 3})
	mm.AddReg("A")
	mm.AddReg("B")
	mm.Set("A", func(pe int) int64 { return int64(pe) })
	mm.UnitRoute("A", "B", 1, +1)
	if mm.Stats().UnitRoutes != 1 {
		t.Fatalf("mesh machine route count")
	}

	sm := starmesh.NewStarMachine(4)
	sm.AddReg("A")
	sm.AddReg("B")
	sm.Set("A", func(pe int) int64 { return int64(pe) })
	routes, conflicts := sm.MeshUnitRoute("A", "B", 2, +1)
	if routes != 3 || conflicts != 0 {
		t.Fatalf("star machine unit route: %d routes %d conflicts", routes, conflicts)
	}

	dm := starmesh.NewDMeshMachine(4)
	if dm.Size() != 24 {
		t.Fatalf("D-mesh machine size")
	}
}

func TestFacadeRectEmbedding(t *testing.T) {
	e := starmesh.NewRectEmbedding(5, 2)
	if e.Dilation() != 3 {
		t.Fatalf("rect dilation = %d", e.Dilation())
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeEngineOptions drives machines built with the exported
// engine options and checks the parallel engine's determinism
// contract through the facade.
func TestFacadeEngineOptions(t *testing.T) {
	run := func(opts ...starmesh.EngineOption) ([]int64, int) {
		sm := starmesh.NewStarMachine(4, opts...)
		sm.AddReg("A")
		sm.AddReg("B")
		sm.Set("A", func(pe int) int64 { return int64(2*pe + 1) })
		total := 0
		for k := 1; k <= 3; k++ {
			routes, conflicts := sm.MeshUnitRoute("A", "B", k, +1)
			if conflicts != 0 {
				t.Fatalf("conflicts on dim %d", k)
			}
			total += routes
		}
		return append([]int64(nil), sm.Reg("B")...), total
	}
	seqRegs, seqRoutes := run(starmesh.SequentialEngine())
	parRegs, parRoutes := run(starmesh.ParallelEngine(3))
	if seqRoutes != parRoutes {
		t.Fatalf("route counts diverged: %d vs %d", seqRoutes, parRoutes)
	}
	for pe := range seqRegs {
		if seqRegs[pe] != parRegs[pe] {
			t.Fatalf("PE %d register diverged: %d vs %d", pe, seqRegs[pe], parRegs[pe])
		}
	}

	mm := starmesh.NewMeshMachine([]int{3, 4}, starmesh.ParallelEngine(2))
	mm.AddReg("K")
	mm.Set("K", func(pe int) int64 { return int64(12 - pe) })
	mm.UnitRoute("K", "K", 0, +1)
	if mm.Stats().UnitRoutes != 1 {
		t.Fatalf("mesh machine with parallel engine: %+v", mm.Stats())
	}
}

func TestFacadeVirtualMachine(t *testing.T) {
	vm := starmesh.NewVirtualMachine(3)
	vm.AddReg("A")
	vm.AddReg("B")
	vm.Set("A", func(bigID int) int64 { return int64(bigID) })
	routes := vm.UnitRoute("A", "B", 1, +1)
	if routes > 3*4 {
		t.Fatalf("virtual route cost %d", routes)
	}
	if vm.Big.Order() != 24 || vm.SM.Size() != 6 {
		t.Fatalf("virtual shape wrong")
	}
}

func TestFacadeJobService(t *testing.T) {
	svc, err := starmesh.NewJobService(starmesh.ServiceConfig{Workers: 2, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(starmesh.JobSpec{Kind: starmesh.JobSort, N: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain() // graceful: the admitted job completes first
	done, ok := svc.Job(job.ID)
	if !ok || done.Status != "done" || done.Result == nil || !done.Result.OK {
		t.Fatalf("facade job did not finish clean: %+v", done)
	}
	if stats := svc.Stats(); stats.Done != 1 || !stats.Draining {
		t.Fatalf("facade stats wrong: %+v", stats)
	}
}
