// The scenarios and run subcommands: the CLI face of the scenario
// registry. `scenarios` prints the catalog (optionally as the
// README's markdown table); `run` executes one spec — the same JSON
// document POST /jobs accepts — standalone on a fresh machine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"starmesh/internal/simd"
	"starmesh/internal/workload"
)

func cmdScenarios(args []string) {
	fs := flag.NewFlagSet("scenarios", flag.ExitOnError)
	markdown := fs.Bool("markdown", false, "print the README scenario catalog table")
	fs.Parse(args)
	if *markdown {
		fmt.Print(workload.CatalogMarkdown())
		return
	}
	fmt.Printf("%-12s %-28s %-34s %s\n", "KIND", "PARAMS", "PACKAGE", "WORKLOAD")
	for _, row := range workload.Catalog() {
		fmt.Printf("%-12s %-28s %-34s %s\n", row.Kind, row.Params, row.Package, row.Summary)
	}
	fmt.Printf("\nrun one with: starmesh run '{\"kind\":\"sort\",\"n\":5,\"dist\":\"reversed\",\"seed\":42}'\n")
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	engine := fs.String("engine", "sequential", "execution engine: sequential, parallel or parallel-spawn")
	workers := fs.Int("workers", 0, "parallel engine worker count (0 = GOMAXPROCS)")
	plan := fs.Bool("plan", true, "compiled route plans")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("run needs exactly one JSON job spec (try: starmesh run '{\"kind\":\"sweep\",\"n\":5}')")
	}

	var opts []simd.Option
	switch *engine {
	case "sequential", "seq":
	case "parallel", "par":
		opts = append(opts, simd.WithExecutor(simd.Parallel(*workers)))
	case "parallel-spawn", "spawn":
		opts = append(opts, simd.WithExecutor(simd.ParallelSpawn(*workers)))
	default:
		fatalf("unknown engine %q (want sequential, parallel or parallel-spawn)", *engine)
	}
	if !*plan {
		opts = append(opts, simd.WithPlans(false))
	}

	var spec workload.Spec
	dec := json.NewDecoder(strings.NewReader(fs.Arg(0)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fatalf("bad job spec: %v", err)
	}
	sc, err := workload.ScenarioFor(spec, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		fatalf("%s: %v", sc.Name, err)
	}
	res.Name = sc.Name
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(out))
	if !res.OK {
		os.Exit(1)
	}
}
