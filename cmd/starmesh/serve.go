// The serve subcommand: the long-running simulation job service
// over HTTP. SIGINT/SIGTERM triggers a graceful drain — admission
// stops, every admitted job completes, machine pools release.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"starmesh/internal/cluster"
	"starmesh/internal/serve"
)

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	workers := fs.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth (full queue returns 429)")
	pool := fs.Bool("pool", true, "per-shape machine pooling (false builds a machine per job)")
	engine := fs.String("engine", "sequential", "execution engine: sequential, parallel or parallel-spawn")
	engineWorkers := fs.Int("engine-workers", 0, "parallel engine worker count (0 = GOMAXPROCS)")
	plan := fs.Bool("plan", true, "compiled route plans on the job machines")
	drainGrace := fs.Duration("drain-grace", 5*time.Second,
		"graceful-drain deadline: admitted jobs get this long after SIGINT/SIGTERM before running ones are canceled at their next checkpoint")
	storeDir := fs.String("store-dir", "",
		"durable WAL-backed job store directory (empty = in-memory; on restart, queued jobs are re-admitted in order and interrupted running jobs re-execute deterministically)")
	snapshotEvery := fs.Int("snapshot-every", 0,
		"WAL records between snapshot+compaction cycles of the durable store (0 = 256)")
	tenantsPath := fs.String("tenants", "",
		"tenant registry JSON file (API keys, fair-queueing weights, rate limits, queue quotas; see docs/tenancy.md). Empty = single anonymous tenant")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	pprofAddr := fs.String("pprof-addr", "",
		"optional ops listener mounting net/http/pprof under /debug/pprof (empty = off; bind loopback — the profiles expose internals)")
	clusterName := fs.String("cluster", "",
		"this node's name in a sharded cluster (requires -peers; see docs/cluster.md)")
	peers := fs.String("peers", "",
		"cluster membership as name=url[*weight],... — every node of the cluster, this one included")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatalf("serve takes no positional arguments")
	}

	log, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fatalf("%v", err)
	}

	var tenantsFile serve.TenantsFile
	if *tenantsPath != "" {
		tenantsFile, err = serve.LoadTenantsFile(*tenantsPath)
		if err != nil {
			fatalf("%v", err)
		}
	}

	svc, err := serve.NewService(serve.Config{
		Workers:       *workers,
		Queue:         *queue,
		NoPool:        !*pool,
		Engine:        *engine,
		EngineWorkers: *engineWorkers,
		NoPlans:       !*plan,
		DrainGrace:    *drainGrace,
		StoreDir:      *storeDir,
		SnapshotEvery: *snapshotEvery,
		Tenants:       tenantsFile.Tenants,
		RequireKey:    tenantsFile.RequireKey,
		Logger:        log,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *clusterName != "" || *peers != "" {
		if *clusterName == "" || *peers == "" {
			fatalf("-cluster and -peers must be set together")
		}
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			fatalf("%v", err)
		}
		if err := svc.SetCluster(*clusterName, cluster.Map{Nodes: nodes}); err != nil {
			fatalf("%v", err)
		}
		log.Info("cluster member", "self", *clusterName, "nodes", len(nodes))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Info("job service starting",
		"addr", *addr, "workers", *workers, "queue", *queue, "pool", *pool,
		"engine", *engine, "plan", *plan, "store", storeKind(*storeDir),
		"tenants", len(tenantsFile.Tenants), "require_key", tenantsFile.RequireKey)
	if dur := svc.Durability(); dur.Store == "wal" &&
		(dur.RecoveredQueued > 0 || dur.ReexecutedRunning > 0 || dur.CanceledAtRecovery > 0) {
		log.Info("crash recovery complete",
			"requeued", dur.RecoveredQueued,
			"reexecuting", dur.ReexecutedRunning,
			"canceled", dur.CanceledAtRecovery,
			"wal_records", dur.WALRecords)
	}
	if *pprofAddr != "" {
		go servePprof(log, *pprofAddr)
	}
	err = svc.ListenAndServe(ctx, *addr)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The -drain-grace deadline fired: stragglers were canceled at
		// their checkpoints — the configured graceful outcome, not a
		// failure.
		log.Info("drained", "outcome", "grace deadline reached, running jobs canceled")
		return
	case err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, http.ErrServerClosed):
		fatalf("%v", err)
	}
	log.Info("drained", "outcome", "clean")
}

// buildLogger assembles the service logger from the -log-level /
// -log-format flags. Logs go to stderr — stdout stays free for
// subcommands that print results.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("starmesh: -log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("starmesh: -log-format %q: want text or json", format)
	}
}

// servePprof runs the ops listener: net/http/pprof only, on its own
// mux and address, so the profiling surface never shares a port with
// the public API.
func servePprof(log *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Info("pprof ops listener on", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Error("pprof listener failed", "error", err)
	}
}

func storeKind(dir string) string {
	if dir == "" {
		return "memory"
	}
	return "wal:" + dir
}
