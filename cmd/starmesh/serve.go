// The serve subcommand: the long-running simulation job service
// over HTTP. SIGINT/SIGTERM triggers a graceful drain — admission
// stops, every admitted job completes, machine pools release.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"starmesh/internal/serve"
)

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	workers := fs.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth (full queue returns 429)")
	pool := fs.Bool("pool", true, "per-shape machine pooling (false builds a machine per job)")
	engine := fs.String("engine", "sequential", "execution engine: sequential, parallel or parallel-spawn")
	engineWorkers := fs.Int("engine-workers", 0, "parallel engine worker count (0 = GOMAXPROCS)")
	plan := fs.Bool("plan", true, "compiled route plans on the job machines")
	drainGrace := fs.Duration("drain-grace", 5*time.Second,
		"graceful-drain deadline: admitted jobs get this long after SIGINT/SIGTERM before running ones are canceled at their next checkpoint")
	storeDir := fs.String("store-dir", "",
		"durable WAL-backed job store directory (empty = in-memory; on restart, queued jobs are re-admitted in order and interrupted running jobs re-execute deterministically)")
	snapshotEvery := fs.Int("snapshot-every", 0,
		"WAL records between snapshot+compaction cycles of the durable store (0 = 256)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatalf("serve takes no positional arguments")
	}

	svc, err := serve.NewService(serve.Config{
		Workers:       *workers,
		Queue:         *queue,
		NoPool:        !*pool,
		Engine:        *engine,
		EngineWorkers: *engineWorkers,
		NoPlans:       !*plan,
		DrainGrace:    *drainGrace,
		StoreDir:      *storeDir,
		SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		fatalf("%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "starmesh: job service on %s (workers=%d queue=%d pool=%t engine=%s plan=%t store=%s)\n",
		*addr, *workers, *queue, *pool, *engine, *plan, storeKind(*storeDir))
	if dur := svc.Durability(); dur.Store == "wal" &&
		(dur.RecoveredQueued > 0 || dur.ReexecutedRunning > 0 || dur.CanceledAtRecovery > 0) {
		fmt.Fprintf(os.Stderr, "starmesh: crash recovery re-admitted %d queued, re-executing %d interrupted, canceled %d\n",
			dur.RecoveredQueued, dur.ReexecutedRunning, dur.CanceledAtRecovery)
	}
	err = svc.ListenAndServe(ctx, *addr)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		// The -drain-grace deadline fired: stragglers were canceled at
		// their checkpoints — the configured graceful outcome, not a
		// failure.
		fmt.Fprintln(os.Stderr, "starmesh: drained (grace deadline reached, running jobs canceled)")
		return
	case err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, http.ErrServerClosed):
		fatalf("%v", err)
	}
	fmt.Fprintln(os.Stderr, "starmesh: drained cleanly")
}

func storeKind(dir string) string {
	if dir == "" {
		return "memory"
	}
	return "wal:" + dir
}
