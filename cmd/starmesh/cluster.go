// The cluster subcommand: operator's view of a sharded deployment.
// Both verbs bootstrap the routing client from any member node's
// GET /v1/cluster, so the operator never hand-maintains a peer list
// the servers already agree on.
//
//	starmesh cluster status                    membership + merged scatter-gather stats
//	starmesh cluster drain [-wait] <node>      drain one node, migrating its queued jobs
package main

import (
	"flag"
	"os"

	"starmesh/client"
)

func cmdCluster(args []string) {
	if len(args) < 1 {
		fatalf("cluster needs a verb: status or drain")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("cluster "+verb, flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of any cluster member")
	retries := fs.Int("retries", 4, "429 retry budget per call (-1 = retry forever)")
	apiKey := fs.String("api-key", os.Getenv("STARMESH_API_KEY"),
		"tenant API key sent as X-API-Key (default $STARMESH_API_KEY; empty = anonymous tenant)")
	wait := false
	if verb == "drain" {
		fs.BoolVar(&wait, "wait", false, "await every migrated job's terminal status on its new node")
	}
	fs.Parse(rest)
	switch verb {
	case "status":
		if fs.NArg() != 0 {
			fatalf("cluster status takes no positional arguments")
		}
	case "drain":
		if fs.NArg() != 1 {
			fatalf("cluster drain needs exactly one node name (flags go before it)")
		}
	default:
		fatalf("unknown cluster verb %q: want status or drain", verb)
	}

	ctx, stop := remoteCtx()
	defer stop()
	cc, err := client.DialCluster(ctx, *addr,
		client.WithMaxRetries(*retries), client.WithAPIKey(*apiKey))
	if err != nil {
		fatalf("%v", err)
	}

	switch verb {
	case "status":
		st, err := cc.Stats(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(struct {
			Map   any `json:"map"`
			Stats any `json:"stats"`
		}{cc.Map(), st})
	case "drain":
		migrated, err := cc.Drain(ctx, fs.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(migrated)
		if !wait {
			return
		}
		failed := false
		for _, mj := range migrated {
			final, err := cc.Await(ctx, mj.To)
			if err != nil {
				fatalf("await %s: %v", mj.To, err)
			}
			printJSON(final)
			failed = failed || final.Status != client.StatusDone
		}
		if failed {
			os.Exit(1)
		}
	}
}
