// Command starmesh is a CLI for the star-graph mesh embedding.
//
// Usage:
//
//	starmesh map d_{n-1} ... d_1      mesh node -> star node (Fig 5)
//	starmesh unmap a_{n-1} ... a_0    star node -> mesh node (Fig 6)
//	starmesh route a... b...          shortest star route between two nodes
//	starmesh path k dir a_{n-1}...a_0 Lemma-2 path for a mesh step
//	starmesh info n                   properties of S_n and D_n
//	starmesh dot n                    Graphviz DOT of S_n (n <= 5)
//	starmesh fig7                     the Figure-7 table
//	starmesh surface n                distance distribution of S_n
//	starmesh broadcast n              measured broadcast rounds vs bounds
//	starmesh saferoute f a... b...    route avoiding f random faults
//	starmesh scenarios [-markdown]    the scenario-registry catalog
//	starmesh run <json-spec>          run one scenario standalone
//	starmesh serve [flags]            run the simulation job service (HTTP)
//
// Remote subcommands (drive a running service's v1 API through the
// typed client package starmesh/client):
//
//	starmesh submit [-wait] <json-spec>...   admit one job (or an atomic batch)
//	starmesh jobs [-status s] [-all]         list jobs (cursor pagination)
//	starmesh cancel [-wait] <job-id>         cancel a queued or running job
//	starmesh watch <job-id>                  stream status transitions
//	starmesh stats [-healthz]                aggregated service view / health
//	starmesh cluster status|drain <node>     sharded-cluster membership, stats, drain
//
// Node symbols are given in display order (front first), matching
// the paper: `starmesh unmap 0 3 1 2` is the node (0 3 1 2).
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"starmesh/internal/core"
	"starmesh/internal/graphalg"
	"starmesh/internal/mesh"
	"starmesh/internal/perm"
	"starmesh/internal/star"
	"starmesh/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "map":
		cmdMap(os.Args[2:])
	case "unmap":
		cmdUnmap(os.Args[2:])
	case "route":
		cmdRoute(os.Args[2:])
	case "path":
		cmdPath(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "dot":
		cmdDot(os.Args[2:])
	case "fig7":
		cmdFig7()
	case "surface":
		cmdSurface(os.Args[2:])
	case "broadcast":
		cmdBroadcast(os.Args[2:])
	case "saferoute":
		cmdSafeRoute(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "scenarios":
		cmdScenarios(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "submit":
		cmdSubmit(os.Args[2:])
	case "jobs":
		cmdJobs(os.Args[2:])
	case "cancel":
		cmdCancel(os.Args[2:])
	case "watch":
		cmdWatch(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "cluster":
		cmdCluster(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: starmesh <map|unmap|route|path|info|dot|fig7|surface|broadcast|saferoute|scenarios|run|serve|submit|jobs|cancel|watch|stats|cluster> [args]
  map d_{n-1} ... d_1        mesh node -> star node
  unmap a_{n-1} ... a_0      star node -> mesh node
  route a... b...            shortest star route (two nodes of equal length)
  path k dir a_{n-1}...a_0   Lemma-2 path for mesh step along dim k (dir=+1|-1)
  info n                     properties of S_n / D_n
  dot n                      Graphviz DOT of S_n (n <= 5)
  fig7                       regenerate Figure 7
  surface n                  distance distribution of S_n
  broadcast n                measured broadcast rounds vs bounds
  saferoute f a... b...      route avoiding f random faults
  scenarios [-markdown]      the scenario-registry catalog
  run <json-spec> [flags]    run one scenario standalone (see run -h)
  serve [flags]              simulation job service over HTTP (see serve -h)

remote subcommands against a running service's v1 API (-addr flag,
all traffic through the typed starmesh/client package):
  submit [-wait] <spec>...   admit one JSON spec (several = atomic batch)
  jobs [-status s] [-all]    list jobs, status filter + cursor pagination
  cancel [-wait] <job-id>    cancel a queued or running job
  watch <job-id>             stream status transitions until terminal
  stats [-healthz]           aggregated stats or drain-aware health
  cluster status             sharded cluster: membership + merged stats
  cluster drain [-wait] <node>  drain one node, migrating its queued jobs

scenario kinds (accepted by run, submit and POST /v1/jobs):
  %s
`, strings.Join(workload.Kinds(), ", "))
	os.Exit(2)
}

func ints(args []string) []int {
	out := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			fatalf("not an integer: %q", a)
		}
		out[i] = v
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "starmesh: "+format+"\n", args...)
	os.Exit(1)
}

// displayToPerm converts display-order symbols (front first) to a Perm.
func displayToPerm(sym []int) perm.Perm {
	rev := make([]int, len(sym))
	for i, s := range sym {
		rev[len(sym)-1-i] = s
	}
	p, err := perm.New(rev)
	if err != nil {
		fatalf("%v", err)
	}
	return p
}

func cmdMap(args []string) {
	// Arguments are d_{n-1} … d_1 in the paper's tuple order.
	ds := ints(args)
	if len(ds) == 0 {
		fatalf("map needs mesh coordinates")
	}
	pt := make([]int, len(ds))
	for i, d := range ds {
		pt[len(ds)-1-i] = d
	}
	n := len(pt) + 1
	for k := 1; k <= n-1; k++ {
		if pt[k-1] < 0 || pt[k-1] > k {
			fatalf("d_%d = %d out of range [0,%d]", k, pt[k-1], k)
		}
	}
	p := core.ConvertDS(pt)
	fmt.Printf("mesh %s  ->  star %s  (vertex id %d of %d)\n",
		mesh.DPointString(pt), p, p.Rank(), perm.Factorial(n))
}

func cmdUnmap(args []string) {
	p := displayToPerm(ints(args))
	pt := core.ConvertSD(p)
	fmt.Printf("star %s  ->  mesh %s\n", p, mesh.DPointString(pt))
}

func cmdRoute(args []string) {
	if len(args)%2 != 0 {
		fatalf("route needs two nodes of equal length")
	}
	half := len(args) / 2
	a := displayToPerm(ints(args[:half]))
	b := displayToPerm(ints(args[half:]))
	fmt.Printf("distance %d\n", star.Distance(a, b))
	for i, q := range star.Route(a, b) {
		fmt.Printf("  %2d  %s\n", i, q)
	}
}

func cmdPath(args []string) {
	if len(args) < 3 {
		fatalf("path needs k, dir and a node")
	}
	k, err := strconv.Atoi(args[0])
	if err != nil {
		fatalf("bad k")
	}
	dir, err := strconv.Atoi(args[1])
	if err != nil || (dir != 1 && dir != -1) {
		fatalf("dir must be +1 or -1")
	}
	p := displayToPerm(ints(args[2:]))
	path, ok := core.Path(p, k, dir)
	if !ok {
		fmt.Printf("node %s is at the mesh boundary along dimension %d (dir %+d)\n", p, k, dir)
		return
	}
	fmt.Printf("mesh step along dimension %d (dir %+d): %d star hops\n", k, dir, len(path)-1)
	for i, q := range path {
		fmt.Printf("  %2d  %s   (mesh %s)\n", i, q, mesh.DPointString(core.ConvertSD(q)))
	}
}

func cmdInfo(args []string) {
	if len(args) != 1 {
		fatalf("info needs n")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 2 || n > 12 {
		fatalf("n must be in 2..12")
	}
	fmt.Printf("S_%d: %d nodes, degree %d, diameter %d\n",
		n, perm.Factorial(n), n-1, star.DiameterFormula(n))
	dn := mesh.D(n)
	fmt.Printf("D_%d: %s, %d nodes, max degree %d, diameter %d\n",
		n, dn, dn.Order(), dn.MaxDegree(), dn.Diameter())
	fmt.Printf("embedding: expansion 1, dilation 3 (Theorem 4); unit route in <=3 star routes (Theorem 6)\n")
	if n <= 7 {
		g := star.New(n)
		fmt.Printf("measured: BFS diameter %d, avg distance %.2f, broadcast rounds %d (>= %d)\n",
			graphalg.DiameterFromVertex(g), graphalg.AvgDistance(g, 0),
			g.GreedyBroadcast(0), star.BroadcastLowerBound(n))
	}
}

func cmdDot(args []string) {
	if len(args) != 1 {
		fatalf("dot needs n")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 2 || n > 5 {
		fatalf("n must be in 2..5 for DOT output")
	}
	fmt.Println("graph Sn {")
	fmt.Println("  layout=neato;")
	perm.All(n, func(p perm.Perm) bool {
		id := p.Rank()
		for _, q := range star.NeighborPerms(p) {
			if q.Rank() > id {
				fmt.Printf("  %q -- %q;\n", p.String(), q.String())
			}
		}
		return true
	})
	fmt.Println("}")
}

func cmdFig7() {
	fmt.Println("D4            S4")
	for _, row := range core.Figure7 {
		pt := []int{row.Mesh[2], row.Mesh[1], row.Mesh[0]}
		fmt.Printf("%-12s  %s\n", mesh.DPointString(pt), core.ConvertDS(pt))
	}
}

func cmdSurface(args []string) {
	if len(args) != 1 {
		fatalf("surface needs n")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 2 || n > 10 {
		fatalf("n must be in 2..10")
	}
	hist := star.SurfaceAreas(n)
	fmt.Printf("S_%d: %d nodes, diameter %d, mean distance %.3f\n",
		n, perm.Factorial(n), star.DiameterFormula(n), star.MeanDistance(n))
	for d, c := range hist {
		fmt.Printf("  d=%2d: %d\n", d, c)
	}
}

func cmdBroadcast(args []string) {
	if len(args) != 1 {
		fatalf("broadcast needs n")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 2 || n > 8 {
		fatalf("n must be in 2..8")
	}
	g := star.New(n)
	rounds := g.GreedyBroadcast(0)
	fmt.Printf("S_%d greedy SIMD-B broadcast: %d unit routes\n", n, rounds)
	fmt.Printf("  information lower bound ceil(lg n!)   = %d\n", star.BroadcastLowerBound(n))
	fmt.Printf("  paper upper bound 3(n lg n - 3/2)     = %.1f\n", star.BroadcastUpperBound(n))
}

func cmdSafeRoute(args []string) {
	if len(args) < 3 || (len(args)-1)%2 != 0 {
		fatalf("saferoute needs fault count and two nodes of equal length")
	}
	f, err := strconv.Atoi(args[0])
	if err != nil || f < 0 {
		fatalf("bad fault count")
	}
	half := (len(args) - 1) / 2
	a := displayToPerm(ints(args[1 : 1+half]))
	b := displayToPerm(ints(args[1+half:]))
	g := star.New(a.N())
	if f > g.MaxSafeFaults() {
		fmt.Printf("warning: %d faults exceeds the guaranteed-safe n-2 = %d\n", f, g.MaxSafeFaults())
	}
	faulty := map[int]bool{}
	x := uint64(12345)
	for len(faulty) < f {
		x = x*6364136223846793005 + 1442695040888963407
		h := int(x % uint64(g.Order()))
		if h != g.ID(a) && h != g.ID(b) {
			faulty[h] = true
		}
	}
	fmt.Printf("faults (%d): ", len(faulty))
	for h := range faulty {
		fmt.Printf("%v ", g.Node(h))
	}
	fmt.Println()
	path := g.RouteAvoiding(a, b, faulty)
	if path == nil {
		fmt.Println("no healthy route exists")
		os.Exit(1)
	}
	fmt.Printf("healthy distance %d, detour length %d\n", star.Distance(a, b), len(path)-1)
	for i, q := range path {
		fmt.Printf("  %2d  %s\n", i, q)
	}
}
