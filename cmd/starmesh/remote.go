// The remote subcommands: submit, jobs, cancel, watch and stats
// drive a running job service's v1 API. Every byte of HTTP goes
// through the typed client package (starmesh/client) — this file
// contains zero hand-rolled HTTP.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"starmesh/client"
)

// remoteFlags declares the flags every remote subcommand shares and
// returns the client constructor.
func remoteFlags(fs *flag.FlagSet) func() *client.Client {
	addr := fs.String("addr", "http://localhost:8080", "base URL of the job service")
	retries := fs.Int("retries", 4, "429 retry budget per call (-1 = retry forever)")
	apiKey := fs.String("api-key", os.Getenv("STARMESH_API_KEY"),
		"tenant API key sent as X-API-Key (default $STARMESH_API_KEY; empty = anonymous tenant)")
	return func() *client.Client {
		return client.New(*addr, client.WithMaxRetries(*retries), client.WithAPIKey(*apiKey))
	}
}

// remoteCtx is the lifetime of a remote command: canceled by
// SIGINT/SIGTERM so a watch or await unblocks cleanly.
func remoteCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func printJSON(v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(out))
}

// cmdSubmit admits one or more JSON specs. A single spec posts to
// /v1/jobs; several go through the atomic /v1/jobs:batch. -wait
// watches every admitted job to its terminal status.
func cmdSubmit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	mk := remoteFlags(fs)
	wait := fs.Bool("wait", false, "watch each admitted job to its terminal status")
	fs.Parse(args)
	if fs.NArg() < 1 {
		fatalf(`submit needs one or more JSON job specs (try: starmesh submit '{"kind":"sweep","n":5}')`)
	}
	specs := make([]client.JobSpec, fs.NArg())
	for i, arg := range fs.Args() {
		dec := json.NewDecoder(strings.NewReader(arg))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&specs[i]); err != nil {
			fatalf("bad job spec %d: %v", i, err)
		}
	}
	ctx, stop := remoteCtx()
	defer stop()
	c := mk()

	var jobs []client.Job
	var err error
	if len(specs) == 1 {
		var job client.Job
		job, err = c.Submit(ctx, specs[0])
		jobs = []client.Job{job}
	} else {
		jobs, err = c.SubmitBatch(ctx, specs)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if !*wait {
		printJSON(jobs)
		return
	}
	failed := false
	for _, job := range jobs {
		final, err := c.Await(ctx, job.ID)
		if err != nil {
			fatalf("await %s: %v", job.ID, err)
		}
		printJSON(final)
		failed = failed || final.Status != client.StatusDone
	}
	if failed {
		os.Exit(1)
	}
}

// cmdJobs lists jobs: one page by default, -all walks the cursor
// chain to exhaustion.
func cmdJobs(args []string) {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	mk := remoteFlags(fs)
	status := fs.String("status", "", "filter by status (queued|running|done|failed|canceled)")
	limit := fs.Int("limit", 0, "page size (0 = server default)")
	cursor := fs.String("cursor", "", "resume cursor from a previous page")
	all := fs.Bool("all", false, "walk every page (ignores -cursor)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatalf("jobs takes no positional arguments")
	}
	ctx, stop := remoteCtx()
	defer stop()
	c := mk()
	opts := client.ListOptions{Status: client.Status(*status), Limit: *limit, Cursor: *cursor}
	if *all {
		jobs, err := c.ListAll(ctx, opts)
		if err != nil {
			fatalf("%v", err)
		}
		printJSON(jobs)
		return
	}
	page, err := c.List(ctx, opts)
	if err != nil {
		fatalf("%v", err)
	}
	printJSON(page)
}

// cmdCancel aborts a job: queued cancels immediately, running at the
// next cooperative checkpoint (-wait observes the terminal state).
func cmdCancel(args []string) {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	mk := remoteFlags(fs)
	wait := fs.Bool("wait", false, "wait for the terminal status after requesting the cancel")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("cancel needs exactly one job id")
	}
	ctx, stop := remoteCtx()
	defer stop()
	c := mk()
	job, err := c.Cancel(ctx, fs.Arg(0))
	if err != nil {
		if client.IsTerminal(err) {
			fatalf("job %s is already terminal: %v", fs.Arg(0), err)
		}
		fatalf("%v", err)
	}
	if *wait && !job.Status.Terminal() {
		if job, err = c.Await(ctx, job.ID); err != nil {
			fatalf("await %s: %v", fs.Arg(0), err)
		}
	}
	printJSON(job)
}

// cmdWatch streams a job's status transitions to stdout, one JSON
// document per transition, until the terminal one.
func cmdWatch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	mk := remoteFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("watch needs exactly one job id")
	}
	ctx, stop := remoteCtx()
	defer stop()
	w, err := mk().Watch(ctx, fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer w.Close()
	for {
		job, err := w.Next()
		if err != nil {
			if ctx.Err() != nil {
				return // interrupted by the user: the stream just ends
			}
			if errors.Is(err, io.EOF) {
				return // stream closed after the terminal snapshot
			}
			fatalf("watch stream broke before a terminal status: %v", err)
		}
		printJSON(job)
		if job.Status.Terminal() {
			return
		}
	}
}

// cmdStats prints the aggregated service view.
func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	mk := remoteFlags(fs)
	health := fs.Bool("healthz", false, "probe /v1/healthz instead of /v1/stats")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatalf("stats takes no positional arguments")
	}
	ctx, stop := remoteCtx()
	defer stop()
	c := mk()
	if *health {
		h, err := c.Healthz(ctx)
		if err != nil && !h.Draining {
			fatalf("%v", err)
		}
		printJSON(h)
		if h.Draining {
			os.Exit(1)
		}
		return
	}
	st, err := c.Stats(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	printJSON(st)
}
