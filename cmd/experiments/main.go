// Command experiments regenerates the paper's figures and tables and
// the measurement experiments indexed in DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -run fig7
//	experiments -run all
//	experiments -run sorting -engine parallel -workers 4
//	experiments -run plans -plan=false   // closure-resolved baseline
//	experiments -run serve               // job-service load, writes BENCH_serve.json
//	experiments -run scenarios           // one demo run per registered scenario family
//	experiments -run bench-compare       // interval bench gate, writes BENCH_compare*.json
package main

import (
	"flag"
	"fmt"
	"os"

	"starmesh/internal/experiments"
	"starmesh/internal/simd"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	engine := flag.String("engine", "sequential", "execution engine: sequential, parallel or parallel-spawn (bit-identical results)")
	workers := flag.Int("workers", 0, "parallel engine worker count (0 = GOMAXPROCS)")
	plan := flag.Bool("plan", true, "compiled route plans: record each pure schedule once, replay dense tables (bit-identical results)")
	flag.Parse()

	var opts []simd.Option
	switch *engine {
	case "sequential", "seq":
	case "parallel", "par":
		opts = append(opts, simd.WithExecutor(simd.Parallel(*workers)))
	case "parallel-spawn", "spawn":
		opts = append(opts, simd.WithExecutor(simd.ParallelSpawn(*workers)))
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown engine %q (want sequential, parallel or parallel-spawn)\n", *engine)
		os.Exit(2)
	}
	if !*plan {
		opts = append(opts, simd.WithPlans(false))
	}
	if len(opts) > 0 {
		experiments.SetEngine(opts...)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Name)
		}
		return
	}
	if *run == "all" {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	e, ok := experiments.Get(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *run)
		os.Exit(2)
	}
	fmt.Printf("== %s (%s) ==\n", e.Name, e.ID)
	if err := e.Run(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
