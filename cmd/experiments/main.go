// Command experiments regenerates the paper's figures and tables and
// the measurement experiments indexed in DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -run fig7
//	experiments -run all
//	experiments -run sorting -engine parallel -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"starmesh/internal/experiments"
	"starmesh/internal/simd"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	engine := flag.String("engine", "sequential", "execution engine: sequential or parallel (bit-identical results)")
	workers := flag.Int("workers", 0, "parallel engine worker count (0 = GOMAXPROCS)")
	flag.Parse()

	switch *engine {
	case "sequential", "seq":
	case "parallel", "par":
		experiments.SetEngine(simd.WithExecutor(simd.Parallel(*workers)))
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown engine %q (want sequential or parallel)\n", *engine)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Name)
		}
		return
	}
	if *run == "all" {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	e, ok := experiments.Get(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *run)
		os.Exit(2)
	}
	fmt.Printf("== %s (%s) ==\n", e.Name, e.ID)
	if err := e.Run(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
