// Command covercheck asserts per-package statement-coverage floors
// over a go test -coverprofile file. CI runs it after the coverage
// job so a refactor cannot silently strip the workload registry or
// the job service of their tests.
//
// Usage:
//
//	go test -coverprofile=coverage.out ./...
//	go run ./cmd/covercheck -profile coverage.out \
//	    -floor starmesh/internal/workload=75 \
//	    -floor starmesh/internal/serve=75
//
// Every -floor is `package-path=min-percent`. The tool prints the
// measured coverage of every package in the profile and exits
// non-zero if any floored package is below its floor (or absent from
// the profile entirely — no tests at all must not pass the gate).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// floors collects repeated -floor flags.
type floors map[string]float64

func (f floors) String() string { return fmt.Sprint(map[string]float64(f)) }

func (f floors) Set(v string) error {
	pkg, pct, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want package=percent, got %q", v)
	}
	p, err := strconv.ParseFloat(pct, 64)
	if err != nil || p < 0 || p > 100 {
		return fmt.Errorf("bad percent %q", pct)
	}
	f[pkg] = p
	return nil
}

type agg struct{ covered, total int }

func main() {
	profile := flag.String("profile", "coverage.out", "coverage profile written by go test -coverprofile")
	fl := floors{}
	flag.Var(fl, "floor", "package=min-percent statement-coverage floor (repeatable)")
	flag.Parse()

	perPkg, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(1)
	}

	pkgs := make([]string, 0, len(perPkg))
	for p := range perPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		a := perPkg[p]
		fmt.Printf("%6.1f%%  %s (%d/%d statements)\n", pct(a), p, a.covered, a.total)
	}

	failed := false
	for pkg, min := range fl {
		a, ok := perPkg[pkg]
		if !ok {
			fmt.Fprintf(os.Stderr, "covercheck: package %s absent from %s (floor %.1f%%)\n", pkg, *profile, min)
			failed = true
			continue
		}
		if got := pct(a); got < min {
			fmt.Fprintf(os.Stderr, "covercheck: %s at %.1f%%, below the %.1f%% floor\n", pkg, got, min)
			failed = true
		} else {
			fmt.Printf("floor ok: %s %.1f%% >= %.1f%%\n", pkg, got, min)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func pct(a agg) float64 {
	if a.total == 0 {
		return 0
	}
	return 100 * float64(a.covered) / float64(a.total)
}

// parseProfile folds a cover profile into per-package statement
// counts. Profile lines are `file.go:sl.sc,el.ec numStmts hitCount`
// with the file given import-path-style.
func parseProfile(name string) (map[string]agg, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]agg)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		file, rest, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("%s:%d: malformed line %q", name, line, text)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed line %q", name, line, text)
		}
		stmts, err1 := strconv.Atoi(fields[1])
		hits, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: malformed counts %q", name, line, text)
		}
		pkg := path.Dir(file)
		a := out[pkg]
		a.total += stmts
		if hits > 0 {
			a.covered += stmts
		}
		out[pkg] = a
	}
	return out, sc.Err()
}
