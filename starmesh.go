package starmesh

import (
	"starmesh/internal/atallah"
	"starmesh/internal/core"
	"starmesh/internal/embed"
	"starmesh/internal/graphalg"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/perm"
	"starmesh/internal/simd"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
	"starmesh/internal/virtual"
)

// EngineOption selects the execution engine of a SIMD machine: the
// strategy that carries out the per-PE work of every unit route.
// All machine constructors accept engine options; the default is the
// sequential reference engine.
type EngineOption = simd.Option

// SequentialEngine selects the single-threaded reference executor —
// the semantic ground truth every other engine must match
// bit-for-bit.
func SequentialEngine() EngineOption {
	return simd.WithExecutor(simd.Sequential())
}

// ParallelEngine selects the sharded executor: each unit route
// splits the PE range across the given number of workers (<= 0
// selects GOMAXPROCS) running on a persistent per-machine pool
// (started lazily, reused across routes, released by the machine's
// Close method or at GC), and merges per-shard results
// deterministically, so Stats, register contents and conflict
// diagnostics are identical to SequentialEngine. Programs must use
// pure per-PE functions (every algorithm in this module qualifies).
func ParallelEngine(workers int) EngineOption {
	return simd.WithExecutor(simd.Parallel(workers))
}

// SpawnParallelEngine selects the historical parallel executor that
// spawns fresh goroutines for every route instead of pooling them.
// Bit-identical to ParallelEngine; kept as the measured baseline of
// the persistent pool (see BENCH_plans.json).
func SpawnParallelEngine(workers int) EngineOption {
	return simd.WithExecutor(simd.ParallelSpawn(workers))
}

// WithPlans enables or disables compiled route plans (default
// enabled): machines record each pure unit-route schedule once —
// resolving every PE's port and destination into dense delivery
// tables via the existing closures — and replay it afterwards with a
// tight array walk, sharing compiled plans across machines of the
// same shape through SharedPlans. Replay is bit-identical to closure
// resolution (Stats, PortUses, registers, conflicts); disabling
// plans restores the per-route closure path.
func WithPlans(enabled bool) EngineOption { return simd.WithPlans(enabled) }

// RoutePlan is a compiled unit-route schedule: the value returned by
// a machine's Record method and accepted by Replay. See
// internal/simd's plan layer for the recording/replay contract.
type RoutePlan = simd.Plan

// PlanCache shares compiled route plans across machines of the same
// shape, keyed by (topology identity, schedule key).
type PlanCache = simd.PlanCache

// SharedPlans is the process-wide plan cache every machine records
// into by default.
var SharedPlans = simd.SharedPlans

// Perm is a star-graph node label: a permutation of {0..n-1} with
// Perm[i] the symbol at position i and position n-1 the front. Its
// String renders the paper's display form, e.g. "(0 3 1 2)".
type Perm = perm.Perm

// NewPerm validates and copies a permutation given as the symbol at
// each position (position 0 first; the front symbol is the last
// element).
func NewPerm(symbols []int) (Perm, error) { return perm.New(symbols) }

// IdentityPerm returns (n-1 n-2 … 1 0), the image of the mesh origin.
func IdentityPerm(n int) Perm { return perm.Identity(n) }

// MapMeshNode maps mesh coordinates onto a star node — the paper's
// CONVERT-D-S (Figure 5). pt[k-1] = d_k with 0 ≤ d_k ≤ k, so len(pt)
// = n-1 for S_n. O(n²).
func MapMeshNode(pt []int) Perm { return core.ConvertDS(pt) }

// UnmapStarNode inverts MapMeshNode — the paper's CONVERT-S-D
// (Figure 6). O(n²).
func UnmapStarNode(p Perm) []int { return core.ConvertSD(p) }

// MeshNeighbor returns the star node hosting the mesh neighbor of
// p's mesh node along dimension k (1 ≤ k ≤ n-1) in direction dir
// (±1), computed by the closed form of Lemma 3 without converting
// back to mesh coordinates. ok is false at the mesh boundary.
func MeshNeighbor(p Perm, k, dir int) (q Perm, ok bool) { return core.Neighbor(p, k, dir) }

// EdgePath returns the host path (of length 1 or 3, Lemma 2)
// realizing the mesh edge from p along dimension k, direction dir.
func EdgePath(p Perm, k, dir int) (path []Perm, ok bool) { return core.Path(p, k, dir) }

// StarDistance returns the exact shortest-path distance between two
// star nodes (closed form; no search).
func StarDistance(p, q Perm) int { return star.Distance(p, q) }

// StarRoute returns one shortest path between two star nodes.
func StarRoute(p, q Perm) []Perm { return star.Route(p, q) }

// Star is the star graph S_n with dense vertex ids (permutation
// ranks in [0, n!)).
type Star struct {
	G *star.Graph
}

// NewStar returns S_n.
func NewStar(n int) Star { return Star{G: star.New(n)} }

// N returns the star parameter n.
func (s Star) N() int { return s.G.N() }

// Order returns n!.
func (s Star) Order() int { return s.G.Order() }

// Degree returns n-1.
func (s Star) Degree() int { return s.G.Degree() }

// Diameter returns ⌊3(n-1)/2⌋.
func (s Star) Diameter() int { return star.DiameterFormula(s.G.N()) }

// Node returns the permutation with vertex id.
func (s Star) Node(id int) Perm { return s.G.Node(id) }

// ID returns the vertex id of a permutation.
func (s Star) ID(p Perm) int { return s.G.ID(p) }

// Neighbors returns the vertex ids adjacent to id.
func (s Star) Neighbors(id int) []int { return graphalg.Neighbors(s.G, id) }

// BroadcastRounds simulates greedy SIMD-B broadcast from the given
// vertex and returns the unit routes used.
func (s Star) BroadcastRounds(source int) int { return s.G.GreedyBroadcast(source) }

// DMesh is the paper's guest mesh D_n of shape 2×3×…×n.
type DMesh struct {
	M *mesh.Mesh
}

// NewDMesh returns D_n.
func NewDMesh(n int) DMesh { return DMesh{M: mesh.D(n)} }

// Order returns n!.
func (d DMesh) Order() int { return d.M.Order() }

// Dims returns n-1.
func (d DMesh) Dims() int { return d.M.Dims() }

// Coords decodes a mesh id (pt[k-1] = d_k).
func (d DMesh) Coords(id int) []int { return d.M.Coords(nil, id) }

// ID encodes mesh coordinates.
func (d DMesh) ID(pt []int) int { return d.M.ID(pt) }

// Embedding is the paper's dilation-3, expansion-1 embedding of D_n
// into S_n, with measured quality metrics.
type Embedding struct {
	N int
	E *embed.Embedding
}

// NewEmbedding assembles the embedding for S_n.
func NewEmbedding(n int) Embedding { return Embedding{N: n, E: core.NewEmbedding(n)} }

// Metrics measures expansion, dilation (max and average) and
// congestion over every guest edge using the Lemma-2 paths.
func (e Embedding) Metrics() embed.Metrics { return e.E.Measure() }

// Dilation returns the exact dilation via closed-form star distances.
func (e Embedding) Dilation() int { return e.E.DilationOnly() }

// Validate checks structural soundness of the embedding.
func (e Embedding) Validate() error { return e.E.Validate() }

// HostID returns the star vertex hosting mesh node id.
func (e Embedding) HostID(meshID int) int { return e.E.VertexMap[meshID] }

// NewRectEmbedding embeds the d-dimensional rectangular mesh
// obtained from the appendix factorization of n! into S_n (grouped
// snake realization + Lemma-2 paths): expansion 1, dilation 3 for
// any 1 ≤ d ≤ n-1.
func NewRectEmbedding(n, d int) Embedding {
	return Embedding{N: n, E: atallah.EmbedRect(n, d)}
}

// MeshMachine is a mesh-connected SIMD computer (unit-route counting
// simulator).
type MeshMachine = meshsim.Machine

// NewMeshMachine builds a machine over an arbitrary rectangular mesh
// with the given dimension sizes.
func NewMeshMachine(sizes []int, opts ...EngineOption) *MeshMachine {
	return meshsim.New(mesh.New(sizes...), opts...)
}

// NewDMeshMachine builds a machine over D_n.
func NewDMeshMachine(n int, opts ...EngineOption) *MeshMachine {
	return meshsim.New(mesh.D(n), opts...)
}

// StarMachine is a star-connected SIMD computer; its MeshUnitRoute
// performs the Theorem-6 three-route simulation of a mesh unit
// route.
type StarMachine = starsim.Machine

// NewStarMachine builds a machine over S_n.
func NewStarMachine(n int, opts ...EngineOption) *StarMachine { return starsim.New(n, opts...) }

// VirtualMachine runs the larger mesh D_{n+1} on S_n with n+1
// virtual mesh nodes per PE (amortized route factor ≤ 3; the extra
// dimension is an intra-PE slot shuffle and costs no routes).
type VirtualMachine = virtual.Machine

// NewVirtualMachine builds the virtualized machine over S_n.
func NewVirtualMachine(n int, opts ...EngineOption) *VirtualMachine {
	return virtual.New(n, opts...)
}
