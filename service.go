package starmesh

import (
	"context"

	"starmesh/internal/serve"
)

// The job service (internal/serve) turns the library into a
// long-running system: typed JobSpecs are admitted through a bounded
// scheduler with backpressure and cancellation, executed on
// per-shape machine pools that amortize topology construction, route
// tables, compiled plans and engine worker pools across jobs of the
// same (topology, engine) shape, and recorded in an in-memory store
// with p50/p99 latency and unit-route aggregation. The facade
// re-exports the service types; `starmesh serve` runs it over HTTP.

// JobService is a running simulation job service.
type JobService = serve.Service

// ServiceConfig shapes a JobService; its zero value is a working
// default (GOMAXPROCS workers, 64-deep queue, pooling on, sequential
// engine with plans).
type ServiceConfig = serve.Config

// JobSpec is the typed description of one simulation job: scenario
// kind, machine shape and parameters. All randomness derives from
// its Seed, so a spec fully determines its result.
type JobSpec = serve.JobSpec

// Job is one admitted job and its outcome.
type Job = serve.Job

// JobStatus is a job's lifecycle state.
type JobStatus = serve.Status

// ServiceStats is the aggregated service view: status counts,
// latency percentiles, unit-route totals and per-shape pool
// counters.
type ServiceStats = serve.Stats

// Job kinds accepted by the service.
const (
	JobSort       = serve.KindSort
	JobShear      = serve.KindShear
	JobBroadcast  = serve.KindBroadcast
	JobSweep      = serve.KindSweep
	JobFaultRoute = serve.KindFaultRoute
)

// NewJobService starts a job service (workers running, admission
// open). Shut it down with Drain, which stops admission, completes
// every admitted job and releases the machine pools.
func NewJobService(cfg ServiceConfig) (*JobService, error) {
	return serve.NewService(cfg)
}

// ServeJobs runs a job service's HTTP API on addr until ctx is
// canceled, then drains gracefully.
func ServeJobs(ctx context.Context, cfg ServiceConfig, addr string) error {
	svc, err := serve.NewService(cfg)
	if err != nil {
		return err
	}
	return svc.ListenAndServe(ctx, addr)
}
