package starmesh

import (
	"context"

	"starmesh/internal/serve"
	"starmesh/internal/workload"
)

// The job service (internal/serve) turns the library into a
// long-running system: typed JobSpecs are admitted through a bounded
// scheduler with backpressure and cancellation (queued AND running —
// every runner carries cooperative checkpoints), executed on
// per-shape machine pools that amortize topology construction, route
// tables, compiled plans and engine worker pools across jobs of the
// same (topology, engine) shape, and recorded in an in-memory store
// with p50/p99 latency and unit-route aggregation. The facade
// re-exports the service types; `starmesh serve` runs the versioned
// v1 HTTP API, and the public typed client (package starmesh/client)
// is the supported way to drive it remotely.

// JobService is a running simulation job service.
type JobService = serve.Service

// ServiceConfig shapes a JobService; its zero value is a working
// default (GOMAXPROCS workers, 64-deep queue, pooling on, sequential
// engine with plans).
type ServiceConfig = serve.Config

// JobSpec is the typed description of one simulation job: scenario
// kind, machine shape and parameters. All randomness derives from
// its Seed, so a spec fully determines its result.
type JobSpec = serve.JobSpec

// Job is one admitted job and its outcome.
type Job = serve.Job

// JobStatus is a job's lifecycle state.
type JobStatus = serve.Status

// ServiceStats is the aggregated service view: status counts,
// latency percentiles, unit-route totals and per-shape pool
// counters.
type ServiceStats = serve.Stats

// JobPage is one page of the v1 job listing (status filter + cursor
// pagination, newest first).
type JobPage = serve.JobPage

// JobListQuery filters and paginates JobService.ListJobs.
type JobListQuery = serve.ListQuery

// ServiceHealth is the /v1/healthz body: "ok" or "draining".
type ServiceHealth = serve.Health

// ServiceErrorCode is the v1 API's machine-readable error class; the
// HTTP layer maps each code to its status exactly once.
type ServiceErrorCode = serve.ErrorCode

// Job kinds accepted by the service — one constant per registered
// scenario family; ScenarioKinds returns the authoritative list.
const (
	JobSort        = serve.KindSort
	JobShear       = serve.KindShear
	JobBroadcast   = serve.KindBroadcast
	JobSweep       = serve.KindSweep
	JobFaultRoute  = serve.KindFaultRoute
	JobEmbedRect   = serve.KindEmbedRect
	JobPermRoute   = serve.KindPermRoute
	JobVirtual     = serve.KindVirtual
	JobDiagnostics = serve.KindDiagnostics
	JobPipeline    = serve.KindPipeline
)

// ScenarioResult is one scenario run's outcome: unit-route cost,
// conflicts, self-check verdict.
type ScenarioResult = workload.ScenarioResult

// ScenarioFamily is one scenario kind's registry entry: validation,
// pool shape, construction, execution and naming in one value.
// Adding a family to the registry makes it available to the job
// service, the CLI, the experiments and RunScenario at once.
type ScenarioFamily = workload.Family

// ScenarioKinds returns every registered scenario kind in catalog
// order.
func ScenarioKinds() []string { return workload.Kinds() }

// ScenarioFamilies returns every registered scenario family in
// catalog order.
func ScenarioFamilies() []*ScenarioFamily { return workload.Builtin.Families() }

// ScenarioCatalog renders the registry's scenario table as markdown
// (the README's catalog is this exact output).
func ScenarioCatalog() string { return workload.CatalogMarkdown() }

// RunScenario validates a spec against the scenario registry and
// executes it standalone on a fresh machine (built with the given
// engine options, closed after). The result is bit-identical to the
// job service executing the same spec on a pooled machine. The
// context cancels the run at the runner's next cooperative
// checkpoint (the v1 cancellation contract).
func RunScenario(ctx context.Context, spec JobSpec, opts ...EngineOption) (ScenarioResult, error) {
	sc, err := workload.ScenarioFor(spec, opts...)
	if err != nil {
		return ScenarioResult{}, err
	}
	return sc.Run(ctx)
}

// NewJobService starts a job service (workers running, admission
// open). Shut it down with Drain, which stops admission, completes
// every admitted job and releases the machine pools.
func NewJobService(cfg ServiceConfig) (*JobService, error) {
	return serve.NewService(cfg)
}

// ServeJobs runs a job service's HTTP API on addr until ctx is
// canceled, then drains gracefully.
func ServeJobs(ctx context.Context, cfg ServiceConfig, addr string) error {
	svc, err := serve.NewService(cfg)
	if err != nil {
		return err
	}
	return svc.ListenAndServe(ctx, addr)
}
