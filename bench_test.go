// Benchmarks regenerating every figure and table of the paper (one
// benchmark per artifact; see DESIGN.md's per-experiment index).
// Each benchmark executes the corresponding experiment end to end —
// workload generation, simulation and table rendering — so
// `go test -bench=. -benchmem` doubles as the full reproduction run.
package starmesh_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"starmesh"
	"starmesh/internal/core"
	"starmesh/internal/experiments"
	"starmesh/internal/exptab"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/perm"
	"starmesh/internal/simd"
	"starmesh/internal/sorting"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2StarTopology(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3MeshTopology(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4Example(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkTable1Exchanges(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig7Mapping(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkLemma1(b *testing.B)            { benchExperiment(b, "lemma1") }
func BenchmarkLemma2(b *testing.B)            { benchExperiment(b, "lemma2") }
func BenchmarkTheorem4Dilation(b *testing.B)  { benchExperiment(b, "dilation") }
func BenchmarkTheorem6UnitRoute(b *testing.B) { benchExperiment(b, "unitroute") }
func BenchmarkStarProperties(b *testing.B)    { benchExperiment(b, "properties") }
func BenchmarkBroadcast(b *testing.B)         { benchExperiment(b, "broadcast") }
func BenchmarkFaultTolerance(b *testing.B)    { benchExperiment(b, "faults") }
func BenchmarkAtallahSimulation(b *testing.B) { benchExperiment(b, "atallah") }
func BenchmarkTheorem9(b *testing.B)          { benchExperiment(b, "theorem9") }
func BenchmarkSortOnStar(b *testing.B)        { benchExperiment(b, "sorting") }
func BenchmarkAppendixSweep(b *testing.B)     { benchExperiment(b, "appendix") }
func BenchmarkAblationEmbeddings(b *testing.B) {
	benchExperiment(b, "ablation")
}
func BenchmarkScheduleAblation(b *testing.B) { benchExperiment(b, "schedule") }
func BenchmarkEmbedRect(b *testing.B)        { benchExperiment(b, "embedrect") }
func BenchmarkCollectives(b *testing.B)      { benchExperiment(b, "collectives") }
func BenchmarkPermRouting(b *testing.B)      { benchExperiment(b, "permroute") }
func BenchmarkSurfaceAreas(b *testing.B)     { benchExperiment(b, "surface") }

// --- Microbenchmarks of the core operations -----------------------

func BenchmarkConvertDSPerOp(b *testing.B) {
	pts := workload.MeshPoints(10, 64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.ConvertDS(pts[i%len(pts)])
	}
}

func BenchmarkConvertSDPerOp(b *testing.B) {
	ps := workload.Perms(10, 64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.ConvertSD(ps[i%len(ps)])
	}
}

func BenchmarkMeshNeighborClosedForm(b *testing.B) {
	ps := workload.Perms(10, 64, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = core.Neighbor(ps[i%len(ps)], 7, +1)
	}
}

func BenchmarkStarDistanceClosedForm(b *testing.B) {
	ps := workload.Perms(12, 64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = starmesh.StarDistance(ps[i%len(ps)], ps[(i+1)%len(ps)])
	}
}

func BenchmarkUnitRouteStarN6(b *testing.B) {
	m := starsim.New(6)
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MeshUnitRoute("A", "B", 1+i%5, +1)
	}
}

func BenchmarkUnitRouteMeshN6(b *testing.B) {
	m := meshsim.New(mesh.D(6))
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UnitRoute("A", "B", i%5, +1)
	}
}

func BenchmarkSnakeSortStarN4End2End(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	meshID := make([]int, 24)
	for pe := range meshID {
		meshID[pe] = core.UnmapID(4, pe)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sm := starsim.New(4)
		sm.AddReg("K")
		sm.Set("K", func(pe int) int64 { return int64(rng.Intn(1 << 16)) })
		if !sorting.SnakeSortStar(sm, "K", meshID).Sorted {
			b.Fatal("not sorted")
		}
	}
}

func BenchmarkEmbeddingConstructionN7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.NewEmbedding(7)
	}
}

func BenchmarkRankUnrank(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := perm.Unrank(10, int64(i)%perm.Factorial(10))
		_ = p.Rank()
	}
}

// Keep exptab linked for table-rendering benches.
var _ = exptab.New

func BenchmarkMultiDimShear(b *testing.B) { benchExperiment(b, "mdshear") }
func BenchmarkUtilization(b *testing.B)   { benchExperiment(b, "utilization") }

// --- Execution engine: parallel sharded executor & route cache ----
//
// The S_8 workload (40,320 PEs) that BENCH_engine.json records: a
// full mesh-unit-route sweep, every dimension and direction, under
// (a) the pre-engine baseline (route cache disabled — the original
// closure-per-PE role tests), (b) the engine's sequential executor,
// and (c) the sharded parallel executor.

const engineBenchN = 8

func BenchmarkEngineSweepS8Baseline(b *testing.B) {
	m := starsim.New(engineBenchN, simd.WithPlans(false))
	m.SetRouteCache(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.EngineSweep(m)
	}
}

func BenchmarkEngineSweepS8Sequential(b *testing.B) {
	m := starsim.New(engineBenchN, simd.WithPlans(false))
	workload.EngineSweep(m) // warm the route tables outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.EngineSweep(m)
	}
}

func BenchmarkEngineSweepS8Parallel(b *testing.B) {
	m := starsim.New(engineBenchN, simd.WithExecutor(simd.Parallel(0)), simd.WithPlans(false))
	defer m.Close()
	workload.EngineSweep(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.EngineSweep(m)
	}
}

// Plan replay on the same sweep: the route schedule is compiled on
// the warm-up pass and replayed as dense delivery tables afterwards.
func BenchmarkEngineSweepS8Replay(b *testing.B) {
	m := starsim.New(engineBenchN)
	workload.EngineSweep(m) // records the plans
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.EngineSweep(m)
	}
}

func BenchmarkEngineSweepS8ReplayParallel(b *testing.B) {
	m := starsim.New(engineBenchN, simd.WithExecutor(simd.Parallel(0)))
	defer m.Close()
	workload.EngineSweep(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.EngineSweep(m)
	}
}

func BenchmarkEngineBatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := workload.RunBatch(context.Background(), workload.StandardBatch(5, 42), 0)
		if len(res.Errors) != 0 {
			b.Fatalf("batch errors: %v", res.Errors)
		}
	}
}

// Pooled vs spawn-per-route parallel execution on a multi-worker
// batch: each scenario machine runs the sharded executor with two
// workers; the pool variant parks them, the spawn variant creates
// fresh goroutines for every phase of every route.
func BenchmarkEngineBatchPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := workload.RunBatch(context.Background(), workload.StandardBatch(5, 42, simd.WithExecutor(simd.Parallel(2))), 0)
		if len(res.Errors) != 0 {
			b.Fatalf("batch errors: %v", res.Errors)
		}
	}
}

func BenchmarkEngineBatchSpawn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := workload.RunBatch(context.Background(), workload.StandardBatch(5, 42, simd.WithExecutor(simd.ParallelSpawn(2))), 0)
		if len(res.Errors) != 0 {
			b.Fatalf("batch errors: %v", res.Errors)
		}
	}
}

func BenchmarkEngineExperiment(b *testing.B) { benchExperiment(b, "engine") }

// TestEngineBenchRecord measures the S_8 sweep under all three
// closure-path execution modes plus the replay path's GOMAXPROCS
// 1→8 scaling curve, checks the engine determinism contract at every
// point, and emits the perf record. It writes BENCH_engine.json at
// the repository root when BENCH_ENGINE_RECORD is set (CI's bench
// job and the Makefile's bench target set it); otherwise the record
// goes to a scratch directory and the test only checks parity.
//
// When BENCH_ENGINE_GATE is also set AND the host has ≥ 4 CPUs, the
// test fails unless the parallel replay beats sequential replay by
// ≥ 1.5x at 4 procs. The CPU-count guard keeps the gate meaningful:
// GOMAXPROCS above the physical core count only time-slices, so a
// single-core host can never show real scaling and silently skips.
func TestEngineBenchRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping S_8 engine measurement in -short mode")
	}
	const reps = 2
	// Each mode is measured as the best of three timed windows: the
	// sweep is deterministic, so the windows differ only by scheduler
	// and GC jitter, and the minimum is the honest cost.
	measure := func(m *starsim.Machine, reps int) (time.Duration, simd.Stats, int64) {
		workload.EngineSweep(m) // warm route tables, plans and registers
		best := time.Duration(0)
		var stats simd.Stats
		for try := 0; try < 3; try++ {
			m.ResetStats()
			start := time.Now()
			for r := 0; r < reps; r++ {
				workload.EngineSweep(m)
			}
			elapsed := time.Since(start)
			stats = m.Stats()
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, stats, workload.RegChecksum(m, "W")
	}

	// Closure path (plans off): the engine's route-cache and executor
	// costs in isolation; BENCH_plans.json covers replay vs closure.
	base := starsim.New(engineBenchN, simd.WithPlans(false))
	base.SetRouteCache(false)
	baseTime, baseStats, baseSum := measure(base, reps)
	seqTime, seqStats, seqSum := measure(starsim.New(engineBenchN, simd.WithPlans(false)), reps)
	par := starsim.New(engineBenchN, simd.WithExecutor(simd.Parallel(0)), simd.WithPlans(false))
	defer par.Close()
	parTime, parStats, parSum := measure(par, reps)

	if seqStats != parStats || seqSum != parSum {
		t.Fatalf("parallel executor diverged from sequential on S_%d:\nseq %+v sum %d\npar %+v sum %d",
			engineBenchN, seqStats, seqSum, parStats, parSum)
	}
	if seqStats != baseStats || seqSum != baseSum {
		t.Fatalf("route cache diverged from the generic baseline on S_%d:\nbase %+v sum %d\nseq %+v sum %d",
			engineBenchN, baseStats, baseSum, seqStats, seqSum)
	}

	// Replay path (plans on — the production path): sequential replay
	// as the scaling reference, then the parallel executor swept
	// GOMAXPROCS 1→8 on one warmed machine. Parallel(0) resolves its
	// worker count per route, so mutating GOMAXPROCS between points
	// reuses the same machine, plans and banks. More reps than the
	// closure path: replay is ~10x faster per sweep, so extra reps buy
	// noise reduction cheaply.
	const scalingMaxProcs = 8
	const scalingReps = 8
	replaySeqTime, replaySeqStats, replaySeqSum := measure(starsim.New(engineBenchN), scalingReps)
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	parReplay := starsim.New(engineBenchN, simd.WithExecutor(simd.Parallel(0)))
	defer parReplay.Close()
	curve := make([]workload.ScalingPoint, 0, scalingMaxProcs)
	for procs := 1; procs <= scalingMaxProcs; procs++ {
		runtime.GOMAXPROCS(procs)
		ptTime, ptStats, ptSum := measure(parReplay, scalingReps)
		if ptStats != replaySeqStats || ptSum != replaySeqSum {
			t.Fatalf("parallel replay diverged from sequential replay on S_%d at %d procs:\nseq %+v sum %d\npar %+v sum %d",
				engineBenchN, procs, replaySeqStats, replaySeqSum, ptStats, ptSum)
		}
		curve = append(curve, workload.ScalingPoint{
			Procs:    procs,
			ReplayNs: ptTime.Nanoseconds(),
			Speedup:  float64(replaySeqTime) / float64(ptTime),
		})
	}
	runtime.GOMAXPROCS(prevProcs)
	speedupAt4 := curve[3].Speedup
	if os.Getenv("BENCH_ENGINE_GATE") != "" {
		if runtime.NumCPU() < 4 {
			t.Logf("BENCH_ENGINE_GATE set but host has %d CPUs; skipping the 4-proc speedup gate", runtime.NumCPU())
		} else if speedupAt4 < 1.5 {
			t.Fatalf("parallel replay at 4 procs is %.2fx sequential, below the 1.5x gate (sequential %v, 4-proc %v)",
				speedupAt4, replaySeqTime, time.Duration(curve[3].ReplayNs))
		}
	}

	batch := workload.RunBatch(context.Background(), workload.StandardBatch(5, 42, simd.WithPlans(false)), 0)
	if len(batch.Errors) != 0 {
		t.Fatalf("batch errors: %v", batch.Errors)
	}

	rec := workload.BenchRecord{
		Benchmark:          fmt.Sprintf("engine-S%d-mesh-route-sweep", engineBenchN),
		Timestamp:          time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:         prevProcs,
		HostCPUs:           runtime.NumCPU(),
		N:                  engineBenchN,
		PEs:                int(perm.Factorial(engineBenchN)),
		Reps:               reps,
		BaselineNs:         baseTime.Nanoseconds(),
		SequentialNs:       seqTime.Nanoseconds(),
		ParallelNs:         parTime.Nanoseconds(),
		SpeedupEngine:      float64(baseTime) / float64(seqTime),
		SpeedupParallel:    speedupAt4,
		ReplaySequentialNs: replaySeqTime.Nanoseconds(),
		ReplayScaling:      curve,
		Batch:              &batch,
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if os.Getenv("BENCH_ENGINE_RECORD") != "" {
		path = "BENCH_engine.json"
	}
	if err := rec.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	t.Logf("S_%d sweep ×%d: baseline %v, sequential %v (%.2fx), parallel %v; replay ×%d: sequential %v, 4-proc %.2fx (%d host CPUs) → %s",
		engineBenchN, reps, baseTime, seqTime, rec.SpeedupEngine, parTime,
		scalingReps, replaySeqTime, speedupAt4, rec.HostCPUs, path)
	if os.Getenv("BENCH_ENGINE_RECORD") != "" {
		exptab.StepSummary("### Engine bench (S_%d)\n"+
			"engine speedup %.2fx vs baseline · parallel replay at 4 procs %.2fx (gate ≥ 1.5x, %d host CPUs)",
			engineBenchN, rec.SpeedupEngine, speedupAt4, rec.HostCPUs)
	}
}

// TestPlanBenchRecord measures compiled route plans and the
// persistent worker pool on the S_8 sweep and a multi-worker batch
// run, asserts parity (bit-identical stats and registers) and the
// perf gate — plan replay must not be slower than closure resolution
// — and emits the perf record. It writes BENCH_plans.json at the
// repository root when BENCH_PLANS_RECORD is set (CI's bench job and
// the Makefile's bench-plans target set it, with GOMAXPROCS > 1);
// otherwise the record goes to a scratch directory and the test only
// checks parity and the gate.
func TestPlanBenchRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping S_8 plan measurement in -short mode")
	}
	const reps = 2
	measure := func(m *starsim.Machine) (time.Duration, simd.Stats, int64) {
		workload.EngineSweep(m) // warm: records plans / builds route tables
		m.ResetStats()
		start := time.Now()
		for r := 0; r < reps; r++ {
			workload.EngineSweep(m)
		}
		return time.Since(start), m.Stats(), workload.RegChecksum(m, "W")
	}

	closure := starsim.New(engineBenchN, simd.WithPlans(false))
	closureTime, closureStats, closureSum := measure(closure)
	replay := starsim.New(engineBenchN)
	replayTime, replayStats, replaySum := measure(replay)

	parityOK := closureStats == replayStats && closureSum == replaySum
	if !parityOK {
		t.Fatalf("plan replay diverged from closure resolution on S_%d:\nclosure %+v sum %d\nreplay  %+v sum %d",
			engineBenchN, closureStats, closureSum, replayStats, replaySum)
	}
	if replayTime > closureTime {
		// Hard perf gate only in the bench job (BENCH_PLANS_RECORD
		// set): a timing assertion has no place in the tier-1 / race
		// runs, where scheduler noise could fail an unrelated change.
		msg := fmt.Sprintf("plan replay slower than closure resolution on the S_%d sweep: replay %v, closure %v",
			engineBenchN, replayTime, closureTime)
		if os.Getenv("BENCH_PLANS_RECORD") != "" {
			t.Fatal(msg)
		}
		t.Log("WARNING: " + msg)
	}

	// Persistent pool vs spawn-per-route on a multi-worker batch:
	// every scenario machine shards its routes across 2 workers, with
	// plans disabled so every unit route actually dispatches to the
	// workers (replayed small-machine steps would bypass them). The
	// batch is measured best-of-3 to denoise scheduler jitter.
	const batchWorkers = 2
	runBatch := func(exec simd.Executor) (time.Duration, workload.BatchResult) {
		best := time.Duration(0)
		var res workload.BatchResult
		for i := 0; i < 3; i++ {
			start := time.Now()
			r := workload.RunBatch(context.Background(), workload.StandardBatch(5, 42,
				simd.WithExecutor(exec), simd.WithPlans(false)), 0)
			elapsed := time.Since(start)
			if len(r.Errors) != 0 {
				t.Fatalf("batch errors under %s: %v", exec.Name(), r.Errors)
			}
			if best == 0 || elapsed < best {
				best, res = elapsed, r
			}
		}
		return best, res
	}
	spawnTime, spawnRes := runBatch(simd.ParallelSpawn(batchWorkers))
	poolTime, poolRes := runBatch(simd.Parallel(batchWorkers))
	batchParity := len(spawnRes.Scenarios) == len(poolRes.Scenarios)
	sortRoutes := 0
	for i := range spawnRes.Scenarios {
		sp, po := spawnRes.Scenarios[i], poolRes.Scenarios[i]
		if sp.Name != po.Name || sp.UnitRoutes != po.UnitRoutes || sp.Conflicts != po.Conflicts || sp.OK != po.OK {
			batchParity = false
		}
		if i == 0 {
			sortRoutes = po.UnitRoutes
		}
	}
	if !batchParity {
		t.Fatalf("pool batch results diverged from spawn batch:\nspawn %+v\npool  %+v", spawnRes, poolRes)
	}
	if poolTime > spawnTime {
		t.Logf("WARNING: pooled batch (%v) slower than spawn-per-route (%v) on this host", poolTime, spawnTime)
	}

	rec := workload.PlanBenchRecord{
		Benchmark:       fmt.Sprintf("plans-S%d-mesh-route-sweep", engineBenchN),
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		N:               engineBenchN,
		PEs:             int(perm.Factorial(engineBenchN)),
		Reps:            reps,
		ClosureNs:       closureTime.Nanoseconds(),
		ReplayNs:        replayTime.Nanoseconds(),
		SpeedupReplay:   float64(closureTime) / float64(replayTime),
		ParityOK:        parityOK,
		BatchWorkers:    batchWorkers,
		SpawnBatchNs:    spawnTime.Nanoseconds(),
		PoolBatchNs:     poolTime.Nanoseconds(),
		SpeedupPool:     float64(spawnTime) / float64(poolTime),
		BatchParityOK:   batchParity,
		PlansCached:     simd.SharedPlans.Len(),
		BatchScenarios:  len(poolRes.Scenarios),
		BatchBatchSize:  3,
		BatchSortRoutes: sortRoutes,
	}
	path := filepath.Join(t.TempDir(), "BENCH_plans.json")
	if os.Getenv("BENCH_PLANS_RECORD") != "" {
		path = "BENCH_plans.json"
	}
	if err := rec.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	t.Logf("S_%d sweep ×%d: closure %v, replay %v (%.2fx); batch ×%d workers: spawn %v, pool %v (%.2fx) → %s",
		engineBenchN, reps, closureTime, replayTime, rec.SpeedupReplay,
		batchWorkers, spawnTime, poolTime, rec.SpeedupPool, path)
	if os.Getenv("BENCH_PLANS_RECORD") != "" {
		exptab.StepSummary("### Plans bench (S_%d)\n"+
			"plan replay %.2fx vs closure · pooled batch %.2fx vs spawn · parity %t",
			engineBenchN, rec.SpeedupReplay, rec.SpeedupPool, parityOK && batchParity)
	}
}

// Scaling sub-benchmarks: the O(n²) conversions and O(n) neighbor
// rule across star sizes.
func BenchmarkConvertScaling(b *testing.B) {
	for _, n := range []int{6, 8, 10, 12, 16, 20} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := workload.MeshPoints(n, 16, int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := core.ConvertDS(pts[i%len(pts)])
				_ = core.ConvertSD(p)
			}
		})
	}
}

func BenchmarkStarMachineScaling(b *testing.B) {
	for _, n := range []int{4, 5, 6, 7} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := starsim.New(n)
			m.AddReg("A")
			m.AddReg("B")
			m.Set("A", func(pe int) int64 { return int64(pe) })
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.MeshUnitRoute("A", "B", 1+i%(n-1), +1)
			}
		})
	}
}

func BenchmarkBroadcastScaling(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := starmesh.NewStar(n)
			for i := 0; i < b.N; i++ {
				_ = g.BroadcastRounds(0)
			}
		})
	}
}

func BenchmarkVirtualization(b *testing.B) { benchExperiment(b, "virtual") }
