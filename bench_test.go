// Benchmarks regenerating every figure and table of the paper (one
// benchmark per artifact; see DESIGN.md's per-experiment index).
// Each benchmark executes the corresponding experiment end to end —
// workload generation, simulation and table rendering — so
// `go test -bench=. -benchmem` doubles as the full reproduction run.
package starmesh_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"starmesh"
	"starmesh/internal/core"
	"starmesh/internal/experiments"
	"starmesh/internal/exptab"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/perm"
	"starmesh/internal/sorting"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2StarTopology(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3MeshTopology(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4Example(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkTable1Exchanges(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig7Mapping(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkLemma1(b *testing.B)            { benchExperiment(b, "lemma1") }
func BenchmarkLemma2(b *testing.B)            { benchExperiment(b, "lemma2") }
func BenchmarkTheorem4Dilation(b *testing.B)  { benchExperiment(b, "dilation") }
func BenchmarkTheorem6UnitRoute(b *testing.B) { benchExperiment(b, "unitroute") }
func BenchmarkStarProperties(b *testing.B)    { benchExperiment(b, "properties") }
func BenchmarkBroadcast(b *testing.B)         { benchExperiment(b, "broadcast") }
func BenchmarkFaultTolerance(b *testing.B)    { benchExperiment(b, "faults") }
func BenchmarkAtallahSimulation(b *testing.B) { benchExperiment(b, "atallah") }
func BenchmarkTheorem9(b *testing.B)          { benchExperiment(b, "theorem9") }
func BenchmarkSortOnStar(b *testing.B)        { benchExperiment(b, "sorting") }
func BenchmarkAppendixSweep(b *testing.B)     { benchExperiment(b, "appendix") }
func BenchmarkAblationEmbeddings(b *testing.B) {
	benchExperiment(b, "ablation")
}
func BenchmarkScheduleAblation(b *testing.B) { benchExperiment(b, "schedule") }
func BenchmarkEmbedRect(b *testing.B)        { benchExperiment(b, "embedrect") }
func BenchmarkCollectives(b *testing.B)      { benchExperiment(b, "collectives") }
func BenchmarkPermRouting(b *testing.B)      { benchExperiment(b, "permroute") }
func BenchmarkSurfaceAreas(b *testing.B)     { benchExperiment(b, "surface") }

// --- Microbenchmarks of the core operations -----------------------

func BenchmarkConvertDSPerOp(b *testing.B) {
	pts := workload.MeshPoints(10, 64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.ConvertDS(pts[i%len(pts)])
	}
}

func BenchmarkConvertSDPerOp(b *testing.B) {
	ps := workload.Perms(10, 64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.ConvertSD(ps[i%len(ps)])
	}
}

func BenchmarkMeshNeighborClosedForm(b *testing.B) {
	ps := workload.Perms(10, 64, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = core.Neighbor(ps[i%len(ps)], 7, +1)
	}
}

func BenchmarkStarDistanceClosedForm(b *testing.B) {
	ps := workload.Perms(12, 64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = starmesh.StarDistance(ps[i%len(ps)], ps[(i+1)%len(ps)])
	}
}

func BenchmarkUnitRouteStarN6(b *testing.B) {
	m := starsim.New(6)
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MeshUnitRoute("A", "B", 1+i%5, +1)
	}
}

func BenchmarkUnitRouteMeshN6(b *testing.B) {
	m := meshsim.New(mesh.D(6))
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UnitRoute("A", "B", i%5, +1)
	}
}

func BenchmarkSnakeSortStarN4End2End(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	meshID := make([]int, 24)
	for pe := range meshID {
		meshID[pe] = core.UnmapID(4, pe)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sm := starsim.New(4)
		sm.AddReg("K")
		sm.Set("K", func(pe int) int64 { return int64(rng.Intn(1 << 16)) })
		if !sorting.SnakeSortStar(sm, "K", meshID).Sorted {
			b.Fatal("not sorted")
		}
	}
}

func BenchmarkEmbeddingConstructionN7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.NewEmbedding(7)
	}
}

func BenchmarkRankUnrank(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := perm.Unrank(10, int64(i)%perm.Factorial(10))
		_ = p.Rank()
	}
}

// Keep exptab linked for table-rendering benches.
var _ = exptab.New

func BenchmarkMultiDimShear(b *testing.B) { benchExperiment(b, "mdshear") }
func BenchmarkUtilization(b *testing.B)   { benchExperiment(b, "utilization") }

// Scaling sub-benchmarks: the O(n²) conversions and O(n) neighbor
// rule across star sizes.
func BenchmarkConvertScaling(b *testing.B) {
	for _, n := range []int{6, 8, 10, 12, 16, 20} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := workload.MeshPoints(n, 16, int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := core.ConvertDS(pts[i%len(pts)])
				_ = core.ConvertSD(p)
			}
		})
	}
}

func BenchmarkStarMachineScaling(b *testing.B) {
	for _, n := range []int{4, 5, 6, 7} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := starsim.New(n)
			m.AddReg("A")
			m.AddReg("B")
			m.Set("A", func(pe int) int64 { return int64(pe) })
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.MeshUnitRoute("A", "B", 1+i%(n-1), +1)
			}
		})
	}
}

func BenchmarkBroadcastScaling(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := starmesh.NewStar(n)
			for i := 0; i < b.N; i++ {
				_ = g.BroadcastRounds(0)
			}
		})
	}
}

func BenchmarkVirtualization(b *testing.B) { benchExperiment(b, "virtual") }
