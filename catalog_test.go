package starmesh_test

import (
	"context"
	"os"
	"strings"
	"testing"

	"starmesh"
)

// TestReadmeCatalogMatchesRegistry pins the README's scenario table
// to the registry: the block between the scenario-catalog markers
// must be exactly ScenarioCatalog(), so the doc cannot drift when a
// family is added or its metadata edited (regenerate with
// `starmesh scenarios -markdown`).
func TestReadmeCatalogMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	const begin, end = "<!-- scenario-catalog:begin -->\n", "<!-- scenario-catalog:end -->"
	i := strings.Index(readme, begin)
	j := strings.Index(readme, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md is missing the scenario-catalog markers")
	}
	got := readme[i+len(begin) : j]
	want := starmesh.ScenarioCatalog()
	if got != want {
		t.Fatalf("README scenario catalog drifted from the registry.\n"+
			"Regenerate with: go run ./cmd/starmesh scenarios -markdown\n\n--- README ---\n%s\n--- registry ---\n%s", got, want)
	}
}

// TestScenarioFacade exercises the registry exports: every kind
// constant is registered, and RunScenario executes a spec end to
// end.
func TestScenarioFacade(t *testing.T) {
	kinds := starmesh.ScenarioKinds()
	want := []string{
		starmesh.JobSort, starmesh.JobShear, starmesh.JobBroadcast,
		starmesh.JobSweep, starmesh.JobFaultRoute, starmesh.JobEmbedRect,
		starmesh.JobPermRoute, starmesh.JobVirtual, starmesh.JobDiagnostics,
		starmesh.JobPipeline,
	}
	if len(kinds) != len(want) {
		t.Fatalf("ScenarioKinds = %v, want %d kinds", kinds, len(want))
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("kind %d = %q, want %q", i, kinds[i], k)
		}
	}
	if fams := starmesh.ScenarioFamilies(); len(fams) != len(want) {
		t.Fatalf("ScenarioFamilies returned %d families", len(fams))
	}

	res, err := starmesh.RunScenario(context.Background(), starmesh.JobSpec{Kind: starmesh.JobPipeline, N: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.UnitRoutes == 0 {
		t.Fatalf("pipeline scenario result: %+v", res)
	}
	if _, err := starmesh.RunScenario(context.Background(), starmesh.JobSpec{Kind: "nope"}); err == nil {
		t.Fatal("RunScenario accepted an unknown kind")
	}
}
