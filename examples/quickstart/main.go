// Quickstart: map mesh nodes onto the star graph, walk mesh edges
// through the embedding, and measure the embedding's quality —
// the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"starmesh"
)

func main() {
	const n = 5 // S_5: 120 processors; D_5: the 2*3*4*5 mesh

	// -- Node conversion (Figures 5 and 6) --------------------------
	pt := []int{1, 0, 3, 2} // (d_4,d_3,d_2,d_1) = (2,3,0,1)
	p := starmesh.MapMeshNode(pt)
	fmt.Printf("mesh node (d4,d3,d2,d1)=(2,3,0,1) lives on star node %v\n", p)
	back := starmesh.UnmapStarNode(p)
	fmt.Printf("and maps back to %v\n", back)

	// -- Mesh neighbors without leaving the star (Lemma 3) ----------
	q, ok := starmesh.MeshNeighbor(p, 4, +1)
	if !ok {
		log.Fatal("expected a +4 neighbor")
	}
	fmt.Printf("its mesh neighbor along +dimension 4 is %v (star distance %d)\n",
		q, starmesh.StarDistance(p, q))

	// -- The dilation-3 path realizing that mesh edge (Lemma 2) -----
	path, _ := starmesh.EdgePath(p, 4, +1)
	fmt.Println("the mesh edge is routed through:")
	for i, node := range path {
		fmt.Printf("  hop %d: %v\n", i, node)
	}

	// -- Whole-embedding quality (Theorem 4) ------------------------
	e := starmesh.NewEmbedding(n)
	if err := e.Validate(); err != nil {
		log.Fatalf("embedding invalid: %v", err)
	}
	m := e.Metrics()
	fmt.Printf("embedding D_%d -> S_%d: expansion %.0f, dilation %d, avg dilation %.2f, congestion %d\n",
		n, n, m.Expansion, m.Dilation, m.AvgDilation, m.Congestion)

	// -- One SIMD mesh unit route on the star machine (Theorem 6) ---
	sm := starmesh.NewStarMachine(n)
	sm.AddReg("A")
	sm.AddReg("B")
	sm.Set("A", func(pe int) int64 { return int64(pe) })
	routes, conflicts := sm.MeshUnitRoute("A", "B", 2, +1)
	fmt.Printf("one mesh unit route along dimension 2 took %d star routes, %d conflicts\n",
		routes, conflicts)

	// -- Star graph facts (Section 2) -------------------------------
	s := starmesh.NewStar(n)
	fmt.Printf("S_%d: %d nodes, degree %d, diameter %d, broadcast in %d unit routes\n",
		n, s.Order(), s.Degree(), s.Diameter(), s.BroadcastRounds(0))
}
