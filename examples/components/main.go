// Connected-component labeling of a binary image on the star graph —
// the workload class the paper's introduction cites ([NASS80],
// image processing / pattern recognition). The 120 processors of S_5
// are viewed as a 15×8 pixel grid through the appendix factorization;
// each foreground pixel repeatedly adopts the minimum label among its
// 4-connected foreground neighbors until a fixpoint. The run executes
// on the mesh machine and on the star machine through the embedding
// and is checked against a sequential union-find.
package main

import (
	"fmt"
	"log"

	"starmesh"
	"starmesh/internal/atallah"
	"starmesh/internal/meshops"
	"starmesh/internal/starsim"
)

const (
	n = 5
	d = 2
)

// image returns a deterministic binary image over the grid.
func image(rows, cols int) []bool {
	img := make([]bool, rows*cols)
	x := uint64(99)
	for i := range img {
		x = x*6364136223846793005 + 1442695040888963407
		img[i] = x%100 < 55 // ~55% foreground
	}
	return img
}

// sequentialLabels computes reference component labels (min pixel
// index per component) with a flood fill.
func sequentialLabels(rows, cols int, img []bool) []int64 {
	labels := make([]int64, rows*cols)
	for i := range labels {
		labels[i] = -1
	}
	id := func(r, c int) int { return r*cols + c }
	for start := range img {
		if !img[start] || labels[start] != -1 {
			continue
		}
		// BFS; the component label is the minimum pixel index, which
		// for scan order is the start pixel.
		queue := []int{start}
		labels[start] = int64(start)
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			r, c := p/cols, p%cols
			for _, nb := range [][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				if nb[0] < 0 || nb[0] >= rows || nb[1] < 0 || nb[1] >= cols {
					continue
				}
				q := id(nb[0], nb[1])
				if img[q] && labels[q] == -1 {
					labels[q] = int64(start)
					queue = append(queue, q)
				}
			}
		}
	}
	// Components keep the min index of their members as label; the
	// BFS above labels by start pixel, which IS the min index in
	// scan order. Foreground check below relies on that.
	return labels
}

// parallelComponents runs min-label propagation on a stepper and
// returns the labels (indexed by grid pixel) and unit routes used.
func parallelComponents(s meshops.Stepper, g *atallah.Grouped, plan *meshops.GroupedPlan,
	rows, cols int, img []bool) ([]int64, int) {
	mach := s.Machine()
	mach.EnsureReg("L")  // current label (or big sentinel for background)
	mach.EnsureReg("in") // incoming neighbor label
	const bg = int64(1) << 40
	pixel := func(pe int) int {
		r := g.ToR(s.MeshOf(pe))
		return g.R.Coord(r, 0)*cols + g.R.Coord(r, 1)
	}
	for pe := 0; pe < mach.Size(); pe++ {
		px := pixel(pe)
		if img[px] {
			mach.Reg("L")[pe] = int64(px)
		} else {
			mach.Reg("L")[pe] = bg
		}
	}
	before := mach.Stats().UnitRoutes
	// Propagate for at most rows+cols iterations (grid diameter);
	// each iteration sends labels along all 4 grid directions.
	for it := 0; it < rows+cols; it++ {
		changed := false
		for t := 0; t < 2; t++ {
			for _, dir := range []int{+1, -1} {
				mach.Set("in", func(pe int) int64 { return bg })
				// One grouped unit route along grid dimension t.
				meshops.GroupedStep(s, plan, "L", "in", t, dir)
				l, in := mach.Reg("L"), mach.Reg("in")
				for pe := range l {
					if l[pe] == bg {
						continue // background pixels stay background
					}
					if in[pe] < l[pe] {
						l[pe] = in[pe]
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	routes := mach.Stats().UnitRoutes - before
	labels := make([]int64, rows*cols)
	for pe := 0; pe < mach.Size(); pe++ {
		px := pixel(pe)
		v := mach.Reg("L")[pe]
		if v == bg {
			v = -1
		}
		labels[px] = v
	}
	return labels, routes
}

func main() {
	f := atallah.Factorize(n, d)
	g := atallah.NewGrouped(f)
	plan := meshops.NewGroupedPlan(g)
	rows, cols := int(f.L[0]), int(f.L[1])
	img := image(rows, cols)
	want := sequentialLabels(rows, cols, img)

	mm := starmesh.NewDMeshMachine(n)
	lm, rm := parallelComponents(meshops.NewMeshStepper(mm), g, plan, rows, cols, img)

	sm := starsim.New(n)
	ls, rs := parallelComponents(meshops.NewStarStepper(sm), g, plan, rows, cols, img)

	bad := 0
	comps := map[int64]bool{}
	for i := range want {
		if lm[i] != want[i] || ls[i] != want[i] {
			bad++
		}
		if want[i] >= 0 {
			comps[want[i]] = true
		}
	}
	fmt.Printf("connected components on a %dx%d image (S_%d as a 2-D grid)\n", rows, cols, n)
	fmt.Printf("  components found: %d; mislabeled pixels: %d\n", len(comps), bad)
	fmt.Printf("  routes: mesh %d, star %d (x%.2f, Theorem-6 bound x3)\n",
		rm, rs, float64(rs)/float64(rm))
	if bad != 0 || rs > 3*rm {
		log.Fatal("component labeling failed")
	}

	// Render the labeled image (letters per component).
	names := map[int64]byte{}
	next := byte('A')
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			l := want[r*cols+c]
			if l < 0 {
				line[c] = '.'
				continue
			}
			if _, ok := names[l]; !ok {
				names[l] = next
				if next < 'Z' {
					next++
				}
			}
			line[c] = names[l]
		}
		fmt.Printf("  %s\n", line)
	}
}
