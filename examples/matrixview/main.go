// Matrix computations on a 2-D view of the star graph. The appendix
// factorization turns S_5's 120 processors into a 15×8 matrix
// (expansion 1, dilation 3 — see starmesh.NewRectEmbedding); this
// example computes row sums and a global maximum with the meshops
// collectives, on the mesh machine and on the star machine, checking
// that the star run is bit-identical at ≤ 3× the unit routes.
package main

import (
	"fmt"
	"log"

	"starmesh"
	"starmesh/internal/atallah"
	"starmesh/internal/meshops"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

const (
	n = 5
	d = 2
)

func main() {
	f := atallah.Factorize(n, d)
	g := atallah.NewGrouped(f)
	fmt.Printf("S_%d viewed as a %d x %d matrix (%s)\n", n, f.L[0], f.L[1], f)

	// The matrix entries, assigned by logical (row, col).
	vals := workload.Keys(workload.Uniform, g.R.Order(), 11)

	// --- Native mesh run on D_5 -----------------------------------
	mm := starmesh.NewDMeshMachine(n)
	mm.AddReg("K")
	ms := meshops.NewMeshStepper(mm)
	for pe := 0; pe < mm.Size(); pe++ {
		mm.Reg("K")[pe] = vals[g.ToR(pe)] // mesh PE id = D_n node id
	}
	meshBefore := mm.Stats().UnitRoutes
	meshops.ReduceAll(ms, "K", meshops.Max)
	meshMax := mm.Reg("K")[0]
	meshRoutes := mm.Stats().UnitRoutes - meshBefore

	// --- Star run through the embedding ---------------------------
	sm := starsim.New(n)
	sm.AddReg("K")
	ss := meshops.NewStarStepper(sm)
	for pe := 0; pe < sm.Size(); pe++ {
		dnID := ss.MeshOf(pe)
		sm.Reg("K")[pe] = vals[g.ToR(dnID)]
	}
	starBefore := sm.Stats().UnitRoutes
	meshops.ReduceAll(ss, "K", meshops.Max)
	starMax := sm.Reg("K")[ss.PEOf(0)]
	starRoutes := sm.Stats().UnitRoutes - starBefore

	want := vals[0]
	for _, v := range vals {
		if v > want {
			want = v
		}
	}
	fmt.Printf("global max: sequential %d, mesh %d, star %d\n", want, meshMax, starMax)
	if meshMax != want || starMax != want {
		log.Fatal("reduction disagreed")
	}
	fmt.Printf("routes: mesh %d, star %d (x%.2f, bound x3)\n",
		meshRoutes, starRoutes, float64(starRoutes)/float64(meshRoutes))
	if starRoutes > 3*meshRoutes {
		log.Fatal("Theorem 6 bound violated")
	}

	// --- Row sums via scan on each matrix row ----------------------
	// Recompute per-row sums sequentially and via the embedding's
	// 2-D view: walk each logical row, summing entries.
	rows, cols := int(f.L[0]), int(f.L[1])
	fmt.Printf("row sums of the %dx%d matrix (first 5 rows):\n", rows, cols)
	for r := 0; r < 5; r++ {
		sum := int64(0)
		for c := 0; c < cols; c++ {
			sum += vals[g.R.ID([]int{r, c})]
		}
		fmt.Printf("  row %2d: %d\n", r, sum)
	}

	// --- Matrix-vector multiply y = A·x on both machines ----------
	// x[c] starts at row 0 of column c; BroadcastDim spreads it down
	// the columns, each PE multiplies locally, and ReduceDim along
	// the rows accumulates y[r] at column 0. Two collectives total.
	x := workload.Keys(workload.FewDistinct, cols, 23)
	plan := meshops.NewGroupedPlan(g)
	matvec := func(s meshops.Stepper) (y []int64, routes int) {
		mach := s.Machine()
		mach.EnsureReg("A")
		mach.EnsureReg("X")
		for pe := 0; pe < mach.Size(); pe++ {
			r := g.ToR(s.MeshOf(pe))
			mach.Reg("A")[pe] = vals[r]
			if g.R.Coord(r, 0) == 0 {
				mach.Reg("X")[pe] = x[g.R.Coord(r, 1)]
			} else {
				mach.Reg("X")[pe] = 0
			}
		}
		before := mach.Stats().UnitRoutes
		// x travels down each column (grouped dim 0 = rows)...
		meshops.BroadcastDimGrouped(s, plan, "X", 0)
		for pe := 0; pe < mach.Size(); pe++ {
			mach.Reg("A")[pe] *= mach.Reg("X")[pe]
		}
		// ...and row sums accumulate leftward (grouped dim 1 = cols).
		meshops.ReduceDimGrouped(s, plan, "A", 1, meshops.Sum)
		routes = mach.Stats().UnitRoutes - before
		y = make([]int64, rows)
		for pe := 0; pe < mach.Size(); pe++ {
			r := g.ToR(s.MeshOf(pe))
			if g.R.Coord(r, 1) == 0 {
				y[g.R.Coord(r, 0)] = mach.Reg("A")[pe]
			}
		}
		return y, routes
	}

	mm2 := starmesh.NewDMeshMachine(n)
	yMesh, rMesh := matvec(meshops.NewMeshStepper(mm2))
	sm2 := starsim.New(n)
	yStar, rStar := matvec(meshops.NewStarStepper(sm2))

	// Sequential reference.
	bad := 0
	for r := 0; r < rows; r++ {
		want := int64(0)
		for c := 0; c < cols; c++ {
			want += vals[g.R.ID([]int{r, c})] * x[c]
		}
		if yMesh[r] != want || yStar[r] != want {
			bad++
		}
	}
	fmt.Printf("matvec y = A·x: mesh %d routes, star %d routes (x%.2f); wrong rows: %d\n",
		rMesh, rStar, float64(rStar)/float64(rMesh), bad)
	if bad > 0 || rStar > 3*rMesh {
		log.Fatal("matvec failed")
	}

	// The 2-D view really is a dilation-3 embedding:
	e := starmesh.NewRectEmbedding(n, d)
	fmt.Printf("2-D view embedding: dilation %d, expansion %.0f\n",
		e.Dilation(), e.Metrics().Expansion)
}
