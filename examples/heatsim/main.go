// Heat diffusion (Jacobi relaxation) on the mesh D_5, executed twice:
// natively on the mesh machine and on the star graph S_5 through the
// paper's embedding. This is the paper's motivating workload class —
// numerical analysis and image processing use nearest-neighbor mesh
// communication (§1) — and demonstrates Theorem 6 end to end: the
// star run produces bit-identical temperatures using at most 3× the
// unit routes.
//
// Temperatures are fixed-point (milli-degrees) int64 so both
// machines compute identical integer results.
package main

import (
	"fmt"
	"log"

	"starmesh"
	"starmesh/internal/core"
	"starmesh/internal/mesh"
)

const (
	n     = 5  // S_5 / D_5: 120 processors
	iters = 25 // Jacobi sweeps
)

// stepper abstracts "move register src one step along (k,dir) into
// dst" over the two machines.
type stepper interface {
	move(src, dst string, k, dir int)
	reg(name string) []int64
	addReg(name string)
	set(name string, fn func(pe int) int64)
	routes() int
}

type meshStepper struct{ m *starmesh.MeshMachine }

func (s meshStepper) move(src, dst string, k, dir int) { s.m.UnitRoute(src, dst, k-1, dir) }
func (s meshStepper) reg(name string) []int64          { return s.m.Reg(name) }
func (s meshStepper) addReg(name string)               { s.m.AddReg(name) }
func (s meshStepper) set(name string, fn func(pe int) int64) {
	s.m.Set(name, fn)
}
func (s meshStepper) routes() int { return s.m.Stats().UnitRoutes }

type starStepper struct{ m *starmesh.StarMachine }

func (s starStepper) move(src, dst string, k, dir int) {
	if _, c := s.m.MeshUnitRoute(src, dst, k, dir); c != 0 {
		log.Fatalf("unit-route conflicts: %d (Lemma 5 violated)", c)
	}
}
func (s starStepper) reg(name string) []int64 { return s.m.Reg(name) }
func (s starStepper) addReg(name string)      { s.m.AddReg(name) }
func (s starStepper) set(name string, fn func(pe int) int64) {
	s.m.Set(name, fn)
}
func (s starStepper) routes() int { return s.m.Stats().UnitRoutes }

// jacobi runs the relaxation. meshOf maps PE id to mesh node id
// (identity on the mesh machine, ConvertSD on the star machine).
func jacobi(s stepper, dn *mesh.Mesh, meshOf func(pe int) int) {
	s.addReg("T")   // temperature
	s.addReg("in")  // incoming neighbor value
	s.addReg("sum") // accumulator
	s.addReg("cnt") // neighbor count
	// Hot plate at the mesh origin corner, cold elsewhere.
	s.set("T", func(pe int) int64 {
		if meshOf(pe) == 0 {
			return 1_000_000 // 1000.000 degrees
		}
		return 0
	})
	for it := 0; it < iters; it++ {
		s.set("sum", func(pe int) int64 { return 0 })
		s.set("cnt", func(pe int) int64 { return 0 })
		for k := 1; k <= dn.Dims(); k++ {
			for _, dir := range []int{+1, -1} {
				s.move("T", "in", k, dir)
				// A PE received iff it has a neighbor at -dir.
				in, sum, cnt := s.reg("in"), s.reg("sum"), s.reg("cnt")
				for pe := range sum {
					if dn.Step(meshOf(pe), k-1, -dir) != -1 {
						sum[pe] += in[pe]
						cnt[pe]++
					}
				}
			}
		}
		// T := (T + sum) / (1 + cnt), keeping the hot corner pinned.
		tr, sum, cnt := s.reg("T"), s.reg("sum"), s.reg("cnt")
		for pe := range tr {
			if meshOf(pe) == 0 {
				continue // boundary condition: source stays hot
			}
			tr[pe] = (tr[pe] + sum[pe]) / (1 + cnt[pe])
		}
	}
}

func main() {
	dn := mesh.D(n)

	mm := starmesh.NewDMeshMachine(n)
	ms := meshStepper{m: mm}
	jacobi(ms, dn, func(pe int) int { return pe })

	sm := starmesh.NewStarMachine(n)
	meshID := make([]int, sm.Size())
	for pe := range meshID {
		meshID[pe] = core.UnmapID(n, pe)
	}
	ss := starStepper{m: sm}
	jacobi(ss, dn, func(pe int) int { return meshID[pe] })

	// The two runs must agree on every mesh node.
	diffs := 0
	for pe := 0; pe < sm.Size(); pe++ {
		if sm.Reg("T")[pe] != mm.Reg("T")[meshID[pe]] {
			diffs++
		}
	}
	fmt.Printf("Jacobi heat diffusion on D_%d (%d nodes, %d sweeps)\n", n, dn.Order(), iters)
	fmt.Printf("  mesh machine:  %6d unit routes\n", ms.routes())
	fmt.Printf("  star machine:  %6d unit routes (x%.2f, Theorem 6 bound x3)\n",
		ss.routes(), float64(ss.routes())/float64(ms.routes()))
	fmt.Printf("  temperature fields identical: %v\n", diffs == 0)
	if diffs != 0 {
		log.Fatalf("%d PEs disagree", diffs)
	}

	// Show the resulting gradient along the d_4 axis from the hot corner.
	fmt.Println("  temperature along +d4 from the hot corner (milli-degrees):")
	pt := []int{0, 0, 0, 0}
	for d4 := 0; d4 <= 4; d4++ {
		pt[3] = d4
		id := dn.ID(pt)
		fmt.Printf("    d4=%d: %7d\n", d4, mm.Reg("T")[id])
	}
}
