// Parallel sorting on the star graph: N = n! keys are sorted into
// the snake order of the embedded mesh D_n by odd-even transposition,
// executed both natively on the mesh machine and on the star machine
// through the embedding. The run demonstrates the §5 discussion:
// mesh sorting algorithms transfer to the star graph at a route
// factor ≤ 3, while uniform-mesh sorters (which need N^(1/d) a power
// of two) do not apply — D_n's sides are 2,3,…,n.
package main

import (
	"fmt"
	"log"

	"starmesh"
	"starmesh/internal/core"
	"starmesh/internal/mesh"
	"starmesh/internal/sorting"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

const n = 5 // 120 keys on 120 processors

func main() {
	dn := mesh.D(n)
	N := dn.Order()

	for _, dist := range workload.Dists {
		keys := workload.Keys(dist.D, N, 42)

		// Native mesh run.
		mm := starmesh.NewDMeshMachine(n)
		mm.AddReg("K")
		mm.Set("K", func(pe int) int64 { return keys[pe] })
		rm := sorting.SnakeSortMesh(mm, "K")

		// Star run through the embedding.
		sm := starsim.New(n)
		sm.AddReg("K")
		meshID := make([]int, sm.Size())
		for pe := range meshID {
			meshID[pe] = core.UnmapID(n, pe)
		}
		sm.Set("K", func(pe int) int64 { return keys[meshID[pe]] })
		rs := sorting.SnakeSortStar(sm, "K", meshID)

		if !rm.Sorted || !rs.Sorted {
			log.Fatalf("%s: sort failed (mesh %v, star %v)", dist.Name, rm.Sorted, rs.Sorted)
		}
		if rs.Conflicts != 0 {
			log.Fatalf("%s: %d conflicts on the star (Lemma 5 violated)", dist.Name, rs.Conflicts)
		}
		for pe := 0; pe < sm.Size(); pe++ {
			if sm.Reg("K")[pe] != mm.Reg("K")[meshID[pe]] {
				log.Fatalf("%s: final placements differ", dist.Name)
			}
		}
		fmt.Printf("%-12s  mesh %4d routes   star %4d routes   ratio %.2f (bound 3.00)\n",
			dist.Name, rm.UnitRoutes, rs.UnitRoutes,
			float64(rs.UnitRoutes)/float64(rm.UnitRoutes))
	}

	// Show the sorted snake prefix of the last run.
	fmt.Printf("\nsorted %d keys into snake order of the %v embedded in S_%d\n", N, dn, n)
}
