// Command jobclient is the v1 API quickstart: it starts an
// in-process job service, then drives it exactly the way a remote
// caller would — through the typed client package — submitting a
// batch, watching a job's transitions, canceling a long sweep
// mid-run, and reading the aggregated stats.
//
// Against a real deployment, replace the httptest server with the
// service's URL:
//
//	c := client.New("http://localhost:8080")
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"starmesh/client"
	"starmesh/internal/serve"
)

func main() {
	// A self-contained service; `starmesh serve` runs the same thing
	// behind a real listener.
	svc, err := serve.NewService(serve.Config{Workers: 2, Queue: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx := context.Background()
	c := client.New(ts.URL)

	// Atomic batch admission: every spec becomes a job or none does.
	jobs, err := c.SubmitBatch(ctx, []client.JobSpec{
		{Kind: "sort", N: 5, Dist: "reversed", Seed: 42},
		{Kind: "broadcast", N: 5},
		{Kind: "pipeline", N: 4, Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch admitted %d jobs\n", len(jobs))

	// Watch the first job's status transitions to the terminal one.
	w, err := c.Watch(ctx, jobs[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	for {
		j, err := w.Next()
		if err != nil {
			break
		}
		fmt.Printf("watch %s: %s\n", j.ID, j.Status)
		if j.Status.Terminal() {
			break
		}
	}
	w.Close()

	// Await the rest.
	for _, j := range jobs[1:] {
		final, err := c.Await(ctx, j.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s): %s, %d unit routes\n",
			final.ID, final.Spec.Kind, final.Status, final.Result.UnitRoutes)
	}

	// Cancel a long sweep mid-run: the cooperative checkpoints abort
	// it within one unit route, preserving partial stats.
	long, err := c.Submit(ctx, client.JobSpec{Kind: "sweep", N: 5, Trials: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	for { // wait until it is actually running
		j, err := c.Get(ctx, long.ID)
		if err != nil {
			log.Fatal(err)
		}
		if j.Status == client.StatusRunning {
			break
		}
	}
	if _, err := c.Cancel(ctx, long.ID); err != nil {
		log.Fatal(err)
	}
	canceled, err := c.Await(ctx, long.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canceled mid-run: %s after %d partial unit routes\n",
		canceled.Status, canceled.Result.UnitRoutes)

	// Canceling a terminal job is a typed conflict, not a no-op.
	if _, err := c.Cancel(ctx, canceled.ID); client.IsTerminal(err) {
		fmt.Println("second cancel: typed terminal conflict (409)")
	}

	// The listing paginates; stats aggregate per kind.
	page, err := c.List(ctx, client.ListOptions{Status: client.StatusDone, Limit: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done page: %d jobs (cursor %q)\n", len(page.Jobs), page.NextCursor)
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d done, %d canceled across %d kinds\n", st.Done, st.Canceled, len(st.Kinds))
}
