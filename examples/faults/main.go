// Fault tolerance on the star graph: S_n is maximally fault
// tolerant — its vertex connectivity equals its degree n-1 (§2,
// [AKER87]). This example verifies the claim with max-flow
// (Menger's theorem), kills random processors, and shows that
// point-to-point routing still succeeds around the faults.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"starmesh"
	"starmesh/internal/graphalg"
	"starmesh/internal/star"
)

const n = 5 // 120 processors, degree 4

func main() {
	s := starmesh.NewStar(n)
	g := s.G

	// 1. Vertex connectivity equals the degree.
	k := graphalg.VertexConnectivity(g, true)
	fmt.Printf("S_%d: degree %d, vertex connectivity %d -> maximally fault tolerant: %v\n",
		n, s.Degree(), k, k == s.Degree())
	if k != s.Degree() {
		log.Fatal("connectivity mismatch")
	}

	// 2. There are n-1 vertex-disjoint paths between any two nodes.
	src := g.ID(starmesh.IdentityPerm(n))
	dst := g.Order() - 1
	paths := graphalg.VertexDisjointPaths(g, src, dst)
	fmt.Printf("vertex-disjoint paths between %v and %v: %d\n",
		g.Node(src), g.Node(dst), paths)

	// 3. Inject n-2 random faults; the network must stay connected
	// and routing must find a detour.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		holes := map[int]bool{}
		for len(holes) < n-2 {
			h := rng.Intn(g.Order())
			if h != src && h != dst {
				holes[h] = true
			}
		}
		var holeList []int
		for h := range holes {
			holeList = append(holeList, h)
		}
		faulty := graphalg.NewExclude(g, holeList...)
		if !graphalg.ConnectedExcept(g, src, holeList...) {
			log.Fatalf("S_%d disconnected by %d faults — contradicts maximal fault tolerance", n, n-2)
		}
		path := graphalg.BFSPath(faulty, src, dst)
		healthy := star.Distance(g.Node(src), g.Node(dst))
		fmt.Printf("trial %d: faults at %v; healthy distance %d, detour length %d\n",
			trial, holeList, healthy, len(path)-1)
		if path == nil {
			log.Fatal("no route around faults")
		}
	}
	fmt.Println("all fault scenarios routed successfully")
}
