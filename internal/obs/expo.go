// Prometheus text exposition (format version 0.0.4) and the
// structured Snapshot API. Both walk the same collected state, so a
// snapshot and a scrape taken back to back describe the same world.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// FamilySnapshot is one metric family's collected state.
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   string
	Labels []string
	Series []SeriesSnapshot
}

// SeriesSnapshot is one labeled series' collected state. Counters
// and gauges use Value; histograms use Buckets/Sum/Count (Buckets are
// per-bucket counts aligned with Uppers, the last entry being +Inf).
type SeriesSnapshot struct {
	LabelValues []string
	Value       float64
	Uppers      []float64
	Buckets     []uint64
	Sum         float64
	Count       uint64
}

// Snapshot collects every family, sorted by name (series in first-use
// order), sampling CollectFunc families as it goes.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Type:   f.typ,
			Labels: append([]string(nil), f.labels...),
		}
		if f.collect != nil {
			for _, s := range f.collect() {
				if len(s.LabelValues) != len(f.labels) {
					panic(fmt.Sprintf("obs: CollectFunc %s produced %d label values, want %d",
						f.name, len(s.LabelValues), len(f.labels)))
				}
				fs.Series = append(fs.Series, SeriesSnapshot{
					LabelValues: s.LabelValues,
					Value:       s.Value,
				})
			}
			out = append(out, fs)
			continue
		}
		f.mu.RLock()
		keys := append([]string(nil), f.sorder...)
		series := make([]*series, 0, len(keys))
		for _, k := range keys {
			series = append(series, f.series[k])
		}
		f.mu.RUnlock()
		for _, s := range series {
			ss := SeriesSnapshot{LabelValues: s.labelValues}
			if f.typ == TypeHistogram {
				ss.Uppers = append([]float64(nil), f.buckets...)
				ss.Buckets = make([]uint64, len(s.counts))
				for i := range s.counts {
					ss.Buckets[i] = s.counts[i].Load()
				}
				ss.Sum = math.Float64frombits(s.sum.Load())
				ss.Count = s.count.Load()
			} else {
				ss.Value = float64(s.val.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition
// format: families sorted by name, each with # HELP and # TYPE
// headers, histogram series as cumulative _bucket{le=…} samples plus
// _sum and _count. Deterministic for a fixed registry state, so the
// exposition can be golden-tested.
func (r *Registry) WriteText(w io.Writer) error {
	for _, fs := range r.Snapshot() {
		if err := writeFamily(w, &fs); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, fs *FamilySnapshot) error {
	if fs.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fs.Name, escapeHelp(fs.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fs.Name, fs.Type); err != nil {
		return err
	}
	// Sort series by label values for a stable exposition (Snapshot
	// yields first-use order, which depends on scheduling).
	series := append([]SeriesSnapshot(nil), fs.Series...)
	sort.Slice(series, func(i, j int) bool {
		return seriesKey(series[i].LabelValues) < seriesKey(series[j].LabelValues)
	})
	for _, s := range series {
		if fs.Type != TypeHistogram {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				fs.Name, labelString(fs.Labels, s.LabelValues), formatValue(s.Value)); err != nil {
				return err
			}
			continue
		}
		var cum uint64
		for i, c := range s.Buckets {
			cum += c
			le := "+Inf"
			if i < len(s.Uppers) {
				le = formatValue(s.Uppers[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				fs.Name, labelStringLE(fs.Labels, s.LabelValues, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			fs.Name, labelString(fs.Labels, s.LabelValues), formatValue(s.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
			fs.Name, labelString(fs.Labels, s.LabelValues), s.Count); err != nil {
			return err
		}
	}
	return nil
}

// labelString renders {k="v",…} ("" with no labels).
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringLE renders the label set with the histogram le label
// appended last.
func labelStringLE(names, values []string, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integral
// values without an exponent or trailing zeros, +Inf spelled out.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
