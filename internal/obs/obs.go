// Package obs is the dependency-free metrics core of the service:
// atomic counters, gauges and fixed-bucket histograms with label
// support, registered in a Registry that renders the Prometheus text
// exposition format (GET /v1/metrics) and a structured Snapshot for
// tests and in-process consumers.
//
// Design constraints, in order:
//
//   - Zero dependencies. The whole package is stdlib (sync/atomic,
//     sort, fmt), so internal/simd can expose a Collector hook and
//     every layer can instrument itself without pulling a metrics
//     client into the module.
//   - Hot-path writes are one atomic op. Counter.Add and
//     Gauge.Set/Add are single atomic instructions; Histogram.Observe
//     is two atomic adds plus a bucket search over a handful of
//     upper bounds. Label resolution (the map lookup) is paid once
//     via With, and callers on hot paths hold the resolved series.
//   - Reads never block writes. Exposition and Snapshot take the
//     registry read lock and load atomics; they never quiesce
//     writers, so a scrape cannot stall the scheduler.
//
// Cheap existing counters (pool builds, watch drops, queue depth)
// bridge in through CollectFunc: a callback sampled at scrape time,
// costing the instrumented code nothing between scrapes.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types as they appear in # TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefBuckets are the default latency buckets (seconds): 100 µs to
// 10 s, a decade per ~3 buckets — wide enough for queue waits and
// request latencies, fine enough for p99 interpolation at the low
// end where the service actually operates.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order; exposition sorts by name
}

// family is one named metric family: a type, a label schema and the
// labeled series (or a collect callback).
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram upper bounds (exclusive of +Inf)

	mu     sync.RWMutex
	series map[string]*series
	sorder []string

	collect func() []Sample // CollectFunc families sample lazily
}

// series is one labeled instance of a family.
type series struct {
	labelValues []string
	val         atomic.Int64 // counter/gauge value
	counts      []atomic.Uint64
	sum         atomic.Uint64 // float64 bits
	count       atomic.Uint64
}

// Sample is one sampled value of a CollectFunc family.
type Sample struct {
	// LabelValues correspond positionally to the family's label names.
	LabelValues []string
	Value       float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and installs a family; duplicate or malformed
// registrations panic — metric registration is program wiring, not
// input handling.
func (r *Registry) register(f *family) *family {
	if !nameRe.MatchString(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
	r.order = append(r.order, f.name)
	return f
}

// Counter registers a counter family. With no labels the returned
// vec's With() yields the single series.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := r.register(&family{
		name: name, help: help, typ: TypeCounter,
		labels: labels, series: make(map[string]*series),
	})
	return &CounterVec{f}
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	f := r.register(&family{
		name: name, help: help, typ: TypeGauge,
		labels: labels, series: make(map[string]*series),
	})
	return &GaugeVec{f}
}

// Histogram registers a fixed-bucket histogram family. buckets are
// upper bounds in ascending order (the +Inf bucket is implicit); nil
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending at %v", name, buckets[i]))
		}
	}
	f := r.register(&family{
		name: name, help: help, typ: TypeHistogram,
		labels: labels, buckets: buckets, series: make(map[string]*series),
	})
	return &HistogramVec{f}
}

// CollectFunc registers a family whose samples are produced by fn at
// scrape time — the bridge for counters and gauges another subsystem
// already maintains (pool builds, queue depth, watch drops). typ must
// be TypeCounter or TypeGauge.
func (r *Registry) CollectFunc(name, help, typ string, labels []string, fn func() []Sample) {
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("obs: CollectFunc %s needs type counter or gauge, got %q", name, typ))
	}
	if fn == nil {
		panic(fmt.Sprintf("obs: CollectFunc %s needs a callback", name))
	}
	r.register(&family{name: name, help: help, typ: typ, labels: labels, collect: fn})
}

// seriesKey joins label values into the series map key. \xff cannot
// appear in label values that differ only by joining, so the key is
// injective for practical values.
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// with resolves (creating on first use) the series of a label-value
// tuple.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.typ == TypeHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	f.sorder = append(f.sorder, key)
	return s
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// Counter is one monotonically increasing series.
type Counter struct{ s *series }

// With resolves the series of a label-value tuple (order matches the
// registered label names). Hot paths call With once and keep the
// Counter.
func (v *CounterVec) With(labelValues ...string) Counter {
	return Counter{v.f.with(labelValues)}
}

// Inc adds 1.
func (c Counter) Inc() { c.s.val.Add(1) }

// Add adds delta; negative deltas panic (counters only go up).
func (c Counter) Add(delta int64) {
	if delta < 0 {
		panic("obs: counter Add with negative delta")
	}
	c.s.val.Add(delta)
}

// Value returns the current count.
func (c Counter) Value() int64 { return c.s.val.Load() }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// Gauge is one series that can go up and down.
type Gauge struct{ s *series }

// With resolves the series of a label-value tuple.
func (v *GaugeVec) With(labelValues ...string) Gauge {
	return Gauge{v.f.with(labelValues)}
}

// Set stores the value.
func (g Gauge) Set(v int64) { g.s.val.Store(v) }

// Add adds delta (may be negative).
func (g Gauge) Add(delta int64) { g.s.val.Add(delta) }

// Value returns the current value.
func (g Gauge) Value() int64 { return g.s.val.Load() }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// Histogram is one series of bucketed observations.
type Histogram struct {
	s       *series
	buckets []float64
}

// With resolves the series of a label-value tuple.
func (v *HistogramVec) With(labelValues ...string) Histogram {
	return Histogram{v.f.with(labelValues), v.f.buckets}
}

// Observe records one value: the owning bucket and every wider one
// are counted at exposition (buckets are stored sparse, cumulated at
// render), sum and count advance atomically.
func (h Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first upper bound >= v
	h.s.counts[i].Add(1)
	h.s.count.Add(1)
	for {
		old := h.s.sum.Load()
		if h.s.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.s.count.Load() }

// Sum returns the sum of observed values.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.s.sum.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed
// distribution by linear interpolation inside the owning bucket —
// the honest percentile-interval discipline: the estimate is only as
// precise as the bucket layout, and callers treating it as a point
// value should report the bucket bounds alongside. Returns 0 with no
// observations; observations beyond the last bucket clamp to its
// upper bound.
func (h Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.s.counts))
	for i := range h.s.counts {
		counts[i] = h.s.counts[i].Load()
	}
	return bucketQuantile(h.buckets, counts, q)
}

// bucketQuantile estimates a quantile from per-bucket (non-
// cumulative) counts; counts has one extra entry for +Inf.
func bucketQuantile(uppers []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var seen uint64
	for i, c := range counts {
		if seen+c < rank {
			seen += c
			continue
		}
		if i >= len(uppers) {
			// Beyond the last finite bucket: clamp to its bound.
			return uppers[len(uppers)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = uppers[i-1]
		}
		// Linear interpolation of the rank inside the bucket.
		frac := float64(rank-seen) / float64(c)
		return lo + (uppers[i]-lo)*frac
	}
	return uppers[len(uppers)-1]
}
