// Parsing and validation of the text exposition format — the
// consumer half of the package. loadgen scrapes /v1/metrics with it
// to pull queue-wait percentiles into BENCH_serve.json, and the CI
// serve smoke uses Validate as the exposition validator.
package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metric is one parsed sample line.
type Metric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed exposition: samples in document order plus the
// declared family types.
type Scrape struct {
	Samples []Metric
	Types   map[string]string // family name -> counter|gauge|histogram
	Help    map[string]string
}

// ParseText parses a Prometheus text exposition. It accepts the
// subset WriteText emits (which is the subset the scraper needs):
// comment lines, # HELP / # TYPE headers, and samples with optional
// {k="v",…} label sets. Malformed lines are errors, making ParseText
// double as a format validator.
func ParseText(text string) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string), Help: make(map[string]string)}
	scanner := bufio.NewScanner(strings.NewReader(text))
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := sc.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		sc.Samples = append(sc.Samples, m)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func (sc *Scrape) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case TypeCounter, TypeGauge, TypeHistogram:
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if prev, dup := sc.Types[name]; dup {
			return fmt.Errorf("family %s declared twice (%s, %s)", name, prev, typ)
		}
		sc.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		sc.Help[fields[2]] = help
	}
	return nil
}

func parseSample(line string) (Metric, error) {
	m := Metric{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return m, fmt.Errorf("malformed sample %q", line)
	} else {
		m.Name = rest[:i]
		rest = rest[i:]
	}
	if !nameRe.MatchString(m.Name) {
		return m, fmt.Errorf("invalid metric name %q", m.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return m, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return m, fmt.Errorf("%w in %q", err, line)
		}
		m.Labels = labels
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return m, fmt.Errorf("missing value in %q", line)
	}
	// Timestamps (a second field) are not emitted by WriteText; reject
	// extra fields rather than silently mis-parse.
	if strings.ContainsAny(valStr, " \t") {
		return m, fmt.Errorf("unexpected extra field in %q", line)
	}
	v, err := parseFloat(valStr)
	if err != nil {
		return m, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	m.Value = v
	return m, nil
}

func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := s[:eq]
		if !labelRe.MatchString(name) && name != "le" {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %s", name)
		}
		labels[name] = b.String()
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Validate checks a text exposition for structural correctness: it
// must parse, every sample must belong to a declared # TYPE family
// (histogram samples via their _bucket/_sum/_count suffixes), every
// histogram bucket series must be cumulative and end with le="+Inf",
// and _count must match the +Inf bucket. The CI serve smoke runs this
// against a live /v1/metrics scrape.
func Validate(text string) error {
	sc, err := ParseText(text)
	if err != nil {
		return err
	}
	if len(sc.Samples) == 0 {
		return fmt.Errorf("exposition has no samples")
	}
	type histSeries struct {
		uppers  []float64
		cum     []float64
		sum     float64
		count   float64
		hasSum  bool
		hasCnt  bool
		hasInfB bool
	}
	hists := map[string]*histSeries{} // family \xff labelkey
	histKey := func(fam string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys)+1)
		parts = append(parts, fam)
		for _, k := range keys {
			parts = append(parts, k+"="+labels[k])
		}
		return strings.Join(parts, "\xff")
	}
	for _, m := range sc.Samples {
		if typ, ok := sc.Types[m.Name]; ok {
			if typ == TypeHistogram {
				return fmt.Errorf("histogram family %s has a bare sample (want _bucket/_sum/_count)", m.Name)
			}
			continue
		}
		fam, suffix := histFamily(m.Name, sc.Types)
		if fam == "" {
			return fmt.Errorf("sample %s has no # TYPE declaration", m.Name)
		}
		key := histKey(fam, m.Labels)
		h := hists[key]
		if h == nil {
			h = &histSeries{}
			hists[key] = h
		}
		switch suffix {
		case "_bucket":
			le, ok := m.Labels["le"]
			if !ok {
				return fmt.Errorf("%s sample missing le label", m.Name)
			}
			upper, err := parseFloat(le)
			if err != nil {
				return fmt.Errorf("%s has bad le %q", m.Name, le)
			}
			h.uppers = append(h.uppers, upper)
			h.cum = append(h.cum, m.Value)
			if math.IsInf(upper, +1) {
				h.hasInfB = true
			}
		case "_sum":
			h.sum, h.hasSum = m.Value, true
		case "_count":
			h.count, h.hasCnt = m.Value, true
		}
	}
	for key, h := range hists {
		fam := strings.SplitN(key, "\xff", 2)[0]
		if !h.hasInfB {
			return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", fam)
		}
		if !h.hasSum || !h.hasCnt {
			return fmt.Errorf("histogram %s missing _sum or _count", fam)
		}
		for i := 1; i < len(h.uppers); i++ {
			if h.uppers[i] <= h.uppers[i-1] {
				return fmt.Errorf("histogram %s buckets not ascending", fam)
			}
			if h.cum[i] < h.cum[i-1] {
				return fmt.Errorf("histogram %s buckets not cumulative", fam)
			}
		}
		if n := len(h.cum); n > 0 && h.cum[n-1] != h.count {
			return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", fam, h.count, h.cum[n-1])
		}
	}
	return nil
}

// histFamily resolves a _bucket/_sum/_count sample name to its
// declared histogram family, returning ("", "") when none matches.
func histFamily(name string, types map[string]string) (fam, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, s); ok && types[base] == TypeHistogram {
			return base, s
		}
	}
	return "", ""
}

// Value returns the value of the first sample matching name and the
// given label subset (every given pair must match; extra labels on
// the sample are ignored). ok is false when no sample matches.
func (sc *Scrape) Value(name string, labels map[string]string) (v float64, ok bool) {
	for _, m := range sc.Samples {
		if m.Name != name {
			continue
		}
		match := true
		for k, want := range labels {
			if m.Labels[k] != want {
				match = false
				break
			}
		}
		if match {
			return m.Value, true
		}
	}
	return 0, false
}

// HistogramQuantile estimates quantile q of a scraped histogram
// family (with the given non-le label subset) by the same
// bucket-interpolation rule the live Histogram uses. ok is false when
// the family has no matching buckets or no observations.
func (sc *Scrape) HistogramQuantile(name string, labels map[string]string, q float64) (v float64, ok bool) {
	type bucket struct {
		upper float64
		cum   float64
	}
	var buckets []bucket
	for _, m := range sc.Samples {
		if m.Name != name+"_bucket" {
			continue
		}
		match := true
		for k, want := range labels {
			if m.Labels[k] != want {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		upper, err := parseFloat(m.Labels["le"])
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{upper, m.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].upper < buckets[j].upper })
	uppers := make([]float64, 0, len(buckets)-1)
	counts := make([]uint64, len(buckets))
	var prev float64
	for i, b := range buckets {
		if !math.IsInf(b.upper, +1) {
			uppers = append(uppers, b.upper)
		}
		counts[i] = uint64(b.cum - prev)
		prev = b.cum
	}
	if prev == 0 || len(uppers) == 0 {
		return 0, false
	}
	return bucketQuantile(uppers, counts, q), true
}
