package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.", "kind").With("star")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative Add did not panic")
			}
		}()
		c.Add(-1)
	}()
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.").With()
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %d, want 4", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 0.5, 1}).With()
	for _, v := range []float64{0.05, 0.05, 0.3, 0.7, 2.5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-3.6) > 1e-12 {
		t.Fatalf("sum = %v, want 3.6", got)
	}
	// p50: rank 3 of 5 lands in the (0.1, 0.5] bucket (1 obs), so
	// interpolation yields its upper bound.
	if got := h.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}
	// p100 lands in +Inf: clamps to last finite bound.
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("p100 = %v, want clamp to 1", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q<=0 = %v, want 0", got)
	}
	if got := h.Quantile(1.5); got != 1 {
		t.Fatalf("q>1 = %v, want clamp to 1", got)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", nil).With()
	h.Observe(0.003)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	q := h.Quantile(0.99)
	if q < 0.0025 || q > 0.005 {
		t.Fatalf("p99 = %v, want inside owning bucket (0.0025, 0.005]", q)
	}
}

func TestEmptyHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1}).With()
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestLabelSeriesIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("reqs", "Requests.", "route", "code")
	v.With("/v1/jobs", "200").Add(3)
	v.With("/v1/jobs", "429").Inc()
	if a, b := v.With("/v1/jobs", "200").Value(), v.With("/v1/jobs", "429").Value(); a != 3 || b != 1 {
		t.Fatalf("series values = %d, %d; want 3, 1", a, b)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad name", func(r *Registry) { r.Counter("9bad", "x") }},
		{"bad label", func(r *Registry) { r.Counter("ok", "x", "9bad") }},
		{"duplicate", func(r *Registry) { r.Counter("dup", "x"); r.Gauge("dup", "x") }},
		{"buckets not ascending", func(r *Registry) { r.Histogram("h", "x", []float64{1, 1}) }},
		{"collect bad type", func(r *Registry) { r.CollectFunc("c", "x", TypeHistogram, nil, func() []Sample { return nil }) }},
		{"collect nil fn", func(r *Registry) { r.CollectFunc("c", "x", TypeGauge, nil, nil) }},
		{"wrong label count", func(r *Registry) { r.Counter("c", "x", "a").With() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1, 2}).With()
	c := r.Counter("n", "N.", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
				c.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	if got := h.Sum(); math.Abs(got-4000) > 1e-9 {
		t.Fatalf("sum = %v, want 4000", got)
	}
	if got := c.With("a").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "Total b.", "kind").With("star").Add(3)
	r.Gauge("a_depth", "Depth.").With().Set(2)
	h := r.Histogram("c_seconds", "Latency.", []float64{0.5, 1}).With()
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(5)
	r.CollectFunc("d_info", "Info.", TypeGauge, []string{"v"}, func() []Sample {
		return []Sample{{LabelValues: []string{`q"\x` + "\n"}, Value: 1}}
	})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_depth Depth.
# TYPE a_depth gauge
a_depth 2
# HELP b_total Total b.
# TYPE b_total counter
b_total{kind="star"} 3
# HELP c_seconds Latency.
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 6
c_seconds_count 3
# HELP d_info Info.
# TYPE d_info gauge
d_info{v="q\"\\x\n"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The emitted text must satisfy our own validator.
	if err := Validate(b.String()); err != nil {
		t.Fatalf("Validate(WriteText output): %v", err)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "N.").With().Add(2)
	h := r.Histogram("h_seconds", "H.", []float64{1}).With()
	h.Observe(0.5)
	h.Observe(3)
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot families = %d, want 2", len(snaps))
	}
	if snaps[0].Name != "h_seconds" || snaps[1].Name != "n_total" {
		t.Fatalf("snapshot order = %s, %s; want name-sorted", snaps[0].Name, snaps[1].Name)
	}
	hs := snaps[0].Series[0]
	if hs.Count != 2 || hs.Sum != 3.5 {
		t.Fatalf("hist snapshot count=%d sum=%v, want 2, 3.5", hs.Count, hs.Sum)
	}
	if len(hs.Buckets) != 2 || hs.Buckets[0] != 1 || hs.Buckets[1] != 1 {
		t.Fatalf("hist buckets = %v, want [1 1]", hs.Buckets)
	}
	if snaps[1].Series[0].Value != 2 {
		t.Fatalf("counter snapshot = %v, want 2", snaps[1].Series[0].Value)
	}
}

func TestCollectFuncLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CollectFunc("bad", "x", TypeGauge, []string{"a"}, func() []Sample {
		return []Sample{{Value: 1}} // 0 label values, want 1
	})
	defer func() {
		if recover() == nil {
			t.Fatal("snapshot of mismatched CollectFunc did not panic")
		}
	}()
	r.Snapshot()
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "Reqs.", "route", "code").With("/v1/jobs", "200").Add(7)
	r.Gauge("depth", "Depth.").With().Set(3)
	h := r.Histogram("wait_seconds", "Wait.", []float64{0.1, 1}, "kind").With("star")
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("reqs_total", map[string]string{"route": "/v1/jobs", "code": "200"}); !ok || v != 7 {
		t.Fatalf("Value(reqs_total) = %v, %v; want 7, true", v, ok)
	}
	if v, ok := sc.Value("depth", nil); !ok || v != 3 {
		t.Fatalf("Value(depth) = %v, %v; want 3, true", v, ok)
	}
	if _, ok := sc.Value("missing", nil); ok {
		t.Fatal("Value(missing) matched")
	}
	if _, ok := sc.Value("reqs_total", map[string]string{"route": "/other"}); ok {
		t.Fatal("Value with wrong label matched")
	}
	if sc.Types["wait_seconds"] != TypeHistogram {
		t.Fatalf("type = %q, want histogram", sc.Types["wait_seconds"])
	}
	if sc.Help["depth"] != "Depth." {
		t.Fatalf("help = %q, want Depth.", sc.Help["depth"])
	}
	q, ok := sc.HistogramQuantile("wait_seconds", map[string]string{"kind": "star"}, 0.99)
	if !ok {
		t.Fatal("HistogramQuantile not ok")
	}
	if q <= 0.1 || q > 1 {
		t.Fatalf("scraped p99 = %v, want in (0.1, 1]", q)
	}
	if _, ok := sc.HistogramQuantile("wait_seconds", map[string]string{"kind": "nope"}, 0.99); ok {
		t.Fatal("HistogramQuantile matched wrong labels")
	}
	if _, ok := sc.HistogramQuantile("missing", nil, 0.99); ok {
		t.Fatal("HistogramQuantile matched missing family")
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"no_value_here",
		`x{unterminated="1" 2`,
		`x{9bad="1"} 2`,
		`x{a=unquoted} 2`,
		`x{a="unterminated} 2`,
		`x{nopair} 2`,
		"x notanumber",
		"x 1 2 3",
		"# TYPE x wat",
		"# TYPE x",
		"# HELP",
		"# TYPE x counter\n# TYPE x counter",
	}
	for _, text := range bad {
		if _, err := ParseText(text); err == nil {
			t.Errorf("ParseText(%q) = nil error, want error", text)
		}
	}
	// Benign lines parse fine.
	ok := "# a bare comment\n\n# HELP x\n# TYPE x counter\nx 1\nx{le=\"+Inf\"} 2\nnan_val NaN\nneg_inf -Inf\n# TYPE nan_val gauge\n# TYPE neg_inf gauge\n"
	if _, err := ParseText(ok); err != nil {
		t.Fatalf("ParseText(ok) = %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"undeclared", "x 1\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 1\n"},
		{"missing inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"not ascending", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n"},
		{"bucket no le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"},
		{"bad le", "# TYPE h histogram\nh_bucket{le=\"wat\"} 1\nh_sum 1\nh_count 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.text); err == nil {
				t.Fatalf("Validate(%q) = nil, want error", tc.text)
			}
		})
	}
	good := "# TYPE c counter\nc 1\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 2.5\nh_count 3\n"
	if err := Validate(good); err != nil {
		t.Fatalf("Validate(good) = %v", err)
	}
}

func TestCollectFuncExposition(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.CollectFunc("pool_builds_total", "Builds.", TypeCounter, []string{"shape"}, func() []Sample {
		n++
		return []Sample{{LabelValues: []string{"star/4"}, Value: float64(n)}}
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `pool_builds_total{shape="star/4"} 1`) {
		t.Fatalf("exposition missing collected sample:\n%s", b.String())
	}
	// Collected again on the next scrape, not cached.
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `pool_builds_total{shape="star/4"} 2`) {
		t.Fatalf("second scrape not re-collected:\n%s", b.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		2:           "2",
		0.5:         "0.5",
		math.Inf(1): "+Inf",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBucketQuantileEdges(t *testing.T) {
	// All mass in +Inf: clamp to last finite bound.
	if got := bucketQuantile([]float64{1, 2}, []uint64{0, 0, 5}, 0.5); got != 2 {
		t.Fatalf("all-inf quantile = %v, want 2", got)
	}
	// First bucket interpolates from 0.
	if got := bucketQuantile([]float64{2}, []uint64{4, 0}, 0.5); got != 1 {
		t.Fatalf("first-bucket p50 = %v, want 1", got)
	}
}
