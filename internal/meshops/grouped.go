package meshops

import (
	"starmesh/internal/atallah"
)

// Collectives over a grouped (appendix-factorized) view of the
// physical mesh: the d-dimensional rectangular mesh R = l_1×…×l_d is
// realized on D_n with snake-encoded grouped coordinates, so a ±1
// move in a grouped dimension is one physical step whose (dim, dir)
// varies per node. GroupedPlan precomputes those steps; the grouped
// reduce/broadcast walk a grouped dimension coordinate by
// coordinate, one masked physical route per (dim,dir) class.

// GroupedPlan caches, for every physical node and every grouped
// dimension/direction, the physical step realizing the grouped move.
type GroupedPlan struct {
	G *atallah.Grouped
	// step[t][gd][dnID] = physical dim*2 + (dir<0?1:0), or -1 at the
	// grouped boundary. gd: 0 = +1, 1 = -1.
	step [][2][]int8
	// rcoord[t][dnID] = grouped coordinate of the node in dim t.
	rcoord [][]int32
}

// NewGroupedPlan builds the cache (O(d · n!) time and space).
func NewGroupedPlan(g *atallah.Grouped) *GroupedPlan {
	d := g.F.D
	order := g.Dn.Order()
	p := &GroupedPlan{G: g}
	p.step = make([][2][]int8, d)
	p.rcoord = make([][]int32, d)
	for t := 0; t < d; t++ {
		p.step[t][0] = make([]int8, order)
		p.step[t][1] = make([]int8, order)
		p.rcoord[t] = make([]int32, order)
	}
	for dnID := 0; dnID < order; dnID++ {
		rID := g.ToR(dnID)
		for t := 0; t < d; t++ {
			p.rcoord[t][dnID] = int32(g.R.Coord(rID, t))
			for gi, gdir := range []int{+1, -1} {
				p.step[t][gi][dnID] = -1
				to := g.R.Step(rID, t, gdir)
				if to == -1 {
					continue
				}
				dnTo := g.ToDn(to)
				for j := 0; j < g.Dn.Dims(); j++ {
					switch g.Dn.Coord(dnTo, j) - g.Dn.Coord(dnID, j) {
					case 1:
						p.step[t][gi][dnID] = int8(2 * j)
					case -1:
						p.step[t][gi][dnID] = int8(2*j + 1)
					}
				}
			}
		}
	}
	return p
}

// groupedMaskedStep moves key one grouped step along dimension t in
// direction gdir for the selected physical nodes, into dst.
func (p *GroupedPlan) groupedMaskedStep(s Stepper, src, dst string, t, gdir int, mask func(dnID int) bool) {
	gi := 0
	if gdir < 0 {
		gi = 1
	}
	steps := p.step[t][gi]
	m := p.G.Dn
	for j := 0; j < m.Dims(); j++ {
		for enc := 2 * j; enc <= 2*j+1; enc++ {
			dir := 1 - 2*(enc&1)
			any := false
			for dnID := 0; dnID < m.Order(); dnID++ {
				if int(steps[dnID]) == enc && mask(dnID) {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			s.MaskedStep(src, dst, j, dir, func(dnID int) bool {
				return int(steps[dnID]) == enc && mask(dnID)
			})
		}
	}
}

// ReduceDimGrouped folds key along grouped dimension t with op; the
// per-line result lands at grouped coordinate 0.
func ReduceDimGrouped(s Stepper, p *GroupedPlan, key string, t int, op Op) int {
	mach := s.Machine()
	const tmp = "__gred_tmp"
	mach.EnsureReg(tmp)
	size := int(p.G.F.L[t])
	return routesUsed(s, func() {
		for c := size - 1; c >= 1; c-- {
			cc := int32(c)
			p.groupedMaskedStep(s, key, tmp, t, -1, func(dnID int) bool {
				return p.rcoord[t][dnID] == cc
			})
			k, tt := mach.Reg(key), mach.Reg(tmp)
			for pe := range k {
				if p.rcoord[t][s.MeshOf(pe)] == cc-1 {
					k[pe] = op.Combine(k[pe], tt[pe])
				}
			}
		}
	})
}

// BroadcastDimGrouped copies the value at grouped coordinate 0 of
// each line along grouped dimension t to the whole line.
func BroadcastDimGrouped(s Stepper, p *GroupedPlan, key string, t int) int {
	size := int(p.G.F.L[t])
	return routesUsed(s, func() {
		for c := 0; c+1 < size; c++ {
			cc := int32(c)
			p.groupedMaskedStep(s, key, key, t, +1, func(dnID int) bool {
				return p.rcoord[t][dnID] == cc
			})
		}
	})
}

// GroupedStep moves register src one grouped step along grouped
// dimension t in direction gdir into dst for every node that has
// such a neighbor (one masked physical route per (dim,dir) class,
// ≤ 3 each on the star machine).
func GroupedStep(s Stepper, p *GroupedPlan, src, dst string, t, gdir int) {
	p.groupedMaskedStep(s, src, dst, t, gdir, func(int) bool { return true })
}
