package meshops

import (
	"math/rand"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/starsim"
)

func newMeshS(sizes ...int) Stepper {
	mm := meshsim.New(mesh.New(sizes...))
	mm.AddReg("K")
	return NewMeshStepper(mm)
}

func newStarS(n int) Stepper {
	sm := starsim.New(n)
	sm.AddReg("K")
	return NewStarStepper(sm)
}

func setKeys(s Stepper, vals []int64) {
	k := s.Machine().Reg("K")
	for pe := range k {
		k[pe] = vals[s.MeshOf(pe)]
	}
}

func keyAt(s Stepper, meshID int) int64 {
	return s.Machine().Reg("K")[s.PEOf(meshID)]
}

func randVals(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(100))
	}
	return vals
}

func TestReduceDimMesh(t *testing.T) {
	s := newMeshS(3, 4)
	m := s.Mesh()
	vals := randVals(m.Order(), 1)
	setKeys(s, vals)
	ReduceDim(s, "K", 0, Sum)
	// Each line along dim 0 sums into coordinate 0.
	for c1 := 0; c1 < 4; c1++ {
		want := int64(0)
		for c0 := 0; c0 < 3; c0++ {
			want += vals[m.ID([]int{c0, c1})]
		}
		if got := keyAt(s, m.ID([]int{0, c1})); got != want {
			t.Fatalf("line %d: sum = %d, want %d", c1, got, want)
		}
	}
}

func TestReduceAllMatchesSequential(t *testing.T) {
	for _, op := range []Op{Sum, Max, Min} {
		s := newMeshS(2, 3, 4)
		vals := randVals(s.Mesh().Order(), 2)
		setKeys(s, vals)
		routes := ReduceAll(s, "K", op)
		want := vals[0]
		for _, v := range vals[1:] {
			want = op.Combine(want, v)
		}
		if got := keyAt(s, 0); got != want {
			t.Fatalf("%s: reduce = %d, want %d", op.Name, got, want)
		}
		wantRoutes := (2 - 1) + (3 - 1) + (4 - 1)
		if routes != wantRoutes {
			t.Fatalf("%s: routes = %d, want %d", op.Name, routes, wantRoutes)
		}
	}
}

func TestBroadcastAll(t *testing.T) {
	s := newMeshS(2, 3, 4)
	vals := make([]int64, s.Mesh().Order())
	vals[0] = 777
	setKeys(s, vals)
	BroadcastAll(s, "K")
	for id := 0; id < s.Mesh().Order(); id++ {
		if keyAt(s, id) != 777 {
			t.Fatalf("node %d not covered", id)
		}
	}
}

func TestScanSnakeMesh(t *testing.T) {
	s := newMeshS(2, 3, 4)
	m := s.Mesh()
	vals := randVals(m.Order(), 3)
	setKeys(s, vals)
	routes := ScanSnake(s, "K", Sum)
	if routes != m.Order()-1 {
		t.Fatalf("routes = %d, want %d", routes, m.Order()-1)
	}
	prefix := int64(0)
	for pos := 0; pos < m.Order(); pos++ {
		id := m.SnakeIDAt(pos)
		prefix += vals[id]
		if got := keyAt(s, id); got != prefix {
			t.Fatalf("prefix at snake %d = %d, want %d", pos, got, prefix)
		}
	}
}

func TestShiftSnakeMesh(t *testing.T) {
	s := newMeshS(2, 3)
	m := s.Mesh()
	vals := randVals(m.Order(), 4)
	setKeys(s, vals)
	ShiftSnake(s, "K", -9)
	for pos := 0; pos < m.Order(); pos++ {
		id := m.SnakeIDAt(pos)
		want := int64(-9)
		if pos > 0 {
			want = vals[m.SnakeIDAt(pos-1)]
		}
		if got := keyAt(s, id); got != want {
			t.Fatalf("snake %d = %d, want %d", pos, got, want)
		}
	}
}

// TestStarMatchesMesh runs every collective on both machines and
// compares results node-by-node plus the route ratio (≤ 3).
func TestStarMatchesMesh(t *testing.T) {
	type opRun struct {
		name string
		run  func(s Stepper) int
	}
	runs := []opRun{
		{"reduce-sum", func(s Stepper) int { return ReduceAll(s, "K", Sum) }},
		{"reduce-max", func(s Stepper) int { return ReduceAll(s, "K", Max) }},
		{"broadcast", func(s Stepper) int { return BroadcastAll(s, "K") }},
		{"scan-sum", func(s Stepper) int { return ScanSnake(s, "K", Sum) }},
		{"shift", func(s Stepper) int { return ShiftSnake(s, "K", 0) }},
	}
	for _, n := range []int{3, 4} {
		dn := mesh.D(n)
		vals := randVals(dn.Order(), int64(n))
		for _, r := range runs {
			ms := newMeshS(dn.Sizes()...)
			setKeys(ms, vals)
			meshRoutes := r.run(ms)

			ss := newStarS(n)
			setKeys(ss, vals)
			starRoutes := r.run(ss)

			for id := 0; id < dn.Order(); id++ {
				if keyAt(ms, id) != keyAt(ss, id) {
					t.Fatalf("n=%d %s: mismatch at mesh node %d", n, r.name, id)
				}
			}
			if starRoutes > 3*meshRoutes {
				t.Fatalf("n=%d %s: star routes %d > 3x mesh routes %d",
					n, r.name, starRoutes, meshRoutes)
			}
			if c := ss.Machine().Stats().ReceiveConflicts; c != 0 {
				t.Fatalf("n=%d %s: %d conflicts", n, r.name, c)
			}
		}
	}
}

func TestSnakePlan(t *testing.T) {
	m := mesh.New(2, 3)
	p := NewSnakePlan(m)
	for pos := 0; pos < m.Order(); pos++ {
		id := p.IDAt[pos]
		if p.Index[id] != pos {
			t.Fatalf("plan index inconsistent")
		}
		if pos+1 < m.Order() {
			next := m.Step(id, p.Dim[id], p.Dir[id])
			if next != p.IDAt[pos+1] {
				t.Fatalf("plan step at %d leads to %d, want %d", pos, next, p.IDAt[pos+1])
			}
		} else if p.Dim[id] != -1 {
			t.Fatalf("last snake node should have dim -1")
		}
	}
}

func TestStepperMappings(t *testing.T) {
	s := newStarS(4)
	for pe := 0; pe < 24; pe++ {
		if s.PEOf(s.MeshOf(pe)) != pe {
			t.Fatalf("stepper mapping not inverse at %d", pe)
		}
	}
}

func BenchmarkReduceAllStarN5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newStarS(5)
		setKeys(s, randVals(120, 9))
		ReduceAll(s, "K", Sum)
	}
}
