package meshops

import (
	"testing"

	"starmesh/internal/atallah"
	"starmesh/internal/meshsim"
	"starmesh/internal/starsim"
)

func groupedFixture(n, d int) (*GroupedPlan, Stepper, Stepper) {
	g := atallah.NewGrouped(atallah.Factorize(n, d))
	p := NewGroupedPlan(g)
	mm := meshsim.New(g.Dn)
	mm.AddReg("K")
	sm := starsim.New(n)
	sm.AddReg("K")
	return p, NewMeshStepper(mm), NewStarStepper(sm)
}

func TestGroupedPlanStepsAreSingleMoves(t *testing.T) {
	g := atallah.NewGrouped(atallah.Factorize(5, 2))
	p := NewGroupedPlan(g)
	for dnID := 0; dnID < g.Dn.Order(); dnID++ {
		rID := g.ToR(dnID)
		for t2 := 0; t2 < 2; t2++ {
			for gi, gdir := range []int{+1, -1} {
				enc := p.step[t2][gi][dnID]
				to := g.R.Step(rID, t2, gdir)
				if (to == -1) != (enc == -1) {
					t.Fatalf("boundary mismatch at %d", dnID)
				}
				if enc == -1 {
					continue
				}
				dim := int(enc) / 2
				dir := 1 - 2*(int(enc)&1)
				if g.Dn.Step(dnID, dim, dir) != g.ToDn(to) {
					t.Fatalf("plan step wrong at %d", dnID)
				}
			}
		}
	}
}

func TestReduceDimGrouped(t *testing.T) {
	for _, c := range [][2]int{{4, 2}, {5, 2}, {5, 3}} {
		p, ms, _ := groupedFixture(c[0], c[1])
		g := p.G
		vals := randVals(g.Dn.Order(), int64(c[0]))
		setKeys(ms, vals)
		ReduceDimGrouped(ms, p, "K", 0, Sum)
		// Check: for each line (fixed other coords), the sum sits at
		// grouped coordinate 0.
		for rID := 0; rID < g.R.Order(); rID++ {
			if g.R.Coord(rID, 0) != 0 {
				continue
			}
			want := int64(0)
			coords := make([]int, g.R.Dims())
			for j := range coords {
				coords[j] = g.R.Coord(rID, j)
			}
			for v := 0; v < g.R.Size(0); v++ {
				coords[0] = v
				want += vals[g.ToDn(g.R.ID(coords))]
			}
			got := keyAt(ms, g.ToDn(rID))
			if got != want {
				t.Fatalf("n=%d d=%d line %d: sum %d, want %d", c[0], c[1], rID, got, want)
			}
		}
	}
}

func TestBroadcastDimGrouped(t *testing.T) {
	p, ms, _ := groupedFixture(5, 2)
	g := p.G
	vals := make([]int64, g.Dn.Order())
	// Seed grouped coordinate-0 nodes of dim 1 with their dim-0 coord.
	for rID := 0; rID < g.R.Order(); rID++ {
		if g.R.Coord(rID, 1) == 0 {
			vals[g.ToDn(rID)] = int64(1000 + g.R.Coord(rID, 0))
		}
	}
	setKeys(ms, vals)
	BroadcastDimGrouped(ms, p, "K", 1)
	for rID := 0; rID < g.R.Order(); rID++ {
		want := int64(1000 + g.R.Coord(rID, 0))
		if got := keyAt(ms, g.ToDn(rID)); got != want {
			t.Fatalf("broadcast wrong at rID %d: %d want %d", rID, got, want)
		}
	}
}

func TestGroupedCollectivesStarMatchesMesh(t *testing.T) {
	p, ms, ss := groupedFixture(4, 2)
	g := p.G
	vals := randVals(g.Dn.Order(), 99)
	setKeys(ms, vals)
	setKeys(ss, vals)
	mr := ReduceDimGrouped(ms, p, "K", 1, Max)
	sr := ReduceDimGrouped(ss, p, "K", 1, Max)
	for dnID := 0; dnID < g.Dn.Order(); dnID++ {
		if keyAt(ms, dnID) != keyAt(ss, dnID) {
			t.Fatalf("grouped reduce differs at %d", dnID)
		}
	}
	if sr > 3*mr {
		t.Fatalf("star grouped routes %d > 3x mesh %d", sr, mr)
	}
	if ss.Machine().Stats().ReceiveConflicts != 0 {
		t.Fatalf("conflicts in grouped collective")
	}
}

func TestGroupedStepMovesNeighbors(t *testing.T) {
	p, ms, _ := groupedFixture(4, 2)
	g := p.G
	mach := ms.Machine()
	mach.EnsureReg("T")
	vals := randVals(g.Dn.Order(), 5)
	setKeys(ms, vals)
	GroupedStep(ms, p, "K", "T", 0, +1)
	for rID := 0; rID < g.R.Order(); rID++ {
		from := g.R.Step(rID, 0, -1)
		if from == -1 {
			continue
		}
		got := mach.Reg("T")[ms.PEOf(g.ToDn(rID))]
		want := vals[g.ToDn(from)]
		if got != want {
			t.Fatalf("grouped step wrong at rID %d: %d want %d", rID, got, want)
		}
	}
}
