package meshops

// Collective operations. Every operation returns the number of unit
// routes consumed on the executing machine, so the mesh/star route
// ratio (≤ 3, Theorem 6) can be measured per collective.

// Op is a binary combining operator for reductions and scans.
type Op struct {
	Name    string
	Combine func(a, b int64) int64
}

// Predefined operators.
var (
	Sum = Op{Name: "sum", Combine: func(a, b int64) int64 { return a + b }}
	Max = Op{Name: "max", Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
	Min = Op{Name: "min", Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
)

func routesUsed(s Stepper, fn func()) int {
	before := s.Machine().Stats().UnitRoutes
	fn()
	return s.Machine().Stats().UnitRoutes - before
}

// ReduceDim folds register key along dimension dim with op; the
// result for each line along dim lands at coordinate 0 of that
// line. Costs size(dim)-1 masked steps.
func ReduceDim(s Stepper, key string, dim int, op Op) int {
	m := s.Mesh()
	mach := s.Machine()
	const tmp = "__red_tmp"
	mach.EnsureReg(tmp)
	return routesUsed(s, func() {
		for c := m.Size(dim) - 1; c >= 1; c-- {
			cc := c
			s.MaskedStep(key, tmp, dim, -1, func(meshID int) bool {
				return m.Coord(meshID, dim) == cc
			})
			k, t := mach.Reg(key), mach.Reg(tmp)
			for pe := range k {
				if m.Coord(s.MeshOf(pe), dim) == cc-1 {
					k[pe] = op.Combine(k[pe], t[pe])
				}
			}
		}
	})
}

// ReduceAll folds register key over the whole mesh; the grand result
// lands at mesh node 0 (the origin). Costs Σ(size_j - 1) steps.
func ReduceAll(s Stepper, key string, op Op) int {
	m := s.Mesh()
	total := 0
	// After reducing dimension j, only the coordinate-0 hyperplane
	// holds partial results, but reducing the next dimension over
	// the whole mesh is still correct: junk values combine only into
	// junk lines. We reduce highest dimension first so the final
	// fold along dimension 0 sees the fully reduced line.
	for dim := m.Dims() - 1; dim >= 0; dim-- {
		total += ReduceDim(s, key, dim, op)
	}
	return total
}

// BroadcastDim copies the value at coordinate 0 of each line along
// dim to the whole line. Costs size(dim)-1 masked steps.
func BroadcastDim(s Stepper, key string, dim int) int {
	m := s.Mesh()
	return routesUsed(s, func() {
		for c := 0; c+1 < m.Size(dim); c++ {
			cc := c
			s.MaskedStep(key, key, dim, +1, func(meshID int) bool {
				return m.Coord(meshID, dim) == cc
			})
		}
	})
}

// BroadcastAll copies the value at mesh node 0 to every node.
func BroadcastAll(s Stepper, key string) int {
	total := 0
	for dim := 0; dim < s.Mesh().Dims(); dim++ {
		total += BroadcastDim(s, key, dim)
	}
	return total
}

// ScanSnake computes the inclusive prefix combine of register key in
// snake order: after the call, the node at snake position i holds
// op(key[0..i]). Sequential chain: N-1 steps, each one masked route.
func ScanSnake(s Stepper, key string, op Op) int {
	m := s.Mesh()
	mach := s.Machine()
	plan := NewSnakePlan(m)
	const tmp = "__scan_tmp"
	mach.EnsureReg(tmp)
	return routesUsed(s, func() {
		for pos := 0; pos+1 < m.Order(); pos++ {
			sender := plan.IDAt[pos]
			dim, dir := plan.Dim[sender], plan.Dir[sender]
			s.MaskedStep(key, tmp, dim, dir, func(meshID int) bool {
				return meshID == sender
			})
			receiver := s.PEOf(plan.IDAt[pos+1])
			k, t := mach.Reg(key), mach.Reg(tmp)
			k[receiver] = op.Combine(t[receiver], k[receiver])
		}
	})
}

// ShiftSnake moves every key one snake position forward (toward
// higher snake index); the first snake position receives fill. The
// last value falls off. Costs one masked route per (dim,dir) class
// present in the snake (≤ 2·dims).
func ShiftSnake(s Stepper, key string, fill int64) int {
	m := s.Mesh()
	mach := s.Machine()
	plan := NewSnakePlan(m)
	const tmp = "__shift_tmp"
	mach.EnsureReg(tmp)
	n := routesUsed(s, func() {
		for dim := 0; dim < m.Dims(); dim++ {
			for _, dir := range []int{+1, -1} {
				d, dd := dim, dir
				any := false
				for id := 0; id < m.Order(); id++ {
					if plan.Dim[id] == d && plan.Dir[id] == dd {
						any = true
						break
					}
				}
				if !any {
					continue
				}
				s.MaskedStep(key, tmp, d, dd, func(meshID int) bool {
					return plan.Dim[meshID] == d && plan.Dir[meshID] == dd
				})
			}
		}
	})
	// Commit: every non-first snake position takes the shifted value.
	k, t := mach.Reg(key), mach.Reg(tmp)
	for pos := m.Order() - 1; pos >= 1; pos-- {
		pe := s.PEOf(plan.IDAt[pos])
		k[pe] = t[pe]
	}
	k[s.PEOf(plan.IDAt[0])] = fill
	return n
}
