// Package meshops implements SIMD collective operations on a mesh —
// dimension reductions, dimension broadcasts, snake-order scans and
// shifts — runnable both natively on a mesh machine and on a star
// machine through the paper's embedding. It makes §1's claim
// concrete: "most algorithms for the (n-1)-dimensional mesh … can be
// efficiently simulated on the star graph", at the Theorem-6 route
// factor of ≤ 3.
//
// The Stepper interface abstracts the single primitive every
// operation is built from: a masked unit route along one mesh
// dimension. On the mesh machine a masked step costs 1 unit route;
// on the star machine it costs ≤ 3 (Theorem 6).
package meshops

import (
	"starmesh/internal/core"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/simd"
	"starmesh/internal/starsim"
)

// Stepper is a machine that can move data one masked step along a
// mesh dimension. Masks are predicates over *mesh* node ids
// (evaluated at the sender), regardless of how PEs are laid out.
type Stepper interface {
	// MaskedStep routes src one step along dimension dim (0-based)
	// in direction dir into dst for every selected sender.
	MaskedStep(src, dst string, dim, dir int, mask func(meshID int) bool)
	// Machine exposes the underlying SIMD machine (registers, stats).
	Machine() *simd.Machine
	// Mesh returns the logical mesh.
	Mesh() *mesh.Mesh
	// MeshOf maps a PE id to the mesh node it hosts.
	MeshOf(pe int) int
	// PEOf maps a mesh node to the PE hosting it.
	PEOf(meshID int) int
}

// meshStepper executes on the mesh machine itself (PE id = mesh id).
type meshStepper struct{ mm *meshsim.Machine }

// NewMeshStepper wraps a mesh machine.
func NewMeshStepper(mm *meshsim.Machine) Stepper { return meshStepper{mm: mm} }

func (s meshStepper) MaskedStep(src, dst string, dim, dir int, mask func(int) bool) {
	s.mm.RouteA(src, dst, meshsim.Port(dim, dir), mask)
}
func (s meshStepper) Machine() *simd.Machine { return s.mm.Machine }
func (s meshStepper) Mesh() *mesh.Mesh       { return s.mm.M }
func (s meshStepper) MeshOf(pe int) int      { return pe }
func (s meshStepper) PEOf(meshID int) int    { return meshID }

// starStepper executes on the star machine through the embedding.
type starStepper struct {
	sm     *starsim.Machine
	dn     *mesh.Mesh
	meshID []int // star PE -> mesh id
	peID   []int // mesh id -> star PE
}

// NewStarStepper wraps a star machine; the mesh is D_n and PE
// placement follows the paper's embedding.
func NewStarStepper(sm *starsim.Machine) Stepper {
	n := sm.N
	s := &starStepper{sm: sm, dn: mesh.D(n)}
	s.meshID = make([]int, sm.Size())
	s.peID = make([]int, sm.Size())
	for pe := 0; pe < sm.Size(); pe++ {
		m := core.UnmapID(n, pe)
		s.meshID[pe] = m
		s.peID[m] = pe
	}
	return s
}

func (s *starStepper) MaskedStep(src, dst string, dim, dir int, mask func(int) bool) {
	s.sm.MaskedMeshUnitRoute(src, dst, dim+1, dir, func(pe int) bool {
		return mask(s.meshID[pe])
	})
}
func (s *starStepper) Machine() *simd.Machine { return s.sm.Machine }
func (s *starStepper) Mesh() *mesh.Mesh       { return s.dn }
func (s *starStepper) MeshOf(pe int) int      { return s.meshID[pe] }
func (s *starStepper) PEOf(meshID int) int    { return s.peID[meshID] }

// SnakePlan precomputes the snake order of a mesh: each node's snake
// index and the (dim, dir) of the step to its snake successor.
type SnakePlan struct {
	M     *mesh.Mesh
	Index []int // node id -> snake position
	IDAt  []int // snake position -> node id
	Dim   []int // node id -> dim of step to successor, -1 at the end
	Dir   []int
}

// NewSnakePlan builds the plan.
func NewSnakePlan(m *mesh.Mesh) *SnakePlan {
	p := &SnakePlan{
		M:     m,
		Index: make([]int, m.Order()),
		IDAt:  make([]int, m.Order()),
		Dim:   make([]int, m.Order()),
		Dir:   make([]int, m.Order()),
	}
	prev := -1
	for s := 0; s < m.Order(); s++ {
		id := m.SnakeIDAt(s)
		p.Index[id] = s
		p.IDAt[s] = id
		p.Dim[id] = -1
		if prev != -1 {
			for j := 0; j < m.Dims(); j++ {
				switch m.Coord(id, j) - m.Coord(prev, j) {
				case 1:
					p.Dim[prev], p.Dir[prev] = j, +1
				case -1:
					p.Dim[prev], p.Dir[prev] = j, -1
				}
			}
		}
		prev = id
	}
	return p
}
