// Package loadgen is the closed-loop load generator and the
// pooled / unpooled / WAL-durable comparison harness behind
// BENCH_serve.json.
// Every byte of traffic goes through the public typed client
// (starmesh/client) against the /v1 routes — submission with 429
// backpressure honored, completion observed over the watch stream —
// so the measured throughput covers admission, scheduling, pooling,
// the HTTP layer and the client itself: exactly what a real caller
// pays.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"starmesh/client"
	"starmesh/internal/obs"
	"starmesh/internal/serve"
	"starmesh/internal/workload"
)

// JobSpec, Job and ScenarioResult are the service's own types.
type (
	JobSpec        = serve.JobSpec
	Job            = serve.Job
	ScenarioResult = serve.ScenarioResult
)

// LoadConfig shapes one load run.
type LoadConfig struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// JobsPerClient is how many jobs each client completes.
	JobsPerClient int
	// Specs are assigned round-robin across the job stream, so every
	// spec runs repeatedly and on every mode.
	Specs []JobSpec
	// PollInterval is the 429 retry back-off (default 200 µs — the
	// bench harness wants admission pressure, not idle waiting).
	PollInterval time.Duration
	// Reps is how many times RunComparison measures each mode,
	// interleaved (pooled, unpooled, durable, pooled, …) so host
	// drift hits every mode equally; the best rep per mode is kept —
	// run-to-run noise on a busy host dwarfs the real deltas, and the
	// fastest run is the closest estimate of each mode's true cost
	// (0 = 1). The parity check covers every rep.
	Reps int
}

// LoadResult is one load run's measurement.
type LoadResult struct {
	Jobs      int   `json:"jobs"`
	Failed    int   `json:"failed"`
	Rejected  int   `json:"rejected_429"`
	ElapsedNs int64 `json:"elapsed_ns"`
	// ThroughputJobsPerSec is completed jobs over the run's wall
	// clock, the headline number of the pooled-vs-unpooled record.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// Client-observed latency percentiles (submit → terminal status,
	// watch stream included).
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`
	// QueueWaitP99Ns is the service-side p99 queue wait (submit →
	// claim), scraped from /v1/metrics after the run — the scheduler's
	// own view of the admission backlog, as opposed to the client-side
	// LatencyP99Ns which also includes execution and the watch stream.
	// Zero when the service ran without metrics (NoObs).
	QueueWaitP99Ns int64 `json:"queue_wait_p99_ns"`
	// BySpec holds, per spec name, the result every job of that spec
	// returned; RunLoad fails if two runs of one spec ever disagree
	// (the service determinism contract).
	BySpec map[string]ScenarioResult `json:"-"`
}

// ScrapeQueueWaitP99 reads the service's /v1/metrics exposition and
// returns the p99 of starmesh_queue_wait_seconds (0 with an error if
// the exposition is unreachable, invalid, or missing the histogram).
func ScrapeQueueWaitP99(ctx context.Context, baseURL string) (time.Duration, error) {
	text, err := client.New(baseURL).Metrics(ctx)
	if err != nil {
		return 0, err
	}
	// Validate before use: the bench doubles as CI's exposition-format
	// smoke — a malformed /v1/metrics fails the serve job here.
	if err := obs.Validate(text); err != nil {
		return 0, fmt.Errorf("loadgen: /v1/metrics failed exposition validation: %w", err)
	}
	sc, err := obs.ParseText(text)
	if err != nil {
		return 0, fmt.Errorf("loadgen: parsing /v1/metrics: %w", err)
	}
	q, ok := sc.HistogramQuantile("starmesh_queue_wait_seconds", nil, 0.99)
	if !ok {
		return 0, fmt.Errorf("loadgen: /v1/metrics has no starmesh_queue_wait_seconds histogram")
	}
	return time.Duration(q * float64(time.Second)), nil
}

// RunLoad drives the API at baseURL closed-loop and reports
// throughput, latency and per-spec results. Each client submits a
// job through the typed client (which retries 429s, counted here —
// that is the backpressure working), awaits the terminal status over
// the watch stream, and moves on.
func RunLoad(baseURL string, cfg LoadConfig) (LoadResult, error) {
	if cfg.Clients < 1 || cfg.JobsPerClient < 1 || len(cfg.Specs) == 0 {
		return LoadResult{}, fmt.Errorf("loadgen: load config needs clients, jobs per client and specs")
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	type outcome struct {
		job      Job // final server snapshot; its Spec is normalized
		latency  time.Duration
		rejected int
		err      error
	}
	outcomes := make([]outcome, cfg.Clients*cfg.JobsPerClient)
	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rejected := 0
			cl := client.New(baseURL,
				client.WithMaxRetries(-1), // closed loop: admission must eventually win
				client.WithBackpressureHook(func(time.Duration) { rejected++ }),
				client.WithSleep(func(ctx context.Context, _ time.Duration) error {
					// The bench keeps pressure on: ignore the server's
					// 1s Retry-After hint and re-knock at poll cadence.
					time.Sleep(poll)
					return ctx.Err()
				}))
			for j := 0; j < cfg.JobsPerClient; j++ {
				idx := c*cfg.JobsPerClient + j
				spec := cfg.Specs[idx%len(cfg.Specs)]
				var o outcome
				before := rejected
				t0 := time.Now()
				o.job, o.err = runOneJob(ctx, cl, spec)
				o.latency = time.Since(t0)
				o.rejected = rejected - before
				outcomes[idx] = o
				if o.err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := LoadResult{
		ElapsedNs: elapsed.Nanoseconds(),
		BySpec:    make(map[string]ScenarioResult),
	}
	var latencies []time.Duration
	for _, o := range outcomes {
		if o.err != nil {
			return out, o.err
		}
		out.Jobs++
		out.Rejected += o.rejected
		latencies = append(latencies, o.latency)
		if o.job.Status != serve.StatusDone {
			out.Failed++
			continue
		}
		// Key by the server's stored spec, which is the normalized
		// form (defaults like dist="uniform" applied) — the same form
		// RunComparison's parity reference is keyed by.
		key := o.job.Spec.Name()
		norm := *o.job.Result
		norm.Name = ""
		norm.ElapsedNs = 0
		if prev, ok := out.BySpec[key]; ok {
			if prev != norm {
				return out, fmt.Errorf("loadgen: spec %s returned diverging results: %+v vs %+v", key, prev, norm)
			}
		} else {
			out.BySpec[key] = norm
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.ThroughputJobsPerSec = float64(out.Jobs-out.Failed) / secs
	}
	out.LatencyP50Ns = percentile(latencies, 50).Nanoseconds()
	out.LatencyP99Ns = percentile(latencies, 99).Nanoseconds()
	return out, nil
}

// runOneJob submits one spec and awaits its terminal status over the
// watch stream, returning the final server-side snapshot. A done job
// always carries a Result.
func runOneJob(ctx context.Context, cl *client.Client, spec JobSpec) (Job, error) {
	job, err := cl.Submit(ctx, spec)
	if err != nil {
		return job, err
	}
	job, err = cl.Await(ctx, job.ID)
	if err != nil {
		return job, err
	}
	if job.Status == serve.StatusDone && job.Result == nil {
		return job, fmt.Errorf("loadgen: job %s done without a result", job.ID)
	}
	return job, nil
}

// percentile returns the nearest-rank p-th percentile.
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	for i := 1; i < len(sorted); i++ { // insertion sort: samples are few
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Comparison is the pooled-vs-unpooled-vs-durable-vs-bare
// measurement plus the parity verdict against standalone scenario
// runs.
type Comparison struct {
	Pooled   LoadResult `json:"pooled"`
	Unpooled LoadResult `json:"unpooled"`
	// Durable re-runs the pooled configuration on the WAL-backed job
	// store (a throwaway directory): the throughput delta against
	// Pooled is what durability costs — every transition appended and
	// checksummed on the submit/claim/finish path.
	Durable LoadResult `json:"durable"`
	// Bare re-runs the pooled configuration with metrics disabled
	// (NoObs): the throughput delta against Pooled is what the
	// observability layer costs — every counter bump, histogram
	// observation and trace append on the hot path.
	Bare LoadResult `json:"bare"`
	// DurableWALRecords and DurableSnapshots are the WAL counters the
	// durable run accumulated — evidence the log was actually on.
	DurableWALRecords int64 `json:"durable_wal_records"`
	DurableSnapshots  int64 `json:"durable_snapshots"`
	// Pool counters from the pooled service after the run.
	PoolBuilds int64 `json:"pool_builds"`
	PoolReuses int64 `json:"pool_reuses"`
	// UnpooledBuilds counts machine constructions in build-per-job
	// mode (one per job touching a machine).
	UnpooledBuilds int64 `json:"unpooled_builds"`
	// ParityOK means every job result — pooled, unpooled and durable —
	// was bit-identical (unit routes, conflicts, self-check) to a
	// standalone workload run of the same spec.
	ParityOK bool `json:"parity_ok"`
}

// WALOverheadFrac is the fraction of pooled throughput the WAL costs
// (0.07 = durable runs 7% slower; negative = noise in durability's
// favor).
func (c *Comparison) WALOverheadFrac() float64 {
	if c.Pooled.ThroughputJobsPerSec <= 0 {
		return 0
	}
	return 1 - c.Durable.ThroughputJobsPerSec/c.Pooled.ThroughputJobsPerSec
}

// ObsOverheadFrac is the fraction of bare throughput the metrics and
// trace instrumentation cost (0.03 = the instrumented pooled run is
// 3% slower than the same run with NoObs; negative = noise in the
// instrumented run's favor).
func (c *Comparison) ObsOverheadFrac() float64 {
	if c.Bare.ThroughputJobsPerSec <= 0 {
		return 0
	}
	return 1 - c.Pooled.ThroughputJobsPerSec/c.Bare.ThroughputJobsPerSec
}

// RunComparison measures the same closed-loop load twice — per-shape
// pooling on, then off — over a fresh in-process HTTP server each,
// and verifies both modes reproduce standalone scenario results
// exactly. The standalone runs happen first: they are the parity
// reference, and they warm the process-wide SharedPlans cache so
// neither measured mode pays one-time plan compilation the other
// would inherit (machine construction, route tables and plan binding
// remain per-machine costs — the costs pooling amortizes).
func RunComparison(svcCfg serve.Config, load LoadConfig) (Comparison, error) {
	var cmp Comparison

	opts, err := svcCfg.EngineOptions()
	if err != nil {
		return cmp, err
	}
	wants := make(map[string]ScenarioResult, len(load.Specs))
	for _, spec := range load.Specs {
		sc, err := workload.ScenarioFor(spec, opts...)
		if err != nil {
			return cmp, err
		}
		want, err := sc.Run(context.Background())
		if err != nil {
			return cmp, fmt.Errorf("standalone %s: %w", sc.Name, err)
		}
		want.Name = ""
		want.ElapsedNs = 0
		norm, err := spec.Normalized()
		if err != nil {
			return cmp, err
		}
		wants[norm.Name()] = want
	}

	measure := func(cfg serve.Config) (LoadResult, serve.Stats, error) {
		svc, err := serve.NewService(cfg)
		if err != nil {
			return LoadResult{}, serve.Stats{}, err
		}
		ts := httptest.NewServer(svc.Handler())
		res, err := RunLoad(ts.URL, load)
		if err == nil && !cfg.NoObs {
			// The scrape happens after the run's clock stops, so it
			// never perturbs the measurement it reports on.
			p99, serr := ScrapeQueueWaitP99(context.Background(), ts.URL)
			if serr != nil {
				err = serr
			} else {
				res.QueueWaitP99Ns = p99.Nanoseconds()
			}
		}
		stats := svc.Stats()
		ts.Close()
		svc.Drain()
		return res, stats, err
	}
	// checkParity verifies one run against the standalone references;
	// every rep of every mode goes through it, so a kept-or-discarded
	// timing never hides a correctness divergence.
	checkParity := func(mode string, res LoadResult) error {
		for name, want := range wants {
			got, ok := res.BySpec[name]
			if !ok {
				return fmt.Errorf("loadgen: %s run never completed spec %s", mode, name)
			}
			if got != want {
				cmp.ParityOK = false
				return fmt.Errorf("loadgen: %s result for %s diverged from standalone run: %+v vs %+v",
					mode, name, got, want)
			}
		}
		return nil
	}

	unpooledCfg := svcCfg
	unpooledCfg.NoPool = true
	reps := load.Reps
	if reps < 1 {
		reps = 1
	}
	var pooledStats, unpooledStats, durableStats serve.Stats
	for r := 0; r < reps; r++ {
		pooled, pStats, err := measure(svcCfg)
		if err != nil {
			return cmp, fmt.Errorf("pooled run: %w", err)
		}
		if err := checkParity("pooled", pooled); err != nil {
			return cmp, err
		}
		unpooled, uStats, err := measure(unpooledCfg)
		if err != nil {
			return cmp, fmt.Errorf("unpooled run: %w", err)
		}
		if err := checkParity("unpooled", unpooled); err != nil {
			return cmp, err
		}
		// The durable run is the pooled configuration plus the WAL (in
		// a throwaway directory, fresh per rep so no rep pays recovery
		// for the previous one), so the pooled-vs-durable delta
		// isolates the logging cost.
		walDir, err := os.MkdirTemp("", "starmesh-bench-wal-")
		if err != nil {
			return cmp, err
		}
		durableCfg := svcCfg
		durableCfg.StoreDir = walDir
		durable, dStats, err := measure(durableCfg)
		os.RemoveAll(walDir)
		if err != nil {
			return cmp, fmt.Errorf("durable run: %w", err)
		}
		if err := checkParity("durable", durable); err != nil {
			return cmp, err
		}
		// The bare run is the pooled configuration minus all
		// instrumentation (NoObs): its delta against Pooled is the
		// observability tax, gated by the serve experiment.
		bareCfg := svcCfg
		bareCfg.NoObs = true
		bare, _, err := measure(bareCfg)
		if err != nil {
			return cmp, fmt.Errorf("bare run: %w", err)
		}
		if err := checkParity("bare", bare); err != nil {
			return cmp, err
		}
		if r == 0 || pooled.ThroughputJobsPerSec > cmp.Pooled.ThroughputJobsPerSec {
			cmp.Pooled, pooledStats = pooled, pStats
		}
		if r == 0 || unpooled.ThroughputJobsPerSec > cmp.Unpooled.ThroughputJobsPerSec {
			cmp.Unpooled, unpooledStats = unpooled, uStats
		}
		if r == 0 || durable.ThroughputJobsPerSec > cmp.Durable.ThroughputJobsPerSec {
			cmp.Durable, durableStats = durable, dStats
		}
		if r == 0 || bare.ThroughputJobsPerSec > cmp.Bare.ThroughputJobsPerSec {
			cmp.Bare = bare
		}
	}
	cmp.DurableWALRecords = durableStats.Durability.WALRecords
	cmp.DurableSnapshots = durableStats.Durability.Snapshots
	for _, p := range pooledStats.Pools {
		cmp.PoolBuilds += p.Builds
		cmp.PoolReuses += p.Reuses
	}
	for _, p := range unpooledStats.Pools {
		cmp.UnpooledBuilds += p.Builds
	}
	cmp.ParityOK = true
	return cmp, nil
}

// BenchRecord is the schema of BENCH_serve.json: closed-loop service
// throughput and latency with per-shape machine pooling on vs off,
// with parity against standalone runs asserted before any timing is
// reported. Since the v1 redesign the load flows through the typed
// client (API field).
type BenchRecord struct {
	Benchmark     string `json:"benchmark"`
	API           string `json:"api"`
	Timestamp     string `json:"timestamp"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	Workers       int    `json:"workers"`
	Queue         int    `json:"queue"`
	Engine        string `json:"engine"`
	Plans         bool   `json:"plans"`
	Clients       int    `json:"clients"`
	JobsPerClient int    `json:"jobs_per_client"`
	Specs         int    `json:"specs"`
	Reps          int    `json:"reps"`

	PooledJobs         int     `json:"pooled_jobs"`
	PooledNs           int64   `json:"pooled_ns"`
	PooledThroughput   float64 `json:"pooled_jobs_per_sec"`
	PooledP50Ns        int64   `json:"pooled_latency_p50_ns"`
	PooledP99Ns        int64   `json:"pooled_latency_p99_ns"`
	UnpooledJobs       int     `json:"unpooled_jobs"`
	UnpooledNs         int64   `json:"unpooled_ns"`
	UnpooledThroughput float64 `json:"unpooled_jobs_per_sec"`
	UnpooledP50Ns      int64   `json:"unpooled_latency_p50_ns"`
	UnpooledP99Ns      int64   `json:"unpooled_latency_p99_ns"`

	// The durable (WAL-on, pooled) measurement and its overhead
	// against the in-memory pooled run — the number the CI recovery
	// job gates at 10%.
	DurableJobs       int     `json:"durable_jobs"`
	DurableNs         int64   `json:"durable_ns"`
	DurableThroughput float64 `json:"durable_jobs_per_sec"`
	DurableP50Ns      int64   `json:"durable_latency_p50_ns"`
	DurableP99Ns      int64   `json:"durable_latency_p99_ns"`
	DurableWALRecords int64   `json:"durable_wal_records"`
	DurableSnapshots  int64   `json:"durable_snapshots"`
	WALOverheadFrac   float64 `json:"wal_overhead_frac"`

	// The bare (NoObs, pooled) measurement and the observability
	// overhead it exposes — the number the serve experiment gates at
	// 5%. PooledQueueWaitP99Ns is the scheduler-side p99 queue wait
	// scraped from the instrumented pooled run's /v1/metrics.
	BareJobs             int     `json:"bare_jobs"`
	BareNs               int64   `json:"bare_ns"`
	BareThroughput       float64 `json:"bare_jobs_per_sec"`
	ObsOverheadFrac      float64 `json:"obs_overhead_frac"`
	PooledQueueWaitP99Ns int64   `json:"pooled_queue_wait_p99_ns"`

	SpeedupPooled  float64 `json:"speedup_pooled_vs_unpooled"`
	PoolBuilds     int64   `json:"pool_builds"`
	PoolReuses     int64   `json:"pool_reuses"`
	UnpooledBuilds int64   `json:"unpooled_builds"`
	ParityOK       bool    `json:"parity_ok"`
}

// NewBenchRecord folds a comparison into the record schema. The
// reported workers/queue/engine come from the config's effective
// defaults, so the record always describes the configuration the
// service actually ran.
func NewBenchRecord(svcCfg serve.Config, load LoadConfig, cmp Comparison, gomaxprocs int, timestamp string) BenchRecord {
	eff := svcCfg.Effective()
	rec := BenchRecord{
		Benchmark:          "serve-closed-loop-pooled-vs-unpooled-vs-durable",
		API:                "v1-typed-client-watch",
		Timestamp:          timestamp,
		GoMaxProcs:         gomaxprocs,
		Workers:            eff.Workers,
		Queue:              eff.Queue,
		Engine:             eff.Engine,
		Plans:              !svcCfg.NoPlans,
		Clients:            load.Clients,
		JobsPerClient:      load.JobsPerClient,
		Specs:              len(load.Specs),
		Reps:               max(load.Reps, 1),
		PooledJobs:         cmp.Pooled.Jobs,
		PooledNs:           cmp.Pooled.ElapsedNs,
		PooledThroughput:   cmp.Pooled.ThroughputJobsPerSec,
		PooledP50Ns:        cmp.Pooled.LatencyP50Ns,
		PooledP99Ns:        cmp.Pooled.LatencyP99Ns,
		UnpooledJobs:       cmp.Unpooled.Jobs,
		UnpooledNs:         cmp.Unpooled.ElapsedNs,
		UnpooledThroughput: cmp.Unpooled.ThroughputJobsPerSec,
		UnpooledP50Ns:      cmp.Unpooled.LatencyP50Ns,
		UnpooledP99Ns:      cmp.Unpooled.LatencyP99Ns,
		DurableJobs:        cmp.Durable.Jobs,
		DurableNs:          cmp.Durable.ElapsedNs,
		DurableThroughput:  cmp.Durable.ThroughputJobsPerSec,
		DurableP50Ns:       cmp.Durable.LatencyP50Ns,
		DurableP99Ns:       cmp.Durable.LatencyP99Ns,
		DurableWALRecords:  cmp.DurableWALRecords,
		DurableSnapshots:   cmp.DurableSnapshots,
		WALOverheadFrac:    cmp.WALOverheadFrac(),
		BareJobs:           cmp.Bare.Jobs,
		BareNs:             cmp.Bare.ElapsedNs,
		BareThroughput:     cmp.Bare.ThroughputJobsPerSec,
		ObsOverheadFrac:    cmp.ObsOverheadFrac(),

		PooledQueueWaitP99Ns: cmp.Pooled.QueueWaitP99Ns,
		PoolBuilds:           cmp.PoolBuilds,
		PoolReuses:           cmp.PoolReuses,
		UnpooledBuilds:       cmp.UnpooledBuilds,
		ParityOK:             cmp.ParityOK,
	}
	if cmp.Unpooled.ThroughputJobsPerSec > 0 {
		rec.SpeedupPooled = cmp.Pooled.ThroughputJobsPerSec / cmp.Unpooled.ThroughputJobsPerSec
	}
	return rec
}

// WriteJSON writes the record as indented JSON.
func (r *BenchRecord) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
