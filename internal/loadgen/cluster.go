// The cluster comparison harness behind BENCH_cluster.json: the same
// closed-loop load driven through the routing client against a
// 3-node in-process cluster and against a single node, plus a drain
// exercise that migrates a held backlog and re-verifies every
// migrated job bit-identically. Like the serve bench, all traffic
// goes through the public typed client over real HTTP listeners, so
// the measured speedup includes the routing layer's own cost.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"starmesh/client"
	"starmesh/internal/cluster"
	"starmesh/internal/serve"
	"starmesh/internal/workload"
)

// ClusterLoadConfig shapes one cluster-vs-single comparison.
type ClusterLoadConfig struct {
	// Nodes is the cluster size (the single-node baseline always runs
	// one node of the same per-node configuration).
	Nodes int
	// WorkersPerNode pins each node's worker count — the bench uses 1
	// so the cluster's parallelism is the node count, not GOMAXPROCS.
	WorkersPerNode int
	Queue          int
	// Clients and JobsPerClient define the closed loop, as in
	// LoadConfig. Specs round-robin across the stream and should span
	// several pool shapes, or everything routes to one owner.
	Clients       int
	JobsPerClient int
	Specs         []JobSpec
	// Reps interleaves cluster/single measurement pairs and keeps the
	// best of each (0 = 1), like RunComparison.
	Reps int
	// DrainBacklog is how many slow star:8 sweep jobs the drain
	// exercise queues before draining their owner (0 = 8).
	DrainBacklog int
}

// ClusterComparison is the cluster-vs-single measurement plus the
// drain-migration verdict.
type ClusterComparison struct {
	Cluster LoadResult `json:"cluster"`
	Single  LoadResult `json:"single"`
	// ShapeOwners is the deterministic shape→node assignment the ring
	// produced for the bench specs — the evidence the load actually
	// spread (the ring hash is frozen, so this never drifts).
	ShapeOwners map[string]string `json:"shape_owners"`
	// OwnerShapes counts shapes per node.
	OwnerShapes map[string]int `json:"owner_shapes"`
	// Migrated is how many queued jobs the drain exercise handed off;
	// DrainParityOK means every one of them re-executed on a survivor
	// bit-identically to a standalone run of its spec.
	Migrated      int  `json:"migrated"`
	DrainParityOK bool `json:"drain_parity_ok"`
	// ParityOK covers the throughput phases: every job result on both
	// topologies matched the standalone reference.
	ParityOK bool `json:"parity_ok"`
}

// Speedup is cluster throughput over single-node throughput.
func (c *ClusterComparison) Speedup() float64 {
	if c.Single.ThroughputJobsPerSec <= 0 {
		return 0
	}
	return c.Cluster.ThroughputJobsPerSec / c.Single.ThroughputJobsPerSec
}

// startCluster boots n services behind real listeners and wires them
// into one cluster map. The caller must call stop (idempotent) —
// and must not reuse the cluster after it.
func startCluster(n int, cfg serve.Config) (cluster.Map, map[string]*serve.Service, func(), error) {
	m := cluster.Map{}
	services := make(map[string]*serve.Service, n)
	var servers []*httptest.Server
	stop := func() {
		for _, ts := range servers {
			ts.Close()
		}
		for _, svc := range services {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = svc.Shutdown(ctx)
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		svc, err := serve.NewService(cfg)
		if err != nil {
			stop()
			return m, nil, nil, err
		}
		ts := httptest.NewServer(svc.Handler())
		servers = append(servers, ts)
		name := fmt.Sprintf("n%d", i+1)
		services[name] = svc
		m.Nodes = append(m.Nodes, cluster.Node{Name: name, URL: ts.URL})
	}
	for name, svc := range services {
		if err := svc.SetCluster(name, m); err != nil {
			stop()
			return m, nil, nil, err
		}
	}
	return m, services, stop, nil
}

// runClusterLoad drives the routing client closed-loop, mirroring
// RunLoad's accounting (throughput over wall clock, client-observed
// latency percentiles, per-spec result map for the parity check).
func runClusterLoad(cc *client.ClusterClient, clients, jobsPerClient int, specs []JobSpec) (LoadResult, error) {
	type outcome struct {
		job     Job
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, clients*jobsPerClient)
	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < jobsPerClient; j++ {
				idx := c*jobsPerClient + j
				spec := specs[idx%len(specs)]
				var o outcome
				t0 := time.Now()
				var job Job
				job, o.err = cc.Submit(ctx, spec)
				if o.err == nil {
					o.job, o.err = cc.Await(ctx, job.ID)
				}
				o.latency = time.Since(t0)
				outcomes[idx] = o
				if o.err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := LoadResult{ElapsedNs: elapsed.Nanoseconds(), BySpec: make(map[string]ScenarioResult)}
	var latencies []time.Duration
	for _, o := range outcomes {
		if o.err != nil {
			return out, o.err
		}
		out.Jobs++
		latencies = append(latencies, o.latency)
		if o.job.Status != serve.StatusDone {
			out.Failed++
			continue
		}
		key := o.job.Spec.Name()
		norm := *o.job.Result
		norm.Name = ""
		norm.ElapsedNs = 0
		if prev, ok := out.BySpec[key]; ok {
			if prev != norm {
				return out, fmt.Errorf("loadgen: spec %s returned diverging results across the cluster: %+v vs %+v", key, prev, norm)
			}
		} else {
			out.BySpec[key] = norm
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.ThroughputJobsPerSec = float64(out.Jobs-out.Failed) / secs
	}
	out.LatencyP50Ns = percentile(latencies, 50).Nanoseconds()
	out.LatencyP99Ns = percentile(latencies, 99).Nanoseconds()
	return out, nil
}

// RunClusterComparison measures the same closed-loop load against an
// n-node cluster and a single node of identical per-node
// configuration, verifies both against standalone scenario runs,
// then runs the drain-migration exercise on a fresh cluster. With
// WorkersPerNode=1 the single-node run is strictly serial, so the
// speedup isolates what sharding buys — the cluster's extra cores do
// the work, the ring only points at them.
func RunClusterComparison(cfg ClusterLoadConfig) (ClusterComparison, error) {
	var cmp ClusterComparison
	if cfg.Nodes < 2 || cfg.Clients < 1 || cfg.JobsPerClient < 1 || len(cfg.Specs) == 0 {
		return cmp, fmt.Errorf("loadgen: cluster config needs ≥2 nodes, clients, jobs per client and specs")
	}
	svcCfg := serve.Config{Workers: cfg.WorkersPerNode, Queue: cfg.Queue}

	// Standalone references first: the parity oracle, and the shared
	// plan-cache warmup every measured topology then inherits equally.
	wants := make(map[string]ScenarioResult, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		sc, err := workload.ScenarioFor(spec)
		if err != nil {
			return cmp, err
		}
		want, err := sc.Run(context.Background())
		if err != nil {
			return cmp, fmt.Errorf("standalone %s: %w", sc.Name, err)
		}
		want.Name = ""
		want.ElapsedNs = 0
		norm, err := spec.Normalized()
		if err != nil {
			return cmp, err
		}
		wants[norm.Name()] = want
	}
	checkParity := func(mode string, res LoadResult) error {
		for name, want := range wants {
			got, ok := res.BySpec[name]
			if !ok {
				return fmt.Errorf("loadgen: %s run never completed spec %s", mode, name)
			}
			if got != want {
				return fmt.Errorf("loadgen: %s result for %s diverged from standalone run: %+v vs %+v", mode, name, got, want)
			}
		}
		return nil
	}

	measure := func(nodes int) (LoadResult, error) {
		m, _, stop, err := startCluster(nodes, svcCfg)
		if err != nil {
			return LoadResult{}, err
		}
		defer stop()
		cc, err := client.NewCluster(m)
		if err != nil {
			return LoadResult{}, err
		}
		return runClusterLoad(cc, cfg.Clients, cfg.JobsPerClient, cfg.Specs)
	}

	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for r := 0; r < reps; r++ {
		clusterRes, err := measure(cfg.Nodes)
		if err != nil {
			return cmp, fmt.Errorf("cluster run: %w", err)
		}
		if err := checkParity("cluster", clusterRes); err != nil {
			return cmp, err
		}
		// The baseline is one node of the same build behind the same
		// routing client, so both measurements pay identical client
		// and HTTP costs and the delta is purely the sharding.
		singleRes, err := measure(1)
		if err != nil {
			return cmp, fmt.Errorf("single-node run: %w", err)
		}
		if err := checkParity("single", singleRes); err != nil {
			return cmp, err
		}
		if r == 0 || clusterRes.ThroughputJobsPerSec > cmp.Cluster.ThroughputJobsPerSec {
			cmp.Cluster = clusterRes
		}
		if r == 0 || singleRes.ThroughputJobsPerSec > cmp.Single.ThroughputJobsPerSec {
			cmp.Single = singleRes
		}
	}
	cmp.ParityOK = true

	// Record the deterministic shape→owner spread of the bench specs.
	ring := cluster.Map{Nodes: make([]cluster.Node, 0, cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		ring.Nodes = append(ring.Nodes, cluster.Node{Name: fmt.Sprintf("n%d", i+1), URL: "x"})
	}
	r := ring.Ring()
	cmp.ShapeOwners = make(map[string]string)
	cmp.OwnerShapes = make(map[string]int)
	for _, spec := range cfg.Specs {
		norm, _ := spec.Normalized()
		shape := norm.Shape()
		if _, seen := cmp.ShapeOwners[shape]; seen {
			continue
		}
		owner := r.Owner(shape)
		cmp.ShapeOwners[shape] = owner
		cmp.OwnerShapes[owner]++
	}

	migrated, drainOK, err := runDrainExercise(svcCfg, cfg)
	if err != nil {
		return cmp, err
	}
	cmp.Migrated, cmp.DrainParityOK = migrated, drainOK
	return cmp, nil
}

// runDrainExercise queues a slow single-shape backlog on a fresh
// cluster, drains the owning node while the backlog is still queued,
// and verifies every migrated job completed on a survivor with a
// result bit-identical to a standalone run of its spec.
func runDrainExercise(svcCfg serve.Config, cfg ClusterLoadConfig) (int, bool, error) {
	backlog := cfg.DrainBacklog
	if backlog < 1 {
		backlog = 8
	}
	m, _, stop, err := startCluster(cfg.Nodes, svcCfg)
	if err != nil {
		return 0, false, err
	}
	defer stop()
	cc, err := client.NewCluster(m)
	if err != nil {
		return 0, false, err
	}
	ctx := context.Background()
	// One shape, one owner, ~hundreds of ms per job against a single
	// worker: the backlog is still queued when the drain lands.
	slow := JobSpec{Kind: serve.KindSweep, N: 8, Trials: 30}
	var ids []string
	for i := 0; i < backlog; i++ {
		spec := slow
		spec.Seed = int64(i + 1)
		job, err := cc.Submit(ctx, spec)
		if err != nil {
			return 0, false, err
		}
		ids = append(ids, job.ID)
	}
	owner, _, _ := cluster.SplitID(ids[0])
	migrated, err := cc.Drain(ctx, owner)
	if err != nil {
		return 0, false, err
	}
	if len(migrated) == 0 {
		return 0, false, fmt.Errorf("loadgen: drain exercise migrated nothing — the backlog drained before the drain request landed")
	}
	// The standalone reference for the one slow shape, computed once.
	norm, err := slow.Normalized()
	if err != nil {
		return 0, false, err
	}
	for _, mj := range migrated {
		node, _, _ := cluster.SplitID(mj.To)
		if node == owner {
			return 0, false, fmt.Errorf("loadgen: migrated job %s resubmitted to the drained node", mj.To)
		}
		final, err := cc.Await(ctx, mj.To)
		if err != nil {
			return 0, false, err
		}
		if final.Status != serve.StatusDone || final.Result == nil {
			return 0, false, fmt.Errorf("loadgen: migrated job %s ended %s (%s)", mj.To, final.Status, final.Error)
		}
		ref := norm
		ref.Seed = final.Spec.Seed
		sc, err := workload.ScenarioFor(ref)
		if err != nil {
			return 0, false, err
		}
		want, err := sc.Run(ctx)
		if err != nil {
			return 0, false, err
		}
		if final.Result.UnitRoutes != want.UnitRoutes || final.Result.Conflicts != want.Conflicts || final.Result.OK != want.OK {
			return len(migrated), false, fmt.Errorf("loadgen: migrated job %s diverged from standalone run: %+v vs %+v", mj.To, final.Result, want)
		}
	}
	return len(migrated), true, nil
}

// ClusterBenchRecord is the schema of BENCH_cluster.json: the same
// closed-loop load against an n-node cluster vs one node, with
// parity asserted on both topologies and on every drain-migrated
// job before any timing is reported.
type ClusterBenchRecord struct {
	Benchmark      string `json:"benchmark"`
	API            string `json:"api"`
	Timestamp      string `json:"timestamp"`
	GoMaxProcs     int    `json:"gomaxprocs"`
	Nodes          int    `json:"nodes"`
	WorkersPerNode int    `json:"workers_per_node"`
	Queue          int    `json:"queue"`
	Clients        int    `json:"clients"`
	JobsPerClient  int    `json:"jobs_per_client"`
	Specs          int    `json:"specs"`
	Shapes         int    `json:"shapes"`
	Reps           int    `json:"reps"`

	ClusterJobs       int     `json:"cluster_jobs"`
	ClusterNs         int64   `json:"cluster_ns"`
	ClusterThroughput float64 `json:"cluster_jobs_per_sec"`
	ClusterP50Ns      int64   `json:"cluster_latency_p50_ns"`
	ClusterP99Ns      int64   `json:"cluster_latency_p99_ns"`
	SingleJobs        int     `json:"single_jobs"`
	SingleNs          int64   `json:"single_ns"`
	SingleThroughput  float64 `json:"single_jobs_per_sec"`
	SingleP50Ns       int64   `json:"single_latency_p50_ns"`
	SingleP99Ns       int64   `json:"single_latency_p99_ns"`

	// Speedup is the headline: cluster over single-node throughput,
	// gated at ≥1.8x on 3 nodes by CI's cluster job.
	Speedup float64 `json:"speedup_cluster_vs_single"`
	// ShapeOwners records the frozen ring's shape→node assignment for
	// the bench specs; OwnerShapes the per-node shape counts.
	ShapeOwners map[string]string `json:"shape_owners"`
	OwnerShapes map[string]int    `json:"owner_shapes"`

	Migrated      int  `json:"migrated"`
	DrainParityOK bool `json:"drain_parity_ok"`
	ParityOK      bool `json:"parity_ok"`
}

// NewClusterBenchRecord folds a comparison into the record schema.
func NewClusterBenchRecord(cfg ClusterLoadConfig, cmp ClusterComparison, gomaxprocs int, timestamp string) ClusterBenchRecord {
	return ClusterBenchRecord{
		Benchmark:         "cluster-closed-loop-sharded-vs-single",
		API:               "v1-cluster-routing-client",
		Timestamp:         timestamp,
		GoMaxProcs:        gomaxprocs,
		Nodes:             cfg.Nodes,
		WorkersPerNode:    cfg.WorkersPerNode,
		Queue:             cfg.Queue,
		Clients:           cfg.Clients,
		JobsPerClient:     cfg.JobsPerClient,
		Specs:             len(cfg.Specs),
		Shapes:            len(cmp.ShapeOwners),
		Reps:              max(cfg.Reps, 1),
		ClusterJobs:       cmp.Cluster.Jobs,
		ClusterNs:         cmp.Cluster.ElapsedNs,
		ClusterThroughput: cmp.Cluster.ThroughputJobsPerSec,
		ClusterP50Ns:      cmp.Cluster.LatencyP50Ns,
		ClusterP99Ns:      cmp.Cluster.LatencyP99Ns,
		SingleJobs:        cmp.Single.Jobs,
		SingleNs:          cmp.Single.ElapsedNs,
		SingleThroughput:  cmp.Single.ThroughputJobsPerSec,
		SingleP50Ns:       cmp.Single.LatencyP50Ns,
		SingleP99Ns:       cmp.Single.LatencyP99Ns,
		Speedup:           cmp.Speedup(),
		ShapeOwners:       cmp.ShapeOwners,
		OwnerShapes:       cmp.OwnerShapes,
		Migrated:          cmp.Migrated,
		DrainParityOK:     cmp.DrainParityOK,
		ParityOK:          cmp.ParityOK,
	}
}

// WriteJSON writes the record as indented JSON.
func (r *ClusterBenchRecord) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// OwnerTable renders the shape→owner spread as "node:count" pairs,
// sorted by node — the one-line balance summary the experiment
// prints.
func (c *ClusterComparison) OwnerTable() string {
	nodes := make([]string, 0, len(c.OwnerShapes))
	for n := range c.OwnerShapes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	parts := make([]string, 0, len(nodes))
	for _, n := range nodes {
		parts = append(parts, fmt.Sprintf("%s:%d", n, c.OwnerShapes[n]))
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
