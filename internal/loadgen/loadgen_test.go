package loadgen

import (
	"net/http/httptest"
	"testing"

	"starmesh/internal/serve"
)

// testSpecs is a small mixed workload covering several kinds and
// both machine shapes.
func testSpecs() []JobSpec {
	return []JobSpec{
		{Kind: serve.KindSort, N: 4, Dist: "uniform", Seed: 7},
		{Kind: serve.KindSort, N: 4, Dist: "reversed", Seed: 7},
		{Kind: serve.KindShear, Rows: 8, Cols: 8, Dist: "uniform", Seed: 11},
		{Kind: serve.KindBroadcast, N: 4, Source: 1},
		{Kind: serve.KindSweep, N: 4},
		{Kind: serve.KindFaultRoute, N: 4, Faults: 2, Pairs: 8, Seed: 13},
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	svc, err := serve.NewService(serve.Config{Workers: 2, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	res, err := RunLoad(ts.URL, LoadConfig{
		Clients:       3,
		JobsPerClient: 4,
		Specs:         testSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 12 || res.Failed != 0 {
		t.Fatalf("load run incomplete: %+v", res)
	}
	if res.ThroughputJobsPerSec <= 0 || res.LatencyP50Ns <= 0 || res.LatencyP99Ns < res.LatencyP50Ns {
		t.Fatalf("load metrics inconsistent: %+v", res)
	}
	if len(res.BySpec) == 0 {
		t.Fatalf("no per-spec results recorded")
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	if _, err := RunLoad("http://127.0.0.1:0", LoadConfig{}); err == nil {
		t.Fatal("empty load config accepted")
	}
}

func TestRunComparisonParity(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run in -short mode")
	}
	// Two specs rely on normalization defaults (dist → uniform,
	// pairs → 1): parity keying must use the normalized form.
	specs := append(testSpecs(),
		JobSpec{Kind: serve.KindSort, N: 4, Seed: 3},
		JobSpec{Kind: serve.KindFaultRoute, N: 4, Faults: 1, Seed: 5},
	)
	cmp, err := RunComparison(
		serve.Config{Workers: 2, Queue: 16},
		LoadConfig{Clients: 2, JobsPerClient: 8, Specs: specs},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.ParityOK {
		t.Fatalf("parity failed: %+v", cmp)
	}
	if cmp.Pooled.Jobs != 16 || cmp.Unpooled.Jobs != 16 || cmp.Durable.Jobs != 16 {
		t.Fatalf("job counts wrong: %+v", cmp)
	}
	// The durable run really ran on the WAL: transitions were logged
	// (3 per job — submit, claim, finish — minus whatever the first
	// compaction absorbed).
	if cmp.DurableWALRecords == 0 {
		t.Fatalf("durable run logged no WAL records: %+v", cmp)
	}
	if cmp.PoolReuses == 0 {
		t.Fatalf("pooled run never reused a machine: builds %d, reuses %d", cmp.PoolBuilds, cmp.PoolReuses)
	}
	if cmp.UnpooledBuilds != 16 {
		t.Fatalf("unpooled run built %d machines, want one per job (16)", cmp.UnpooledBuilds)
	}
	rec := NewBenchRecord(serve.Config{Workers: 2},
		LoadConfig{Clients: 2, JobsPerClient: 8, Specs: specs}, cmp, 2, "test")
	if rec.PooledJobs != 16 || !rec.ParityOK || rec.Engine != "sequential" || !rec.Plans || rec.Queue != 64 {
		t.Fatalf("bench record malformed: %+v", rec)
	}
	if rec.DurableJobs != 16 || rec.DurableWALRecords == 0 {
		t.Fatalf("bench record missing the durable measurement: %+v", rec)
	}
	if rec.WALOverheadFrac != cmp.WALOverheadFrac() {
		t.Fatalf("wal overhead mismatch: record %v, comparison %v", rec.WALOverheadFrac, cmp.WALOverheadFrac())
	}
	if rec.API == "" {
		t.Fatalf("bench record missing the API marker: %+v", rec)
	}
}
