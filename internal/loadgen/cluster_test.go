package loadgen

import (
	"strings"
	"testing"

	"starmesh/internal/serve"
)

// A small end-to-end pass through the cluster harness: both
// topologies measured with parity against standalone runs, the shape
// spread recorded, and the drain exercise migrating a held backlog.
func TestRunClusterComparison(t *testing.T) {
	cfg := ClusterLoadConfig{
		Nodes:          3,
		WorkersPerNode: 1,
		Queue:          64,
		Clients:        3,
		JobsPerClient:  4,
		Specs: []JobSpec{
			{Kind: serve.KindSort, N: 5, Dist: "uniform", Seed: 1},
			{Kind: serve.KindFaultRoute, N: 6, Faults: 4, Pairs: 8, Seed: 2},
			{Kind: serve.KindShear, Rows: 16, Cols: 16, Dist: "reversed", Seed: 3},
			{Kind: serve.KindPermRoute, N: 5, Pattern: "random", Seed: 4},
		},
		DrainBacklog: 4,
	}
	cmp, err := RunClusterComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.ParityOK || !cmp.DrainParityOK {
		t.Fatalf("parity: load %t drain %t", cmp.ParityOK, cmp.DrainParityOK)
	}
	if cmp.Cluster.Jobs != 12 || cmp.Single.Jobs != 12 || cmp.Cluster.Failed != 0 || cmp.Single.Failed != 0 {
		t.Fatalf("job counts: %+v vs %+v", cmp.Cluster, cmp.Single)
	}
	if cmp.Migrated == 0 {
		t.Fatal("drain exercise migrated nothing")
	}
	// The ring's shape assignment is frozen, so the spread is a fixed
	// fact of this spec set: every shape has an owner and at least two
	// nodes participate.
	if len(cmp.ShapeOwners) != 4 {
		t.Fatalf("shape owners: %+v", cmp.ShapeOwners)
	}
	if len(cmp.OwnerShapes) < 2 {
		t.Fatalf("all shapes on one node: %+v", cmp.OwnerShapes)
	}
	if table := cmp.OwnerTable(); !strings.Contains(table, ":") {
		t.Fatalf("owner table %q", table)
	}
	if cmp.Speedup() <= 0 {
		t.Fatalf("speedup %f", cmp.Speedup())
	}

	rec := NewClusterBenchRecord(cfg, cmp, 4, "2026-01-01T00:00:00Z")
	if rec.Nodes != 3 || rec.Shapes != 4 || rec.Migrated != cmp.Migrated || !rec.DrainParityOK {
		t.Fatalf("record: %+v", rec)
	}
	path := t.TempDir() + "/BENCH_cluster.json"
	if err := rec.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunClusterComparisonRejectsBadConfig(t *testing.T) {
	if _, err := RunClusterComparison(ClusterLoadConfig{Nodes: 1, Clients: 1, JobsPerClient: 1}); err == nil {
		t.Fatal("config with one node should be rejected")
	}
}
