// The multi-tenant fairness harness behind BENCH_tenants.json: one
// hot tenant and several light tenants drive the same service
// closed-loop through per-tenant API keys, and the harness measures
// whether the deficit-round-robin scheduler actually delivered
// weight-proportional throughput and kept the light tenants' queue
// waits bounded while the hot tenant flooded the queue.
//
// Two phases, each against a fresh service:
//
//   - baseline: the light tenants run alone. Their queue-wait p99 is
//     the "solo" reference — what a light tenant experiences when no
//     one is hogging the queue.
//   - contended: the hot tenant joins with several times the client
//     count. Under a single FIFO its backlog would multiply every
//     light job's wait by the hot tenant's queue share; under WFQ a
//     light tenant's wait grows only by the service-share shift
//     (total weight / light weight), which the CI gate bounds at 2x.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"starmesh/client"
	"starmesh/internal/serve"
)

// TenantClass is one tenant's traffic shape in the fairness run.
type TenantClass struct {
	// Name and Key identify the tenant (Key is what the clients send
	// as X-API-Key).
	Name string `json:"name"`
	Key  string `json:"key"`
	// Weight is the tenant's fair-queueing weight.
	Weight int `json:"weight"`
	// Clients is how many concurrent closed-loop clients the tenant
	// runs.
	Clients int `json:"clients"`
}

// FairnessConfig shapes one fairness measurement.
type FairnessConfig struct {
	// Workers and Queue configure the service under test.
	Workers int
	Queue   int
	// Hot is the heavy tenant (contended phase only); Lights are the
	// background tenants present in both phases.
	Hot    TenantClass
	Lights []TenantClass
	// Spec is the job every client submits — one fixed spec, so every
	// job costs the same and throughput shares are comparable.
	Spec JobSpec
	// Phase is each phase's measurement window; jobs finishing within
	// the first Warmup of the window are discarded (queue fill-up
	// transient).
	Phase  time.Duration
	Warmup time.Duration
}

// TenantLoadResult is one tenant's view of one phase.
type TenantLoadResult struct {
	Tenant  string `json:"tenant"`
	Weight  int    `json:"weight"`
	Clients int    `json:"clients"`
	Jobs    int    `json:"jobs"`
	// Share is the tenant's fraction of the phase's completed jobs;
	// WantShare is its weight's fraction of the active total weight.
	Share     float64 `json:"share"`
	WantShare float64 `json:"want_share"`
	// Queue-wait percentiles from the jobs' own server-side WaitNs.
	QueueWaitP50Ns int64 `json:"queue_wait_p50_ns"`
	QueueWaitP99Ns int64 `json:"queue_wait_p99_ns"`
}

// PhaseResult is one phase's measurement.
type PhaseResult struct {
	ElapsedNs int64              `json:"elapsed_ns"`
	Jobs      int                `json:"jobs"`
	Tenants   []TenantLoadResult `json:"tenants"`
}

// FairnessResult is the two-phase fairness measurement.
type FairnessResult struct {
	Baseline  PhaseResult `json:"baseline"`
	Contended PhaseResult `json:"contended"`
	// BaselineLightP99Ns and ContendedLightP99Ns pool every light
	// tenant's queue-wait samples per phase; WaitRatio is their
	// quotient — the fairness headline the CI gate bounds.
	BaselineLightP99Ns  int64   `json:"baseline_light_p99_ns"`
	ContendedLightP99Ns int64   `json:"contended_light_p99_ns"`
	WaitRatio           float64 `json:"wait_ratio"`
	// MaxShareErr is the worst relative deviation of any tenant's
	// contended throughput share from its weight share.
	MaxShareErr float64 `json:"max_share_err"`
}

// RunFairness measures WFQ fairness: a baseline phase with the light
// tenants alone, then a contended phase with the hot tenant added.
// Each phase runs against a fresh in-process service so no backlog
// leaks across phases.
func RunFairness(cfg FairnessConfig) (FairnessResult, error) {
	var out FairnessResult
	if cfg.Hot.Clients < 1 || len(cfg.Lights) == 0 {
		return out, fmt.Errorf("loadgen: fairness config needs a hot tenant and light tenants")
	}
	if cfg.Phase <= 0 {
		cfg.Phase = 2 * time.Second
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Phase {
		return out, fmt.Errorf("loadgen: warmup %v must be within the phase %v", cfg.Warmup, cfg.Phase)
	}

	tenants := make([]serve.TenantConfig, 0, len(cfg.Lights)+1)
	for _, tc := range append([]TenantClass{cfg.Hot}, cfg.Lights...) {
		tenants = append(tenants, serve.TenantConfig{
			Name: tc.Name, Key: tc.Key, Weight: tc.Weight,
		})
	}
	svcCfg := serve.Config{Workers: cfg.Workers, Queue: cfg.Queue, Tenants: tenants}

	baseline, err := runPhase(svcCfg, cfg, cfg.Lights)
	if err != nil {
		return out, fmt.Errorf("baseline phase: %w", err)
	}
	contended, err := runPhase(svcCfg, cfg, append([]TenantClass{cfg.Hot}, cfg.Lights...))
	if err != nil {
		return out, fmt.Errorf("contended phase: %w", err)
	}
	out.Baseline = baseline
	out.Contended = contended

	lightNames := make(map[string]bool, len(cfg.Lights))
	for _, tc := range cfg.Lights {
		lightNames[tc.Name] = true
	}
	out.BaselineLightP99Ns = pooledLightP99(baseline, lightNames)
	out.ContendedLightP99Ns = pooledLightP99(contended, lightNames)
	if out.BaselineLightP99Ns > 0 {
		out.WaitRatio = float64(out.ContendedLightP99Ns) / float64(out.BaselineLightP99Ns)
	}
	for _, tr := range contended.Tenants {
		if tr.WantShare <= 0 {
			continue
		}
		err := tr.Share/tr.WantShare - 1
		if err < 0 {
			err = -err
		}
		if err > out.MaxShareErr {
			out.MaxShareErr = err
		}
	}
	return out, nil
}

// runPhase drives the given tenant classes against a fresh service
// for cfg.Phase and folds the per-job server-side queue waits into a
// per-tenant result.
func runPhase(svcCfg serve.Config, cfg FairnessConfig, classes []TenantClass) (PhaseResult, error) {
	svc, err := serve.NewService(svcCfg)
	if err != nil {
		return PhaseResult{}, err
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Drain()
	}()

	type sample struct {
		tenant string
		wait   time.Duration
	}
	var (
		mu      sync.Mutex
		samples []sample
		runErr  error
	)
	ctx := context.Background()
	start := time.Now()
	deadline := start.Add(cfg.Phase)
	warmUntil := start.Add(cfg.Warmup)
	var wg sync.WaitGroup
	for _, tc := range classes {
		for c := 0; c < tc.Clients; c++ {
			wg.Add(1)
			go func(tc TenantClass) {
				defer wg.Done()
				cl := client.New(ts.URL,
					client.WithAPIKey(tc.Key),
					client.WithMaxRetries(-1),
					client.WithSleep(func(ctx context.Context, _ time.Duration) error {
						time.Sleep(200 * time.Microsecond)
						return ctx.Err()
					}))
				for time.Now().Before(deadline) {
					job, err := runOneJob(ctx, cl, cfg.Spec)
					if err != nil {
						mu.Lock()
						if runErr == nil {
							runErr = fmt.Errorf("tenant %s: %w", tc.Name, err)
						}
						mu.Unlock()
						return
					}
					if time.Now().Before(warmUntil) {
						continue
					}
					mu.Lock()
					samples = append(samples, sample{tc.Name, time.Duration(job.WaitNs)})
					mu.Unlock()
				}
			}(tc)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return PhaseResult{}, runErr
	}

	totalWeight := 0
	for _, tc := range classes {
		totalWeight += tc.Weight
	}
	byTenant := make(map[string][]time.Duration, len(classes))
	for _, s := range samples {
		byTenant[s.tenant] = append(byTenant[s.tenant], s.wait)
	}
	res := PhaseResult{ElapsedNs: elapsed.Nanoseconds(), Jobs: len(samples)}
	for _, tc := range classes {
		waits := byTenant[tc.Name]
		tr := TenantLoadResult{
			Tenant: tc.Name, Weight: tc.Weight, Clients: tc.Clients,
			Jobs:           len(waits),
			WantShare:      float64(tc.Weight) / float64(totalWeight),
			QueueWaitP50Ns: percentile(waits, 50).Nanoseconds(),
			QueueWaitP99Ns: percentile(waits, 99).Nanoseconds(),
		}
		if res.Jobs > 0 {
			tr.Share = float64(tr.Jobs) / float64(res.Jobs)
		}
		res.Tenants = append(res.Tenants, tr)
	}
	sort.Slice(res.Tenants, func(i, j int) bool { return res.Tenants[i].Tenant < res.Tenants[j].Tenant })
	return res, nil
}

// pooledLightP99 is the p99 queue wait across every light tenant's
// samples in one phase, weighted by sample count (pooling keeps the
// estimate stable where a single light tenant's tail would be noisy).
func pooledLightP99(ph PhaseResult, lights map[string]bool) int64 {
	// Reconstruct an approximate pooled p99 from the per-tenant p99s
	// is lossy; instead take the max per-tenant p99 among lights — the
	// worst light tenant is what the fairness promise protects.
	var worst int64
	for _, tr := range ph.Tenants {
		if lights[tr.Tenant] && tr.QueueWaitP99Ns > worst {
			worst = tr.QueueWaitP99Ns
		}
	}
	return worst
}

// TenantBenchRecord is the schema of BENCH_tenants.json: the
// two-phase fairness measurement plus the gate inputs CI enforces
// (light-tenant p99 wait ratio and weight-share fidelity).
type TenantBenchRecord struct {
	Benchmark  string `json:"benchmark"`
	API        string `json:"api"`
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Queue      int    `json:"queue"`

	Hot    TenantClass   `json:"hot"`
	Lights []TenantClass `json:"lights"`
	Spec   string        `json:"spec"`

	Result FairnessResult `json:"result"`

	// The gate verdicts as evaluated by the experiment (recorded so
	// the uploaded artifact is self-describing).
	WaitRatioLimit  float64 `json:"wait_ratio_limit"`
	ShareErrLimit   float64 `json:"share_err_limit"`
	GatesEnforced   bool    `json:"gates_enforced"`
	WaitRatioOK     bool    `json:"wait_ratio_ok"`
	ShareFairnessOK bool    `json:"share_fairness_ok"`
}

// WriteJSON writes the record as indented JSON.
func (r *TenantBenchRecord) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
