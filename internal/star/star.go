// Package star implements the n-star interconnection network S_n of
// Akers, Harel and Krishnamurthy: the Cayley graph of the symmetric
// group on n symbols whose generators exchange the symbol at the
// front position with the symbol at position i.
//
// Following the paper's notation a node is written (a_{n-1} … a_1
// a_0); the front is position n-1 and a node is connected to the n-1
// nodes obtained by swapping positions n-1 and i for 0 ≤ i ≤ n-2.
// Nodes are identified with their permutation's lexicographic rank
// (see package perm), which gives the dense vertex ids used by the
// graph algorithms in package graphalg.
//
// The package provides exact shortest-path distances via the cycle
// formula, optimal greedy routing, the diameter formula ⌊3(n-1)/2⌋,
// and single-source broadcast algorithms, all of which back the §2
// property claims reproduced in experiment E12/E13.
package star

import (
	"fmt"

	"starmesh/internal/perm"
)

// Graph is the star graph S_n as a graphalg.Graph. Vertex ids are
// permutation ranks in [0, n!).
type Graph struct {
	n int
}

// New returns S_n. n must be at least 2 (S_1 is a single vertex and
// allowed too, but has no edges).
func New(n int) *Graph {
	if n < 1 || n > perm.MaxRankN {
		panic(fmt.Sprintf("star: unsupported n=%d", n))
	}
	return &Graph{n: n}
}

// N returns the degree parameter n (the number of symbols).
func (g *Graph) N() int { return g.n }

// Order returns n!.
func (g *Graph) Order() int { return int(perm.Factorial(g.n)) }

// Degree returns n-1, the degree of every vertex.
func (g *Graph) Degree() int { return g.n - 1 }

// Front returns the index of the front position, n-1.
func (g *Graph) Front() int { return g.n - 1 }

// Node returns the permutation with the given vertex id.
func (g *Graph) Node(id int) perm.Perm { return perm.Unrank(g.n, int64(id)) }

// ID returns the vertex id of a permutation.
func (g *Graph) ID(p perm.Perm) int { return int(p.Rank()) }

// ApplyGenerator returns p with positions n-1 and i exchanged; this
// is the paper's π^(i) neighbor (0 ≤ i ≤ n-2).
func ApplyGenerator(p perm.Perm, i int) perm.Perm {
	return p.SwapPositions(len(p)-1, i)
}

// AppendNeighbors implements graphalg.Graph.
func (g *Graph) AppendNeighbors(buf []int, v int) []int {
	p := perm.Unrank(g.n, int64(v))
	front := g.n - 1
	for i := 0; i < front; i++ {
		p[front], p[i] = p[i], p[front]
		buf = append(buf, int(p.Rank()))
		p[front], p[i] = p[i], p[front]
	}
	return buf
}

// NeighborPerms returns the n-1 neighbor permutations of p.
func NeighborPerms(p perm.Perm) []perm.Perm {
	front := len(p) - 1
	out := make([]perm.Perm, 0, front)
	for i := 0; i < front; i++ {
		out = append(out, ApplyGenerator(p, i))
	}
	return out
}

// IsEdge reports whether p and q differ by exactly one generator.
func IsEdge(p, q perm.Perm) bool {
	if len(p) != len(q) {
		return false
	}
	front := len(p) - 1
	if p[front] == q[front] {
		return false
	}
	diff := -1
	for i := 0; i < front; i++ {
		if p[i] != q[i] {
			if diff != -1 {
				return false
			}
			diff = i
		}
	}
	return diff != -1 && p[diff] == q[front] && q[diff] == p[front]
}

// DiameterFormula returns ⌊3(n-1)/2⌋, the exact diameter of S_n
// ([AKER87], §2 property 2).
func DiameterFormula(n int) int { return 3 * (n - 1) / 2 }

// DistanceToIdentity returns the exact shortest-path distance from
// the node rho to the identity node, using the classic cycle formula:
// with m = number of displaced symbols and c = number of nontrivial
// cycles of rho, the distance is m+c when the front symbol is at
// home and m+c-2 otherwise.
func DistanceToIdentity(rho perm.Perm) int {
	m := rho.NumNonFixed()
	if m == 0 {
		return 0
	}
	c := len(rho.Cycles())
	front := len(rho) - 1
	if rho[front] == front {
		return m + c
	}
	return m + c - 2
}

// Distance returns the exact shortest-path distance between two
// nodes of S_n. Star graphs are Cayley graphs, so
// d(p,q) = d(id, p⁻¹∘q).
func Distance(p, q perm.Perm) int {
	return DistanceToIdentity(p.Inverse().Compose(q))
}

// Route returns a shortest path from p to q as the sequence of nodes
// visited, including both endpoints. The greedy rule is the classic
// optimal one: if the front symbol is not at its target position,
// send it home; otherwise fetch any displaced symbol to the front.
func Route(p, q perm.Perm) []perm.Perm {
	if len(p) != len(q) {
		panic("star: route length mismatch")
	}
	front := len(p) - 1
	cur := p.Clone()
	qinv := q.Inverse()
	path := []perm.Perm{cur.Clone()}
	for !cur.Equal(q) {
		s := cur[front]
		target := qinv[s] // where symbol s belongs under q
		if target != front {
			cur[front], cur[target] = cur[target], cur[front]
		} else {
			// Front symbol is already correct; fetch the lowest
			// displaced symbol.
			i := 0
			for cur[i] == q[i] {
				i++
			}
			cur[front], cur[i] = cur[i], cur[front]
		}
		path = append(path, cur.Clone())
	}
	return path
}

// RouteGenerators returns the generator indices of a shortest path
// from p to q (len = Distance(p,q)).
func RouteGenerators(p, q perm.Perm) []int {
	path := Route(p, q)
	gens := make([]int, 0, len(path)-1)
	front := len(p) - 1
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		g := -1
		for j := 0; j < front; j++ {
			if a[j] != b[j] {
				g = j
				break
			}
		}
		gens = append(gens, g)
	}
	return gens
}
