package star

import (
	"fmt"

	"starmesh/internal/perm"
)

// Sub-star decomposition ([AKER87], used throughout §2): fixing the
// symbol at any non-front position i partitions S_n into n
// vertex-disjoint copies of S_{n-1}. This hierarchical structure is
// what gives the star graph its recursive algorithms (broadcast,
// routing) and its fault tolerance; the tests verify the isomorphism
// explicitly.

// SubStarIndex returns which sub-star (0..n-1) the node belongs to
// when decomposing by the symbol at position pos (0 ≤ pos ≤ n-2).
func SubStarIndex(p perm.Perm, pos int) int {
	if pos < 0 || pos >= len(p)-1 {
		panic(fmt.Sprintf("star: decomposition position %d out of range", pos))
	}
	return p[pos]
}

// SubStarMembers returns the vertex ids of the sub-star {π : π[pos] =
// symbol} in increasing order. The result has (n-1)! entries.
func (g *Graph) SubStarMembers(pos, symbol int) []int {
	if pos < 0 || pos >= g.n-1 {
		panic("star: bad decomposition position")
	}
	if symbol < 0 || symbol >= g.n {
		panic("star: bad symbol")
	}
	var out []int
	perm.All(g.n, func(p perm.Perm) bool {
		if p[pos] == symbol {
			out = append(out, int(p.Rank()))
		}
		return true
	})
	return out
}

// SubStarProject maps a node of the sub-star {π : π[pos] = symbol}
// to the corresponding node of S_{n-1}: delete position pos and
// relabel the remaining symbols order-preservingly to 0..n-2. The
// front stays the front, and generators g_i of the sub-star
// correspond to generators of S_{n-1}, so this is a graph
// isomorphism onto S_{n-1} (verified in tests).
func SubStarProject(p perm.Perm, pos int) perm.Perm {
	n := len(p)
	symbol := p[pos]
	q := make(perm.Perm, 0, n-1)
	for i, s := range p {
		if i == pos {
			continue
		}
		if s > symbol {
			q = append(q, s-1)
		} else {
			q = append(q, s)
		}
	}
	return q
}

// SubStarLift inverts SubStarProject: given a node q of S_{n-1},
// re-insert the fixed symbol at position pos.
func SubStarLift(q perm.Perm, pos, symbol int) perm.Perm {
	n := len(q) + 1
	p := make(perm.Perm, 0, n)
	for i := 0; i < n; i++ {
		if i == pos {
			p = append(p, symbol)
			continue
		}
		j := i
		if i > pos {
			j = i - 1
		}
		s := q[j]
		if s >= symbol {
			s++
		}
		p = append(p, s)
	}
	return p
}

// CrossEdges returns the number of edges of S_n joining different
// sub-stars of the position-pos decomposition. Each node has exactly
// one cross edge (generator g_pos changes the symbol at pos), so the
// count is n!/2.
func (g *Graph) CrossEdges(pos int) int {
	count := 0
	perm.All(g.n, func(p perm.Perm) bool {
		q := ApplyGenerator(p, pos)
		if q[pos] != p[pos] && q.Rank() > p.Rank() {
			count++
		}
		return true
	})
	return count
}
