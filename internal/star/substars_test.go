package star

import (
	"math/rand"
	"testing"

	"starmesh/internal/perm"
)

func TestSubStarPartition(t *testing.T) {
	g := New(5)
	for pos := 0; pos < 4; pos++ {
		seen := make([]bool, g.Order())
		for symbol := 0; symbol < 5; symbol++ {
			members := g.SubStarMembers(pos, symbol)
			if int64(len(members)) != perm.Factorial(4) {
				t.Fatalf("pos=%d symbol=%d: %d members", pos, symbol, len(members))
			}
			for _, id := range members {
				if seen[id] {
					t.Fatalf("node %d in two sub-stars", id)
				}
				seen[id] = true
			}
		}
		for id, s := range seen {
			if !s {
				t.Fatalf("node %d in no sub-star", id)
			}
		}
	}
}

func TestSubStarProjectLiftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(7)
		p := perm.Random(n, rng)
		pos := rng.Intn(n - 1)
		symbol := p[pos]
		q := SubStarProject(p, pos)
		if !q.Valid() || q.N() != n-1 {
			t.Fatalf("projection invalid: %v", q)
		}
		back := SubStarLift(q, pos, symbol)
		if !back.Equal(p) {
			t.Fatalf("lift(project) != id: %v -> %v -> %v", p, q, back)
		}
	}
}

func TestSubStarIsIsomorphicToSmallerStar(t *testing.T) {
	// The projection must carry sub-star edges to S_{n-1} edges and
	// non-edges to non-edges (checked over all member pairs at n=4).
	g := New(4)
	for pos := 0; pos < 3; pos++ {
		for symbol := 0; symbol < 4; symbol++ {
			members := g.SubStarMembers(pos, symbol)
			for _, a := range members {
				pa := g.Node(a)
				qa := SubStarProject(pa, pos)
				for _, b := range members {
					if b <= a {
						continue
					}
					pb := g.Node(b)
					qb := SubStarProject(pb, pos)
					if IsEdge(pa, pb) != IsEdge(qa, qb) {
						t.Fatalf("projection not an isomorphism: %v-%v vs %v-%v",
							pa, pb, qa, qb)
					}
				}
			}
		}
	}
}

func TestSubStarIndex(t *testing.T) {
	p := perm.MustNew([]int{2, 0, 3, 1})
	if SubStarIndex(p, 0) != 2 || SubStarIndex(p, 2) != 3 {
		t.Fatalf("SubStarIndex wrong")
	}
}

func TestSubStarPanics(t *testing.T) {
	g := New(4)
	cases := []func(){
		func() { SubStarIndex(perm.Identity(4), 3) },
		func() { SubStarIndex(perm.Identity(4), -1) },
		func() { g.SubStarMembers(3, 0) },
		func() { g.SubStarMembers(0, 4) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCrossEdges(t *testing.T) {
	// Every node has exactly one generator that changes the symbol
	// at pos, so cross edges = n!/2.
	for n := 3; n <= 5; n++ {
		g := New(n)
		for pos := 0; pos < n-1; pos++ {
			want := int(perm.Factorial(n)) / 2
			if got := g.CrossEdges(pos); got != want {
				t.Fatalf("n=%d pos=%d: cross edges %d, want %d", n, pos, got, want)
			}
		}
	}
}

func TestSurfaceAreasMatchBFS(t *testing.T) {
	for n := 2; n <= 6; n++ {
		formula := SurfaceAreas(n)
		bfs := SurfaceAreasBFS(n)
		if len(formula) < len(bfs) {
			t.Fatalf("n=%d: histogram lengths %d vs %d", n, len(formula), len(bfs))
		}
		for d := range formula {
			var want int64
			if d < len(bfs) {
				want = bfs[d]
			}
			if formula[d] != want {
				t.Fatalf("n=%d d=%d: formula %d, BFS %d", n, d, formula[d], want)
			}
		}
	}
}

func TestSurfaceAreasSumToOrder(t *testing.T) {
	for n := 2; n <= 8; n++ {
		var sum int64
		for _, c := range SurfaceAreas(n) {
			sum += c
		}
		if sum != perm.Factorial(n) {
			t.Fatalf("n=%d: histogram sums to %d", n, sum)
		}
	}
}

func TestMeanDistanceMatchesBFSAverage(t *testing.T) {
	for n := 3; n <= 6; n++ {
		g := New(n)
		want := 0.0
		// BFS average from the identity node.
		id := int(perm.Identity(n).Rank())
		want = avgFromBFS(g, id)
		got := MeanDistance(n)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("n=%d: mean %v vs BFS %v", n, got, want)
		}
	}
}

func avgFromBFS(g *Graph, src int) float64 {
	sum, cnt := 0, 0
	for _, d := range bfsDistances(g, src) {
		sum += d
		cnt++
	}
	return float64(sum) / float64(cnt-1)
}

func bfsDistances(g *Graph, src int) []int {
	dist := make([]int, g.Order())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	var buf []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		buf = g.AppendNeighbors(buf[:0], v)
		for _, w := range buf {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func BenchmarkSurfaceAreasN8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SurfaceAreas(8)
	}
}

func TestRecursiveBroadcastCoversAndBounded(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := New(n)
		rounds := g.RecursiveBroadcast(0)
		lo := BroadcastLowerBound(n)
		if rounds < lo {
			t.Fatalf("n=%d: %d rounds below information bound %d", n, rounds, lo)
		}
		if n >= 3 && float64(rounds) > BroadcastUpperBound(n) {
			t.Fatalf("n=%d: %d rounds above paper bound %.1f", n, rounds, BroadcastUpperBound(n))
		}
	}
}

func TestRecursiveBroadcastArbitrarySource(t *testing.T) {
	g := New(5)
	for _, src := range []int{0, 17, 119} {
		rounds := g.RecursiveBroadcast(src)
		if rounds < BroadcastLowerBound(5) {
			t.Fatalf("src=%d: rounds %d too small", src, rounds)
		}
	}
}
