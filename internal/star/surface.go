package star

import (
	"starmesh/internal/graphalg"
	"starmesh/internal/perm"
)

// Surface areas and distance statistics of S_n. The distance
// distribution ("how many nodes sit at distance d from a fixed
// node") determines average routing cost and backs the §2/intro
// claim that the star graph's diameter and mean distance grow
// sub-logarithmically in the node count N = n!.

// SurfaceAreas returns hist[d] = |{π : dist(π, id) = d}| computed
// with the closed-form distance (no BFS), so it is feasible up to
// n ≈ 10 (3.6M nodes).
func SurfaceAreas(n int) []int64 {
	hist := make([]int64, DiameterFormula(n)+1)
	perm.All(n, func(p perm.Perm) bool {
		hist[DistanceToIdentity(p)]++
		return true
	})
	return hist
}

// SurfaceAreasBFS computes the same histogram by breadth-first
// search; used to cross-check the formula in tests.
func SurfaceAreasBFS(n int) []int64 {
	g := New(n)
	h := graphalg.DistanceHistogram(g, int(perm.Identity(n).Rank()))
	out := make([]int64, len(h))
	for i, c := range h {
		out[i] = int64(c)
	}
	return out
}

// MeanDistance returns the average distance from a node to all
// others, from the closed-form distribution.
func MeanDistance(n int) float64 {
	hist := SurfaceAreas(n)
	var sum, count int64
	for d, c := range hist {
		sum += int64(d) * c
		count += c
	}
	if count <= 1 {
		return 0
	}
	return float64(sum) / float64(count-1)
}
