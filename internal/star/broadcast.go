package star

import (
	"math"

	"starmesh/internal/perm"
)

// This file implements single-source broadcast on S_n, reproducing
// the §2 claim (property 3, from [AKER87]) that broadcasting
// completes in at most 3(n·log n − …) unit routes. We provide two
// concrete algorithms whose measured round counts are reported by
// experiment E13:
//
//   - GreedyBroadcast: SIMD-B model. In each unit route every
//     informed node may transmit to one neighbor; the greedy
//     schedule informs a distinct uninformed neighbor when one
//     exists. Rounds are bounded below by ceil(log2 n!) ≈ n·log n
//     (the informed set can at most double) and the measured value
//     sits between that bound and BroadcastUpperBound.
//
//   - SweepBroadcast: SIMD-A model. In round t every informed node
//     transmits along the same generator g_{σ(t)}, where σ cycles
//     through 1..n-1 repeatedly; the informed set is the set of
//     prefix subproducts, which reaches all of S_n after a finite
//     number of sweeps.

// BroadcastLowerBound returns ceil(log2 n!), the information-
// theoretic minimum number of single-port rounds.
func BroadcastLowerBound(n int) int {
	lg := 0.0
	for i := 2; i <= n; i++ {
		lg += math.Log2(float64(i))
	}
	return int(math.Ceil(lg - 1e-9))
}

// BroadcastUpperBound returns 3·n·log2(n), the paper's §2 bound on
// broadcast unit routes (stated as "at most 3(n log n − 3/2)").
func BroadcastUpperBound(n int) float64 {
	return 3 * (float64(n)*math.Log2(float64(n)) - 1.5)
}

// GreedyBroadcast simulates the SIMD-B greedy broadcast from the
// given source vertex id and returns the number of unit routes until
// every node is informed.
func (g *Graph) GreedyBroadcast(source int) int {
	order := g.Order()
	// informedAt[v] = round in which v learned the message, or -1.
	// A node may transmit in round r only if informedAt[v] < r, so
	// nodes informed within the current round stay silent until the
	// next one; marking targets immediately also prevents two
	// senders from wasting a round on the same target.
	informedAt := make([]int, order)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[source] = 0
	count := 1
	round := 0
	var buf []int
	for count < order {
		round++
		progressed := false
		for v := 0; v < order; v++ {
			if informedAt[v] < 0 || informedAt[v] >= round {
				continue
			}
			buf = g.AppendNeighbors(buf[:0], v)
			for _, w := range buf {
				if informedAt[w] == -1 {
					informedAt[w] = round
					count++
					progressed = true
					break // one transmission per node per round
				}
			}
		}
		if !progressed {
			panic("star: broadcast stalled") // impossible on a connected graph
		}
	}
	return round
}

// SweepBroadcast simulates the SIMD-A broadcast in which round t
// uses generator (t mod (n-1)) for all informed nodes, starting from
// the identity node. It returns the number of unit routes until all
// n! nodes are informed.
func SweepBroadcast(n int) int {
	order := int(perm.Factorial(n))
	informed := make([]bool, order)
	id := perm.Identity(n)
	informed[id.Rank()] = true
	count := 1
	rounds := 0
	front := n - 1
	for count < order {
		gen := rounds % (n - 1)
		rounds++
		// Apply the generator to every informed node; union.
		var newly []int64
		for v := 0; v < order; v++ {
			if !informed[v] {
				continue
			}
			p := perm.Unrank(n, int64(v))
			p[front], p[gen] = p[gen], p[front]
			r := p.Rank()
			if !informed[r] {
				newly = append(newly, r)
			}
		}
		for _, r := range newly {
			if !informed[r] {
				informed[r] = true
				count++
			}
		}
		if rounds > 10*order {
			panic("star: sweep broadcast did not converge")
		}
	}
	return rounds
}
