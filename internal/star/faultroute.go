package star

import (
	"starmesh/internal/graphalg"
	"starmesh/internal/perm"
)

// Fault-tolerant routing. The star graph is (n-1)-connected (§2
// property 4), so any set of at most n-2 faulty nodes leaves every
// healthy pair connected; RouteAvoiding finds a shortest healthy
// path.

// RouteAvoiding returns a shortest path from p to q that avoids the
// faulty vertex ids, or nil if none exists (only possible when
// |faulty| ≥ n-1 or an endpoint is faulty). The returned path
// includes both endpoints.
func (g *Graph) RouteAvoiding(p, q perm.Perm, faulty map[int]bool) []perm.Perm {
	src, dst := g.ID(p), g.ID(q)
	if faulty[src] || faulty[dst] {
		return nil
	}
	if src == dst {
		return []perm.Perm{p.Clone()}
	}
	holes := make([]int, 0, len(faulty))
	for h := range faulty {
		holes = append(holes, h)
	}
	view := graphalg.NewExclude(g, holes...)
	ids := graphalg.BFSPath(view, src, dst)
	if ids == nil {
		return nil
	}
	out := make([]perm.Perm, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id)
	}
	return out
}

// MaxSafeFaults returns n-2, the largest number of arbitrary node
// faults S_n is guaranteed to survive (connectivity n-1).
func (g *Graph) MaxSafeFaults() int { return g.n - 2 }
