package star

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starmesh/internal/graphalg"
	"starmesh/internal/perm"
)

func TestOrderDegree(t *testing.T) {
	for n := 2; n <= 7; n++ {
		g := New(n)
		if g.Order() != int(perm.Factorial(n)) {
			t.Fatalf("n=%d order=%d", n, g.Order())
		}
		ok, d := graphalg.IsRegular(g)
		if !ok || d != n-1 {
			t.Fatalf("n=%d not (n-1)-regular: %v %d", n, ok, d)
		}
	}
}

func TestNeighborsAreEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := perm.Random(5, rng)
		for _, q := range NeighborPerms(p) {
			if !IsEdge(p, q) {
				t.Fatalf("neighbor not an edge: %v %v", p, q)
			}
			if !IsEdge(q, p) {
				t.Fatalf("edge not symmetric: %v %v", p, q)
			}
			if Distance(p, q) != 1 {
				t.Fatalf("neighbor distance != 1")
			}
		}
		if IsEdge(p, p) {
			t.Fatalf("self loop")
		}
	}
}

func TestIsEdgeNegative(t *testing.T) {
	p := perm.MustNew([]int{0, 1, 2, 3})
	// Swapping two non-front positions is NOT a star edge.
	q := p.SwapPositions(0, 1)
	if IsEdge(p, q) {
		t.Fatalf("non-generator swap reported as edge")
	}
	if IsEdge(p, perm.MustNew([]int{0, 1, 2})) {
		t.Fatalf("length mismatch reported as edge")
	}
	// Three-position rotation is not an edge.
	r := perm.MustNew([]int{1, 2, 0, 3})
	if IsEdge(p, r) {
		t.Fatalf("rotation reported as edge")
	}
}

func TestS4MatchesPaperFigure2Structure(t *testing.T) {
	// Figure 2 shows S_4: 24 nodes, 3-regular, girth 6, diameter 4.
	g := New(4)
	if g.Order() != 24 {
		t.Fatalf("S4 order")
	}
	if graphalg.NumEdges(g) != 36 {
		t.Fatalf("S4 edges = %d, want 36", graphalg.NumEdges(g))
	}
	if d := graphalg.Diameter(g); d != 4 {
		t.Fatalf("S4 diameter = %d, want 4", d)
	}
	// Node 0123 (paper's left hexagon) has the neighbors shown in
	// Figure 2: 1023, 2103, 3120 — wait, generators swap front with
	// each position: (0 1 2 3) -> (3 1 2 0), (2 1 0 3)... verify via
	// permutation arithmetic instead: each neighbor differs in the
	// front and exactly one other position.
	p := perm.MustNew([]int{3, 2, 1, 0}) // displays as (0 1 2 3)
	ns := NeighborPerms(p)
	if len(ns) != 3 {
		t.Fatalf("S4 degree")
	}
	want := map[string]bool{
		"(3 1 2 0)": true, // swap front with position 0
		"(2 1 0 3)": true, // swap front with position 1
		"(1 0 2 3)": true, // swap front with position 2
	}
	for _, q := range ns {
		if !want[q.String()] {
			t.Fatalf("unexpected neighbor %v of %v", q, p)
		}
	}
}

func TestDiameterFormulaMatchesBFS(t *testing.T) {
	for n := 2; n <= 7; n++ {
		g := New(n)
		got := graphalg.DiameterFromVertex(g) // vertex-transitive
		if got != DiameterFormula(n) {
			t.Fatalf("n=%d BFS diameter %d, formula %d", n, got, DiameterFormula(n))
		}
	}
}

func TestVertexTransitiveEvidence(t *testing.T) {
	// Eccentricity must be identical from several vertices.
	g := New(5)
	e0 := graphalg.Eccentricity(g, 0)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		v := rng.Intn(g.Order())
		if graphalg.Eccentricity(g, v) != e0 {
			t.Fatalf("eccentricity differs at %d", v)
		}
	}
}

func TestDistanceFormulaAgainstBFS(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := New(n)
		dist := graphalg.BFS(g, int(perm.Identity(n).Rank()))
		perm.All(n, func(p perm.Perm) bool {
			want := dist[p.Rank()]
			if got := DistanceToIdentity(p); got != want {
				t.Fatalf("n=%d %v: formula %d, BFS %d", n, p, got, want)
			}
			return true
		})
	}
}

func TestDistanceSymmetricAndInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		p, q, s := perm.Random(n, rng), perm.Random(n, rng), perm.Random(n, rng)
		d := Distance(p, q)
		return d == Distance(q, p) && d == Distance(s.Compose(p), s.Compose(q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(9)
		p, q := perm.Random(n, rng), perm.Random(n, rng)
		d := Distance(p, q)
		if d < 0 || d > DiameterFormula(n) {
			t.Fatalf("distance %d outside [0, %d]", d, DiameterFormula(n))
		}
		if (d == 0) != p.Equal(q) {
			t.Fatalf("d==0 iff equal violated")
		}
	}
}

func TestRouteIsShortestValidPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		p, q := perm.Random(n, rng), perm.Random(n, rng)
		path := Route(p, q)
		if !path[0].Equal(p) || !path[len(path)-1].Equal(q) {
			t.Fatalf("route endpoints wrong")
		}
		if len(path)-1 != Distance(p, q) {
			t.Fatalf("route length %d != distance %d for %v->%v",
				len(path)-1, Distance(p, q), p, q)
		}
		for i := 0; i+1 < len(path); i++ {
			if !IsEdge(path[i], path[i+1]) {
				t.Fatalf("route step %d is not an edge", i)
			}
		}
	}
}

func TestRouteGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(6)
		p, q := perm.Random(n, rng), perm.Random(n, rng)
		gens := RouteGenerators(p, q)
		cur := p.Clone()
		for _, gidx := range gens {
			if gidx < 0 || gidx >= n-1 {
				t.Fatalf("generator index %d out of range", gidx)
			}
			cur = ApplyGenerator(cur, gidx)
		}
		if !cur.Equal(q) {
			t.Fatalf("generator replay did not reach target")
		}
	}
}

func TestRoutePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Route(perm.Identity(3), perm.Identity(4))
}

func TestNewPanicsOnBadN(t *testing.T) {
	for _, n := range []int{0, -1, perm.MaxRankN + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	g := New(5)
	for id := 0; id < g.Order(); id += 7 {
		if g.ID(g.Node(id)) != id {
			t.Fatalf("node/id roundtrip failed at %d", id)
		}
	}
}

func TestConnectivityIsMaximal(t *testing.T) {
	// §2 property 4: the star graph is maximally fault tolerant,
	// i.e. vertex connectivity equals the degree n-1.
	for n := 3; n <= 5; n++ {
		g := New(n)
		if k := graphalg.VertexConnectivity(g, true); k != n-1 {
			t.Fatalf("n=%d connectivity %d, want %d", n, k, n-1)
		}
	}
}

func TestSurvivesAnyDegreeMinusOneFaults(t *testing.T) {
	// Remove any n-2 of a node's neighbors: graph must stay
	// connected (exhaustive for n=4: remove 2 of 3 neighbors).
	g := New(4)
	nbrs := graphalg.Neighbors(g, 0)
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !graphalg.ConnectedExcept(g, 0, nbrs[i], nbrs[j]) {
				t.Fatalf("S4 disconnected by 2 faults %d,%d", nbrs[i], nbrs[j])
			}
		}
	}
}

func TestGreedyBroadcastBounds(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := New(n)
		rounds := g.GreedyBroadcast(0)
		lo := BroadcastLowerBound(n)
		if rounds < lo {
			t.Fatalf("n=%d rounds %d below information bound %d", n, rounds, lo)
		}
		// Greedy must stay within a small factor of the bound; the
		// paper's algorithm achieves 3(n log n − 3/2).
		hi := BroadcastUpperBound(n)
		if n >= 3 && float64(rounds) > hi {
			t.Fatalf("n=%d rounds %d above paper bound %.1f", n, rounds, hi)
		}
	}
}

func TestSweepBroadcastCoversGraph(t *testing.T) {
	for n := 2; n <= 5; n++ {
		rounds := SweepBroadcast(n)
		if rounds < BroadcastLowerBound(n) {
			t.Fatalf("n=%d sweep rounds %d below bound", n, rounds)
		}
	}
}

func TestBroadcastLowerBound(t *testing.T) {
	// ceil(log2 24) = 5, ceil(log2 120) = 7.
	if BroadcastLowerBound(4) != 5 {
		t.Fatalf("lb(4) = %d", BroadcastLowerBound(4))
	}
	if BroadcastLowerBound(5) != 7 {
		t.Fatalf("lb(5) = %d", BroadcastLowerBound(5))
	}
}

func BenchmarkNeighbors(b *testing.B) {
	g := New(9)
	var buf []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = g.AppendNeighbors(buf[:0], i%g.Order())
	}
}

func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	p, q := perm.Random(10, rng), perm.Random(10, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Distance(p, q)
	}
}

func BenchmarkRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, q := perm.Random(10, rng), perm.Random(10, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Route(p, q)
	}
}

func TestDistanceFormulaAgainstBFSN7(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := New(7)
	dist := graphalg.BFS(g, int(perm.Identity(7).Rank()))
	perm.All(7, func(p perm.Perm) bool {
		if DistanceToIdentity(p) != dist[p.Rank()] {
			t.Fatalf("formula disagrees with BFS at %v", p)
		}
		return true
	})
}
