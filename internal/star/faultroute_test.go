package star

import (
	"math/rand"
	"testing"

	"starmesh/internal/perm"
)

func TestRouteAvoidingNoFaults(t *testing.T) {
	g := New(5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p, q := perm.Random(5, rng), perm.Random(5, rng)
		path := g.RouteAvoiding(p, q, nil)
		if len(path)-1 != Distance(p, q) {
			t.Fatalf("fault-free route not shortest: %d vs %d", len(path)-1, Distance(p, q))
		}
	}
}

func TestRouteAvoidingSurvivesMaxFaults(t *testing.T) {
	g := New(4)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p, q := perm.Random(4, rng), perm.Random(4, rng)
		if p.Equal(q) {
			continue
		}
		faulty := map[int]bool{}
		for len(faulty) < g.MaxSafeFaults() {
			h := rng.Intn(g.Order())
			if h != g.ID(p) && h != g.ID(q) {
				faulty[h] = true
			}
		}
		path := g.RouteAvoiding(p, q, faulty)
		if path == nil {
			t.Fatalf("no route with %d faults (connectivity violated)", len(faulty))
		}
		// Path validity: consecutive star edges, no faulty nodes.
		for i, node := range path {
			if faulty[g.ID(node)] {
				t.Fatalf("path passes through faulty node")
			}
			if i > 0 && !IsEdge(path[i-1], node) {
				t.Fatalf("path step is not an edge")
			}
		}
		if !path[0].Equal(p) || !path[len(path)-1].Equal(q) {
			t.Fatalf("path endpoints wrong")
		}
		// Detour is bounded: removing n-2 < n-1 vertices cannot
		// stretch distances past the number of healthy vertices.
		if len(path)-1 > g.Order() {
			t.Fatalf("path absurdly long")
		}
	}
}

func TestRouteAvoidingFaultyEndpoint(t *testing.T) {
	g := New(4)
	p, q := g.Node(0), g.Node(5)
	if g.RouteAvoiding(p, q, map[int]bool{0: true}) != nil {
		t.Fatalf("route from faulty source should be nil")
	}
	if g.RouteAvoiding(p, q, map[int]bool{5: true}) != nil {
		t.Fatalf("route to faulty destination should be nil")
	}
}

func TestRouteAvoidingSelf(t *testing.T) {
	g := New(4)
	p := g.Node(7)
	path := g.RouteAvoiding(p, p, nil)
	if len(path) != 1 || !path[0].Equal(p) {
		t.Fatalf("self route wrong: %v", path)
	}
}

func TestRouteAvoidingIsolation(t *testing.T) {
	// Killing all n-1 neighbors of the source isolates it: nil.
	g := New(4)
	p := g.Node(0)
	faulty := map[int]bool{}
	var buf []int
	for _, w := range g.AppendNeighbors(buf, 0) {
		faulty[w] = true
	}
	if g.RouteAvoiding(p, g.Node(12), faulty) != nil {
		t.Fatalf("isolated source should have no route")
	}
}

func TestMaxSafeFaults(t *testing.T) {
	if New(6).MaxSafeFaults() != 4 {
		t.Fatalf("MaxSafeFaults wrong")
	}
}
