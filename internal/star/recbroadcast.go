package star

import "starmesh/internal/perm"

// RecursiveBroadcast measures the sub-star-structured broadcast in
// the spirit of [AKER87]: first fill the source's S_{n-1} sub-star
// (the nodes sharing the source's symbol at position 0) using only
// intra-sub-star generators, then one cross round over generator g_0
// seeds every other sub-star with (n-2)! informed nodes, and the
// sub-stars finish in parallel. All rounds obey the SIMD-B rule (an
// informed node transmits to at most one neighbor per round).
// Returns the number of unit routes until all n! nodes know the
// message.
func (g *Graph) RecursiveBroadcast(source int) int {
	n := g.n
	order := g.Order()
	informedAt := make([]int, order)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[source] = 0
	count := 1
	round := 0
	front := n - 1

	// greedyRounds runs greedy SIMD-B rounds restricted to edges
	// allowed by edgeOK until no progress or target coverage pred.
	greedy := func(allowed func(p perm.Perm, gen int) bool, done func() bool) {
		for !done() {
			round++
			progressed := false
			for v := 0; v < order; v++ {
				if informedAt[v] < 0 || informedAt[v] >= round {
					continue
				}
				p := perm.Unrank(n, int64(v))
				for gen := 0; gen < n-1; gen++ {
					if !allowed(p, gen) {
						continue
					}
					p[front], p[gen] = p[gen], p[front]
					w := int(p.Rank())
					p[front], p[gen] = p[gen], p[front]
					if informedAt[w] == -1 {
						informedAt[w] = round
						count++
						progressed = true
						break
					}
				}
			}
			if !progressed {
				return
			}
		}
	}

	// Phase A: fill the source's sub-star (same symbol at position
	// 0) without using g_0. The sub-star has (n-1)! nodes.
	srcSym := perm.Unrank(n, int64(source))[0]
	subFull := func() bool {
		// counts only; cheap test: all informed within sub-star
		c := 0
		perm.All(n, func(p perm.Perm) bool {
			if p[0] == srcSym && informedAt[p.Rank()] >= 0 {
				c++
			}
			return true
		})
		return int64(c) == perm.Factorial(n-1)
	}
	if n >= 3 {
		greedy(func(p perm.Perm, gen int) bool {
			return p[0] == srcSym && gen != 0
		}, subFull)
	}

	// Phase B: one cross round — every informed node transmits
	// through g_0, landing in a distinct sub-star.
	round++
	var seeds []int
	for v := 0; v < order; v++ {
		if informedAt[v] < 0 || informedAt[v] >= round {
			continue
		}
		p := perm.Unrank(n, int64(v))
		p[front], p[0] = p[0], p[front]
		w := int(p.Rank())
		if informedAt[w] == -1 {
			informedAt[w] = round
			seeds = append(seeds, w)
			count++
		}
	}

	// Phase C: finish all sub-stars in parallel with unrestricted
	// greedy rounds.
	greedy(func(perm.Perm, int) bool { return true }, func() bool { return count == order })
	if count != order {
		panic("star: recursive broadcast incomplete")
	}
	return round
}
