package exptab

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := New("Title", "a", "bee", "c")
	tab.Add(1, "xx", 3.14159)
	tab.Add("longer-cell", 2, 10)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a") || !strings.Contains(lines[1], "bee") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("rule missing: %q", lines[2])
	}
	// Column alignment: every data line should have the same offset
	// for column 2 ("bee").
	col := strings.Index(lines[1], "bee")
	if !strings.Contains(lines[3][col:], "xx") {
		t.Fatalf("column misaligned:\n%s", out)
	}
	// Floats use %.3g.
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := New("", "x")
	tab.Add(1)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if strings.HasPrefix(buf.String(), "\n") {
		t.Fatalf("empty title printed a blank line")
	}
	if !strings.HasPrefix(buf.String(), "x") {
		t.Fatalf("header not first: %q", buf.String())
	}
}

func TestTableWideCellGrowsColumn(t *testing.T) {
	tab := New("t", "h")
	tab.Add("wider-than-header")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "---") && len(line) < len("wider-than-header") {
			t.Fatalf("rule too short: %q", line)
		}
	}
}
