// Package exptab renders the fixed-width tables produced by the
// experiment harness (cmd/experiments) and holds the experiment
// registry type. Output format is stable so EXPERIMENTS.md can quote
// it verbatim.
package exptab

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table with a title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", width[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	total := len(width)*2 - 2
	for _, wd := range width {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		line(r)
	}
}

// StepSummary appends a Markdown fragment to the file named by
// $GITHUB_STEP_SUMMARY — GitHub Actions renders it on the job's
// summary page, so each bench job surfaces its key numbers without
// anyone digging through logs. Outside Actions (the variable unset)
// it is a no-op; write errors are reported but never fail the
// experiment, since the summary is advisory next to the gates.
func StepSummary(format string, args ...any) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exptab: opening step summary: %v\n", err)
		return
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, format+"\n", args...); err != nil {
		fmt.Fprintf(os.Stderr, "exptab: writing step summary: %v\n", err)
	}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string // short key used on the command line, e.g. "fig7"
	Name  string // human title, e.g. "Figure 7: mapping of V(D4) into V(S4)"
	Run   func(w io.Writer) error
	Slow  bool // excluded from -run all unless -slow is given
	Notes string
}
