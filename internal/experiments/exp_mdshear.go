package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/core"
	"starmesh/internal/exptab"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/sorting"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// MultiDimShear tests the §5 remark that shearsort "does not seem
// that it can be easily extended to dimensions greater than 2": we
// run the naive d-dimensional generalization and track snake-order
// inversions per round.
func MultiDimShear(w io.Writer) error {
	t := exptab.New("Naive d-dimensional shearsort: inversions after each round",
		"mesh", "dims", "initial-inv", "per-round", "sorted", "rounds")
	shapes := [][]int{{8, 8}, {16, 16}, {3, 3, 3}, {4, 4, 4}, {2, 3, 4}, {2, 3, 4, 5}, {3, 3, 3, 3}}
	for _, sizes := range shapes {
		m := meshsim.New(mesh.New(sizes...), machineOpts()...)
		m.AddReg("K")
		keys := workload.Keys(workload.Uniform, m.M.Order(), 77)
		m.Set("K", func(pe int) int64 { return keys[pe] })
		initial := sorting.SnakeInversions(m.M, m.Reg("K"))
		hist := sorting.MultiDimShearRounds(m, "K", 12)
		s := ""
		for i, h := range hist {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprint(h)
		}
		sorted := hist[len(hist)-1] == 0
		t.Add(m.M.String(), m.M.Dims(), initial, s, sorted, len(hist))
		if m.M.Dims() == 2 && !sorted {
			return fmt.Errorf("2-D shearsort failed on %v", sizes)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\n2-D instances sort within the classical log(rows)+1 rounds; higher-dimensional")
	fmt.Fprintln(w, "instances keep reducing inversions but need more rounds and carry no proof —")
	fmt.Fprintln(w, "consistent with the paper's skepticism about extending shearsort past 2-D")
	return nil
}

// Utilization profiles generator usage on the star machine during a
// full snake sort — which links carry the traffic of mesh
// algorithms run through the embedding.
func Utilization(w io.Writer) error {
	t := exptab.New("Generator (link) utilization during snake sort on S_n",
		"n", "routes", "per-generator transmissions g_0..g_{n-2}", "max/min")
	for _, n := range []int{4, 5} {
		sm := starsim.New(n, machineOpts()...)
		sm.AddReg("K")
		keys := workload.Keys(workload.Uniform, sm.Size(), int64(n))
		meshID := make([]int, sm.Size())
		for pe := range meshID {
			meshID[pe] = core.UnmapID(n, pe)
		}
		sm.Set("K", func(pe int) int64 { return keys[meshID[pe]] })
		res := sorting.SnakeSortStar(sm, "K", meshID)
		uses := sm.PortUses()
		s := ""
		lo, hi := uses[0], uses[0]
		for i, u := range uses {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprint(u)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		ratio := "inf"
		if lo > 0 {
			ratio = fmt.Sprintf("%.2f", float64(hi)/float64(lo))
		}
		t.Add(n, res.UnitRoutes, s, ratio)
		if !res.Sorted {
			return fmt.Errorf("sort failed at n=%d", n)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nlow generators carry most traffic: snake steps along small dimensions dominate,")
	fmt.Fprintln(w, "and every dimension-k path uses generator k twice plus one lower generator")
	return nil
}
