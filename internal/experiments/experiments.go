// Package experiments regenerates every figure and table of the
// paper plus the measurement experiments indexed in DESIGN.md
// (E1–E18). Each experiment writes stable fixed-width tables; the
// cmd/experiments binary selects them by id, and EXPERIMENTS.md
// quotes their output.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"starmesh/internal/exptab"
)

// All returns the registry of experiments in presentation order.
func All() []exptab.Experiment {
	return []exptab.Experiment{
		{ID: "fig2", Name: "Figure 2: the star graph S4", Run: Fig2StarTopology},
		{ID: "fig3", Name: "Figure 3: the 2*3*4 mesh", Run: Fig3MeshTopology},
		{ID: "fig4", Name: "Figure 4: example embedding (expansion 1, dilation 2, congestion 2)", Run: Fig4Example},
		{ID: "table1", Name: "Table 1: sequences of exchanges", Run: Table1Exchanges},
		{ID: "fig7", Name: "Figure 7: mapping of V(D4) into V(S4)", Run: Fig7Mapping},
		{ID: "lemma1", Name: "Lemma 1: no dilation-1 embedding for n > 2", Run: Lemma1},
		{ID: "lemma2", Name: "Lemma 2: transposition distances are 1 or 3", Run: Lemma2},
		{ID: "dilation", Name: "Theorem 4: dilation 3, expansion 1 (plus congestion, measured)", Run: Theorem4Dilation},
		{ID: "unitroute", Name: "Lemma 5/Theorem 6: mesh unit route in <=3 star routes, conflict-free", Run: Theorem6UnitRoute},
		{ID: "properties", Name: "Section 2: star graph properties vs hypercube", Run: StarProperties},
		{ID: "broadcast", Name: "Section 2: broadcast rounds vs 3(n lg n - 3/2) bound", Run: Broadcast},
		{ID: "faults", Name: "Section 2: maximal fault tolerance (connectivity = n-1)", Run: FaultTolerance},
		{ID: "atallah", Name: "Theorems 7-8: uniform mesh on rectangular mesh (block simulation)", Run: AtallahSimulation},
		{ID: "theorem9", Name: "Theorem 9: uniform mesh on star graph, weak upper bound", Run: Theorem9},
		{ID: "sorting", Name: "Section 5: sorting routes, mesh vs star (x3)", Run: Sorting},
		{ID: "appendix", Name: "Appendix: d-dimensional factorization and optimal d", Run: Appendix},
		{ID: "ablation", Name: "Ablation: paper mapping vs lexicographic vs random", Run: Ablation},
		{ID: "schedule", Name: "Ablation: path order and Lemma-5 conflict freedom", Run: ScheduleAblation},
		{ID: "embedrect", Name: "Extension: rectangular d-dimensional meshes on S_n", Run: EmbedRectExperiment},
		{ID: "collectives", Name: "Extension: collective operations, mesh vs star", Run: Collectives},
		{ID: "permroute", Name: "Extension: oblivious permutation routing on S_n", Run: PermRouting},
		{ID: "surface", Name: "Section 2: distance distribution of S_n", Run: SurfaceAreasExperiment},
		{ID: "mdshear", Name: "Section 5: naive d-dimensional shearsort (conjecture test)", Run: MultiDimShear},
		{ID: "virtual", Name: "Extension: D_{n+1} on S_n via processor virtualization", Run: Virtualization},
		{ID: "utilization", Name: "Extension: generator utilization under embedded-mesh traffic", Run: Utilization},
		{ID: "engine", Name: "Infrastructure: parallel execution engine parity and speedup", Run: EngineParity},
		{ID: "plans", Name: "Infrastructure: compiled route plans parity and speedup", Run: PlansParity},
		{ID: "serve", Name: "Infrastructure: job service load, pooled vs build-per-job", Run: ServeLoad},
		{ID: "scenarios", Name: "Infrastructure: scenario registry smoke, one demo run per family", Run: ScenarioSmoke},
		{ID: "tenants", Name: "Infrastructure: multi-tenant fairness, WFQ shares and light-tenant p99", Run: TenantFairness},
		{ID: "cluster", Name: "Infrastructure: sharded cluster, 3-node scatter-gather vs single node", Run: ClusterLoad},
		{ID: "bench-compare", Name: "Infrastructure: interval bench-regression gate (S_8 sweep reps)", Run: BenchCompare},
	}
}

// Get returns the experiment with the given id.
func Get(id string) (exptab.Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return exptab.Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "== %s (%s) ==\n", e.Name, e.ID)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
