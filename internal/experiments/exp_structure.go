package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/core"
	"starmesh/internal/exptab"
	"starmesh/internal/graphalg"
	"starmesh/internal/mesh"
	"starmesh/internal/perm"
	"starmesh/internal/star"
)

// Fig2StarTopology regenerates Figure 2: the structure of S_4
// (24 nodes, 3-regular, 36 edges, diameter 4) and the adjacency of
// the first nodes in the paper's display notation.
func Fig2StarTopology(w io.Writer) error {
	g := star.New(4)
	t := exptab.New("S4 structure",
		"nodes", "degree", "edges", "diameter", "girth-6-hexagons")
	_, deg := graphalg.IsRegular(g)
	// The 24 nodes form 4 hexagons (the sub-stars S_3 fixing the
	// symbol at position 0) joined by a perfect matching pattern.
	hexagons := 4
	t.Add(g.Order(), deg, graphalg.NumEdges(g), graphalg.Diameter(g), hexagons)
	t.Fprint(w)

	adj := exptab.New("\nAdjacency (first 8 nodes)", "node", "neighbors")
	for id := 0; id < 8; id++ {
		p := g.Node(id)
		s := ""
		for i, q := range star.NeighborPerms(p) {
			if i > 0 {
				s += "  "
			}
			s += q.String()
		}
		adj.Add(p.String(), s)
	}
	adj.Fprint(w)
	return nil
}

// Fig3MeshTopology regenerates Figure 3: the 2*3*4 mesh.
func Fig3MeshTopology(w io.Writer) error {
	m := mesh.New(2, 3, 4)
	t := exptab.New("2*3*4 mesh structure",
		"nodes", "edges", "diameter", "max-degree")
	t.Add(m.Order(), graphalg.NumEdges(m), graphalg.Diameter(m), m.MaxDegree())
	t.Fprint(w)

	adj := exptab.New("\nAdjacency (first 6 nodes, coordinates as in Figure 3)", "node", "neighbors")
	var buf []int
	for id := 0; id < 6; id++ {
		buf = m.AppendNeighbors(buf[:0], id)
		s := ""
		for i, v := range buf {
			if i > 0 {
				s += "  "
			}
			s += mesh.DPointString(m.Coords(nil, v))
		}
		adj.Add(mesh.DPointString(m.Coords(nil, id)), s)
	}
	adj.Fprint(w)
	return nil
}

// Fig4Example reproduces the §3.1 worked example: embedding the
// 4-cycle G into the 4-star S with expansion 1, dilation 2,
// congestion 2.
func Fig4Example(w io.Writer) error {
	// Guest: cycle 1-2-4-3-1; host: star a-b, a-c, a-d.
	g := graphalg.NewAdjacency(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(3, 2)
	g.AddEdge(2, 0)
	s := graphalg.NewAdjacency(4)
	s.AddEdge(0, 1)
	s.AddEdge(0, 2)
	s.AddEdge(0, 3)
	names := []string{"a", "b", "c", "d"}
	e := exampleEmbedding(g, s)
	m := e.Measure()
	t := exptab.New("Figure 4 embedding (1→a, 2→b, 3→c, 4→d)",
		"expansion", "dilation", "congestion")
	t.Add(m.Expansion, m.Dilation, m.Congestion)
	t.Fprint(w)
	fmt.Fprintln(w, "\nedge-to-path mapping:")
	pairs := [][2]int{{0, 1}, {1, 3}, {3, 2}, {2, 0}}
	for _, pr := range pairs {
		path := e.Path(pr[0], pr[1])
		str := ""
		for _, h := range path {
			str += names[h]
		}
		fmt.Fprintf(w, "  (%d,%d) -> %s\n", pr[0]+1, pr[1]+1, str)
	}
	return nil
}

// Table1Exchanges regenerates Table 1 for n = 7.
func Table1Exchanges(w io.Writer) error {
	t := exptab.New("Table 1: sequence of exchanges along dimension i (n=7)",
		"i", "exchanges")
	for i := 1; i <= 6; i++ {
		s := ""
		for _, ex := range core.ExchangeRow(i) {
			s += fmt.Sprintf("(%d %d) ", ex[0], ex[1])
		}
		t.Add(i, s)
	}
	t.Fprint(w)
	return nil
}

// Fig7Mapping regenerates Figure 7: the full mapping of V(D_4) into
// V(S_4) and confirms it matches the paper's transcription.
func Fig7Mapping(w io.Writer) error {
	m := mesh.D(4)
	t := exptab.New("Figure 7: V(D4) -> V(S4)", "D4", "S4", "matches-paper")
	mismatches := 0
	for _, row := range core.Figure7 {
		pt := []int{row.Mesh[2], row.Mesh[1], row.Mesh[0]}
		got := core.ConvertDS(pt)
		ok := got.String() == row.Star
		if !ok {
			mismatches++
		}
		t.Add(mesh.DPointString(pt), got.String(), ok)
	}
	t.Fprint(w)
	if mismatches > 0 {
		return fmt.Errorf("%d rows disagree with the paper", mismatches)
	}
	fmt.Fprintf(w, "all 24 rows match the paper; |V(D4)| = %d = 4!\n", m.Order())
	return nil
}

// exampleEmbedding builds the Figure 4 embedding (shared with the
// test suite's construction, duplicated here to keep the package
// self-contained).
func exampleEmbedding(g, s *graphalg.Adjacency) *embedWrapper {
	paths := map[[2]int][]int{
		{0, 1}: {0, 1},
		{1, 3}: {1, 0, 3},
		{3, 2}: {3, 0, 2},
		{2, 0}: {2, 0},
	}
	return newEmbedWrapper(g, s, []int{0, 1, 2, 3}, paths)
}

// sanity check that perm is linked (used by other files).
var _ = perm.Identity
