package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/atallah"
	"starmesh/internal/core"
	"starmesh/internal/cubesim"
	"starmesh/internal/exptab"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/perm"
	"starmesh/internal/sorting"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// AtallahSimulation measures the block-scaling simulation of uniform
// meshes on the appendix's rectangular factorizations of n!.
func AtallahSimulation(w io.Writer) error {
	t := exptab.New("Theorems 7-8: uniform d-mesh on rectangular factorization of n!",
		"n", "d", "sides", "l-ratio", "ratio-bound nd", "max-load", "dilation", "slowdown", "theorem-8 bound")
	for _, n := range []int{6, 7, 8} {
		for d := 2; d <= 4; d++ {
			f := atallah.Factorize(n, d)
			host := f.RectMesh()
			sim := atallah.NewSimulation(atallah.UniformGuest(host), host)
			m := sim.Measure()
			t.Add(n, d, sidesString(host), f.Ratio(), f.RatioBound(),
				m.MaxLoad, m.Dilation, m.Slowdown, m.Theorem8)
			if float64(m.Dilation) > m.Theorem8 {
				return fmt.Errorf("dilation exceeds Theorem-8 bound at n=%d d=%d", n, d)
			}
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: slowdown tracks (max_i l_i)·2d/N^(1/d); lopsided hosts (small d) pay more")
	return nil
}

func sidesString(m *mesh.Mesh) string {
	s := ""
	for j := 0; j < m.Dims(); j++ {
		if j > 0 {
			s += "x"
		}
		s += fmt.Sprint(m.Size(j))
	}
	return s
}

// Theorem9 tabulates the weak upper bound for simulating uniform
// meshes directly on the star graph.
func Theorem9(w io.Writer) error {
	t := exptab.New("Theorem 9: slowdown bound 2^(n-1)·n/N^(1/(n-1)) = N^(n/log²N)",
		"n", "N=n!", "slowdown-bound", "exponent log_N", "n/log2(N)^2")
	for n := 4; n <= 12; n++ {
		s, e := atallah.Theorem9Slowdown(n)
		l := atallah.Log2Factorial(n)
		t.Add(n, perm.Factorial(n), s, e, float64(n)/(l*l))
		if e <= 0 || e >= 1 {
			return fmt.Errorf("exponent out of range at n=%d", n)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nthe exponent shrinks with n: uniform-mesh algorithms do NOT transfer efficiently (Section 5)")
	return nil
}

// Sorting compares sorting costs: snake sort on D_n vs the same sort
// on S_n through the embedding (≤3× routes), plus shearsort on the
// d=2 factorization.
func Sorting(w io.Writer) error {
	t := exptab.New("Sorting N = n! keys (uniform workload)",
		"n", "N", "algorithm", "machine", "unit-routes", "sorted", "star/mesh ratio")
	for _, n := range []int{3, 4, 5} {
		dn := mesh.D(n)
		N := dn.Order()
		keys := workload.Keys(workload.Uniform, N, int64(n))

		mm := meshsim.New(dn, machineOpts()...)
		mm.AddReg("K")
		mm.Set("K", func(pe int) int64 { return keys[pe] })
		rm := sorting.SnakeSortMesh(mm, "K")

		sm := starsim.New(n, machineOpts()...)
		sm.AddReg("K")
		meshID := make([]int, sm.Size())
		for pe := range meshID {
			meshID[pe] = core.UnmapID(n, pe)
		}
		sm.Set("K", func(pe int) int64 { return keys[meshID[pe]] })
		rs := sorting.SnakeSortStar(sm, "K", meshID)

		ratio := float64(rs.UnitRoutes) / float64(rm.UnitRoutes)
		t.Add(n, N, "snake odd-even", "mesh D_n", rm.UnitRoutes, rm.Sorted, "")
		t.Add(n, N, "snake odd-even", "star S_n", rs.UnitRoutes, rs.Sorted, fmt.Sprintf("%.2f", ratio))
		if !rm.Sorted || !rs.Sorted || ratio > 3.0001 {
			return fmt.Errorf("sorting transfer violated at n=%d (ratio %.2f)", n, ratio)
		}

		// The same sort on a SIMD-A star machine: §4's extra O(n)
		// factor, measured.
		smA := starsim.New(n, machineOpts()...)
		smA.AddReg("K")
		smA.Set("K", func(pe int) int64 { return keys[meshID[pe]] })
		ra := sorting.SnakeSortStarModelA(smA, "K", meshID)
		ratioA := float64(ra.UnitRoutes) / float64(rm.UnitRoutes)
		t.Add(n, N, "snake odd-even", "star S_n (SIMD-A)", ra.UnitRoutes, ra.Sorted, fmt.Sprintf("%.2f", ratioA))
		if !ra.Sorted || ra.UnitRoutes > n*rs.UnitRoutes {
			return fmt.Errorf("model-A sorting out of bounds at n=%d", n)
		}

		// Shearsort on the d=2 grouped factorization (R unit route =
		// 1 D_n route = <=3 star routes).
		f := atallah.Factorize(n, 2)
		r := f.RectMesh()
		rmach := meshsim.New(r, machineOpts()...)
		rmach.AddReg("K")
		rmach.Set("K", func(pe int) int64 { return keys[pe%N] })
		rr := sorting.ShearSort2D(rmach, "K")
		t.Add(n, N, "shearsort d=2", fmt.Sprintf("mesh %s", sidesString(r)), rr.UnitRoutes, rr.Sorted, "")
		t.Add(n, N, "shearsort d=2", "star (est. x3)", 3*rr.UnitRoutes, rr.Sorted, "3.00")

		// Bitonic sort on the smallest hypercube holding N keys —
		// the intro's fast-sorting baseline ([RANK88], [NASS79]).
		// Note it needs a power-of-two machine: 2^d >= n! wastes up
		// to half the PEs, which is exactly the §5 point about
		// divide-and-conquer sorters on non-power-of-two meshes.
		d := cubesim.MinDimFor(int64(N))
		cm := cubesim.New(d, machineOpts()...)
		cm.AddReg("K")
		maxKey := int64(0)
		for _, k := range keys {
			if k > maxKey {
				maxKey = k
			}
		}
		cm.Set("K", func(pe int) int64 {
			if pe < N {
				return keys[pe]
			}
			return maxKey + 1 // padding sentinels sort to the top
		})
		br := cm.BitonicSort("K")
		sortedCube := true
		for pe := 1; pe < cm.Size(); pe++ {
			if cm.Reg("K")[pe] < cm.Reg("K")[pe-1] {
				sortedCube = false
			}
		}
		t.Add(n, N, "bitonic", fmt.Sprintf("hypercube Q%d (%d PEs)", d, cm.Size()), br, sortedCube, "")
		if !sortedCube {
			return fmt.Errorf("bitonic failed at n=%d", n)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nTheorem 6: every mesh algorithm transfers to the star at a route factor <= 3.")
	fmt.Fprintln(w, "the hypercube's O(log^2 N)-route bitonic sort is far cheaper but demands 2^d PEs;")
	fmt.Fprintln(w, "n! is never a power of two (n >= 3), the mismatch the paper's Section 5 discusses")
	return nil
}

// Appendix sweeps the sorting-cost model T(d) = d·2^d·N^(2/d) and
// reports the factorizations with their l_1/l_d ratios.
func Appendix(w io.Writer) error {
	t := exptab.New("Appendix: factorizations of the 2x3x...xn mesh",
		"n", "d", "sides l_1..l_d", "l1/ld", "bound nd")
	for _, n := range []int{6, 8, 10} {
		for d := 1; d <= 4; d++ {
			f := atallah.Factorize(n, d)
			t.Add(n, d, lString(f), f.Ratio(), f.RatioBound())
		}
	}
	t.Fprint(w)

	t2 := exptab.New("\nSorting-cost model T(d) = d·2^d·N^(2/d)",
		"n", "N", "T(1)", "T(2)", "T(4)", "T(6)", "T(8)", "optimal d", "predicted sqrt(2 lg N)")
	for _, n := range []int{6, 8, 10, 12} {
		N := float64(perm.Factorial(n))
		dStar, _ := atallah.OptimalSortDimension(N, 30)
		t2.Add(n, perm.Factorial(n),
			atallah.SortCostModel(N, 1), atallah.SortCostModel(N, 2),
			atallah.SortCostModel(N, 4), atallah.SortCostModel(N, 6),
			atallah.SortCostModel(N, 8),
			dStar, atallah.PredictedOptimalD(N))
	}
	t2.Fprint(w)
	fmt.Fprintln(w, "\nthe optimal simulation dimension is Θ(sqrt(log N)), as derived in the appendix")
	return nil
}

func lString(f atallah.Factorization) string {
	s := ""
	for i, l := range f.L {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(l)
	}
	return s
}
