package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/core"
	"starmesh/internal/embed"
	"starmesh/internal/exptab"
	"starmesh/internal/graphalg"
	"starmesh/internal/mesh"
	"starmesh/internal/perm"
	"starmesh/internal/star"
	"starmesh/internal/workload"
)

// Lemma1 tabulates the degree argument (max mesh degree 2n-3 vs star
// degree n-1) and reports the exhaustive n=3 search result.
func Lemma1(w io.Writer) error {
	t := exptab.New("Lemma 1: dilation-1 embedding impossible when 2n-3 > n-1",
		"n", "mesh-max-degree", "star-degree", "dilation-1-possible")
	for n := 2; n <= 10; n++ {
		t.Add(n, 2*n-3, n-1, core.HasDilation1(n))
	}
	t.Fprint(w)
	// Exhaustive certificate for n=3: D_3 has 7 edges, S_3 (a
	// 6-cycle) has 6, so no dilation-1 embedding exists; confirmed
	// by trying all 720 bijections.
	found := lemma1BruteForceN3()
	fmt.Fprintf(w, "\nexhaustive n=3 search over 720 bijections: dilation-1 embedding found = %v\n", found)
	if found {
		return fmt.Errorf("Lemma 1 contradicted")
	}
	return nil
}

func lemma1BruteForceN3() bool {
	m := mesh.D(3)
	adj := make([][]bool, 6)
	for i := range adj {
		adj[i] = make([]bool, 6)
	}
	perm.All(3, func(p perm.Perm) bool {
		for _, q := range star.NeighborPerms(p) {
			adj[p.Rank()][q.Rank()] = true
		}
		return true
	})
	found := false
	perm.All(6, func(bij perm.Perm) bool {
		ok := true
		var buf []int
		for u := 0; u < 6 && ok; u++ {
			buf = m.AppendNeighbors(buf[:0], u)
			for _, v := range buf {
				if !adj[bij[u]][bij[v]] {
					ok = false
					break
				}
			}
		}
		if ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// Lemma2 counts, over all nodes and symbol pairs, the distance
// between π and π(i,j): always 1 (front symbol involved) or 3.
func Lemma2(w io.Writer) error {
	t := exptab.New("Lemma 2: dist(π, π(i,j)) over all π and {i,j}",
		"n", "pairs-checked", "dist=1", "dist=3", "other")
	for n := 3; n <= 6; n++ {
		var d1, d3, other, total int64
		perm.All(n, func(p perm.Perm) bool {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					total++
					switch star.Distance(p, p.SwapSymbols(i, j)) {
					case 1:
						d1++
					case 3:
						d3++
					default:
						other++
					}
				}
			}
			return true
		})
		t.Add(n, total, d1, d3, other)
		if other != 0 {
			return fmt.Errorf("Lemma 2 violated at n=%d", n)
		}
	}
	t.Fprint(w)
	return nil
}

// Theorem4Dilation measures the paper embedding: expansion, exact
// dilation, average dilation and congestion over all guest edges.
func Theorem4Dilation(w io.Writer) error {
	t := exptab.New("Theorem 4: the D_n -> S_n embedding",
		"n", "|V|", "expansion", "dilation", "avg-dilation", "congestion", "guest-edges")
	for n := 3; n <= 6; n++ {
		e := core.NewEmbedding(n)
		m := e.Measure()
		t.Add(n, perm.Factorial(n), m.Expansion, m.Dilation, m.AvgDilation, m.Congestion, m.GuestEdges)
		if m.Dilation != 3 || m.Expansion != 1 {
			return fmt.Errorf("Theorem 4 violated at n=%d: %+v", n, m)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\npaper: expansion 1, dilation 3 (congestion is measured, not claimed)")
	return nil
}

// Ablation compares the paper's vertex map against a lexicographic
// rank map and a random bijection, with BFS shortest paths as the
// edge realization for the baselines.
func Ablation(w io.Writer) error {
	t := exptab.New("Ablation: vertex-map quality (host = S_n, guest = D_n)",
		"n", "mapping", "dilation", "avg-dilation", "congestion")
	for n := 3; n <= 5; n++ {
		m := mesh.D(n)
		s := star.New(n)

		paper := core.NewEmbedding(n)
		pm := paper.Measure()
		t.Add(n, "paper (Fig 5)", pm.Dilation, pm.AvgDilation, pm.Congestion)

		// Lexicographic: mesh id i -> star node of rank i.
		lex := make([]int, m.Order())
		for i := range lex {
			lex[i] = i
		}
		le := &embed.Embedding{Guest: m, Host: s, VertexMap: lex}
		lm := le.Measure()
		t.Add(n, "lexicographic", lm.Dilation, lm.AvgDilation, lm.Congestion)

		re := &embed.Embedding{Guest: m, Host: s,
			VertexMap: workload.RandomVertexMap(m.Order(), int64(1000+n))}
		rm := re.Measure()
		t.Add(n, "random", rm.Dilation, rm.AvgDilation, rm.Congestion)

		if pm.Dilation != 3 {
			return fmt.Errorf("paper mapping lost dilation 3 at n=%d", n)
		}
		// For n ≥ 4 the naive maps must be strictly worse; at n=3 the
		// host is a 6-cycle whose diameter already is 3, so ties are
		// possible.
		if n >= 4 && (pm.Dilation > lm.Dilation || pm.Dilation > rm.Dilation) {
			return fmt.Errorf("paper mapping unexpectedly worse at n=%d", n)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nbaselines use BFS shortest paths; the paper mapping keeps dilation at 3 for every n.")
	fmt.Fprintln(w, "note: the lexicographic map also achieves dilation 3 — D_n's coordinates are")
	fmt.Fprintln(w, "factorial-number-system digits, so any Lehmer-style map turns a unit digit change")
	fmt.Fprintln(w, "into a symbol transposition (Lemma 2). Random maps degrade toward the diameter.")
	fmt.Fprintln(w, "the paper map's real payoff is the conflict-free unit-route schedule (see 'schedule').")
	return nil
}

// hyperProps is reused by exp_simulation.go.
var _ = graphalg.Diameter
