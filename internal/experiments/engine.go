package experiments

import "starmesh/internal/simd"

// engineOpts holds the simd engine options applied to every machine
// the experiments construct. Empty means the sequential default.
var engineOpts []simd.Option

// SetEngine installs machine engine options (e.g. the sharded
// parallel executor) used by every experiment from now on;
// cmd/experiments exposes this as the -engine and -workers flags.
// Because the parallel executor is bit-identical to the sequential
// one, every experiment's output is unchanged by this setting.
func SetEngine(opts ...simd.Option) { engineOpts = opts }

// machineOpts returns the options to pass to machine constructors.
func machineOpts() []simd.Option { return engineOpts }
