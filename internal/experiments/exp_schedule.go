package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/core"
	"starmesh/internal/exptab"
	"starmesh/internal/mesh"
	"starmesh/internal/perm"
	"starmesh/internal/star"
)

// ScheduleAblation isolates the paper's key design decision: the
// Lemma-2 path order (g_k, g_partner, g_k), whose first and third
// hops are the dimension's own position. Any Lehmer-style vertex map
// achieves dilation 3 (a unit digit change is a symbol
// transposition), but pipelining ALL messages of a unit route
// simultaneously is only conflict-free with the paper's paths
// (Lemma 5). We schedule one unit route three ways and count
// conflicts:
//
//	paper paths      — canonical (g_k, g_t, g_k) order
//	greedy paths     — same vertex map, shortest routes from the
//	                   generic star router (arbitrary hop order)
//	lexicographic    — rank-order vertex map with greedy routes
//
// A conflict is a PE that would have to transmit two messages or
// receive two messages in the same unit route.
func ScheduleAblation(w io.Writer) error {
	t := exptab.New("Schedule ablation: conflicts when pipelining one unit route",
		"n", "dim", "paper-paths", "greedy-paths", "lex-map+greedy")
	for n := 4; n <= 6; n++ {
		dn := mesh.D(n)
		dims := map[int]bool{}
		for _, k := range []int{1, n / 2, n - 2} {
			if k < 1 || dims[k] {
				continue
			}
			dims[k] = true
			paper := conflictsFor(n, k, func(u, v int) []int64 {
				p := core.ConvertDS(dn.Coords(nil, u))
				path, _ := core.Path(p, k, +1)
				return ranks(path)
			})
			greedy := conflictsFor(n, k, func(u, v int) []int64 {
				p := core.ConvertDS(dn.Coords(nil, u))
				q := core.ConvertDS(dn.Coords(nil, v))
				return ranks(star.Route(p, q))
			})
			lex := conflictsFor(n, k, func(u, v int) []int64 {
				return ranks(star.Route(perm.Unrank(n, int64(u)), perm.Unrank(n, int64(v))))
			})
			t.Add(n, k, paper, greedy, lex)
			if paper != 0 {
				return fmt.Errorf("paper schedule conflicted at n=%d k=%d", n, k)
			}
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\ngeneric shortest paths on the paper's own vertex map collide: conflict freedom")
	fmt.Fprintln(w, "needs a FIXED outer generator per dimension (Lemma 5), which the paper's")
	fmt.Fprintln(w, "(g_k, g_t, g_k) order provides. (The lex column is also 0: greedy routing on a")
	fmt.Fprintln(w, "Lehmer-code map happens to fetch through the digit's fixed position first,")
	fmt.Fprintln(w, "recovering the same structure — the property, not the specific map, is what matters.)")
	return nil
}

func ranks(path []perm.Perm) []int64 {
	out := make([]int64, len(path))
	for i, p := range path {
		out[i] = p.Rank()
	}
	return out
}

// conflictsFor pipelines the messages of the +k unit route along the
// given host paths, all starting at step 0, and counts PEs that must
// send or receive more than one message in some step.
func conflictsFor(n, k int, pathOf func(u, v int) []int64) int {
	dn := mesh.D(n)
	var paths [][]int64
	maxLen := 0
	for u := 0; u < dn.Order(); u++ {
		v := dn.Step(u, k-1, +1)
		if v == -1 {
			continue
		}
		p := pathOf(u, v)
		paths = append(paths, p)
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	conflicts := 0
	for step := 0; step+1 < maxLen; step++ {
		senders := make(map[int64]int)
		receivers := make(map[int64]int)
		for _, p := range paths {
			if step+1 >= len(p) {
				continue // message already delivered
			}
			senders[p[step]]++
			receivers[p[step+1]]++
		}
		for _, c := range senders {
			if c > 1 {
				conflicts += c - 1
			}
		}
		for _, c := range receivers {
			if c > 1 {
				conflicts += c - 1
			}
		}
	}
	return conflicts
}
