package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/exptab"
	"starmesh/internal/perm"
	"starmesh/internal/virtual"
	"starmesh/internal/workload"
)

// Virtualization measures running the larger mesh D_{n+1} on S_n
// with n+1 virtual nodes per PE: unit routes along old dimensions
// cost ≤ 3(n+1) physical routes (amortized ≤ 3 per virtual node) and
// the new dimension is free.
func Virtualization(w io.Writer) error {
	t := exptab.New("Virtualization: D_{n+1} on S_n (n+1 virtual nodes per PE)",
		"n", "virtual-nodes", "physical-PEs", "dim", "routes", "bound 3(n+1)", "data-ok")
	for _, n := range []int{3, 4, 5} {
		vm := virtual.New(n, machineOpts()...)
		vm.AddReg("A")
		vm.AddReg("B")
		keys := workload.Keys(workload.Uniform, vm.Big.Order(), int64(n))
		for _, k := range []int{1, n - 1, n} {
			vm.Set("A", func(bigID int) int64 { return keys[bigID] })
			vm.Set("B", func(bigID int) int64 { return -1 })
			routes := vm.UnitRoute("A", "B", k, +1)
			ok := true
			for bigID := 0; bigID < vm.Big.Order(); bigID++ {
				to := vm.Big.Step(bigID, k-1, +1)
				if to == -1 {
					continue
				}
				if vm.Get("B", to) != keys[bigID] {
					ok = false
				}
			}
			bound := 3 * (n + 1)
			if k == n {
				bound = 0
			}
			t.Add(n, vm.Big.Order(), int(perm.Factorial(n)), k, routes, bound, ok)
			if !ok || routes > bound {
				return fmt.Errorf("virtualization broken at n=%d k=%d", n, k)
			}
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\na mesh larger than the machine still runs at amortized route factor <= 3;")
	fmt.Fprintln(w, "the virtual dimension d_n is an intra-PE slot shuffle and costs nothing")

	// End-to-end: sort (n+1)! keys on n! PEs.
	t2 := exptab.New("\nVirtual snake sort: (n+1)! keys on n! PEs",
		"n", "keys", "PEs", "physical-routes", "sorted")
	for _, n := range []int{3, 4} {
		vm := virtual.New(n, machineOpts()...)
		vm.AddReg("K")
		keys := workload.Keys(workload.Uniform, vm.Big.Order(), 7)
		vm.Set("K", func(bigID int) int64 { return keys[bigID] })
		sorted, routes := vm.SnakeSort("K")
		t2.Add(n, vm.Big.Order(), int(perm.Factorial(n)), routes, sorted)
		if !sorted {
			return fmt.Errorf("virtual sort failed at n=%d", n)
		}
	}
	t2.Fprint(w)
	return nil
}
