package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"time"

	"starmesh/internal/exptab"
	"starmesh/internal/loadgen"
	"starmesh/internal/serve"
)

// clusterGateMinSpeedup is the gated floor on cluster-vs-single
// throughput for the 3-node bench: with one worker per node the
// ideal is ~3x, the spec mix's cost spread across the frozen ring
// makes ~2.9x reachable, and below 1.8x the sharding is not earning
// its routing layer.
const clusterGateMinSpeedup = 1.8

// clusterSpecs is the bench workload: eight specs spanning eight
// pool shapes whose frozen-ring owners split the per-round execution
// cost roughly evenly across three nodes (~8.5ms each — sweep S_7 on
// n1; sort, faultroute, a longer S_6 sweep and pipeline on n2; shear,
// faultroute S_7 and permroute on n3). The balance is deterministic:
// the ring hash never changes, so neither does the assignment.
func clusterSpecs() []serve.JobSpec {
	return []serve.JobSpec{
		{Kind: serve.KindSweep, N: 7, Trials: 4, Seed: 3},
		{Kind: serve.KindSort, N: 5, Dist: "uniform", Seed: 42},
		{Kind: serve.KindFaultRoute, N: 6, Faults: 4, Pairs: 16, Seed: 9},
		{Kind: serve.KindSweep, N: 6, Trials: 48, Seed: 5},
		{Kind: serve.KindPipeline, N: 5, D: 2, Dist: "few-distinct", Seed: 19, Source: 1},
		{Kind: serve.KindShear, Rows: 16, Cols: 16, Dist: "reversed", Seed: 7},
		{Kind: serve.KindFaultRoute, N: 7, Faults: 2, Pairs: 8, Seed: 11},
		{Kind: serve.KindPermRoute, N: 5, Pattern: "random", Seed: 13},
	}
}

// ClusterLoad measures the sharded cluster end to end: the same
// closed-loop load driven through the routing client against three
// one-worker nodes and against a single identical node, parity
// asserted on both against standalone scenario runs, followed by a
// drain exercise that queues a slow single-shape backlog, drains its
// owner mid-queue and verifies every migrated job re-executed
// bit-identically on a survivor. The record lands in
// BENCH_cluster.json (path overridable via BENCH_CLUSTER_PATH); when
// BENCH_CLUSTER_GATE is set — CI's cluster job sets it — the
// experiment fails if the speedup falls below 1.8x. The gate needs
// at least 4 cores (3 workers + clients); on smaller hosts it
// degrades to a warning.
func ClusterLoad(w io.Writer) error {
	cfg := loadgen.ClusterLoadConfig{
		Nodes:          3,
		WorkersPerNode: 1,
		Queue:          64,
		Clients:        6,
		JobsPerClient:  16,
		Specs:          clusterSpecs(),
		Reps:           3,
	}
	// BENCH_CLUSTER_JOBS shrinks the per-client job count (the
	// experiment test suite sets it; CI's cluster job runs the full
	// default).
	if s := os.Getenv("BENCH_CLUSTER_JOBS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return fmt.Errorf("cluster: bad BENCH_CLUSTER_JOBS %q", s)
		}
		cfg.JobsPerClient = n
		cfg.Reps = 1
	}
	cmp, err := loadgen.RunClusterComparison(cfg)
	if err != nil {
		return err
	}
	rec := loadgen.NewClusterBenchRecord(cfg, cmp, runtime.GOMAXPROCS(0),
		time.Now().UTC().Format(time.RFC3339))

	t := exptab.New(fmt.Sprintf("Sharded cluster: closed-loop load, %d clients × %d jobs, %d shapes over %d nodes",
		cfg.Clients, cfg.JobsPerClient, rec.Shapes, cfg.Nodes),
		"topology", "jobs", "elapsed-ms", "jobs/s", "p50-ms", "p99-ms")
	t.Add(fmt.Sprintf("%d-node cluster", cfg.Nodes), cmp.Cluster.Jobs, cmp.Cluster.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Cluster.ThroughputJobsPerSec),
		cmp.Cluster.LatencyP50Ns/1e6, cmp.Cluster.LatencyP99Ns/1e6)
	t.Add("single node", cmp.Single.Jobs, cmp.Single.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Single.ThroughputJobsPerSec),
		cmp.Single.LatencyP50Ns/1e6, cmp.Single.LatencyP99Ns/1e6)
	t.Fprint(w)
	fmt.Fprintf(w, "\ncluster speedup: %.2fx (gate ≥%.1fx)   shape spread: %s   parity vs standalone runs: %t\n",
		rec.Speedup, clusterGateMinSpeedup, cmp.OwnerTable(), cmp.ParityOK)
	fmt.Fprintf(w, "drain exercise: %d queued jobs migrated off their node, all re-executed bit-identically: %t\n",
		cmp.Migrated, cmp.DrainParityOK)

	path := os.Getenv("BENCH_CLUSTER_PATH")
	if path == "" {
		path = "BENCH_cluster.json"
	}
	if err := rec.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(w, "record written to %s\n", path)

	exptab.StepSummary("### Sharded cluster (3 nodes vs 1)\n"+
		"| metric | value | gate |\n|---|---|---|\n"+
		"| cluster throughput | %.1f jobs/s | — |\n"+
		"| single-node throughput | %.1f jobs/s | — |\n"+
		"| speedup | %.2fx | ≥%.1fx |\n"+
		"| drain-migrated jobs | %d | >0, bit-identical |\n"+
		"| parity | %t | must hold |",
		rec.ClusterThroughput, rec.SingleThroughput, rec.Speedup, clusterGateMinSpeedup,
		rec.Migrated, rec.ParityOK && rec.DrainParityOK)

	if rec.Speedup < clusterGateMinSpeedup {
		msg := fmt.Sprintf("cluster speedup %.2fx below the %.1fx gate (cluster %.1f vs single %.1f jobs/s)",
			rec.Speedup, clusterGateMinSpeedup, rec.ClusterThroughput, rec.SingleThroughput)
		// The 3 per-node workers plus the closed-loop clients need
		// real parallelism; gating the ratio on a 2-core host would
		// only measure oversubscription.
		if os.Getenv("BENCH_CLUSTER_GATE") != "" && runtime.NumCPU() >= 4 {
			return fmt.Errorf("cluster: %s", msg)
		}
		fmt.Fprintf(w, "WARNING: %s on this host\n", msg)
	}
	return nil
}
