package experiments

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"starmesh/internal/exptab"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/perm"
	"starmesh/internal/simd"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// planSweep runs the standard mesh-route sweep on S_n with plans
// enabled or disabled and returns the machine's final counters, port
// uses, a register checksum and the wall time of a second (warm)
// sweep — recording cost excluded, so the timing isolates replay vs
// closure resolution.
func planSweep(n int, plans bool) (simd.Stats, []int64, int64, time.Duration) {
	// machineOpts first so the -engine flag applies; the plans toggle
	// under test overrides any -plan setting.
	m := starsim.New(n, append(machineOpts(), simd.WithPlans(plans))...)
	workload.EngineSweep(m) // warm: records plans / builds route tables
	m.ResetStats()
	start := time.Now()
	workload.EngineSweep(m)
	elapsed := time.Since(start)
	return m.Stats(), m.PortUses(), workload.RegChecksum(m, "W"), elapsed
}

// PlansParity checks the compiled-route-plan contract: replaying a
// plan must be bit-identical — Stats, PortUses, registers, conflict
// counts — to resolving the same schedule through PortFunc closures,
// including on schedules with deliberate receive conflicts and on a
// machine that only ever replays plans recorded by another machine.
// Timings are reported for context; the correctness columns are the
// experiment.
func PlansParity(w io.Writer) error {
	t := exptab.New("Compiled route plans: replay vs closure resolution (mesh-route sweep on S_n)",
		"n", "PEs", "unit-routes", "conflicts", "stats-identical", "uses-identical", "regs-identical")
	type timing struct {
		n                    int
		closureTime, repTime time.Duration
	}
	var timings []timing
	for n := 4; n <= 7; n++ {
		cStats, cUses, cSum, cTime := planSweep(n, false)
		pStats, pUses, pSum, pTime := planSweep(n, true)
		statsOK := cStats == pStats
		usesOK := reflect.DeepEqual(cUses, pUses)
		regsOK := cSum == pSum
		t.Add(n, int(perm.Factorial(n)), cStats.UnitRoutes, cStats.ReceiveConflicts,
			statsOK, usesOK, regsOK)
		if !statsOK || !usesOK || !regsOK {
			return fmt.Errorf("plan replay diverged from closure resolution at n=%d", n)
		}
		timings = append(timings, timing{n, cTime, pTime})
	}
	t.Fprint(w)

	// A deliberately conflicting schedule: on a 1×16 mesh every PE
	// transmits toward the center, so the center cell receives two
	// messages per route. Conflict counts and the first-message-wins
	// delivery must survive compilation.
	conflictRun := func(plans bool) (simd.Stats, []int64) {
		m := meshsim.New(mesh.New(16), append(machineOpts(), simd.WithPlans(plans))...)
		m.AddReg("V")
		m.AddReg("W")
		m.Set("V", func(pe int) int64 { return int64(pe + 1) })
		toward := func(pe int) int {
			if pe < 8 {
				return meshsim.Port(0, +1)
			}
			return meshsim.Port(0, -1)
		}
		schedule := func() { m.RouteB("V", "W", toward) }
		if plans {
			// Record once, replay twice — both executions must count
			// the conflict again.
			plan := m.Record(schedule)
			m.Replay(plan)
			m.Replay(plan)
		} else {
			schedule()
			schedule()
			schedule()
		}
		return m.Stats(), append([]int64(nil), m.Reg("W")...)
	}
	cStats, cRegs := conflictRun(false)
	pStats, pRegs := conflictRun(true)
	if cStats != pStats || !reflect.DeepEqual(cRegs, pRegs) {
		return fmt.Errorf("conflicting schedule diverged under plan replay: closure %+v, plan %+v", cStats, pStats)
	}
	if cStats.ReceiveConflicts == 0 {
		return fmt.Errorf("conflict schedule produced no conflicts — parity check is vacuous")
	}
	fmt.Fprintf(w, "\nconflict schedule: %d receive conflicts, identical under replay: true\n",
		pStats.ReceiveConflicts)

	// Cross-machine reuse: record the sweep's plans on one machine,
	// then run a second machine of the same shape that replays them
	// from the shared cache.
	planOn := append(machineOpts(), simd.WithPlans(true))
	recorder := starsim.New(5, planOn...)
	workload.EngineSweep(recorder)
	replayer := starsim.New(5, planOn...)
	workload.EngineSweep(replayer)
	if recorder.Stats() != replayer.Stats() ||
		workload.RegChecksum(recorder, "W") != workload.RegChecksum(replayer, "W") {
		return fmt.Errorf("plan reuse across machines diverged")
	}
	fmt.Fprintf(w, "cross-machine reuse (S_5): second machine replayed shared plans, results identical: true\n")

	fmt.Fprintf(w, "\nmeasured on this host with GOMAXPROCS=%d (informative, not part of the parity check):\n",
		runtime.GOMAXPROCS(0))
	for _, tm := range timings {
		speedup := float64(tm.closureTime) / float64(tm.repTime)
		fmt.Fprintf(w, "  n=%d: closure %v, replay %v (speedup %.2fx)\n",
			tm.n, tm.closureTime.Round(time.Microsecond), tm.repTime.Round(time.Microsecond), speedup)
	}
	return nil
}
