package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"time"

	"starmesh/internal/exptab"
	"starmesh/internal/loadgen"
	"starmesh/internal/serve"
)

// Gate limits for the tenant fairness bench: under contention a
// light tenant's p99 queue wait may grow to at most twice its solo
// baseline (the theoretical WFQ shift here is total-weight /
// lights-only-weight = 5/3), and every tenant's throughput share
// must land within 15% of its weight share.
const (
	tenantWaitRatioLimit = 2.0
	tenantShareErrLimit  = 0.15
)

// TenantFairness measures the weighted-fair-queueing promise end to
// end: one hot tenant (weight 2, 8 closed-loop clients) floods the
// queue while three light tenants (weight 1, 3 clients each) keep
// working, all through per-tenant API keys on the v1 surface. Phase
// one runs the lights alone — their solo queue-wait p99 is the
// baseline. Phase two adds the hot tenant. Under the old single
// FIFO the hot backlog would stretch every light job's wait by the
// hot tenant's queue share (~3-4x here); under DRR the light
// tenants' wait grows only by the service-share shift (5/3) and
// throughput splits by weight. The record lands in
// BENCH_tenants.json (path overridable via BENCH_TENANTS_PATH);
// when BENCH_TENANTS_GATE is set — CI's fairness job sets it — the
// experiment fails if the wait ratio exceeds 2x or any share
// deviates more than 15% from its weight.
func TenantFairness(w io.Writer) error {
	cfg := loadgen.FairnessConfig{
		// Two workers, not GOMAXPROCS: the fairness ratios depend on
		// the service share per tenant, so the bench pins the worker
		// count to keep the measurement comparable across hosts.
		Workers: 2,
		Queue:   64,
		Hot:     loadgen.TenantClass{Name: "hot", Key: "key-hot", Weight: 2, Clients: 8},
		Lights: []loadgen.TenantClass{
			{Name: "light-a", Key: "key-a", Weight: 1, Clients: 3},
			{Name: "light-b", Key: "key-b", Weight: 1, Clients: 3},
			{Name: "light-c", Key: "key-c", Weight: 1, Clients: 3},
		},
		// The spec must be heavy enough (~7ms of execution) that the
		// two workers saturate and a real backlog forms — only a
		// backlogged queue exercises DRR; with cheap jobs the queue
		// drains instantly and shares track client counts instead of
		// weights.
		Spec:   serve.JobSpec{Kind: serve.KindShear, Rows: 32, Cols: 32, Dist: "reversed", Seed: 7},
		Phase:  1500 * time.Millisecond,
		Warmup: 300 * time.Millisecond,
	}
	// BENCH_TENANTS_PHASE_MS shrinks the measurement window (the
	// experiment test suite sets it; CI's fairness job runs the full
	// default). Warmup scales with it.
	if ms := os.Getenv("BENCH_TENANTS_PHASE_MS"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n <= 0 {
			return fmt.Errorf("tenants: bad BENCH_TENANTS_PHASE_MS %q", ms)
		}
		cfg.Phase = time.Duration(n) * time.Millisecond
		cfg.Warmup = cfg.Phase / 5
	}
	res, err := loadgen.RunFairness(cfg)
	if err != nil {
		return err
	}

	printPhase := func(title string, ph loadgen.PhaseResult) {
		t := exptab.New(title,
			"tenant", "weight", "clients", "jobs", "share", "want", "wait-p50-ms", "wait-p99-ms")
		for _, tr := range ph.Tenants {
			t.Add(tr.Tenant, tr.Weight, tr.Clients, tr.Jobs,
				fmt.Sprintf("%.3f", tr.Share), fmt.Sprintf("%.3f", tr.WantShare),
				fmt.Sprintf("%.2f", float64(tr.QueueWaitP50Ns)/1e6),
				fmt.Sprintf("%.2f", float64(tr.QueueWaitP99Ns)/1e6))
		}
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	printPhase(fmt.Sprintf("Tenant fairness, baseline: %d light tenants alone, %.1fs phase",
		len(cfg.Lights), cfg.Phase.Seconds()), res.Baseline)
	printPhase("Tenant fairness, contended: hot tenant added", res.Contended)
	fmt.Fprintf(w, "light-tenant queue-wait p99: solo %.2fms -> contended %.2fms (ratio %.2fx, limit %.1fx)\n",
		float64(res.BaselineLightP99Ns)/1e6, float64(res.ContendedLightP99Ns)/1e6,
		res.WaitRatio, tenantWaitRatioLimit)
	fmt.Fprintf(w, "worst throughput-share deviation from weight: %.1f%% (limit %.0f%%)\n",
		100*res.MaxShareErr, 100*tenantShareErrLimit)

	gated := os.Getenv("BENCH_TENANTS_GATE") != ""
	rec := loadgen.TenantBenchRecord{
		Benchmark:       "serve-multi-tenant-wfq-fairness",
		API:             "v1-typed-client-api-key",
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Workers:         cfg.Workers,
		Queue:           cfg.Queue,
		Hot:             cfg.Hot,
		Lights:          cfg.Lights,
		Spec:            cfg.Spec.Name(),
		Result:          res,
		WaitRatioLimit:  tenantWaitRatioLimit,
		ShareErrLimit:   tenantShareErrLimit,
		GatesEnforced:   gated,
		WaitRatioOK:     res.WaitRatio <= tenantWaitRatioLimit,
		ShareFairnessOK: res.MaxShareErr <= tenantShareErrLimit,
	}
	path := os.Getenv("BENCH_TENANTS_PATH")
	if path == "" {
		path = "BENCH_tenants.json"
	}
	if err := rec.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(w, "record written to %s\n", path)

	exptab.StepSummary("### Tenant fairness (WFQ)\n"+
		"| metric | value | limit |\n|---|---|---|\n"+
		"| light p99 wait ratio (contended/solo) | %.2fx | %.1fx |\n"+
		"| worst share deviation from weight | %.1f%% | %.0f%% |\n"+
		"| contended jobs | %d | — |",
		res.WaitRatio, tenantWaitRatioLimit,
		100*res.MaxShareErr, 100*tenantShareErrLimit, res.Contended.Jobs)

	if !rec.WaitRatioOK {
		msg := fmt.Sprintf("light-tenant p99 wait grew %.2fx under contention (limit %.1fx; solo %.2fms, contended %.2fms)",
			res.WaitRatio, tenantWaitRatioLimit,
			float64(res.BaselineLightP99Ns)/1e6, float64(res.ContendedLightP99Ns)/1e6)
		if gated {
			return fmt.Errorf("tenants: %s", msg)
		}
		fmt.Fprintf(w, "WARNING: %s on this host\n", msg)
	}
	if !rec.ShareFairnessOK {
		msg := fmt.Sprintf("throughput shares deviate %.1f%% from weights (limit %.0f%%)",
			100*res.MaxShareErr, 100*tenantShareErrLimit)
		if gated {
			return fmt.Errorf("tenants: %s", msg)
		}
		fmt.Fprintf(w, "WARNING: %s on this host\n", msg)
	}
	return nil
}
