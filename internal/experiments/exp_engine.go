package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"starmesh/internal/exptab"
	"starmesh/internal/perm"
	"starmesh/internal/simd"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// engineSweep runs the standard engine workload (workload.EngineSweep:
// every dimension, both directions) on S_n under the given executor
// and returns the machine's final counters, a register checksum and
// the wall time.
func engineSweep(n int, exec simd.Executor) (simd.Stats, int64, time.Duration) {
	// Plans off: this experiment measures the executors' closure
	// resolution; the plans experiment covers replay.
	m := starsim.New(n, simd.WithExecutor(exec), simd.WithPlans(false))
	defer m.Close()
	start := time.Now()
	workload.EngineSweep(m)
	elapsed := time.Since(start)
	return m.Stats(), workload.RegChecksum(m, "W"), elapsed
}

// EngineParity compares the sharded parallel execution engine
// against the sequential reference on star machines of growing size:
// identical Stats and register checksums are required (the engine's
// determinism contract), and the measured speedup is reported for
// context (timings vary by host; the table's correctness columns do
// not).
func EngineParity(w io.Writer) error {
	t := exptab.New("Execution engine: sharded parallel vs sequential (mesh-route sweep on S_n)",
		"n", "PEs", "unit-routes", "conflicts", "stats-identical", "regs-identical")
	workers := runtime.GOMAXPROCS(0)
	type timing struct {
		n                int
		seqTime, parTime time.Duration
	}
	var timings []timing
	for n := 4; n <= 7; n++ {
		seqStats, seqSum, seqTime := engineSweep(n, simd.Sequential())
		parStats, parSum, parTime := engineSweep(n, simd.Parallel(0))
		statsOK := seqStats == parStats
		regsOK := seqSum == parSum
		t.Add(n, int(perm.Factorial(n)), seqStats.UnitRoutes,
			seqStats.ReceiveConflicts, statsOK, regsOK)
		if !statsOK || !regsOK {
			return fmt.Errorf("parallel engine diverged from sequential at n=%d", n)
		}
		timings = append(timings, timing{n, seqTime, parTime})
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\nmeasured on this host with %d workers (informative, not part of the parity check):\n", workers)
	for _, tm := range timings {
		speedup := float64(tm.seqTime) / float64(tm.parTime)
		fmt.Fprintf(w, "  n=%d: sequential %v, parallel %v (speedup %.2fx)\n",
			tm.n, tm.seqTime.Round(time.Microsecond), tm.parTime.Round(time.Microsecond), speedup)
	}
	return nil
}
