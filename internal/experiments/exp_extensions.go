package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/atallah"
	"starmesh/internal/exptab"
	"starmesh/internal/mesh"
	"starmesh/internal/meshops"
	"starmesh/internal/meshsim"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// EmbedRectExperiment measures the extension embedding: every
// appendix factorization R = l_1×…×l_d of n! embeds into S_n with
// expansion 1 and dilation 3 (grouped snake + Lemma-2 paths).
func EmbedRectExperiment(w io.Writer) error {
	t := exptab.New("Extension: d-dimensional rectangular meshes on S_n",
		"n", "d", "sides", "expansion", "dilation", "avg-dilation", "congestion")
	for _, c := range [][2]int{{4, 2}, {5, 2}, {5, 3}, {6, 2}, {6, 3}, {6, 4}} {
		e := atallah.EmbedRect(c[0], c[1])
		m := e.Measure()
		f := atallah.Factorize(c[0], c[1])
		t.Add(c[0], c[1], lString(f), m.Expansion, m.Dilation, m.AvgDilation, m.Congestion)
		if m.Dilation != 3 || m.Expansion != 1 {
			return fmt.Errorf("extension embedding broken at n=%d d=%d", c[0], c[1])
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nany appendix factorization embeds with the same dilation 3 as D_n itself,")
	fmt.Fprintln(w, "so star-graph programs may use any d-dimensional mesh view of the machine")
	return nil
}

// Collectives measures mesh-vs-star unit routes for the collective
// operations of package meshops (reduction, broadcast, scan, shift).
func Collectives(w io.Writer) error {
	t := exptab.New("Collectives on D_n vs on S_n through the embedding",
		"n", "operation", "mesh-routes", "star-routes", "ratio", "results-equal")
	type runner struct {
		name string
		run  func(s meshops.Stepper) int
	}
	runs := []runner{
		{"reduce(sum)", func(s meshops.Stepper) int { return meshops.ReduceAll(s, "K", meshops.Sum) }},
		{"reduce(max)", func(s meshops.Stepper) int { return meshops.ReduceAll(s, "K", meshops.Max) }},
		{"broadcast", func(s meshops.Stepper) int { return meshops.BroadcastAll(s, "K") }},
		{"scan(sum)", func(s meshops.Stepper) int { return meshops.ScanSnake(s, "K", meshops.Sum) }},
		{"shift-snake", func(s meshops.Stepper) int { return meshops.ShiftSnake(s, "K", 0) }},
	}
	for _, n := range []int{4, 5} {
		dn := mesh.D(n)
		vals := workload.Keys(workload.Uniform, dn.Order(), int64(n))
		for _, r := range runs {
			mm := meshsim.New(mesh.New(dn.Sizes()...), machineOpts()...)
			mm.AddReg("K")
			ms := meshops.NewMeshStepper(mm)
			load(ms, vals)
			meshRoutes := r.run(ms)

			sm := starsim.New(n, machineOpts()...)
			sm.AddReg("K")
			ss := meshops.NewStarStepper(sm)
			load(ss, vals)
			starRoutes := r.run(ss)

			equal := true
			for id := 0; id < dn.Order(); id++ {
				if get(ms, id) != get(ss, id) {
					equal = false
				}
			}
			ratio := float64(starRoutes) / float64(meshRoutes)
			t.Add(n, r.name, meshRoutes, starRoutes, fmt.Sprintf("%.2f", ratio), equal)
			if !equal || ratio > 3.0001 {
				return fmt.Errorf("collective %s broken at n=%d", r.name, n)
			}
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nevery collective transfers at the Theorem-6 factor <= 3 with identical results")
	return nil
}

func load(s meshops.Stepper, vals []int64) {
	k := s.Machine().Reg("K")
	for pe := range k {
		k[pe] = vals[s.MeshOf(pe)]
	}
}

func get(s meshops.Stepper, meshID int) int64 {
	return s.Machine().Reg("K")[s.PEOf(meshID)]
}
