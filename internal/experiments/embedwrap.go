package experiments

import (
	"starmesh/internal/embed"
	"starmesh/internal/graphalg"
)

// embedWrapper wraps embed.Embedding with a direction-insensitive
// path table for the small hand-built examples.
type embedWrapper struct {
	*embed.Embedding
}

func newEmbedWrapper(g, s graphalg.Graph, vm []int, paths map[[2]int][]int) *embedWrapper {
	e := &embed.Embedding{Guest: g, Host: s, VertexMap: vm}
	e.Path = func(u, v int) []int {
		if p, ok := paths[[2]int{u, v}]; ok {
			return p
		}
		p := paths[[2]int{v, u}]
		r := make([]int, len(p))
		for i := range p {
			r[i] = p[len(p)-1-i]
		}
		return r
	}
	return &embedWrapper{Embedding: e}
}
