package experiments

import (
	"context"
	"fmt"
	"io"

	"starmesh/internal/exptab"
	"starmesh/internal/workload"
)

// ScenarioSmoke runs one small representative spec of EVERY
// registered scenario family through the registry's standalone path
// and prints the catalog next to the measured results — the living
// proof that each kind is runnable from cmd/experiments with zero
// per-kind wiring here. A failing self-check or a scenario error
// fails the experiment.
func ScenarioSmoke(w io.Writer) error {
	t := exptab.New(fmt.Sprintf("Scenario registry: %d families, demo spec each", len(workload.Kinds())),
		"kind", "name", "shape", "unit-routes", "conflicts", "ok")
	for _, spec := range workload.DemoSpecs() {
		sc, err := workload.ScenarioFor(spec, engineOpts...)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", spec.Kind, err)
		}
		res, err := sc.Run(context.Background())
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if !res.OK {
			return fmt.Errorf("scenario %s failed its self-check: %+v", sc.Name, res)
		}
		t.Add(spec.Kind, sc.Name, spec.Shape(), res.UnitRoutes, res.Conflicts, res.OK)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\ncatalog (registry-generated, mirrored in README):\n\n%s", workload.CatalogMarkdown())
	return nil
}
