package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/core"
	"starmesh/internal/exptab"
	"starmesh/internal/graphalg"
	"starmesh/internal/hypercube"
	"starmesh/internal/mesh"
	"starmesh/internal/meshops"
	"starmesh/internal/perm"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
)

// Theorem6UnitRoute runs one unit route of the embedded mesh along
// every dimension/direction on the SIMD star machine and reports
// routes used, conflicts (must be 0, Lemma 5), and SIMD-A route
// counts.
func Theorem6UnitRoute(w io.Writer) error {
	t := exptab.New("Theorem 6: one mesh unit route on the star machine",
		"n", "dim", "dir", "star-routes(B)", "conflicts", "star-routes(A)", "data-ok")
	for n := 3; n <= 6; n++ {
		dn := mesh.D(n)
		for k := 1; k <= n-1; k++ {
			for _, dir := range []int{+1, -1} {
				m := starsim.New(n, machineOpts()...)
				m.AddReg("V")
				m.AddReg("W")
				m.Set("V", func(pe int) int64 { return int64(pe) })
				m.Set("W", func(pe int) int64 { return -1 })
				routes, conflicts := m.MeshUnitRoute("V", "W", k, dir)
				ok := true
				for u := 0; u < dn.Order(); u++ {
					v := dn.Step(u, k-1, dir)
					if v == -1 {
						continue
					}
					if m.Reg("W")[core.MapID(n, v)] != int64(core.MapID(n, u)) {
						ok = false
					}
				}
				ma := starsim.New(n, machineOpts()...)
				ma.AddReg("V")
				ma.AddReg("W")
				ma.Set("V", func(pe int) int64 { return int64(pe) })
				routesA := ma.MeshUnitRouteModelA("V", "W", k, dir)
				dirStr := "+"
				if dir < 0 {
					dirStr = "-"
				}
				t.Add(n, k, dirStr, routes, conflicts, routesA, ok)
				if conflicts != 0 || !ok || routes > 3 {
					return fmt.Errorf("Theorem 6 violated at n=%d k=%d dir=%d", n, k, dir)
				}
			}
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\npaper: <=3 SIMD-B routes (Theorem 6); SIMD-A costs an extra O(n) factor (Section 4)")
	return nil
}

// StarProperties reproduces the §2 property list and the intro's
// hypercube comparison: for each n, the star S_n against the
// smallest hypercube with at least n! nodes.
func StarProperties(w io.Writer) error {
	t := exptab.New("Star graph vs hypercube (hypercube chosen with >= n! nodes)",
		"n", "star-nodes", "star-degree", "star-diam(formula)", "star-diam(BFS)",
		"avg-dist", "cube-dim", "cube-nodes", "cube-degree", "cube-diam")
	for n := 3; n <= 8; n++ {
		g := star.New(n)
		bfsDiam := -1
		avg := -1.0
		if n <= 7 { // full BFS cheap up to 5040 nodes
			bfsDiam = graphalg.DiameterFromVertex(g)
			avg = graphalg.AvgDistance(g, 0)
		}
		d := hypercube.MinDimFor(perm.Factorial(n))
		q := hypercube.New(d)
		bfsStr := "-"
		if bfsDiam >= 0 {
			bfsStr = fmt.Sprint(bfsDiam)
		}
		avgStr := "-"
		if avg >= 0 {
			avgStr = fmt.Sprintf("%.2f", avg)
		}
		t.Add(n, perm.Factorial(n), n-1, star.DiameterFormula(n), bfsStr,
			avgStr, d, q.Order(), d, q.Diameter())
		if bfsDiam >= 0 && bfsDiam != star.DiameterFormula(n) {
			return fmt.Errorf("diameter formula violated at n=%d", n)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\npaper/[AKER87]: with degree n-1 the star connects n! nodes vs 2^(n-1) for the hypercube;")
	fmt.Fprintln(w, "star diameter floor(3(n-1)/2) is asymptotically superior to the hypercube's log2 N")
	return nil
}

// Broadcast measures single-source broadcast rounds on S_n with
// four algorithms: greedy SIMD-B flooding, the sub-star-structured
// recursion ([AKER87] spirit), the SIMD-A generator sweep, and the
// route through the embedded mesh (dimension broadcasts × Theorem 6).
func Broadcast(w io.Writer) error {
	t := exptab.New("Broadcast on S_n (unit routes)",
		"n", "nodes", "greedy(B)", "substar-recursive(B)", "sweep(A)", "via-embedded-mesh(B)",
		"lower=ceil(lg n!)", "paper-bound")
	for n := 3; n <= 7; n++ {
		g := star.New(n)
		rounds := g.GreedyBroadcast(0)
		rec := g.RecursiveBroadcast(0)
		sweep := "-"
		if n <= 6 {
			sweep = fmt.Sprint(star.SweepBroadcast(n))
		}
		viaMesh := "-"
		if n <= 6 {
			sm := starsim.New(n, machineOpts()...)
			sm.AddReg("K")
			st := meshops.NewStarStepper(sm)
			sm.Reg("K")[st.PEOf(0)] = 1
			viaMesh = fmt.Sprint(meshops.BroadcastAll(st, "K"))
		}
		lo := star.BroadcastLowerBound(n)
		hi := star.BroadcastUpperBound(n)
		t.Add(n, g.Order(), rounds, rec, sweep, viaMesh, lo, fmt.Sprintf("%.1f", hi))
		if rounds < lo || float64(rounds) > hi {
			return fmt.Errorf("broadcast rounds out of bounds at n=%d", n)
		}
		if rec < lo || float64(rec) > hi {
			return fmt.Errorf("recursive broadcast out of bounds at n=%d", n)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nall algorithms sit under the paper's 3(n lg n - 3/2) bound; flooding through")
	fmt.Fprintln(w, "the embedded mesh costs ~3x the mesh diameter, more than direct graph flooding")
	return nil
}

// FaultTolerance verifies κ(S_n) = n-1 via max-flow and reports
// random fault survival.
func FaultTolerance(w io.Writer) error {
	t := exptab.New("Maximal fault tolerance: vertex connectivity of S_n",
		"n", "degree", "connectivity", "maximally-fault-tolerant")
	for n := 3; n <= 5; n++ {
		g := star.New(n)
		k := graphalg.VertexConnectivity(g, true)
		t.Add(n, n-1, k, k == n-1)
		if k != n-1 {
			return fmt.Errorf("connectivity %d != %d at n=%d", k, n-1, n)
		}
	}
	t.Fprint(w)

	// Removing any n-2 vertices keeps S_n connected (sampled for n=5).
	g := star.New(5)
	trials, survived := 200, 0
	for i := 0; i < trials; i++ {
		holes := pickHoles(g.Order(), 3, int64(i)) // n-2 = 3 faults
		probe := 0
		for contains(holes, probe) {
			probe++
		}
		if graphalg.ConnectedExcept(g, probe, holes...) {
			survived++
		}
	}
	fmt.Fprintf(w, "\nrandom fault injection on S5: %d/%d trials with n-2=3 faults stayed connected\n", survived, trials)
	if survived != trials {
		return fmt.Errorf("S5 disconnected by %d faults", 3)
	}
	return nil
}

func pickHoles(order, count int, seed int64) []int {
	// simple LCG to stay deterministic without importing math/rand here
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	var holes []int
	for len(holes) < count {
		x = x*6364136223846793005 + 1442695040888963407
		h := int(x % uint64(order))
		if !contains(holes, h) {
			holes = append(holes, h)
		}
	}
	return holes
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
