package experiments

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"runtime"
	"strconv"
	"time"

	"starmesh/internal/exptab"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// BenchCompare is the CI bench-regression gate: it repeats the S_8
// mesh-route sweep several times on one machine (first sweep warms
// route tables and compiled plans, then every repetition replays),
// folds the repetitions into a (min, median, max) interval, writes
// the interval record to BENCH_COMPARE_PATH (default
// BENCH_compare.json) and compares it against the committed baseline
// at BENCH_COMPARE_BASELINE (default BENCH_compare.json). A
// regression is declared only when the fresh throughput interval
// falls WHOLLY below the baseline interval scaled by
// BENCH_COMPARE_MARGIN (default 0.5, absorbing host-speed spread
// between the committing machine and CI runners) — overlapping
// intervals never gate, so a single noisy repetition cannot flake
// the build. The comparison fails the experiment only when
// BENCH_COMPARE_GATE is set (CI sets it).
func BenchCompare(w io.Writer) error {
	n := envInt("BENCH_COMPARE_N", 8)
	reps := envInt("BENCH_COMPARE_REPS", 5)
	if reps < 2 {
		return fmt.Errorf("bench-compare needs at least 2 repetitions for an interval, got %d", reps)
	}

	sm := starsim.New(n, engineOpts...)
	defer sm.Close()
	workload.EngineSweep(sm) // warmup: route tables + plan recording
	samples := make([]int64, reps)
	for i := range samples {
		sm.Reset()
		t0 := time.Now()
		workload.EngineSweep(sm)
		samples[i] = time.Since(t0).Nanoseconds()
	}
	rec := workload.NewCompareBenchRecord(n, sm.Size(), samples, runtime.GOMAXPROCS(0),
		time.Now().UTC().Format(time.RFC3339))

	t := exptab.New(fmt.Sprintf("Bench-regression interval: S_%d sweep × %d reps (%d PEs)", n, reps, sm.Size()),
		"metric", "min", "median", "max")
	t.Add("sweep ms", rec.SweepNs.MinNs/1e6, rec.SweepNs.MedianNs/1e6, rec.SweepNs.MaxNs/1e6)
	t.Add("sweeps/s", rec.SweepsPS.Min, rec.SweepsPS.Median, rec.SweepsPS.Max)
	t.Fprint(w)

	// Read the committed baseline BEFORE writing the fresh record, so
	// a default-path run (baseline and output are both
	// BENCH_compare.json) compares against the committed interval,
	// not against itself.
	basePath := envStr("BENCH_COMPARE_BASELINE", "BENCH_compare.json")
	baseline, err := workload.ReadCompareBenchRecord(basePath)

	// The fresh record defaults to a sibling name so a default run
	// (including `-run all`) can never overwrite the committed
	// baseline; recording a new baseline is the explicit act of
	// setting BENCH_COMPARE_PATH=BENCH_compare.json.
	path := envStr("BENCH_COMPARE_PATH", "BENCH_compare_new.json")
	if werr := rec.WriteJSON(path); werr != nil {
		return werr
	}
	fmt.Fprintf(w, "\nrecord written to %s\n", path)

	switch {
	case errors.Is(err, fs.ErrNotExist):
		fmt.Fprintf(w, "no committed baseline at %s; record it to arm the gate\n", basePath)
		return nil
	case err != nil:
		return err
	}
	margin := envFloat("BENCH_COMPARE_MARGIN", 0.5)
	regressed, verdict := rec.RegressionAgainst(baseline, margin)
	fmt.Fprintf(w, "baseline %s (%s): %s\n", basePath, baseline.Timestamp, verdict)
	exptab.StepSummary("### Bench-compare (S_%d sweep × %d)\n"+
		"sweeps/s min/median/max: %.1f / %.1f / %.1f — %s",
		n, reps, rec.SweepsPS.Min, rec.SweepsPS.Median, rec.SweepsPS.Max, verdict)
	if regressed {
		msg := fmt.Sprintf("bench-compare: sweep throughput regressed: %s", verdict)
		if os.Getenv("BENCH_COMPARE_GATE") != "" {
			return errors.New(msg)
		}
		fmt.Fprintf(w, "WARNING: %s (gate off)\n", msg)
	}
	return nil
}

func envStr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func envFloat(key string, def float64) float64 {
	if v := os.Getenv(key); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}
