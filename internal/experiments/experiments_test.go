package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain routes the serve experiment's perf record to scratch so
// test runs never litter the package directory with BENCH_serve.json
// (the CLI and CI bench jobs write it at the repo root on purpose).
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "starmesh-bench")
	if err != nil {
		panic(err)
	}
	os.Setenv("BENCH_SERVE_PATH", filepath.Join(dir, "BENCH_serve.json"))
	// Shrink the interval bench so the experiment suite stays fast;
	// the CI bench-compare job runs the full S_8 default.
	os.Setenv("BENCH_COMPARE_PATH", filepath.Join(dir, "BENCH_compare.json"))
	os.Setenv("BENCH_COMPARE_BASELINE", filepath.Join(dir, "BENCH_compare.json"))
	os.Setenv("BENCH_COMPARE_N", "6")
	os.Setenv("BENCH_COMPARE_REPS", "3")
	// Route the fairness record to scratch too, and shrink its phases
	// so the suite stays fast; gate ratios are only meaningful on the
	// full window CI runs.
	os.Setenv("BENCH_TENANTS_PATH", filepath.Join(dir, "BENCH_tenants.json"))
	os.Setenv("BENCH_TENANTS_PHASE_MS", "400")
	// Same for the cluster record, with a shrunk closed loop; CI's
	// cluster job runs the full default and gates the speedup.
	os.Setenv("BENCH_CLUSTER_PATH", filepath.Join(dir, "BENCH_cluster.json"))
	os.Setenv("BENCH_CLUSTER_JOBS", "4")
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s failed: %v\noutput:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Get("fig7"); !ok {
		t.Fatalf("fig7 missing")
	}
	if _, ok := Get("nope"); ok {
		t.Fatalf("bogus id found")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs length mismatch")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted")
		}
	}
}

func TestFig7OutputContainsPaperRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7Mapping(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(0,0,0)", "(3 2 1 0)", "(3,0,1)", "(0 3 1 2)", "all 24 rows match"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 6") {
		t.Fatalf("RunAll output incomplete")
	}
}
