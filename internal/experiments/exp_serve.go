package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"starmesh/internal/exptab"
	"starmesh/internal/loadgen"
	"starmesh/internal/serve"
)

// serveSpecs is the mixed workload the load generator drives. The
// S_7 sweep and broadcast jobs are the service's bread and butter:
// 5040-PE machines whose construction (neighbor table, permutation
// cache, Lemma-3 route tables, plan binding/validation) costs far
// more than their short replayed schedules — exactly the fraction
// per-shape pooling amortizes away. Sort/shear/faultroute jobs mix
// in longer schedules and the other machine shapes.
// The list spans every registry family, so the pooled-vs-unpooled
// parity assertion covers the full scenario surface.
func serveSpecs() []serve.JobSpec {
	return []serve.JobSpec{
		{Kind: serve.KindSweep, N: 7},
		{Kind: serve.KindBroadcast, N: 7, Source: 0},
		{Kind: serve.KindBroadcast, N: 7, Source: 1},
		{Kind: serve.KindSort, N: 5, Dist: "uniform", Seed: 42},
		{Kind: serve.KindShear, Rows: 16, Cols: 16, Dist: "reversed", Seed: 7},
		{Kind: serve.KindFaultRoute, N: 6, Faults: 4, Pairs: 16, Seed: 9},
		{Kind: serve.KindEmbedRect, N: 7, D: 3},
		{Kind: serve.KindPermRoute, N: 5, Pattern: "random", Seed: 11},
		{Kind: serve.KindVirtual, N: 4, Dist: "uniform", Seed: 13},
		{Kind: serve.KindDiagnostics, N: 6, Holes: 4, Trials: 4, Seed: 17},
		{Kind: serve.KindPipeline, N: 5, D: 2, Dist: "few-distinct", Seed: 19, Source: 1},
	}
}

// ServeLoad measures the simulation job service end to end: a
// closed-loop load generator drives the v1 HTTP API through the
// typed client — submit with 429 backpressure honored, completion
// observed over the watch stream — against two services, one with
// per-shape machine pooling and one building a machine per job.
// Parity is asserted before any timing is reported: every job
// result, pooled and unpooled, must be bit-identical (unit routes,
// conflicts, self-check) to a standalone workload run of the same
// seed. A third measurement repeats the pooled run on the WAL-backed
// durable store (a throwaway directory), isolating what durability
// costs. The record lands in BENCH_serve.json (path overridable via
// BENCH_SERVE_PATH); when BENCH_SERVE_GATE is set — CI's serve
// load-smoke job sets it — the experiment fails if pooled throughput
// falls below build-per-job or the WAL costs more than 10% of pooled
// throughput. The service runs its own engine configuration
// (sequential, plans on), so the -engine flag does not apply here.
func ServeLoad(w io.Writer) error {
	svcCfg := serve.Config{Workers: 0, Queue: 32}
	load := loadgen.LoadConfig{
		Clients:       2 * runtime.GOMAXPROCS(0),
		JobsPerClient: 10,
		Specs:         serveSpecs(),
		// Three interleaved reps per mode, best kept: single runs on a
		// shared CI host swing ±20%, far more than the pooling or WAL
		// deltas being gated.
		Reps: 3,
	}
	cmp, err := loadgen.RunComparison(svcCfg, load)
	if err != nil {
		return err
	}
	rec := loadgen.NewBenchRecord(svcCfg, load, cmp, runtime.GOMAXPROCS(0),
		time.Now().UTC().Format(time.RFC3339))

	t := exptab.New(fmt.Sprintf("Job service: closed-loop load, %d clients × %d jobs, %d spec shapes",
		load.Clients, load.JobsPerClient, len(load.Specs)),
		"mode", "jobs", "elapsed-ms", "jobs/s", "p50-ms", "p99-ms", "builds", "reuses")
	t.Add("pooled", cmp.Pooled.Jobs, cmp.Pooled.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Pooled.ThroughputJobsPerSec),
		cmp.Pooled.LatencyP50Ns/1e6, cmp.Pooled.LatencyP99Ns/1e6,
		cmp.PoolBuilds, cmp.PoolReuses)
	t.Add("build-per-job", cmp.Unpooled.Jobs, cmp.Unpooled.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Unpooled.ThroughputJobsPerSec),
		cmp.Unpooled.LatencyP50Ns/1e6, cmp.Unpooled.LatencyP99Ns/1e6,
		cmp.UnpooledBuilds, int64(0))
	t.Add("wal-durable", cmp.Durable.Jobs, cmp.Durable.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Durable.ThroughputJobsPerSec),
		cmp.Durable.LatencyP50Ns/1e6, cmp.Durable.LatencyP99Ns/1e6,
		"-", "-")
	t.Add("bare-noobs", cmp.Bare.Jobs, cmp.Bare.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Bare.ThroughputJobsPerSec),
		cmp.Bare.LatencyP50Ns/1e6, cmp.Bare.LatencyP99Ns/1e6,
		"-", "-")
	t.Fprint(w)
	fmt.Fprintf(w, "\nparity vs standalone runs: %t   pooled speedup: %.2fx   backpressure rejections: %d+%d+%d\n",
		cmp.ParityOK, rec.SpeedupPooled, cmp.Pooled.Rejected, cmp.Unpooled.Rejected, cmp.Durable.Rejected)
	fmt.Fprintf(w, "wal durability overhead: %.1f%% of pooled throughput (%d records logged, %d snapshots)\n",
		100*rec.WALOverheadFrac, rec.DurableWALRecords, rec.DurableSnapshots)
	fmt.Fprintf(w, "observability overhead: %.1f%% of bare throughput   scheduler queue-wait p99: %.2fms\n",
		100*rec.ObsOverheadFrac, float64(rec.PooledQueueWaitP99Ns)/1e6)

	path := os.Getenv("BENCH_SERVE_PATH")
	if path == "" {
		path = "BENCH_serve.json"
	}
	if err := rec.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(w, "record written to %s\n", path)
	exptab.StepSummary("### Serve load (closed loop)\n"+
		"| mode | jobs/s |\n|---|---|\n| pooled | %.1f |\n| build-per-job | %.1f |\n| wal-durable | %.1f |\n| bare-noobs | %.1f |\n\n"+
		"pooled speedup %.2fx · WAL overhead %.1f%% · obs overhead %.1f%% · parity %t",
		rec.PooledThroughput, rec.UnpooledThroughput, rec.DurableThroughput, rec.BareThroughput,
		rec.SpeedupPooled, 100*rec.WALOverheadFrac, 100*rec.ObsOverheadFrac, rec.ParityOK)

	if rec.SpeedupPooled < 1 {
		msg := fmt.Sprintf("pooled throughput (%.1f jobs/s) below build-per-job (%.1f jobs/s)",
			rec.PooledThroughput, rec.UnpooledThroughput)
		if os.Getenv("BENCH_SERVE_GATE") != "" {
			return fmt.Errorf("serve: %s", msg)
		}
		fmt.Fprintf(w, "WARNING: %s on this host\n", msg)
	}
	// The durability budget: the WAL must not cost more than 10% of
	// pooled throughput (every transition is one buffered append on
	// the submit/claim/finish path — it should be nearly free next to
	// job execution).
	if rec.WALOverheadFrac > walOverheadBudget {
		msg := fmt.Sprintf("wal overhead %.1f%% exceeds the %.0f%% budget (durable %.1f vs pooled %.1f jobs/s)",
			100*rec.WALOverheadFrac, 100*walOverheadBudget, rec.DurableThroughput, rec.PooledThroughput)
		if os.Getenv("BENCH_SERVE_GATE") != "" {
			return fmt.Errorf("serve: %s", msg)
		}
		fmt.Fprintf(w, "WARNING: %s on this host\n", msg)
	}
	// The observability budget: counters, histograms and trace appends
	// must not cost more than 5% of bare (NoObs) throughput — the
	// instruments are lock-free atomics and the per-job trace is a
	// handful of appends, so anything above that is a hot-path
	// regression.
	if rec.ObsOverheadFrac > obsOverheadBudget {
		msg := fmt.Sprintf("observability overhead %.1f%% exceeds the %.0f%% budget (pooled %.1f vs bare %.1f jobs/s)",
			100*rec.ObsOverheadFrac, 100*obsOverheadBudget, rec.PooledThroughput, rec.BareThroughput)
		if os.Getenv("BENCH_SERVE_GATE") != "" {
			return fmt.Errorf("serve: %s", msg)
		}
		fmt.Fprintf(w, "WARNING: %s on this host\n", msg)
	}
	return nil
}

// walOverheadBudget is the gated ceiling on the durable store's
// throughput cost relative to the in-memory pooled run.
const walOverheadBudget = 0.10

// obsOverheadBudget is the gated ceiling on the metrics/trace
// instrumentation's throughput cost relative to the bare NoObs run.
const obsOverheadBudget = 0.05
