package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"starmesh/internal/exptab"
	"starmesh/internal/loadgen"
	"starmesh/internal/serve"
)

// serveSpecs is the mixed workload the load generator drives. The
// S_7 sweep and broadcast jobs are the service's bread and butter:
// 5040-PE machines whose construction (neighbor table, permutation
// cache, Lemma-3 route tables, plan binding/validation) costs far
// more than their short replayed schedules — exactly the fraction
// per-shape pooling amortizes away. Sort/shear/faultroute jobs mix
// in longer schedules and the other machine shapes.
// The list spans every registry family, so the pooled-vs-unpooled
// parity assertion covers the full scenario surface.
func serveSpecs() []serve.JobSpec {
	return []serve.JobSpec{
		{Kind: serve.KindSweep, N: 7},
		{Kind: serve.KindBroadcast, N: 7, Source: 0},
		{Kind: serve.KindBroadcast, N: 7, Source: 1},
		{Kind: serve.KindSort, N: 5, Dist: "uniform", Seed: 42},
		{Kind: serve.KindShear, Rows: 16, Cols: 16, Dist: "reversed", Seed: 7},
		{Kind: serve.KindFaultRoute, N: 6, Faults: 4, Pairs: 16, Seed: 9},
		{Kind: serve.KindEmbedRect, N: 7, D: 3},
		{Kind: serve.KindPermRoute, N: 5, Pattern: "random", Seed: 11},
		{Kind: serve.KindVirtual, N: 4, Dist: "uniform", Seed: 13},
		{Kind: serve.KindDiagnostics, N: 6, Holes: 4, Trials: 4, Seed: 17},
		{Kind: serve.KindPipeline, N: 5, D: 2, Dist: "few-distinct", Seed: 19, Source: 1},
	}
}

// ServeLoad measures the simulation job service end to end: a
// closed-loop load generator drives the v1 HTTP API through the
// typed client — submit with 429 backpressure honored, completion
// observed over the watch stream — against two services, one with
// per-shape machine pooling and one building a machine per job.
// Parity is asserted before any timing is reported: every job
// result, pooled and unpooled, must be bit-identical (unit routes,
// conflicts, self-check) to a standalone workload run of the same
// seed. The record lands in BENCH_serve.json (path overridable via
// BENCH_SERVE_PATH); when BENCH_SERVE_GATE is set — CI's serve
// load-smoke job sets it — the experiment fails if pooled throughput
// falls below build-per-job. The service runs its own engine
// configuration (sequential, plans on), so the -engine flag does not
// apply here.
func ServeLoad(w io.Writer) error {
	svcCfg := serve.Config{Workers: 0, Queue: 32}
	load := loadgen.LoadConfig{
		Clients:       2 * runtime.GOMAXPROCS(0),
		JobsPerClient: 10,
		Specs:         serveSpecs(),
	}
	cmp, err := loadgen.RunComparison(svcCfg, load)
	if err != nil {
		return err
	}
	rec := loadgen.NewBenchRecord(svcCfg, load, cmp, runtime.GOMAXPROCS(0),
		time.Now().UTC().Format(time.RFC3339))

	t := exptab.New(fmt.Sprintf("Job service: closed-loop load, %d clients × %d jobs, %d spec shapes",
		load.Clients, load.JobsPerClient, len(load.Specs)),
		"mode", "jobs", "elapsed-ms", "jobs/s", "p50-ms", "p99-ms", "builds", "reuses")
	t.Add("pooled", cmp.Pooled.Jobs, cmp.Pooled.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Pooled.ThroughputJobsPerSec),
		cmp.Pooled.LatencyP50Ns/1e6, cmp.Pooled.LatencyP99Ns/1e6,
		cmp.PoolBuilds, cmp.PoolReuses)
	t.Add("build-per-job", cmp.Unpooled.Jobs, cmp.Unpooled.ElapsedNs/1e6,
		fmt.Sprintf("%.1f", cmp.Unpooled.ThroughputJobsPerSec),
		cmp.Unpooled.LatencyP50Ns/1e6, cmp.Unpooled.LatencyP99Ns/1e6,
		cmp.UnpooledBuilds, int64(0))
	t.Fprint(w)
	fmt.Fprintf(w, "\nparity vs standalone runs: %t   pooled speedup: %.2fx   backpressure rejections: %d+%d\n",
		cmp.ParityOK, rec.SpeedupPooled, cmp.Pooled.Rejected, cmp.Unpooled.Rejected)

	path := os.Getenv("BENCH_SERVE_PATH")
	if path == "" {
		path = "BENCH_serve.json"
	}
	if err := rec.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(w, "record written to %s\n", path)

	if rec.SpeedupPooled < 1 {
		msg := fmt.Sprintf("pooled throughput (%.1f jobs/s) below build-per-job (%.1f jobs/s)",
			rec.PooledThroughput, rec.UnpooledThroughput)
		if os.Getenv("BENCH_SERVE_GATE") != "" {
			return fmt.Errorf("serve: %s", msg)
		}
		fmt.Fprintf(w, "WARNING: %s on this host\n", msg)
	}
	return nil
}
