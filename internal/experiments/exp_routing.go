package experiments

import (
	"fmt"
	"io"

	"starmesh/internal/exptab"
	"starmesh/internal/perm"
	"starmesh/internal/permroute"
	"starmesh/internal/star"
)

// PermRouting measures oblivious greedy routing of full permutation
// traffic on S_n — the unstructured counterpart of Theorem 6's
// conflict-free structured traffic.
func PermRouting(w io.Writer) error {
	t := exptab.New("Permutation routing on S_n (greedy, one message per link per step)",
		"n", "pattern", "steps", "dist-bound", "stretch", "avg-dist", "max-queue")
	for _, n := range []int{4, 5, 6} {
		order := int(perm.Factorial(n))
		patterns := []struct {
			name string
			dest []int
		}{
			{"random", permroute.RandomDest(order, 42)},
			{"reversal", permroute.ReversalDest(order)},
			{"inverse", permroute.InverseDest(n)},
			{"shift", permroute.ShiftDest(order)},
		}
		for _, p := range patterns {
			res := permroute.Route(n, p.dest)
			t.Add(n, p.name, res.Steps, res.MaxDist,
				fmt.Sprintf("%.2f", res.Stretch), fmt.Sprintf("%.2f", res.AvgDist), res.MaxQueue)
			if res.Steps < res.MaxDist {
				return fmt.Errorf("steps below distance bound for %s at n=%d", p.name, n)
			}
			val := permroute.RouteValiant(n, p.dest, 1234)
			t.Add(n, p.name+"+valiant", val.Steps, val.MaxDist,
				fmt.Sprintf("%.2f", val.Stretch), fmt.Sprintf("%.2f", val.AvgDist), val.MaxQueue)
		}
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\ndiameter of S_6 is %d; unstructured traffic queues (stretch > 1), while the\n",
		star.DiameterFormula(6))
	fmt.Fprintln(w, "embedding's unit-route traffic is conflict-free by construction (Theorem 6).")
	fmt.Fprintln(w, "Valiant's two-phase randomization roughly doubles hops; at these sizes greedy")
	fmt.Fprintln(w, "queueing is mild, so the insurance does not pay off yet")
	return nil
}

// SurfaceAreasExperiment tabulates the distance distribution of S_n
// from the closed-form distance (cross-checked against BFS in the
// test suite) — the data behind the §2 diameter and mean-distance
// claims.
func SurfaceAreasExperiment(w io.Writer) error {
	t := exptab.New("Distance distribution of S_n (nodes at each distance from a fixed node)",
		"n", "diameter", "mean-dist", "histogram d=0,1,2,...")
	for n := 3; n <= 7; n++ {
		hist := star.SurfaceAreas(n)
		s := ""
		for d, c := range hist {
			if d > 0 {
				s += " "
			}
			s += fmt.Sprint(c)
		}
		t.Add(n, star.DiameterFormula(n), fmt.Sprintf("%.3f", star.MeanDistance(n)), s)
		if len(hist)-1 != star.DiameterFormula(n) {
			return fmt.Errorf("histogram does not reach the diameter at n=%d", n)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nmean distance grows ~3(n-1)/4 while N = n! explodes — the asymptotic")
	fmt.Fprintln(w, "advantage over the hypercube claimed in the introduction")
	return nil
}
