package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real pool keys: topology/engine pairs.
		keys[i] = fmt.Sprintf("grid:%dx%d/unit|beam=%d", i%37, i/37, i%5)
	}
	return keys
}

func ownerCounts(r *Ring, keys []string) map[string]int {
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	return counts
}

// Distribution tracks the weights: a weight-2 node should own about
// twice the keys of a weight-1 node, every node within a reasonable
// tolerance of its expected share at DefaultVNodes.
func TestRingDistributionFollowsWeights(t *testing.T) {
	nodes := []Node{
		{Name: "a", URL: "http://a", Weight: 1},
		{Name: "b", URL: "http://b", Weight: 1},
		{Name: "c", URL: "http://c", Weight: 2},
	}
	r := NewRing(nodes, 0)
	keys := testKeys(20000)
	counts := ownerCounts(r, keys)
	totalWeight := 4.0
	for _, n := range nodes {
		want := float64(n.Weight) / totalWeight * float64(len(keys))
		got := float64(counts[n.Name])
		if got < 0.6*want || got > 1.4*want {
			t.Errorf("node %s (weight %d): got %v keys, want about %v (±40%%)", n.Name, n.Weight, got, want)
		}
	}
}

// Removing a node must move only the keys it owned; every key owned
// by a surviving node keeps its owner. That is the consistent-hash
// contract — no shuffling among survivors.
func TestRingRemovalMovesOnlyDepartedKeys(t *testing.T) {
	nodes := []Node{
		{Name: "a", URL: "http://a"},
		{Name: "b", URL: "http://b"},
		{Name: "c", URL: "http://c"},
		{Name: "d", URL: "http://d"},
	}
	before := NewRing(nodes, 0)
	after := NewRing(nodes[:3], 0) // drop d
	keys := testKeys(10000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was != "d" && was != is {
			t.Fatalf("key %q moved %s→%s though %s survived", k, was, is, was)
		}
		if was == "d" {
			moved++
		}
	}
	// d's share should be about 1/4; allow wide slack, the invariant
	// above is the real test.
	if moved == 0 || moved > len(keys)/2 {
		t.Errorf("moved %d of %d keys on removing 1 of 4 nodes, want about %d", moved, len(keys), len(keys)/4)
	}
}

// Adding a node must move keys only onto the new node.
func TestRingAddMovesKeysOnlyToNewNode(t *testing.T) {
	nodes := []Node{
		{Name: "a", URL: "http://a"},
		{Name: "b", URL: "http://b"},
		{Name: "c", URL: "http://c"},
	}
	before := NewRing(nodes, 0)
	after := NewRing(append(nodes, Node{Name: "d", URL: "http://d"}), 0)
	keys := testKeys(10000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was != is {
			if is != "d" {
				t.Fatalf("key %q moved %s→%s on adding d", k, was, is)
			}
			moved++
		}
	}
	want := len(keys) / 4
	if moved == 0 || moved > len(keys)/2 {
		t.Errorf("moved %d of %d keys on adding a 4th node, want about %d", moved, len(keys), want)
	}
}

// Ownership must be a pure function of the member set: shuffling the
// input order, or computing in another "process" (a fresh ring),
// changes nothing.
func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	nodes := []Node{
		{Name: "a", URL: "http://a", Weight: 2},
		{Name: "b", URL: "http://b"},
		{Name: "c", URL: "http://c", Weight: 3},
		{Name: "d", URL: "http://d"},
	}
	ref := NewRing(nodes, 0)
	keys := testKeys(5000)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Node(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 0)
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: owner(%q)=%s, want %s", trial, k, got, want)
			}
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	var nilRing *Ring
	if got := nilRing.Owner("k"); got != "" {
		t.Errorf("nil ring owner = %q, want empty", got)
	}
	if nilRing.Len() != 0 || nilRing.Nodes() != nil {
		t.Error("nil ring should be empty")
	}
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	one := NewRing([]Node{{Name: "solo", URL: "http://s"}}, 0)
	for _, k := range testKeys(100) {
		if one.Owner(k) != "solo" {
			t.Fatal("single-node ring must own every key")
		}
	}
	if one.Len() != 1 {
		t.Errorf("Len = %d, want 1", one.Len())
	}
	got := NewRing([]Node{{Name: "b", URL: "u"}, {Name: "a", URL: "u"}}, 8).Nodes()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Nodes() = %v, want sorted [a b]", got)
	}
}
