// The cluster map: the static membership document a sharded
// deployment is configured with (the -peers flag) and every node
// serves at GET /v1/cluster. The routing client boots from any
// node's copy and derives ownership through the ring — there is no
// membership protocol; changing the set means restarting with a new
// peer list (drain-with-migration makes that lossless for queued
// work).
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one cluster member.
type Node struct {
	// Name is the node's stable identity — the job-id namespace prefix
	// and the ring label. Must be unique, non-empty, and free of the
	// "/" the id namespace and the "=,;" the flag/cursor encodings use.
	Name string `json:"name"`
	// URL is the node's HTTP base (e.g. "http://10.0.0.7:8080").
	URL string `json:"url"`
	// Weight scales the node's ring share (≤ 0 means 1). A node with
	// weight 2 owns roughly twice the shapes of a weight-1 node.
	Weight int `json:"weight,omitempty"`
}

// Map is the cluster membership document.
type Map struct {
	// Nodes lists every member, including the serving node itself.
	Nodes []Node `json:"nodes"`
	// VNodes is the ring's virtual-node count per unit of weight
	// (0 = DefaultVNodes). All nodes and clients must agree on it;
	// it rides the map so they do.
	VNodes int `json:"vnodes,omitempty"`
}

// Validate checks the map is routable: at least one node, unique
// non-empty names without reserved characters, and a URL per node.
func (m Map) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: map has no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node with empty name (url %q)", n.URL)
		}
		if strings.ContainsAny(n.Name, "/=,; \t") {
			return fmt.Errorf("cluster: node name %q contains a reserved character (/ = , ; or whitespace)", n.Name)
		}
		if n.URL == "" {
			return fmt.Errorf("cluster: node %q has no url", n.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// Ring builds the map's ownership ring.
func (m Map) Ring() *Ring { return NewRing(m.Nodes, m.VNodes) }

// NodeURL resolves a member name to its base URL.
func (m Map) NodeURL(name string) (string, bool) {
	for _, n := range m.Nodes {
		if n.Name == name {
			return n.URL, true
		}
	}
	return "", false
}

// Without returns a copy of the map with one node removed — the
// surviving membership a drain routes migrated work against.
func (m Map) Without(name string) Map {
	out := Map{VNodes: m.VNodes}
	for _, n := range m.Nodes {
		if n.Name != name {
			out.Nodes = append(out.Nodes, n)
		}
	}
	return out
}

// ParsePeers parses the -peers flag format: a comma-separated list
// of name=url[*weight] entries, e.g.
//
//	n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080*2
//
// Order does not matter (ownership depends only on the set).
func ParsePeers(s string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want name=url[*weight])", part)
		}
		n := Node{Name: name, URL: rest}
		if url, w, ok := strings.Cut(rest, "*"); ok {
			var weight int
			if _, err := fmt.Sscanf(w, "%d", &weight); err != nil || weight < 1 {
				return nil, fmt.Errorf("cluster: bad peer weight in %q", part)
			}
			n.URL, n.Weight = url, weight
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes, nil
}

// QualifyID namespaces a node-local job id: "node/localid". Cluster
// reads parse the prefix to find the owning node, so no directory of
// job locations ever exists.
func QualifyID(node, localID string) string { return node + "/" + localID }

// SplitID splits a qualified cluster job id into its node and local
// parts; ok=false means the id carries no node prefix.
func SplitID(id string) (node, localID string, ok bool) {
	return strings.Cut(id, "/")
}
