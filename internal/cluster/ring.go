// The consistent-hash ring: ownership assignment that moves at most
// the departed (or arrived) node's share of keys on a membership
// change. Each member contributes weight×vnodesPerWeight points on a
// 64-bit circle; a key is owned by the first point clockwise of its
// hash. The hash function is fixed (FNV-64a), so two processes that
// agree on the member list agree on every owner without talking to
// each other.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per unit of weight. 160
// points per node keeps the ownership shares within a few percent of
// the weights for realistic key populations while the ring stays
// small enough to rebuild on every membership change.
const DefaultVNodes = 160

// Ring assigns string keys to node names by consistent hashing.
// Build one with NewRing; the zero value owns nothing.
type Ring struct {
	points []point
	names  []string
}

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node string
}

// hash64 is the ring's fixed hash: FNV-64a followed by a
// splitmix64-style finalizer. Raw FNV avalanches poorly on the short,
// nearly-identical strings vnode labels and pool keys are, which
// skews arc lengths badly; the finalizer spreads them. Determinism
// across processes and releases is part of the routing contract: a
// client and every server must compute identical owners from the
// same map, so this function must never change.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring from the member nodes. vnodesPerWeight ≤ 0
// means DefaultVNodes; a node's point count is weight×vnodesPerWeight
// (weight ≤ 0 counts as 1). Node order does not matter: the point set
// depends only on the (name, weight) pairs.
func NewRing(nodes []Node, vnodesPerWeight int) *Ring {
	if vnodesPerWeight <= 0 {
		vnodesPerWeight = DefaultVNodes
	}
	r := &Ring{}
	for _, n := range nodes {
		w := n.Weight
		if w <= 0 {
			w = 1
		}
		for i := 0; i < w*vnodesPerWeight; i++ {
			r.points = append(r.points, point{
				hash: hash64(fmt.Sprintf("%s#%d", n.Name, i)),
				node: n.Name,
			})
		}
		r.names = append(r.names, n.Name)
	}
	// Ties break by name so the ordering is total and input-order
	// independent (two distinct vnode labels colliding on a 64-bit
	// hash is vanishingly rare, but the sort must not depend on it).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	sort.Strings(r.names)
	return r
}

// Owner returns the node that owns a key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.points[i].node
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.names...)
}

// Len is the member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.names)
}
