// The compound pagination cursor: one per-node cursor string folded
// into a single opaque token, so the merged multi-node job listing
// pages with the same cursor-stability guarantee each node already
// gives. Encoding is plain "node=cursor;node=cursor" in sorted node
// order — deterministic, so equal cursor states compare equal as
// strings.
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// EncodeCursor folds per-node cursors into one token. Nodes with an
// empty cursor are kept (an empty per-node cursor means "start from
// the top of that node"); a nil or empty map encodes to "".
func EncodeCursor(per map[string]string) string {
	if len(per) == 0 {
		return ""
	}
	names := make([]string, 0, len(per))
	for n := range per {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, n+"="+per[n])
	}
	return strings.Join(parts, ";")
}

// DecodeCursor splits a compound token back into per-node cursors.
// "" decodes to an empty map (a fresh walk).
func DecodeCursor(s string) (map[string]string, error) {
	per := make(map[string]string)
	if s == "" {
		return per, nil
	}
	for _, part := range strings.Split(s, ";") {
		node, cur, ok := strings.Cut(part, "=")
		if !ok || node == "" {
			return nil, fmt.Errorf("cluster: bad cursor segment %q", part)
		}
		if _, dup := per[node]; dup {
			return nil, fmt.Errorf("cluster: duplicate cursor node %q", node)
		}
		per[node] = cur
	}
	return per, nil
}
