// Package cluster is the membership and ownership layer of a
// sharded starmesh deployment: N serve processes presented as one
// logical service.
//
// The pieces, bottom up:
//
//   - Ring: a consistent-hash ring over the member nodes, with
//     virtual nodes for uniformity and per-node weights. Ownership is
//     keyed by the machine-pool shape (the (topology, engine) pool
//     key from workload.Spec.Shape), so every job of one shape lands
//     on one node and its machine pool amortizes across the whole
//     cluster's traffic for that shape. The hash is FNV-64a — a fixed
//     function, so every process that sees the same member list
//     computes the same ownership; membership change moves only the
//     keys whose arcs the change touches (≤ 1/N of them in
//     expectation, and never a key between two surviving nodes).
//
//   - Map: the serializable membership document every node serves at
//     GET /v1/cluster and the routing client boots from. Any node can
//     answer; the map is static configuration (the -peers flag), not
//     a consensus protocol.
//
//   - Job-ID namespace: cluster job ids are "node/localid"
//     (QualifyID / SplitID), so a read routes to its owner by parsing
//     the id — no directory service, no lookup table.
//
//   - Cursor: the compound pagination cursor of the merged multi-node
//     job listing — one admission-sequence cursor per node, encoded
//     in a single opaque string, so a cluster-wide walk inherits each
//     node's cursor stability.
//
// The package deliberately has no dependency on internal/serve: the
// service imports cluster for its map types, and the typed client
// (starmesh/client) combines both into the routing layer.
package cluster
