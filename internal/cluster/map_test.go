package cluster

import (
	"reflect"
	"strings"
	"testing"
)

func TestMapValidate(t *testing.T) {
	valid := Map{Nodes: []Node{{Name: "n1", URL: "http://a"}, {Name: "n2", URL: "http://b"}}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
	cases := []struct {
		name string
		m    Map
		want string
	}{
		{"empty", Map{}, "no nodes"},
		{"blank name", Map{Nodes: []Node{{URL: "http://a"}}}, "empty name"},
		{"reserved char", Map{Nodes: []Node{{Name: "n/1", URL: "http://a"}}}, "reserved"},
		{"no url", Map{Nodes: []Node{{Name: "n1"}}}, "no url"},
		{"duplicate", Map{Nodes: []Node{{Name: "n1", URL: "http://a"}, {Name: "n1", URL: "http://b"}}}, "duplicate"},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestMapLookupsAndWithout(t *testing.T) {
	m := Map{Nodes: []Node{{Name: "n1", URL: "http://a"}, {Name: "n2", URL: "http://b"}}, VNodes: 16}
	if u, ok := m.NodeURL("n2"); !ok || u != "http://b" {
		t.Errorf("NodeURL(n2) = %q, %v", u, ok)
	}
	if _, ok := m.NodeURL("nope"); ok {
		t.Error("NodeURL should miss unknown node")
	}
	w := m.Without("n1")
	if len(w.Nodes) != 1 || w.Nodes[0].Name != "n2" || w.VNodes != 16 {
		t.Errorf("Without(n1) = %+v", w)
	}
	if len(m.Nodes) != 2 {
		t.Error("Without must not mutate the receiver")
	}
	if m.Ring().Len() != 2 {
		t.Error("Ring() should cover both nodes")
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("n2=http://b:8080, n1=http://a:8080*3,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{
		{Name: "n1", URL: "http://a:8080", Weight: 3},
		{Name: "n2", URL: "http://b:8080"},
	}
	if !reflect.DeepEqual(nodes, want) {
		t.Errorf("ParsePeers = %+v, want %+v", nodes, want)
	}
	for _, bad := range []string{"", "  ,  ", "justurl", "=http://a", "n1=", "n1=http://a*0", "n1=http://a*x"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) should fail", bad)
		}
	}
}

func TestQualifySplitID(t *testing.T) {
	id := QualifyID("n1", "job-000042")
	if id != "n1/job-000042" {
		t.Fatalf("QualifyID = %q", id)
	}
	node, local, ok := SplitID(id)
	if !ok || node != "n1" || local != "job-000042" {
		t.Fatalf("SplitID(%q) = %q, %q, %v", id, node, local, ok)
	}
	if _, _, ok := SplitID("job-000042"); ok {
		t.Error("SplitID without prefix should report !ok")
	}
}

func TestCursorRoundTrip(t *testing.T) {
	per := map[string]string{"n1": "job-000009", "n3": "", "n2": "job-000123"}
	enc := EncodeCursor(per)
	if enc != "n1=job-000009;n2=job-000123;n3=" {
		t.Fatalf("EncodeCursor = %q (must be deterministic, sorted)", enc)
	}
	dec, err := DecodeCursor(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, per) {
		t.Errorf("round trip = %v, want %v", dec, per)
	}
	if empty, err := DecodeCursor(""); err != nil || len(empty) != 0 {
		t.Errorf(`DecodeCursor("") = %v, %v`, empty, err)
	}
	if EncodeCursor(nil) != "" {
		t.Error("EncodeCursor(nil) should be empty")
	}
	for _, bad := range []string{"noequals", "=cur", "n1=a;n1=b"} {
		if _, err := DecodeCursor(bad); err == nil {
			t.Errorf("DecodeCursor(%q) should fail", bad)
		}
	}
}
