package cubesim

import (
	"math/rand"
	"testing"

	"starmesh/internal/workload"
)

func TestTopo(t *testing.T) {
	topo := Topo{D: 3}
	if topo.Size() != 8 || topo.Ports() != 3 {
		t.Fatalf("topo shape wrong")
	}
	if topo.Neighbor(5, 1) != 7 {
		t.Fatalf("neighbor wrong")
	}
	// Involution.
	for pe := 0; pe < 8; pe++ {
		for b := 0; b < 3; b++ {
			if topo.Neighbor(topo.Neighbor(pe, b), b) != pe {
				t.Fatalf("bit flip not involutive")
			}
		}
	}
}

func TestExchangeBit(t *testing.T) {
	m := New(3)
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe * 11) })
	m.ExchangeBit("A", "B", 2)
	for pe := 0; pe < 8; pe++ {
		if m.Reg("B")[pe] != int64((pe^4)*11) {
			t.Fatalf("exchange wrong at %d", pe)
		}
	}
	if m.Stats().UnitRoutes != 1 {
		t.Fatalf("routes = %d", m.Stats().UnitRoutes)
	}
}

func TestBitonicSortAllDistributions(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 5, 7} {
		for _, dist := range workload.Dists {
			m := New(d)
			m.AddReg("K")
			keys := workload.Keys(dist.D, m.Size(), int64(d))
			m.Set("K", func(pe int) int64 { return keys[pe] })
			routes := m.BitonicSort("K")
			k := m.Reg("K")
			for pe := 1; pe < m.Size(); pe++ {
				if k[pe] < k[pe-1] {
					t.Fatalf("d=%d %s: not sorted at %d", d, dist.Name, pe)
				}
			}
			if routes != TheoreticalRoutes(d) {
				t.Fatalf("d=%d: routes %d, want %d", d, routes, TheoreticalRoutes(d))
			}
			if m.Stats().ReceiveConflicts != 0 {
				t.Fatalf("conflicts")
			}
		}
	}
}

func TestBitonicSortRandomQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(8)
		m := New(d)
		m.AddReg("K")
		m.Set("K", func(pe int) int64 { return int64(rng.Intn(1 << 16)) })
		m.BitonicSort("K")
		k := m.Reg("K")
		for pe := 1; pe < m.Size(); pe++ {
			if k[pe] < k[pe-1] {
				t.Fatalf("trial %d: not sorted", trial)
			}
		}
	}
}

func TestBitonicPreservesMultiset(t *testing.T) {
	m := New(5)
	m.AddReg("K")
	m.Set("K", func(pe int) int64 { return int64((pe * 13) % 7) })
	before := make(map[int64]int)
	for _, v := range m.Reg("K") {
		before[v]++
	}
	m.BitonicSort("K")
	after := make(map[int64]int)
	for _, v := range m.Reg("K") {
		after[v]++
	}
	for v, c := range before {
		if after[v] != c {
			t.Fatalf("multiset changed")
		}
	}
}

func TestTrailingBit(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 64: 6}
	for j, want := range cases {
		if trailingBit(j) != want {
			t.Fatalf("trailingBit(%d) = %d", j, trailingBit(j))
		}
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(25)
}

func BenchmarkBitonicSortD10(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < b.N; i++ {
		m := New(10)
		m.AddReg("K")
		m.Set("K", func(pe int) int64 { return int64(rng.Intn(1 << 20)) })
		m.BitonicSort("K")
	}
}
