package cubesim

import (
	"reflect"
	"testing"

	"starmesh/internal/simd"
	"starmesh/internal/workload"
)

func TestParallelBitonicSortMatchesSequential(t *testing.T) {
	for _, d := range []int{3, 6, 9} {
		run := func(opts ...simd.Option) (simd.Stats, []int64) {
			m := New(d, opts...)
			keys := workload.Keys(workload.Uniform, m.Size(), int64(d))
			m.AddReg("K")
			m.Set("K", func(pe int) int64 { return keys[pe] })
			m.BitonicSort("K")
			return m.Stats(), append([]int64(nil), m.Reg("K")...)
		}
		seqStats, seqKeys := run()
		for i := 1; i < len(seqKeys); i++ {
			if seqKeys[i] < seqKeys[i-1] {
				t.Fatalf("d=%d: sequential sort failed", d)
			}
		}
		for _, workers := range []int{0, 3} {
			parStats, parKeys := run(simd.WithExecutor(simd.Parallel(workers)))
			if seqStats != parStats {
				t.Errorf("d=%d workers=%d: stats %+v != sequential %+v", d, workers, parStats, seqStats)
			}
			if !reflect.DeepEqual(seqKeys, parKeys) {
				t.Errorf("d=%d workers=%d: sorted keys diverged", d, workers)
			}
		}
	}
}
