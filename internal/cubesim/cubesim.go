// Package cubesim runs SIMD programs on a hypercube-connected
// machine and implements Batcher's bitonic sort, the fast hypercube
// sorting algorithm the paper's introduction credits to [RANK88] /
// [NASS79]. It serves as the baseline the star graph is measured
// against in the §5 sorting discussion: bitonic sort needs O(log²N)
// unit routes but requires N to be a power of two — which n! never
// is (for n ≥ 3) — while the star's embedded-mesh sorts work at any
// n! but cost more routes.
package cubesim

import (
	"fmt"

	"starmesh/internal/hypercube"
	"starmesh/internal/simd"
)

// Topo adapts Q_d to simd.Topology: port b flips address bit b.
type Topo struct {
	D int
}

// Size implements simd.Topology.
func (t Topo) Size() int { return 1 << t.D }

// Ports implements simd.Topology.
func (t Topo) Ports() int { return t.D }

// Neighbor implements simd.Topology.
func (t Topo) Neighbor(pe, port int) int { return pe ^ (1 << port) }

// PlanKey implements simd.PlanKeyer: hypercubes of equal dimension
// share compiled route plans.
func (t Topo) PlanKey() string { return fmt.Sprintf("cube:%d", t.D) }

// Machine is a hypercube-connected SIMD computer.
type Machine struct {
	*simd.Machine
	D int
	// xPlans memoizes the compiled bit-exchange plans (shared across
	// machines of the same dimension via simd.SharedPlans).
	xPlans map[xKey]*simd.Plan
}

// xKey identifies a bit-exchange schedule.
type xKey struct {
	src, dst string
	bit      int
}

// bitonicTmp is the bitonic-sort scratch register, declared at
// machine construction so the sort's hot loop never pays the
// EnsureReg lookup.
const bitonicTmp = "__bitonic_tmp"

// New builds the machine for Q_d. Options select the simd execution
// engine (default sequential).
func New(d int, opts ...simd.Option) *Machine {
	if d < 0 || d > 24 {
		panic(fmt.Sprintf("cubesim: unsupported dimension %d", d))
	}
	m := &Machine{Machine: simd.New(Topo{D: d}, opts...), D: d, xPlans: make(map[xKey]*simd.Plan)}
	m.AddReg(bitonicTmp)
	return m
}

// ExchangeBit delivers every PE its bit-b partner's src value into
// dst — a single SIMD-A unit route, since the bit-b pairing is an
// involution. With plans enabled (the default) the route is compiled
// once per (src, dst, b) and replayed; bitonic sort revisits each
// bit many times.
func (m *Machine) ExchangeBit(src, dst string, b int) {
	if !m.PlansEnabled() {
		m.RouteA(src, dst, b, nil)
		return
	}
	simd.RunMemoized(m.Machine, simd.SharedPlans, m.xPlans,
		xKey{src: src, dst: dst, bit: b},
		func() string { return fmt.Sprintf("xbit:%s:%s:%d", src, dst, b) },
		func() { m.RouteA(src, dst, b, nil) })
}

// BitonicSort sorts register key ascending by PE address using
// Batcher's bitonic network: (d(d+1))/2 compare-exchange stages, one
// unit route each.
func (m *Machine) BitonicSort(key string) int {
	const tmp = bitonicTmp
	before := m.Stats().UnitRoutes
	n := m.Size()
	kk, tt := m.Reg(key), m.Reg(tmp)
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			bit := trailingBit(j)
			m.ExchangeBit(key, tmp, bit)
			m.Apply(func(pe int) {
				up := pe&k == 0 // ascending block?
				lower := pe&j == 0
				keepMin := lower == up
				if keepMin {
					if tt[pe] < kk[pe] {
						kk[pe] = tt[pe]
					}
				} else {
					if tt[pe] > kk[pe] {
						kk[pe] = tt[pe]
					}
				}
			})
		}
	}
	return m.Stats().UnitRoutes - before
}

func trailingBit(j int) int {
	b := 0
	for j > 1 {
		j >>= 1
		b++
	}
	return b
}

// MinDimFor re-exports hypercube.MinDimFor for callers sizing a cube
// to hold at least n keys.
func MinDimFor(n int64) int { return hypercube.MinDimFor(n) }

// TheoreticalRoutes returns d(d+1)/2, the exact unit-route count of
// bitonic sort on Q_d.
func TheoreticalRoutes(d int) int { return d * (d + 1) / 2 }
