package cubesim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRegisterBankContract pins the simd bank guarantees BitonicSort
// relies on: it hoists the key and scratch slices once per call, and
// pooled reuse (Reset) plus later register growth must leave both in
// place, with the memoized exchange plans still replaying correctly.
func TestRegisterBankContract(t *testing.T) {
	const d = 4
	fill := func(seed int64) []int64 {
		rng := rand.New(rand.NewSource(seed))
		keys := make([]int64, 1<<d)
		for i := range keys {
			keys[i] = int64(rng.Intn(1 << 12))
		}
		return keys
	}
	sortOnce := func(m *Machine, keys []int64) []int64 {
		m.EnsureReg("K")
		k := m.Reg("K")
		copy(k, keys)
		m.BitonicSort("K")
		out := make([]int64, len(k))
		copy(out, k)
		return out
	}

	m := New(d)
	first := sortOnce(m, fill(7))
	kPtr := &m.Reg("K")[0]

	m.Reset()
	if &m.Reg("K")[0] != kPtr {
		t.Fatal("Reset moved the key register")
	}
	for i := 0; i < 20; i++ {
		m.EnsureReg(fmt.Sprintf("scratch%d", i))
	}
	second := sortOnce(m, fill(7)) // same input: plans replay over grown bank
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pooled re-sort diverged at PE %d: %d vs %d", i, first[i], second[i])
		}
		if i > 0 && second[i-1] > second[i] {
			t.Fatalf("not sorted at %d: %v", i, second)
		}
	}
}
