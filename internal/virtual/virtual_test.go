package virtual

import (
	"math/rand"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
)

func TestLocateIsBijective(t *testing.T) {
	m := New(4) // D_5 on S_4
	seen := map[[2]int]bool{}
	for bigID := 0; bigID < m.Big.Order(); bigID++ {
		pe, slot := m.Locate(bigID)
		if pe < 0 || pe >= m.SM.Size() || slot < 0 || slot >= m.Slots {
			t.Fatalf("locate out of range")
		}
		key := [2]int{pe, slot}
		if seen[key] {
			t.Fatalf("two virtual nodes share (pe,slot) %v", key)
		}
		seen[key] = true
	}
	if len(seen) != m.Big.Order() {
		t.Fatalf("coverage wrong")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	m := New(3)
	m.AddReg("V")
	m.Set("V", func(bigID int) int64 { return int64(bigID * 3) })
	for bigID := 0; bigID < m.Big.Order(); bigID++ {
		if m.Get("V", bigID) != int64(bigID*3) {
			t.Fatalf("get/set mismatch at %d", bigID)
		}
	}
}

// TestUnitRouteMatchesRealMachine runs every dimension/direction on
// the virtual machine and on a genuine (n+1)!-PE mesh machine and
// compares all values.
func TestUnitRouteMatchesRealMachine(t *testing.T) {
	for _, n := range []int{3, 4} {
		vm := New(n)
		vm.AddReg("A")
		vm.AddReg("B")
		big := mesh.D(n + 1)
		keys := uniformKeys(big.Order(), int64(n))

		for k := 1; k <= n; k++ {
			for _, dir := range []int{+1, -1} {
				vm.Set("A", func(bigID int) int64 { return keys[bigID] })
				vm.Set("B", func(bigID int) int64 { return -1 })
				routes := vm.UnitRoute("A", "B", k, dir)

				// Reference: real mesh machine with (n+1)! PEs.
				mm := meshsim.New(big)
				mm.EnsureReg("A")
				mm.EnsureReg("B")
				mm.Set("A", func(pe int) int64 { return keys[pe] })
				mm.Set("B", func(pe int) int64 { return -1 })
				mm.UnitRoute("A", "B", k-1, dir)

				for bigID := 0; bigID < big.Order(); bigID++ {
					want := mm.Reg("B")[bigID]
					// The virtual machine leaves non-destinations
					// untouched; the mesh machine writes only
					// destinations too — but dst starts at -1 in
					// both, so direct comparison works except that
					// UnitRoute on meshsim writes only receivers.
					if got := vm.Get("B", bigID); got != want {
						t.Fatalf("n=%d k=%d dir=%d: bigID %d: got %d want %d",
							n, k, dir, bigID, got, want)
					}
				}
				if k == n && routes != 0 {
					t.Fatalf("slot dimension cost %d routes, want 0", routes)
				}
				if k < n && routes > 3*(n+1) {
					t.Fatalf("k=%d cost %d routes, bound %d", k, routes, 3*(n+1))
				}
			}
		}
	}
}

func TestUnitRoutePanics(t *testing.T) {
	m := New(3)
	m.AddReg("A")
	m.AddReg("B")
	for _, bad := range []struct{ k, dir int }{{0, 1}, {4, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d dir=%d did not panic", bad.k, bad.dir)
				}
			}()
			m.UnitRoute("A", "B", bad.k, bad.dir)
		}()
	}
}

func TestAmortizedCostPerVirtualNode(t *testing.T) {
	// Cost per unit route ≤ 3(n+1) physical routes for (n+1)·n!
	// virtual nodes: amortized ≤ 3 per n! PEs worth of work, the
	// same constant as the direct embedding.
	m := New(4)
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(bigID int) int64 { return int64(bigID) })
	routes := m.UnitRoute("A", "B", 2, +1)
	if routes != 3*(4+1) {
		t.Fatalf("routes = %d, want %d", routes, 15)
	}
}

func BenchmarkVirtualUnitRoute(b *testing.B) {
	m := New(5) // D_6 (720 virtual nodes) on S_5 (120 PEs)
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(bigID int) int64 { return int64(bigID) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UnitRoute("A", "B", 1+i%4, +1)
	}
}

func TestVirtualSnakeSort(t *testing.T) {
	// Sort (n+1)! keys on n! physical PEs.
	for _, n := range []int{3, 4} {
		vm := New(n)
		vm.AddReg("K")
		keys := uniformKeys(vm.Big.Order(), int64(n))
		vm.Set("K", func(bigID int) int64 { return keys[bigID] })
		sorted, routes := vm.SnakeSort("K")
		if !sorted {
			t.Fatalf("n=%d: virtual snake sort failed", n)
		}
		if routes <= 0 {
			t.Fatalf("n=%d: no routes recorded", n)
		}
		// Multiset preserved.
		before := map[int64]int{}
		for _, k := range keys {
			before[k]++
		}
		after := map[int64]int{}
		for bigID := 0; bigID < vm.Big.Order(); bigID++ {
			after[vm.Get("K", bigID)]++
		}
		for v, c := range before {
			if after[v] != c {
				t.Fatalf("n=%d: multiset changed", n)
			}
		}
	}
}

func TestMaskedUnitRouteSlotShuffleInPlace(t *testing.T) {
	// src == dst along the slot dimension must not clobber values.
	m := New(3)
	m.AddReg("A")
	m.Set("A", func(bigID int) int64 { return int64(bigID) })
	m.MaskedUnitRoute("A", "A", 3, +1, nil)
	for bigID := 0; bigID < m.Big.Order(); bigID++ {
		from := m.Big.Step(bigID, 2, -1) // slot dim is big dim index 2
		if from == -1 {
			continue // slot 0 keeps its stale value; not asserted
		}
		if m.Get("A", bigID) != int64(from) {
			t.Fatalf("in-place slot shuffle clobbered at %d", bigID)
		}
	}
}

// uniformKeys generates deterministic pseudo-random keys in
// [0, 4N] — the test fixture formerly drawn from the workload
// package, inlined here because workload now depends on virtual.
func uniformKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(4*n + 1))
	}
	return out
}
