package virtual

import (
	"fmt"
	"testing"
)

// TestRegisterBankContract pins the simd bank guarantees the
// virtualized machine relies on: its slot registers (n+1 physical
// registers per virtual name) survive Reset in place, later growth
// never moves them, and the slot-shuffle/route schedules still match
// a fresh machine afterwards.
func TestRegisterBankContract(t *testing.T) {
	const n = 3
	run := func(m *Machine) []int64 {
		m.EnsureReg("K")
		m.EnsureReg("L")
		m.Set("K", func(bigID int) int64 { return int64(bigID * 2) })
		m.UnitRoute("K", "L", 1, +1)
		out := make([]int64, m.Big.Order())
		for bigID := range out {
			out[bigID] = m.Get("L", bigID)
		}
		return out
	}

	m := New(n)
	first := run(m)
	slot0 := m.SM.Reg("K#0")

	m.Reset()
	if &m.SM.Reg("K#0")[0] != &slot0[0] {
		t.Fatal("Reset moved a slot register")
	}
	for i := 0; i < 20; i++ {
		m.SM.EnsureReg(fmt.Sprintf("scratch%d", i))
	}
	second := run(m) // same schedule on the pooled, grown machine

	fresh := New(n)
	want := run(fresh)
	for bigID := range want {
		if second[bigID] != want[bigID] || first[bigID] != want[bigID] {
			t.Fatalf("virtual route diverged at node %d: first %d, pooled %d, fresh %d",
				bigID, first[bigID], second[bigID], want[bigID])
		}
	}
}
