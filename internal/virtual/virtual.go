// Package virtual runs the mesh D_{n+1} — which has (n+1)! nodes —
// on the star machine S_n with only n! PEs, each PE hosting n+1
// virtual mesh nodes. This extends the paper's embedding to meshes
// larger than the machine (processor virtualization):
//
//   - a virtual node (d_n, d_{n-1}, …, d_1) of D_{n+1} lives in slot
//     d_n of the star PE that the paper's map assigns to
//     (d_{n-1}, …, d_1) in D_n;
//   - a unit route along dimension k ≤ n-1 moves every slot through
//     the Theorem-6 schedule: n+1 slot moves × ≤3 routes — i.e. the
//     amortized cost per virtual node stays ≤ 3;
//   - a unit route along the NEW dimension n is a pure intra-PE slot
//     shuffle and costs zero unit routes.
//
// The equivalence tests check bit-identical behaviour against a real
// (n+1)!-PE mesh machine.
package virtual

import (
	"context"
	"fmt"

	"starmesh/internal/core"
	"starmesh/internal/mesh"
	"starmesh/internal/simd"
	"starmesh/internal/starsim"
)

// Machine simulates D_{n+1} on S_n.
type Machine struct {
	SM    *starsim.Machine
	N     int        // star parameter n
	Slots int        // n+1 virtual nodes per PE
	Big   *mesh.Mesh // D_{n+1}
	small *mesh.Mesh // D_n
}

// New builds the virtualized machine over S_n. Options select the
// simd execution engine of the underlying star machine.
func New(n int, opts ...simd.Option) *Machine {
	return &Machine{
		SM:    starsim.New(n, opts...),
		N:     n,
		Slots: n + 1,
		Big:   mesh.D(n + 1),
		small: mesh.D(n),
	}
}

// Close releases the underlying star machine's worker pool.
func (m *Machine) Close() { m.SM.Close() }

// Reset returns the machine to its post-construction state for
// pooled reuse: every slot register is zeroed and stats cleared,
// while the star machine's amortized state (neighbor tables, route
// tables, compiled plans, worker pool) is kept.
func (m *Machine) Reset() { m.SM.Reset() }

// slotReg names the physical register backing a virtual register's
// slot.
func slotReg(name string, slot int) string {
	return fmt.Sprintf("%s#%d", name, slot)
}

// EnsureReg declares a virtual register if it does not exist yet —
// the idempotent form pooled reuse needs.
func (m *Machine) EnsureReg(name string) {
	for s := 0; s < m.Slots; s++ {
		m.SM.EnsureReg(slotReg(name, s))
	}
}

// AddReg declares a virtual register (n+1 physical registers).
func (m *Machine) AddReg(name string) {
	for s := 0; s < m.Slots; s++ {
		m.SM.AddReg(slotReg(name, s))
	}
}

// Locate returns the physical PE and slot hosting a virtual mesh
// node of D_{n+1}.
func (m *Machine) Locate(bigID int) (pe, slot int) {
	coords := m.Big.Coords(nil, bigID)
	slot = coords[m.N-1] // d_n
	pe = core.MapID(m.N, m.small.ID(coords[:m.N-1]))
	return pe, slot
}

// Get reads a virtual register at a virtual mesh node.
func (m *Machine) Get(name string, bigID int) int64 {
	pe, slot := m.Locate(bigID)
	return m.SM.Reg(slotReg(name, slot))[pe]
}

// Set writes virtual register values from a function over virtual
// mesh ids.
func (m *Machine) Set(name string, fn func(bigID int) int64) {
	for bigID := 0; bigID < m.Big.Order(); bigID++ {
		pe, slot := m.Locate(bigID)
		m.SM.Reg(slotReg(name, slot))[pe] = fn(bigID)
	}
}

// UnitRoute performs one SIMD unit route of D_{n+1} along dimension
// k (1 ≤ k ≤ n) in direction dir, moving src into dst at every
// interior virtual node (dst elsewhere unchanged). It returns the
// number of physical star unit routes consumed: ≤ 3(n+1) for
// k ≤ n-1, and 0 for k = n (slot shuffle).
func (m *Machine) UnitRoute(src, dst string, k, dir int) int {
	return m.MaskedUnitRoute(src, dst, k, dir, nil)
}

// MaskedUnitRoute is UnitRoute restricted to the virtual mesh nodes
// selected by mask (a predicate over D_{n+1} node ids; nil = all).
func (m *Machine) MaskedUnitRoute(src, dst string, k, dir int, mask func(bigID int) bool) int {
	if k < 1 || k > m.N {
		panic(fmt.Sprintf("virtual: dimension %d out of range", k))
	}
	if dir != 1 && dir != -1 {
		panic("virtual: dir must be ±1")
	}
	// bigOf reconstructs the virtual node id from (pe, slot).
	bigOf := func(pe, slot int) int {
		coords := m.small.Coords(nil, core.UnmapID(m.N, pe))
		coords = append(coords, slot)
		return m.Big.ID(coords)
	}
	if k == m.N {
		// The new dimension: value in slot s moves to slot s+dir of
		// the same PE (masked per virtual node). Iterate receivers
		// farthest-first so src == dst does not clobber unread slots.
		froms := make([]int, 0, m.Slots)
		if dir > 0 {
			for from := m.Slots - 2; from >= 0; from-- {
				froms = append(froms, from)
			}
		} else {
			for from := 1; from < m.Slots; from++ {
				froms = append(froms, from)
			}
		}
		for _, from := range froms {
			to := from + dir
			srcReg := m.SM.Reg(slotReg(src, from))
			dstReg := m.SM.Reg(slotReg(dst, to))
			for pe := range srcReg {
				if mask == nil || mask(bigOf(pe, from)) {
					dstReg[pe] = srcReg[pe]
				}
			}
		}
		return 0
	}
	routes := 0
	for s := 0; s < m.Slots; s++ {
		slot := s
		var starMask func(pe int) bool
		if mask != nil {
			starMask = func(pe int) bool { return mask(bigOf(pe, slot)) }
		}
		r, conflicts := m.SM.MaskedMeshUnitRoute(slotReg(src, s), slotReg(dst, s), k, dir, starMask)
		if conflicts != 0 {
			panic("virtual: unit route conflicted (Lemma 5 violated)")
		}
		routes += r
	}
	return routes
}

// Stats exposes the underlying machine counters.
func (m *Machine) Stats() (unitRoutes int) { return m.SM.Stats().UnitRoutes }

// Put writes one virtual register value.
func (m *Machine) Put(name string, bigID int, v int64) {
	pe, slot := m.Locate(bigID)
	m.SM.Reg(slotReg(name, slot))[pe] = v
}

// SnakeSort sorts virtual register key into the snake order of
// D_{n+1} by odd-even transposition over the snake — (n+1)! keys on
// n! physical PEs. Returns whether the result is sorted and the
// physical unit routes consumed.
func (m *Machine) SnakeSort(key string) (sorted bool, routes int) {
	sorted, routes, _ = m.SnakeSortCtx(context.Background(), key)
	return sorted, routes
}

// SnakeSortCtx is SnakeSort with a cooperative cancellation
// checkpoint once per odd-even transposition phase — the sort runs
// (n+1)! phases, so mid-run cancellation aborts within one phase.
// On cancellation it returns the partial route count with ctx's
// error (sorted false).
func (m *Machine) SnakeSortCtx(ctx context.Context, key string) (sorted bool, routes int, err error) {
	big := m.Big
	N := big.Order()
	// Snake plan over the big mesh.
	index := make([]int, N)
	stepDim := make([]int, N)
	stepDir := make([]int, N)
	prev := -1
	for s := 0; s < N; s++ {
		id := big.SnakeIDAt(s)
		index[id] = s
		stepDim[id] = -1
		if prev != -1 {
			for j := 0; j < big.Dims(); j++ {
				switch big.Coord(id, j) - big.Coord(prev, j) {
				case 1:
					stepDim[prev], stepDir[prev] = j, +1
				case -1:
					stepDim[prev], stepDir[prev] = j, -1
				}
			}
		}
		prev = id
	}
	const tmp = "__vsnake_tmp"
	for s := 0; s < m.Slots; s++ {
		m.SM.EnsureReg(slotReg(tmp, s))
	}
	before := m.SM.Stats().UnitRoutes
	for phase := 0; phase < N; phase++ {
		if err := ctx.Err(); err != nil {
			return false, m.SM.Stats().UnitRoutes - before, err
		}
		isLow := func(bigID int) bool {
			return index[bigID]%2 == phase%2 && stepDim[bigID] != -1
		}
		isHigh := func(bigID int) bool {
			s := index[bigID]
			return s > 0 && isLow(big.SnakeIDAt(s-1))
		}
		for j := 0; j < big.Dims(); j++ {
			for _, dir := range []int{+1, -1} {
				jj, dd := j, dir
				lowMask := func(bigID int) bool {
					return isLow(bigID) && stepDim[bigID] == jj && stepDir[bigID] == dd
				}
				highMask := func(bigID int) bool {
					s := index[bigID]
					return s > 0 && lowMask(big.SnakeIDAt(s-1))
				}
				any := false
				for bigID := 0; bigID < N && !any; bigID++ {
					any = lowMask(bigID)
				}
				if !any {
					continue
				}
				m.MaskedUnitRoute(key, tmp, jj+1, dd, lowMask)
				m.MaskedUnitRoute(key, tmp, jj+1, -dd, highMask)
			}
		}
		for bigID := 0; bigID < N; bigID++ {
			k := m.Get(key, bigID)
			t := m.Get(tmp, bigID)
			switch {
			case isLow(bigID):
				if t < k {
					m.Put(key, bigID, t)
				}
			case isHigh(bigID):
				if t > k {
					m.Put(key, bigID, t)
				}
			}
		}
	}
	routes = m.SM.Stats().UnitRoutes - before
	sorted = true
	prevVal := int64(0)
	for s := 0; s < N; s++ {
		v := m.Get(key, big.SnakeIDAt(s))
		if s > 0 && v < prevVal {
			sorted = false
		}
		prevVal = v
	}
	return sorted, routes, nil
}
