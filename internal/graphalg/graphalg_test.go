package graphalg

import (
	"math/rand"
	"testing"
)

// cycle returns the n-cycle C_n.
func cycle(n int) *Adjacency {
	g := NewAdjacency(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// complete returns K_n.
func complete(n int) *Adjacency {
	g := NewAdjacency(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// path returns the path graph P_n.
func path(n int) *Adjacency {
	g := NewAdjacency(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// grid returns the a×b grid graph.
func grid(a, b int) *Adjacency {
	g := NewAdjacency(a * b)
	id := func(i, j int) int { return i*b + j }
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if i+1 < a {
				g.AddEdge(id(i, j), id(i+1, j))
			}
			if j+1 < b {
				g.AddEdge(id(i, j), id(i, j+1))
			}
		}
	}
	return g
}

func TestBFSOnCycle(t *testing.T) {
	g := cycle(6)
	dist := BFS(g, 0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := grid(3, 4)
	p := BFSPath(g, 0, 11)
	if len(p) != 6 { // distance 5 (2 down + 3 right)
		t.Fatalf("path = %v", p)
	}
	if p[0] != 0 || p[len(p)-1] != 11 {
		t.Fatalf("endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		adj := false
		for _, w := range Neighbors(g, p[i]) {
			if w == p[i+1] {
				adj = true
			}
		}
		if !adj {
			t.Fatalf("non-edge in path at %d: %v", i, p)
		}
	}
}

func TestBFSPathUnreachable(t *testing.T) {
	g := NewAdjacency(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if BFSPath(g, 0, 3) != nil {
		t.Fatalf("expected nil path across components")
	}
	if Distance(g, 0, 3) != -1 {
		t.Fatalf("expected distance -1")
	}
	if IsConnected(g) {
		t.Fatalf("disconnected graph reported connected")
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    Graph
		want int
	}{
		{cycle(6), 3},
		{cycle(7), 3},
		{complete(5), 1},
		{path(5), 4},
		{grid(3, 4), 5},
	}
	for i, c := range cases {
		if got := Diameter(c.g); got != c.want {
			t.Errorf("case %d: diameter = %d, want %d", i, got, c.want)
		}
	}
	// Vertex-transitive shortcut agrees on the cycle.
	if DiameterFromVertex(cycle(9)) != Diameter(cycle(9)) {
		t.Errorf("transitive diameter shortcut disagrees on C9")
	}
}

func TestEccentricityDisconnected(t *testing.T) {
	g := NewAdjacency(3)
	g.AddEdge(0, 1)
	if Eccentricity(g, 0) != -1 || Diameter(g) != -1 {
		t.Fatalf("disconnected eccentricity should be -1")
	}
}

func TestAvgDistance(t *testing.T) {
	// C4: distances from any vertex are 1,2,1 → avg 4/3.
	got := AvgDistance(cycle(4), 0)
	if got < 1.33 || got > 1.34 {
		t.Fatalf("avg = %v", got)
	}
	if AvgDistance(NewAdjacency(1), 0) != 0 {
		t.Fatalf("singleton avg should be 0")
	}
}

func TestDistanceHistogram(t *testing.T) {
	h := DistanceHistogram(cycle(6), 0)
	want := []int{1, 2, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("hist = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist = %v, want %v", h, want)
		}
	}
}

func TestIsRegular(t *testing.T) {
	if ok, d := IsRegular(cycle(5)); !ok || d != 2 {
		t.Fatalf("C5 should be 2-regular, got %v %d", ok, d)
	}
	if ok, _ := IsRegular(path(4)); ok {
		t.Fatalf("P4 is not regular")
	}
	if ok, d := IsRegular(NewAdjacency(0)); !ok || d != 0 {
		t.Fatalf("empty graph regularity")
	}
}

func TestNumEdges(t *testing.T) {
	if NumEdges(complete(6)) != 15 {
		t.Fatalf("K6 edges")
	}
	if NumEdges(cycle(7)) != 7 {
		t.Fatalf("C7 edges")
	}
	if NumEdges(grid(3, 4)) != 17 {
		t.Fatalf("grid edges = %d", NumEdges(grid(3, 4)))
	}
}

func TestMaterialize(t *testing.T) {
	g := grid(3, 3)
	m := Materialize(g)
	if m.Order() != g.Order() {
		t.Fatalf("order mismatch")
	}
	for v := 0; v < g.Order(); v++ {
		a, b := Neighbors(g, v), Neighbors(m, v)
		if len(a) != len(b) {
			t.Fatalf("neighbor mismatch at %d", v)
		}
	}
}

func TestVertexDisjointPaths(t *testing.T) {
	// C6: exactly 2 disjoint paths between opposite vertices.
	if k := VertexDisjointPaths(cycle(6), 0, 3); k != 2 {
		t.Fatalf("C6 disjoint paths = %d, want 2", k)
	}
	// K5: 4 paths between any pair (direct edge + 3 via others).
	if k := VertexDisjointPaths(complete(5), 0, 4); k != 4 {
		t.Fatalf("K5 disjoint paths = %d, want 4", k)
	}
	// P4 endpoints: 1 path.
	if k := VertexDisjointPaths(path(4), 0, 3); k != 1 {
		t.Fatalf("P4 disjoint paths = %d, want 1", k)
	}
	// Two components: 0 paths.
	g := NewAdjacency(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if k := VertexDisjointPaths(g, 0, 2); k != 0 {
		t.Fatalf("cross-component paths = %d, want 0", k)
	}
}

func TestVertexConnectivity(t *testing.T) {
	cases := []struct {
		g    Graph
		want int
	}{
		{cycle(8), 2},
		{path(5), 1},
		{complete(5), 4},
		{grid(3, 3), 2},
	}
	for i, c := range cases {
		if got := VertexConnectivity(c.g, false); got != c.want {
			t.Errorf("case %d: connectivity = %d, want %d", i, got, c.want)
		}
	}
	// The hypercube Q3 is vertex-transitive with κ = 3.
	q3 := NewAdjacency(8)
	for v := 0; v < 8; v++ {
		for b := 0; b < 3; b++ {
			if w := v ^ (1 << b); v < w {
				q3.AddEdge(v, w)
			}
		}
	}
	if got := VertexConnectivity(q3, true); got != 3 {
		t.Errorf("Q3 connectivity = %d, want 3", got)
	}
}

func TestExcludeAndConnectedExcept(t *testing.T) {
	g := cycle(6)
	// Removing two opposite vertices disconnects C6.
	if ConnectedExcept(g, 1, 0, 3) {
		t.Fatalf("C6 minus {0,3} should be disconnected")
	}
	// Removing one vertex leaves a path: connected.
	if !ConnectedExcept(g, 1, 0) {
		t.Fatalf("C6 minus {0} should be connected")
	}
	e := NewExclude(g, 0)
	if len(Neighbors(e, 0)) != 0 {
		t.Fatalf("hole should have no neighbors")
	}
	if len(Neighbors(e, 1)) != 1 {
		t.Fatalf("neighbor filtering failed")
	}
}

func TestConnectedExceptPanicsOnHoleProbe(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ConnectedExcept(cycle(4), 0, 0)
}

func TestVertexDisjointPathsPanicsOnEqual(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	VertexDisjointPaths(cycle(4), 1, 1)
}

func TestRandomGraphMengerSanity(t *testing.T) {
	// Menger cross-check on random graphs: removal of fewer than k
	// vertices keeps s-t connected, where k = disjoint paths.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(6)
		g := NewAdjacency(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(i, j)
				}
			}
		}
		s, t2 := 0, n-1
		k := VertexDisjointPaths(g, s, t2)
		if k == 0 {
			continue
		}
		// Remove k-1 random intermediate vertices; s and t must stay
		// connected (necessary condition of Menger).
		for rep := 0; rep < 5; rep++ {
			var holes []int
			for len(holes) < k-1 {
				h := rng.Intn(n)
				if h == s || h == t2 {
					continue
				}
				dup := false
				for _, x := range holes {
					if x == h {
						dup = true
					}
				}
				if !dup {
					holes = append(holes, h)
				}
			}
			e := NewExclude(g, holes...)
			if BFS(e, s)[t2] == -1 {
				t.Fatalf("Menger violated: k=%d holes=%v", k, holes)
			}
		}
	}
}

func BenchmarkBFSGrid(b *testing.B) {
	g := grid(50, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BFS(g, 0)
	}
}

func BenchmarkVertexDisjointPaths(b *testing.B) {
	g := grid(20, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = VertexDisjointPaths(g, 0, 399)
	}
}
