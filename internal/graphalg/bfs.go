package graphalg

// BFS computes single-source shortest-path distances from src.
// Unreachable vertices get distance -1.
func BFS(g Graph, src int) []int {
	n := g.Order()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	var buf []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		buf = g.AppendNeighbors(buf[:0], v)
		for _, w := range buf {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BFSPath returns one shortest path from src to dst (inclusive), or
// nil if dst is unreachable.
func BFSPath(g Graph, src, dst int) []int {
	n := g.Order()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[src] = -1
	queue := []int{src}
	var buf []int
	for len(queue) > 0 && parent[dst] == -2 {
		v := queue[0]
		queue = queue[1:]
		buf = g.AppendNeighbors(buf[:0], v)
		for _, w := range buf {
			if parent[w] == -2 {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	if parent[dst] == -2 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Distance returns the shortest-path distance between u and v, or -1.
func Distance(g Graph, u, v int) int {
	if u == v {
		return 0
	}
	return BFS(g, u)[v]
}

// Eccentricity returns the maximum distance from v to any vertex, or
// -1 if the graph is disconnected from v.
func Eccentricity(g Graph, v int) int {
	ecc := 0
	for _, d := range BFS(g, v) {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter by running BFS from every
// vertex, or -1 if disconnected. O(V·E); fine for n! ≤ 5040-ish.
func Diameter(g Graph) int {
	diam := 0
	for v := 0; v < g.Order(); v++ {
		e := Eccentricity(g, v)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterFromVertex returns the eccentricity of vertex 0. For
// vertex-transitive graphs (such as star graphs, hypercubes and
// tori) this equals the diameter and costs a single BFS.
func DiameterFromVertex(g Graph) int {
	return Eccentricity(g, 0)
}

// AvgDistance returns the mean pairwise distance from src to all
// other vertices (a per-vertex average; equals the graph average for
// vertex-transitive graphs). Returns -1 if disconnected.
func AvgDistance(g Graph, src int) float64 {
	dist := BFS(g, src)
	sum := 0
	for _, d := range dist {
		if d == -1 {
			return -1
		}
		sum += d
	}
	if g.Order() <= 1 {
		return 0
	}
	return float64(sum) / float64(g.Order()-1)
}

// IsConnected reports whether g is connected.
func IsConnected(g Graph) bool {
	if g.Order() == 0 {
		return true
	}
	for _, d := range BFS(g, 0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// DistanceHistogram returns hist[d] = number of vertices at distance
// d from src. Unreachable vertices are ignored.
func DistanceHistogram(g Graph, src int) []int {
	dist := BFS(g, src)
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	hist := make([]int, maxD+1)
	for _, d := range dist {
		if d >= 0 {
			hist[d]++
		}
	}
	return hist
}
