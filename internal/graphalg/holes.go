package graphalg

// Vertex-hole views: the measurement substrate of fault sweeps. A
// holed graph keeps the host's vertex ids (so results map back
// directly) but deleted vertices lose every incident edge, exactly
// like a failed processor dropping off the network.

// holeGraph is g with the marked vertices deleted.
type holeGraph struct {
	g       Graph
	removed []bool
}

// WithoutVertices returns a view of g in which every vertex v with
// removed[v] set is deleted: it keeps no edges and appears in no
// neighbor list. The vertex count is unchanged, so ids keep meaning.
func WithoutVertices(g Graph, removed []bool) Graph {
	return holeGraph{g: g, removed: removed}
}

func (h holeGraph) Order() int { return h.g.Order() }

func (h holeGraph) AppendNeighbors(buf []int, v int) []int {
	if v < len(h.removed) && h.removed[v] {
		return buf
	}
	start := len(buf)
	buf = h.g.AppendNeighbors(buf, v)
	out := buf[:start]
	for _, w := range buf[start:] {
		if w >= len(h.removed) || !h.removed[w] {
			out = append(out, w)
		}
	}
	return out
}

// ReachableFrom counts the vertices reachable from src (inclusive)
// and the eccentricity of src within its component.
func ReachableFrom(g Graph, src int) (count, ecc int) {
	for _, d := range BFS(g, src) {
		if d >= 0 {
			count++
			if d > ecc {
				ecc = d
			}
		}
	}
	return count, ecc
}
