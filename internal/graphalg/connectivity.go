package graphalg

// This file implements vertex-connectivity measurements used for the
// paper's "maximally fault tolerant" claim ([AKER87]): the star graph
// S_n is (n-1)-connected, i.e. its vertex connectivity equals its
// degree. By Menger's theorem the number of internally
// vertex-disjoint paths between two non-adjacent vertices equals the
// minimum number of vertices whose removal disconnects them, so we
// measure connectivity with unit-capacity max-flow on the node-split
// directed graph.

// VertexDisjointPaths returns the maximum number of internally
// vertex-disjoint paths between s and t (s != t). Adjacent pairs
// count the direct edge as one path.
func VertexDisjointPaths(g Graph, s, t int) int {
	if s == t {
		panic("graphalg: s == t")
	}
	n := g.Order()
	// Node splitting: vertex v becomes v_in = 2v, v_out = 2v+1 with a
	// unit-capacity internal arc, except s and t which are
	// uncapacitated (internal capacity n).
	// Arcs: u_out -> v_in for every edge {u,v}, capacity 1.
	type arc struct {
		to, rev int
		cap     int
	}
	adj := make([][]arc, 2*n)
	addArc := func(u, v, c int) {
		adj[u] = append(adj[u], arc{to: v, rev: len(adj[v]), cap: c})
		adj[v] = append(adj[v], arc{to: u, rev: len(adj[u]) - 1, cap: 0})
	}
	for v := 0; v < n; v++ {
		c := 1
		if v == s || v == t {
			c = n // effectively infinite
		}
		addArc(2*v, 2*v+1, c)
	}
	var buf []int
	for v := 0; v < n; v++ {
		buf = g.AppendNeighbors(buf[:0], v)
		for _, w := range buf {
			addArc(2*v+1, 2*w, 1)
		}
	}
	src, dst := 2*s+1, 2*t
	// Edmonds–Karp: BFS augmenting paths of capacity 1. The flow is
	// bounded by the degree, so this is cheap.
	flow := 0
	prevArc := make([]int, 2*n)
	prevNode := make([]int, 2*n)
	for {
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[src] = src
		queue := []int{src}
		for len(queue) > 0 && prevNode[dst] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i, a := range adj[u] {
				if a.cap > 0 && prevNode[a.to] == -1 {
					prevNode[a.to] = u
					prevArc[a.to] = i
					queue = append(queue, a.to)
				}
			}
		}
		if prevNode[dst] == -1 {
			return flow
		}
		for v := dst; v != src; {
			u := prevNode[v]
			a := &adj[u][prevArc[v]]
			a.cap--
			adj[v][a.rev].cap++
			v = u
		}
		flow++
	}
}

// VertexConnectivity computes the exact vertex connectivity of g: the
// minimum over non-adjacent pairs (v, w) of the max number of
// vertex-disjoint paths, following the standard reduction (fix v=0
// and v in N(0)'s non-neighbors...). For a graph known to be
// vertex-transitive it suffices to fix one endpoint; pass
// assumeTransitive=true to exploit that (star graphs, hypercubes).
func VertexConnectivity(g Graph, assumeTransitive bool) int {
	n := g.Order()
	if n <= 1 {
		return 0
	}
	reg, deg := IsRegular(g)
	best := n - 1
	check := func(s, t int) {
		if k := VertexDisjointPaths(g, s, t); k < best {
			best = k
		}
	}
	isAdj := func(s, t int) bool {
		for _, w := range Neighbors(g, s) {
			if w == t {
				return true
			}
		}
		return false
	}
	sources := []int{0}
	if !assumeTransitive {
		// κ(G) = min over s in {0} ∪ N(0), t non-adjacent to s.
		sources = append(sources, Neighbors(g, 0)...)
	}
	for _, s := range sources {
		for t := 0; t < n; t++ {
			if t == s || isAdj(s, t) {
				continue
			}
			check(s, t)
			if reg && best < deg {
				return best
			}
		}
	}
	// A complete graph has no non-adjacent pair; κ = n-1.
	return best
}

// Exclude is a Graph view of g with a set of vertices removed
// (fault injection). Removed vertices keep their ids but become
// isolated; callers should not use them as BFS sources.
type Exclude struct {
	G     Graph
	Holes map[int]bool
}

// NewExclude builds a fault-injected view of g.
func NewExclude(g Graph, holes ...int) *Exclude {
	m := make(map[int]bool, len(holes))
	for _, h := range holes {
		m[h] = true
	}
	return &Exclude{G: g, Holes: m}
}

// Order implements Graph.
func (e *Exclude) Order() int { return e.G.Order() }

// AppendNeighbors implements Graph.
func (e *Exclude) AppendNeighbors(buf []int, v int) []int {
	if e.Holes[v] {
		return buf
	}
	start := len(buf)
	buf = e.G.AppendNeighbors(buf, v)
	out := buf[:start]
	for _, w := range buf[start:] {
		if !e.Holes[w] {
			out = append(out, w)
		}
	}
	return out
}

// ConnectedExcept reports whether g stays connected after removing
// the given vertices (which must not include vertex `probe`).
func ConnectedExcept(g Graph, probe int, holes ...int) bool {
	e := NewExclude(g, holes...)
	if e.Holes[probe] {
		panic("graphalg: probe vertex is a hole")
	}
	dist := BFS(e, probe)
	for v, d := range dist {
		if !e.Holes[v] && d == -1 {
			return false
		}
	}
	return true
}
