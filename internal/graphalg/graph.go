// Package graphalg provides graph algorithms over an abstract graph
// interface: breadth-first search, eccentricity and diameter,
// vertex connectivity via max-flow (Menger's theorem), and structural
// checks (regularity, vertex-transitivity evidence). These are the
// measurement tools used to verify the star graph's properties
// claimed in §2 of the paper (diameter ⌊3(n−1)/2⌋, degree n−1,
// maximal fault tolerance).
package graphalg

// Graph is an undirected graph on vertices 0..Order()-1.
type Graph interface {
	// Order returns the number of vertices.
	Order() int
	// AppendNeighbors appends the neighbors of v to buf and returns
	// the extended slice. Implementations must return each neighbor
	// exactly once and must not include v itself.
	AppendNeighbors(buf []int, v int) []int
}

// Neighbors returns the neighbors of v as a fresh slice.
func Neighbors(g Graph, v int) []int {
	return g.AppendNeighbors(nil, v)
}

// Degree returns the number of neighbors of v.
func Degree(g Graph, v int) int {
	return len(g.AppendNeighbors(nil, v))
}

// Adjacency is a concrete Graph backed by adjacency lists.
type Adjacency struct {
	Adj [][]int
}

// NewAdjacency builds an empty adjacency graph with n vertices.
func NewAdjacency(n int) *Adjacency {
	return &Adjacency{Adj: make([][]int, n)}
}

// AddEdge inserts the undirected edge {u,v} (no duplicate checking).
func (a *Adjacency) AddEdge(u, v int) {
	a.Adj[u] = append(a.Adj[u], v)
	a.Adj[v] = append(a.Adj[v], u)
}

// Order implements Graph.
func (a *Adjacency) Order() int { return len(a.Adj) }

// AppendNeighbors implements Graph.
func (a *Adjacency) AppendNeighbors(buf []int, v int) []int {
	return append(buf, a.Adj[v]...)
}

// Materialize copies an arbitrary Graph into an *Adjacency, which is
// faster to traverse repeatedly.
func Materialize(g Graph) *Adjacency {
	n := g.Order()
	a := &Adjacency{Adj: make([][]int, n)}
	for v := 0; v < n; v++ {
		a.Adj[v] = g.AppendNeighbors(nil, v)
	}
	return a
}

// NumEdges returns the number of undirected edges of g.
func NumEdges(g Graph) int {
	total := 0
	var buf []int
	for v := 0; v < g.Order(); v++ {
		buf = g.AppendNeighbors(buf[:0], v)
		total += len(buf)
	}
	return total / 2
}

// IsRegular reports whether every vertex has the same degree, and
// that degree.
func IsRegular(g Graph) (bool, int) {
	n := g.Order()
	if n == 0 {
		return true, 0
	}
	d0 := Degree(g, 0)
	var buf []int
	for v := 1; v < n; v++ {
		buf = g.AppendNeighbors(buf[:0], v)
		if len(buf) != d0 {
			return false, -1
		}
	}
	return true, d0
}
