// Package faultfs is the fault-injection harness behind the durable
// store's crash tests. The WAL writes every byte through the File
// interface; in production Open hands back a real *os.File, and in
// tests an Injector wraps the same file with a scripted fault — a
// torn tail (bytes silently dropped from some offset on), a hard
// write error, or a flipped byte — so recovery code can be exercised
// against the exact byte streams a crash leaves behind, without
// literal kill -9 in unit tests.
//
// Faults are expressed as offsets into the logical byte stream of
// the matching files (what the writer *attempted* to write, in
// order), which makes scripts deterministic: "cut after 100 bytes"
// tears the same record no matter how the writer batches its calls.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// File is the writable-file surface the WAL appends through.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OpenFunc opens a path for appending (trunc discards existing
// content first). The durable store takes one of these; Open is the
// production implementation, (*Injector).Open the test one.
type OpenFunc func(path string, trunc bool) (File, error)

// Open opens a real file for appending, creating it if needed.
func Open(path string, trunc bool) (File, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if trunc {
		flags |= os.O_TRUNC
	}
	return os.OpenFile(path, flags, 0o644)
}

// ErrInjected is the error returned by writes the injector fails.
var ErrInjected = errors.New("faultfs: injected write failure")

const off = int64(-1) // sentinel: fault disarmed

// Injector opens files whose writes follow a fault script. One
// injector holds one script and one logical write offset shared by
// every matching file it has opened — reopening a file (the WAL
// reset after a snapshot) continues the same stream, so a script
// targets "the n-th byte the WAL ever wrote", not "the n-th byte of
// the current segment".
type Injector struct {
	mu      sync.Mutex
	target  string // base-name filter; "" matches every opened file
	written int64  // logical bytes attempted so far on matching files

	cutAfter  int64 // bytes at/after this offset are silently dropped
	failAfter int64 // writes reaching this offset return ErrInjected
	corruptAt int64 // the byte at this offset is bit-flipped in flight
}

// NewInjector returns an injector with every fault disarmed: files
// behave like Open's until a fault is scripted.
func NewInjector() *Injector {
	return &Injector{cutAfter: off, failAfter: off, corruptAt: off}
}

// Target restricts the script (and the offset accounting) to files
// with the given base name, e.g. "wal.log". Other files opened
// through the injector pass through untouched.
func (in *Injector) Target(base string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.target = base
}

// CutAfterBytes arms the torn-tail fault: every byte at logical
// offset n or beyond is silently dropped while the write still
// reports success — exactly what a crash mid-write leaves on disk.
func (in *Injector) CutAfterBytes(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cutAfter = n
}

// FailAfterBytes arms the hard-failure fault: a write that reaches
// logical offset n persists the prefix before n (a short write) and
// returns ErrInjected.
func (in *Injector) FailAfterBytes(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failAfter = n
}

// FailNow makes the very next write fail — shorthand for
// FailAfterBytes(current offset).
func (in *Injector) FailNow() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failAfter = in.written
}

// CorruptByteAt arms the corruption fault: the byte at logical
// offset n is bit-flipped as it passes through (the write succeeds).
func (in *Injector) CorruptByteAt(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.corruptAt = n
}

// Written reports the logical bytes attempted so far on matching
// files — the offset currency of the fault script.
func (in *Injector) Written() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.written
}

// Open opens path like Open does, wrapping matching files in the
// injector's script.
func (in *Injector) Open(path string, trunc bool) (File, error) {
	f, err := Open(path, trunc)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	match := in.target == "" || filepath.Base(path) == in.target
	in.mu.Unlock()
	if !match {
		return f, nil
	}
	return &faultFile{in: in, f: f}, nil
}

// faultFile applies the injector's script to one file's writes.
type faultFile struct {
	in *Injector
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	in := ff.in
	in.mu.Lock()
	start := in.written
	in.written += int64(len(p)) // logical stream advances even when bytes are dropped
	cut, fail, corrupt := in.cutAfter, in.failAfter, in.corruptAt
	in.mu.Unlock()

	if corrupt != off && corrupt >= start && corrupt < start+int64(len(p)) {
		p = append([]byte(nil), p...)
		p[corrupt-start] ^= 0x80
	}
	if fail != off && start+int64(len(p)) > fail {
		keep := fail - start
		if keep < 0 {
			keep = 0
		}
		n, err := ff.f.Write(p[:keep])
		if err != nil {
			return n, fmt.Errorf("faultfs: short-write prefix failed: %w", err)
		}
		return n, ErrInjected
	}
	if cut != off && start+int64(len(p)) > cut {
		keep := cut - start
		if keep < 0 {
			keep = 0
		}
		if _, err := ff.f.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil // the lie a torn write tells
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error  { return ff.f.Sync() }
func (ff *faultFile) Close() error { return ff.f.Close() }
