package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func readBack(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestOpenPassesThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.log")
	f, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, path); string(got) != "hello world" {
		t.Fatalf("read back %q", got)
	}
	// trunc reopens empty.
	f, err = Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := readBack(t, path); len(got) != 0 {
		t.Fatalf("trunc left %q behind", got)
	}
}

func TestCutAfterBytesTearsSilently(t *testing.T) {
	in := NewInjector()
	in.CutAfterBytes(7)
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := in.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// First write straddles the cut: prefix lands, rest vanishes, and
	// the writer is told everything succeeded.
	if n, err := f.Write([]byte("0123456789")); err != nil || n != 10 {
		t.Fatalf("torn write reported (%d, %v), want silent success", n, err)
	}
	// Later writes are entirely beyond the cut.
	if n, err := f.Write([]byte("abc")); err != nil || n != 3 {
		t.Fatalf("post-cut write reported (%d, %v)", n, err)
	}
	f.Close()
	if got := readBack(t, path); string(got) != "0123456" {
		t.Fatalf("disk holds %q, want the 7-byte prefix", got)
	}
	if in.Written() != 13 {
		t.Fatalf("logical stream advanced %d, want 13", in.Written())
	}
}

func TestFailAfterBytesShortWrites(t *testing.T) {
	in := NewInjector()
	in.FailAfterBytes(4)
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := in.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("short write persisted %d bytes, want 4", n)
	}
	f.Close()
	if got := readBack(t, path); string(got) != "0123" {
		t.Fatalf("disk holds %q", got)
	}
}

func TestFailNowFailsNextWrite(t *testing.T) {
	in := NewInjector()
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := in.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	in.FailNow()
	if _, err := f.Write([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-FailNow write error = %v, want ErrInjected", err)
	}
	f.Close()
}

func TestCorruptByteFlipsInFlight(t *testing.T) {
	in := NewInjector()
	in.CorruptByteAt(5)
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := in.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	orig := append([]byte(nil), payload...)
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(payload, orig) {
		t.Fatal("injector mutated the caller's buffer")
	}
	got := readBack(t, path)
	if got[5] == orig[5] {
		t.Fatal("byte 5 was not corrupted")
	}
	got[5] = orig[5]
	if !bytes.Equal(got, orig) {
		t.Fatalf("corruption bled beyond byte 5: %q", got)
	}
}

func TestTargetFiltersByBaseName(t *testing.T) {
	in := NewInjector()
	in.Target("wal.log")
	in.CutAfterBytes(0)
	dir := t.TempDir()

	snap, err := in.Open(filepath.Join(dir, "store.snap"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Write([]byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	snap.Close()
	if got := readBack(t, filepath.Join(dir, "store.snap")); string(got) != "snapshot" {
		t.Fatalf("non-target file was faulted: %q", got)
	}

	wal, err := in.Open(filepath.Join(dir, "wal.log"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte("records")); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	if got := readBack(t, filepath.Join(dir, "wal.log")); len(got) != 0 {
		t.Fatalf("target file escaped the cut: %q", got)
	}
}

// TestStreamOffsetsSpanReopens pins the property recovery tests rely
// on: the logical offset continues across a close/reopen of the same
// target, so "cut after N bytes" means N bytes of WAL history, not N
// bytes of the current segment.
func TestStreamOffsetsSpanReopens(t *testing.T) {
	in := NewInjector()
	in.Target("wal.log")
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := in.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("12345"))
	f.Close()
	in.CutAfterBytes(8) // 3 bytes into the second segment's stream
	f, err = in.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("67890"))
	f.Close()
	if got := readBack(t, path); string(got) != "12345678" {
		t.Fatalf("disk holds %q, want %q", got, "12345678")
	}
}
