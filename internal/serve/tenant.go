// Tenancy: the API-key tenant registry and per-tenant token-bucket
// rate limits. Every submission resolves to exactly one tenant —
// the key's tenant, or the built-in anonymous tenant when no key is
// presented (unless Config.RequireKey) — and that tenant's identity
// follows the job through the store, the WAL, the trace timeline,
// the metrics and the windowed /v1/stats leaderboards. The weighted
// fair queue in sched.go drains the per-tenant queues by these
// weights; the token buckets here shape admission *rate* before the
// queue shapes admission *order*.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"
)

// DefaultTenant is the tenant of submissions that present no API key
// (in-process callers included). It has weight 1, no rate limit and
// no queue quota unless a TenantConfig names it explicitly.
const DefaultTenant = "anon"

// TenantConfig declares one tenant of the service: its API key, its
// weighted-fair-queueing share, and its admission limits. The zero
// limits mean unlimited — tenancy without shaping is still useful
// for attribution.
type TenantConfig struct {
	// Name labels the tenant everywhere downstream: job records, WAL,
	// traces, metrics, leaderboards.
	Name string `json:"name"`
	// Key is the X-API-Key value that resolves to this tenant.
	Key string `json:"key"`
	// Weight is the tenant's deficit-round-robin share of worker time
	// relative to other backlogged tenants (0 = 1).
	Weight int `json:"weight,omitempty"`
	// RatePerSec refills the tenant's admission token bucket
	// (0 = unlimited; fractional rates are fine).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity — how many submissions can land
	// back-to-back before the rate applies (0 = max(1, ceil(rate))).
	Burst int `json:"burst,omitempty"`
	// MaxQueued caps the tenant's jobs waiting in the scheduler, so
	// one tenant cannot occupy the whole shared queue (0 = no
	// per-tenant cap; the global queue depth still applies).
	MaxQueued int `json:"max_queued,omitempty"`
}

// TenantsFile is the -tenants config file shape.
type TenantsFile struct {
	// RequireKey rejects keyless submissions with 401 instead of
	// admitting them as the anonymous tenant.
	RequireKey bool `json:"require_key,omitempty"`
	// Tenants is the registry (keys must be unique, names too).
	Tenants []TenantConfig `json:"tenants"`
}

// LoadTenantsFile reads and validates a -tenants JSON config file.
func LoadTenantsFile(path string) (TenantsFile, error) {
	var tf TenantsFile
	data, err := os.ReadFile(path)
	if err != nil {
		return tf, fmt.Errorf("serve: tenants file: %w", err)
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return tf, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	if _, err := newTenantSet(tf.Tenants, tf.RequireKey); err != nil {
		return tf, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	return tf, nil
}

// tenant is one resolved tenant with its live token bucket.
type tenant struct {
	name      string
	weight    int
	maxQueued int
	bucket    *tokenBucket // nil = unlimited
}

// tenantSet resolves API keys to tenants.
type tenantSet struct {
	byKey      map[string]*tenant
	byName     map[string]*tenant
	requireKey bool
	anon       *tenant
}

// newTenantSet validates the configs and builds the live registry.
// The anonymous tenant always exists; a config naming DefaultTenant
// overrides its limits (its Key then also works as an explicit key).
func newTenantSet(cfgs []TenantConfig, requireKey bool) (*tenantSet, error) {
	ts := &tenantSet{
		byKey:      make(map[string]*tenant, len(cfgs)),
		byName:     make(map[string]*tenant, len(cfgs)+1),
		requireKey: requireKey,
	}
	for i, c := range cfgs {
		if c.Name == "" {
			return nil, fmt.Errorf("tenant[%d]: name is required", i)
		}
		if c.Key == "" && c.Name != DefaultTenant {
			return nil, fmt.Errorf("tenant %q: key is required", c.Name)
		}
		if _, dup := ts.byName[c.Name]; dup {
			return nil, fmt.Errorf("tenant %q: duplicate name", c.Name)
		}
		if c.Key != "" {
			if _, dup := ts.byKey[c.Key]; dup {
				return nil, fmt.Errorf("tenant %q: duplicate key", c.Name)
			}
		}
		if c.Weight < 0 || c.RatePerSec < 0 || c.Burst < 0 || c.MaxQueued < 0 {
			return nil, fmt.Errorf("tenant %q: weight, rate_per_sec, burst and max_queued must be non-negative", c.Name)
		}
		t := &tenant{name: c.Name, weight: c.Weight, maxQueued: c.MaxQueued}
		if t.weight <= 0 {
			t.weight = 1
		}
		if c.RatePerSec > 0 {
			burst := c.Burst
			if burst <= 0 {
				burst = int(math.Ceil(c.RatePerSec))
				if burst < 1 {
					burst = 1
				}
			}
			t.bucket = newTokenBucket(c.RatePerSec, burst)
		}
		ts.byName[c.Name] = t
		if c.Key != "" {
			ts.byKey[c.Key] = t
		}
	}
	if anon, ok := ts.byName[DefaultTenant]; ok {
		ts.anon = anon
	} else {
		ts.anon = &tenant{name: DefaultTenant, weight: 1}
		ts.byName[DefaultTenant] = ts.anon
	}
	return ts, nil
}

// forKey resolves an X-API-Key value ("" = no key presented).
func (ts *tenantSet) forKey(key string) (*tenant, error) {
	if key == "" {
		if ts.requireKey {
			return nil, fmt.Errorf("%w: an X-API-Key header is required", ErrUnauthorized)
		}
		return ts.anon, nil
	}
	t, ok := ts.byKey[key]
	if !ok {
		return nil, fmt.Errorf("%w: unknown API key", ErrUnauthorized)
	}
	return t, nil
}

// weightOf returns a tenant's configured WFQ weight (1 for tenants
// the registry does not know — recovered jobs from a previous
// config survive with the default share).
func (ts *tenantSet) weightOf(name string) int {
	if t, ok := ts.byName[name]; ok {
		return t.weight
	}
	return 1
}

// tokenBucket is a standard leaky token bucket: tokens refill at
// rate per second up to burst; a take that cannot be covered
// reports how long until it could be.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take spends n tokens if the bucket covers them. ok=false leaves
// the bucket untouched and returns how long until n tokens exist —
// the Retry-After the 429 carries. A take larger than the burst can
// never succeed; it reports the time to a full bucket.
func (b *tokenBucket) take(now time.Time, n float64) (wait time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+b.rate*dt)
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return 0, true
	}
	need := math.Min(n, b.burst) - b.tokens
	return time.Duration(need / b.rate * float64(time.Second)), false
}

// RateLimitError is a 429 rate_limited rejection: the tenant's token
// bucket could not cover the submission. Wait is how long until it
// could — the Retry-After value of the response.
type RateLimitError struct {
	Tenant string
	Wait   time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("serve: tenant %q rate limit exceeded (retry in %v)", e.Tenant, e.Wait)
}

func (e *RateLimitError) Unwrap() error { return ErrRateLimited }

// retryAfterSecs rounds a rate-limit wait up to the whole seconds an
// HTTP Retry-After header can carry (minimum 1).
func retryAfterSecs(wait time.Duration) int {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
