// Job specs are workload.Spec values, admitted verbatim: the
// scenario registry (internal/workload) is the single source of
// truth for validation, defaults, pool shapes, construction and
// execution, so the service gains new scenario kinds the moment they
// are registered — there is no per-kind code in this package. This
// file only re-exports the spec vocabulary under the service's
// historical names.
package serve

import (
	"starmesh/internal/workload"
)

// ScenarioResult is the per-job outcome schema, shared with the
// batch runner so service results compare directly against
// standalone scenario runs.
type ScenarioResult = workload.ScenarioResult

// JobSpec describes one simulation job; see workload.Spec for the
// field/validation contract and workload.Kinds for the accepted
// kinds.
type JobSpec = workload.Spec

// Job kinds, re-exported from the registry's vocabulary.
const (
	KindSort        = workload.KindSort
	KindShear       = workload.KindShear
	KindBroadcast   = workload.KindBroadcast
	KindSweep       = workload.KindSweep
	KindFaultRoute  = workload.KindFaultRoute
	KindEmbedRect   = workload.KindEmbedRect
	KindPermRoute   = workload.KindPermRoute
	KindVirtual     = workload.KindVirtual
	KindDiagnostics = workload.KindDiagnostics
	KindPipeline    = workload.KindPipeline
)

// MaxN bounds the star parameter a job may request; see
// workload.MaxStarN.
const MaxN = workload.MaxStarN

// MaxMeshPEs bounds rows×cols for shear jobs.
const MaxMeshPEs = workload.MaxMeshPEs
