// JobSpec: the typed, JSON-serializable description of one
// simulation job — scenario kind plus machine shape plus parameters.
// A spec fully determines its result: all randomness derives from
// the explicit Seed through workload.NewRand.
package serve

import (
	"fmt"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/simd"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// ScenarioResult is the per-job outcome schema, shared with the
// batch runner so service results compare directly against
// standalone scenario runs.
type ScenarioResult = workload.ScenarioResult

// Job kinds. Star-machine kinds (sort, broadcast, sweep) share one
// machine pool per n; shear uses a mesh pool per (rows, cols);
// faultroute uses a bare star-graph pool per n.
const (
	KindSort       = "sort"       // snake sort on the embedded mesh of S_n
	KindShear      = "shear"      // shear sort on a rows×cols mesh
	KindBroadcast  = "broadcast"  // greedy SIMD-B flood on S_n
	KindSweep      = "sweep"      // full mesh-unit-route sweep on S_n
	KindFaultRoute = "faultroute" // routing around random fault sets on S_n
)

// MaxN bounds the star parameter a job may request (S_8 = 40,320
// PEs; the neighbor table alone is ~1.5 GB at n=10, so admission
// rejects anything larger than this instead of letting one request
// exhaust the process).
const MaxN = 8

// MaxMeshPEs bounds rows×cols for shear jobs.
const MaxMeshPEs = 1 << 16

// JobSpec describes one simulation job.
type JobSpec struct {
	Kind string `json:"kind"`
	// N is the star parameter for sort/broadcast/sweep/faultroute.
	N int `json:"n,omitempty"`
	// Rows, Cols shape the mesh for shear jobs.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dist names the key distribution for sort/shear (see
	// workload.Dists; empty means uniform).
	Dist string `json:"dist,omitempty"`
	// Seed drives every random draw of the job.
	Seed int64 `json:"seed,omitempty"`
	// Source is the broadcast origin PE.
	Source int `json:"source,omitempty"`
	// Faults and Pairs parameterize faultroute jobs (faults ≤ n-2;
	// Pairs defaults to 1).
	Faults int `json:"faults,omitempty"`
	Pairs  int `json:"pairs,omitempty"`
}

// normalized validates the spec and fills defaults (uniform
// distribution, one fault-route pair), returning the canonical form
// the service stores and executes.
func (s JobSpec) normalized() (JobSpec, error) {
	starN := func() error {
		if s.N < 2 || s.N > MaxN {
			return fmt.Errorf("serve: %s job needs n in [2,%d], got %d", s.Kind, MaxN, s.N)
		}
		return nil
	}
	switch s.Kind {
	case KindSort:
		if err := starN(); err != nil {
			return s, err
		}
		if _, err := distByName(s.Dist); err != nil {
			return s, err
		}
		if s.Dist == "" {
			s.Dist = "uniform"
		}
	case KindShear:
		if s.Rows < 1 || s.Cols < 1 || s.Rows*s.Cols < 2 || s.Rows*s.Cols > MaxMeshPEs {
			return s, fmt.Errorf("serve: shear job needs 2 ≤ rows×cols ≤ %d, got %d×%d", MaxMeshPEs, s.Rows, s.Cols)
		}
		if _, err := distByName(s.Dist); err != nil {
			return s, err
		}
		if s.Dist == "" {
			s.Dist = "uniform"
		}
	case KindBroadcast:
		if err := starN(); err != nil {
			return s, err
		}
		if s.Source < 0 || int64(s.Source) >= factorial(s.N) {
			return s, fmt.Errorf("serve: broadcast source %d out of range [0,%d)", s.Source, factorial(s.N))
		}
	case KindSweep:
		if err := starN(); err != nil {
			return s, err
		}
	case KindFaultRoute:
		if err := starN(); err != nil {
			return s, err
		}
		if s.Faults < 0 || s.Faults > s.N-2 {
			return s, fmt.Errorf("serve: faultroute survives at most n-2 = %d faults, got %d", s.N-2, s.Faults)
		}
		if s.Pairs == 0 {
			s.Pairs = 1
		}
		if s.Pairs < 1 {
			return s, fmt.Errorf("serve: faultroute needs pairs ≥ 1, got %d", s.Pairs)
		}
	case "":
		return s, fmt.Errorf("serve: job spec needs a kind (one of sort, shear, broadcast, sweep, faultroute)")
	default:
		return s, fmt.Errorf("serve: unknown job kind %q", s.Kind)
	}
	return s, nil
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

func distByName(name string) (workload.Dist, error) {
	if name == "" {
		return workload.Uniform, nil
	}
	for _, d := range workload.Dists {
		if d.Name == name {
			return d.D, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown distribution %q", name)
}

// Shape is the machine-pool key of the spec: jobs with equal shapes
// run on interchangeable machines. The engine configuration is
// service-wide, so it is not part of the key.
func (s JobSpec) Shape() string {
	switch s.Kind {
	case KindShear:
		return fmt.Sprintf("mesh:%dx%d", s.Rows, s.Cols)
	case KindFaultRoute:
		return fmt.Sprintf("stargraph:%d", s.N)
	default:
		return fmt.Sprintf("star:%d", s.N)
	}
}

// Name renders the spec in the workload scenarios' naming scheme.
func (s JobSpec) Name() string {
	switch s.Kind {
	case KindSort:
		return fmt.Sprintf("sort-star-n%d-%s-seed%d", s.N, s.Dist, s.Seed)
	case KindShear:
		return fmt.Sprintf("shear-mesh-%dx%d-%s-seed%d", s.Rows, s.Cols, s.Dist, s.Seed)
	case KindBroadcast:
		return fmt.Sprintf("broadcast-star-n%d-src%d", s.N, s.Source)
	case KindSweep:
		return fmt.Sprintf("sweep-star-n%d", s.N)
	case KindFaultRoute:
		return fmt.Sprintf("faultroute-star-n%d-f%d-p%d-seed%d", s.N, s.Faults, s.Pairs, s.Seed)
	}
	return "invalid"
}

// resource is anything a machine pool manages: reset between jobs,
// closed when the pool drains. The SIMD machines satisfy it through
// simd.Machine; the bare star graph (stateless) through graphResource.
type resource interface {
	Reset()
	Close()
}

// graphResource adapts the stateless *star.Graph to the pool
// contract; pooling it amortizes the O(n!·n) node table.
type graphResource struct{ g *star.Graph }

func (graphResource) Reset() {}
func (graphResource) Close() {}

// builder returns the constructor of the spec's machine shape, with
// the service's engine options applied.
func (s JobSpec) builder(opts []simd.Option) func() resource {
	switch s.Kind {
	case KindShear:
		rows, cols := s.Rows, s.Cols
		return func() resource { return meshsim.New(mesh.New(rows, cols), opts...) }
	case KindFaultRoute:
		n := s.N
		return func() resource { return graphResource{g: star.New(n)} }
	default:
		n := s.N
		return func() resource { return starsim.New(n, opts...) }
	}
}

// run executes the job on a checked-out resource of the matching
// shape. The Run*On workload runners are the same code standalone
// scenarios use, so pooled results are bit-identical to
// fresh-machine runs of the same seed.
func (s JobSpec) run(r resource) (workload.ScenarioResult, error) {
	switch s.Kind {
	case KindSort:
		d, err := distByName(s.Dist)
		if err != nil {
			return workload.ScenarioResult{}, err
		}
		return workload.RunSortOn(r.(*starsim.Machine), d, workload.NewRand(s.Seed))
	case KindShear:
		d, err := distByName(s.Dist)
		if err != nil {
			return workload.ScenarioResult{}, err
		}
		return workload.RunShearOn(r.(*meshsim.Machine), d, workload.NewRand(s.Seed))
	case KindBroadcast:
		return workload.RunBroadcastOn(r.(*starsim.Machine), s.Source)
	case KindSweep:
		return workload.RunSweepOn(r.(*starsim.Machine))
	case KindFaultRoute:
		return workload.RunFaultRouteOn(r.(graphResource).g, s.Faults, s.Pairs, workload.NewRand(s.Seed))
	}
	return workload.ScenarioResult{}, fmt.Errorf("serve: unknown job kind %q", s.Kind)
}

// Scenario returns the standalone workload scenario equivalent to
// this spec: a fresh machine built per run, the reference the
// service's pooled results are checked against.
func (s JobSpec) Scenario(opts ...simd.Option) (workload.Scenario, error) {
	norm, err := s.normalized()
	if err != nil {
		return workload.Scenario{}, err
	}
	switch norm.Kind {
	case KindSort:
		d, _ := distByName(norm.Dist)
		return workload.SortScenario(norm.N, d, norm.Seed, opts...), nil
	case KindShear:
		d, _ := distByName(norm.Dist)
		return workload.ShearScenario(norm.Rows, norm.Cols, d, norm.Seed, opts...), nil
	case KindBroadcast:
		return workload.BroadcastScenario(norm.N, norm.Source, opts...), nil
	case KindSweep:
		return workload.SweepScenario(norm.N, opts...), nil
	case KindFaultRoute:
		return workload.FaultRouteScenario(norm.N, norm.Faults, norm.Pairs, norm.Seed), nil
	}
	return workload.Scenario{}, fmt.Errorf("serve: unknown job kind %q", norm.Kind)
}
