// Structured logging: the service logs through log/slog, with
// request IDs and job IDs threaded through context so every line of
// a request's or job's life carries the same correlating attributes.
// The Service never writes to a default logger on its own — Config
// .Logger selects the destination, and a nil logger discards, which
// keeps library consumers (tests, benches) quiet by default; cmd
// wires a real handler from -log-level / -log-format.
package serve

import (
	"context"
	"log/slog"
)

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyJobID
)

// WithRequestID returns a context carrying the request's correlation
// id (set by the HTTP middleware, echoed in the X-Request-Id header).
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFrom extracts the request id ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// WithJobID returns a context carrying the job id a worker is
// executing (set by runJob around the whole execution).
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyJobID, id)
}

// JobIDFrom extracts the job id ("" when absent).
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyJobID).(string)
	return id
}

// logWith returns the service logger with the context's correlation
// ids attached as attributes.
func (s *Service) logWith(ctx context.Context) *slog.Logger {
	log := s.log
	if id := RequestIDFrom(ctx); id != "" {
		log = log.With("request_id", id)
	}
	if id := JobIDFrom(ctx); id != "" {
		log = log.With("job_id", id)
	}
	return log
}
