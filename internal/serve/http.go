// HTTP JSON API over the Service. Handler returns a mux suitable
// for http.Server or httptest; ListenAndServe wires it to a
// listener with graceful drain on context cancellation.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrInvalidSpec):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
			return
		}
		limit = v
	}
	writeJSON(w, http.StatusOK, s.Jobs(limit))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotCancelable):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, job)
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.Draining()
	status, label := http.StatusOK, "ok"
	if draining {
		status, label = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]any{"status": label, "draining": draining})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ListenAndServe runs the HTTP API on addr until ctx is canceled,
// then shuts down gracefully: the listener stops (with a 5 s grace
// for in-flight requests) and the service drains — every admitted
// job completes before ListenAndServe returns.
func (s *Service) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		s.Drain()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	s.Drain()
	if err != nil {
		return err
	}
	return ctx.Err()
}
