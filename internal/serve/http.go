// HTTP JSON API over the Service — the versioned v1 contract.
// Handler returns a mux suitable for http.Server or httptest;
// ListenAndServe wires it to a listener with graceful drain on
// context cancellation.
//
// Routes (see doc.go for the full reference):
//
//	POST   /v1/jobs           submit one spec            → 202 Job
//	POST   /v1/jobs:batch     atomic multi-spec submit   → 202 {jobs}
//	GET    /v1/jobs           list: status filter+cursor → 200 JobPage
//	GET    /v1/jobs/{id}      job snapshot               → 200 Job
//	DELETE /v1/jobs/{id}      cancel queued OR running   → 200 Job
//	GET    /v1/jobs/{id}/watch stream status transitions → 200 ndjson
//	GET    /v1/stats          aggregated service view    → 200 Stats
//	GET    /v1/healthz        liveness + drain state     → 200/503 Health
//
// The pre-v1 unversioned routes remain for one release: thin aliases
// onto the same handlers, except GET /jobs, which keeps its original
// bare-array wire shape so pre-v1 consumers survive unchanged.
// Errors are structured (ErrorBody) with the code taxonomy of
// errors.go, mapped to HTTP statuses in exactly one place.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"starmesh/internal/obs"
)

// Health is the /v1/healthz body.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	Draining bool   `json:"draining"`
	// Durability reports the job-store backend: store kind, WAL path,
	// last snapshot time and the jobs recovered / re-executed at boot
	// — so a health probe can tell a fresh process from one that just
	// replayed a crash, and spot a degraded WAL.
	Durability Durability `json:"durability"`
}

// Handler returns the service's HTTP API: the v1 surface plus the
// legacy unversioned aliases. Every route is wrapped at registration
// with the metrics/logging middleware (see instrument), labeled by
// its route pattern — never by the raw URL, which would explode the
// metric cardinality with job ids.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"/v1", ""} {
		handle := func(method, pattern string, h http.HandlerFunc) {
			mux.HandleFunc(method+" "+prefix+pattern, s.instrument(prefix+pattern, h))
		}
		handle("POST", "/jobs", s.handleSubmit)
		handle("POST", "/jobs:batch", s.handleSubmitBatch)
		handle("GET", "/jobs/{id}", s.handleJob)
		handle("DELETE", "/jobs/{id}", s.handleCancel)
		handle("GET", "/jobs/{id}/watch", s.handleWatch)
		handle("GET", "/stats", s.handleStats)
		handle("GET", "/healthz", s.handleHealthz)
		handle("GET", "/metrics", s.handleMetrics)
	}
	mux.HandleFunc("GET /v1/jobs", s.instrument("/v1/jobs", s.handleList))
	// Cluster routes are v1-only: they postdate the alias release, so
	// no unversioned spelling ever existed to keep alive.
	mux.HandleFunc("GET /v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	mux.HandleFunc("POST /v1/drain", s.instrument("/v1/drain", s.handleDrain))
	// The legacy listing keeps its pre-v1 wire shape — a bare JSON
	// array, limit 0 = all — so existing consumers survive the alias
	// release unchanged; only /v1/jobs speaks JobPage.
	mux.HandleFunc("GET /jobs", s.instrument("/jobs", s.handleListLegacy))
	return mux
}

// nextRequestID numbers requests process-wide for log correlation.
var nextRequestID atomic.Int64

// statusWriter captures the response status for the middleware while
// passing Flusher through — the watch stream depends on flushing.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with the observability middleware:
// a request id (generated or propagated from X-Request-Id, echoed
// back, threaded through the context for logging), the per-route
// request counter and latency histogram labeled by route pattern,
// the in-flight gauge, and a structured log line per request.
func (s *Service) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = fmt.Sprintf("req-%06d", nextRequestID.Add(1))
		}
		w.Header().Set("X-Request-Id", reqID)
		ctx := WithRequestID(r.Context(), reqID)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if s.met != nil {
			s.met.httpInFlight.Add(1)
		}
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if s.met != nil {
			s.met.httpInFlight.Add(-1)
			s.met.observeHTTP(route, r.Method, sw.status, elapsed)
		}
		log := s.logWith(ctx)
		attrs := []any{"method", r.Method, "route", route, "status", sw.status, "dur_ms", elapsed.Milliseconds()}
		switch {
		case sw.status >= 500:
			log.Error("http request", attrs...)
		case sw.status >= 400:
			log.Warn("http request", attrs...)
		default:
			log.Debug("http request", attrs...)
		}
	}
}

// handleMetrics serves the Prometheus text exposition. With metrics
// disabled (Config.NoObs) the route answers 404 — scrapers should
// see a hard failure, not an empty exposition that looks like a
// healthy service with zero traffic.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.MetricsRegistry()
	if reg == nil {
		writeErrorCode(w, CodeNotFound, "metrics are disabled (NoObs)", nil)
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	w.WriteHeader(http.StatusOK)
	_ = reg.WriteText(w)
}

func (s *Service) handleListLegacy(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErrorCode(w, CodeInvalidArgument, fmt.Sprintf("bad limit %q", q), nil)
			return
		}
		limit = v
	}
	writeJSON(w, http.StatusOK, s.Jobs(limit))
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErrorCode(w, CodeInvalidArgument, fmt.Sprintf("bad job spec: %v", err), nil)
		return
	}
	job, err := s.SubmitWithKey(r.Header.Get("X-API-Key"), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// BatchRequest is the POST /v1/jobs:batch body.
type BatchRequest struct {
	Specs []JobSpec `json:"specs"`
}

// BatchResponse is the POST /v1/jobs:batch success body: one queued
// job per spec, in spec order.
type BatchResponse struct {
	Jobs []Job `json:"jobs"`
}

func (s *Service) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, CodeInvalidArgument, fmt.Sprintf("bad batch request: %v", err), nil)
		return
	}
	jobs, err := s.SubmitBatchWithKey(r.Header.Get("X-API-Key"), req.Specs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, BatchResponse{Jobs: jobs})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	q := ListQuery{Cursor: r.URL.Query().Get("cursor")}
	if st := r.URL.Query().Get("status"); st != "" {
		switch Status(st) {
		case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
			q.Status = Status(st)
		default:
			writeErrorCode(w, CodeInvalidArgument, fmt.Sprintf("bad status filter %q", st), nil)
			return
		}
	}
	if lim := r.URL.Query().Get("limit"); lim != "" {
		v, err := strconv.Atoi(lim)
		if err != nil || v < 0 {
			writeErrorCode(w, CodeInvalidArgument, fmt.Sprintf("bad limit %q", lim), nil)
			return
		}
		q.Limit = v
	}
	page, err := s.ListJobs(q)
	if err != nil {
		writeErrorCode(w, CodeInvalidArgument, err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleWatch streams a job's status transitions as newline-delimited
// JSON snapshots: the current state first, then every transition,
// closing after the terminal one. Cancellation mid-stream (client
// disconnect) just unsubscribes.
func (s *Service) handleWatch(w http.ResponseWriter, r *http.Request) {
	initial, ch, stop, err := s.Watch(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(j Job) bool {
		if err := enc.Encode(j); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(initial) || initial.Status.Terminal() || ch == nil {
		return
	}
	for {
		select {
		case j, ok := <-ch:
			if !ok {
				// Channel closed on the terminal transition; the final
				// snapshot was delivered before the close (or dropped
				// under pathological buffering) — re-read to be sure the
				// stream always ends on a terminal snapshot.
				if last, ok := s.Job(initial.ID); ok && last.Status.Terminal() {
					emit(last)
				}
				return
			}
			if !emit(j) || j.Status.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleStats serves the aggregated view; ?window=30s (a Go
// duration) sets the trailing window of the per-tenant leaderboard.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	window := time.Duration(0)
	if q := r.URL.Query().Get("window"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeErrorCode(w, CodeInvalidArgument,
				fmt.Sprintf("bad window %q (want a positive Go duration like 30s)", q), nil)
			return
		}
		window = d
	}
	writeJSON(w, http.StatusOK, s.StatsWindow(window))
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok"}
	if s.Draining() {
		h = Health{Status: "draining", Draining: true}
	}
	h.Durability = s.Durability()
	status := http.StatusOK
	if h.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a service error through the taxonomy — the single
// error → status translation of the HTTP layer.
func writeError(w http.ResponseWriter, err error) {
	code := codeOf(err)
	var details []BatchItemError
	var batch *BatchError
	if errors.As(err, &batch) {
		details = batch.Items
	}
	// A rate-limit rejection knows exactly how long until the token
	// bucket covers the request; say so instead of the generic 1s.
	var rl *RateLimitError
	if errors.As(err, &rl) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(rl.Wait)))
	}
	writeErrorCode(w, code, err.Error(), details)
}

func writeErrorCode(w http.ResponseWriter, code ErrorCode, msg string, details []BatchItemError) {
	if (code == CodeQueueFull || code == CodeRateLimited) && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code.HTTPStatus(), ErrorBody{Error: ErrorInfo{
		Code:    code,
		Message: msg,
		Details: details,
	}})
}

// ListenAndServe runs the HTTP API on addr until ctx is canceled,
// then shuts down gracefully in drain-visible order: admission stops
// first (health checks report draining while in-flight requests
// finish), the listener closes, and the service drains — admitted
// jobs get Config.DrainGrace to complete before the running ones are
// canceled at their next checkpoint.
func (s *Service) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		s.Drain()
		return err
	case <-s.drainRequested:
		// POST /v1/drain: same graceful path as cancellation — by now
		// the handler has already stopped admission and extracted the
		// queued backlog for migration.
	case <-ctx.Done():
	}
	// Drain-visible order: admission stops and the service drains
	// WHILE the listener keeps answering — external health checks see
	// "draining" (503) for the whole window instead of a dead socket,
	// and watch streams observe their jobs' terminal transitions. Only
	// then does the listener close (with a short grace for in-flight
	// requests).
	s.beginDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), s.cfg.DrainGrace)
	defer cancelDrain()
	err := s.Shutdown(drainCtx)
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if serr := srv.Shutdown(shutdownCtx); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}
