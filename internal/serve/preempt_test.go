// Priority-preemption tests: a higher-priority submission bounces a
// running lower-priority multi-trial sweep back to its tenant queue
// at the cancellation checkpoint, the victim re-executes
// bit-identically, a user cancel always wins over a preempt, and the
// preempt requeue survives a crash through its WAL record.
package serve

import (
	"context"
	"testing"
	"time"

	"starmesh/internal/workload"
)

// hasTrace reports whether a job's timeline carries the event.
func hasTrace(j Job, event string) bool {
	for _, ev := range j.Trace {
		if ev.Event == event {
			return true
		}
	}
	return false
}

// TestPreemptRequeuesAndReplaysBitIdentical is the preemption
// acceptance test: on a saturated one-worker service a priority-5
// submission preempts the running priority-0 sweep; the victim
// requeues with a preempted trace and partial stats, the preemptor
// jumps it in the queue, and the victim's eventual re-execution
// matches a standalone run bit for bit.
func TestPreemptRequeuesAndReplaysBitIdentical(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	// ~0.6s of work at ~1.2µs/trial: long enough that the preemptor
	// always lands while it runs, short enough to re-execute twice.
	victimSpec := JobSpec{Kind: KindSweep, N: 4, Trials: 500_000, Seed: 3}
	victim := submitOrDie(t, svc, victimSpec)
	waitRunning(t, svc, victim.ID)
	time.Sleep(2 * time.Millisecond) // accumulate partial work to carry through the requeue

	hi := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 3, Priority: 5})

	hiFinal := waitTerminal(t, svc, hi.ID)
	if hiFinal.Status != StatusDone {
		t.Fatalf("preemptor ended %s: %s", hiFinal.Status, hiFinal.Error)
	}
	final := waitTerminal(t, svc, victim.ID)
	if final.Status != StatusDone {
		t.Fatalf("preempted sweep ended %s: %s", final.Status, final.Error)
	}
	if final.Preemptions != 1 {
		t.Fatalf("victim records %d preemptions, want 1", final.Preemptions)
	}
	if !hasTrace(final, TracePreempted) {
		t.Fatalf("victim timeline lacks the %q event: %+v", TracePreempted, final.Trace)
	}
	// The single worker must have run the preemptor before the
	// victim's re-execution — that is what the priority bought.
	if hiFinal.Finished.After(final.Finished) {
		t.Fatalf("preemptor finished at %v, after the victim it bumped (%v)",
			hiFinal.Finished, final.Finished)
	}
	// Re-execution parity: the interrupted-then-replayed sweep ends
	// with exactly the standalone result, partial stats overwritten.
	got := *final.Result
	got.Name, got.ElapsedNs = "", 0
	if want := standaloneResult(t, victimSpec); got != want {
		t.Fatalf("preempted sweep diverged from standalone run: %+v != %+v", got, want)
	}
	if st := svc.Stats(); st.Done != 2 || st.Canceled != 0 {
		t.Fatalf("stats after preempt round-trip: %+v", st)
	}
}

// TestPreemptRequiresSaturationAndPriority pins maybePreempt's
// guards: a free worker means no preemption (the new job just gets
// picked up), and a priority-0 submission never preempts anything.
func TestPreemptRequiresSaturationAndPriority(t *testing.T) {
	t.Run("free worker", func(t *testing.T) {
		svc, err := NewService(Config{Workers: 2, Queue: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Drain()
		victim := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 4, Trials: 200_000})
		waitRunning(t, svc, victim.ID)
		hi := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 3, Priority: 9})
		if j := waitTerminal(t, svc, hi.ID); j.Status != StatusDone {
			t.Fatalf("priority job ended %s", j.Status)
		}
		if j := waitTerminal(t, svc, victim.ID); j.Status != StatusDone || j.Preemptions != 0 {
			t.Fatalf("sweep preempted despite a free worker: status %s, preemptions %d",
				j.Status, j.Preemptions)
		}
	})
	t.Run("priority zero", func(t *testing.T) {
		svc, err := NewService(Config{Workers: 1, Queue: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Drain()
		victim := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 4, Trials: 200_000})
		waitRunning(t, svc, victim.ID)
		peer := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 3})
		if j := waitTerminal(t, svc, victim.ID); j.Status != StatusDone || j.Preemptions != 0 {
			t.Fatalf("sweep preempted by a default-priority peer: status %s, preemptions %d",
				j.Status, j.Preemptions)
		}
		if j := waitTerminal(t, svc, peer.ID); j.Status != StatusDone {
			t.Fatalf("peer ended %s", j.Status)
		}
	})
}

// TestRequestPreemptSelection drives the store's victim selection
// directly: lowest priority loses, ties break to the most recently
// started run (least sunk work), non-sweeps and jobs already being
// canceled or preempted are never candidates.
func TestRequestPreemptSelection(t *testing.T) {
	st := newStore()
	now := time.Now()
	claim := func(spec JobSpec, at time.Time) (string, context.Context) {
		t.Helper()
		j := st.add(spec, "t", at)
		ctx, cancel := context.WithCancel(context.Background())
		if _, ok := st.claim(j.ID, at, cancel); !ok {
			t.Fatalf("claim %s failed", j.ID)
		}
		return j.ID, ctx
	}
	sweep := JobSpec{Kind: KindSweep, N: 3, Trials: 50}
	lowOld, ctxLowOld := claim(sweep, now)
	lowNew, ctxLowNew := claim(sweep, now.Add(10*time.Millisecond))
	midSpec := sweep
	midSpec.Priority = 2
	mid, ctxMid := claim(midSpec, now.Add(20*time.Millisecond))
	_, ctxSort := claim(JobSpec{Kind: KindSort, N: 4, Dist: "uniform"}, now.Add(30*time.Millisecond))

	// Priority 1 sees the two priority-0 sweeps; the tie breaks to
	// the one that started later.
	if id, ok := st.requestPreempt(1, now); !ok || id != lowNew {
		t.Fatalf("first victim = %q, %t; want the most recently started %q", id, ok, lowNew)
	}
	if ctxLowNew.Err() == nil {
		t.Fatal("victim's run context was not canceled")
	}
	if id, ok := st.requestPreempt(1, now); !ok || id != lowOld {
		t.Fatalf("second victim = %q, %t; want %q", id, ok, lowOld)
	}
	if ctxLowOld.Err() == nil {
		t.Fatal("second victim's run context was not canceled")
	}
	// Nothing below priority 1 is left running.
	if id, ok := st.requestPreempt(1, now); ok {
		t.Fatalf("priority 1 found a third victim %q", id)
	}
	// Priority 9 reaches the priority-2 sweep — but never the sort,
	// which is not preemptible no matter the priority gap.
	if id, ok := st.requestPreempt(9, now); !ok || id != mid {
		t.Fatalf("priority-9 victim = %q, %t; want %q", id, ok, mid)
	}
	if ctxMid.Err() == nil {
		t.Fatal("mid victim's run context was not canceled")
	}
	if id, ok := st.requestPreempt(9, now); ok {
		t.Fatalf("non-sweep selected as victim: %q", id)
	}
	if ctxSort.Err() != nil {
		t.Fatal("sort job's context canceled without being a victim")
	}

	// A running job with a user cancel in flight is off limits: the
	// cancel must win, not be laundered into a requeue.
	crID, _ := claim(sweep, now.Add(40*time.Millisecond))
	if _, err := st.cancel(crID, now.Add(41*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if id, ok := st.requestPreempt(9, now); ok {
		t.Fatalf("cancel-requested job selected as victim: %q", id)
	}
}

// TestUserCancelBeatsPreempt races a user cancel against a
// preemption of the same running sweep: whichever checkpoint path
// fires first, the job must end terminal canceled — never silently
// requeued past the user's DELETE, never done.
func TestUserCancelBeatsPreempt(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	victim := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 4, Trials: 1_000_000})
	waitRunning(t, svc, victim.ID)
	hi := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 3, Priority: 5})
	if _, err := svc.Cancel(victim.ID); err != nil {
		t.Fatalf("cancel of the preempted job: %v", err)
	}
	final := waitTerminal(t, svc, victim.ID)
	if final.Status != StatusCanceled {
		t.Fatalf("canceled victim ended %s, want canceled", final.Status)
	}
	if j := waitTerminal(t, svc, hi.ID); j.Status != StatusDone {
		t.Fatalf("preemptor ended %s", j.Status)
	}
}

// TestPreemptRequeueSurvivesCrash stages a preemption on a durable
// store by hand — claim, preempt, checkpoint abort — then crashes
// before the victim re-runs. The opPreempt WAL record must bring it
// back QUEUED with its preemption count and trace intact, and the
// restarted service must run it to a standalone-identical result.
func TestPreemptRequeueSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	svc, err := newService(Config{Workers: 1, Queue: 8, StoreDir: dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Kind: KindSweep, N: 4, Trials: 60, Seed: 11}
	victim, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	_, cancel := context.WithCancel(context.Background())
	if _, ok := svc.store.claim(victim.ID, now, cancel); !ok {
		t.Fatal("claim failed")
	}
	if id, ok := svc.store.requestPreempt(5, now); !ok || id != victim.ID {
		t.Fatalf("requestPreempt = %q, %t", id, ok)
	}
	// The checkpoint abort: the runner surfaces context.Canceled with
	// its partial stats, and finish reports a requeue, not a finish.
	partial := workload.ScenarioResult{UnitRoutes: 17}
	if requeued := svc.store.finish(victim.ID, partial, context.Canceled, now.Add(time.Millisecond)); !requeued {
		t.Fatal("preempt checkpoint did not requeue")
	}

	crash(t, svc)

	svc2, err := NewService(Config{Workers: 1, Queue: 8, StoreDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer svc2.Drain()
	if dur := svc2.Durability(); dur.RecoveredQueued != 1 {
		t.Fatalf("preempt-requeued job not recovered as queued: %+v", dur)
	}
	final := waitTerminal(t, svc2, victim.ID)
	if final.Status != StatusDone {
		t.Fatalf("recovered victim ended %s: %s", final.Status, final.Error)
	}
	if final.Preemptions != 1 || !hasTrace(final, TracePreempted) {
		t.Fatalf("preemption history lost across the crash: preemptions %d, trace %+v",
			final.Preemptions, final.Trace)
	}
	got := *final.Result
	got.Name, got.ElapsedNs = "", 0
	if want := standaloneResult(t, spec); got != want {
		t.Fatalf("recovered victim diverged from standalone run: %+v != %+v", got, want)
	}
}

// TestRecoveryPreservesPerTenantOrder crashes a durable service with
// a multi-tenant backlog and requires the restart to rebuild each
// tenant's queue in admission order — the scheduler then interleaves
// them by DRR exactly as it would have before the crash.
func TestRecoveryPreservesPerTenantOrder(t *testing.T) {
	tenants := []TenantConfig{
		{Name: "a", Key: "key-a", Weight: 1},
		{Name: "b", Key: "key-b", Weight: 1},
	}
	dir := t.TempDir()
	svc, err := newService(Config{Workers: 1, Queue: 16, StoreDir: dir, Tenants: tenants}, false)
	if err != nil {
		t.Fatal(err)
	}
	submit := func(key string) string {
		t.Helper()
		j, err := svc.SubmitWithKey(key, JobSpec{Kind: KindSweep, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		return j.ID
	}
	// a's queue fills faster than b's: a1 a2 b1 a3 b2.
	a1, a2 := submit("key-a"), submit("key-a")
	b1 := submit("key-b")
	a3 := submit("key-a")
	b2 := submit("key-b")

	crash(t, svc)

	svc2, err := newService(Config{Workers: 1, Queue: 16, StoreDir: dir, Tenants: tenants}, false)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := svc2.sched.queuedFor("a"); got != 3 {
		t.Fatalf("tenant a recovered %d queued, want 3", got)
	}
	if got := svc2.sched.queuedFor("b"); got != 2 {
		t.Fatalf("tenant b recovered %d queued, want 2", got)
	}
	// Drain the scheduler directly (workers held back): per-tenant
	// FIFO order survived, and equal weights interleave one for one.
	want := []string{a1, b1, a2, b2, a3}
	if got := drainWFQ(t, svc2.sched, 5); !equalStrings(got, want) {
		t.Fatalf("post-recovery drain order %v, want %v", got, want)
	}
	crash(t, svc2)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
