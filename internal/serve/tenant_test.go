package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTenantSetResolvesKeys(t *testing.T) {
	ts, err := newTenantSet([]TenantConfig{
		{Name: "a", Key: "key-a", Weight: 3},
		{Name: "b", Key: "key-b", RatePerSec: 10, Burst: 5, MaxQueued: 7},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ts.forKey("key-a")
	if err != nil || a.name != "a" || a.weight != 3 || a.bucket != nil {
		t.Fatalf("key-a resolved %+v, %v", a, err)
	}
	b, err := ts.forKey("key-b")
	if err != nil || b.name != "b" || b.bucket == nil || b.maxQueued != 7 {
		t.Fatalf("key-b resolved %+v, %v", b, err)
	}
	// No key falls back to the anonymous tenant.
	anon, err := ts.forKey("")
	if err != nil || anon.name != DefaultTenant || anon.weight != 1 {
		t.Fatalf("empty key resolved %+v, %v", anon, err)
	}
	if _, err := ts.forKey("bogus"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown key gave %v, want ErrUnauthorized", err)
	}
	if w := ts.weightOf("a"); w != 3 {
		t.Fatalf("weightOf(a) = %d", w)
	}
	if w := ts.weightOf("nobody"); w != 1 {
		t.Fatalf("weightOf(nobody) = %d, want fallback 1", w)
	}
}

func TestTenantSetRequireKey(t *testing.T) {
	ts, err := newTenantSet([]TenantConfig{{Name: "a", Key: "k"}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.forKey(""); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("require_key with no key gave %v, want ErrUnauthorized", err)
	}
	if _, err := ts.forKey("k"); err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}
}

func TestTenantSetValidation(t *testing.T) {
	cases := []struct {
		name string
		cfgs []TenantConfig
		want string
	}{
		{"missing name", []TenantConfig{{Key: "k"}}, "name"},
		{"missing key", []TenantConfig{{Name: "x"}}, "key"},
		{"dup name", []TenantConfig{{Name: "x", Key: "k1"}, {Name: "x", Key: "k2"}}, "duplicate"},
		{"dup key", []TenantConfig{{Name: "x", Key: "k"}, {Name: "y", Key: "k"}}, "duplicate"},
		{"negative rate", []TenantConfig{{Name: "x", Key: "k", RatePerSec: -1}}, "rate"},
		{"negative burst", []TenantConfig{{Name: "x", Key: "k", Burst: -1}}, "burst"},
		{"negative quota", []TenantConfig{{Name: "x", Key: "k", MaxQueued: -1}}, "max_queued"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := newTenantSet(tc.cfgs, false); err == nil ||
				!strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

// Config naming the anonymous tenant overrides the built-in one, so
// keyless traffic can be throttled without requiring keys.
func TestTenantSetAnonOverride(t *testing.T) {
	ts, err := newTenantSet([]TenantConfig{
		{Name: DefaultTenant, Weight: 5, RatePerSec: 1, Burst: 1},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := ts.forKey("")
	if err != nil || anon.weight != 5 || anon.bucket == nil {
		t.Fatalf("overridden anon resolved %+v, %v", anon, err)
	}
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(2, 4) // 2 tokens/s, burst 4
	now := time.Unix(1000, 0)
	// Initial burst: 4 tokens available.
	for i := 0; i < 4; i++ {
		if _, ok := b.take(now, 1); !ok {
			t.Fatalf("take %d of the initial burst failed", i)
		}
	}
	wait, ok := b.take(now, 1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v, want ~0.5s for one token at 2/s", wait)
	}
	// A failed take must not drain anything: refill half a token and
	// the next single take still fails, but after a full second two
	// tokens accumulated.
	if _, ok := b.take(now.Add(time.Second), 2); !ok {
		t.Fatal("two tokens after one second at 2/s should succeed")
	}
	// Batch takes are atomic: asking for more than available leaves
	// the bucket untouched.
	b2 := newTokenBucket(1, 3)
	if _, ok := b2.take(now, 5); ok {
		t.Fatal("batch larger than burst+tokens granted")
	}
	if _, ok := b2.take(now, 3); !ok {
		t.Fatal("full burst take failed after a refused batch — the refusal drained tokens")
	}
}

func TestRetryAfterSecs(t *testing.T) {
	if got := retryAfterSecs(0); got != 1 {
		t.Fatalf("retryAfterSecs(0) = %d, want minimum 1", got)
	}
	if got := retryAfterSecs(1200 * time.Millisecond); got != 2 {
		t.Fatalf("retryAfterSecs(1.2s) = %d, want ceil 2", got)
	}
}

func TestLoadTenantsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `{
  "require_key": true,
  "tenants": [
    {"name": "ci", "key": "key-ci", "weight": 4},
    {"name": "lab", "key": "key-lab", "rate_per_sec": 2.5, "burst": 10, "max_queued": 3}
  ]
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	tf, err := LoadTenantsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tf.RequireKey || len(tf.Tenants) != 2 || tf.Tenants[0].Weight != 4 ||
		tf.Tenants[1].RatePerSec != 2.5 {
		t.Fatalf("loaded %+v", tf)
	}

	if _, err := LoadTenantsFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"tenants": [{"key": "no-name"}]}`), 0o644)
	if _, err := LoadTenantsFile(bad); err == nil {
		t.Fatal("invalid registry loaded")
	}
	notJSON := filepath.Join(dir, "not.json")
	os.WriteFile(notJSON, []byte("nope"), 0o644)
	if _, err := LoadTenantsFile(notJSON); err == nil {
		t.Fatal("non-JSON registry loaded")
	}
}
