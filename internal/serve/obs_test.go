// Observability tests: the /v1/metrics exposition is valid Prometheus
// text covering every instrumented subsystem, the HTTP middleware
// labels by route pattern (not raw URL) and threads request ids, the
// trace timeline narrates a job's life in order, and traces survive
// crash recovery bit-intact.
package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"starmesh/internal/obs"
)

// scrapeMetrics fetches and parses /v1/metrics, validating the
// exposition format on the way.
func scrapeMetrics(t *testing.T, tsURL string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(tsURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/v1/metrics content type %q, want %q", ct, obs.ContentType)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if err := obs.Validate(text); err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, text)
	}
	sc, err := obs.ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestMetricsEndpointCoversEverySubsystem(t *testing.T) {
	svc, err := NewService(Config{Workers: 2, Queue: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := JobSpec{Kind: KindSort, N: 4, Dist: "uniform", Seed: 7}
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, svc, job.ID)
	// A second job of the same shape exercises the pool-reuse counter.
	job2, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, svc, job2.ID)
	// One 404 so the middleware has a non-2xx code to label.
	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	sc := scrapeMetrics(t, ts.URL)

	// Scheduler.
	if v, ok := sc.Value("starmesh_jobs_admitted_total", map[string]string{"kind": "sort"}); !ok || v != 2 {
		t.Fatalf("jobs_admitted_total{kind=sort} = %v, %t; want 2", v, ok)
	}
	if v, ok := sc.Value("starmesh_jobs_finished_total",
		map[string]string{"status": "done", "kind": "sort", "tenant": DefaultTenant}); !ok || v != 2 {
		t.Fatalf("jobs_finished_total{done,sort,anon} = %v, %t; want 2", v, ok)
	}
	if v, ok := sc.Value("starmesh_tenant_admitted_total", map[string]string{"tenant": DefaultTenant}); !ok || v != 2 {
		t.Fatalf("tenant_admitted_total{anon} = %v, %t; want 2", v, ok)
	}
	if v, ok := sc.Value("starmesh_tenant_queue_wait_seconds_count", map[string]string{"tenant": DefaultTenant}); !ok || v != 2 {
		t.Fatalf("tenant_queue_wait_seconds_count{anon} = %v, %t; want 2", v, ok)
	}
	if v, ok := sc.Value("starmesh_jobs_running", nil); !ok || v != 0 {
		t.Fatalf("jobs_running = %v, %t; want 0 after both jobs finished", v, ok)
	}
	if v, ok := sc.Value("starmesh_queue_capacity", nil); !ok || v != 16 {
		t.Fatalf("queue_capacity = %v, %t; want 16", v, ok)
	}
	if v, ok := sc.Value("starmesh_queue_wait_seconds_count", nil); !ok || v != 2 {
		t.Fatalf("queue_wait_seconds_count = %v, %t; want 2", v, ok)
	}

	// Pools: first sort job builds, second reuses.
	shape := spec.Shape()
	if v, ok := sc.Value("starmesh_pool_builds_total", map[string]string{"shape": shape}); !ok || v != 1 {
		t.Fatalf("pool_builds_total{%s} = %v, %t; want 1", shape, v, ok)
	}
	if v, ok := sc.Value("starmesh_pool_reuses_total", map[string]string{"shape": shape}); !ok || v != 1 {
		t.Fatalf("pool_reuses_total{%s} = %v, %t; want 1", shape, v, ok)
	}

	// Engine: the sort schedule routed something.
	if v, ok := sc.Value("starmesh_engine_unit_routes_total", nil); !ok || v <= 0 {
		t.Fatalf("engine_unit_routes_total = %v, %t; want > 0", v, ok)
	}

	// HTTP: the 404 above landed on the {id} route with its pattern,
	// not the raw URL.
	if v, ok := sc.Value("starmesh_http_requests_total",
		map[string]string{"route": "/v1/jobs/{id}", "method": "GET", "code": "404"}); !ok || v != 1 {
		t.Fatalf("http_requests_total{/v1/jobs/{id},GET,404} = %v, %t; want 1", v, ok)
	}

	// Watch / durability families exist even when idle or in-memory.
	if _, ok := sc.Value("starmesh_watch_subscribers", nil); !ok {
		t.Fatal("watch_subscribers family missing")
	}
	if v, ok := sc.Value("starmesh_wal_degraded", nil); !ok || v != 0 {
		t.Fatalf("wal_degraded = %v, %t; want 0 on the in-memory store", v, ok)
	}
}

func TestMetricsDisabledAnswers404(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 4, NoObs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	if svc.MetricsRegistry() != nil {
		t.Fatal("NoObs service still built a registry")
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/metrics with NoObs returned %d, want 404", resp.StatusCode)
	}
	// The service still works without its instruments.
	job, err := svc.Submit(JobSpec{Kind: KindSweep, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, svc, job.ID); got.Status != StatusDone {
		t.Fatalf("NoObs job finished %s: %s", got.Status, got.Error)
	}
}

func TestHTTPMiddlewareRequestID(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A generated id comes back on the response.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Fatal("no X-Request-Id on the response")
	}

	// A caller-supplied id is echoed verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "caller-7" {
		t.Fatalf("X-Request-Id = %q, want the caller's caller-7", id)
	}
}

func TestTraceTimelineNarratesTheJob(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	job, err := svc.Submit(JobSpec{Kind: KindSort, N: 4, Dist: "uniform", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, svc, job.ID)
	if final.Status != StatusDone {
		t.Fatalf("job finished %s: %s", final.Status, final.Error)
	}

	var events []string
	for _, e := range final.Trace {
		events = append(events, e.Event)
	}
	want := []string{TraceSubmitted, TraceClaimed, TraceMachineReady, string(StatusDone)}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("trace events %v, want %v", events, want)
	}
	// Timestamps are monotone and every post-submit event carries the
	// duration since its predecessor.
	for i, e := range final.Trace {
		if i == 0 {
			if e.DurNs != 0 {
				t.Fatalf("submitted event has dur_ns %d, want 0", e.DurNs)
			}
			continue
		}
		prev := final.Trace[i-1]
		if e.At.Before(prev.At) {
			t.Fatalf("trace timestamps not monotone: %v before %v", e.At, prev.At)
		}
		if want := e.At.Sub(prev.At).Nanoseconds(); e.DurNs != want {
			t.Fatalf("event %s dur_ns = %d, want %d (gap to previous)", e.Event, e.DurNs, want)
		}
	}
	if !strings.Contains(final.Trace[2].Detail, "shape=") {
		t.Fatalf("machine_ready detail %q does not name the shape", final.Trace[2].Detail)
	}
}

// tracesEqual compares timelines event by event, using time.Equal
// for the timestamps — the live trace carries a monotonic clock
// reading and a wall-clock location that never survive the WAL's
// JSON round-trip, and neither is part of the contract.
func tracesEqual(a, b []TraceEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Event != b[i].Event || !a[i].At.Equal(b[i].At) ||
			a[i].DurNs != b[i].DurNs || a[i].Detail != b[i].Detail {
			return false
		}
	}
	return true
}

func TestTraceSurvivesCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, 1000, nil)
	now := time.Now()

	// A job that completes before the crash: its trace must replay
	// bit-intact.
	done := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	if _, ok := ds.claim(done.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim failed")
	}
	ds.trace(done.ID, now.Add(2*time.Millisecond), TraceMachineReady, "shape=star:3 built")
	ds.finish(done.ID, ScenarioResult{UnitRoutes: 9, OK: true}, nil, now.Add(3*time.Millisecond))
	doneBefore, _ := ds.get(done.ID)

	// A job caught running at the crash: it re-queues, and its trace
	// restarts from submitted with a recovered marker — the old
	// claimed/machine_ready events describe an execution that never
	// finished and would mislead.
	interrupted := ds.add(JobSpec{Kind: KindSweep, N: 4}, DefaultTenant, now)
	if _, ok := ds.claim(interrupted.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim failed")
	}
	ds.trace(interrupted.ID, now.Add(2*time.Millisecond), TraceMachineReady, "shape=star:4 built")

	ds.freeze() // crash

	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()

	doneAfter, ok := ds2.get(done.ID)
	if !ok {
		t.Fatal("done job vanished across recovery")
	}
	if !tracesEqual(doneAfter.Trace, doneBefore.Trace) {
		t.Fatalf("terminal trace drifted across recovery:\nbefore %+v\nafter  %+v",
			doneBefore.Trace, doneAfter.Trace)
	}
	if n := len(doneAfter.Trace); n != 4 || doneAfter.Trace[n-1].Event != string(StatusDone) {
		t.Fatalf("terminal trace malformed after recovery: %+v", doneAfter.Trace)
	}

	re, _ := ds2.get(interrupted.ID)
	var events []string
	for _, e := range re.Trace {
		events = append(events, e.Event)
	}
	if want := []string{TraceSubmitted, TraceRecovered}; !reflect.DeepEqual(events, want) {
		t.Fatalf("re-queued trace events %v, want %v", events, want)
	}
}
