// Store-level tests of the WAL-backed durable store: round-trip
// persistence, recovery ordering, torn/corrupt tail handling (via the
// faultfs injector — the byte streams a crash leaves behind, without
// kill -9), snapshot compaction and the degraded memory-only mode.
package serve

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"starmesh/internal/faultfs"
)

// openDurable opens a durable store or fails the test.
func openDurable(t *testing.T, dir string, snapEvery int, open faultfs.OpenFunc) *durableStore {
	t.Helper()
	ds, err := openDurableStore(dir, snapEvery, open)
	if err != nil {
		t.Fatalf("openDurableStore(%s): %v", dir, err)
	}
	return ds
}

func TestDurableStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, 1000, nil)
	now := time.Now()

	// One of every lifecycle outcome: done, failed, canceled-queued,
	// still queued.
	done := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	failed := ds.add(JobSpec{Kind: KindSort, N: 3, Dist: "uniform", Seed: 1}, DefaultTenant, now)
	canceled := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	queued := ds.add(JobSpec{Kind: KindSweep, N: 4}, DefaultTenant, now)

	if _, ok := ds.claim(done.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim failed")
	}
	ds.finish(done.ID, ScenarioResult{UnitRoutes: 42, Conflicts: 3, OK: true}, nil,
		now.Add(2*time.Millisecond))
	if _, ok := ds.claim(failed.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim failed")
	}
	ds.finish(failed.ID, ScenarioResult{}, errors.New("boom"), now.Add(2*time.Millisecond))
	if _, err := ds.cancel(canceled.ID, now.Add(time.Millisecond)); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}

	before := ds.aggregate(time.Second)
	doneBefore, _ := ds.get(done.ID)
	if err := ds.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()
	dur := ds2.durability()
	if dur.Store != "wal" || dur.ReplayedRecords == 0 {
		t.Fatalf("reopen replayed nothing: %+v", dur)
	}
	if dur.RecoveredQueued != 1 || dur.ReexecutedRunning != 0 {
		t.Fatalf("recovery counts wrong: %+v", dur)
	}
	if got := ds2.recoveredQueued(); len(got) != 1 || got[0] != queued.ID {
		t.Fatalf("recovered queue = %v, want [%s]", got, queued.ID)
	}

	// Every job survived with its status and outcome intact.
	j, ok := ds2.get(done.ID)
	if !ok || j.Status != StatusDone || j.Result == nil || *j.Result != *doneBefore.Result {
		t.Fatalf("done job did not round-trip: %+v", j)
	}
	if j, _ := ds2.get(failed.ID); j.Status != StatusFailed || j.Error != "boom" {
		t.Fatalf("failed job did not round-trip: %+v", j)
	}
	if j, _ := ds2.get(canceled.ID); j.Status != StatusCanceled {
		t.Fatalf("canceled job did not round-trip: %+v", j)
	}
	if j, _ := ds2.get(queued.ID); j.Status != StatusQueued {
		t.Fatalf("queued job did not round-trip: %+v", j)
	}

	// The aggregates replay to the same numbers the live store held.
	after := ds2.aggregate(time.Second)
	if after.Done != before.Done || after.Failed != before.Failed ||
		after.Canceled != before.Canceled || after.Queued != before.Queued ||
		after.UnitRoutes != before.UnitRoutes || after.Conflicts != before.Conflicts {
		t.Fatalf("aggregates drifted across recovery:\nbefore %+v\nafter  %+v", before, after)
	}
	if !reflect.DeepEqual(after.Kinds, before.Kinds) {
		t.Fatalf("per-kind aggregates drifted: %+v != %+v", after.Kinds, before.Kinds)
	}
	if after.LatencyTotalP50Ns != before.LatencyTotalP50Ns ||
		after.LatencyRunP99Ns != before.LatencyRunP99Ns {
		t.Fatalf("latency windows drifted across recovery")
	}
}

func TestRecoveryPreservesAdmissionOrderAndCursors(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, 1000, nil)
	now := time.Now()
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now).ID)
	}
	ds.freeze() // crash: nothing after this reaches disk

	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()
	if got := ds2.recoveredQueued(); !reflect.DeepEqual(got, ids) {
		t.Fatalf("re-admission order = %v, want original admission order %v", got, ids)
	}

	// Cursor pagination is stable: same ids, newest first, resumable.
	page1, err := ds2.page(ListQuery{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Jobs) != 2 || page1.Jobs[0].ID != ids[4] || page1.Jobs[1].ID != ids[3] {
		t.Fatalf("first page wrong after recovery: %+v", page1.Jobs)
	}
	page2, err := ds2.page(ListQuery{Limit: 2, Cursor: page1.NextCursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Jobs) != 2 || page2.Jobs[0].ID != ids[2] || page2.Jobs[1].ID != ids[1] {
		t.Fatalf("resumed page wrong after recovery: %+v", page2.Jobs)
	}

	// The id sequence continues where it left off — no reuse.
	if j := ds2.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now); j.ID != "job-000006" {
		t.Fatalf("post-recovery admission got id %s, want job-000006", j.ID)
	}
}

func TestRecoveryReexecutesInterruptedRunning(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, 1000, nil)
	now := time.Now()
	running := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	queued := ds.add(JobSpec{Kind: KindSweep, N: 4}, DefaultTenant, now)
	if _, ok := ds.claim(running.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim failed")
	}
	ds.freeze() // crash mid-run

	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()
	dur := ds2.durability()
	if dur.ReexecutedRunning != 1 || dur.RecoveredQueued != 1 {
		t.Fatalf("recovery counts wrong: %+v", dur)
	}
	// The interrupted job is queued again — Started cleared, ahead of
	// the job admitted after it.
	j, _ := ds2.get(running.ID)
	if j.Status != StatusQueued || !j.Started.IsZero() {
		t.Fatalf("interrupted job not re-queued: %+v", j)
	}
	want := []string{running.ID, queued.ID}
	if got := ds2.recoveredQueued(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered order %v, want %v", got, want)
	}
	if st := ds2.aggregate(time.Second); st.Running != 0 || st.Queued != 2 {
		t.Fatalf("counts wrong after recovery: %+v", st)
	}
}

func TestRecoveryHonorsRequestedCancel(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, 1000, nil)
	now := time.Now()
	j := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	if _, ok := ds.claim(j.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim failed")
	}
	// DELETE accepted on the running job, then the crash beats the
	// cooperative checkpoint to it.
	if _, err := ds.cancel(j.ID, now.Add(2*time.Millisecond)); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	ds.freeze()

	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()
	dur := ds2.durability()
	if dur.CanceledAtRecovery != 1 || dur.ReexecutedRunning != 0 {
		t.Fatalf("recovery counts wrong: %+v", dur)
	}
	got, _ := ds2.get(j.ID)
	if got.Status != StatusCanceled || got.Error == "" {
		t.Fatalf("cancel-requested job not settled as canceled: %+v", got)
	}
	if len(ds2.recoveredQueued()) != 0 {
		t.Fatal("a canceled job was re-queued")
	}
}

func TestTornTailTruncatedAtRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector()
	inj.Target(walFileName)
	ds := openDurable(t, dir, 1000, inj.Open)
	now := time.Now()
	a := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	b := ds.add(JobSpec{Kind: KindSweep, N: 4}, DefaultTenant, now)
	// Tear the third record 10 bytes in: its header lands, most of its
	// payload does not — what SIGKILL mid-append leaves behind.
	inj.CutAfterBytes(inj.Written() + 10)
	c := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	ds.freeze()

	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()
	dur := ds2.durability()
	if dur.TruncatedTailBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", dur)
	}
	if dur.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones", dur.ReplayedRecords)
	}
	if _, ok := ds2.get(c.ID); ok {
		t.Fatal("the torn record's job survived recovery")
	}
	want := []string{a.ID, b.ID}
	if got := ds2.recoveredQueued(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want the intact prefix %v", got, want)
	}

	// Recovery compacted: a third open sees a clean log, no tail.
	ds2.close()
	ds3 := openDurable(t, dir, 1000, nil)
	defer ds3.close()
	if dur := ds3.durability(); dur.TruncatedTailBytes != 0 {
		t.Fatalf("tail reported again after compaction: %+v", dur)
	}
}

func TestCorruptRecordTruncatesTail(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector()
	inj.Target(walFileName)
	ds := openDurable(t, dir, 1000, inj.Open)
	now := time.Now()
	a := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	// Flip a payload byte of the second record in flight: the frame
	// lands whole but its checksum no longer matches.
	inj.CorruptByteAt(inj.Written() + frameHeaderLen + 4)
	b := ds.add(JobSpec{Kind: KindSweep, N: 4}, DefaultTenant, now)
	c := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now) // intact, but beyond the corruption
	ds.freeze()

	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()
	dur := ds2.durability()
	if dur.TruncatedTailBytes == 0 || dur.ReplayedRecords != 1 {
		t.Fatalf("corrupt record not truncated: %+v", dur)
	}
	if _, ok := ds2.get(a.ID); !ok {
		t.Fatal("the intact prefix was lost")
	}
	// Everything at and after the corruption is gone — replay cannot
	// trust frame boundaries past a bad checksum.
	if _, ok := ds2.get(b.ID); ok {
		t.Fatal("the corrupt record's job survived")
	}
	if _, ok := ds2.get(c.ID); ok {
		t.Fatal("a job beyond the corruption survived")
	}
}

func TestSnapshotCompactionBoundsWALAndSurvivesTmpLeftover(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, 4, nil) // snapshot every 4 records
	now := time.Now()
	for i := 0; i < 6; i++ {
		j := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
		if _, ok := ds.claim(j.ID, now.Add(time.Millisecond), nil); !ok {
			t.Fatal("claim failed")
		}
		ds.finish(j.ID, ScenarioResult{UnitRoutes: 5, OK: true}, nil, now.Add(2*time.Millisecond))
	}
	dur := ds.durability()
	if dur.Snapshots < 2 { // the boot snapshot plus at least one cadence one
		t.Fatalf("compaction never ran: %+v", dur)
	}
	if dur.LastSnapshot.IsZero() {
		t.Fatalf("LastSnapshot unset: %+v", dur)
	}
	if err := ds.close(); err != nil {
		t.Fatal(err)
	}

	// The log only holds the records since the last snapshot — 18
	// records were written, but the file stays bounded.
	if fi, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || fi.Size() > 4*1024 {
		t.Fatalf("wal not compacted: %v, %d bytes", err, fi.Size())
	}

	// A crash mid-snapshot leaves store.snap.tmp behind; recovery
	// ignores and removes it, trusting only the atomically-renamed
	// snapshot.
	tmp := filepath.Join(dir, snapTmpFileName)
	if err := os.WriteFile(tmp, []byte("half-written snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds2 := openDurable(t, dir, 4, nil)
	defer ds2.close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover snapshot tmp not cleaned up")
	}
	if st := ds2.aggregate(time.Second); st.Done != 6 || st.UnitRoutes != 30 {
		t.Fatalf("state lost across compacted recovery: %+v", st)
	}
}

func TestWALWriteFailureDegradesToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector()
	inj.Target(walFileName)
	ds := openDurable(t, dir, 1000, inj.Open)
	defer ds.close()
	now := time.Now()
	a := ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)

	inj.FailNow()
	b := ds.add(JobSpec{Kind: KindSweep, N: 4}, DefaultTenant, now)

	// The write failure cost durability, not availability: both jobs
	// are served from memory and further transitions keep working.
	dur := ds.durability()
	if dur.Degraded == "" {
		t.Fatalf("WAL failure not reported: %+v", dur)
	}
	for _, id := range []string{a.ID, b.ID} {
		if _, ok := ds.get(id); !ok {
			t.Fatalf("job %s lost after degrade", id)
		}
	}
	if _, ok := ds.claim(b.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim refused after degrade")
	}

	// The disk state is the pre-failure prefix: recovery finds job a
	// and nothing of b.
	ds.close()
	ds2 := openDurable(t, dir, 1000, nil)
	defer ds2.close()
	if _, ok := ds2.get(a.ID); !ok {
		t.Fatal("pre-failure job lost")
	}
	if _, ok := ds2.get(b.ID); ok {
		t.Fatal("post-failure job resurrected from a WAL that failed to hold it")
	}
}

func TestCorruptSnapshotRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir, 1000, nil)
	ds.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, time.Now())
	ds.close()

	snapPath := filepath.Join(dir, snapFileName)
	data, err := os.ReadFile(snapPath)
	if err != nil || len(data) < frameHeaderLen+1 {
		t.Fatalf("snapshot unreadable: %v (%d bytes)", err, len(data))
	}
	data[frameHeaderLen] ^= 0x80 // rot inside the payload
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openDurableStore(dir, 1000, nil); err == nil {
		t.Fatal("open accepted a corrupt snapshot — silent state loss")
	}
}

func TestWatchDropsCounted(t *testing.T) {
	old := watchBuffer
	watchBuffer = 0 // every publish to a subscriber drops
	defer func() { watchBuffer = old }()

	st := newStore()
	now := time.Now()
	j := st.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
	_, ch, stop, err := st.watch(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, ok := st.claim(j.ID, now.Add(time.Millisecond), nil); !ok {
		t.Fatal("claim failed")
	}
	st.finish(j.ID, ScenarioResult{OK: true}, nil, now.Add(2*time.Millisecond))

	// Both transition snapshots (running, done) were dropped — and
	// counted, so the lossiness is observable in /v1/stats.
	if st.aggregate(time.Second).WatchDrops != 2 {
		t.Fatalf("watch drops = %d, want 2", st.aggregate(time.Second).WatchDrops)
	}
	// The terminal close still happened: watchers are not leaked.
	if _, open := <-ch; open {
		t.Fatal("subscriber channel not closed after the terminal transition")
	}
}
