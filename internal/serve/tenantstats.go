// Windowed per-tenant leaderboards: the store keeps a bounded ring
// of recent finish events (who, when, how long it waited, how much
// work it did), and /v1/stats aggregates the trailing window into a
// throughput-ranked table per tenant. Ranks from short windows are
// noisy, so each row also carries a 95% Poisson interval on its
// throughput and the range of ranks consistent with those intervals:
// two tenants whose intervals overlap cannot be confidently ordered,
// and their rank ranges say so.
package serve

import (
	"math"
	"sort"
	"time"
)

// tenantEvent is one finished job, reduced to what the leaderboard
// needs.
type tenantEvent struct {
	at        time.Time
	tenant    string
	status    Status
	wait      time.Duration
	routes    int64
	conflicts int64
}

// tenantEventRing is a fixed-capacity ring of the most recent finish
// events (capacity maxLatencySamples, like the latency windows).
// Events replayed from the WAL re-enter with their original finish
// times, so a recovered service's window matches what it would have
// been — up to snapshot compaction, which drops pre-snapshot events
// (the window is a trailing view, not an archive).
type tenantEventRing struct {
	events []tenantEvent
	next   int
}

// add records a job that just reached a terminal state from running.
// Caller holds the store lock.
func (r *tenantEventRing) add(j *Job) {
	ev := tenantEvent{at: j.Finished, tenant: j.Tenant, status: j.Status, wait: time.Duration(j.WaitNs)}
	if j.Status == StatusDone && j.Result != nil {
		ev.routes = int64(j.Result.UnitRoutes)
		ev.conflicts = int64(j.Result.Conflicts)
	}
	if len(r.events) < maxLatencySamples {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.next] = ev
	r.next = (r.next + 1) % len(r.events)
}

// tenantAgg is one tenant's slice of the trailing window.
type tenantAgg struct {
	tenant    string
	jobs      int
	done      int
	routes    int64
	conflicts int64
	waits     []time.Duration
}

// tenantWindow folds the events of the trailing window per tenant.
func (st *store) tenantWindow(now time.Time, window time.Duration) map[string]*tenantAgg {
	st.mu.Lock()
	defer st.mu.Unlock()
	cutoff := now.Add(-window)
	out := make(map[string]*tenantAgg)
	for i := range st.tenantWin.events {
		ev := &st.tenantWin.events[i]
		if ev.at.Before(cutoff) {
			continue
		}
		agg, ok := out[ev.tenant]
		if !ok {
			agg = &tenantAgg{tenant: ev.tenant}
			out[ev.tenant] = agg
		}
		agg.jobs++
		if ev.status == StatusDone {
			agg.done++
			agg.routes += ev.routes
			agg.conflicts += ev.conflicts
		}
		agg.waits = append(agg.waits, ev.wait)
	}
	return out
}

// TenantStats is one row of the windowed per-tenant leaderboard.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Weight is the tenant's configured WFQ share.
	Weight int `json:"weight"`
	// Queued is the tenant's current scheduler backlog.
	Queued int `json:"queued"`
	// Jobs and Done count the window's finishes (Jobs includes failed
	// and canceled; Done only successful completions).
	Jobs int `json:"jobs"`
	Done int `json:"done"`
	// UnitRoutes and Conflicts total the window's completed work.
	UnitRoutes int64 `json:"unit_routes"`
	Conflicts  int64 `json:"conflicts"`
	// QueueWaitP50Ns / P99Ns are queue-wait percentiles over the
	// window's finishes — the fairness signal: a starved tenant's
	// p99 explodes while a hot one's stays flat.
	QueueWaitP50Ns int64 `json:"queue_wait_p50_ns"`
	QueueWaitP99Ns int64 `json:"queue_wait_p99_ns"`
	// ThroughputJobsPerSec is Jobs over the window, with a 95%
	// Poisson interval (jobs ± 1.96·√jobs, clamped at 0): the
	// uncertainty a count that small carries.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	ThroughputLo         float64 `json:"throughput_lo"`
	ThroughputHi         float64 `json:"throughput_hi"`
	// Rank is the tenant's position by point-estimate throughput
	// (1 = highest). RankLo/RankHi bound the ranks consistent with
	// the throughput intervals: RankLo counts only tenants whose
	// whole interval sits above this one's, RankHi everything not
	// strictly below. RankLo==RankHi means the window's counts
	// actually support the ordering.
	Rank   int `json:"rank"`
	RankLo int `json:"rank_lo"`
	RankHi int `json:"rank_hi"`
}

// DefaultTenantWindow is the /v1/stats leaderboard window when the
// request does not override it (exported: the cluster client uses it
// when fanning a windowless Stats out across nodes).
const DefaultTenantWindow = 60 * time.Second

// buildTenantStats turns the window aggregation into the ranked
// leaderboard. weights and depths come from the scheduler side;
// tenants with a live backlog but no finishes yet still get a row
// (their window numbers are zero — they are waiting, not absent).
func buildTenantStats(aggs map[string]*tenantAgg, window time.Duration,
	weightOf func(string) int, depths map[string]int) []TenantStats {
	rows := make([]TenantStats, 0, len(aggs))
	secs := window.Seconds()
	for name, agg := range aggs {
		row := TenantStats{
			Tenant:         name,
			Weight:         weightOf(name),
			Queued:         depths[name],
			Jobs:           agg.jobs,
			Done:           agg.done,
			UnitRoutes:     agg.routes,
			Conflicts:      agg.conflicts,
			QueueWaitP50Ns: percentile(agg.waits, 50).Nanoseconds(),
			QueueWaitP99Ns: percentile(agg.waits, 99).Nanoseconds(),
		}
		if secs > 0 {
			n := float64(agg.jobs)
			margin := 1.96 * math.Sqrt(n)
			row.ThroughputJobsPerSec = n / secs
			row.ThroughputLo = math.Max(0, n-margin) / secs
			row.ThroughputHi = (n + margin) / secs
		}
		rows = append(rows, row)
	}
	for name := range depths {
		if _, seen := aggs[name]; !seen {
			rows = append(rows, TenantStats{Tenant: name, Weight: weightOf(name), Queued: depths[name]})
		}
	}
	return RankTenantStats(rows)
}

// RankTenantStats orders leaderboard rows by point-estimate
// throughput and assigns each its rank plus the simultaneous rank
// interval the throughput intervals support (RankLo counts only
// tenants whose whole interval sits above this one's; RankHi
// everything not confidently below). Exported for the cluster
// fan-in: after MergeStats recomputes the Poisson intervals from
// cluster-wide counts, the rank bounds must be rebuilt from those —
// per-node ranks do not merge.
func RankTenantStats(rows []TenantStats) []TenantStats {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ThroughputJobsPerSec != rows[j].ThroughputJobsPerSec {
			return rows[i].ThroughputJobsPerSec > rows[j].ThroughputJobsPerSec
		}
		return rows[i].Tenant < rows[j].Tenant
	})
	for i := range rows {
		rows[i].Rank = i + 1
		lo, hi := 1, len(rows)
		for k := range rows {
			if k == i {
				continue
			}
			if rows[k].ThroughputLo > rows[i].ThroughputHi {
				lo++ // confidently above: this row cannot outrank it
			}
			if rows[k].ThroughputHi < rows[i].ThroughputLo {
				hi-- // confidently below: this row cannot sink past it
			}
		}
		rows[i].RankLo, rows[i].RankHi = lo, hi
	}
	return rows
}
