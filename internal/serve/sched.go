// The weighted fair queue: per-tenant job queues drained by deficit
// round robin. The single bounded FIFO channel the service used
// through PR 8 let one hot tenant occupy every slot; here each
// tenant queues separately, and workers visit the backlogged tenants
// in a ring, each visit granting deficit equal to the tenant's
// weight and serving that many jobs before moving on — so over any
// busy window, tenants get worker time proportional to their
// weights, independent of how fast they submit.
//
// Within one tenant the queue orders by (priority desc, admission
// seq asc): a tenant's urgent jobs jump its own line, never another
// tenant's. The global capacity bound is unchanged from the channel
// days (ErrQueueFull backpressure); per-tenant MaxQueued quotas
// bound how much of it one tenant can hold.
package serve

import (
	"fmt"
	"sort"
	"sync"
)

// queuedJob is one scheduler entry. seq is the admission sequence
// (from the job id), the FIFO tiebreak within a priority class.
type queuedJob struct {
	id       string
	seq      int
	priority int
}

// tenantQueue is one tenant's pending jobs plus its DRR state.
type tenantQueue struct {
	name    string
	weight  int
	deficit int
	jobs    []queuedJob
}

// insert places j by (priority desc, seq asc).
func (q *tenantQueue) insert(j queuedJob) {
	i := sort.Search(len(q.jobs), func(i int) bool {
		if q.jobs[i].priority != j.priority {
			return q.jobs[i].priority < j.priority
		}
		return q.jobs[i].seq > j.seq
	})
	q.jobs = append(q.jobs, queuedJob{})
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
}

// wfq is the scheduler: a capacity-bounded set of per-tenant queues
// and the DRR ring of the currently backlogged ones. Blocking pop
// replaces the channel receive the workers used to range over.
type wfq struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	size     int
	closed   bool // intake closed (drain); pop returns false once empty

	queues map[string]*tenantQueue
	active []*tenantQueue // backlogged tenants, the DRR ring
	idx    int            // ring position
}

func newWFQ(capacity int) *wfq {
	w := &wfq{capacity: capacity, queues: make(map[string]*tenantQueue)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// push enqueues one job for a tenant. force bypasses both the global
// capacity and the tenant quota — recovery re-admission and
// preemption requeues must never fail. The error is ErrQueueFull
// (global) or a wrapped ErrQueueFull naming the tenant quota.
func (w *wfq) push(tenantName string, weight, maxQueued int, j queuedJob, force bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !force && w.size >= w.capacity {
		return ErrQueueFull
	}
	q, ok := w.queues[tenantName]
	if !ok {
		q = &tenantQueue{name: tenantName}
		w.queues[tenantName] = q
	}
	q.weight = weight
	if q.weight <= 0 {
		q.weight = 1
	}
	if !force && maxQueued > 0 && len(q.jobs) >= maxQueued {
		return &TenantQueueFullError{Tenant: tenantName, MaxQueued: maxQueued}
	}
	q.insert(j)
	if len(q.jobs) == 1 {
		w.active = append(w.active, q)
	}
	w.size++
	w.cond.Signal()
	return nil
}

// pop blocks until a job is available and returns the DRR pick;
// ok=false means the intake is closed and every queue is empty — the
// worker's signal to exit (the old "channel closed").
func (w *wfq) pop() (id string, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.size == 0 {
		if w.closed {
			return "", false
		}
		w.cond.Wait()
	}
	q := w.active[w.idx]
	if q.deficit <= 0 {
		// Fresh visit in this round: grant the tenant its share.
		q.deficit = q.weight
	}
	j := q.jobs[0]
	copy(q.jobs, q.jobs[1:])
	q.jobs = q.jobs[:len(q.jobs)-1]
	q.deficit--
	w.size--
	if len(q.jobs) == 0 {
		// Emptied: leave the ring and forfeit any leftover deficit
		// (banking credit across idle periods would let a returning
		// tenant burst past its share).
		q.deficit = 0
		w.active = append(w.active[:w.idx], w.active[w.idx+1:]...)
		if len(w.active) > 0 {
			w.idx %= len(w.active)
		} else {
			w.idx = 0
		}
	} else if q.deficit == 0 {
		w.idx = (w.idx + 1) % len(w.active)
	}
	return j.id, true
}

// remove drops a queued job (canceled while waiting) so it stops
// occupying queue capacity. The worker-side claim already tolerates
// canceled ids, so remove is an optimization, not a correctness
// requirement — but without it a canceled backlog would keep
// rejecting live submissions.
func (w *wfq) remove(tenantName, id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	q, ok := w.queues[tenantName]
	if !ok {
		return
	}
	for i := range q.jobs {
		if q.jobs[i].id == id {
			copy(q.jobs[i:], q.jobs[i+1:])
			q.jobs = q.jobs[:len(q.jobs)-1]
			w.size--
			if len(q.jobs) == 0 {
				q.deficit = 0
				for ai, aq := range w.active {
					if aq == q {
						w.active = append(w.active[:ai], w.active[ai+1:]...)
						if ai < w.idx {
							w.idx--
						}
						if len(w.active) > 0 {
							w.idx %= len(w.active)
						} else {
							w.idx = 0
						}
						break
					}
				}
			}
			return
		}
	}
}

// drainAll empties every tenant queue at once and returns the ids in
// admission order — the drain-with-migration extraction. Once a job
// leaves here no worker can pop it, so the store-side migrate races
// only workers that popped before the call (and loses to them
// harmlessly: migrate requires queued). Resubmission in admission
// order preserves each tenant's FIFO on the receiving nodes.
func (w *wfq) drainAll() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var all []queuedJob
	for _, q := range w.queues {
		all = append(all, q.jobs...)
		q.jobs = nil
		q.deficit = 0
	}
	w.active = nil
	w.idx = 0
	w.size = 0
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	ids := make([]string, len(all))
	for i, j := range all {
		ids[i] = j.id
	}
	return ids
}

// closeIntake stops admission: pushes still work only with force,
// and pop drains what remains, then reports done.
func (w *wfq) closeIntake() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// depth is the total queued-job count.
func (w *wfq) depth() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// free is the remaining global capacity (0 when over capacity from
// forced pushes).
func (w *wfq) free() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.size >= w.capacity {
		return 0
	}
	return w.capacity - w.size
}

// queuedFor is one tenant's current backlog.
func (w *wfq) queuedFor(tenantName string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if q, ok := w.queues[tenantName]; ok {
		return len(q.jobs)
	}
	return 0
}

// depths snapshots every tenant's backlog (for the per-tenant queue
// depth gauge and the leaderboard).
func (w *wfq) depths() map[string]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]int, len(w.queues))
	for name, q := range w.queues {
		if len(q.jobs) > 0 {
			out[name] = len(q.jobs)
		}
	}
	return out
}

// TenantQueueFullError is a 429 queue_full rejection scoped to one
// tenant's MaxQueued quota (the shared queue may have room — this
// tenant's slice of it does not).
type TenantQueueFullError struct {
	Tenant    string
	MaxQueued int
}

func (e *TenantQueueFullError) Error() string {
	return fmt.Sprintf("serve: tenant %q queue quota full (max_queued %d)", e.Tenant, e.MaxQueued)
}

func (e *TenantQueueFullError) Unwrap() error { return ErrQueueFull }
