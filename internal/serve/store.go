// The job store: the record of every job the service has admitted,
// plus the aggregation the /stats endpoint reports — status counts,
// latency percentiles, unit-route and conflict totals. Store is the
// interface the Service schedules against; the in-memory map here is
// the default implementation, and wal.go wraps it with a durable
// WAL-backed one. The store holds the canonical *Job values;
// everything it hands out is a snapshot copy, so readers never race
// the workers.
package serve

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"starmesh/internal/workload"
)

// Store is the job-state backend of a Service: the full lifecycle
// state machine (admit → claim → finish/cancel), the watch
// subscription stream, listing/pagination and the stats aggregation.
// Two implementations exist: the in-memory store below (state dies
// with the process) and the WAL-backed durable store in wal.go
// (every transition is logged, and recovery re-admits interrupted
// work). The Service neither knows nor cares which it runs on.
type Store interface {
	// add admits a job in the queued state, owned by tenant, and
	// returns its snapshot.
	add(spec JobSpec, tenant string, now time.Time) Job
	// remove forgets a job that never made it into the queue
	// (admission rollback after ErrQueueFull).
	remove(id string)
	// get returns a snapshot of a job.
	get(id string) (Job, bool)
	// list returns snapshots of the most recent retained jobs, newest
	// first, up to limit (0 means all).
	list(limit int) []Job
	// page walks the retained jobs newest-first per the query.
	page(q ListQuery) (JobPage, error)
	// claim transitions a queued job to running; false means the job
	// was canceled while waiting and the worker must skip it.
	claim(id string, now time.Time, cancel context.CancelFunc) (JobSpec, bool)
	// finish records a running job's outcome. requeued=true means the
	// job was preempted (not terminal): it went back to queued with
	// its partial stats preserved and the caller must re-enqueue it.
	finish(id string, res workload.ScenarioResult, err error, now time.Time) (requeued bool)
	// requestPreempt picks the best preemption victim among running
	// jobs — preemptible (a multi-trial sweep), not already being
	// canceled or preempted, and of strictly lower priority — and
	// fires its context cancel. The job requeues at its next
	// checkpoint instead of finishing canceled.
	requestPreempt(priority int, now time.Time) (id string, ok bool)
	// cancel aborts a job (queued: immediately; running: at its next
	// checkpoint; terminal: ErrTerminal).
	cancel(id string, now time.Time) (Job, error)
	// migrate hands a queued job off for drain migration: locally it
	// becomes canceled with error "migrated" (WAL-logged like any
	// cancel, so a crash mid-drain recovers it as canceled, never as
	// a duplicate run), and the returned snapshot carries the Spec
	// and Tenant the drainer resubmits elsewhere. false means the job
	// is no longer queued (a worker won the race) and must not move.
	migrate(id string, now time.Time) (Job, bool)
	// cancelAllRunning fires every running job's context cancel.
	cancelAllRunning()
	// watch subscribes to a job's status transitions.
	watch(id string) (Job, <-chan Job, func(), error)
	// trace appends a mid-run event to a live job's timeline (durable
	// stores log it so the timeline survives a crash).
	trace(id string, now time.Time, event, detail string)
	// aggregate computes the store's part of Stats.
	aggregate(uptime time.Duration) Stats
	// watchStats samples live watch-subscription state (subscriber
	// channels, cumulative drops) for the metrics layer.
	watchStats() (subscribers int, drops int64)
	// setHooks installs the metrics observers called on claim and
	// finish (before any worker starts).
	setHooks(onClaim func(tenant, kind string, wait time.Duration), onFinish func(status Status, tenant, kind string, run time.Duration, ran bool))
	// tenantWindow aggregates the finish events of the trailing
	// window per tenant — the /v1/stats leaderboard's raw material.
	tenantWindow(now time.Time, window time.Duration) map[string]*tenantAgg
	// durability describes the backend (kind, WAL paths, recovery
	// counts) for /v1/healthz and /v1/stats.
	durability() Durability
	// recoveredQueued returns the ids the Service must re-admit at
	// startup, in original admission order (empty for memory stores).
	recoveredQueued() []string
	// close releases the backend (flushes and closes the WAL).
	close() error
}

// Status is the lifecycle state of a job.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Job is one admitted job and its outcome.
type Job struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// Tenant names the submitting tenant (resolved from X-API-Key;
	// DefaultTenant when no key was presented). It rides the WAL with
	// the job, so recovery re-admits into the right tenant queue.
	Tenant string `json:"tenant,omitempty"`
	Shape  string `json:"shape"`
	Status Status `json:"status"`
	// Result is set once the job is done; its unit routes, conflicts
	// and self-check are bit-identical to a standalone run of the
	// same spec.
	Result *workload.ScenarioResult `json:"result,omitempty"`
	Error  string                   `json:"error,omitempty"`

	// CancelRequested marks a running job whose cancellation has been
	// requested; the job transitions to canceled at its next
	// cooperative checkpoint.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Preemptions counts how many times a higher-priority submission
	// bounced this job back to the queue mid-run.
	Preemptions int `json:"preemptions,omitempty"`
	// preempting marks a running job whose context was canceled to
	// make room for a higher-priority one: the checkpoint abort
	// requeues it instead of finishing it canceled. Deliberately not
	// serialized — a crash mid-preemption recovers through the normal
	// interrupted-running path (requeue + re-execute), same outcome.
	preempting bool

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// WaitNs and RunNs split the total latency into queueing and
	// execution time (set when the job finishes).
	WaitNs int64 `json:"wait_ns,omitempty"`
	RunNs  int64 `json:"run_ns,omitempty"`

	// Trace is the job's span timeline (see trace.go): every lifecycle
	// event with its duration since the previous one, persisted with
	// the job through the WAL.
	Trace []TraceEvent `json:"trace,omitempty"`
}

// snapshot copies the job for handing outside the store lock.
func (j *Job) snapshot() Job {
	out := *j
	if j.Result != nil {
		r := *j.Result
		out.Result = &r
	}
	out.Trace = append([]TraceEvent(nil), j.Trace...)
	return out
}

// Retention bounds. The service is long-running, so the store keeps
// a bounded window of job records and latency samples: once more
// than maxRetainedJobs are held, the oldest terminal jobs are
// evicted (their ids then answer 404 — the aggregate counters stay
// cumulative), and the percentile window holds the most recent
// maxLatencySamples finishes. Variables rather than constants so
// tests can shrink them.
var (
	maxRetainedJobs   = 4096
	maxLatencySamples = 4096
)

// latWindow is a fixed-capacity ring of the most recent latency
// samples.
type latWindow struct {
	samples []time.Duration
	next    int
}

func (w *latWindow) add(d time.Duration) {
	if len(w.samples) < maxLatencySamples {
		w.samples = append(w.samples, d)
		return
	}
	w.samples[w.next] = d
	w.next = (w.next + 1) % len(w.samples)
}

// walOp names one job transition in the durable store's log; the
// in-memory store emits them through its logf hook (a no-op when
// nil), so the WAL observes every transition under the same lock
// that orders them.
type walOp string

const (
	opSubmit    walOp = "submit"    // admitted queued
	opClaim     walOp = "claim"     // queued → running
	opFinish    walOp = "finish"    // running → done/failed/canceled
	opCancel    walOp = "cancel"    // queued → canceled
	opCancelReq walOp = "cancelreq" // running, cancellation requested
	opRemove    walOp = "remove"    // admission rollback
	opTrace     walOp = "trace"     // mid-run trace event appended
	opPreempt   walOp = "preempt"   // running → queued (preemption requeue)
)

// store is the mutex-guarded job table.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // admission order, for listing
	front int      // index in order of the oldest retained job
	next  int

	// logf, when set, is called under mu with every transition — the
	// durable store's append hook. Keeping it inside the lock makes
	// the WAL's record order identical to the store's transition
	// order.
	logf func(op walOp, j *Job)

	// onClaim and onFinish, when set, observe transitions for the
	// metrics layer (queue-wait and run-time histograms, finished
	// counters; ran=false means the job was canceled straight out of
	// the queue). Called under mu; implementations must be cheap.
	onClaim  func(tenant, kind string, wait time.Duration)
	onFinish func(status Status, tenant, kind string, run time.Duration, ran bool)

	// watchDrops counts transition snapshots dropped because a
	// subscriber's channel was full (surfaced in /v1/stats so lossy
	// watch streams are observable).
	watchDrops int64

	// cancels holds the context cancel of every running job, so a
	// DELETE can abort it at its next cooperative checkpoint.
	cancels map[string]context.CancelFunc
	// watchers holds the status-transition subscribers per job id;
	// every transition publishes a snapshot, and terminal transitions
	// close the channels.
	watchers map[string][]chan Job

	counts     map[Status]int // cumulative, unaffected by eviction
	finished   int64          // done + failed, cumulative
	unitRoutes int64
	conflicts  int64
	byKind     map[string]*KindStats // cumulative per scenario kind
	latTotal   latWindow             // created→finished of done/failed jobs
	latRun     latWindow             // started→finished
	tenantWin  tenantEventRing       // recent finish events, for windowed leaderboards
}

func newStore() *store {
	return &store{
		jobs:     make(map[string]*Job),
		counts:   make(map[Status]int),
		byKind:   make(map[string]*KindStats),
		cancels:  make(map[string]context.CancelFunc),
		watchers: make(map[string][]chan Job),
	}
}

// watchBuffer bounds a subscriber channel. A job makes at most a
// handful of transitions after subscription (running, cancel
// requested, terminal), so the buffer never fills in practice; a
// full channel drops the intermediate snapshot rather than blocking
// the store (the terminal snapshot still arrives via the close-time
// drain in the handler's final read of the job). Every drop is
// counted in Stats.WatchDrops. A variable so tests can shrink it.
var watchBuffer = 8

// publish pushes a snapshot of j to its watchers; terminal
// transitions close and forget the subscription. Caller holds st.mu.
func (st *store) publish(j *Job) {
	chans := st.watchers[j.ID]
	if len(chans) == 0 {
		return
	}
	snap := j.snapshot()
	for _, ch := range chans {
		select {
		case ch <- snap:
		default:
			st.watchDrops++
		}
	}
	if j.Status.Terminal() {
		for _, ch := range chans {
			close(ch)
		}
		delete(st.watchers, j.ID)
	}
}

// watch subscribes to a job's status transitions. It returns the
// current snapshot plus a channel of subsequent snapshots; the
// channel closes after the terminal transition (nil when the job is
// already terminal — the snapshot is the whole story). stop
// unsubscribes early and is safe to call after the close.
func (st *store) watch(id string) (Job, <-chan Job, func(), error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return Job{}, nil, nil, ErrNotFound
	}
	snap := j.snapshot()
	if j.Status.Terminal() {
		return snap, nil, func() {}, nil
	}
	ch := make(chan Job, watchBuffer)
	st.watchers[id] = append(st.watchers[id], ch)
	stop := func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		chans := st.watchers[id]
		for i, c := range chans {
			if c == ch {
				st.watchers[id] = append(chans[:i], chans[i+1:]...)
				return
			}
		}
	}
	return snap, ch, stop, nil
}

// seqOf extracts a job id's admission sequence number (the pagination
// cursor's currency); malformed ids order first.
func seqOf(id string) int {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return 0
	}
	return n
}

// SeqOf exposes a job id's admission sequence — the ordering the
// cluster client's merged pagination sorts and cursors by.
func SeqOf(id string) int { return seqOf(id) }

// evict drops the oldest terminal jobs beyond the retention bound.
// Queued or running jobs are never evicted (their population is
// bounded by the queue depth plus the worker count anyway), so
// eviction stops at the first live one. Caller holds st.mu.
func (st *store) evict() {
	for len(st.jobs) > maxRetainedJobs && st.front < len(st.order) {
		j := st.jobs[st.order[st.front]]
		if j != nil && !j.Status.Terminal() {
			break
		}
		if j != nil {
			delete(st.jobs, j.ID)
		}
		st.front++
	}
	// Compact the order slice once the dead prefix dominates.
	if st.front > 1024 && st.front > len(st.order)/2 {
		st.order = append([]string(nil), st.order[st.front:]...)
		st.front = 0
	}
}

// add admits a job in the queued state and returns its snapshot.
func (st *store) add(spec JobSpec, tenant string, now time.Time) Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", st.next),
		Spec:    spec,
		Tenant:  tenant,
		Shape:   spec.Shape(),
		Status:  StatusQueued,
		Created: now,
	}
	appendTrace(j, now, TraceSubmitted, "tenant="+tenant)
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	st.counts[StatusQueued]++
	if st.logf != nil {
		st.logf(opSubmit, j)
	}
	return j.snapshot()
}

// remove forgets a job that never made it into the queue (admission
// rollback after ErrQueueFull).
func (st *store) remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[id]; ok {
		st.counts[j.Status]--
		delete(st.jobs, id)
		if n := len(st.order); n > 0 && st.order[n-1] == id {
			st.order = st.order[:n-1]
		}
		if st.logf != nil {
			st.logf(opRemove, j)
		}
	}
}

// get returns a snapshot of a job.
func (st *store) get(id string) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// list returns snapshots of the most recent retained jobs, newest
// first, up to limit (0 means all).
func (st *store) list(limit int) []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.order) - st.front
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Job, 0, limit)
	for i := len(st.order) - 1; i >= len(st.order)-limit; i-- {
		out = append(out, st.jobs[st.order[i]].snapshot())
	}
	return out
}

// Page size bounds of the v1 listing.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// ListQuery filters and paginates the v1 job listing.
type ListQuery struct {
	// Status keeps only jobs in that state ("" = all).
	Status Status
	// Limit is the page size (0 = defaultPageLimit, capped at
	// maxPageLimit).
	Limit int
	// Cursor resumes a walk: the opaque NextCursor of the previous
	// page ("" = start at the newest job).
	Cursor string
}

// JobPage is one page of the listing, newest first. NextCursor is
// set iff at least one more matching job exists beyond this page.
type JobPage struct {
	Jobs       []Job  `json:"jobs"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// page walks the retained jobs newest-first, filtered by status,
// resuming strictly below the cursor. The cursor is the admission
// sequence of the last job returned — stable across evictions and
// new admissions (new jobs get higher sequences and land before the
// cursor, never inside a resumed walk).
func (st *store) page(q ListQuery) (JobPage, error) {
	limit := q.Limit
	if limit <= 0 {
		limit = defaultPageLimit
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	below := int(^uint(0) >> 1) // max int: no cursor = start at newest
	if q.Cursor != "" {
		seq, err := strconv.Atoi(q.Cursor)
		if err != nil || seq < 0 {
			return JobPage{}, fmt.Errorf("bad cursor %q", q.Cursor)
		}
		below = seq
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	page := JobPage{Jobs: []Job{}}
	for i := len(st.order) - 1; i >= st.front; i-- {
		j := st.jobs[st.order[i]]
		if j == nil || seqOf(j.ID) >= below {
			continue
		}
		if q.Status != "" && j.Status != q.Status {
			continue
		}
		if len(page.Jobs) == limit {
			// One more match exists: the page below this one.
			page.NextCursor = strconv.Itoa(seqOf(page.Jobs[len(page.Jobs)-1].ID))
			return page, nil
		}
		page.Jobs = append(page.Jobs, j.snapshot())
	}
	return page, nil
}

// claim transitions a queued job to running, registering the cancel
// that aborts it mid-run; false means the job was canceled while
// waiting and the worker must skip it.
func (st *store) claim(id string, now time.Time, cancel context.CancelFunc) (JobSpec, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.Status != StatusQueued {
		return JobSpec{}, false
	}
	st.counts[j.Status]--
	j.Status = StatusRunning
	j.Started = now
	st.counts[StatusRunning]++
	appendTrace(j, now, TraceClaimed, "")
	if cancel != nil {
		st.cancels[id] = cancel
	}
	if st.logf != nil {
		st.logf(opClaim, j)
	}
	if st.onClaim != nil {
		st.onClaim(j.Tenant, j.Spec.Kind, now.Sub(j.Created))
	}
	st.publish(j)
	return j.Spec, true
}

// finish records a job's outcome and folds it into the aggregates.
// A preempted job (preempting set, checkpoint abort, no user cancel)
// does not finish: it transitions back to queued with the partial
// stats of the interrupted run preserved on the record — the exact
// cancel-checkpoint mechanism, with a requeue instead of a terminal
// status. requeued=true tells the caller to re-enqueue it.
func (st *store) finish(id string, res workload.ScenarioResult, err error, now time.Time) (requeued bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.Status != StatusRunning {
		return false
	}
	delete(st.cancels, id)
	if j.preempting && jobCanceled(err) && !j.CancelRequested {
		st.counts[j.Status]--
		st.counts[StatusQueued]++
		j.Status = StatusQueued
		j.Started = time.Time{}
		j.preempting = false
		j.Preemptions++
		res.Name = j.Spec.Name()
		j.Result = &res // partial stats of the interrupted run
		appendTrace(j, now, TracePreempted,
			fmt.Sprintf("requeued with partial stats (%d unit routes)", res.UnitRoutes))
		if st.logf != nil {
			st.logf(opPreempt, j)
		}
		st.publish(j)
		return true
	}
	// A preempt that lost the race to completion (or to a real
	// cancel): fall through to the normal terminal transition.
	j.preempting = false
	st.counts[j.Status]--
	j.Finished = now
	j.WaitNs = j.Started.Sub(j.Created).Nanoseconds()
	j.RunNs = j.Finished.Sub(j.Started).Nanoseconds()
	switch {
	case jobCanceled(err):
		// A cooperative abort: terminal canceled, with the partial
		// stats the runner accumulated before the checkpoint fired
		// preserved on the job record (OK false, not folded into the
		// done aggregates).
		j.Status = StatusCanceled
		j.Error = err.Error()
		res.Name = j.Spec.Name()
		res.ElapsedNs = j.RunNs
		j.Result = &res
	case err != nil:
		j.Status = StatusFailed
		j.Error = err.Error()
	default:
		j.Status = StatusDone
		res.Name = j.Spec.Name()
		res.ElapsedNs = j.RunNs
		j.Result = &res
	}
	appendTrace(j, now, string(j.Status), j.Error)
	st.foldFinished(j)
	if st.logf != nil {
		st.logf(opFinish, j)
	}
	if st.onFinish != nil {
		st.onFinish(j.Status, j.Tenant, j.Spec.Kind, now.Sub(j.Started), true)
	}
	st.publish(j)
	st.evict()
	return false
}

// foldFinished folds a job that just reached a terminal status from
// running into the aggregates: status counts, per-kind totals, the
// cumulative unit-route/conflict counters and the latency windows.
// Shared by the live finish path and WAL replay, so recovered
// aggregates cannot drift from live ones. Caller holds st.mu; j's
// terminal fields are already set.
func (st *store) foldFinished(j *Job) {
	kind, ok := st.byKind[j.Spec.Kind]
	if !ok {
		kind = &KindStats{Kind: j.Spec.Kind}
		st.byKind[j.Spec.Kind] = kind
	}
	switch j.Status {
	case StatusCanceled:
		kind.Canceled++
	case StatusFailed:
		kind.Failed++
	default: // done
		st.unitRoutes += int64(j.Result.UnitRoutes)
		st.conflicts += int64(j.Result.Conflicts)
		kind.Done++
		kind.UnitRoutes += int64(j.Result.UnitRoutes)
		kind.Conflicts += int64(j.Result.Conflicts)
	}
	st.counts[j.Status]++
	st.finished++
	st.latTotal.add(j.Finished.Sub(j.Created))
	st.latRun.add(j.Finished.Sub(j.Started))
	st.tenantWin.add(j)
}

// cancel aborts a job. Queued jobs transition to canceled
// immediately (the worker skips them); running jobs get their
// context canceled and abort at the next cooperative checkpoint —
// the returned snapshot shows cancel_requested, and the terminal
// canceled transition follows within one checkpoint's latency.
// Terminal jobs conflict with ErrTerminal.
func (st *store) cancel(id string, now time.Time) (Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.Status {
	case StatusQueued:
		st.counts[j.Status]--
		j.Status = StatusCanceled
		j.Finished = now
		appendTrace(j, now, string(StatusCanceled), "canceled while queued")
		st.foldCanceledQueued(j)
		if st.logf != nil {
			st.logf(opCancel, j)
		}
		if st.onFinish != nil {
			st.onFinish(StatusCanceled, j.Tenant, j.Spec.Kind, 0, false)
		}
		st.publish(j)
		snap := j.snapshot()
		st.evict()
		return snap, nil
	case StatusRunning:
		j.CancelRequested = true
		appendTrace(j, now, TraceCancelRequested, "")
		if cancel, ok := st.cancels[id]; ok {
			cancel()
		}
		if st.logf != nil {
			st.logf(opCancelReq, j)
		}
		st.publish(j)
		return j.snapshot(), nil
	default:
		return j.snapshot(), fmt.Errorf("%w: job %s is %s", ErrTerminal, id, j.Status)
	}
}

// migrate transitions a queued job to locally-terminal canceled with
// the migration marker, for drain-with-migration. It reuses cancel's
// aggregates fold and WAL op (the logged snapshot carries the
// "migrated" error, so replay and live state agree) and publishes to
// watchers — a local watch stream ends here; the routing client's
// cluster watcher re-attaches to the resubmitted job.
func (st *store) migrate(id string, now time.Time) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.Status != StatusQueued {
		return Job{}, false
	}
	st.counts[StatusQueued]--
	j.Status = StatusCanceled
	j.Finished = now
	j.Error = MigratedError
	appendTrace(j, now, TraceMigrated, "queued job handed off at drain")
	st.foldCanceledQueued(j)
	if st.logf != nil {
		st.logf(opCancel, j)
	}
	if st.onFinish != nil {
		st.onFinish(StatusCanceled, j.Tenant, j.Spec.Kind, 0, false)
	}
	st.publish(j)
	snap := j.snapshot()
	st.evict()
	return snap, true
}

// foldCanceledQueued folds a job canceled straight out of the queue
// into the aggregates (status count + per-kind canceled; no latency
// samples — the job never ran). Shared with WAL replay. Caller holds
// st.mu.
func (st *store) foldCanceledQueued(j *Job) {
	st.counts[StatusCanceled]++
	if kind, ok := st.byKind[j.Spec.Kind]; ok {
		kind.Canceled++
	} else {
		st.byKind[j.Spec.Kind] = &KindStats{Kind: j.Spec.Kind, Canceled: 1}
	}
}

// cancelAllRunning fires the context cancel of every running job —
// the drain deadline's hammer: each aborts at its next checkpoint.
func (st *store) cancelAllRunning() {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	for id, cancel := range st.cancels {
		if j, ok := st.jobs[id]; ok {
			j.CancelRequested = true
			appendTrace(j, now, TraceCancelRequested, "drain deadline")
			if st.logf != nil {
				st.logf(opCancelReq, j)
			}
			st.publish(j)
		}
		cancel()
	}
}

// Stats is the aggregated service view (/stats).
type Stats struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`

	UnitRoutes int64 `json:"unit_routes"`
	Conflicts  int64 `json:"conflicts"`

	// WatchDrops counts transition snapshots dropped from full watch
	// subscriber channels — nonzero means at least one watch stream
	// missed an intermediate (never the terminal) transition.
	WatchDrops int64 `json:"watch_drops"`

	// Durability describes the job-store backend: memory, or the WAL
	// paths, snapshot age and boot-time recovery counts.
	Durability Durability `json:"durability"`

	// Kinds aggregates finished jobs per scenario kind (sorted by
	// kind for stable output) — every registry family the service has
	// executed appears here.
	Kinds []KindStats `json:"kinds,omitempty"`

	// Latency percentiles over the most recent finished (done or
	// failed) jobs — a bounded window of maxLatencySamples — with
	// total = admission→finish, run = execution only.
	LatencyTotalP50Ns int64 `json:"latency_total_p50_ns"`
	LatencyTotalP99Ns int64 `json:"latency_total_p99_ns"`
	LatencyRunP50Ns   int64 `json:"latency_run_p50_ns"`
	LatencyRunP99Ns   int64 `json:"latency_run_p99_ns"`

	// ThroughputJobsPerSec counts finished jobs over the service
	// uptime.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`

	Workers  int  `json:"workers"`
	QueueCap int  `json:"queue_cap"`
	Pooling  bool `json:"pooling"`
	Draining bool `json:"draining"`

	Pools []PoolStats `json:"pools"`

	// TenantWindowNs is the trailing window the per-tenant leaderboard
	// below covers (default 60s; GET /v1/stats?window= overrides).
	TenantWindowNs int64 `json:"tenant_window_ns,omitempty"`
	// Tenants is the windowed per-tenant leaderboard, ranked by
	// throughput, with Poisson rank-confidence bounds (see
	// TenantStats) — small windows make ranks noisy, so the bounds
	// say which rank differences the window actually supports.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// aggregate computes the store's part of Stats.
func (st *store) aggregate(uptime time.Duration) Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Queued:            st.counts[StatusQueued],
		Running:           st.counts[StatusRunning],
		Done:              st.counts[StatusDone],
		Failed:            st.counts[StatusFailed],
		Canceled:          st.counts[StatusCanceled],
		UnitRoutes:        st.unitRoutes,
		Conflicts:         st.conflicts,
		WatchDrops:        st.watchDrops,
		LatencyTotalP50Ns: percentile(st.latTotal.samples, 50).Nanoseconds(),
		LatencyTotalP99Ns: percentile(st.latTotal.samples, 99).Nanoseconds(),
		LatencyRunP50Ns:   percentile(st.latRun.samples, 50).Nanoseconds(),
		LatencyRunP99Ns:   percentile(st.latRun.samples, 99).Nanoseconds(),
	}
	for _, k := range st.byKind {
		s.Kinds = append(s.Kinds, *k)
	}
	sort.Slice(s.Kinds, func(i, j int) bool { return s.Kinds[i].Kind < s.Kinds[j].Kind })
	if secs := uptime.Seconds(); secs > 0 {
		s.ThroughputJobsPerSec = float64(st.finished) / secs
	}
	return s
}

// KindStats aggregates the finished jobs of one scenario kind.
type KindStats struct {
	Kind       string `json:"kind"`
	Done       int64  `json:"done"`
	Failed     int64  `json:"failed"`
	Canceled   int64  `json:"canceled"`
	UnitRoutes int64  `json:"unit_routes"`
	Conflicts  int64  `json:"conflicts"`
}

// setHooks installs the metrics observers. Called once before any
// worker starts, so no lock is needed.
func (st *store) setHooks(onClaim func(string, string, time.Duration), onFinish func(Status, string, string, time.Duration, bool)) {
	st.onClaim = onClaim
	st.onFinish = onFinish
}

// requestPreempt picks and cancels the best preemption victim: a
// running, preemptible (multi-trial sweep — the long-running class
// with per-unit-route checkpoints) job of strictly lower priority,
// with no cancel or preempt already in flight. Among candidates the
// lowest priority loses; ties break to the most recently started
// (least sunk work discarded). The victim's checkpoint abort then
// requeues it via finish's preempting path.
func (st *store) requestPreempt(priority int, now time.Time) (string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var victim *Job
	for id := range st.cancels {
		j, ok := st.jobs[id]
		if !ok || j.Status != StatusRunning || j.CancelRequested || j.preempting {
			continue
		}
		if !preemptible(j.Spec) || j.Spec.Priority >= priority {
			continue
		}
		if victim == nil ||
			j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.Started.After(victim.Started)) {
			victim = j
		}
	}
	if victim == nil {
		return "", false
	}
	victim.preempting = true
	st.cancels[victim.ID]()
	return victim.ID, true
}

// preemptible reports whether a spec's running job may be preempted:
// only multi-trial sweeps — the workload class whose checkpoint
// cadence (every unit route) makes the abort prompt and whose
// re-execution cost is understood. Everything else runs to
// completion once claimed.
func preemptible(spec JobSpec) bool {
	return spec.Kind == workload.KindSweep && spec.Trials > 1
}

// watchStats samples the live watch-subscription state for the
// metrics layer: active subscriber channels and cumulative drops.
func (st *store) watchStats() (subscribers int, drops int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, chans := range st.watchers {
		subscribers += len(chans)
	}
	return subscribers, st.watchDrops
}

// durability of the in-memory store: there is none — state dies
// with the process.
func (st *store) durability() Durability { return Durability{Store: "memory"} }

// recoveredQueued: a memory store never recovers anything.
func (st *store) recoveredQueued() []string { return nil }

// close: nothing to flush.
func (st *store) close() error { return nil }

// percentile returns the nearest-rank p-th percentile of the
// samples (0 for an empty set).
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 · n)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
