// Metrics wiring: every instrument the service exports through
// GET /v1/metrics, in one place. Hot-path instruments (histograms,
// the counters the scheduler bumps per job) are resolved to their
// series once here; state another subsystem already tracks (queue
// depth, pool counters, watch subscriptions, WAL durability) bridges
// in through CollectFunc closures sampled at scrape time, costing
// those subsystems nothing between scrapes. docs/observability.md is
// the rendered catalog of everything registered here.
package serve

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"starmesh/internal/obs"
)

// runSecondsBuckets widens the default latency buckets upward: trials
// sweeps legitimately run for minutes.
var runSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// serveMetrics holds every resolved instrument of the service.
type serveMetrics struct {
	reg *obs.Registry

	// Scheduler.
	jobsRunning      obs.Gauge
	jobsAdmitted     *obs.CounterVec // kind
	jobsRejected     *obs.CounterVec // reason
	jobsFinished     *obs.CounterVec // status, kind, tenant
	queueWaitSeconds obs.Histogram
	jobRunSeconds    *obs.HistogramVec // kind

	// Tenancy. The per-series handles the scheduler hot path bumps
	// are cached in the maps below (struct/string keys, no joins):
	// CounterVec.With is variadic and allocates its argument slice on
	// every call, so the finish hook resolves each (status, kind,
	// tenant) series exactly once and then increments a cached handle
	// — no allocations in the steady state.
	tenantAdmittedVec *obs.CounterVec   // tenant
	tenantRejectedVec *obs.CounterVec   // tenant, reason
	tenantWaitVec     *obs.HistogramVec // tenant
	tenantPreempts    *obs.CounterVec   // (no labels; preemptions are rare)
	handleMu          sync.RWMutex
	finishedHandles   map[finishKey]obs.Counter
	admittedHandles   map[string]obs.Counter
	rejectedHandles   map[rejectKey]obs.Counter
	tenantWaitHandles map[string]obs.Histogram

	// Pools.
	checkoutWaitSeconds *obs.HistogramVec // shape

	// HTTP.
	httpRequests       *obs.CounterVec   // route, method, code
	httpRequestSeconds *obs.HistogramVec // route
	httpInFlight       obs.Gauge

	// Engine (fed through the simd.Collector adapter below).
	engineRoutes        obs.Counter
	engineConflicts     obs.Counter
	engineReplays       obs.Counter
	engineReplaySeconds obs.Histogram

	// WAL (histograms live here; counters bridge via durability()).
	wal walObs
}

// walObs is the live-observation half of the WAL metrics — the
// timings only the append/snapshot code paths can see.
type walObs struct {
	appendSeconds   obs.Histogram
	syncSeconds     obs.Histogram
	snapshotSeconds obs.Histogram
	appendBytes     obs.Counter
}

// newServeMetrics registers the full metric surface on a fresh
// registry and bridges the service's existing state in.
func newServeMetrics(s *Service) *serveMetrics {
	r := obs.NewRegistry()
	m := &serveMetrics{reg: r}

	// Scheduler.
	m.jobsRunning = r.Gauge("starmesh_jobs_running",
		"Jobs currently executing on a worker.").With()
	m.jobsAdmitted = r.Counter("starmesh_jobs_admitted_total",
		"Jobs admitted to the queue, by scenario kind.", "kind")
	m.jobsRejected = r.Counter("starmesh_jobs_rejected_total",
		"Submissions rejected at admission, by reason (queue_full, draining, invalid_spec).", "reason")
	m.jobsFinished = r.Counter("starmesh_jobs_finished_total",
		"Jobs that reached a terminal status, by status, kind and tenant.", "status", "kind", "tenant")
	m.queueWaitSeconds = r.Histogram("starmesh_queue_wait_seconds",
		"Time jobs spent queued before a worker claimed them.", nil).With()
	m.jobRunSeconds = r.Histogram("starmesh_job_run_seconds",
		"Execution time of finished jobs, by scenario kind.", runSecondsBuckets, "kind")
	r.CollectFunc("starmesh_queue_depth",
		"Jobs waiting in the scheduler, all tenants.", obs.TypeGauge, nil,
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.sched.depth())}} })
	r.CollectFunc("starmesh_queue_capacity",
		"Admission queue capacity (the configured depth; recovered backlog rides above it).",
		obs.TypeGauge, nil,
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.queueCap)}} })

	// Tenancy.
	m.tenantAdmittedVec = r.Counter("starmesh_tenant_admitted_total",
		"Jobs admitted, by tenant.", "tenant")
	m.tenantRejectedVec = r.Counter("starmesh_tenant_rejected_total",
		"Submissions rejected, by tenant and reason (rate_limited, queue_full, invalid_spec, draining).",
		"tenant", "reason")
	m.tenantWaitVec = r.Histogram("starmesh_tenant_queue_wait_seconds",
		"Time jobs spent queued before a worker claimed them, by tenant.", nil, "tenant")
	m.tenantPreempts = r.Counter("starmesh_jobs_preempted_total",
		"Running jobs bounced back to their tenant queue by a higher-priority submission.")
	r.CollectFunc("starmesh_tenant_queue_depth",
		"Jobs waiting in the scheduler, by tenant (backlogged tenants only).",
		obs.TypeGauge, []string{"tenant"},
		func() []obs.Sample {
			depths := s.sched.depths()
			out := make([]obs.Sample, 0, len(depths))
			for name, n := range depths {
				out = append(out, obs.Sample{LabelValues: []string{name}, Value: float64(n)})
			}
			return out
		})

	// Pools: builds/reuses/occupancy sampled from the pool counters.
	r.CollectFunc("starmesh_pool_builds_total",
		"Machines built by each shape's pool (checkout misses).", obs.TypeCounter, []string{"shape"},
		func() []obs.Sample {
			return poolSamples(s.pools, func(p PoolStats) float64 { return float64(p.Builds) })
		})
	r.CollectFunc("starmesh_pool_reuses_total",
		"Checkouts served from idle pooled machines.", obs.TypeCounter, []string{"shape"},
		func() []obs.Sample {
			return poolSamples(s.pools, func(p PoolStats) float64 { return float64(p.Reuses) })
		})
	r.CollectFunc("starmesh_pool_idle",
		"Idle machines parked in each shape's pool.", obs.TypeGauge, []string{"shape"},
		func() []obs.Sample { return poolSamples(s.pools, func(p PoolStats) float64 { return float64(p.Idle) }) })
	r.CollectFunc("starmesh_pool_in_use",
		"Machines checked out and running jobs, per shape.", obs.TypeGauge, []string{"shape"},
		func() []obs.Sample {
			return poolSamples(s.pools, func(p PoolStats) float64 { return float64(p.InUse) })
		})
	m.checkoutWaitSeconds = r.Histogram("starmesh_pool_checkout_wait_seconds",
		"Time jobs waited for a machine (includes build time on a miss), by shape.", nil, "shape")

	// Watch streams.
	r.CollectFunc("starmesh_watch_subscribers",
		"Active watch-stream subscriptions.", obs.TypeGauge, nil,
		func() []obs.Sample {
			subs, _ := s.store.watchStats()
			return []obs.Sample{{Value: float64(subs)}}
		})
	r.CollectFunc("starmesh_watch_drops_total",
		"Transition snapshots dropped from full watch subscriber channels.", obs.TypeCounter, nil,
		func() []obs.Sample {
			_, drops := s.store.watchStats()
			return []obs.Sample{{Value: float64(drops)}}
		})

	// HTTP.
	m.httpRequests = r.Counter("starmesh_http_requests_total",
		"HTTP requests served, by route pattern, method and status code.", "route", "method", "code")
	m.httpRequestSeconds = r.Histogram("starmesh_http_request_seconds",
		"HTTP request latency, by route pattern.", nil, "route")
	m.httpInFlight = r.Gauge("starmesh_http_in_flight",
		"HTTP requests currently being served.").With()

	// Engine.
	m.engineRoutes = r.Counter("starmesh_engine_unit_routes_total",
		"Unit routes executed by the job machines (closure path and plan replays).").With()
	m.engineConflicts = r.Counter("starmesh_engine_conflicts_total",
		"Receive conflicts observed by the job machines.").With()
	m.engineReplays = r.Counter("starmesh_engine_replays_total",
		"Compiled plan replays executed by the job machines.").With()
	m.engineReplaySeconds = r.Histogram("starmesh_engine_replay_seconds",
		"Wall time of compiled plan replays.", nil).With()

	// WAL. The histograms observe live; the counters the durable store
	// already keeps (records, snapshots, recovery, degraded) bridge
	// from Durability at scrape time — a memory store reports an
	// all-zero family rather than omitting it, so dashboards never see
	// a family appear out of nowhere after -store-dir is enabled.
	m.wal.appendSeconds = r.Histogram("starmesh_wal_append_seconds",
		"WAL record append (write syscall) latency.", nil).With()
	m.wal.syncSeconds = r.Histogram("starmesh_wal_sync_seconds",
		"WAL fsync latency (snapshot files are synced before the atomic rename).", nil).With()
	m.wal.snapshotSeconds = r.Histogram("starmesh_wal_snapshot_seconds",
		"Duration of snapshot+compaction cycles.", nil).With()
	m.wal.appendBytes = r.Counter("starmesh_wal_append_bytes_total",
		"Bytes appended to the WAL (framed records).").With()
	r.CollectFunc("starmesh_wal_appends_total",
		"WAL records appended since the store opened.", obs.TypeCounter, nil,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.store.durability().WALRecords)}}
		})
	r.CollectFunc("starmesh_wal_snapshots_total",
		"Snapshot+compaction cycles since the store opened.", obs.TypeCounter, nil,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.store.durability().Snapshots)}}
		})
	r.CollectFunc("starmesh_wal_recovered_total",
		"Jobs settled by boot-time crash recovery, by outcome (requeued, reexecuted, canceled).",
		obs.TypeCounter, []string{"outcome"},
		func() []obs.Sample {
			d := s.store.durability()
			return []obs.Sample{
				{LabelValues: []string{"requeued"}, Value: float64(d.RecoveredQueued)},
				{LabelValues: []string{"reexecuted"}, Value: float64(d.ReexecutedRunning)},
				{LabelValues: []string{"canceled"}, Value: float64(d.CanceledAtRecovery)},
			}
		})
	r.CollectFunc("starmesh_wal_degraded",
		"1 when the WAL has degraded to memory-only after a write failure, else 0.",
		obs.TypeGauge, nil,
		func() []obs.Sample {
			v := 0.0
			if s.store.durability().Degraded != "" {
				v = 1
			}
			return []obs.Sample{{Value: v}}
		})

	m.finishedHandles = make(map[finishKey]obs.Counter)
	m.admittedHandles = make(map[string]obs.Counter)
	m.rejectedHandles = make(map[rejectKey]obs.Counter)
	m.tenantWaitHandles = make(map[string]obs.Histogram)

	return m
}

// finishKey identifies one resolved jobs_finished series.
type finishKey struct{ status, kind, tenant string }

// rejectKey identifies one resolved tenant_rejected series.
type rejectKey struct{ tenant, reason string }

// finished resolves the (status, kind, tenant) finish counter,
// cached so the store's finish hook allocates nothing after the
// first job of each combination.
func (m *serveMetrics) finished(status Status, kind, tenant string) obs.Counter {
	k := finishKey{string(status), kind, tenant}
	m.handleMu.RLock()
	c, ok := m.finishedHandles[k]
	m.handleMu.RUnlock()
	if ok {
		return c
	}
	c = m.jobsFinished.With(k.status, k.kind, k.tenant)
	m.handleMu.Lock()
	m.finishedHandles[k] = c
	m.handleMu.Unlock()
	return c
}

// tenantAdmitted resolves a tenant's admission counter (cached).
func (m *serveMetrics) tenantAdmitted(tenant string) obs.Counter {
	m.handleMu.RLock()
	c, ok := m.admittedHandles[tenant]
	m.handleMu.RUnlock()
	if ok {
		return c
	}
	c = m.tenantAdmittedVec.With(tenant)
	m.handleMu.Lock()
	m.admittedHandles[tenant] = c
	m.handleMu.Unlock()
	return c
}

// tenantRejected resolves a (tenant, reason) rejection counter
// (cached).
func (m *serveMetrics) tenantRejected(tenant, reason string) obs.Counter {
	k := rejectKey{tenant, reason}
	m.handleMu.RLock()
	c, ok := m.rejectedHandles[k]
	m.handleMu.RUnlock()
	if ok {
		return c
	}
	c = m.tenantRejectedVec.With(tenant, reason)
	m.handleMu.Lock()
	m.rejectedHandles[k] = c
	m.handleMu.Unlock()
	return c
}

// tenantQueueWait resolves a tenant's queue-wait histogram (cached).
func (m *serveMetrics) tenantQueueWait(tenant string) obs.Histogram {
	m.handleMu.RLock()
	h, ok := m.tenantWaitHandles[tenant]
	m.handleMu.RUnlock()
	if ok {
		return h
	}
	h = m.tenantWaitVec.With(tenant)
	m.handleMu.Lock()
	m.tenantWaitHandles[tenant] = h
	m.handleMu.Unlock()
	return h
}

// poolSamples maps every pool's stats through one field selector.
func poolSamples(ps *poolSet, field func(PoolStats) float64) []obs.Sample {
	stats := ps.stats()
	out := make([]obs.Sample, 0, len(stats))
	for _, p := range stats {
		out = append(out, obs.Sample{LabelValues: []string{p.Shape}, Value: field(p)})
	}
	return out
}

// observeHTTP records one served request.
func (m *serveMetrics) observeHTTP(route, method string, code int, d time.Duration) {
	if m == nil {
		return
	}
	m.httpRequests.With(route, method, strconv.Itoa(code)).Inc()
	m.httpRequestSeconds.With(route).Observe(d.Seconds())
}

// engineCollector adapts the metrics to simd.Collector. Pooled
// machines on concurrent jobs share it; obs instruments are atomic,
// so no extra locking is needed.
type engineCollector struct {
	routes        obs.Counter
	conflicts     obs.Counter
	replays       obs.Counter
	replaySeconds obs.Histogram
	// replayNs and replayRoutes additionally accumulate raw totals for
	// the /v1/metrics-independent snapshot used by tests and loadgen.
	replayNs     atomic.Int64
	replayRoutes atomic.Int64
}

func newEngineCollector(m *serveMetrics) *engineCollector {
	return &engineCollector{
		routes:        m.engineRoutes,
		conflicts:     m.engineConflicts,
		replays:       m.engineReplays,
		replaySeconds: m.engineReplaySeconds,
	}
}

func (c *engineCollector) RecordRoutes(routes, conflicts int) {
	c.routes.Add(int64(routes))
	if conflicts > 0 {
		c.conflicts.Add(int64(conflicts))
	}
}

func (c *engineCollector) RecordReplay(d time.Duration, routes int) {
	c.replays.Inc()
	c.replaySeconds.Observe(d.Seconds())
	c.replayNs.Add(d.Nanoseconds())
	c.replayRoutes.Add(int64(routes))
}
