package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starmesh/internal/cluster"
)

func TestSetCluster(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	if _, ok := svc.Cluster(); ok {
		t.Fatal("fresh service should not be clustered")
	}
	m := cluster.Map{Nodes: []cluster.Node{
		{Name: "n1", URL: "http://a"}, {Name: "n2", URL: "http://b"},
	}}
	if err := svc.SetCluster("n3", m); err == nil {
		t.Fatal("SetCluster must reject a self not in the map")
	}
	if err := svc.SetCluster("n1", cluster.Map{}); err == nil {
		t.Fatal("SetCluster must reject an invalid map")
	}
	if err := svc.SetCluster("n1", m); err != nil {
		t.Fatal(err)
	}
	info, ok := svc.Cluster()
	if !ok || info.Self != "n1" || len(info.Map.Nodes) != 2 {
		t.Fatalf("Cluster() = %+v, %v", info, ok)
	}
}

func TestClusterEndpoint(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	code, data := doJSON(t, "GET", ts.URL+"/v1/cluster", "")
	if code != http.StatusNotFound {
		t.Fatalf("unclustered GET /v1/cluster = %d: %s", code, data)
	}
	m := cluster.Map{Nodes: []cluster.Node{{Name: "n1", URL: ts.URL}}}
	if err := svc.SetCluster("n1", m); err != nil {
		t.Fatal(err)
	}
	code, data = doJSON(t, "GET", ts.URL+"/v1/cluster", "")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/cluster = %d: %s", code, data)
	}
	var info ClusterInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Self != "n1" || len(info.Map.Nodes) != 1 || info.Map.Nodes[0].URL != ts.URL {
		t.Fatalf("bad cluster body: %s", data)
	}
}

// DrainMigrate on a held-back service (no workers): every queued job
// comes out in admission order, locally canceled with the migration
// marker, and admission is closed behind them.
func TestDrainMigrateExtractsQueuedBacklog(t *testing.T) {
	svc, err := newService(Config{Workers: 1, Queue: 16}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	var ids []string
	for i := 0; i < 5; i++ {
		job, err := svc.Submit(JobSpec{Kind: KindSort, N: 4, Dist: "reversed", Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	migrated := svc.DrainMigrate()
	if len(migrated) != 5 {
		t.Fatalf("migrated %d jobs, want 5", len(migrated))
	}
	for i, j := range migrated {
		if j.ID != ids[i] {
			t.Errorf("migrated[%d] = %s, want %s (admission order)", i, j.ID, ids[i])
		}
		if j.Status != StatusCanceled || j.Error != MigratedError {
			t.Errorf("migrated[%d]: status %s error %q", i, j.Status, j.Error)
		}
		if j.Spec.Kind != KindSort || j.Spec.Seed != int64(i) {
			t.Errorf("migrated[%d] lost its spec: %+v", i, j.Spec)
		}
		last := j.Trace[len(j.Trace)-1]
		if last.Event != TraceMigrated {
			t.Errorf("migrated[%d] trace missing %q event: %+v", i, TraceMigrated, j.Trace)
		}
	}
	if _, err := svc.Submit(JobSpec{Kind: KindSort, N: 4, Dist: "reversed", Seed: 9}); err != ErrDraining {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	if again := svc.DrainMigrate(); len(again) != 0 {
		t.Fatalf("second DrainMigrate returned %d jobs", len(again))
	}
	if d := svc.sched.depth(); d != 0 {
		t.Fatalf("scheduler still holds %d jobs", d)
	}
}

func TestDrainEndpoint(t *testing.T) {
	svc, err := newService(Config{Workers: 1, Queue: 16}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	if err := svc.SetCluster("n1", cluster.Map{Nodes: []cluster.Node{{Name: "n1", URL: ts.URL}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(JobSpec{Kind: KindSort, N: 4, Dist: "reversed", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	code, data := doJSON(t, "POST", ts.URL+"/v1/drain", "")
	if code != http.StatusOK {
		t.Fatalf("POST /v1/drain = %d: %s", code, data)
	}
	var resp DrainResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Node != "n1" || len(resp.Migrated) != 1 || resp.Migrated[0].Error != MigratedError {
		t.Fatalf("bad drain response: %s", data)
	}
	select {
	case <-svc.drainRequested:
	default:
		t.Fatal("drain endpoint did not signal ListenAndServe")
	}
	// The drain must be health-visible.
	code, data = doJSON(t, "GET", ts.URL+"/v1/healthz", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(data), "draining") {
		t.Fatalf("healthz after drain = %d: %s", code, data)
	}
}

// A migration must survive a crash as a local cancel: replaying the
// WAL yields the job terminal with the migration marker, never
// re-queued (the survivor already owns the resubmitted copy).
func TestMigrateDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc, err := newService(Config{Workers: 1, Queue: 16, StoreDir: dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(JobSpec{Kind: KindSort, N: 4, Dist: "reversed", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.DrainMigrate(); len(got) != 1 {
		t.Fatalf("migrated %d jobs, want 1", len(got))
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc2, err := newService(Config{Workers: 1, Queue: 16, StoreDir: dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Drain()
	got, ok := svc2.Job(job.ID)
	if !ok {
		t.Fatal("migrated job lost across restart")
	}
	if got.Status != StatusCanceled || got.Error != MigratedError {
		t.Fatalf("recovered as %s (%q), want canceled/migrated", got.Status, got.Error)
	}
	if d := svc2.Durability(); d.RecoveredQueued != 0 {
		t.Fatalf("recovery re-admitted %d jobs, want 0", d.RecoveredQueued)
	}
}

func TestMergeStats(t *testing.T) {
	window := 10 * time.Second
	per := map[string]Stats{
		"n1": {
			Queued: 2, Running: 1, Done: 10, Failed: 1, Canceled: 1,
			UnitRoutes: 100, Conflicts: 5, WatchDrops: 1,
			Workers: 1, QueueCap: 64, Pooling: true,
			ThroughputJobsPerSec: 1.0,
			LatencyTotalP99Ns:    500,
			Kinds:                []KindStats{{Kind: "sort", Done: 10, UnitRoutes: 100}},
			Pools:                []PoolStats{{Shape: "star:4", Idle: 1, Builds: 2, Reuses: 8}},
			Tenants:              []TenantStats{{Tenant: "acme", Weight: 2, Jobs: 40, Done: 40, Queued: 1}},
		},
		"n2": {
			Queued: 1, Done: 5,
			UnitRoutes: 50, Workers: 2, QueueCap: 64, Pooling: true, Draining: true,
			ThroughputJobsPerSec: 0.5,
			LatencyTotalP99Ns:    900,
			Kinds:                []KindStats{{Kind: "sort", Done: 3}, {Kind: "sweep", Done: 2}},
			Pools:                []PoolStats{{Shape: "star:4", Builds: 1, Reuses: 2}, {Shape: "grid:2x2", Builds: 1}},
			Tenants: []TenantStats{
				{Tenant: "acme", Weight: 2, Jobs: 10, Done: 10},
				{Tenant: "beta", Weight: 1, Jobs: 4, Done: 4},
			},
		},
	}
	got := MergeStats(per, window)
	if got.Queued != 3 || got.Running != 1 || got.Done != 15 || got.Failed != 1 || got.Canceled != 1 {
		t.Fatalf("bad status counts: %+v", got)
	}
	if got.UnitRoutes != 150 || got.Workers != 3 || got.QueueCap != 128 {
		t.Fatalf("bad totals: %+v", got)
	}
	if !got.Pooling || !got.Draining {
		t.Fatalf("pooling/draining flags wrong: %+v", got)
	}
	if got.ThroughputJobsPerSec != 1.5 {
		t.Fatalf("throughput = %v", got.ThroughputJobsPerSec)
	}
	if got.LatencyTotalP99Ns != 900 {
		t.Fatalf("merged p99 = %d, want the conservative max 900", got.LatencyTotalP99Ns)
	}
	if got.Durability.Store != "cluster" {
		t.Fatalf("durability = %+v", got.Durability)
	}
	if len(got.Kinds) != 2 || got.Kinds[0].Kind != "sort" || got.Kinds[0].Done != 13 || got.Kinds[1].Done != 2 {
		t.Fatalf("bad kind merge: %+v", got.Kinds)
	}
	if len(got.Pools) != 2 || got.Pools[1].Shape != "star:4" || got.Pools[1].Builds != 3 || got.Pools[1].Reuses != 10 {
		t.Fatalf("bad pool merge: %+v", got.Pools)
	}

	// Tenant merge: acme = 50 jobs over 10s → 5/s with interval
	// 5 ± 1.96·√50/10; beta = 0.4/s. The intervals do not overlap, so
	// the ranks are certain.
	if len(got.Tenants) != 2 {
		t.Fatalf("tenant rows: %+v", got.Tenants)
	}
	acme, beta := got.Tenants[0], got.Tenants[1]
	if acme.Tenant != "acme" || acme.Jobs != 50 || acme.Queued != 1 || acme.Weight != 2 {
		t.Fatalf("acme row: %+v", acme)
	}
	if acme.ThroughputJobsPerSec != 5.0 {
		t.Fatalf("acme throughput = %v", acme.ThroughputJobsPerSec)
	}
	if acme.ThroughputLo <= beta.ThroughputHi {
		t.Fatalf("intervals should separate: acme lo %v vs beta hi %v", acme.ThroughputLo, beta.ThroughputHi)
	}
	if acme.Rank != 1 || acme.RankLo != 1 || acme.RankHi != 1 {
		t.Fatalf("acme rank: %+v", acme)
	}
	if beta.Rank != 2 || beta.RankLo != 2 || beta.RankHi != 2 {
		t.Fatalf("beta rank: %+v", beta)
	}

	// Overlapping intervals must widen the merged rank bounds.
	per2 := map[string]Stats{
		"n1": {Tenants: []TenantStats{{Tenant: "a", Jobs: 5}, {Tenant: "b", Jobs: 4}}},
	}
	got2 := MergeStats(per2, window)
	a := got2.Tenants[0]
	if a.RankLo != 1 || a.RankHi != 2 {
		t.Fatalf("overlapping counts should give rank interval [1,2], got [%d,%d]", a.RankLo, a.RankHi)
	}
}

func TestMergeStatsEmpty(t *testing.T) {
	got := MergeStats(nil, time.Minute)
	if got.Pooling || got.Queued != 0 || len(got.Tenants) != 0 {
		t.Fatalf("empty merge: %+v", got)
	}
}
