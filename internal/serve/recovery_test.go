// Service-level crash-recovery tests: a durable service is killed
// mid-load (freeze — the WAL stops cold, exactly like SIGKILL, while
// the doomed process runs on), restarted on the same directory, and
// must re-admit queued jobs in order and re-execute interrupted
// running jobs to bit-identical results.
package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"starmesh/internal/workload"
)

// crash abandons a durable service the way SIGKILL would: the WAL is
// frozen first (no transition after this point reaches disk), then
// the service is torn down with an already-expired context so its
// goroutines and pools release without draining gracefully.
func crash(t *testing.T, svc *Service) {
	t.Helper()
	svc.store.(*durableStore).freeze()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = svc.Shutdown(ctx)
}

// standaloneResult runs a spec outside the service — the parity
// reference a re-executed job must match bit for bit.
func standaloneResult(t *testing.T, spec JobSpec) ScenarioResult {
	t.Helper()
	sc, err := workload.ScenarioFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Name, res.ElapsedNs = "", 0
	return res
}

// TestCrashRecoveryParity pins the recovery contract exactly: a
// stopped service (workers held back) stages every pre-crash state on
// disk deterministically — one job finished, one canceled, one
// RUNNING when the crash hits, three still queued — then the restart
// must settle all of it: terminal jobs keep their recorded outcomes,
// the interrupted running job and the queued backlog re-enter the
// queue in original admission order, and every re-executed job's
// result is bit-identical to a standalone run of its spec.
func TestCrashRecoveryParity(t *testing.T) {
	dir := t.TempDir()
	svc, err := newService(Config{Workers: 2, Queue: 32, StoreDir: dir}, false)
	if err != nil {
		t.Fatal(err)
	}

	specs := []JobSpec{
		{Kind: KindSort, N: 4, Dist: "uniform", Seed: 7},    // running at the crash
		{Kind: KindSweep, N: 3},                             // done before the crash
		{Kind: KindSweep, N: 4},                             // canceled before the crash
		{Kind: KindShear, Rows: 8, Cols: 8, Seed: 11},       // queued
		{Kind: KindFaultRoute, N: 4, Faults: 2, Pairs: 8},   // queued
		{Kind: KindSort, N: 4, Dist: "reversed", Seed: 999}, // queued
	}
	var ids []string
	for _, spec := range specs {
		j, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	// Drive the staged states by hand (no workers are running, so
	// nothing races): claim job 0 into RUNNING, finish job 1 with a
	// real standalone result, cancel job 2 out of the queue.
	now := time.Now()
	if _, ok := svc.store.claim(ids[0], now, nil); !ok {
		t.Fatal("claim failed")
	}
	doneSpec, _ := svc.Job(ids[1])
	doneRes := standaloneResult(t, doneSpec.Spec)
	if _, ok := svc.store.claim(ids[1], now, nil); !ok {
		t.Fatal("claim failed")
	}
	svc.store.finish(ids[1], doneRes, nil, now.Add(time.Millisecond))
	recordedDone, _ := svc.Job(ids[1])
	if _, err := svc.Cancel(ids[2]); err != nil {
		t.Fatal(err)
	}

	crash(t, svc)

	svc2, err := NewService(Config{Workers: 2, Queue: 32, StoreDir: dir})
	if err != nil {
		t.Fatalf("restart on the crashed dir: %v", err)
	}
	defer svc2.Drain()

	dur := svc2.Durability()
	if dur.Store != "wal" || dur.ReexecutedRunning != 1 || dur.RecoveredQueued != 3 ||
		dur.CanceledAtRecovery != 0 {
		t.Fatalf("recovery counts wrong: %+v", dur)
	}
	// Re-admission preserves admission order: the interrupted running
	// job first (it was admitted first), then the queued backlog.
	wantOrder := []string{ids[0], ids[3], ids[4], ids[5]}
	if got := svc2.store.(*durableStore).recovered; !reflect.DeepEqual(got, wantOrder) {
		t.Fatalf("re-admission order %v, want %v", got, wantOrder)
	}

	// Terminal history survived the crash byte for byte.
	if j, _ := svc2.Job(ids[1]); j.Status != StatusDone || j.Result == nil ||
		*j.Result != *recordedDone.Result {
		t.Fatalf("pre-crash done job lost its result: %+v", j)
	}
	if j, _ := svc2.Job(ids[2]); j.Status != StatusCanceled {
		t.Fatalf("pre-crash canceled job resurrected: %+v", j)
	}

	// The recovered jobs run to completion, each bit-identical to a
	// standalone run of its spec — deterministic re-execution.
	for _, i := range []int{0, 3, 4, 5} {
		job := waitTerminal(t, svc2, ids[i])
		if job.Status != StatusDone {
			t.Fatalf("recovered job %s ended %s: %s", job.ID, job.Status, job.Error)
		}
		got := *job.Result
		got.Name, got.ElapsedNs = "", 0
		if want := standaloneResult(t, job.Spec); got != want {
			t.Fatalf("re-executed %s diverged from standalone run: %+v != %+v", job.ID, got, want)
		}
	}

	// Ids keep their sequence: the next admission continues after the
	// recovered ones, so cursors minted before the crash stay valid.
	j, err := svc2.Submit(JobSpec{Kind: KindSweep, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-000007" {
		t.Fatalf("post-recovery id %s, want job-000007", j.ID)
	}
}

// TestCrashRecoveryUnderLoad kills a live service mid-load — workers
// running, outcomes racing the freeze — and requires the restart to
// finish every submitted job with a standalone-identical result, no
// matter which side of the crash each one landed on.
func TestCrashRecoveryUnderLoad(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewService(Config{Workers: 1, Queue: 64, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Sweeps long enough (~tens of ms each) that the single worker is
	// still deep in the batch when the plug gets pulled.
	var ids []string
	for i := 0; i < 12; i++ {
		j, err := svc.Submit(JobSpec{Kind: KindSweep, N: 4, Seed: int64(i), Trials: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Let part of the batch land, then pull the plug mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for svc.Stats().Done < 2 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	crash(t, svc)

	svc2, err := NewService(Config{Workers: 2, Queue: 64, StoreDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer svc2.Drain()
	dur := svc2.Durability()
	if dur.RecoveredQueued+dur.ReexecutedRunning == 0 {
		t.Fatalf("the crash interrupted nothing — the test raced to completion: %+v", dur)
	}

	for i, id := range ids {
		job := waitTerminal(t, svc2, id)
		if job.Status != StatusDone {
			t.Fatalf("job %s ended %s after recovery: %s", id, job.Status, job.Error)
		}
		got := *job.Result
		got.Name, got.ElapsedNs = "", 0
		if want := standaloneResult(t, job.Spec); got != want {
			t.Fatalf("job %s (spec %d) diverged after recovery: %+v != %+v", id, i, got, want)
		}
	}
	if st := svc2.Stats(); st.Done != len(ids) || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("counts wrong after full recovery drain: %+v", st)
	}
}

// TestDurableCleanRestartPreservesHistory is the no-crash path: a
// drained shutdown leaves a snapshot that the next process loads with
// nothing to recover.
func TestDurableCleanRestartPreservesHistory(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewService(Config{Workers: 2, Queue: 32, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, spec := range testSpecs() {
		j, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitTerminal(t, svc, id)
	}
	before := svc.Stats()
	svc.Drain()

	svc2, err := NewService(Config{Workers: 2, Queue: 32, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Drain()
	dur := svc2.Durability()
	if dur.RecoveredQueued != 0 || dur.ReexecutedRunning != 0 || dur.CanceledAtRecovery != 0 {
		t.Fatalf("clean restart claims it recovered something: %+v", dur)
	}
	after := svc2.Stats()
	if after.Done != before.Done || after.UnitRoutes != before.UnitRoutes ||
		!reflect.DeepEqual(after.Kinds, before.Kinds) {
		t.Fatalf("history lost across clean restart:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestHealthzReportsDurability checks the /v1/healthz surface: the
// durability block names the store kind, WAL paths, snapshot age and
// the recovery counts of the boot that produced this process.
func TestHealthzReportsDurability(t *testing.T) {
	dir := t.TempDir()
	svc, err := newService(Config{Workers: 1, Queue: 8, StoreDir: dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(JobSpec{Kind: KindSweep, N: 3}); err != nil {
		t.Fatal(err)
	}
	crash(t, svc)

	svc2, err := NewService(Config{Workers: 1, Queue: 8, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Drain()
	ts := httptest.NewServer(svc2.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	d := h.Durability
	if d.Store != "wal" || d.Dir != dir || d.WALPath == "" || d.SnapshotPath == "" {
		t.Fatalf("healthz durability incomplete: %+v", d)
	}
	if d.RecoveredQueued != 1 || d.LastSnapshot.IsZero() || d.SnapshotEvery != 256 {
		t.Fatalf("healthz recovery state wrong: %+v", d)
	}

	// The memory store says so too — a probe can always tell which
	// backend it is talking to.
	mem, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Drain()
	if d := mem.Durability(); d.Store != "memory" {
		t.Fatalf("memory durability wrong: %+v", d)
	}

	// /v1/stats carries the same block.
	var st Stats
	resp2, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Durability.Store != "wal" || st.Durability.RecoveredQueued != 1 {
		t.Fatalf("stats durability wrong: %+v", st.Durability)
	}
}
