package serve

import (
	"context"
	"errors"
	"testing"

	"starmesh/internal/starsim"
	"starmesh/internal/workload"
)

// buildOf and runOf dispatch a spec through the registry the way the
// service does.
func buildOf(t *testing.T, spec JobSpec) func() workload.Resource {
	t.Helper()
	fam, err := workload.FamilyOf(spec.Kind)
	if err != nil {
		t.Fatal(err)
	}
	return func() workload.Resource { return fam.Build(spec) }
}

func runOf(t *testing.T, spec JobSpec, r workload.Resource) (ScenarioResult, error) {
	t.Helper()
	fam, err := workload.FamilyOf(spec.Kind)
	if err != nil {
		t.Fatal(err)
	}
	return fam.Run(context.Background(), spec, r)
}

// fakeResource records lifecycle calls.
type fakeResource struct {
	resets int
	closes int
}

func (f *fakeResource) Reset() { f.resets++ }
func (f *fakeResource) Close() { f.closes++ }

func TestPoolReusesAndResetsMachines(t *testing.T) {
	spec := JobSpec{Kind: KindSort, N: 4, Dist: "uniform", Seed: 3}
	p := &pool{shape: spec.Shape(), build: buildOf(t, spec), pooled: true}

	r1, built, err := p.checkout()
	if err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Fatal("first checkout of an empty pool did not report built")
	}
	first, err := runOf(t, spec, r1)
	if err != nil {
		t.Fatal(err)
	}
	sm := r1.(*starsim.Machine)
	if sm.Stats().UnitRoutes == 0 {
		t.Fatal("job left no stats on the machine")
	}
	p.checkin(r1)

	r2, built, err := p.checkout()
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Fatal("checkout with an idle machine reported built instead of reuse")
	}
	if r2 != r1 {
		t.Fatal("pool built a new machine instead of reusing the idle one")
	}
	// The reset contract: registers and stats really are cleared
	// between jobs.
	if got := sm.Stats(); got.UnitRoutes != 0 || got.Sent != 0 || got.ReceiveConflicts != 0 {
		t.Fatalf("stats survived checkin reset: %+v", got)
	}
	for pe, v := range sm.Reg("K") {
		if v != 0 {
			t.Fatalf("register K[%d] = %d after checkin reset", pe, v)
		}
	}
	// And a rerun on the reused machine is bit-identical.
	again, err := runOf(t, spec, r2)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("reused machine diverged: %+v != %+v", again, first)
	}
	p.checkin(r2)

	st := p.stats()
	if st.Builds != 1 || st.Reuses != 1 || st.Idle != 1 || st.InUse != 0 {
		t.Fatalf("pool counters wrong: %+v", st)
	}
}

func TestUnpooledCheckinCloses(t *testing.T) {
	f := &fakeResource{}
	p := &pool{shape: "fake", build: func() workload.Resource { return f }, pooled: false}
	r, _, err := p.checkout()
	if err != nil {
		t.Fatal(err)
	}
	p.checkin(r)
	if f.closes != 1 {
		t.Fatalf("unpooled checkin closed %d times, want 1", f.closes)
	}
	if f.resets != 0 {
		t.Fatalf("unpooled checkin reset a machine about to be closed")
	}
	if st := p.stats(); st.Builds != 1 || st.Reuses != 0 || st.Idle != 0 {
		t.Fatalf("unpooled counters wrong: %+v", st)
	}
}

func TestPoolDoubleCloseIsIdempotent(t *testing.T) {
	f := &fakeResource{}
	p := &pool{shape: "fake", build: func() workload.Resource { return f }, pooled: true}
	r, _, _ := p.checkout()
	p.checkin(r)
	p.close()
	p.close()
	if f.closes != 1 {
		t.Fatalf("idle machine closed %d times across double close, want 1", f.closes)
	}

	ps := newPoolSet(true)
	if _, err := ps.forShape("fake", func() workload.Resource { return &fakeResource{} }); err != nil {
		t.Fatal(err)
	}
	ps.closeAll()
	ps.closeAll() // must not panic or double-close
}

func TestCheckoutAfterDrainFails(t *testing.T) {
	ps := newPoolSet(true)
	p, err := ps.forShape("fake", func() workload.Resource { return &fakeResource{} })
	if err != nil {
		t.Fatal(err)
	}
	out, _, _ := p.checkout()
	ps.closeAll()
	if _, _, err := p.checkout(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("checkout after drain returned %v, want ErrPoolClosed", err)
	}
	if _, err := ps.forShape("other", func() workload.Resource { return &fakeResource{} }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("forShape after drain returned %v, want ErrPoolClosed", err)
	}
	// A machine still out at drain time is closed on checkin, not
	// parked.
	p.checkin(out)
	if f := out.(*fakeResource); f.closes != 1 {
		t.Fatalf("outstanding machine closed %d times after drain checkin, want 1", f.closes)
	}
}

func TestGraphResourceIsStateless(t *testing.T) {
	spec := JobSpec{Kind: KindFaultRoute, N: 4, Faults: 2, Pairs: 4, Seed: 9}
	p := &pool{shape: spec.Shape(), build: buildOf(t, spec), pooled: true}
	r, _, err := p.checkout()
	if err != nil {
		t.Fatal(err)
	}
	first, err := runOf(t, spec, r)
	if err != nil {
		t.Fatal(err)
	}
	p.checkin(r)
	r2, _, _ := p.checkout()
	again, err := runOf(t, spec, r2)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("fault-route rerun diverged on pooled graph: %+v != %+v", first, again)
	}
}
