// The v1 error contract: every error the service can return maps to
// exactly one machine-readable code, and every code maps to exactly
// one HTTP status — here, once, so handlers and the typed client
// never restate the taxonomy. The wire shape is
//
//	{"error": {"code": "queue_full", "message": "...", "details": [...]}}
//
// with details populated only by batch validation failures.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Admission and lookup errors; codeOf maps them (and nothing else)
// onto the wire taxonomy.
var (
	ErrQueueFull   = errors.New("serve: admission queue full")
	ErrDraining    = errors.New("serve: service is draining")
	ErrNotFound    = errors.New("serve: no such job")
	ErrInvalidSpec = errors.New("serve: invalid job spec")
	// ErrTerminal reports a cancel of a job that already reached a
	// terminal status (done, failed or canceled) — a 409 conflict, not
	// a silent no-op.
	ErrTerminal = errors.New("serve: job already terminal")
	// ErrRateLimited rejects a submission the tenant's token bucket
	// cannot cover — a 429 whose Retry-After says when it could
	// (RateLimitError carries the wait).
	ErrRateLimited = errors.New("serve: tenant rate limit exceeded")
	// ErrUnauthorized rejects a submission whose X-API-Key is unknown,
	// or that presents none while the registry requires one.
	ErrUnauthorized = errors.New("serve: unauthorized")
)

// ErrNotCancelable is the pre-v1 name of ErrTerminal, kept as an
// alias for one release: running jobs became cancelable in v1, so
// the only non-cancelable jobs left are the terminal ones.
var ErrNotCancelable = ErrTerminal

// ErrorCode is the machine-readable error class of the v1 API.
type ErrorCode string

const (
	CodeInvalidSpec     ErrorCode = "invalid_spec"     // 400: spec failed registry validation
	CodeInvalidArgument ErrorCode = "invalid_argument" // 400: malformed body or query parameter
	CodeNotFound        ErrorCode = "not_found"        // 404: no such job (or evicted)
	CodeTerminal        ErrorCode = "terminal"         // 409: job already done/failed/canceled
	CodeQueueFull       ErrorCode = "queue_full"       // 429: admission queue full, honor Retry-After
	CodeRateLimited     ErrorCode = "rate_limited"     // 429: tenant token bucket empty, honor Retry-After
	CodeUnauthorized    ErrorCode = "unauthorized"     // 401: unknown or missing API key
	CodeDraining        ErrorCode = "draining"         // 503: service shutting down
	CodeInternal        ErrorCode = "internal"         // 500: anything unclassified
)

// HTTPStatus is the one place a code becomes an HTTP status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInvalidSpec, CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeTerminal:
		return http.StatusConflict
	case CodeQueueFull, CodeRateLimited:
		return http.StatusTooManyRequests
	case CodeUnauthorized:
		return http.StatusUnauthorized
	case CodeDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// codeOf classifies a service error.
func codeOf(err error) ErrorCode {
	switch {
	case errors.Is(err, ErrInvalidSpec):
		return CodeInvalidSpec
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrTerminal):
		return CodeTerminal
	case errors.Is(err, ErrRateLimited):
		return CodeRateLimited
	case errors.Is(err, ErrUnauthorized):
		return CodeUnauthorized
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, ErrDraining), errors.Is(err, ErrPoolClosed):
		return CodeDraining
	default:
		return CodeInternal
	}
}

// ErrorBody is the v1 error envelope.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo carries the typed error across the wire.
type ErrorInfo struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// Details itemizes batch validation failures by spec index.
	Details []BatchItemError `json:"details,omitempty"`
}

// BatchItemError locates one invalid spec inside a rejected batch.
type BatchItemError struct {
	Index   int    `json:"index"`
	Message string `json:"message"`
}

// BatchError rejects a whole batch: admission is atomic, so one
// invalid spec fails every spec. It wraps ErrInvalidSpec.
type BatchError struct {
	Items []BatchItemError
}

func (e *BatchError) Error() string {
	msgs := make([]string, len(e.Items))
	for i, it := range e.Items {
		msgs[i] = fmt.Sprintf("spec[%d]: %s", it.Index, it.Message)
	}
	return fmt.Sprintf("%v (batch rejected atomically: %s)", ErrInvalidSpec, strings.Join(msgs, "; "))
}

func (e *BatchError) Unwrap() error { return ErrInvalidSpec }

// jobCanceled reports whether a job error is a cooperative
// cancellation (the run aborted at a checkpoint), which finishes the
// job as canceled rather than failed.
func jobCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
