// Per-job trace timelines: every job record carries the span events
// of its life — submitted → claimed → machine_ready → terminal, plus
// cancel_requested and recovered where they apply — with the duration
// since the previous event, so GET /v1/jobs/{id} answers "where did
// this job spend its time" without any external tracing system. The
// events ride the job snapshots the WAL already logs, so a timeline
// survives crash recovery with the job.
package serve

import "time"

// Trace event names, in lifecycle order. Terminal events reuse the
// Status strings ("done", "failed", "canceled").
const (
	// TraceSubmitted is recorded at admission.
	TraceSubmitted = "submitted"
	// TraceClaimed is recorded when a worker claims the job; its
	// duration is the queue wait.
	TraceClaimed = "claimed"
	// TraceMachineReady is recorded once the job's machine is checked
	// out of the pool; its detail names the shape and whether the
	// machine was built or reused, its duration is the checkout wait.
	TraceMachineReady = "machine_ready"
	// TraceCancelRequested is recorded when DELETE reaches a running
	// job; the terminal canceled event follows at the next checkpoint.
	TraceCancelRequested = "cancel_requested"
	// TraceRecovered is recorded during crash recovery on re-queued
	// jobs: everything after admission is forgotten (the re-execution
	// starts the timeline over) and this event marks the restart.
	TraceRecovered = "recovered"
	// TraceMigrated is recorded when a drain hands a queued job off to
	// a surviving cluster node: locally the job finishes canceled with
	// Error == MigratedError, and the resubmitted copy re-executes the
	// same spec (same seed) elsewhere, bit-identically.
	TraceMigrated = "migrated"
	// TracePreempted is recorded when a higher-priority submission
	// preempts this running job at its cancellation checkpoint: the
	// job goes back to its tenant's queue with the partial stats of
	// the interrupted run preserved, and re-executes from its seed —
	// bit-identical to an uninterrupted run — when its turn returns.
	TracePreempted = "preempted"
)

// MigratedError is the Error string of a job locally terminated by
// drain migration — clients distinguish "this node gave the job to a
// survivor" from a user cancel by it.
const MigratedError = "migrated: resubmitted to a surviving node"

// TraceEvent is one span event on a job's timeline.
type TraceEvent struct {
	// Event names the transition (Trace* constants or a terminal
	// Status string).
	Event string `json:"event"`
	// At is when the event happened.
	At time.Time `json:"at"`
	// DurNs is the time since the previous event on the timeline — the
	// span the job spent in the previous state (0 on the first event).
	DurNs int64 `json:"dur_ns,omitempty"`
	// Detail carries event context: the owning pool shape and
	// built/reused for machine_ready, the error for failed.
	Detail string `json:"detail,omitempty"`
}

// appendTrace appends one event to j's timeline, deriving the
// duration from the previous event. Caller holds the store lock (the
// timeline is part of the job record).
func appendTrace(j *Job, now time.Time, event, detail string) {
	ev := TraceEvent{Event: event, At: now, Detail: detail}
	if n := len(j.Trace); n > 0 {
		ev.DurNs = now.Sub(j.Trace[n-1].At).Nanoseconds()
	}
	j.Trace = append(j.Trace, ev)
}

// trace appends a mid-run event to a live job's timeline and logs it
// (opTrace) so the timeline stays durable between the claim and
// finish records.
func (st *store) trace(id string, now time.Time, event, detail string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.Status.Terminal() {
		return
	}
	appendTrace(j, now, event, detail)
	if st.logf != nil {
		st.logf(opTrace, j)
	}
}
