// In-package coverage of the v1 HTTP surface: batch endpoint, watch
// stream, list queries and the lifecycle of ListenAndServe.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPBatchEndpoint(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	code, data := doJSON(t, "POST", ts.URL+"/v1/jobs:batch",
		`{"specs":[{"kind":"sweep","n":3},{"kind":"broadcast","n":3}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch returned %d: %s", code, data)
	}
	var resp BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil || len(resp.Jobs) != 2 {
		t.Fatalf("batch response malformed: %s", data)
	}

	// Partial validation failure: 400, details name the index, no
	// admission.
	code, data = doJSON(t, "POST", ts.URL+"/v1/jobs:batch",
		`{"specs":[{"kind":"sweep","n":3},{"kind":"nope"}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid batch returned %d: %s", code, data)
	}
	var body ErrorBody
	if err := json.Unmarshal(data, &body); err != nil ||
		body.Error.Code != CodeInvalidSpec || len(body.Error.Details) != 1 || body.Error.Details[0].Index != 1 {
		t.Fatalf("invalid batch error malformed: %s", data)
	}

	// Malformed JSON: invalid_argument.
	if code, data = doJSON(t, "POST", ts.URL+"/v1/jobs:batch", `{`); code != http.StatusBadRequest {
		t.Fatalf("bad batch JSON returned %d: %s", code, data)
	}
}

func TestHTTPWatchStream(t *testing.T) {
	svc, err := newService(Config{Queue: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	job, err := svc.Submit(JobSpec{Kind: KindSweep, N: 3})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "ndjson") {
		t.Fatalf("watch answered %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	sc := bufio.NewScanner(resp.Body)

	next := func() Job {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("watch stream ended early: %v", sc.Err())
		}
		var j Job
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			t.Fatalf("watch line not a job: %q", sc.Text())
		}
		return j
	}
	if j := next(); j.Status != StatusQueued {
		t.Fatalf("watch initial snapshot is %s, want queued", j.Status)
	}
	// Drive the worker by hand, then the stream must deliver
	// running → done and end.
	go svc.runJob(job.ID)
	if j := next(); j.Status != StatusRunning {
		t.Fatalf("watch transition is %s, want running", j.Status)
	}
	if j := next(); j.Status != StatusDone {
		t.Fatalf("watch terminal is %s, want done", j.Status)
	}
	if sc.Scan() {
		t.Fatalf("watch stream continued past the terminal snapshot: %q", sc.Text())
	}

	// Watching a terminal job: one snapshot, then EOF.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	if !sc2.Scan() {
		t.Fatal("terminal watch delivered nothing")
	}
	if sc2.Scan() {
		t.Fatalf("terminal watch streamed a second line: %q", sc2.Text())
	}

	// Unknown job: typed 404.
	code, data := doJSON(t, "GET", ts.URL+"/v1/jobs/job-999999/watch", "")
	if code != http.StatusNotFound {
		t.Fatalf("watch of unknown job returned %d: %s", code, data)
	}
	svc.Drain()
}

func TestHTTPListQueries(t *testing.T) {
	svc, err := newService(Config{Queue: 16}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		if _, err := svc.Submit(JobSpec{Kind: KindSweep, N: 3}); err != nil {
			t.Fatal(err)
		}
	}
	code, data := doJSON(t, "GET", ts.URL+"/v1/jobs?status=queued&limit=2", "")
	if code != http.StatusOK {
		t.Fatalf("list returned %d: %s", code, data)
	}
	var page JobPage
	if err := json.Unmarshal(data, &page); err != nil || len(page.Jobs) != 2 || page.NextCursor == "" {
		t.Fatalf("list page malformed: %s", data)
	}
	code, data = doJSON(t, "GET", ts.URL+"/v1/jobs?cursor="+page.NextCursor, "")
	if code != http.StatusOK {
		t.Fatalf("cursor list returned %d: %s", code, data)
	}

	for _, bad := range []string{"?status=zombie", "?limit=-1", "?limit=x", "?cursor=x"} {
		code, data = doJSON(t, "GET", ts.URL+"/v1/jobs"+bad, "")
		var body ErrorBody
		if code != http.StatusBadRequest || json.Unmarshal(data, &body) != nil || body.Error.Code != CodeInvalidArgument {
			t.Fatalf("list%s returned %d %s, want 400 invalid_argument", bad, code, data)
		}
	}
}

func TestListenAndServeLifecycle(t *testing.T) {
	// Bad address: the listener fails, the service still drains, the
	// error surfaces.
	svc, err := NewService(Config{Workers: 1, Queue: 4, DrainGrace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ListenAndServe(context.Background(), "256.256.256.256:0"); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if !svc.Draining() {
		t.Fatal("failed listen left the service undrained")
	}

	// Canceled context: graceful path, returns the context error.
	svc2, err := NewService(Config{Workers: 1, Queue: 4, DrainGrace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc2.ListenAndServe(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe never returned after cancel")
	}

	// Close is Drain-shaped.
	svc3, err := NewService(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigEffectiveAndEngineOptions(t *testing.T) {
	eff := Config{}.Effective()
	if eff.Workers <= 0 || eff.Queue != 64 || eff.Engine != "sequential" || eff.DrainGrace != 5*time.Second {
		t.Fatalf("effective defaults wrong: %+v", eff)
	}
	if opts, err := (Config{Engine: "parallel"}).EngineOptions(); err != nil || len(opts) == 0 {
		t.Fatalf("parallel engine options: %v %v", opts, err)
	}
	if _, err := (Config{Engine: "quantum"}).EngineOptions(); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestLegacyListKeepsArrayShape pins the alias contract: pre-v1
// consumers of GET /jobs still get a bare array (limit 0 = all),
// while /v1/jobs speaks JobPage.
func TestLegacyListKeepsArrayShape(t *testing.T) {
	svc, err := newService(Config{Queue: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(JobSpec{Kind: KindSweep, N: 3}); err != nil {
			t.Fatal(err)
		}
	}
	code, data := doJSON(t, "GET", ts.URL+"/jobs?limit=0", "")
	var arr []Job
	if code != http.StatusOK || json.Unmarshal(data, &arr) != nil || len(arr) != 3 {
		t.Fatalf("legacy list broke its array contract: %d %s", code, data)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs?limit=10abc", ""); code != http.StatusBadRequest {
		t.Fatalf("legacy list accepted a malformed limit: %d", code)
	}
	// And the v1 route rejects the same malformed limit too.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs?limit=10abc", ""); code != http.StatusBadRequest {
		t.Fatalf("v1 list accepted a malformed limit: %d", code)
	}
}

// TestSubmitBatchImpossibleSizeIsInvalid: a batch that can never fit
// the queue is a 400, not retryable backpressure.
func TestSubmitBatchImpossibleSizeIsInvalid(t *testing.T) {
	svc, err := newService(Config{Queue: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	specs := make([]JobSpec, 3)
	for i := range specs {
		specs[i] = JobSpec{Kind: KindSweep, N: 3}
	}
	if _, err := svc.SubmitBatch(specs); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("impossible batch returned %v, want ErrInvalidSpec", err)
	}
}
