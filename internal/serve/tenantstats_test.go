// Windowed per-tenant leaderboard tests: the finish-event ring's
// trailing-window cutoff and bounded capacity, and the rank
// intervals — disjoint Poisson intervals pin a rank, overlapping
// ones widen RankLo/RankHi to admit the uncertainty.
package serve

import (
	"testing"
	"time"

	"starmesh/internal/workload"
)

// winEvent pushes one synthetic finish event into the store's ring.
func winEvent(st *store, tenant string, at time.Time, status Status, wait time.Duration, routes int) {
	j := &Job{Tenant: tenant, Status: status, Finished: at, WaitNs: wait.Nanoseconds()}
	if status == StatusDone {
		j.Result = &workload.ScenarioResult{UnitRoutes: routes, Conflicts: 1}
	}
	st.tenantWin.add(j)
}

func TestTenantWindowCutoffAndAggregation(t *testing.T) {
	st := newStore()
	now := time.Now()
	// Two old events fall outside the 10s window; the rest count.
	winEvent(st, "a", now.Add(-time.Minute), StatusDone, time.Millisecond, 100)
	winEvent(st, "b", now.Add(-11*time.Second), StatusDone, time.Millisecond, 100)
	winEvent(st, "a", now.Add(-5*time.Second), StatusDone, 2*time.Millisecond, 40)
	winEvent(st, "a", now.Add(-2*time.Second), StatusCanceled, 8*time.Millisecond, 0)
	winEvent(st, "b", now.Add(-time.Second), StatusDone, time.Millisecond, 7)

	aggs := st.tenantWindow(now, 10*time.Second)
	a, b := aggs["a"], aggs["b"]
	if a == nil || b == nil || len(aggs) != 2 {
		t.Fatalf("window aggregation %+v", aggs)
	}
	// a: one done (40 routes) + one canceled; the canceled job counts
	// toward jobs and waits but contributes no completed work.
	if a.jobs != 2 || a.done != 1 || a.routes != 40 || a.conflicts != 1 || len(a.waits) != 2 {
		t.Fatalf("tenant a agg %+v", a)
	}
	if b.jobs != 1 || b.done != 1 || b.routes != 7 {
		t.Fatalf("tenant b agg %+v", b)
	}
}

func TestTenantEventRingBounded(t *testing.T) {
	old := maxLatencySamples
	maxLatencySamples = 4
	defer func() { maxLatencySamples = old }()

	st := newStore()
	now := time.Now()
	for i := 0; i < 6; i++ {
		winEvent(st, "t", now.Add(time.Duration(i)*time.Second), StatusDone, 0, 1)
	}
	if len(st.tenantWin.events) != 4 {
		t.Fatalf("ring grew to %d, want capacity 4", len(st.tenantWin.events))
	}
	// The two oldest events were overwritten: a window covering
	// everything still sees only the newest four.
	aggs := st.tenantWindow(now.Add(6*time.Second), time.Hour)
	if aggs["t"].jobs != 4 {
		t.Fatalf("ring retained %d events, want the newest 4", aggs["t"].jobs)
	}
}

func TestBuildTenantStatsRankIntervals(t *testing.T) {
	window := 10 * time.Second
	weightOf := func(string) int { return 1 }

	// Disjoint intervals: 100 jobs vs 1 job cannot overlap, so both
	// ranks are pinned; the backlogged-but-idle tenant gets a zero
	// row whose interval ties it with the 1-job tenant's lower bound.
	rows := buildTenantStats(map[string]*tenantAgg{
		"big":   {tenant: "big", jobs: 100, done: 100, routes: 1000},
		"small": {tenant: "small", jobs: 1, done: 1, routes: 3},
	}, window, weightOf, map[string]int{"idle": 2})
	if len(rows) != 3 {
		t.Fatalf("rows %+v", rows)
	}
	big, small, idle := rows[0], rows[1], rows[2]
	if big.Tenant != "big" || small.Tenant != "small" || idle.Tenant != "idle" {
		t.Fatalf("throughput order wrong: %+v", rows)
	}
	if big.Rank != 1 || big.RankLo != 1 || big.RankHi != 1 {
		t.Fatalf("big rank %d [%d,%d], want pinned 1", big.Rank, big.RankLo, big.RankHi)
	}
	// small's interval [0, …] touches idle's zero interval: rank 2 or 3.
	if small.Rank != 2 || small.RankLo != 2 || small.RankHi != 3 {
		t.Fatalf("small rank %d [%d,%d], want 2 [2,3]", small.Rank, small.RankLo, small.RankHi)
	}
	if idle.Rank != 3 || idle.RankLo != 2 || idle.RankHi != 3 || idle.Queued != 2 {
		t.Fatalf("idle rank %d [%d,%d] queued %d, want 3 [2,3] queued 2", idle.Rank, idle.RankLo, idle.RankHi, idle.Queued)
	}
	if big.ThroughputJobsPerSec != 10 || big.ThroughputLo >= big.ThroughputHi {
		t.Fatalf("big throughput %+v", big)
	}

	// Overlapping intervals: 5 vs 4 jobs in the window is noise, and
	// the rank bounds must admit either ordering.
	rows = buildTenantStats(map[string]*tenantAgg{
		"a": {tenant: "a", jobs: 5, done: 5},
		"b": {tenant: "b", jobs: 4, done: 4},
	}, window, weightOf, nil)
	for _, r := range rows {
		if r.RankLo != 1 || r.RankHi != 2 {
			t.Fatalf("overlapping intervals must not pin ranks: %+v", rows)
		}
	}
	if rows[0].Tenant != "a" || rows[0].Rank != 1 || rows[1].Rank != 2 {
		t.Fatalf("point-estimate order wrong: %+v", rows)
	}
}
