package serve

import (
	"errors"
	"testing"
	"time"
)

var errAny = errors.New("boom")

func TestStoreEvictsOldTerminalJobsKeepsAggregates(t *testing.T) {
	oldJobs, oldLat := maxRetainedJobs, maxLatencySamples
	maxRetainedJobs, maxLatencySamples = 4, 3
	defer func() { maxRetainedJobs, maxLatencySamples = oldJobs, oldLat }()

	st := newStore()
	now := time.Now()
	var ids []string
	for i := 0; i < 10; i++ {
		j := st.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
		ids = append(ids, j.ID)
		if _, ok := st.claim(j.ID, now.Add(time.Millisecond), nil); !ok {
			t.Fatalf("claim %s failed", j.ID)
		}
		st.finish(j.ID, ScenarioResult{UnitRoutes: 10, OK: true}, nil,
			now.Add(time.Duration(i+2)*time.Millisecond))
	}

	stats := st.aggregate(time.Second)
	if stats.Done != 10 {
		t.Fatalf("eviction ate the cumulative done count: %+v", stats)
	}
	if stats.UnitRoutes != 100 {
		t.Fatalf("eviction ate the unit-route total: %+v", stats)
	}
	retained := 0
	for _, id := range ids {
		if _, ok := st.get(id); ok {
			retained++
		}
	}
	if retained > maxRetainedJobs {
		t.Fatalf("retained %d jobs, bound is %d", retained, maxRetainedJobs)
	}
	// The oldest jobs are the evicted ones; the newest survive.
	if _, ok := st.get(ids[0]); ok {
		t.Fatal("oldest job survived eviction")
	}
	if _, ok := st.get(ids[len(ids)-1]); !ok {
		t.Fatal("newest job was evicted")
	}
	// Listing covers only retained jobs, newest first, and never
	// panics on evicted prefixes.
	jobs := st.list(0)
	if len(jobs) != retained || jobs[0].ID != ids[len(ids)-1] {
		t.Fatalf("list wrong after eviction: %d jobs, first %s", len(jobs), jobs[0].ID)
	}
	// The latency window is bounded too.
	if n := len(st.latTotal.samples); n > maxLatencySamples {
		t.Fatalf("latency window holds %d samples, bound is %d", n, maxLatencySamples)
	}
	if stats.LatencyTotalP50Ns == 0 || stats.ThroughputJobsPerSec != 10 {
		t.Fatalf("windowed aggregates wrong: %+v", stats)
	}
}

func TestLatWindowWrapsToRecentSamples(t *testing.T) {
	oldLat := maxLatencySamples
	maxLatencySamples = 4
	defer func() { maxLatencySamples = oldLat }()
	var w latWindow
	for i := 1; i <= 10; i++ {
		w.add(time.Duration(i))
	}
	if len(w.samples) != 4 {
		t.Fatalf("window holds %d samples, want 4", len(w.samples))
	}
	sum := time.Duration(0)
	for _, d := range w.samples {
		sum += d
	}
	if sum != 7+8+9+10 {
		t.Fatalf("window holds %v, want the most recent four", w.samples)
	}
}

func TestStoreAggregatesPerKind(t *testing.T) {
	st := newStore()
	now := time.Now()
	finish := func(spec JobSpec, res ScenarioResult, err error) {
		j := st.add(spec, DefaultTenant, now)
		if _, ok := st.claim(j.ID, now, nil); !ok {
			t.Fatalf("claim %s failed", j.ID)
		}
		st.finish(j.ID, res, err, now.Add(time.Millisecond))
	}
	finish(JobSpec{Kind: KindSweep, N: 3}, ScenarioResult{UnitRoutes: 10, OK: true}, nil)
	finish(JobSpec{Kind: KindSweep, N: 3}, ScenarioResult{UnitRoutes: 12, Conflicts: 1, OK: false}, nil)
	finish(JobSpec{Kind: KindPermRoute, N: 4, Pattern: "random"}, ScenarioResult{UnitRoutes: 7, OK: true}, nil)
	finish(JobSpec{Kind: KindPermRoute, N: 4, Pattern: "random"}, ScenarioResult{}, errAny)

	stats := st.aggregate(time.Second)
	if len(stats.Kinds) != 2 {
		t.Fatalf("per-kind stats: %+v", stats.Kinds)
	}
	// Sorted by kind: permroute < sweep.
	pr, sw := stats.Kinds[0], stats.Kinds[1]
	if pr.Kind != KindPermRoute || sw.Kind != KindSweep {
		t.Fatalf("kind order wrong: %+v", stats.Kinds)
	}
	if pr.Done != 1 || pr.Failed != 1 || pr.UnitRoutes != 7 {
		t.Fatalf("permroute aggregate wrong: %+v", pr)
	}
	if sw.Done != 2 || sw.Failed != 0 || sw.UnitRoutes != 22 || sw.Conflicts != 1 {
		t.Fatalf("sweep aggregate wrong: %+v", sw)
	}
}

// TestStoreSmallHelpers pins the leaf helpers: id sequence parsing
// (malformed ids order first), the memory store's empty recovery
// set, and the empty-percentile guard.
func TestStoreSmallHelpers(t *testing.T) {
	if seqOf("job-000042") != 42 {
		t.Fatal("seqOf lost the sequence")
	}
	if seqOf("weird") != 0 || seqOf("job-xyz") != 0 {
		t.Fatal("malformed ids must order first, not panic")
	}
	if got := newStore().recoveredQueued(); got != nil {
		t.Fatalf("memory store recovered %v, want nothing", got)
	}
	if percentile(nil, 99) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

// TestErrorTaxonomyLeafCases pins the fallback classification: an
// unrecognized error is internal/500, and watchStats counts live
// subscribers.
func TestErrorTaxonomyLeafCases(t *testing.T) {
	if codeOf(errAny) != CodeInternal {
		t.Fatalf("unclassified error mapped to %q", codeOf(errAny))
	}
	if CodeInternal.HTTPStatus() != 500 || ErrorCode("madeup").HTTPStatus() != 500 {
		t.Fatal("internal/unknown codes must map to 500")
	}
	st := newStore()
	j := st.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, time.Now())
	if _, _, stop, err := st.watch(j.ID); err != nil {
		t.Fatal(err)
	} else {
		defer stop()
	}
	if subs, _ := st.watchStats(); subs != 1 {
		t.Fatalf("watchStats counted %d subscribers, want 1", subs)
	}
}
