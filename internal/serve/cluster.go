// Cluster membership of one serve node, and the stats fan-in math of
// the whole cluster. A clustered node knows its own name and the
// member map (SetCluster), serves both at GET /v1/cluster so any node
// can bootstrap a routing client, and migrates its queued backlog to
// the surviving owners on POST /v1/drain. The scatter side of the
// cluster lives in the routing client (starmesh/client); this file
// holds the gather side — MergeStats — because merging leaderboards
// correctly means recomputing the Poisson and rank intervals from the
// merged counts, with the same math /v1/stats uses on one node.
package serve

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"time"

	"starmesh/internal/cluster"
)

// ClusterInfo is the GET /v1/cluster body: which node answered and
// the full member map. Any node's copy bootstraps a routing client.
type ClusterInfo struct {
	Self string      `json:"self"`
	Map  cluster.Map `json:"map"`
}

// SetCluster declares this service a member of a cluster: self must
// name a node of the (valid) map. Safe to call after the service is
// running — the harness binds listeners first and installs the map
// once every node's URL is known.
func (s *Service) SetCluster(self string, m cluster.Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if _, ok := m.NodeURL(self); !ok {
		return fmt.Errorf("serve: node %q is not in the cluster map", self)
	}
	s.clusterInfo.Store(&ClusterInfo{Self: self, Map: m})
	return nil
}

// Cluster returns this node's membership (ok=false when the service
// is not clustered).
func (s *Service) Cluster() (ClusterInfo, bool) {
	info := s.clusterInfo.Load()
	if info == nil {
		return ClusterInfo{}, false
	}
	return *info, true
}

// handleCluster serves the membership document. An unclustered node
// answers 404 — a routing client probing it should fail loudly, not
// route against an empty map.
func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Cluster()
	if !ok {
		writeErrorCode(w, CodeNotFound, "node is not clustered (no -cluster/-peers)", nil)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// DrainResponse is the POST /v1/drain body: the queued jobs the node
// extracted for migration. The caller (the routing client's Drain)
// resubmits each job's durable spec to its surviving owner; specs
// fully determine results, so the re-execution elsewhere is
// bit-identical to what this node would have produced.
type DrainResponse struct {
	// Node is the draining node's cluster name ("" unclustered).
	Node string `json:"node,omitempty"`
	// Migrated holds the extracted jobs, in admission order — each
	// locally terminal (canceled, error "migrated") with its Spec and
	// Tenant intact for resubmission.
	Migrated []Job `json:"migrated"`
}

// handleDrain extracts the queued backlog for migration, answers
// with it, and then asks ListenAndServe to begin the normal graceful
// shutdown (running jobs get DrainGrace to finish; the listener stays
// up through the drain so this response and concurrent watch streams
// complete).
func (s *Service) handleDrain(w http.ResponseWriter, r *http.Request) {
	resp := DrainResponse{Migrated: s.DrainMigrate()}
	if info, ok := s.Cluster(); ok {
		resp.Node = info.Self
	}
	writeJSON(w, http.StatusOK, resp)
	s.requestDrainExit()
}

// DrainMigrate stops admission and extracts every queued job for
// migration: each is popped from the scheduler (so no local worker
// can claim it), marked locally terminal (canceled, error "migrated"
// — WAL-logged, so a crash mid-drain recovers it as canceled, never
// as a duplicate run), and returned in admission order. Running jobs
// are untouched: they finish locally under the drain grace. Safe to
// call repeatedly; later calls find an empty scheduler.
func (s *Service) DrainMigrate() []Job {
	s.beginDrain()
	ids := s.sched.drainAll()
	now := time.Now()
	migrated := make([]Job, 0, len(ids))
	for _, id := range ids {
		// A worker that popped the id before the drain races us here:
		// whoever reaches the store first wins (claim and migrate both
		// require Status == queued), so the job either runs locally or
		// migrates — never both.
		if job, ok := s.store.migrate(id, now); ok {
			migrated = append(migrated, job)
		}
	}
	if len(migrated) > 0 {
		s.log.Info("drain migrated queued jobs", "count", len(migrated))
	}
	return migrated
}

// requestDrainExit nudges ListenAndServe into its graceful-shutdown
// path (idempotent; a no-op for services driven without it).
func (s *Service) requestDrainExit() {
	select {
	case s.drainRequested <- struct{}{}:
	default:
	}
}

// MergeStats gathers per-node Stats into the one-service view a
// clustered GET /v1/stats presents. Counts, totals and throughput
// sum; Pooling holds only if every node pools; Draining if any node
// drains. Latency and queue-wait percentiles take the per-node
// maximum — nodes keep samples, not sketches, so the honest merged
// claim is the conservative bound. The per-tenant leaderboard merges
// each tenant's window counts across nodes, then recomputes the 95%
// Poisson throughput intervals from the merged counts (n ± 1.96·√n
// over the window) and the simultaneous rank intervals from those —
// the same construction a single node uses, applied after the merge,
// so rank uncertainty reflects cluster-wide counts rather than
// averaging per-node ranks (which would be meaningless).
func MergeStats(per map[string]Stats, window time.Duration) Stats {
	out := Stats{
		Durability:     Durability{Store: "cluster"},
		Pooling:        len(per) > 0,
		TenantWindowNs: window.Nanoseconds(),
	}
	kinds := make(map[string]*KindStats)
	pools := make(map[string]*PoolStats)
	tenants := make(map[string]*TenantStats)
	names := make([]string, 0, len(per))
	for name := range per {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := per[name]
		out.Queued += st.Queued
		out.Running += st.Running
		out.Done += st.Done
		out.Failed += st.Failed
		out.Canceled += st.Canceled
		out.UnitRoutes += st.UnitRoutes
		out.Conflicts += st.Conflicts
		out.WatchDrops += st.WatchDrops
		out.Workers += st.Workers
		out.QueueCap += st.QueueCap
		out.ThroughputJobsPerSec += st.ThroughputJobsPerSec
		out.Pooling = out.Pooling && st.Pooling
		out.Draining = out.Draining || st.Draining
		out.LatencyTotalP50Ns = max(out.LatencyTotalP50Ns, st.LatencyTotalP50Ns)
		out.LatencyTotalP99Ns = max(out.LatencyTotalP99Ns, st.LatencyTotalP99Ns)
		out.LatencyRunP50Ns = max(out.LatencyRunP50Ns, st.LatencyRunP50Ns)
		out.LatencyRunP99Ns = max(out.LatencyRunP99Ns, st.LatencyRunP99Ns)
		for _, k := range st.Kinds {
			agg, ok := kinds[k.Kind]
			if !ok {
				agg = &KindStats{Kind: k.Kind}
				kinds[k.Kind] = agg
			}
			agg.Done += k.Done
			agg.Failed += k.Failed
			agg.Canceled += k.Canceled
			agg.UnitRoutes += k.UnitRoutes
			agg.Conflicts += k.Conflicts
		}
		for _, p := range st.Pools {
			// Shapes are partitioned by ownership, so one shape's pool
			// normally lives on one node; summing keeps the merge correct
			// across membership changes, when two nodes briefly hold
			// pools of the same shape.
			agg, ok := pools[p.Shape]
			if !ok {
				agg = &PoolStats{Shape: p.Shape}
				pools[p.Shape] = agg
			}
			agg.Idle += p.Idle
			agg.InUse += p.InUse
			agg.Builds += p.Builds
			agg.Reuses += p.Reuses
		}
		for _, t := range st.Tenants {
			agg, ok := tenants[t.Tenant]
			if !ok {
				agg = &TenantStats{Tenant: t.Tenant}
				tenants[t.Tenant] = agg
			}
			agg.Weight = max(agg.Weight, t.Weight)
			agg.Queued += t.Queued
			agg.Jobs += t.Jobs
			agg.Done += t.Done
			agg.UnitRoutes += t.UnitRoutes
			agg.Conflicts += t.Conflicts
			agg.QueueWaitP50Ns = max(agg.QueueWaitP50Ns, t.QueueWaitP50Ns)
			agg.QueueWaitP99Ns = max(agg.QueueWaitP99Ns, t.QueueWaitP99Ns)
		}
	}
	for _, k := range kinds {
		out.Kinds = append(out.Kinds, *k)
	}
	sort.Slice(out.Kinds, func(i, j int) bool { return out.Kinds[i].Kind < out.Kinds[j].Kind })
	for _, p := range pools {
		out.Pools = append(out.Pools, *p)
	}
	sort.Slice(out.Pools, func(i, j int) bool { return out.Pools[i].Shape < out.Pools[j].Shape })
	if out.Pools == nil {
		out.Pools = []PoolStats{}
	}
	rows := make([]TenantStats, 0, len(tenants))
	secs := window.Seconds()
	for _, t := range tenants {
		if secs > 0 {
			n := float64(t.Jobs)
			margin := 1.96 * math.Sqrt(n)
			t.ThroughputJobsPerSec = n / secs
			t.ThroughputLo = math.Max(0, n-margin) / secs
			t.ThroughputHi = (n + margin) / secs
		}
		rows = append(rows, *t)
	}
	out.Tenants = RankTenantStats(rows)
	return out
}
