// Per-shape machine pools: the amortization layer of the service.
// One pool holds idle machines of one shape; checkout hands a worker
// an idle machine (or builds one on a miss), checkin resets it —
// registers and stats zeroed, topology/plan/route-table state kept —
// and parks it for the next job of that shape. With pooling disabled
// every checkout builds and every checkin closes: the build-per-job
// baseline BENCH_serve.json measures against.
package serve

import (
	"errors"
	"sort"
	"sync"

	"starmesh/internal/workload"
)

// ErrPoolClosed reports a checkout against a drained pool set.
var ErrPoolClosed = errors.New("serve: machine pools are closed")

// pool manages the idle machines of one shape.
type pool struct {
	shape  string
	build  func() workload.Resource
	pooled bool

	mu     sync.Mutex
	idle   []workload.Resource
	closed bool
	builds int64
	reuses int64
	inUse  int
}

// checkout returns an idle machine or builds a fresh one, reporting
// which happened (built=true on a miss) so the caller can trace and
// count it. The build runs outside the lock so a slow construction
// never blocks checkouts of other workers (they simply build their
// own).
func (p *pool) checkout() (r workload.Resource, built bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, ErrPoolClosed
	}
	if n := len(p.idle); p.pooled && n > 0 {
		r := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.reuses++
		p.inUse++
		p.mu.Unlock()
		return r, false, nil
	}
	p.builds++
	p.inUse++
	p.mu.Unlock()
	return p.build(), true, nil
}

// checkin returns a machine after a job. Pooled machines are Reset —
// the satellite contract: registers and stats really are cleared
// before the next job — and parked; unpooled (or post-drain) ones
// are closed, releasing their engine worker goroutines.
func (p *pool) checkin(r workload.Resource) {
	if p.pooled {
		r.Reset()
	}
	p.mu.Lock()
	p.inUse--
	if p.closed || !p.pooled {
		p.mu.Unlock()
		r.Close()
		return
	}
	p.idle = append(p.idle, r)
	p.mu.Unlock()
}

// close drains the pool: every idle machine is closed and later
// checkins close instead of parking. Idempotent — a second close
// finds no idle machines and an already-set flag.
func (p *pool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, r := range idle {
		r.Close()
	}
}

// PoolStats is the exported view of one shape's pool.
type PoolStats struct {
	Shape  string `json:"shape"`
	Idle   int    `json:"idle"`
	InUse  int    `json:"in_use"`
	Builds int64  `json:"builds"`
	Reuses int64  `json:"reuses"`
}

func (p *pool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Shape:  p.shape,
		Idle:   len(p.idle),
		InUse:  p.inUse,
		Builds: p.builds,
		Reuses: p.reuses,
	}
}

// poolSet lazily creates one pool per shape.
type poolSet struct {
	pooled bool
	mu     sync.Mutex
	pools  map[string]*pool
	closed bool
}

func newPoolSet(pooled bool) *poolSet {
	return &poolSet{pooled: pooled, pools: make(map[string]*pool)}
}

// forShape returns (creating if needed) the pool of a shape.
func (ps *poolSet) forShape(shape string, build func() workload.Resource) (*pool, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed {
		return nil, ErrPoolClosed
	}
	p, ok := ps.pools[shape]
	if !ok {
		p = &pool{shape: shape, build: build, pooled: ps.pooled}
		ps.pools[shape] = p
	}
	return p, nil
}

// closeAll drains every pool. Idempotent.
func (ps *poolSet) closeAll() {
	ps.mu.Lock()
	ps.closed = true
	pools := make([]*pool, 0, len(ps.pools))
	for _, p := range ps.pools {
		pools = append(pools, p)
	}
	ps.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
}

// stats snapshots every pool, ordered by shape for stable output.
func (ps *poolSet) stats() []PoolStats {
	ps.mu.Lock()
	pools := make([]*pool, 0, len(ps.pools))
	for _, p := range ps.pools {
		pools = append(pools, p)
	}
	ps.mu.Unlock()
	out := make([]PoolStats, 0, len(pools))
	for _, p := range pools {
		out = append(out, p.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shape < out[j].Shape })
	return out
}
