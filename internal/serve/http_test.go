package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"starmesh/internal/workload"
	"strings"
	"testing"
	"time"
)

func doJSON(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestHTTPJobLifecycle(t *testing.T) {
	svc, err := NewService(Config{Workers: 2, Queue: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Submit.
	code, data := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"sort","n":4,"dist":"reversed","seed":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", code, data)
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Shape != "star:4" {
		t.Fatalf("bad submit response: %s", data)
	}

	// Poll to completion.
	deadline := time.Now().Add(30 * time.Second)
	for !job.Status.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(time.Millisecond)
		code, data = doJSON(t, "GET", ts.URL+"/jobs/"+job.ID, "")
		if code != http.StatusOK {
			t.Fatalf("poll returned %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &job); err != nil {
			t.Fatal(err)
		}
	}
	if job.Status != StatusDone || job.Result == nil || !job.Result.OK || job.Result.UnitRoutes == 0 {
		t.Fatalf("job did not finish clean: %s", data)
	}

	// The standalone scenario of the same spec must agree exactly.
	sc, err := workload.ScenarioFor(JobSpec{Kind: KindSort, N: 4, Dist: "reversed", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if job.Result.UnitRoutes != want.UnitRoutes || job.Result.Conflicts != want.Conflicts || job.Result.OK != want.OK {
		t.Fatalf("HTTP result diverged from standalone run: %+v != %+v", job.Result, want)
	}

	// Listing includes it; cancel of a finished job conflicts.
	code, data = doJSON(t, "GET", ts.URL+"/jobs?limit=10", "")
	if code != http.StatusOK || !bytes.Contains(data, []byte(job.ID)) {
		t.Fatalf("list missing job: %d %s", code, data)
	}
	if code, _ = doJSON(t, "DELETE", ts.URL+"/jobs/"+job.ID, ""); code != http.StatusConflict {
		t.Fatalf("cancel of done job returned %d, want 409", code)
	}

	// Stats reflect the work.
	code, data = doJSON(t, "GET", ts.URL+"/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	var stats Stats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Done < 1 || stats.UnitRoutes == 0 || len(stats.Pools) == 0 || !stats.Pooling {
		t.Fatalf("stats incomplete: %s", data)
	}

	// Health.
	if code, _ = doJSON(t, "GET", ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	svc, err := newService(Config{Queue: 1}, false) // no workers: queue stays full
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Bad JSON and bad specs → 400.
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{`); code != http.StatusBadRequest {
		t.Fatalf("bad JSON returned %d, want 400", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"warp"}`); code != http.StatusBadRequest {
		t.Fatalf("bad kind returned %d, want 400", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"sort","n":4,"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field returned %d, want 400", code)
	}

	// Fill the queue → 429 with Retry-After.
	if code, data := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"sweep","n":3}`); code != http.StatusAccepted {
		t.Fatalf("first submit returned %d: %s", code, data)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(`{"kind":"sweep","n":3}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("overflow submit returned %d (Retry-After %q), want 429", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Unknown job → 404.
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/job-999999", ""); code != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/jobs/job-999999", ""); code != http.StatusNotFound {
		t.Fatalf("unknown cancel returned %d, want 404", code)
	}

	// Draining → 503 on submit and healthz.
	svc.Drain()
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"sweep","n":3}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining returned %d, want 503", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining returned %d, want 503", code)
	}
}

func TestHTTPCancelQueuedJob(t *testing.T) {
	svc, err := newService(Config{Queue: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	code, data := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"sweep","n":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	code, data = doJSON(t, "DELETE", ts.URL+"/jobs/"+job.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel returned %d: %s", code, data)
	}
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	if job.Status != StatusCanceled {
		t.Fatalf("cancel left status %s", job.Status)
	}
	svc.Drain()
}
