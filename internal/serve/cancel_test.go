// v1 cancellation contract tests: mid-run abort with bounded
// latency, partial stats, Reset-safe pooled machines, the typed
// terminal conflict, and drain deadlines.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starmesh/internal/workload"
)

// submitOrDie admits a spec.
func submitOrDie(t *testing.T, svc *Service, spec JobSpec) Job {
	t.Helper()
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit %+v: %v", spec, err)
	}
	return job
}

// waitRunning polls until the job is running.
func waitRunning(t *testing.T, svc *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.Status == StatusRunning {
			return
		}
		if job.Status.Terminal() {
			t.Fatalf("job %s ended %s before it could be canceled mid-run", id, job.Status)
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestCancelRunningSweepBoundedLatency is the tentpole's acceptance
// test: DELETE of a RUNNING long sweep aborts it with bounded
// latency (the checkpoint before every unit route), ends it in the
// canceled terminal status with partial stats preserved, and leaves
// the pooled machine Reset-safe — the next job of the same shape
// reuses it and still matches a standalone run bit for bit.
func TestCancelRunningSweepBoundedLatency(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	// A sweep of a million trials: hours of work if never canceled,
	// but never more than one unit route (microseconds on S_4) away
	// from a checkpoint.
	long := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 4, Trials: 1_000_000})
	waitRunning(t, svc, long.ID)
	time.Sleep(2 * time.Millisecond) // let it accumulate partial work

	t0 := time.Now()
	snap, err := svc.Cancel(long.ID)
	if err != nil {
		t.Fatalf("cancel of running job: %v", err)
	}
	if !snap.CancelRequested && !snap.Status.Terminal() {
		t.Fatalf("cancel snapshot shows neither cancel_requested nor terminal: %+v", snap)
	}
	final := waitTerminal(t, svc, long.ID)
	latency := time.Since(t0)
	if final.Status != StatusCanceled {
		t.Fatalf("canceled running job ended %s (%s)", final.Status, final.Error)
	}
	// Bounded latency: the checkpoint granularity is one unit route
	// (~µs); 5s is orders of magnitude of slack for CI, while the
	// uncanceled job would run for hours.
	if latency > 5*time.Second {
		t.Fatalf("cancel took %v — not a bounded abort", latency)
	}
	if final.Result == nil {
		t.Fatal("canceled job lost its partial stats")
	}
	if final.Result.OK {
		t.Fatalf("partial result claims OK: %+v", final.Result)
	}
	if final.Result.UnitRoutes <= 0 {
		t.Fatalf("canceled mid-run job reports no partial unit routes: %+v", final.Result)
	}

	// The machine went back to the star:4 pool via Reset. The next
	// job of that shape must reuse it AND reproduce the standalone
	// result exactly — the pooled-parity check.
	spec := JobSpec{Kind: KindSweep, N: 4, Trials: 2}
	job := waitTerminal(t, svc, submitOrDie(t, svc, spec).ID)
	if job.Status != StatusDone {
		t.Fatalf("post-cancel job ended %s (%s)", job.Status, job.Error)
	}
	sc, err := workload.ScenarioFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := *job.Result
	got.Name, got.ElapsedNs = "", 0
	want.Name, want.ElapsedNs = "", 0
	if got != want {
		t.Fatalf("machine reused after a mid-run cancel diverged from standalone: %+v != %+v", got, want)
	}
	var reuses int64
	for _, p := range svc.Stats().Pools {
		reuses += p.Reuses
	}
	if reuses == 0 {
		t.Fatal("post-cancel job did not reuse the canceled job's pooled machine")
	}
	if st := svc.Stats(); st.Canceled != 1 || st.Done != 1 {
		t.Fatalf("stats after mid-run cancel: %+v", st)
	}
}

// TestCancelTerminalJobConflicts is the satellite regression: DELETE
// of an already-terminal job is the typed ErrTerminal conflict (409
// with code "terminal" over HTTP), not a silent no-op.
func TestCancelTerminalJobConflicts(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	job := waitTerminal(t, svc, submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 3}).ID)
	if job.Status != StatusDone {
		t.Fatalf("setup job ended %s", job.Status)
	}

	if _, err := svc.Cancel(job.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel of done job returned %v, want ErrTerminal", err)
	}
	// And canceled jobs are terminal too — canceling twice conflicts.
	queued, err := newService(Config{Queue: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	q := submitOrDie(t, queued, JobSpec{Kind: KindSweep, N: 3})
	if _, err := queued.Cancel(q.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Cancel(q.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel returned %v, want ErrTerminal", err)
	}
	queued.Drain()

	// Over HTTP: 409 with the typed code on both the v1 route and the
	// legacy alias.
	for _, base := range []string{ts.URL + "/v1/jobs/", ts.URL + "/jobs/"} {
		code, data := doJSON(t, "DELETE", base+job.ID, "")
		if code != http.StatusConflict {
			t.Fatalf("DELETE of done job returned %d: %s", code, data)
		}
		var body ErrorBody
		if err := json.Unmarshal(data, &body); err != nil || body.Error.Code != CodeTerminal {
			t.Fatalf("409 body is not the typed terminal conflict: %s", data)
		}
	}
}

// TestHealthzReportsDrainingDuringShutdown is the satellite fix:
// while a graceful shutdown is still waiting on admitted jobs — the
// listener alive, requests answered — /v1/healthz must already
// report draining (503), and the drain deadline must cancel the
// stragglers.
func TestHealthzReportsDrainingDuringShutdown(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	long := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 4, Trials: 1_000_000})
	waitRunning(t, svc, long.ID)

	// Healthy while serving.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", code)
	}

	// Begin a deadline-bound shutdown while the job runs.
	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	go func() { shutdownErr <- svc.Shutdown(ctx) }()

	// The listener is still up (httptest) and the job still running:
	// healthz must already answer draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, data := doJSON(t, "GET", ts.URL+"/v1/healthz", "")
		var h Health
		_ = json.Unmarshal(data, &h)
		if code == http.StatusServiceUnavailable && h.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported draining during shutdown: %d %s", code, data)
		}
		time.Sleep(time.Millisecond)
	}

	// The deadline fires, the running job is canceled at its next
	// checkpoint, and Shutdown returns the deadline error.
	select {
	case err := <-shutdownErr:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung past its deadline")
	}
	job, _ := svc.Job(long.ID)
	if job.Status != StatusCanceled {
		t.Fatalf("drain deadline left the job %s", job.Status)
	}
	if !svc.Draining() {
		t.Fatal("service not draining after Shutdown")
	}
}

// TestSubmitBatchAtomicCapacity: batch admission is all-or-nothing
// against the queue bound too.
func TestSubmitBatchAtomicCapacity(t *testing.T) {
	svc, err := newService(Config{Queue: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	three := []JobSpec{{Kind: KindSweep, N: 3}, {Kind: KindSweep, N: 3}, {Kind: KindSweep, N: 3}}
	// One slot occupied: a 2-spec batch exceeds the FREE capacity —
	// transient queue_full backpressure, nothing admitted.
	if _, err := svc.Submit(three[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitBatch(three[:2]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch returned %v, want ErrQueueFull", err)
	}
	if got := len(svc.Jobs(0)); got != 1 {
		t.Fatalf("rejected batch left %d jobs in the store, want the 1 pre-admitted", got)
	}
	// A batch fitting the free capacity is admitted whole.
	jobs, err := svc.SubmitBatch(three[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Status != StatusQueued {
		t.Fatalf("batch admission wrong: %+v", jobs)
	}
	if _, err := svc.SubmitBatch(nil); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("empty batch returned %v, want ErrInvalidSpec", err)
	}
	var batchErr *BatchError
	_, err = svc.SubmitBatch([]JobSpec{{Kind: KindSweep, N: 3}, {Kind: "warp"}})
	if !errors.As(err, &batchErr) || len(batchErr.Items) != 1 || batchErr.Items[0].Index != 1 {
		t.Fatalf("invalid batch returned %v, want BatchError at index 1", err)
	}
	if !strings.Contains(err.Error(), "spec[1]") {
		t.Fatalf("batch error does not locate the bad spec: %v", err)
	}
}

// TestStorePageFiltersByStatus covers the status filter + cursor at
// the store level (the HTTP walk is covered by the client suite).
func TestStorePageFiltersByStatus(t *testing.T) {
	st := newStore()
	now := time.Now()
	for i := 0; i < 6; i++ {
		j := st.add(JobSpec{Kind: KindSweep, N: 3}, DefaultTenant, now)
		if i%2 == 0 {
			if _, ok := st.claim(j.ID, now, nil); !ok {
				t.Fatal("claim failed")
			}
			st.finish(j.ID, ScenarioResult{UnitRoutes: 1, OK: true}, nil, now)
		}
	}
	page, err := st.page(ListQuery{Status: StatusDone, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 || page.NextCursor == "" {
		t.Fatalf("first done page: %+v", page)
	}
	page2, err := st.page(ListQuery{Status: StatusDone, Limit: 2, Cursor: page.NextCursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Jobs) != 1 || page2.NextCursor != "" {
		t.Fatalf("second done page: %+v", page2)
	}
	queuedPage, err := st.page(ListQuery{Status: StatusQueued})
	if err != nil {
		t.Fatal(err)
	}
	if len(queuedPage.Jobs) != 3 {
		t.Fatalf("queued filter saw %d, want 3", len(queuedPage.Jobs))
	}
	if _, err := st.page(ListQuery{Cursor: "bogus"}); err == nil {
		t.Fatal("bogus cursor accepted")
	}
}
