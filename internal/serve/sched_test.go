package serve

import (
	"errors"
	"fmt"
	"testing"
)

// drainWFQ pops every queued job without blocking (the queue must
// hold size jobs).
func drainWFQ(t *testing.T, w *wfq, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, ok := w.pop()
		if !ok {
			t.Fatalf("pop %d reported closed", i)
		}
		out = append(out, id)
	}
	return out
}

func TestWFQDeficitRoundRobinShares(t *testing.T) {
	w := newWFQ(100)
	// Tenant a weight 3, tenant b weight 1, both fully backlogged.
	for i := 0; i < 12; i++ {
		if err := w.push("a", 3, 0, queuedJob{id: fmt.Sprintf("a-%02d", i), seq: i}, false); err != nil {
			t.Fatal(err)
		}
		if err := w.push("b", 1, 0, queuedJob{id: fmt.Sprintf("b-%02d", i), seq: i}, false); err != nil {
			t.Fatal(err)
		}
	}
	got := drainWFQ(t, w, 8)
	// One DRR round serves 3 of a, then 1 of b — repeating.
	want := []string{"a-00", "a-01", "a-02", "b-00", "a-03", "a-04", "a-05", "b-01"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DRR order %v, want %v", got, want)
		}
	}
	if d := w.depth(); d != 16 {
		t.Fatalf("depth = %d after 8 of 24 popped", d)
	}
}

// An emptied queue forfeits leftover deficit: when tenant a returns,
// it does not burst past its share with banked credit.
func TestWFQNoDeficitBanking(t *testing.T) {
	w := newWFQ(100)
	w.push("a", 4, 0, queuedJob{id: "a-0", seq: 0}, false)
	w.push("b", 1, 0, queuedJob{id: "b-0", seq: 0}, false)
	w.push("b", 1, 0, queuedJob{id: "b-1", seq: 1}, false)
	// a is served once (deficit 4→3) and empties — the 3 leftover
	// must vanish.
	got := drainWFQ(t, w, 3)
	if got[0] != "a-0" || got[1] != "b-0" || got[2] != "b-1" {
		t.Fatalf("order %v", got)
	}
	// a returns with fresh jobs: a fresh grant of 4, not 4+3.
	for i := 1; i <= 5; i++ {
		w.push("a", 4, 0, queuedJob{id: fmt.Sprintf("a-%d", i), seq: i}, false)
	}
	w.push("b", 1, 0, queuedJob{id: "b-2", seq: 2}, false)
	got = drainWFQ(t, w, 6)
	want := []string{"a-1", "a-2", "a-3", "a-4", "b-2", "a-5"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after return: %v, want %v", got, want)
		}
	}
}

func TestWFQPriorityOrdersWithinTenant(t *testing.T) {
	w := newWFQ(100)
	w.push("a", 1, 0, queuedJob{id: "low-1", seq: 1, priority: 0}, false)
	w.push("a", 1, 0, queuedJob{id: "low-2", seq: 2, priority: 0}, false)
	w.push("a", 1, 0, queuedJob{id: "high", seq: 3, priority: 5}, false)
	w.push("a", 1, 0, queuedJob{id: "mid-a", seq: 4, priority: 2}, false)
	w.push("a", 1, 0, queuedJob{id: "mid-b", seq: 5, priority: 2}, false)
	got := drainWFQ(t, w, 5)
	want := []string{"high", "mid-a", "mid-b", "low-1", "low-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order %v, want %v", got, want)
		}
	}
}

// Priority jumps only the tenant's own line — another tenant's DRR
// turn is untouched by a high-priority job elsewhere.
func TestWFQPriorityDoesNotCrossTenants(t *testing.T) {
	w := newWFQ(100)
	w.push("a", 1, 0, queuedJob{id: "a-normal", seq: 1, priority: 0}, false)
	w.push("b", 1, 0, queuedJob{id: "b-urgent", seq: 2, priority: 9}, false)
	got := drainWFQ(t, w, 2)
	if got[0] != "a-normal" || got[1] != "b-urgent" {
		t.Fatalf("cross-tenant order %v: b's urgency must not preempt a's ring turn", got)
	}
}

func TestWFQCapacityAndQuota(t *testing.T) {
	w := newWFQ(3)
	if err := w.push("a", 1, 2, queuedJob{id: "a-1", seq: 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := w.push("a", 1, 2, queuedJob{id: "a-2", seq: 2}, false); err != nil {
		t.Fatal(err)
	}
	// Tenant quota (2) hit before global capacity (3).
	err := w.push("a", 1, 2, queuedJob{id: "a-3", seq: 3}, false)
	var qerr *TenantQueueFullError
	if !errors.As(err, &qerr) || qerr.Tenant != "a" || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("quota rejection = %v", err)
	}
	// Another tenant still fits.
	if err := w.push("b", 1, 0, queuedJob{id: "b-1", seq: 4}, false); err != nil {
		t.Fatal(err)
	}
	// Global capacity.
	if err := w.push("b", 1, 0, queuedJob{id: "b-2", seq: 5}, false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("global rejection = %v", err)
	}
	// force bypasses both bounds (recovery / preemption requeues).
	if err := w.push("a", 1, 2, queuedJob{id: "a-forced", seq: 6}, true); err != nil {
		t.Fatalf("forced push failed: %v", err)
	}
	if w.free() != 0 {
		t.Fatalf("free = %d with an over-capacity queue", w.free())
	}
	if w.queuedFor("a") != 3 {
		t.Fatalf("queuedFor(a) = %d", w.queuedFor("a"))
	}
	if w.queuedFor("missing") != 0 {
		t.Fatal("unknown tenant reports a backlog")
	}
	d := w.depths()
	if d["a"] != 3 || d["b"] != 1 {
		t.Fatalf("depths = %v", d)
	}
}

func TestWFQRemove(t *testing.T) {
	w := newWFQ(10)
	w.push("a", 1, 0, queuedJob{id: "a-1", seq: 1}, false)
	w.push("a", 1, 0, queuedJob{id: "a-2", seq: 2}, false)
	w.push("b", 1, 0, queuedJob{id: "b-1", seq: 3}, false)
	w.remove("a", "a-1")
	w.remove("a", "nope") // unknown id: no-op
	w.remove("c", "x")    // unknown tenant: no-op
	if w.depth() != 2 {
		t.Fatalf("depth = %d after remove", w.depth())
	}
	got := drainWFQ(t, w, 2)
	if got[0] != "a-2" || got[1] != "b-1" {
		t.Fatalf("after remove: %v", got)
	}
	// Removing a tenant's last job drops its ring slot entirely.
	w.push("a", 1, 0, queuedJob{id: "a-3", seq: 4}, false)
	w.remove("a", "a-3")
	w.push("b", 1, 0, queuedJob{id: "b-2", seq: 5}, false)
	if got := drainWFQ(t, w, 1); got[0] != "b-2" {
		t.Fatalf("ring corrupted after last-job remove: %v", got)
	}
}

func TestWFQCloseDrainsThenStops(t *testing.T) {
	w := newWFQ(10)
	w.push("a", 1, 0, queuedJob{id: "a-1", seq: 1}, false)
	w.closeIntake()
	if id, ok := w.pop(); !ok || id != "a-1" {
		t.Fatalf("pop after close = %q, %t; the backlog must drain", id, ok)
	}
	if _, ok := w.pop(); ok {
		t.Fatal("pop on a closed empty queue must report done")
	}
	// Forced push after close still works (preemption requeue during
	// drain); a worker must still drain it.
	if err := w.push("a", 1, 0, queuedJob{id: "a-2", seq: 2}, true); err != nil {
		t.Fatal(err)
	}
	if id, ok := w.pop(); !ok || id != "a-2" {
		t.Fatalf("forced post-close job not drained: %q, %t", id, ok)
	}
}
