// The durable job store: a WAL-backed Store implementation that
// survives crashes. Every transition the in-memory store makes
// (submit/claim/finish/cancel — the same events the watch
// subscription publishes) is appended, under the store lock that
// orders them, as one length-prefixed CRC32C-checksummed record to
// an append-only log. Every SnapshotEvery records the full store
// state is written to a snapshot file (tmp + fsync + rename, so the
// named snapshot is always whole) and the log restarts empty —
// compaction that bounds both disk use and recovery time no matter
// how long the service runs; retention inside a snapshot is the
// in-memory store's own eviction window.
//
// Recovery = snapshot + tail replay: records with LSNs at or below
// the snapshot's are skipped (a crash between snapshot rename and
// log reset replays idempotently), a torn or corrupt record
// truncates the tail there (the bytes a mid-write crash leaves
// behind), then interrupted work is re-admitted — QUEUED jobs keep
// their ids and original admission order (cursor pagination stays
// stable), RUNNING jobs go back to the queue for deterministic
// re-execution from their spec seeds (specs fully determine results,
// so the re-run is bit-identical to the run the crash stole), and
// RUNNING jobs whose cancellation was already requested become
// canceled. Recovery ends with a fresh snapshot, so a second crash
// replays from the recovered state, not the original history.
//
// A WAL write failure after boot does not take the service down: the
// store degrades to memory-only and says so in Durability.Degraded
// (surfaced by /v1/healthz) — durability is gone, availability is
// not.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"starmesh/internal/faultfs"
)

// Durability describes a Store's persistence backend — the /v1/healthz
// and /v1/stats durability block.
type Durability struct {
	// Store is the backend kind: "memory" or "wal".
	Store string `json:"store"`
	// Dir, WALPath and SnapshotPath locate the durable files (wal only).
	Dir          string `json:"dir,omitempty"`
	WALPath      string `json:"wal_path,omitempty"`
	SnapshotPath string `json:"snapshot_path,omitempty"`
	// SnapshotEvery is the record count between snapshot+compaction.
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// LastSnapshot is when the newest durable snapshot was taken.
	LastSnapshot time.Time `json:"last_snapshot,omitzero"`
	// Snapshots and WALRecords count compactions and appended records
	// since this process opened the store.
	Snapshots  int64 `json:"snapshots,omitempty"`
	WALRecords int64 `json:"wal_records,omitempty"`
	// Boot-time recovery counts: jobs re-admitted from the queue,
	// interrupted running jobs re-queued for deterministic
	// re-execution, and running jobs finalized as canceled because
	// cancellation had been requested before the crash.
	RecoveredQueued    int `json:"recovered_queued"`
	ReexecutedRunning  int `json:"reexecuted_running"`
	CanceledAtRecovery int `json:"canceled_at_recovery,omitempty"`
	// ReplayedRecords counts WAL records applied at boot;
	// TruncatedTailBytes is the torn/corrupt tail recovery dropped.
	ReplayedRecords    int   `json:"replayed_records,omitempty"`
	TruncatedTailBytes int64 `json:"truncated_tail_bytes,omitempty"`
	// Degraded is non-empty after a WAL write failure: the service
	// keeps running memory-only from that point and this says why.
	Degraded string `json:"degraded,omitempty"`
}

// Record framing: [4-byte little-endian payload length][4-byte CRC32C
// of payload][payload]. A record is written in a single Write call,
// so a crash tears at most the final record — exactly what frameAt
// detects and recovery truncates.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeaderLen = 8
	// maxFrameLen rejects absurd lengths decoded from corrupt
	// headers before any allocation happens.
	maxFrameLen = 16 << 20
)

// appendFrame appends one framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// frameAt decodes the frame starting at off. ok=false means the
// bytes from off on are torn or corrupt (short header, short
// payload, impossible length or checksum mismatch) — the caller
// truncates there.
func frameAt(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHeaderLen > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if n > maxFrameLen || off+frameHeaderLen+n > len(data) {
		return nil, 0, false
	}
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	payload = data[off+frameHeaderLen : off+frameHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false
	}
	return payload, off + frameHeaderLen + n, true
}

// walRecord is one logged transition: the op plus the job's full
// post-transition snapshot. Carrying the whole job makes replay a
// state overwrite instead of a re-derivation, so the WAL cannot
// disagree with the store about what a transition meant.
type walRecord struct {
	LSN uint64 `json:"lsn"`
	Op  walOp  `json:"op"`
	Job Job    `json:"job"`
}

// walSnapshot is the full store state at one LSN.
type walSnapshot struct {
	TakenAt time.Time `json:"taken_at"`
	LSN     uint64    `json:"lsn"`
	Next    int       `json:"next"`
	// Jobs are the retained jobs in admission order (evicted jobs are
	// gone — the cumulative counters below remember them).
	Jobs       []Job          `json:"jobs"`
	Counts     map[Status]int `json:"counts"`
	Finished   int64          `json:"finished"`
	UnitRoutes int64          `json:"unit_routes"`
	Conflicts  int64          `json:"conflicts"`
	ByKind     []KindStats    `json:"by_kind,omitempty"`
	LatTotal   []int64        `json:"lat_total_ns,omitempty"`
	LatRun     []int64        `json:"lat_run_ns,omitempty"`
	WatchDrops int64          `json:"watch_drops,omitempty"`
}

// File names inside the store dir.
const (
	walFileName     = "wal.log"
	snapFileName    = "store.snap"
	snapTmpFileName = "store.snap.tmp"
)

// durableStore is the WAL-backed Store: the in-memory store for all
// live behavior, plus an append log + snapshot cycle hooked into
// every transition via logf.
type durableStore struct {
	*store
	dir       string
	snapEvery int
	open      faultfs.OpenFunc

	// All fields below are guarded by store.mu: logRecord runs under
	// it (logf contract), and the other methods take it.
	f         faultfs.File
	lsn       uint64
	sinceSnap int
	frozen    bool // crash-simulated (tests) or degraded: no more appends
	dur       Durability
	recovered []string // queued ids to re-admit, admission order

	// walObs, when set (setObs, after open), observes append/sync/
	// snapshot timings for the metrics layer. Counters that already
	// live in dur (records, snapshots, recovery) are bridged at scrape
	// time instead.
	walObs *walObs
}

// openDurableStore opens (or creates) the durable store rooted at
// dir, running crash recovery against whatever a previous process
// left there. snapEvery <= 0 defaults to 256; open == nil uses real
// files (tests inject a faultfs.Injector).
func openDurableStore(dir string, snapEvery int, open faultfs.OpenFunc) (*durableStore, error) {
	if snapEvery <= 0 {
		snapEvery = 256
	}
	if open == nil {
		open = faultfs.Open
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store dir: %w", err)
	}
	walPath := filepath.Join(dir, walFileName)
	snapPath := filepath.Join(dir, snapFileName)
	ds := &durableStore{
		store:     newStore(),
		dir:       dir,
		snapEvery: snapEvery,
		open:      open,
		dur: Durability{
			Store:         "wal",
			Dir:           dir,
			WALPath:       walPath,
			SnapshotPath:  snapPath,
			SnapshotEvery: snapEvery,
		},
	}
	// A leftover tmp snapshot is a snapshot write the crash
	// interrupted before the atomic rename: the named snapshot (or
	// its absence) plus the un-reset WAL is the consistent state.
	_ = os.Remove(filepath.Join(dir, snapTmpFileName))

	if data, err := os.ReadFile(snapPath); err == nil && len(data) > 0 {
		payload, next, ok := frameAt(data, 0)
		if !ok || next != len(data) {
			return nil, fmt.Errorf("serve: snapshot %s is corrupt (bad frame or checksum) — move it aside to restart empty", snapPath)
		}
		var snap walSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("serve: snapshot %s does not decode: %w", snapPath, err)
		}
		ds.installSnapshot(&snap)
	}

	if data, err := os.ReadFile(walPath); err == nil {
		off := 0
		for off < len(data) {
			payload, next, ok := frameAt(data, off)
			if !ok {
				// Torn or corrupt tail: a crash mid-append. Everything
				// before it is intact; the tail is dropped and the file
				// truncated to the good prefix.
				ds.dur.TruncatedTailBytes = int64(len(data) - off)
				break
			}
			var rec walRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				ds.dur.TruncatedTailBytes = int64(len(data) - off)
				break
			}
			if rec.LSN > ds.lsn {
				ds.store.apply(&rec)
				ds.lsn = rec.LSN
				ds.dur.ReplayedRecords++
			}
			off = next
		}
	}

	ds.recoverInterrupted(time.Now())

	// Compact immediately: the recovered state becomes the snapshot
	// and the WAL restarts empty, so a second crash replays from
	// here, not from the whole prior history. Failing to persist at
	// boot is fatal — a store that cannot write its own directory
	// must not claim durability.
	f, err := open(walPath, false)
	if err != nil {
		return nil, fmt.Errorf("serve: open wal: %w", err)
	}
	ds.f = f
	if err := ds.snapshotLocked(time.Now()); err != nil {
		ds.f.Close()
		return nil, fmt.Errorf("serve: boot snapshot: %w", err)
	}
	ds.store.logf = ds.logRecord
	return ds, nil
}

// installSnapshot loads a decoded snapshot into the embedded store.
func (ds *durableStore) installSnapshot(snap *walSnapshot) {
	st := ds.store
	st.next = snap.Next
	for i := range snap.Jobs {
		j := snap.Jobs[i] // copy: each job gets its own allocation
		st.jobs[j.ID] = &j
		st.order = append(st.order, j.ID)
	}
	for status, n := range snap.Counts {
		st.counts[status] = n
	}
	st.finished = snap.Finished
	st.unitRoutes = snap.UnitRoutes
	st.conflicts = snap.Conflicts
	for i := range snap.ByKind {
		k := snap.ByKind[i]
		st.byKind[k.Kind] = &k
	}
	for _, ns := range snap.LatTotal {
		st.latTotal.add(time.Duration(ns))
	}
	for _, ns := range snap.LatRun {
		st.latRun.add(time.Duration(ns))
	}
	st.watchDrops = snap.WatchDrops
	ds.lsn = snap.LSN
	ds.dur.LastSnapshot = snap.TakenAt
}

// apply replays one WAL record against the store state — the replay
// side of the logf hook. Transition guards make replay idempotent
// and tolerant of records about jobs the snapshot already settled.
func (st *store) apply(rec *walRecord) {
	id := rec.Job.ID
	switch rec.Op {
	case opSubmit:
		if _, exists := st.jobs[id]; exists {
			return
		}
		j := rec.Job
		st.jobs[id] = &j
		st.order = append(st.order, id)
		st.counts[StatusQueued]++
		if seq := seqOf(id); seq > st.next {
			st.next = seq
		}
	case opClaim:
		j, ok := st.jobs[id]
		if !ok || j.Status != StatusQueued {
			return
		}
		st.counts[StatusQueued]--
		*j = rec.Job
		st.counts[StatusRunning]++
	case opFinish:
		j, ok := st.jobs[id]
		if !ok || j.Status != StatusRunning {
			return
		}
		st.counts[StatusRunning]--
		*j = rec.Job
		st.foldFinished(j)
		st.evict()
	case opCancel:
		j, ok := st.jobs[id]
		if !ok || j.Status != StatusQueued {
			return
		}
		st.counts[StatusQueued]--
		*j = rec.Job
		st.foldCanceledQueued(j)
		st.evict()
	case opCancelReq:
		if j, ok := st.jobs[id]; ok && j.Status == StatusRunning {
			j.CancelRequested = true
			j.Trace = append([]TraceEvent(nil), rec.Job.Trace...)
		}
	case opPreempt:
		// Preemption requeue: running → queued with the partial result
		// preserved. The job re-enters recovery's queued set, so a crash
		// after a preempt still re-admits it — in admission order, in
		// its tenant's queue.
		j, ok := st.jobs[id]
		if !ok || j.Status != StatusRunning {
			return
		}
		st.counts[StatusRunning]--
		*j = rec.Job
		st.counts[StatusQueued]++
	case opTrace:
		// The record carries the job's whole timeline; replay is a
		// state overwrite like every other op.
		if j, ok := st.jobs[id]; ok && !j.Status.Terminal() {
			j.Trace = append([]TraceEvent(nil), rec.Job.Trace...)
		}
	case opRemove:
		j, ok := st.jobs[id]
		if !ok {
			return
		}
		st.counts[j.Status]--
		delete(st.jobs, id)
		if n := len(st.order); n > 0 && st.order[n-1] == id {
			st.order = st.order[:n-1]
		}
	}
}

// recoverInterrupted settles the jobs a crash left non-terminal.
// Walks admission order, so re-admission preserves it.
func (ds *durableStore) recoverInterrupted(now time.Time) {
	st := ds.store
	for i := st.front; i < len(st.order); i++ {
		j := st.jobs[st.order[i]]
		if j == nil {
			continue
		}
		switch j.Status {
		case StatusQueued:
			ds.recovered = append(ds.recovered, j.ID)
			ds.dur.RecoveredQueued++
		case StatusRunning:
			st.counts[StatusRunning]--
			if j.CancelRequested {
				// The cancel was accepted before the crash; honoring it
				// beats re-executing work nobody wants.
				j.Status = StatusCanceled
				j.Finished = now
				j.Error = "canceled: cancellation requested before the service restarted"
				appendTrace(j, now, string(StatusCanceled), "finalized at recovery")
				st.foldCanceledQueued(j)
				ds.dur.CanceledAtRecovery++
			} else {
				// Back to the queue for deterministic re-execution: the
				// spec's seed fully determines the result, so the re-run
				// is bit-identical to the one the crash interrupted.
				j.Status = StatusQueued
				j.Started = time.Time{}
				// The interrupted run's trace is stale — the re-execution
				// restarts the timeline from admission, with a recovered
				// marker in between.
				if len(j.Trace) > 0 {
					j.Trace = j.Trace[:1]
				}
				appendTrace(j, now, TraceRecovered, "re-queued for deterministic re-execution")
				st.counts[StatusQueued]++
				ds.recovered = append(ds.recovered, j.ID)
				ds.dur.ReexecutedRunning++
			}
		}
	}
}

// logRecord is the logf hook: append one framed record, snapshotting
// + compacting on cadence. Runs under store.mu (logf contract). A
// write failure degrades to memory-only instead of failing the job
// transition that triggered it.
func (ds *durableStore) logRecord(op walOp, j *Job) {
	if ds.frozen {
		return
	}
	ds.lsn++
	rec := walRecord{LSN: ds.lsn, Op: op, Job: j.snapshot()}
	payload, err := json.Marshal(rec)
	if err != nil {
		ds.degrade(fmt.Sprintf("marshal %s record: %v", op, err))
		return
	}
	frame := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload)
	var start time.Time
	if ds.walObs != nil {
		start = time.Now()
	}
	if _, err := ds.f.Write(frame); err != nil {
		ds.degrade(fmt.Sprintf("append %s record: %v", op, err))
		return
	}
	if ds.walObs != nil {
		ds.walObs.appendSeconds.Observe(time.Since(start).Seconds())
		ds.walObs.appendBytes.Add(int64(len(frame)))
	}
	ds.dur.WALRecords++
	ds.sinceSnap++
	if ds.sinceSnap >= ds.snapEvery {
		if err := ds.snapshotLocked(time.Now()); err != nil {
			ds.degrade(fmt.Sprintf("snapshot: %v", err))
		}
	}
}

// degrade records the first WAL failure and stops appending; the
// in-memory store keeps serving. Caller holds store.mu.
func (ds *durableStore) degrade(msg string) {
	if ds.dur.Degraded == "" {
		ds.dur.Degraded = msg
	}
	ds.frozen = true
}

// buildSnapshot captures the store state. Caller holds store.mu (or
// has exclusive access during open).
func (ds *durableStore) buildSnapshot(now time.Time) walSnapshot {
	st := ds.store
	snap := walSnapshot{
		TakenAt:    now,
		LSN:        ds.lsn,
		Next:       st.next,
		Jobs:       make([]Job, 0, len(st.order)-st.front),
		Counts:     make(map[Status]int, len(st.counts)),
		Finished:   st.finished,
		UnitRoutes: st.unitRoutes,
		Conflicts:  st.conflicts,
		LatTotal:   windowNs(&st.latTotal),
		LatRun:     windowNs(&st.latRun),
		WatchDrops: st.watchDrops,
	}
	for i := st.front; i < len(st.order); i++ {
		if j := st.jobs[st.order[i]]; j != nil {
			snap.Jobs = append(snap.Jobs, j.snapshot())
		}
	}
	for status, n := range st.counts {
		snap.Counts[status] = n
	}
	for _, k := range st.byKind {
		snap.ByKind = append(snap.ByKind, *k)
	}
	return snap
}

// windowNs flattens a latency ring into insertion order.
func windowNs(w *latWindow) []int64 {
	out := make([]int64, 0, len(w.samples))
	for i := 0; i < len(w.samples); i++ {
		out = append(out, w.samples[(w.next+i)%len(w.samples)].Nanoseconds())
	}
	return out
}

// snapshotLocked writes the store state to the snapshot file (tmp +
// sync + atomic rename) and resets the WAL — the compaction step.
// The WAL is only truncated after the rename lands, so every crash
// point leaves either the old snapshot + full log or the new
// snapshot + (possibly still-full, LSN-skipped) log. Caller holds
// store.mu (or has exclusive access during open).
func (ds *durableStore) snapshotLocked(now time.Time) error {
	if ds.walObs != nil {
		start := time.Now()
		defer func() {
			ds.walObs.snapshotSeconds.Observe(time.Since(start).Seconds())
		}()
	}
	snap := ds.buildSnapshot(now)
	payload, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	tmpPath := filepath.Join(ds.dir, snapTmpFileName)
	tmp, err := ds.open(tmpPath, true)
	if err != nil {
		return err
	}
	_, werr := tmp.Write(appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload))
	if werr == nil {
		var start time.Time
		if ds.walObs != nil {
			start = time.Now()
		}
		werr = tmp.Sync()
		if ds.walObs != nil {
			ds.walObs.syncSeconds.Observe(time.Since(start).Seconds())
		}
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpPath)
		return werr
	}
	if err := os.Rename(tmpPath, ds.dur.SnapshotPath); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// The snapshot is durable; the log it covers can go.
	if ds.f != nil {
		ds.f.Close()
	}
	nf, err := ds.open(ds.dur.WALPath, true)
	if err != nil {
		ds.f = nil
		return err
	}
	ds.f = nf
	ds.sinceSnap = 0
	ds.dur.Snapshots++
	ds.dur.LastSnapshot = now
	return nil
}

// setObs attaches the WAL timing instruments — called once by the
// Service after open, before any worker starts.
func (ds *durableStore) setObs(w *walObs) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.walObs = w
}

// durability reports the WAL state for /v1/healthz and /v1/stats.
func (ds *durableStore) durability() Durability {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.dur
}

// recoveredQueued returns the ids recovery re-admitted, in original
// admission order; the Service feeds them to its workers before
// accepting new submissions.
func (ds *durableStore) recoveredQueued() []string { return ds.recovered }

// close flushes and closes the WAL. Safe after freeze (a no-op).
func (ds *durableStore) close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.frozen || ds.f == nil {
		return nil
	}
	ds.frozen = true
	err := ds.f.Sync()
	if cerr := ds.f.Close(); err == nil {
		err = cerr
	}
	ds.f = nil
	return err
}

// freeze simulates a crash: appends stop and the file handle dies,
// mid-whatever the service was doing — the test hook behind the
// kill-under-load recovery suite. The in-memory side keeps running
// (the "process" hasn't noticed it is doomed), but nothing after the
// freeze reaches disk, exactly like SIGKILL.
func (ds *durableStore) freeze() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.frozen {
		return
	}
	ds.frozen = true
	if ds.f != nil {
		ds.f.Close()
		ds.f = nil
	}
}
