// HTTP tenancy contract tests: X-API-Key resolution to 401/202, the
// 429 rate_limited path with a computed Retry-After, atomic batch
// token takes, per-tenant queue quotas, and the /v1/stats ?window=
// leaderboard parameter.
package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// doJSONKey is doJSON with an X-API-Key header; it also returns the
// response headers (for Retry-After).
func doJSONKey(t *testing.T, method, url, key, body string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// errCode extracts the structured error code from a response body.
func errCode(t *testing.T, data []byte) string {
	t.Helper()
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("unparseable error body %s: %v", data, err)
	}
	return env.Error.Code
}

func tenantTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Drain() })
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func TestHTTPTenantAuth(t *testing.T) {
	_, ts := tenantTestServer(t, Config{Workers: 1, Queue: 8, RequireKey: true,
		Tenants: []TenantConfig{{Name: "ci", Key: "key-ci", Weight: 2}}})

	spec := `{"kind":"sweep","n":3}`
	// No key under require_key: 401 unauthorized.
	code, data, _ := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "", spec)
	if code != http.StatusUnauthorized || errCode(t, data) != "unauthorized" {
		t.Fatalf("keyless submit: %d %s", code, data)
	}
	// Unknown key: same 401, keys are never half-matched.
	code, data, _ = doJSONKey(t, "POST", ts.URL+"/v1/jobs", "bogus", spec)
	if code != http.StatusUnauthorized || errCode(t, data) != "unauthorized" {
		t.Fatalf("bogus-key submit: %d %s", code, data)
	}
	// A batch behind a bad key fails the same way.
	code, data, _ = doJSONKey(t, "POST", ts.URL+"/v1/jobs:batch", "bogus",
		`{"specs":[`+spec+`]}`)
	if code != http.StatusUnauthorized || errCode(t, data) != "unauthorized" {
		t.Fatalf("bogus-key batch: %d %s", code, data)
	}
	// The real key admits and the job record carries the tenant name.
	code, data, _ = doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-ci", spec)
	if code != http.StatusAccepted {
		t.Fatalf("keyed submit: %d %s", code, data)
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "ci" {
		t.Fatalf("job tenant %q, want ci", job.Tenant)
	}
}

func TestHTTPRateLimitRetryAfter(t *testing.T) {
	_, ts := tenantTestServer(t, Config{Workers: 1, Queue: 8,
		Tenants: []TenantConfig{
			{Name: "slow", Key: "key-slow", RatePerSec: 0.5, Burst: 1},
			{Name: "free", Key: "key-free"},
		}})

	spec := `{"kind":"sweep","n":3}`
	code, data, _ := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-slow", spec)
	if code != http.StatusAccepted {
		t.Fatalf("burst submit: %d %s", code, data)
	}
	// Bucket empty: the next token is ~2s away at 0.5/s, and the 429
	// must say so rather than hand back a generic "1".
	code, data, hdr := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-slow", spec)
	if code != http.StatusTooManyRequests || errCode(t, data) != "rate_limited" {
		t.Fatalf("limited submit: %d %s", code, data)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want the computed \"2\"", ra)
	}
	// Another tenant's bucket is untouched by slow's exhaustion.
	if code, data, _ := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-free", spec); code != http.StatusAccepted {
		t.Fatalf("unlimited tenant rejected: %d %s", code, data)
	}
}

// TestHTTPBatchRateLimitAtomic pins the all-or-nothing token take: a
// batch the bucket cannot cover is refused without draining it, so
// the full burst is still there for a batch that fits.
func TestHTTPBatchRateLimitAtomic(t *testing.T) {
	svc, ts := tenantTestServer(t, Config{Workers: 1, Queue: 16,
		Tenants: []TenantConfig{{Name: "b", Key: "key-b", RatePerSec: 0.001, Burst: 3}}})

	spec := `{"kind":"sweep","n":3}`
	specs3 := `{"specs":[` + spec + `,` + spec + `,` + spec + `]}`
	specs4 := `{"specs":[` + spec + `,` + spec + `,` + spec + `,` + spec + `]}`

	code, data, hdr := doJSONKey(t, "POST", ts.URL+"/v1/jobs:batch", "key-b", specs4)
	if code != http.StatusTooManyRequests || errCode(t, data) != "rate_limited" {
		t.Fatalf("over-burst batch: %d %s", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("rate-limited batch carries no Retry-After")
	}
	// The refusal left all 3 burst tokens in place.
	code, data, _ = doJSONKey(t, "POST", ts.URL+"/v1/jobs:batch", "key-b", specs3)
	if code != http.StatusAccepted {
		t.Fatalf("exact-burst batch after refusal: %d %s", code, data)
	}
	// And now the bucket really is empty.
	code, data, _ = doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-b", spec)
	if code != http.StatusTooManyRequests || errCode(t, data) != "rate_limited" {
		t.Fatalf("post-batch submit: %d %s", code, data)
	}
	if st := svc.Stats(); st.Queued+st.Running+st.Done != 3 {
		t.Fatalf("admitted job count wrong: %+v", st)
	}
}

// TestHTTPTenantQueueQuota fills one tenant's max_queued while the
// worker is pinned: the quota 429 is queue_full scoped to that
// tenant, and other tenants keep their room.
func TestHTTPTenantQueueQuota(t *testing.T) {
	svc, ts := tenantTestServer(t, Config{Workers: 1, Queue: 16,
		Tenants: []TenantConfig{
			{Name: "capped", Key: "key-capped", MaxQueued: 1},
			{Name: "roomy", Key: "key-roomy"},
		}})

	// Pin the only worker so submissions stay queued.
	pin := submitOrDie(t, svc, JobSpec{Kind: KindSweep, N: 4, Trials: 1_000_000})
	waitRunning(t, svc, pin.ID)

	spec := `{"kind":"sweep","n":3}`
	code, data, _ := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-capped", spec)
	if code != http.StatusAccepted {
		t.Fatalf("first capped submit: %d %s", code, data)
	}
	code, data, hdr := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-capped", spec)
	if code != http.StatusTooManyRequests || errCode(t, data) != "queue_full" {
		t.Fatalf("quota overflow: %d %s", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("quota 429 carries no Retry-After")
	}
	// The global queue has 14 free slots — only capped is full.
	if code, data, _ := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-roomy", spec); code != http.StatusAccepted {
		t.Fatalf("roomy tenant rejected by capped's quota: %d %s", code, data)
	}
	if _, err := svc.Cancel(pin.ID); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPStatsWindowParam(t *testing.T) {
	svc, ts := tenantTestServer(t, Config{Workers: 1, Queue: 8,
		Tenants: []TenantConfig{{Name: "ci", Key: "key-ci", Weight: 3}}})

	code, data, _ := doJSONKey(t, "POST", ts.URL+"/v1/jobs", "key-ci", `{"kind":"sweep","n":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, svc, job.ID)

	// Malformed and non-positive windows are structured 400s.
	for _, bad := range []string{"sideways", "-5s", "0s"} {
		code, data, _ := doJSONKey(t, "GET", ts.URL+"/v1/stats?window="+bad, "", "")
		if code != http.StatusBadRequest || errCode(t, data) != "invalid_argument" {
			t.Fatalf("window=%s: %d %s", bad, code, data)
		}
	}
	// A good window echoes its span and carries the keyed tenant's
	// leaderboard row, weight included.
	code, data, _ = doJSONKey(t, "GET", ts.URL+"/v1/stats?window=45s", "", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, data)
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.TenantWindowNs != (45 * time.Second).Nanoseconds() {
		t.Fatalf("window echoed %d ns, want 45s", st.TenantWindowNs)
	}
	var row *TenantStats
	for i := range st.Tenants {
		if st.Tenants[i].Tenant == "ci" {
			row = &st.Tenants[i]
		}
	}
	if row == nil || row.Jobs < 1 || row.Weight != 3 || row.Rank < 1 {
		t.Fatalf("leaderboard row for ci missing or wrong: %+v", st.Tenants)
	}
}
