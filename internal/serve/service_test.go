package serve

import (
	"context"
	"errors"
	"starmesh/internal/workload"
	"testing"
	"time"
)

// testSpecs is a small mixed workload covering every kind and both
// machine shapes.
func testSpecs() []JobSpec {
	return []JobSpec{
		{Kind: KindSort, N: 4, Dist: "uniform", Seed: 7},
		{Kind: KindSort, N: 4, Dist: "reversed", Seed: 7},
		{Kind: KindShear, Rows: 8, Cols: 8, Dist: "uniform", Seed: 11},
		{Kind: KindBroadcast, N: 4, Source: 1},
		{Kind: KindSweep, N: 4},
		{Kind: KindFaultRoute, N: 4, Faults: 2, Pairs: 8, Seed: 13},
	}
}

// waitTerminal polls a job to a terminal status.
func waitTerminal(t *testing.T, s *Service, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.Status.Terminal() {
			return job
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("job %s never finished", id)
	return Job{}
}

func TestServiceResultsMatchStandaloneRuns(t *testing.T) {
	svc, err := NewService(Config{Workers: 2, Queue: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	// Submit every spec twice: the second run of each spec lands on a
	// pooled (reset) machine, so this exercises reuse, not just
	// first-build.
	var ids []string
	for round := 0; round < 2; round++ {
		for _, spec := range testSpecs() {
			job, err := svc.Submit(spec)
			if err != nil {
				t.Fatalf("submit %+v: %v", spec, err)
			}
			ids = append(ids, job.ID)
		}
	}
	specs := append(testSpecs(), testSpecs()...)
	for i, id := range ids {
		job := waitTerminal(t, svc, id)
		if job.Status != StatusDone {
			t.Fatalf("job %s (%+v) ended %s: %s", id, job.Spec, job.Status, job.Error)
		}
		sc, err := workload.ScenarioFor(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := sc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := *job.Result
		got.Name, got.ElapsedNs = "", 0
		want.Name, want.ElapsedNs = "", 0
		if got != want {
			t.Fatalf("job %s diverged from standalone run: %+v != %+v", id, got, want)
		}
	}

	stats := svc.Stats()
	if stats.Done != len(ids) || stats.Failed != 0 {
		t.Fatalf("stats wrong: %+v", stats)
	}
	if stats.UnitRoutes == 0 || stats.LatencyTotalP50Ns == 0 || stats.LatencyRunP99Ns == 0 {
		t.Fatalf("aggregates missing: %+v", stats)
	}
	var reuses int64
	for _, p := range stats.Pools {
		reuses += p.Reuses
	}
	if reuses == 0 {
		t.Fatalf("second round never reused a pooled machine: %+v", stats.Pools)
	}
}

func TestUnpooledServiceMatchesPooled(t *testing.T) {
	run := func(noPool bool) []Job {
		svc, err := NewService(Config{Workers: 2, Queue: 32, NoPool: noPool})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Drain()
		var jobs []Job
		for _, spec := range testSpecs() {
			j, err := svc.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		out := make([]Job, len(jobs))
		for i, j := range jobs {
			out[i] = waitTerminal(t, svc, j.ID)
		}
		return out
	}
	pooled := run(false)
	unpooled := run(true)
	for i := range pooled {
		p, u := pooled[i].Result, unpooled[i].Result
		if p == nil || u == nil {
			t.Fatalf("missing result: pooled %+v, unpooled %+v", pooled[i], unpooled[i])
		}
		if p.UnitRoutes != u.UnitRoutes || p.Conflicts != u.Conflicts || p.OK != u.OK {
			t.Fatalf("pooled and unpooled results diverged for %+v: %+v != %+v",
				pooled[i].Spec, p, u)
		}
	}
}

func TestSubmitBackpressure(t *testing.T) {
	// A stopped service (no workers) keeps jobs queued, so the
	// bounded queue is observable deterministically.
	svc, err := newService(Config{Queue: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Kind: KindSweep, N: 3}
	if _, err := svc.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit returned %v, want ErrQueueFull", err)
	}
	// The rejected job left no trace in the store.
	if got := len(svc.Jobs(0)); got != 2 {
		t.Fatalf("store holds %d jobs after rejection, want 2", got)
	}
	svc.Drain()
}

func TestCancelQueuedJobSkippedByWorker(t *testing.T) {
	svc, err := newService(Config{Queue: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := svc.Submit(JobSpec{Kind: KindSweep, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Submit(JobSpec{Kind: KindSweep, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := svc.Cancel(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.Status != StatusCanceled {
		t.Fatalf("cancel left status %s", canceled.Status)
	}
	// Drive the worker loop by hand: the canceled job must be
	// skipped, the other must run.
	svc.runJob(a.ID)
	svc.runJob(b.ID)
	if job, _ := svc.Job(a.ID); job.Status != StatusCanceled {
		t.Fatalf("worker resurrected a canceled job: %s", job.Status)
	}
	if job, _ := svc.Job(b.ID); job.Status != StatusDone {
		t.Fatalf("queued job did not run: %s (%s)", job.Status, job.Error)
	}
	// Running and finished jobs are not cancelable.
	if _, err := svc.Cancel(b.ID); !errors.Is(err, ErrNotCancelable) {
		t.Fatalf("cancel of a done job returned %v, want ErrNotCancelable", err)
	}
	if _, err := svc.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown job returned %v, want ErrNotFound", err)
	}
	if stats := svc.Stats(); stats.Canceled != 1 || stats.Done != 1 {
		t.Fatalf("stats wrong after cancel: %+v", stats)
	}
	svc.pools.closeAll()
}

func TestDrainRunsAdmittedJobsThenRejects(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 32})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 8; i++ {
		j, err := svc.Submit(JobSpec{Kind: KindSort, N: 4, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	svc.Drain() // must block until every admitted job completed
	for _, id := range ids {
		job, _ := svc.Job(id)
		if job.Status != StatusDone {
			t.Fatalf("job %s not completed by drain: %s (%s)", id, job.Status, job.Error)
		}
	}
	if _, err := svc.Submit(JobSpec{Kind: KindSweep, N: 3}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain returned %v, want ErrDraining", err)
	}
	if !svc.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	svc.Drain() // idempotent
}

func TestInvalidSpecsRejected(t *testing.T) {
	svc, err := newService(Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	bad := []JobSpec{
		{},                            // no kind
		{Kind: "warp", N: 4},          // unknown kind
		{Kind: KindSort, N: 1},        // n too small
		{Kind: KindSort, N: MaxN + 1}, // n too large
		{Kind: KindSort, N: 4, Dist: "gaussian"},
		{Kind: KindShear, Rows: 0, Cols: 9},
		{Kind: KindShear, Rows: 1 << 10, Cols: 1 << 10},
		{Kind: KindBroadcast, N: 4, Source: -1},
		{Kind: KindBroadcast, N: 4, Source: 24},
		{Kind: KindFaultRoute, N: 4, Faults: 3},
		{Kind: KindFaultRoute, N: 4, Faults: 1, Pairs: -2},
	}
	for _, spec := range bad {
		if _, err := svc.Submit(spec); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("spec %+v returned %v, want ErrInvalidSpec", spec, err)
		}
	}
	// Defaults: empty dist means uniform, pairs defaults to 1.
	norm, err := JobSpec{Kind: KindSort, N: 4}.Normalized()
	if err != nil || norm.Dist != "uniform" {
		t.Fatalf("sort default dist: %+v, %v", norm, err)
	}
	norm, err = JobSpec{Kind: KindFaultRoute, N: 4, Faults: 2}.Normalized()
	if err != nil || norm.Pairs != 1 {
		t.Fatalf("faultroute default pairs: %+v, %v", norm, err)
	}
	svc.Drain()
}

func TestBadEngineConfigRejected(t *testing.T) {
	if _, err := NewService(Config{Engine: "quantum"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestParallelEngineServiceMatchesSequential(t *testing.T) {
	results := func(engine string) []Job {
		svc, err := NewService(Config{Workers: 2, Engine: engine, EngineWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Drain()
		var jobs []Job
		for _, spec := range testSpecs() {
			j, err := svc.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		out := make([]Job, len(jobs))
		for i, j := range jobs {
			out[i] = waitTerminal(t, svc, j.ID)
		}
		return out
	}
	seq := results("sequential")
	par := results("parallel")
	for i := range seq {
		s, p := seq[i].Result, par[i].Result
		if s == nil || p == nil || s.UnitRoutes != p.UnitRoutes || s.Conflicts != p.Conflicts || s.OK != p.OK {
			t.Fatalf("parallel engine diverged for %+v: %+v != %+v", seq[i].Spec, p, s)
		}
	}
}
