// Package serve is the simulation job service: the long-running
// layer that turns the starmesh library into a system. It accepts
// typed JobSpecs — workload scenarios as data — admits them through
// a bounded scheduler with backpressure and cancellation, executes
// them on per-shape machine pools, records every outcome in an
// in-memory store with latency/cost aggregation (global and per
// scenario kind), and exposes the whole thing over an HTTP JSON API.
//
// The service carries NO scenario knowledge of its own: validation,
// pool shapes, machine construction and execution all dispatch
// through the scenario registry (internal/workload.Builtin), so a
// family registered there — sort, shear, broadcast, sweep,
// faultroute, embedrect, permroute, virtual, diagnostics, pipeline —
// is immediately servable with pooling, parity and stats for free.
//
// # Per-shape machine pools
//
// Building a simulation machine is the expensive part of a job: the
// star topology materializes n!·(n-1) neighbor links, the Lemma-3
// route tables cost O(n!·n²) per (k, dir), the embedding's vertex
// map costs another O(n!·n²), and compiled route plans must be bound
// and validated per machine. All of that state is a pure function of
// the machine's shape — (topology, engine) — so the service checks
// machines out of a pool keyed by shape, runs one job, resets the
// machine (registers and stats zeroed; see simd.Machine.Reset) and
// checks it back in. Jobs of the same shape then pay construction
// once, while the paper's cost model guarantees the reported results
// (unit routes, conflicts, self-check) are bit-identical to a
// fresh-machine run of the same seed: the runners in
// internal/workload are the single implementation behind both paths.
// Disabling pooling (Config.NoPool) restores build-per-job — the
// measured baseline of BENCH_serve.json.
//
// # Scheduler
//
// Admission is a bounded queue: Submit either enqueues the job or
// fails fast with ErrQueueFull (HTTP 429), so overload sheds load
// instead of accumulating it. A fixed worker set drains the queue;
// queued jobs can be canceled (HTTP DELETE) up to the moment a
// worker claims them. Drain performs a graceful shutdown: admission
// stops (ErrDraining, HTTP 503), every already-admitted job still
// runs to completion, then the workers exit and the pools release
// their machines (and the engines' worker goroutines).
//
// # API
//
//	POST   /jobs        submit a JobSpec        → 202 Job (429 full, 503 draining, 400 invalid)
//	GET    /jobs/{id}   job status and result   → 200 Job (404 unknown)
//	DELETE /jobs/{id}   cancel a queued job     → 200 Job (409 not cancelable)
//	GET    /jobs        recent jobs             → 200 [Job]
//	GET    /stats       aggregated service view → 200 Stats
//	GET    /healthz     liveness + drain state  → 200 ok (503 draining)
//
// The load generator (RunLoad) drives the API closed-loop —
// concurrent clients submitting and polling — and RunComparison
// measures pooled vs build-per-job throughput while asserting both
// modes return results identical to standalone scenario runs; the
// serve experiment writes that record to BENCH_serve.json.
package serve
