// Package serve is the simulation job service: the long-running
// layer that turns the starmesh library into a system. It accepts
// typed JobSpecs — workload scenarios as data — admits them through
// a bounded scheduler with backpressure and cancellation, executes
// them on per-shape machine pools, records every outcome in a job
// store with latency/cost aggregation (global and per scenario
// kind), and exposes the whole thing over an HTTP JSON API. The
// store is in-memory by default; Config.StoreDir swaps in the
// WAL-backed durable implementation with crash recovery.
//
// The service carries NO scenario knowledge of its own: validation,
// pool shapes, machine construction and execution all dispatch
// through the scenario registry (internal/workload.Builtin), so a
// family registered there — sort, shear, broadcast, sweep,
// faultroute, embedrect, permroute, virtual, diagnostics, pipeline —
// is immediately servable with pooling, parity and stats for free.
//
// # Per-shape machine pools
//
// Building a simulation machine is the expensive part of a job: the
// star topology materializes n!·(n-1) neighbor links, the Lemma-3
// route tables cost O(n!·n²) per (k, dir), the embedding's vertex
// map costs another O(n!·n²), and compiled route plans must be bound
// and validated per machine. All of that state is a pure function of
// the machine's shape — (topology, engine) — so the service checks
// machines out of a pool keyed by shape, runs one job, resets the
// machine (registers and stats zeroed; see simd.Machine.Reset) and
// checks it back in. Jobs of the same shape then pay construction
// once, while the paper's cost model guarantees the reported results
// (unit routes, conflicts, self-check) are bit-identical to a
// fresh-machine run of the same seed: the runners in
// internal/workload are the single implementation behind both paths.
// Disabling pooling (Config.NoPool) restores build-per-job — the
// measured baseline of BENCH_serve.json.
//
// # Scheduler and cancellation
//
// Admission is a bounded queue: Submit either enqueues the job or
// fails fast with ErrQueueFull (HTTP 429), so overload sheds load
// instead of accumulating it; SubmitBatch admits a set of specs
// atomically — all queued or none. A fixed worker set drains the
// queue. Every job runs under its own context, threaded from the
// scheduler through workload.Family.Run into the scenario runners,
// which carry cooperative cancellation checkpoints in their long
// loops — so Cancel (HTTP DELETE) aborts queued AND running jobs:
// a running job stops at its next checkpoint with bounded latency,
// ends in the terminal "canceled" status with its partial stats
// preserved, and its machine returns to the pool Reset-safe.
// Canceling a terminal job is the typed ErrTerminal conflict (409).
//
// Shutdown(ctx) drains under the caller's deadline: admission stops
// (ErrDraining, HTTP 503; /v1/healthz reports "draining" while the
// listener still answers), admitted jobs run to completion, and at
// the deadline the stragglers are canceled at their checkpoints.
// Drain is Shutdown without a deadline.
//
// # Durable store and crash recovery
//
// The Store interface has two implementations. The default is the
// in-memory store; Config.StoreDir selects the WAL-backed durable
// one (wal.go): every state transition appends one CRC32C-framed
// record to an append-only log under the store mutex, a full-store
// snapshot rotates in atomically every Config.SnapshotEvery records
// (truncating the log), and opening the directory after a crash
// replays snapshot + tail — torn or corrupt tails truncated, queued
// jobs re-admitted in admission order, interrupted running jobs
// re-executed bit-exactly from their seeded specs, and jobs with a
// pending cancel request finalized as canceled. Runtime disk
// failure degrades the store to memory-only rather than failing
// submissions; the condition and the recovery counters are exposed
// in the Durability block of /v1/healthz and /v1/stats. See
// docs/durability.md for the record format and the crash matrix;
// internal/faultfs is the deterministic fault-injection harness the
// recovery tests are built on.
//
// # Multi-tenant traffic shaping
//
// Tenancy is first-class (tenant.go, sched.go; docs/tenancy.md).
// Config.Tenants — loaded from a JSON registry by LoadTenantsFile —
// maps API keys to named tenants, each with a fair-queueing weight,
// an optional token-bucket rate limit (429 rate_limited with a
// computed Retry-After) and an optional per-tenant queue quota.
// Submissions resolve the X-API-Key header to a tenant (missing key
// = the anonymous tenant, or 401 unauthorized under RequireKey),
// and the admission queue is a weighted fair queue: deficit
// round-robin over per-tenant queues, so a flooding tenant
// lengthens only its own backlog and backlogged tenants complete
// jobs in proportion to their weights. Spec.Priority (0-9) orders
// jobs within one tenant's queue and can preempt a running
// lower-priority multi-trial sweep at its cancellation checkpoint —
// the victim requeues with partial stats and re-executes
// bit-identically. Stats carries a sliding-window per-tenant
// leaderboard (StatsWindow) with Poisson throughput intervals and
// rank-uncertainty bounds.
//
// # The v1 contract
//
// The HTTP surface is versioned under /v1 (pre-v1 unversioned paths
// remain as thin aliases for one release):
//
//	POST   /v1/jobs            submit a JobSpec          → 202 Job
//	POST   /v1/jobs:batch      atomic multi-spec submit  → 202 {jobs}
//	GET    /v1/jobs            status filter + cursor    → 200 JobPage
//	GET    /v1/jobs/{id}       job status and result     → 200 Job
//	DELETE /v1/jobs/{id}       cancel queued or running  → 200 Job
//	GET    /v1/jobs/{id}/watch ndjson transition stream  → 200 Job…
//	GET    /v1/stats           aggregated view, ?window= → 200 Stats
//	GET    /v1/healthz         liveness + drain state    → 200/503 Health
//
// Errors are structured — {"error":{"code":…,"message":…}} — with a
// typed code taxonomy (ErrorCode) mapped to HTTP statuses exactly
// once (errors.go): invalid_spec/invalid_argument 400, unauthorized
// 401, not_found 404, terminal 409, queue_full/rate_limited 429
// (+Retry-After), draining 503, internal 500. The watch stream is a
// store subscription: every status transition publishes a snapshot;
// the stream ends after the terminal one.
//
// The public typed client (starmesh/client) is the supported caller:
// the CLI's remote subcommands and the load generator
// (internal/loadgen, behind BENCH_serve.json) contain no hand-rolled
// HTTP.
package serve
