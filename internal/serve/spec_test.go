package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"starmesh/internal/workload"
)

// TestSpecValidationRejectsWith400 drives every invalid-spec class
// through the HTTP API table-style and requires a 400 with an error
// message that names the problem (an actionable fragment below).
// One case per registered kind plus the kind-level errors, so a new
// family must bring its validation with it.
func TestSpecValidationRejectsWith400(t *testing.T) {
	svc, err := NewService(Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want string // fragment the 400 message must contain
	}{
		{"missing kind", `{}`, "needs a kind"},
		{"sweep bad trials", `{"kind":"sweep","n":4,"trials":-1}`, "trials in [1,"},
		{"unknown kind", `{"kind":"quicksort"}`, `unknown scenario kind "quicksort"`},
		{"unknown field", `{"kind":"sort","n":4,"bogus":1}`, "bogus"},
		{"sort n too small", `{"kind":"sort","n":1}`, "n in [2,8]"},
		{"sort n too large", `{"kind":"sort","n":99}`, "n in [2,8]"},
		{"sort bad dist", `{"kind":"sort","n":4,"dist":"gaussian"}`, `unknown distribution "gaussian"`},
		{"shear zero mesh", `{"kind":"shear","rows":0,"cols":8}`, "rows×cols"},
		{"shear oversize mesh", `{"kind":"shear","rows":1024,"cols":1024}`, "rows×cols"},
		{"broadcast negative source", `{"kind":"broadcast","n":4,"source":-1}`, "source -1 out of range"},
		{"broadcast source beyond n!", `{"kind":"broadcast","n":4,"source":24}`, "out of range [0,24)"},
		{"sweep n out of range", `{"kind":"sweep","n":9}`, "n in [2,8]"},
		{"faultroute too many faults", `{"kind":"faultroute","n":4,"faults":3}`, "at most n-2"},
		{"faultroute negative pairs", `{"kind":"faultroute","n":4,"faults":1,"pairs":-2}`, "pairs ≥ 1"},
		{"embedrect d too large", `{"kind":"embedrect","n":4,"d":4}`, "d in [1,3]"},
		{"permroute n too large", `{"kind":"permroute","n":8}`, "n in [2,7]"},
		{"permroute bad pattern", `{"kind":"permroute","n":4,"pattern":"spiral"}`, `pattern "spiral"`},
		{"virtual n too large", `{"kind":"virtual","n":6}`, "n in [2,5]"},
		{"diagnostics negative holes", `{"kind":"diagnostics","n":4,"holes":-1}`, "holes"},
		{"diagnostics too many trials", `{"kind":"diagnostics","n":4,"holes":1,"trials":1000}`, "trials in [1,64]"},
		{"pipeline bad source", `{"kind":"pipeline","n":4,"source":-3}`, "source -3 out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The v1 route and the legacy alias must reject alike.
			for _, base := range []string{ts.URL + "/v1/jobs", ts.URL + "/jobs"} {
				code, data := doJSON(t, "POST", base, tc.body)
				if code != http.StatusBadRequest {
					t.Fatalf("submit to %s returned %d, want 400: %s", base, code, data)
				}
				var out ErrorBody
				if err := json.Unmarshal(data, &out); err != nil || out.Error.Code == "" {
					t.Fatalf("400 body is not a structured error document: %s", data)
				}
				if out.Error.Code != CodeInvalidSpec && out.Error.Code != CodeInvalidArgument {
					t.Fatalf("400 code %q, want invalid_spec or invalid_argument", out.Error.Code)
				}
				if msg := out.Error.Message; !strings.Contains(msg, tc.want) {
					t.Fatalf("400 message %q does not explain the problem (want %q)", msg, tc.want)
				}
			}
		})
	}
	// Every registered kind has at least one negative case above
	// (kind-specific or via the shared starN), so a kind added
	// without validation coverage fails here.
	covered := map[string]bool{}
	for _, tc := range cases {
		var spec struct {
			Kind string `json:"kind"`
		}
		_ = json.Unmarshal([]byte(tc.body), &spec)
		covered[spec.Kind] = true
	}
	for _, k := range workload.Kinds() {
		if !covered[k] {
			t.Errorf("no validation error case covers kind %q", k)
		}
	}
}

// TestNormalizedFillsDefaults pins the defaulting contract the
// parity harness relies on (it keys results by normalized names).
func TestNormalizedFillsDefaults(t *testing.T) {
	cases := []struct {
		spec JobSpec
		name string
	}{
		{JobSpec{Kind: KindSort, N: 4}, "sort-star-n4-uniform-seed0"},
		{JobSpec{Kind: KindSweep, N: 4}, "sweep-star-n4-t1"},
		{JobSpec{Kind: KindFaultRoute, N: 4, Faults: 1}, "faultroute-star-n4-f1-p1-seed0"},
		{JobSpec{Kind: KindEmbedRect, N: 5}, "embedrect-star-n5-d2"},
		{JobSpec{Kind: KindPermRoute, N: 4}, "permroute-star-n4-random-seed0"},
		{JobSpec{Kind: KindVirtual, N: 3}, "virtual-star-n3-uniform-seed0"},
		{JobSpec{Kind: KindDiagnostics, N: 4, Holes: 1}, "diagnostics-star-n4-h1-t1-seed0"},
		{JobSpec{Kind: KindPipeline, N: 4}, "pipeline-star-n4-d2-uniform-seed0-src0"},
	}
	for _, tc := range cases {
		norm, err := tc.spec.Normalized()
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Kind, err)
		}
		if got := norm.Name(); got != tc.name {
			t.Errorf("%s normalized name = %q, want %q", tc.spec.Kind, got, tc.name)
		}
	}
}
