// Service: the bounded scheduler tying admission, per-shape pools
// and the store together. Submit either enqueues or fails fast;
// fixed workers drain the queue onto pooled machines; Drain stops
// admission, lets every admitted job finish, then releases the
// pools.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"starmesh/internal/obs"
	"starmesh/internal/simd"
	"starmesh/internal/workload"
)

// Config shapes a Service. The zero value is a working default:
// GOMAXPROCS workers, a 64-deep queue, pooling on, the sequential
// engine with plans enabled.
type Config struct {
	// Workers is the number of concurrent job executors (0 =
	// GOMAXPROCS).
	Workers int `json:"workers"`
	// Queue is the admission queue depth (0 = 64). A full queue
	// rejects submissions with ErrQueueFull — backpressure, not
	// buffering.
	Queue int `json:"queue"`
	// NoPool disables per-shape machine pooling: every job builds a
	// fresh machine and closes it (the measured baseline).
	NoPool bool `json:"no_pool"`
	// Engine selects the execution engine of the job machines:
	// "sequential" (default), "parallel" or "parallel-spawn".
	Engine string `json:"engine"`
	// EngineWorkers is the parallel engine's worker count (0 =
	// GOMAXPROCS).
	EngineWorkers int `json:"engine_workers"`
	// NoPlans disables compiled route plans on the job machines.
	NoPlans bool `json:"no_plans"`
	// DrainGrace bounds how long ListenAndServe waits for admitted
	// jobs after shutdown begins before canceling the running ones at
	// their next checkpoint (0 = 5s). Callers driving Shutdown
	// directly control the deadline through their context instead.
	DrainGrace time.Duration `json:"drain_grace_ns"`
	// StoreDir enables the durable WAL-backed job store rooted at
	// that directory ("" = in-memory). On startup the service runs
	// crash recovery there: queued jobs are re-admitted in original
	// admission order and interrupted running jobs re-execute
	// deterministically from their spec seeds.
	StoreDir string `json:"store_dir,omitempty"`
	// SnapshotEvery is the WAL record count between snapshot +
	// compaction cycles of the durable store (0 = 256; ignored
	// without StoreDir).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// NoObs disables the metrics layer entirely: no registry, no
	// instrument updates on any path, /v1/metrics answers 404. The
	// bench harness uses it to measure the metrics path's own
	// overhead; production services leave it off.
	NoObs bool `json:"no_obs,omitempty"`
	// Logger receives the service's structured logs (nil = discard —
	// library consumers stay quiet; cmd wires a real handler from
	// -log-level/-log-format).
	Logger *slog.Logger `json:"-"`
	// Tenants is the API-key tenant registry (see TenantConfig and
	// the -tenants flag). Empty means single-tenant: everything runs
	// as DefaultTenant with weight 1 and no limits.
	Tenants []TenantConfig `json:"tenants,omitempty"`
	// RequireKey rejects keyless submissions with 401 unauthorized
	// instead of admitting them as DefaultTenant.
	RequireKey bool `json:"require_key,omitempty"`
}

// withDefaults resolves the zero values to their effective settings
// — the single place the running service and the bench record agree
// on what a default config means.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Engine == "" {
		c.Engine = "sequential"
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// Effective resolves the zero values to the settings a service of
// this config actually runs — exported for the bench harness, whose
// record must describe the real configuration.
func (c Config) Effective() Config { return c.withDefaults() }

// EngineOptions maps the config to simd machine options — exported
// so the load harness builds its standalone parity references with
// exactly the service's engine.
func (c Config) EngineOptions() ([]simd.Option, error) { return c.engineOptions() }

// engineOptions maps the config to simd machine options.
func (c Config) engineOptions() ([]simd.Option, error) {
	var opts []simd.Option
	switch c.Engine {
	case "", "sequential", "seq":
	case "parallel", "par":
		opts = append(opts, simd.WithExecutor(simd.Parallel(c.EngineWorkers)))
	case "parallel-spawn", "spawn":
		opts = append(opts, simd.WithExecutor(simd.ParallelSpawn(c.EngineWorkers)))
	default:
		return nil, fmt.Errorf("serve: unknown engine %q (want sequential, parallel or parallel-spawn)", c.Engine)
	}
	if c.NoPlans {
		opts = append(opts, simd.WithPlans(false))
	}
	return opts, nil
}

// Service is a running simulation job service.
type Service struct {
	cfg        Config
	workers    int
	queueCap   int
	engineOpts []simd.Option

	store   Store
	pools   *poolSet
	sched   *wfq
	tenants *tenantSet
	start   time.Time

	// running counts claimed-and-executing jobs — the preemption
	// trigger's "are all workers busy" signal, maintained by runJob
	// without taking any lock.
	running atomic.Int64

	// Observability: nil met/reg under Config.NoObs — every
	// instrumentation point nil-checks, so the disabled path costs one
	// branch. log is never nil (discard by default).
	met *serveMetrics
	log *slog.Logger

	// baseCtx parents every job's context; baseCancel is the
	// last-resort abort (Drain deadline passed).
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex // guards draining + the enqueue/close race
	draining bool

	// clusterInfo is this node's cluster membership (nil when not
	// clustered; see SetCluster). An atomic pointer because the
	// harness installs it after the listeners are up, concurrently
	// with serving.
	clusterInfo atomic.Pointer[ClusterInfo]
	// drainRequested nudges ListenAndServe into graceful shutdown
	// when POST /v1/drain fires (buffered: the signal must not block
	// the handler, and services driven without ListenAndServe just
	// never read it).
	drainRequested chan struct{}

	wg       sync.WaitGroup
	finishOf sync.Once
	drained  chan struct{}
}

// NewService validates the config and starts the worker set.
func NewService(cfg Config) (*Service, error) {
	return newService(cfg, true)
}

// newService optionally holds the workers back — tests use a stopped
// service to observe queued state deterministically.
func newService(cfg Config, startWorkers bool) (*Service, error) {
	eff := cfg.withDefaults()
	opts, err := eff.engineOptions()
	if err != nil {
		return nil, err
	}
	tenants, err := newTenantSet(eff.Tenants, eff.RequireKey)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var st Store = newStore()
	var recovered []string
	if eff.StoreDir != "" {
		ds, err := openDurableStore(eff.StoreDir, eff.SnapshotEvery, nil)
		if err != nil {
			return nil, err
		}
		st = ds
		recovered = ds.recoveredQueued()
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        eff,
		workers:    eff.Workers,
		queueCap:   eff.Queue,
		engineOpts: opts,
		store:      st,
		pools:      newPoolSet(!eff.NoPool),
		// The scheduler holds the recovered backlog ahead of the
		// configured depth, exactly as the old channel did, so
		// re-admission never rejects and new submissions still see
		// eff.Queue of fresh capacity.
		sched:          newWFQ(eff.Queue + len(recovered)),
		tenants:        tenants,
		start:          time.Now(),
		baseCtx:        baseCtx,
		baseCancel:     baseCancel,
		drained:        make(chan struct{}),
		drainRequested: make(chan struct{}, 1),
	}
	s.log = eff.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if !eff.NoObs {
		s.met = newServeMetrics(s)
		// Store hooks: queue-wait and run-time histograms plus the
		// terminal counters, observed under the store lock where the
		// transitions are ordered.
		met := s.met
		st.setHooks(
			func(tenant, kind string, wait time.Duration) {
				met.jobsRunning.Add(1)
				met.queueWaitSeconds.Observe(wait.Seconds())
				met.tenantQueueWait(tenant).Observe(wait.Seconds())
			},
			func(status Status, tenant, kind string, run time.Duration, ran bool) {
				if ran {
					met.jobsRunning.Add(-1)
					met.jobRunSeconds.With(kind).Observe(run.Seconds())
				}
				met.finished(status, kind, tenant).Inc()
			},
		)
		if ds, ok := st.(*durableStore); ok {
			ds.setObs(&s.met.wal)
		}
		// Every machine the pools build reports into the engine
		// counters.
		s.engineOpts = append(s.engineOpts, simd.WithCollector(newEngineCollector(s.met)))
	}
	// Re-admit recovered work in original admission order before any
	// worker starts or any new submission lands. Forced pushes ride
	// above the configured capacity (new submissions still see
	// eff.Queue of fresh room) and land in each job's tenant queue by
	// admission sequence — so per-tenant order survives the crash.
	for _, id := range recovered {
		job, ok := s.store.get(id)
		if !ok {
			continue
		}
		s.enqueue(job, true)
	}
	if startWorkers {
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	return s, nil
}

// Submit validates and admits a job as the default (anonymous)
// tenant, returning its queued snapshot. A full queue fails fast
// with ErrQueueFull; a draining service with ErrDraining; a bad spec
// with an error wrapping ErrInvalidSpec. Under Config.RequireKey it
// fails with ErrUnauthorized — use SubmitWithKey.
func (s *Service) Submit(spec JobSpec) (Job, error) { return s.SubmitWithKey("", spec) }

// SubmitWithKey resolves the tenant of an X-API-Key value ("" = the
// default tenant, unless RequireKey) and admits the job through that
// tenant's rate limit, quota and queue. On top of Submit's errors:
// an unknown key is ErrUnauthorized, an empty token bucket a
// *RateLimitError (429 with Retry-After), a tenant over its
// MaxQueued quota a *TenantQueueFullError.
func (s *Service) SubmitWithKey(apiKey string, spec JobSpec) (Job, error) {
	t, err := s.tenants.forKey(apiKey)
	if err != nil {
		s.reject("", "unauthorized")
		return Job{}, err
	}
	norm, err := spec.Normalized()
	if err != nil {
		s.reject(t.name, "invalid_spec")
		return Job{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	if t.bucket != nil {
		if wait, ok := t.bucket.take(time.Now(), 1); !ok {
			s.reject(t.name, "rate_limited")
			return Job{}, &RateLimitError{Tenant: t.name, Wait: wait}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.reject(t.name, "draining")
		return Job{}, ErrDraining
	}
	job := s.store.add(norm, t.name, time.Now())
	if err := s.enqueue(job, false); err != nil {
		s.store.remove(job.ID)
		s.reject(t.name, "queue_full")
		return Job{}, err
	}
	s.admitted(t.name, norm.Kind)
	s.maybePreempt(norm.Priority)
	return job, nil
}

// enqueue pushes a job into its tenant's queue. force bypasses
// capacity and quota (recovery re-admission, preemption requeues).
func (s *Service) enqueue(job Job, force bool) error {
	t, known := s.tenants.byName[job.Tenant]
	weight, maxQueued := 1, 0
	if known {
		weight, maxQueued = t.weight, t.maxQueued
	}
	return s.sched.push(job.Tenant, weight, maxQueued,
		queuedJob{id: job.ID, seq: seqOf(job.ID), priority: job.Spec.Priority}, force)
}

// maybePreempt checks whether a just-admitted job of this priority
// should bounce a running lower-priority sweep back to its queue.
// Only fires when every worker is busy — with free workers the new
// job gets picked up anyway.
func (s *Service) maybePreempt(priority int) {
	if priority <= 0 || s.running.Load() < int64(s.workers) {
		return
	}
	if id, ok := s.store.requestPreempt(priority, time.Now()); ok {
		if s.met != nil {
			s.met.tenantPreempts.With().Inc()
		}
		s.log.Info("job preempted for higher-priority submission", "job", id, "priority", priority)
	}
}

// admitted counts one admission.
func (s *Service) admitted(tenant, kind string) {
	if s.met != nil {
		s.met.jobsAdmitted.With(kind).Inc()
		s.met.tenantAdmitted(tenant).Inc()
	}
}

// reject counts one refused submission ("" tenant = the key never
// resolved).
func (s *Service) reject(tenant, reason string) {
	if s.met != nil {
		s.met.jobsRejected.With(reason).Inc()
		if tenant != "" {
			s.met.tenantRejected(tenant, reason).Inc()
		}
	}
}

// SubmitBatch validates and admits a set of jobs atomically as the
// default tenant — see SubmitBatchWithKey.
func (s *Service) SubmitBatch(specs []JobSpec) ([]Job, error) {
	return s.SubmitBatchWithKey("", specs)
}

// SubmitBatchWithKey validates and admits a set of jobs atomically
// under one tenant: either every spec is valid, the tenant's bucket
// covers the whole batch and the queue (global and tenant quota) has
// room for all of them — each becomes a queued job, in order — or
// nothing is admitted. Validation failures return a *BatchError
// (wrapping ErrInvalidSpec) naming every offending index;
// insufficient queue space is ErrQueueFull.
func (s *Service) SubmitBatchWithKey(apiKey string, specs []JobSpec) ([]Job, error) {
	t, err := s.tenants.forKey(apiKey)
	if err != nil {
		s.reject("", "unauthorized")
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: batch needs at least one spec", ErrInvalidSpec)
	}
	norm := make([]JobSpec, len(specs))
	maxPriority := 0
	var batchErr BatchError
	for i, spec := range specs {
		n, err := spec.Normalized()
		if err != nil {
			batchErr.Items = append(batchErr.Items, BatchItemError{Index: i, Message: err.Error()})
			continue
		}
		norm[i] = n
		if n.Priority > maxPriority {
			maxPriority = n.Priority
		}
	}
	if len(batchErr.Items) > 0 {
		s.reject(t.name, "invalid_spec")
		return nil, &batchErr
	}
	// A batch larger than the whole queue can never be admitted: that
	// is a spec problem (non-retryable 400), not transient queue_full
	// backpressure a client should sleep on.
	if len(norm) > s.queueCap {
		s.reject(t.name, "invalid_spec")
		return nil, fmt.Errorf("%w: batch of %d can never fit the %d-deep queue — split it",
			ErrInvalidSpec, len(norm), s.queueCap)
	}
	// The whole batch takes tokens atomically: admitting half a batch
	// at the rate limit would break the all-or-nothing contract.
	if t.bucket != nil {
		if wait, ok := t.bucket.take(time.Now(), float64(len(norm))); !ok {
			s.reject(t.name, "rate_limited")
			return nil, &RateLimitError{Tenant: t.name, Wait: wait}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.reject(t.name, "draining")
		return nil, ErrDraining
	}
	// Capacity check under the admission lock: workers only ever free
	// space, so the per-spec pushes cannot fail once this passes.
	if free := s.sched.free(); free < len(norm) {
		s.reject(t.name, "queue_full")
		return nil, fmt.Errorf("%w: batch of %d exceeds free queue capacity %d",
			ErrQueueFull, len(norm), free)
	}
	if t.maxQueued > 0 && s.sched.queuedFor(t.name)+len(norm) > t.maxQueued {
		s.reject(t.name, "queue_full")
		return nil, &TenantQueueFullError{Tenant: t.name, MaxQueued: t.maxQueued}
	}
	jobs := make([]Job, len(norm))
	now := time.Now()
	for i, n := range norm {
		job := s.store.add(n, t.name, now)
		// force: capacity and quota were just checked for the batch as
		// a whole, and nothing can shrink them under s.mu.
		_ = s.enqueue(job, true)
		jobs[i] = job
		s.admitted(t.name, n.Kind)
	}
	s.maybePreempt(maxPriority)
	return jobs, nil
}

// Job returns a snapshot of a job by id.
func (s *Service) Job(id string) (Job, bool) { return s.store.get(id) }

// Jobs returns snapshots of the most recent jobs, newest first
// (limit 0 = all).
func (s *Service) Jobs(limit int) []Job { return s.store.list(limit) }

// ListJobs returns one page of the job listing, newest first,
// filtered and resumed per the query.
func (s *Service) ListJobs(q ListQuery) (JobPage, error) { return s.store.page(q) }

// Watch subscribes to a job's status transitions: the current
// snapshot plus a channel that carries every subsequent transition
// and closes after the terminal one (nil if the job is already
// terminal). Call stop to unsubscribe early.
func (s *Service) Watch(id string) (Job, <-chan Job, func(), error) {
	return s.store.watch(id)
}

// Cancel aborts a job. A queued job transitions to canceled
// immediately; a running job has its context canceled and aborts at
// the next cooperative checkpoint inside its runner (the snapshot
// returned shows cancel_requested, the terminal transition follows
// with bounded latency, and the partial stats are preserved on the
// record). A terminal job returns ErrTerminal.
func (s *Service) Cancel(id string) (Job, error) {
	job, err := s.store.cancel(id, time.Now())
	if err == nil && job.Status == StatusCanceled && job.Started.IsZero() {
		// Canceled straight out of the queue: release its scheduler
		// slot so it stops counting against capacity and quota. A
		// worker racing us may have popped it already — claim skips
		// canceled jobs, and remove tolerates the absence.
		s.sched.remove(job.Tenant, id)
	}
	return job, err
}

// Stats aggregates the service view: status counts, latency
// percentiles, unit-route totals, per-shape pool counters and the
// per-tenant leaderboard over the default trailing window.
func (s *Service) Stats() Stats { return s.StatsWindow(DefaultTenantWindow) }

// StatsWindow is Stats with the tenant leaderboard computed over the
// given trailing window (GET /v1/stats?window=30s; ≤0 = default).
func (s *Service) StatsWindow(window time.Duration) Stats {
	if window <= 0 {
		window = DefaultTenantWindow
	}
	st := s.store.aggregate(time.Since(s.start))
	st.Workers = s.workers
	st.QueueCap = s.queueCap
	st.Pooling = !s.cfg.NoPool
	st.Durability = s.store.durability()
	s.mu.Lock()
	st.Draining = s.draining
	s.mu.Unlock()
	st.Pools = s.pools.stats()
	now := time.Now()
	st.TenantWindowNs = window.Nanoseconds()
	st.Tenants = buildTenantStats(s.store.tenantWindow(now, window), window,
		s.tenants.weightOf, s.sched.depths())
	return st
}

// MetricsRegistry exposes the service's metric registry (nil under
// Config.NoObs) — the backing of GET /v1/metrics, also usable
// in-process for snapshots.
func (s *Service) MetricsRegistry() *obs.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}

// Durability describes the job-store backend: "memory", or the WAL
// paths, snapshot age and boot-time recovery counts of a durable
// store (also part of /v1/healthz and /v1/stats).
func (s *Service) Durability() Durability { return s.store.durability() }

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginDrain stops admission: Submit fails with ErrDraining,
// Draining() and /healthz report draining, and the workers exit once
// the queue empties. Idempotent, non-blocking — the first step of
// every shutdown path, taken before the HTTP listener dies so health
// checks see the drain while in-flight requests complete.
func (s *Service) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	s.sched.closeIntake() // Submit holds s.mu, so no push can race this
}

// Drain gracefully shuts the service down: admission stops
// (ErrDraining), every already-admitted job runs to completion, the
// workers exit, and the machine pools close — releasing every
// engine's worker goroutines. Drain blocks until all of that is done
// and is safe to call from multiple goroutines; later calls wait for
// the first. Shutdown is Drain with a deadline.
func (s *Service) Drain() { _ = s.Shutdown(context.Background()) }

// Shutdown drains the service, honoring the caller's deadline: when
// ctx fires before every admitted job has finished, the running jobs
// are canceled (they abort at their next cooperative checkpoint and
// finish as canceled with partial stats) and the queued remainder is
// skipped, so Shutdown still returns promptly — with ctx's error.
// Safe for concurrent use; every caller blocks until the pools have
// closed.
func (s *Service) Shutdown(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Deadline passed: abort running jobs at their checkpoints and
		// unblock everything still queued.
		s.baseCancel()
		s.store.cancelAllRunning()
		<-done
	}
	s.finishOf.Do(func() {
		s.pools.closeAll()
		s.store.close() // flush + close the WAL after the last transition
		close(s.drained)
	})
	<-s.drained
	return err
}

// Close is Drain (io.Closer-shaped for callers that expect one).
func (s *Service) Close() error {
	s.Drain()
	return nil
}

// worker drains the scheduler until Drain closes it and the queues
// empty.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		id, ok := s.sched.pop()
		if !ok {
			return
		}
		s.runJob(id)
	}
}

// runJob claims one queued job, executes it on a pooled machine of
// the job's shape and records the outcome. The job gets its own
// context (child of the service's), registered in the store so
// Cancel can abort it mid-run. Machine panics (the simulators panic
// on contract violations) are converted into job failures so one bad
// job cannot take the worker down.
func (s *Service) runJob(id string) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	ctx = WithJobID(ctx, id)
	spec, ok := s.store.claim(id, time.Now(), cancel)
	if !ok {
		return // canceled while queued
	}
	s.running.Add(1)
	log := s.logWith(ctx)
	log.Debug("job claimed", "kind", spec.Kind, "shape", spec.Shape())
	res, err := s.execute(ctx, id, spec)
	requeued := s.store.finish(id, res, err, time.Now())
	s.running.Add(-1)
	if requeued {
		// Preempted at its checkpoint: back into its tenant's queue
		// (forced — a requeue must never bounce off capacity). The
		// re-execution starts from the spec's seed, so the eventual
		// result is bit-identical to an uninterrupted run.
		if job, ok := s.store.get(id); ok {
			_ = s.enqueue(job, true)
			log.Info("job preempted and requeued", "kind", spec.Kind, "tenant", job.Tenant,
				"preemptions", job.Preemptions)
		}
		return
	}
	if done, ok := s.store.get(id); ok {
		if err != nil {
			log.Info("job finished", "kind", spec.Kind, "status", string(done.Status), "error", err)
		} else {
			log.Debug("job finished", "kind", spec.Kind, "status", string(done.Status),
				"unit_routes", res.UnitRoutes, "conflicts", res.Conflicts)
		}
	}
}

func (s *Service) execute(ctx context.Context, id string, spec JobSpec) (res ScenarioResult, err error) {
	// A pre-canceled job (deadline drain, cancel racing the claim)
	// skips machine checkout entirely.
	if err := ctx.Err(); err != nil {
		return res, err
	}
	fam, err := workload.FamilyOf(spec.Kind)
	if err != nil {
		return res, err
	}
	shape := fam.Shape(spec)
	pl, err := s.pools.forShape(shape, func() workload.Resource {
		return fam.Build(spec, s.engineOpts...)
	})
	if err != nil {
		return res, err
	}
	checkoutStart := time.Now()
	r, built, err := pl.checkout()
	if err != nil {
		return res, err
	}
	if s.met != nil {
		s.met.checkoutWaitSeconds.With(shape).Observe(time.Since(checkoutStart).Seconds())
	}
	// The machine_ready span: which pool served the job and whether
	// the checkout hit (reused) or missed (built).
	src := "reused"
	if built {
		src = "built"
	}
	s.store.trace(id, time.Now(), TraceMachineReady, "shape="+shape+" "+src)
	defer pl.checkin(r)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: job panicked: %v", p)
		}
	}()
	return fam.Run(ctx, spec, r)
}
