// Service: the bounded scheduler tying admission, per-shape pools
// and the store together. Submit either enqueues or fails fast;
// fixed workers drain the queue onto pooled machines; Drain stops
// admission, lets every admitted job finish, then releases the
// pools.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"starmesh/internal/simd"
	"starmesh/internal/workload"
)

// Admission and lookup errors; the HTTP layer maps them to status
// codes (429, 503, 404, 409, 400).
var (
	ErrQueueFull     = errors.New("serve: admission queue full")
	ErrDraining      = errors.New("serve: service is draining")
	ErrNotFound      = errors.New("serve: no such job")
	ErrNotCancelable = errors.New("serve: job not cancelable")
	ErrInvalidSpec   = errors.New("serve: invalid job spec")
)

// Config shapes a Service. The zero value is a working default:
// GOMAXPROCS workers, a 64-deep queue, pooling on, the sequential
// engine with plans enabled.
type Config struct {
	// Workers is the number of concurrent job executors (0 =
	// GOMAXPROCS).
	Workers int `json:"workers"`
	// Queue is the admission queue depth (0 = 64). A full queue
	// rejects submissions with ErrQueueFull — backpressure, not
	// buffering.
	Queue int `json:"queue"`
	// NoPool disables per-shape machine pooling: every job builds a
	// fresh machine and closes it (the measured baseline).
	NoPool bool `json:"no_pool"`
	// Engine selects the execution engine of the job machines:
	// "sequential" (default), "parallel" or "parallel-spawn".
	Engine string `json:"engine"`
	// EngineWorkers is the parallel engine's worker count (0 =
	// GOMAXPROCS).
	EngineWorkers int `json:"engine_workers"`
	// NoPlans disables compiled route plans on the job machines.
	NoPlans bool `json:"no_plans"`
}

// withDefaults resolves the zero values to their effective settings
// — the single place the running service and the bench record agree
// on what a default config means.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Engine == "" {
		c.Engine = "sequential"
	}
	return c
}

// engineOptions maps the config to simd machine options.
func (c Config) engineOptions() ([]simd.Option, error) {
	var opts []simd.Option
	switch c.Engine {
	case "", "sequential", "seq":
	case "parallel", "par":
		opts = append(opts, simd.WithExecutor(simd.Parallel(c.EngineWorkers)))
	case "parallel-spawn", "spawn":
		opts = append(opts, simd.WithExecutor(simd.ParallelSpawn(c.EngineWorkers)))
	default:
		return nil, fmt.Errorf("serve: unknown engine %q (want sequential, parallel or parallel-spawn)", c.Engine)
	}
	if c.NoPlans {
		opts = append(opts, simd.WithPlans(false))
	}
	return opts, nil
}

// Service is a running simulation job service.
type Service struct {
	cfg        Config
	workers    int
	queueCap   int
	engineOpts []simd.Option

	store *store
	pools *poolSet
	queue chan string
	start time.Time

	mu       sync.Mutex // guards draining + the enqueue/close race
	draining bool

	wg      sync.WaitGroup
	drainOf sync.Once
	drained chan struct{}
}

// NewService validates the config and starts the worker set.
func NewService(cfg Config) (*Service, error) {
	return newService(cfg, true)
}

// newService optionally holds the workers back — tests use a stopped
// service to observe queued state deterministically.
func newService(cfg Config, startWorkers bool) (*Service, error) {
	eff := cfg.withDefaults()
	opts, err := eff.engineOptions()
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:        eff,
		workers:    eff.Workers,
		queueCap:   eff.Queue,
		engineOpts: opts,
		store:      newStore(),
		pools:      newPoolSet(!eff.NoPool),
		queue:      make(chan string, eff.Queue),
		start:      time.Now(),
		drained:    make(chan struct{}),
	}
	if startWorkers {
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	return s, nil
}

// Submit validates and admits a job, returning its queued snapshot.
// A full queue fails fast with ErrQueueFull; a draining service with
// ErrDraining; a bad spec with an error wrapping ErrInvalidSpec.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Job{}, ErrDraining
	}
	job := s.store.add(norm, time.Now())
	select {
	case s.queue <- job.ID:
		return job, nil
	default:
		s.store.remove(job.ID)
		return Job{}, ErrQueueFull
	}
}

// Job returns a snapshot of a job by id.
func (s *Service) Job(id string) (Job, bool) { return s.store.get(id) }

// Jobs returns snapshots of the most recent jobs, newest first
// (limit 0 = all).
func (s *Service) Jobs(limit int) []Job { return s.store.list(limit) }

// Cancel cancels a queued job. Running jobs are not preemptible —
// a unit-route schedule has no safe interruption point — and
// finished jobs are immutable; both return ErrNotCancelable.
func (s *Service) Cancel(id string) (Job, error) {
	return s.store.cancel(id, time.Now())
}

// Stats aggregates the service view: status counts, latency
// percentiles, unit-route totals and per-shape pool counters.
func (s *Service) Stats() Stats {
	st := s.store.aggregate(time.Since(s.start))
	st.Workers = s.workers
	st.QueueCap = s.queueCap
	st.Pooling = !s.cfg.NoPool
	s.mu.Lock()
	st.Draining = s.draining
	s.mu.Unlock()
	st.Pools = s.pools.stats()
	return st
}

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: admission stops
// (ErrDraining), every already-admitted job runs to completion, the
// workers exit, and the machine pools close — releasing every
// engine's worker goroutines. Drain blocks until all of that is done
// and is safe to call from multiple goroutines; later calls wait for
// the first.
func (s *Service) Drain() {
	s.drainOf.Do(func() {
		s.mu.Lock()
		s.draining = true
		close(s.queue) // Submit holds s.mu, so no send can race this
		s.mu.Unlock()
		s.wg.Wait()
		s.pools.closeAll()
		close(s.drained)
	})
	<-s.drained
}

// Close is Drain (io.Closer-shaped for callers that expect one).
func (s *Service) Close() error {
	s.Drain()
	return nil
}

// worker drains the queue until Drain closes it.
func (s *Service) worker() {
	defer s.wg.Done()
	for id := range s.queue {
		s.runJob(id)
	}
}

// runJob claims one queued job, executes it on a pooled machine of
// the job's shape and records the outcome. Machine panics (the
// simulators panic on contract violations) are converted into job
// failures so one bad job cannot take the worker down.
func (s *Service) runJob(id string) {
	spec, ok := s.store.claim(id, time.Now())
	if !ok {
		return // canceled while queued
	}
	res, err := s.execute(spec)
	s.store.finish(id, res, err, time.Now())
}

func (s *Service) execute(spec JobSpec) (res ScenarioResult, err error) {
	fam, err := workload.FamilyOf(spec.Kind)
	if err != nil {
		return res, err
	}
	pl, err := s.pools.forShape(fam.Shape(spec), func() workload.Resource {
		return fam.Build(spec, s.engineOpts...)
	})
	if err != nil {
		return res, err
	}
	r, err := pl.checkout()
	if err != nil {
		return res, err
	}
	defer pl.checkin(r)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: job panicked: %v", p)
		}
	}()
	return fam.Run(spec, r)
}
