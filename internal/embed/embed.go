// Package embed provides the graph-embedding framework of §3.1 of
// the paper: an embedding maps the vertices of a guest graph G
// one-to-one onto vertices of a host graph S and each guest edge onto
// a simple path of the host. The package computes and verifies the
// three quality metrics the paper defines — expansion |S|/|G|,
// dilation (longest edge image), and congestion (most-loaded host
// edge) — for arbitrary embeddings, and is used both for the paper's
// D_n→S_n embedding (Theorem 4) and for the baselines of E18.
package embed

import (
	"fmt"

	"starmesh/internal/graphalg"
)

// Embedding is a vertex map plus an edge→path oracle.
//
// VertexMap[g] is the host vertex of guest vertex g; it must be
// injective. Path returns the host path (as a vertex sequence,
// endpoints included) realizing the guest edge {u,v}; if nil, paths
// default to host shortest paths computed by BFS.
type Embedding struct {
	Guest graphalg.Graph
	Host  graphalg.Graph
	// VertexMap maps guest vertex ids to host vertex ids.
	VertexMap []int
	// Path, if non-nil, returns the host path for guest edge {u,v}.
	Path func(u, v int) []int
	// Dist, if non-nil, returns exact host distances; used by
	// DilationOnly to avoid per-vertex BFS on large hosts (the star
	// graph has a closed-form distance, see star.Distance).
	Dist func(hu, hv int) int
}

// hostPath returns the path realizing guest edge {u,v}.
func (e *Embedding) hostPath(u, v int) []int {
	if e.Path != nil {
		return e.Path(u, v)
	}
	return graphalg.BFSPath(e.Host, e.VertexMap[u], e.VertexMap[v])
}

// Validate checks structural soundness: the vertex map is injective
// and total, and every guest edge maps to a simple host path whose
// endpoints match the vertex map and whose steps are host edges.
func (e *Embedding) Validate() error {
	ng := e.Guest.Order()
	if len(e.VertexMap) != ng {
		return fmt.Errorf("embed: vertex map has %d entries, guest has %d vertices", len(e.VertexMap), ng)
	}
	seen := make(map[int]bool, ng)
	for g, h := range e.VertexMap {
		if h < 0 || h >= e.Host.Order() {
			return fmt.Errorf("embed: vertex %d maps outside host (%d)", g, h)
		}
		if seen[h] {
			return fmt.Errorf("embed: vertex map not injective at host vertex %d", h)
		}
		seen[h] = true
	}
	var buf []int
	for u := 0; u < ng; u++ {
		buf = e.Guest.AppendNeighbors(buf[:0], u)
		for _, v := range buf {
			if v < u {
				continue // each undirected edge once
			}
			p := e.hostPath(u, v)
			if err := e.validatePath(u, v, p); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Embedding) validatePath(u, v int, p []int) error {
	if len(p) < 2 {
		return fmt.Errorf("embed: edge {%d,%d} has path of length %d", u, v, len(p))
	}
	if p[0] != e.VertexMap[u] || p[len(p)-1] != e.VertexMap[v] {
		return fmt.Errorf("embed: edge {%d,%d} path endpoints %d..%d don't match map %d..%d",
			u, v, p[0], p[len(p)-1], e.VertexMap[u], e.VertexMap[v])
	}
	onPath := make(map[int]bool, len(p))
	var nbuf []int
	for i, x := range p {
		if onPath[x] {
			return fmt.Errorf("embed: edge {%d,%d} path is not simple (revisits %d)", u, v, x)
		}
		onPath[x] = true
		if i+1 == len(p) {
			break
		}
		nbuf = e.Host.AppendNeighbors(nbuf[:0], x)
		ok := false
		for _, w := range nbuf {
			if w == p[i+1] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("embed: edge {%d,%d} path step %d->%d is not a host edge", u, v, x, p[i+1])
		}
	}
	return nil
}

// Expansion returns |host| / |guest| (§3.1).
func (e *Embedding) Expansion() float64 {
	return float64(e.Host.Order()) / float64(e.Guest.Order())
}

// Metrics holds the measured quality of an embedding.
type Metrics struct {
	Expansion     float64
	Dilation      int     // max path length over guest edges
	AvgDilation   float64 // mean path length over guest edges
	Congestion    int     // max number of paths sharing a host edge
	GuestEdges    int
	HostEdgesUsed int
}

// Measure walks every guest edge once, accumulating dilation and
// per-host-edge congestion. Paths contribute each undirected host
// edge they traverse.
func (e *Embedding) Measure() Metrics {
	m := Metrics{Expansion: e.Expansion()}
	cong := make(map[[2]int]int)
	sum := 0
	var buf []int
	for u := 0; u < e.Guest.Order(); u++ {
		buf = e.Guest.AppendNeighbors(buf[:0], u)
		for _, v := range buf {
			if v < u {
				continue
			}
			p := e.hostPath(u, v)
			l := len(p) - 1
			m.GuestEdges++
			sum += l
			if l > m.Dilation {
				m.Dilation = l
			}
			for i := 0; i+1 < len(p); i++ {
				a, b := p[i], p[i+1]
				if a > b {
					a, b = b, a
				}
				cong[[2]int{a, b}]++
			}
		}
	}
	for _, c := range cong {
		if c > m.Congestion {
			m.Congestion = c
		}
	}
	m.HostEdgesUsed = len(cong)
	if m.GuestEdges > 0 {
		m.AvgDilation = float64(sum) / float64(m.GuestEdges)
	}
	return m
}

// DilationOnly measures dilation using host shortest-path distances
// between mapped endpoints (the §3.1 definition, which takes the
// shortest host path regardless of the Path oracle).
func (e *Embedding) DilationOnly() int {
	maxD := 0
	var buf []int
	for u := 0; u < e.Guest.Order(); u++ {
		var dist []int
		if e.Dist == nil {
			dist = graphalg.BFS(e.Host, e.VertexMap[u])
		}
		buf = e.Guest.AppendNeighbors(buf[:0], u)
		for _, v := range buf {
			var d int
			if e.Dist != nil {
				d = e.Dist(e.VertexMap[u], e.VertexMap[v])
			} else {
				d = dist[e.VertexMap[v]]
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}
