package embed

import (
	"testing"

	"starmesh/internal/graphalg"
)

// figure4 builds the paper's Figure 4 example: guest G is the 4-cycle
// 1-2-4-3-1 and host S is the 4-star K_{1,3} with center a and leaves
// b, c, d. Vertex numbering: G vertices 0..3 = paper's 1..4; host
// vertices 0..3 = a, b, c, d.
func figure4() *Embedding {
	g := graphalg.NewAdjacency(4)
	g.AddEdge(0, 1) // (1,2)
	g.AddEdge(1, 3) // (2,4)
	g.AddEdge(3, 2) // (4,3)
	g.AddEdge(2, 0) // (3,1)
	s := graphalg.NewAdjacency(4)
	s.AddEdge(0, 1) // a-b
	s.AddEdge(0, 2) // a-c
	s.AddEdge(0, 3) // a-d
	// Paper's vertex mapping: 1→a, 2→b, 3→c, 4→d.
	vm := []int{0, 1, 2, 3}
	// Paper's edge-to-path mapping: (1,2)→ab, (2,4)→bad, (4,3)→dac, (3,1)→ca.
	paths := map[[2]int][]int{
		{0, 1}: {0, 1},    // ab
		{1, 3}: {1, 0, 3}, // bad
		{3, 2}: {3, 0, 2}, // dac
		{2, 0}: {2, 0},    // ca
	}
	return &Embedding{
		Guest:     g,
		Host:      s,
		VertexMap: vm,
		Path: func(u, v int) []int {
			if p, ok := paths[[2]int{u, v}]; ok {
				return p
			}
			// reverse of the stored direction
			p := paths[[2]int{v, u}]
			r := make([]int, len(p))
			for i := range p {
				r[i] = p[len(p)-1-i]
			}
			return r
		},
	}
}

func TestFigure4Example(t *testing.T) {
	e := figure4()
	if err := e.Validate(); err != nil {
		t.Fatalf("figure 4 embedding invalid: %v", err)
	}
	m := e.Measure()
	// "For the above example, the expansion is 1 while the dilation
	// and congestion are both 2."
	if m.Expansion != 1 {
		t.Errorf("expansion = %v, want 1", m.Expansion)
	}
	if m.Dilation != 2 {
		t.Errorf("dilation = %d, want 2", m.Dilation)
	}
	if m.Congestion != 2 {
		t.Errorf("congestion = %d, want 2", m.Congestion)
	}
	if m.GuestEdges != 4 {
		t.Errorf("guest edges = %d", m.GuestEdges)
	}
	if m.AvgDilation != 1.5 { // paths ab(1), bad(2), dac(2), ca(1)
		t.Errorf("avg dilation = %v", m.AvgDilation)
	}
}

func TestDefaultBFSPaths(t *testing.T) {
	e := figure4()
	e.Path = nil // fall back to host shortest paths
	if err := e.Validate(); err != nil {
		t.Fatalf("BFS-path embedding invalid: %v", err)
	}
	m := e.Measure()
	if m.Dilation != 2 {
		t.Errorf("dilation = %d", m.Dilation)
	}
	if e.DilationOnly() != 2 {
		t.Errorf("DilationOnly = %d", e.DilationOnly())
	}
}

func TestDistOracle(t *testing.T) {
	e := figure4()
	e.Dist = func(hu, hv int) int { return graphalg.Distance(e.Host, hu, hv) }
	if e.DilationOnly() != 2 {
		t.Errorf("DilationOnly with oracle = %d", e.DilationOnly())
	}
}

func TestValidateRejectsNonInjective(t *testing.T) {
	e := figure4()
	e.VertexMap = []int{0, 1, 2, 2}
	if err := e.Validate(); err == nil {
		t.Fatalf("non-injective map accepted")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	e := figure4()
	e.VertexMap = []int{0, 1, 2, 9}
	if err := e.Validate(); err == nil {
		t.Fatalf("out-of-range map accepted")
	}
	e.VertexMap = []int{0, 1, 2}
	if err := e.Validate(); err == nil {
		t.Fatalf("short map accepted")
	}
}

func TestValidateRejectsBadPath(t *testing.T) {
	e := figure4()
	orig := e.Path
	// Wrong endpoints.
	e.Path = func(u, v int) []int { return []int{0, 1} }
	if err := e.Validate(); err == nil {
		t.Fatalf("bad-endpoint path accepted")
	}
	// Non-edge step.
	e.Path = func(u, v int) []int {
		p := orig(u, v)
		if len(p) == 2 && p[0] == 0 && p[1] == 1 {
			return []int{0, 3, 1} // 3-1 is not a host edge (b and d are leaves)
		}
		return p
	}
	if err := e.Validate(); err == nil {
		t.Fatalf("non-edge path accepted")
	}
	// Non-simple path.
	e.Path = func(u, v int) []int {
		p := orig(u, v)
		if len(p) == 2 {
			return []int{p[0], p[1], p[0], p[1]}
		}
		return p
	}
	if err := e.Validate(); err == nil {
		t.Fatalf("non-simple path accepted")
	}
	// Too-short path.
	e.Path = func(u, v int) []int { return []int{0} }
	if err := e.Validate(); err == nil {
		t.Fatalf("length-0 path accepted")
	}
}

func TestIdentityEmbedding(t *testing.T) {
	// Embedding a graph into itself with the identity map: dilation
	// 1, congestion 1, expansion 1.
	g := graphalg.NewAdjacency(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	vm := make([]int, 5)
	for i := range vm {
		vm[i] = i
	}
	e := &Embedding{Guest: g, Host: g, VertexMap: vm}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	m := e.Measure()
	if m.Dilation != 1 || m.Congestion != 1 || m.Expansion != 1 {
		t.Fatalf("identity embedding metrics: %+v", m)
	}
	if m.HostEdgesUsed != 4 {
		t.Fatalf("host edges used = %d", m.HostEdgesUsed)
	}
}
