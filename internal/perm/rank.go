package perm

import "fmt"

// MaxRankN is the largest n for which Factorial and Rank fit in an
// int64 without overflow (20! < 2^63 < 21!).
const MaxRankN = 20

// Factorial returns n! as int64. It panics for n > MaxRankN.
func Factorial(n int) int64 {
	if n < 0 || n > MaxRankN {
		panic(fmt.Sprintf("perm: factorial out of range: %d", n))
	}
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// Rank returns the lexicographic rank of p in [0, n!) using the
// Lehmer code (factorial number system). Rank(Identity(n)) == 0 and
// the reverse permutation has rank n!-1. O(n²); n is tiny (≤ 20).
func (p Perm) Rank() int64 {
	n := len(p)
	rank := int64(0)
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank = rank*int64(n-i) + int64(smaller)
	}
	return rank
}

// Unrank is the inverse of Rank: it returns the permutation of n
// symbols with the given lexicographic rank.
func Unrank(n int, rank int64) Perm {
	if rank < 0 || rank >= Factorial(n) {
		panic(fmt.Sprintf("perm: rank %d out of range for n=%d", rank, n))
	}
	// Decode the Lehmer digits.
	digits := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		base := int64(n - i)
		digits[i] = int(rank % base)
		rank /= base
	}
	// digits[i] = number of unused symbols smaller than p[i].
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	p := make(Perm, n)
	for i := 0; i < n; i++ {
		d := digits[i]
		p[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return p
}

// All calls fn for every permutation of n symbols in lexicographic
// order, reusing a single buffer; fn must not retain its argument.
// It stops early if fn returns false.
func All(n int, fn func(Perm) bool) {
	p := Identity(n)
	for {
		if !fn(p) {
			return
		}
		// next lexicographic permutation (classic algorithm)
		i := n - 2
		for i >= 0 && p[i] >= p[i+1] {
			i--
		}
		if i < 0 {
			return
		}
		j := n - 1
		for p[j] <= p[i] {
			j--
		}
		p[i], p[j] = p[j], p[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			p[l], p[r] = p[r], p[l]
		}
	}
}
