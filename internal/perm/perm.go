// Package perm implements permutations of {0..n-1} together with the
// operations the star-graph machinery needs: composition, inversion,
// cycle structure, transpositions of symbols and of positions, and a
// bijective ranking (Lehmer code / factorial number system) used to
// give every node of the star graph S_n a dense integer identifier.
//
// Conventions. A Perm p maps positions to symbols: p[i] is the symbol
// stored at position i. Throughout the repository the "front" of a
// star-graph node is position n-1, matching the paper's notation
// (a_{n-1} a_{n-2} ... a_1 a_0), and permutations are displayed
// front-first, e.g. "(0 3 1 2)" for p[3]=0, p[2]=3, p[1]=1, p[0]=2.
package perm

import (
	"fmt"
	"math/rand"
	"strings"
)

// Perm is a permutation of {0..n-1}; p[i] is the symbol at position i.
type Perm []int

// Identity returns the identity permutation of n symbols.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// New copies the given symbols into a fresh Perm and validates it.
func New(symbols []int) (Perm, error) {
	p := append(Perm(nil), symbols...)
	if !p.Valid() {
		return nil, fmt.Errorf("perm: %v is not a permutation of 0..%d", symbols, len(symbols)-1)
	}
	return p, nil
}

// MustNew is New, panicking on invalid input. Intended for literals in
// tests and examples.
func MustNew(symbols []int) Perm {
	p, err := New(symbols)
	if err != nil {
		panic(err)
	}
	return p
}

// Valid reports whether p is a permutation of {0..len(p)-1}.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, s := range p {
		if s < 0 || s >= len(p) || seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// N returns the number of symbols.
func (p Perm) N() int { return len(p) }

// Clone returns an independent copy of p.
func (p Perm) Clone() Perm { return append(Perm(nil), p...) }

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether p is the identity.
func (p Perm) IsIdentity() bool {
	for i, s := range p {
		if s != i {
			return false
		}
	}
	return true
}

// Inverse returns q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, s := range p {
		q[s] = i
	}
	return q
}

// Compose returns the permutation r = p∘q defined by r[i] = p[q[i]].
// Reading permutations as functions position→symbol, r applies q
// first and then p.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: compose length mismatch")
	}
	r := make(Perm, len(p))
	for i := range q {
		r[i] = p[q[i]]
	}
	return r
}

// SwapPositions returns a copy of p with the symbols at positions i
// and j exchanged.
func (p Perm) SwapPositions(i, j int) Perm {
	q := p.Clone()
	q[i], q[j] = q[j], q[i]
	return q
}

// SwapSymbols returns a copy of p with the symbols a and b exchanged
// wherever they occur; this is the paper's π(a,b) operation
// (Definition 1). It equals t∘p where t is the transposition (a b).
func (p Perm) SwapSymbols(a, b int) Perm {
	q := p.Clone()
	for i, s := range q {
		switch s {
		case a:
			q[i] = b
		case b:
			q[i] = a
		}
	}
	return q
}

// PositionOf returns the position holding symbol s, or -1.
func (p Perm) PositionOf(s int) int {
	for i, v := range p {
		if v == s {
			return i
		}
	}
	return -1
}

// Parity returns 0 for even permutations and 1 for odd ones.
func (p Perm) Parity() int {
	seen := make([]bool, len(p))
	parity := 0
	for i := range p {
		if seen[i] {
			continue
		}
		length := 0
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			length++
		}
		parity ^= (length - 1) & 1
	}
	return parity
}

// Cycles returns the non-trivial cycles (length ≥ 2) of p, each cycle
// listed starting from its smallest element.
func (p Perm) Cycles() [][]int {
	seen := make([]bool, len(p))
	var out [][]int
	for i := range p {
		if seen[i] || p[i] == i {
			seen[i] = true
			continue
		}
		var cyc []int
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			cyc = append(cyc, j)
		}
		out = append(out, cyc)
	}
	return out
}

// NumNonFixed returns the number of positions i with p[i] != i.
func (p Perm) NumNonFixed() int {
	m := 0
	for i, s := range p {
		if s != i {
			m++
		}
	}
	return m
}

// String renders p front-first in the paper's style: "(0 3 1 2)" for
// p[3]=0 p[2]=3 p[1]=1 p[0]=2.
func (p Perm) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i := len(p) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%d", p[i])
		if i > 0 {
			b.WriteByte(' ')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Random returns a uniformly random permutation of n symbols drawn
// from rng.
func Random(n int, rng *rand.Rand) Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
