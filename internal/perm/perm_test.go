package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if !p.IsIdentity() || !p.Valid() || p.N() != 5 {
		t.Fatalf("Identity(5) = %v", p)
	}
	if p.NumNonFixed() != 0 {
		t.Fatalf("identity has non-fixed points")
	}
	if len(p.Cycles()) != 0 {
		t.Fatalf("identity has cycles: %v", p.Cycles())
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		in []int
		ok bool
	}{
		{[]int{0}, true},
		{[]int{1, 0, 2}, true},
		{[]int{0, 0}, false},
		{[]int{0, 2}, false},
		{[]int{-1, 0}, false},
		{nil, true}, // empty permutation is valid
	}
	for _, c := range cases {
		_, err := New(c.in)
		if (err == nil) != c.ok {
			t.Errorf("New(%v): err=%v, want ok=%v", c.in, err, c.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew of invalid input did not panic")
		}
	}()
	MustNew([]int{0, 0})
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 10; n++ {
		for trial := 0; trial < 50; trial++ {
			p := Random(n, rng)
			q := p.Inverse()
			if !p.Compose(q).IsIdentity() || !q.Compose(p).IsIdentity() {
				t.Fatalf("inverse failed for %v", p)
			}
		}
	}
}

func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a, b, c := Random(6, rng), Random(6, rng), Random(6, rng)
		if !a.Compose(b).Compose(c).Equal(a.Compose(b.Compose(c))) {
			t.Fatalf("compose not associative: %v %v %v", a, b, c)
		}
	}
}

func TestComposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Random(7, rng)
	id := Identity(7)
	if !p.Compose(id).Equal(p) || !id.Compose(p).Equal(p) {
		t.Fatalf("identity not neutral")
	}
}

func TestComposeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("compose with mismatched lengths did not panic")
		}
	}()
	Identity(3).Compose(Identity(4))
}

func TestSwapSymbolsMatchesPaperExample(t *testing.T) {
	// Definition 1 example: π = (3 1 4 2 0), π(2,3) = (2 1 4 3 0).
	// Display is front-first, so π[4]=3, π[3]=1, π[2]=4, π[1]=2, π[0]=0.
	pi := MustNew([]int{0, 2, 4, 1, 3})
	got := pi.SwapSymbols(2, 3)
	want := MustNew([]int{0, 3, 4, 1, 2}) // (2 1 4 3 0)
	if !got.Equal(want) {
		t.Fatalf("SwapSymbols(2,3) = %v, want %v", got, want)
	}
	if got.String() != "(2 1 4 3 0)" {
		t.Fatalf("String() = %q", got.String())
	}
}

func TestSwapPositionsVsSwapSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		p := Random(8, rng)
		a, b := rng.Intn(8), rng.Intn(8)
		if a == b {
			continue
		}
		// Swapping the symbols a and b equals swapping the positions
		// where a and b live.
		got := p.SwapSymbols(a, b)
		want := p.SwapPositions(p.PositionOf(a), p.PositionOf(b))
		if !got.Equal(want) {
			t.Fatalf("swap mismatch: %v", p)
		}
	}
}

func TestSwapInvolution(t *testing.T) {
	f := func(seed int64, ai, bi uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Random(9, rng)
		a, b := int(ai%9), int(bi%9)
		if a == b {
			return true
		}
		return p.SwapSymbols(a, b).SwapSymbols(a, b).Equal(p) &&
			p.SwapPositions(a, b).SwapPositions(a, b).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParity(t *testing.T) {
	if Identity(5).Parity() != 0 {
		t.Fatalf("identity parity != 0")
	}
	if Identity(5).SwapPositions(0, 3).Parity() != 1 {
		t.Fatalf("transposition parity != 1")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p := Random(7, rng)
		a, b := rng.Intn(7), rng.Intn(7)
		if a == b {
			continue
		}
		if p.SwapPositions(a, b).Parity() == p.Parity() {
			t.Fatalf("transposition did not flip parity")
		}
	}
}

func TestCycles(t *testing.T) {
	p := MustNew([]int{1, 0, 3, 4, 2, 5})
	cyc := p.Cycles()
	if len(cyc) != 2 {
		t.Fatalf("cycles = %v", cyc)
	}
	if len(cyc[0]) != 2 || len(cyc[1]) != 3 {
		t.Fatalf("cycle lengths = %v", cyc)
	}
	if p.NumNonFixed() != 5 {
		t.Fatalf("NumNonFixed = %d", p.NumNonFixed())
	}
}

func TestPositionOf(t *testing.T) {
	p := MustNew([]int{2, 0, 1})
	for s := 0; s < 3; s++ {
		if p[p.PositionOf(s)] != s {
			t.Fatalf("PositionOf broken for %d", s)
		}
	}
	if p.PositionOf(99) != -1 {
		t.Fatalf("PositionOf(99) != -1")
	}
}

func TestString(t *testing.T) {
	// p[3]=3 p[2]=2 p[1]=1 p[0]=0 displays as "(3 2 1 0)".
	if got := Identity(4).String(); got != "(3 2 1 0)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 7; n++ {
		seen := make(map[int64]bool)
		All(n, func(p Perm) bool {
			r := p.Rank()
			if r < 0 || r >= Factorial(n) {
				t.Fatalf("rank %d out of range", r)
			}
			if seen[r] {
				t.Fatalf("duplicate rank %d", r)
			}
			seen[r] = true
			if !Unrank(n, r).Equal(p) {
				t.Fatalf("roundtrip failed for %v", p)
			}
			return true
		})
		if int64(len(seen)) != Factorial(n) {
			t.Fatalf("n=%d: saw %d ranks", n, len(seen))
		}
	}
}

func TestRankLexOrder(t *testing.T) {
	// All() iterates lexicographically, so ranks must be 0,1,2,...
	want := int64(0)
	All(5, func(p Perm) bool {
		if p.Rank() != want {
			t.Fatalf("rank of %v = %d, want %d", p, p.Rank(), want)
		}
		want++
		return true
	})
}

func TestRankUnrankQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		p := Random(n, rng)
		return Unrank(n, p.Rank()).Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800}
	for n, w := range want {
		if Factorial(n) != w {
			t.Fatalf("Factorial(%d) = %d, want %d", n, Factorial(n), w)
		}
	}
	if Factorial(20) != 2432902008176640000 {
		t.Fatalf("Factorial(20) wrong")
	}
}

func TestFactorialPanics(t *testing.T) {
	for _, n := range []int{-1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Factorial(%d) did not panic", n)
				}
			}()
			Factorial(n)
		}()
	}
}

func TestUnrankPanics(t *testing.T) {
	for _, r := range []int64{-1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Unrank(3,%d) did not panic", r)
				}
			}()
			Unrank(3, r)
		}()
	}
}

func TestAllEarlyStop(t *testing.T) {
	count := 0
	All(5, func(Perm) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestAllCount(t *testing.T) {
	for n := 1; n <= 7; n++ {
		count := int64(0)
		All(n, func(p Perm) bool {
			count++
			return true
		})
		if count != Factorial(n) {
			t.Fatalf("All(%d) visited %d", n, count)
		}
	}
}

func TestRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		if !Random(10, rng).Valid() {
			t.Fatalf("Random produced invalid permutation")
		}
	}
}

func BenchmarkRank(b *testing.B) {
	p := Unrank(10, 1234567)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Rank()
	}
}

func BenchmarkUnrank(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Unrank(10, 1234567)
	}
}

func BenchmarkCompose(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, q := Random(10, rng), Random(10, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Compose(q)
	}
}
