// Package meshsim runs SIMD programs on a mesh-connected machine:
// it adapts mesh.Mesh to simd.Topology and provides the mesh's
// primitive data-movement operation, the unit route ([NASS81], §1 of
// the paper): all PEs move data one step along a chosen dimension in
// a chosen direction. Mesh algorithms (sorting, stencils) are built
// from this primitive and their costs are counted in unit routes,
// which Theorem 6 then transfers to the star graph at a factor ≤ 3.
package meshsim

import (
	"fmt"
	"strings"

	"starmesh/internal/mesh"
	"starmesh/internal/simd"
)

// Topo adapts a mesh to simd.Topology. Port 2j is +1 along dimension
// j; port 2j+1 is -1 along dimension j.
type Topo struct {
	M *mesh.Mesh
}

// Size implements simd.Topology.
func (t Topo) Size() int { return t.M.Order() }

// Ports implements simd.Topology.
func (t Topo) Ports() int { return 2 * t.M.Dims() }

// Neighbor implements simd.Topology.
func (t Topo) Neighbor(pe, port int) int {
	dim := port / 2
	dir := 1 - 2*(port&1)
	return t.M.Step(pe, dim, dir)
}

// PlanKey implements simd.PlanKeyer: meshes of the same shape share
// compiled route plans.
func (t Topo) PlanKey() string {
	var b strings.Builder
	b.WriteString("mesh:")
	for j := 0; j < t.M.Dims(); j++ {
		if j > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", t.M.Size(j))
	}
	return b.String()
}

// Port returns the port index for a step along dim in direction dir.
func Port(dim, dir int) int {
	if dir > 0 {
		return 2 * dim
	}
	return 2*dim + 1
}

// Machine is a mesh-connected SIMD computer.
type Machine struct {
	*simd.Machine
	M *mesh.Mesh
	// ceTmp is the compare-exchange scratch register, declared at
	// construction and cached here so the per-phase hot path never
	// pays the EnsureReg/Reg map lookups. Reset zeroes registers in
	// place (it never reallocates), so this alias stays valid on
	// reused machines.
	ceTmp []int64
	// urPlans/cePlans memoize compiled route plans per schedule (the
	// plans themselves live in simd.SharedPlans, shared across
	// machines of the same shape).
	urPlans map[urKey]*simd.Plan
	cePlans map[ceKey]*simd.Plan
}

// urKey identifies a unit-route schedule; ceKey a compare-exchange
// route pair.
type urKey struct {
	src, dst string
	dim, dir int
}
type ceKey struct {
	key        string
	dim, phase int
}

// ceTmpReg is the compare-exchange scratch register name.
const ceTmpReg = "__ce_tmp"

// New builds a machine over the given mesh. Options select the
// simd execution engine (default sequential).
func New(m *mesh.Mesh, opts ...simd.Option) *Machine {
	mm := &Machine{
		Machine: simd.New(Topo{M: m}, opts...),
		M:       m,
		urPlans: make(map[urKey]*simd.Plan),
		cePlans: make(map[ceKey]*simd.Plan),
	}
	mm.AddReg(ceTmpReg)
	mm.ceTmp = mm.Reg(ceTmpReg)
	return mm
}

// UnitRoute moves register src one step along dimension dim in
// direction dir on every PE that has such a neighbor, storing into
// dst — the SIMD-A mesh unit route, "B(i^(2)) ← B(i)" in the paper's
// notation. Costs exactly 1 unit route. With plans enabled (the
// default) the route is compiled once per (src, dst, dim, dir) and
// replayed as a dense array walk.
func (m *Machine) UnitRoute(src, dst string, dim, dir int) {
	if !m.PlansEnabled() {
		m.RouteA(src, dst, Port(dim, dir), nil)
		return
	}
	simd.RunMemoized(m.Machine, simd.SharedPlans, m.urPlans,
		urKey{src: src, dst: dst, dim: dim, dir: dir},
		func() string { return fmt.Sprintf("ur:%s:%s:%d:%d", src, dst, dim, dir) },
		func() { m.RouteA(src, dst, Port(dim, dir), nil) })
}

// CompareExchange performs one odd-even transposition half-step
// along dimension dim: every PE whose coordinate c satisfies
// c%2 == phase pairs with its c+1 neighbor; the pair sorts its two
// keys so that the PE for which ascending(pe) holds keeps the
// smaller one. ascending == nil means ascending everywhere. Costs 2
// unit routes (one transmission in each direction); the route pair
// depends only on (dim, phase), so with plans enabled it is compiled
// once and replayed — ascending only shapes the local combine.
func (m *Machine) CompareExchange(key string, dim, phase int, ascending func(pe int) bool) {
	const tmp = ceTmpReg
	isLow := func(pe int) bool {
		return m.M.Coord(pe, dim)%2 == phase && m.M.Step(pe, dim, +1) != -1
	}
	isHigh := func(pe int) bool {
		c := m.M.Coord(pe, dim)
		return c > 0 && (c-1)%2 == phase
	}
	// Lows send keys up; highs send keys down. After both routes each
	// paired PE holds its partner's key in tmp.
	routes := func() {
		m.RouteA(key, tmp, Port(dim, +1), isLow)
		m.RouteA(key, tmp, Port(dim, -1), isHigh)
	}
	if !m.PlansEnabled() {
		routes()
	} else {
		simd.RunMemoized(m.Machine, simd.SharedPlans, m.cePlans,
			ceKey{key: key, dim: dim, phase: phase},
			func() string { return fmt.Sprintf("ce:%s:%d:%d", key, dim, phase) },
			routes)
	}
	k := m.Reg(key)
	t := m.ceTmp
	m.Apply(func(pe int) {
		var keepMin bool
		switch {
		case isLow(pe):
			keepMin = ascending == nil || ascending(pe)
		case isHigh(pe):
			keepMin = !(ascending == nil || ascending(pe))
		default:
			return
		}
		if keepMin {
			if t[pe] < k[pe] {
				k[pe] = t[pe]
			}
		} else {
			if t[pe] > k[pe] {
				k[pe] = t[pe]
			}
		}
	})
}
