// Package meshsim runs SIMD programs on a mesh-connected machine:
// it adapts mesh.Mesh to simd.Topology and provides the mesh's
// primitive data-movement operation, the unit route ([NASS81], §1 of
// the paper): all PEs move data one step along a chosen dimension in
// a chosen direction. Mesh algorithms (sorting, stencils) are built
// from this primitive and their costs are counted in unit routes,
// which Theorem 6 then transfers to the star graph at a factor ≤ 3.
package meshsim

import (
	"starmesh/internal/mesh"
	"starmesh/internal/simd"
)

// Topo adapts a mesh to simd.Topology. Port 2j is +1 along dimension
// j; port 2j+1 is -1 along dimension j.
type Topo struct {
	M *mesh.Mesh
}

// Size implements simd.Topology.
func (t Topo) Size() int { return t.M.Order() }

// Ports implements simd.Topology.
func (t Topo) Ports() int { return 2 * t.M.Dims() }

// Neighbor implements simd.Topology.
func (t Topo) Neighbor(pe, port int) int {
	dim := port / 2
	dir := 1 - 2*(port&1)
	return t.M.Step(pe, dim, dir)
}

// Port returns the port index for a step along dim in direction dir.
func Port(dim, dir int) int {
	if dir > 0 {
		return 2 * dim
	}
	return 2*dim + 1
}

// Machine is a mesh-connected SIMD computer.
type Machine struct {
	*simd.Machine
	M *mesh.Mesh
}

// New builds a machine over the given mesh. Options select the
// simd execution engine (default sequential).
func New(m *mesh.Mesh, opts ...simd.Option) *Machine {
	return &Machine{Machine: simd.New(Topo{M: m}, opts...), M: m}
}

// UnitRoute moves register src one step along dimension dim in
// direction dir on every PE that has such a neighbor, storing into
// dst — the SIMD-A mesh unit route, "B(i^(2)) ← B(i)" in the paper's
// notation. Costs exactly 1 unit route.
func (m *Machine) UnitRoute(src, dst string, dim, dir int) {
	m.RouteA(src, dst, Port(dim, dir), nil)
}

// CompareExchange performs one odd-even transposition half-step
// along dimension dim: every PE whose coordinate c satisfies
// c%2 == phase pairs with its c+1 neighbor; the pair sorts its two
// keys so that the PE for which ascending(pe) holds keeps the
// smaller one. ascending == nil means ascending everywhere. Costs 2
// unit routes (one transmission in each direction).
func (m *Machine) CompareExchange(key string, dim, phase int, ascending func(pe int) bool) {
	const tmp = "__ce_tmp"
	m.EnsureReg(tmp)
	isLow := func(pe int) bool {
		return m.M.Coord(pe, dim)%2 == phase && m.M.Step(pe, dim, +1) != -1
	}
	isHigh := func(pe int) bool {
		c := m.M.Coord(pe, dim)
		return c > 0 && (c-1)%2 == phase
	}
	// Lows send keys up; highs send keys down. After both routes each
	// paired PE holds its partner's key in tmp.
	m.RouteA(key, tmp, Port(dim, +1), isLow)
	m.RouteA(key, tmp, Port(dim, -1), isHigh)
	k := m.Reg(key)
	t := m.Reg(tmp)
	m.Apply(func(pe int) {
		var keepMin bool
		switch {
		case isLow(pe):
			keepMin = ascending == nil || ascending(pe)
		case isHigh(pe):
			keepMin = !(ascending == nil || ascending(pe))
		default:
			return
		}
		if keepMin {
			if t[pe] < k[pe] {
				k[pe] = t[pe]
			}
		} else {
			if t[pe] > k[pe] {
				k[pe] = t[pe]
			}
		}
	})
}
