package meshsim

import (
	"reflect"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/simd"
)

// meshProgram runs unit routes along every dimension plus a full
// odd-even transposition pass built from CompareExchange.
func meshProgram(m *Machine) (simd.Stats, [][]int64) {
	m.AddReg("K")
	m.AddReg("B")
	m.Set("K", func(pe int) int64 { return int64((pe*2654435761 + 11) % 1000) })
	m.Set("B", func(pe int) int64 { return 0 })
	for dim := 0; dim < m.M.Dims(); dim++ {
		m.UnitRoute("K", "B", dim, +1)
		m.UnitRoute("B", "K", dim, -1)
	}
	for phase := 0; phase < m.M.Size(0); phase++ {
		m.CompareExchange("K", 0, phase%2, nil)
		m.CompareExchange("K", m.M.Dims()-1, phase%2, func(pe int) bool { return pe%3 != 0 })
	}
	return m.Stats(), [][]int64{
		append([]int64(nil), m.Reg("K")...),
		append([]int64(nil), m.Reg("B")...),
	}
}

func TestParallelMeshMachineMatchesSequential(t *testing.T) {
	for _, sizes := range [][]int{{8}, {4, 5}, {2, 3, 4}} {
		seqStats, seqRegs := meshProgram(New(mesh.New(sizes...)))
		for _, workers := range []int{0, 2, 3} {
			m := New(mesh.New(sizes...), simd.WithExecutor(simd.Parallel(workers)))
			parStats, parRegs := meshProgram(m)
			if seqStats != parStats {
				t.Errorf("sizes=%v workers=%d: stats %+v != sequential %+v", sizes, workers, parStats, seqStats)
			}
			if !reflect.DeepEqual(seqRegs, parRegs) {
				t.Errorf("sizes=%v workers=%d: register contents diverged", sizes, workers)
			}
		}
	}
}
