package meshsim

import (
	"fmt"
	"testing"

	"starmesh/internal/mesh"
)

// TestRegisterBankContract pins the simd bank guarantees this
// package relies on — the sort scratch (ceTmp) is hoisted once at
// construction and must survive Reset and later register growth.
func TestRegisterBankContract(t *testing.T) {
	m := New(mesh.D(4))
	m.EnsureReg("A")
	m.EnsureReg("B")
	a := m.Reg("A")
	m.Set("A", func(pe int) int64 { return int64(pe ^ 5) })
	m.UnitRoute("A", "B", 1, +1)

	m.Reset()
	if &m.Reg("A")[0] != &a[0] {
		t.Fatal("Reset moved a register slice")
	}
	for pe, x := range a {
		if x != 0 {
			t.Fatalf("Reset left A[%d] = %d via the hoisted slice", pe, x)
		}
	}
	for i := 0; i < 20; i++ {
		m.EnsureReg(fmt.Sprintf("scratch%d", i))
	}
	if &m.Reg("A")[0] != &a[0] {
		t.Fatal("EnsureReg growth moved a register slice")
	}

	m.Set("A", func(pe int) int64 { return int64(pe ^ 5) })
	m.UnitRoute("A", "B", 1, +1)

	fresh := New(mesh.D(4))
	fresh.EnsureReg("A")
	fresh.EnsureReg("B")
	fresh.Set("A", func(pe int) int64 { return int64(pe ^ 5) })
	fresh.UnitRoute("A", "B", 1, +1)
	fb, mb := fresh.Reg("B"), m.Reg("B")
	for pe := range fb {
		if mb[pe] != fb[pe] {
			t.Fatalf("post-growth route diverged at PE %d: got %d want %d", pe, mb[pe], fb[pe])
		}
	}
}
