package meshsim

import (
	"testing"

	"starmesh/internal/mesh"
)

func TestTopoPorts(t *testing.T) {
	m := mesh.New(2, 3)
	topo := Topo{M: m}
	if topo.Size() != 6 || topo.Ports() != 4 {
		t.Fatalf("topo shape wrong")
	}
	// Port 0 = +dim0, port 1 = -dim0, port 2 = +dim1, port 3 = -dim1.
	if topo.Neighbor(0, 0) != m.Step(0, 0, +1) {
		t.Fatalf("port 0 wrong")
	}
	if topo.Neighbor(0, 1) != -1 {
		t.Fatalf("port 1 at boundary should be -1")
	}
	if Port(1, +1) != 2 || Port(1, -1) != 3 {
		t.Fatalf("Port() wrong")
	}
}

func TestUnitRouteMovesAlongDimension(t *testing.T) {
	m := New(mesh.New(3, 4))
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	m.Set("B", func(pe int) int64 { return -1 })
	m.UnitRoute("A", "B", 1, +1)
	for pe := 0; pe < m.M.Order(); pe++ {
		from := m.M.Step(pe, 1, -1)
		want := int64(-1)
		if from != -1 {
			want = int64(from)
		}
		if m.Reg("B")[pe] != want {
			t.Fatalf("B[%d] = %d, want %d", pe, m.Reg("B")[pe], want)
		}
	}
	if m.Stats().UnitRoutes != 1 {
		t.Fatalf("unit routes = %d", m.Stats().UnitRoutes)
	}
}

func TestUnitRouteRoundTrip(t *testing.T) {
	// +dim then -dim restores interior values.
	m := New(mesh.New(5))
	m.AddReg("A")
	m.AddReg("B")
	m.AddReg("C")
	m.Set("A", func(pe int) int64 { return int64(pe * pe) })
	m.UnitRoute("A", "B", 0, +1)
	m.UnitRoute("B", "C", 0, -1)
	for pe := 1; pe < 4; pe++ {
		if m.Reg("C")[pe] != int64(pe*pe) {
			t.Fatalf("roundtrip failed at %d", pe)
		}
	}
}

func TestCompareExchangeSorts1D(t *testing.T) {
	// Full odd-even transposition sort on a 1-D mesh of 8.
	m := New(mesh.New(8))
	m.AddReg("K")
	vals := []int64{5, 2, 7, 1, 8, 3, 6, 4}
	m.Set("K", func(pe int) int64 { return vals[pe] })
	for step := 0; step < 8; step++ {
		m.CompareExchange("K", 0, step%2, nil)
	}
	k := m.Reg("K")
	for pe := 0; pe+1 < 8; pe++ {
		if k[pe] > k[pe+1] {
			t.Fatalf("not sorted: %v", k)
		}
	}
	// Each compare-exchange phase costs 2 unit routes.
	if m.Stats().UnitRoutes != 16 {
		t.Fatalf("unit routes = %d, want 16", m.Stats().UnitRoutes)
	}
}

func TestCompareExchangeDescending(t *testing.T) {
	m := New(mesh.New(6))
	m.AddReg("K")
	vals := []int64{3, 1, 4, 1, 5, 9}
	m.Set("K", func(pe int) int64 { return vals[pe] })
	desc := func(pe int) bool { return false }
	for step := 0; step < 6; step++ {
		m.CompareExchange("K", 0, step%2, desc)
	}
	k := m.Reg("K")
	for pe := 0; pe+1 < 6; pe++ {
		if k[pe] < k[pe+1] {
			t.Fatalf("not descending: %v", k)
		}
	}
}

func TestCompareExchangePreservesMultiset(t *testing.T) {
	m := New(mesh.New(4, 3))
	m.AddReg("K")
	m.Set("K", func(pe int) int64 { return int64((pe * 7) % 12) })
	before := histogram(m.Reg("K"))
	for step := 0; step < 4; step++ {
		m.CompareExchange("K", 0, step%2, nil)
		m.CompareExchange("K", 1, step%2, nil)
	}
	after := histogram(m.Reg("K"))
	for v, c := range before {
		if after[v] != c {
			t.Fatalf("multiset changed: %v -> %v", before, after)
		}
	}
}

func histogram(xs []int64) map[int64]int {
	h := make(map[int64]int)
	for _, x := range xs {
		h[x]++
	}
	return h
}

func TestCompareExchangeColumnOnly(t *testing.T) {
	// Sorting along dim 1 of a 2×3 mesh leaves dim-0 pairs alone.
	m := New(mesh.New(2, 3))
	m.AddReg("K")
	// Column c0=0: values 9,5,1 (rows 0..2); column c0=1: 8,6,2.
	init := map[[2]int]int64{
		{0, 0}: 9, {0, 1}: 5, {0, 2}: 1,
		{1, 0}: 8, {1, 1}: 6, {1, 2}: 2,
	}
	m.Set("K", func(pe int) int64 {
		return init[[2]int{m.M.Coord(pe, 0), m.M.Coord(pe, 1)}]
	})
	for step := 0; step < 3; step++ {
		m.CompareExchange("K", 1, step%2, nil)
	}
	get := func(c0, c1 int) int64 { return m.Reg("K")[m.M.ID([]int{c0, c1})] }
	if get(0, 0) != 1 || get(0, 1) != 5 || get(0, 2) != 9 {
		t.Fatalf("column 0 not sorted")
	}
	if get(1, 0) != 2 || get(1, 1) != 6 || get(1, 2) != 8 {
		t.Fatalf("column 1 not sorted")
	}
}
