// Package starsim runs SIMD programs on a star-graph machine and
// implements the paper's headline capability (Theorem 6): one unit
// route of the SIMD-A mesh D_n is performed in at most 3 unit routes
// of the SIMD-B star graph S_n, without any two messages ever
// blocking each other (Lemma 5).
//
// The schedule follows the Lemma-2 path structure (g_k, g_t, g_k):
// for a mesh route along dimension k < n-1,
//
//	step 1: every mesh-interior node π transmits through port k
//	        (a single common generator — even SIMD-A legal);
//	step 2: every intermediate X1 forwards through the partner port
//	        t computed from its own address (X1·g_k = π, so X1 can
//	        recompute the original sender locally);
//	step 3: every intermediate Y1 forwards through port k; Y1
//	        recognizes itself because Y1·g_k is a route destination.
//
// For k = n-1 the exchanged symbol sits at the front and a single
// SIMD-B route (each node through its partner port) completes the
// move. All role tests are local functions of the PE's own
// permutation, as the SIMD model requires: the control unit only
// broadcasts (k, dir).
package starsim

import (
	"fmt"

	"starmesh/internal/core"
	"starmesh/internal/perm"
	"starmesh/internal/simd"
	"starmesh/internal/star"
)

// Topo adapts S_n to simd.Topology with a precomputed neighbor
// table; port i applies generator g_i (swap front with position i).
type Topo struct {
	n     int
	table [][]int32
}

// NewTopo builds the topology of S_n, materializing all n!·(n-1)
// neighbor links.
func NewTopo(n int) *Topo {
	order := int(perm.Factorial(n))
	t := &Topo{n: n, table: make([][]int32, order)}
	flat := make([]int32, order*(n-1))
	front := n - 1
	perm.All(n, func(p perm.Perm) bool {
		id := int(p.Rank())
		row := flat[id*(n-1) : (id+1)*(n-1)]
		for i := 0; i < front; i++ {
			p[front], p[i] = p[i], p[front]
			row[i] = int32(p.Rank())
			p[front], p[i] = p[i], p[front]
		}
		t.table[id] = row
		return true
	})
	return t
}

// N returns the star degree parameter.
func (t *Topo) N() int { return t.n }

// Size implements simd.Topology.
func (t *Topo) Size() int { return len(t.table) }

// Ports implements simd.Topology.
func (t *Topo) Ports() int { return t.n - 1 }

// Neighbor implements simd.Topology.
func (t *Topo) Neighbor(pe, port int) int { return int(t.table[pe][port]) }

// PlanKey implements simd.PlanKeyer: every S_n has the same shape,
// so compiled route plans are shared across machines of equal n.
func (t *Topo) PlanKey() string { return fmt.Sprintf("star:%d", t.n) }

// Machine is a star-connected SIMD computer hosting the embedded
// mesh D_n.
type Machine struct {
	*simd.Machine
	N int
	// perms caches the permutation of every PE id.
	perms []perm.Perm
	topo  *Topo
	// tables caches, per (k, dir), the mesh-neighbor id and partner
	// port of every PE — the Lemma-2/3 role data every unit route
	// needs. Built lazily through the engine (so construction is
	// sharded under a parallel executor) and keyed by topology only,
	// so it never invalidates. SetRouteCache(false) bypasses it.
	tables  []*routeTable
	noCache bool
	// murPlans/muraPlans/bcastPlans memoize compiled route plans per
	// schedule, skipping the shared-cache key formatting and lookup
	// on the hot path. The plans themselves live in simd.SharedPlans
	// and are shared across machines of the same n.
	murPlans   map[murKey]*simd.Plan
	muraPlans  map[murKey]*simd.Plan
	bcastPlans map[bcastKey]*simd.Plan
	// meshIDs lazily caches, per PE, the mesh node the embedding
	// assigns to it (core.UnmapID) — a pure function of n, so it
	// survives Reset and is amortized across the jobs of a reused
	// machine.
	meshIDs []int
}

// murKey identifies a mesh-unit-route schedule (unmasked). generic
// records which closure path (Lemma-3 tables vs the original role
// tests) the plan was compiled from, so toggling SetRouteCache never
// replays a plan recorded through the other path.
type murKey struct {
	k, dir   int
	src, dst string
	generic  bool
}

// bcastKey identifies a broadcast schedule.
type bcastKey struct {
	src, dst string
	source   int
}

// routeTable holds the closed-form Lemma-3 data for one (k, dir).
type routeTable struct {
	nbr   []int32 // star id of the (k,dir) mesh neighbor, -1 at the boundary
	pport []int8  // Partner(perm(pe), k, dir), -1 at the boundary
}

// New builds the machine for S_n. Options select the simd execution
// engine (default sequential); all of the machine's port and mask
// functions are pure, so the parallel engine is always safe here.
func New(n int, opts ...simd.Option) *Machine {
	topo := NewTopo(n)
	m := &Machine{Machine: simd.New(topo, opts...), N: n, topo: topo}
	m.perms = make([]perm.Perm, topo.Size())
	perm.All(n, func(p perm.Perm) bool {
		m.perms[p.Rank()] = p.Clone()
		return true
	})
	m.tables = make([]*routeTable, 2*(n-1))
	m.murPlans = make(map[murKey]*simd.Plan)
	m.muraPlans = make(map[murKey]*simd.Plan)
	m.bcastPlans = make(map[bcastKey]*simd.Plan)
	// Declare the schedule scratch registers once, here, so the
	// per-route helpers never pay the EnsureReg map lookups on the
	// hot path.
	m.AddReg(regT1)
	m.AddReg(regT2)
	m.AddReg(regAT1)
	m.AddReg(regAT2)
	return m
}

// Scratch registers of the unit-route schedules, declared at
// machine construction.
const (
	regT1  = "__mur_t1"
	regT2  = "__mur_t2"
	regAT1 = "__mura_t1"
	regAT2 = "__mura_t2"
)

// SetRouteCache enables or disables the per-(k,dir) route tables.
// The cache is on by default; disabling it re-routes every unit
// route through the original closure-per-PE role tests (the
// reference implementation the cache is tested against, and the
// baseline the engine benchmarks measure). With plans enabled (the
// default) the toggle selects which closure path *records* — plans
// compiled from either path are kept apart and replay identically —
// so closure-resolution measurements must also disable plans
// (simd.WithPlans(false)).
func (m *Machine) SetRouteCache(enabled bool) { m.noCache = !enabled }

// routeTableFor returns (building on first use) the Lemma-3 table
// for dimension k and direction dir.
func (m *Machine) routeTableFor(k, dir int) *routeTable {
	idx := 2 * (k - 1)
	if dir < 0 {
		idx++
	}
	if t := m.tables[idx]; t != nil {
		return t
	}
	t := &routeTable{
		nbr:   make([]int32, len(m.perms)),
		pport: make([]int8, len(m.perms)),
	}
	// Built through the engine: each PE's entry is independent, so a
	// parallel executor shards the O(n!·n²) construction sweep.
	m.Apply(func(pe int) {
		p := m.perms[pe]
		tp := core.Partner(p, k, dir)
		t.pport[pe] = int8(tp)
		if tp == -1 {
			t.nbr[pe] = -1
			return
		}
		t.nbr[pe] = int32(p.SwapPositions(k, tp).Rank())
	})
	m.tables[idx] = t
	return t
}

// MeshIDs returns, indexed by star PE id, the mesh node of D_n that
// the paper's embedding places on that PE (core.UnmapID) — the
// vertex map SnakeSortStar and the workload scenarios need. The
// O(n!·n²) conversion sweep runs once per machine, through the
// engine (so a parallel executor shards it), and the cached slice is
// kept across Reset: reused machines never pay it again. Do not
// mutate the returned slice.
func (m *Machine) MeshIDs() []int {
	if m.meshIDs == nil {
		ids := make([]int, m.Size())
		m.Apply(func(pe int) { ids[pe] = core.UnmapID(m.N, pe) })
		m.meshIDs = ids
	}
	return m.meshIDs
}

// Perm returns the permutation of PE pe (do not mutate).
func (m *Machine) Perm(pe int) perm.Perm { return m.perms[pe] }

// MeshUnitRoute simulates one SIMD-A unit route of the embedded mesh
// D_n along dimension k (1 ≤ k ≤ n-1) in direction dir (±1): for
// every mesh node with a (k,dir)-neighbor, dst at the neighbor's
// star PE receives src of the node's star PE. Other PEs' dst is
// unchanged. Returns the number of star unit routes used (1 or 3)
// and the receive conflicts observed (always 0, per Lemma 5).
func (m *Machine) MeshUnitRoute(src, dst string, k, dir int) (routes, conflicts int) {
	return m.MaskedMeshUnitRoute(src, dst, k, dir, nil)
}

// MaskedMeshUnitRoute is MeshUnitRoute restricted to the mesh nodes
// selected by mask (an instruction mask in the paper's sense,
// evaluated at the sending PE; nil selects every node). The schedule
// moves the selected subset of messages, which stays conflict-free
// because it is a subset of the full Lemma-5 schedule.
func (m *Machine) MaskedMeshUnitRoute(src, dst string, k, dir int, mask func(pe int) bool) (routes, conflicts int) {
	n := m.N
	if k < 1 || k > n-1 {
		panic(fmt.Sprintf("starsim: dimension %d out of range", k))
	}
	if dir != 1 && dir != -1 {
		panic("starsim: dir must be ±1")
	}
	if mask == nil && m.PlansEnabled() {
		return m.plannedMeshUnitRoute(src, dst, k, dir)
	}
	if !m.noCache {
		return m.maskedMeshUnitRouteCached(src, dst, k, dir, mask)
	}
	return m.maskedMeshUnitRouteGeneric(src, dst, k, dir, mask)
}

// plannedMeshUnitRoute runs the unmasked Theorem-6 schedule through
// a compiled plan: recorded once per (k, dir, src, dst) — via the
// closure path selected by SetRouteCache — then replayed as a dense
// array walk, shared across machines of the same n.
func (m *Machine) plannedMeshUnitRoute(src, dst string, k, dir int) (routes, conflicts int) {
	return m.plannedRoute(m.murPlans, "mur", src, dst, k, dir,
		func() { m.maskedMeshUnitRouteCached(src, dst, k, dir, nil) },
		func() { m.maskedMeshUnitRouteGeneric(src, dst, k, dir, nil) })
}

// plannedRoute is the shared memoized-plan shape of the unmasked
// unit-route schedules (SIMD-B and Model-A): warm the Lemma-3 tables
// outside the recording — their lazy build runs through Apply, which
// would mark the plan impure — then record or replay the closure
// path SetRouteCache selects, keeping the two paths' plans apart.
func (m *Machine) plannedRoute(memo map[murKey]*simd.Plan, prefix, src, dst string, k, dir int, cached, generic func()) (routes, conflicts int) {
	if !m.noCache {
		m.routeTableFor(k, dir)
		if k != m.N-1 {
			m.routeTableFor(k, -dir)
		}
	}
	mk := murKey{k: k, dir: dir, src: src, dst: dst, generic: m.noCache}
	return simd.RunMemoized(m.Machine, simd.SharedPlans, memo, mk,
		func() string {
			return fmt.Sprintf("%s:%d:%d:%s:%s:generic=%t", prefix, k, dir, src, dst, m.noCache)
		},
		func() {
			if m.noCache {
				generic()
			} else {
				cached()
			}
		})
}

// maskedMeshUnitRouteCached drives the Lemma-5 schedule from the
// precomputed route tables: every role test collapses to table
// lookups, avoiding the per-PE permutation clone and O(n²) rank of
// the generic path. The step-3 interior test is implicit — a PE
// whose (k,-dir) mesh neighbor exists is automatically a legal
// sender along (k,+dir), because mesh neighbor moves invert.
func (m *Machine) maskedMeshUnitRouteCached(src, dst string, k, dir int, mask func(pe int) bool) (routes, conflicts int) {
	fwd := m.routeTableFor(k, dir)
	front := m.N - 1
	sends := func(pe int) bool {
		return fwd.nbr[pe] != -1 && (mask == nil || mask(pe))
	}
	if k == front {
		c := m.RouteB(src, dst, func(pe int) int {
			if !sends(pe) {
				return -1
			}
			return int(fwd.pport[pe])
		})
		return 1, c
	}
	rev := m.routeTableFor(k, -dir)
	const t1 = regT1
	const t2 = regT2
	// Step 1: senders π through port k.
	c1 := m.RouteB(src, t1, func(pe int) int {
		if !sends(pe) {
			return -1
		}
		return k
	})
	// Step 2: X1 forwards through the partner port of π = X1·g_k,
	// looked up via X1's g_k neighbor id.
	c2 := m.RouteB(t1, t2, func(pe int) int {
		ni := int(m.topo.table[pe][k])
		if !sends(ni) {
			return -1
		}
		return int(fwd.pport[ni])
	})
	// Step 3: Y1 forwards through port k when Y1·g_k is a route
	// destination, i.e. its (k,-dir) mesh neighbor is a selected
	// sender.
	c3 := m.RouteB(t2, dst, func(pe int) int {
		ni := int(m.topo.table[pe][k])
		sender := rev.nbr[ni]
		if sender == -1 || (mask != nil && !mask(int(sender))) {
			return -1
		}
		return k
	})
	return 3, c1 + c2 + c3
}

// maskedMeshUnitRouteGeneric is the original closure-per-PE
// implementation, kept as the semantic reference for the cached
// path (and as the measured baseline of the engine benchmarks).
func (m *Machine) maskedMeshUnitRouteGeneric(src, dst string, k, dir int, mask func(pe int) bool) (routes, conflicts int) {
	n := m.N
	sends := func(pe int) bool {
		return core.Partner(m.perms[pe], k, dir) != -1 && (mask == nil || mask(pe))
	}
	front := n - 1
	if k == front {
		// Single route: every selected interior node transmits
		// through its partner port.
		c := m.RouteB(src, dst, func(pe int) int {
			if !sends(pe) {
				return -1
			}
			return core.Partner(m.perms[pe], k, dir)
		})
		return 1, c
	}
	const t1 = regT1
	const t2 = regT2
	// Step 1: senders π (selected, mesh-interior along (k,dir))
	// through port k.
	c1 := m.RouteB(src, t1, func(pe int) int {
		if !sends(pe) {
			return -1
		}
		return k
	})
	// Step 2: X1 forwards through the partner port of π = X1·g_k.
	c2 := m.RouteB(t1, t2, func(pe int) int {
		pi := m.perms[pe].SwapPositions(front, k)
		if !sends(int(pi.Rank())) {
			return -1
		}
		return core.Partner(pi, k, dir)
	})
	// Step 3: Y1 forwards through port k; Y1·g_k must be a
	// destination, i.e. its (k,-dir) mesh neighbor must be a
	// selected sender.
	c3 := m.RouteB(t2, dst, func(pe int) int {
		rho := m.perms[pe].SwapPositions(front, k)
		sender, ok := core.Neighbor(rho, k, -dir)
		if !ok || !sends(int(sender.Rank())) {
			return -1
		}
		return k
	})
	return 3, c1 + c2 + c3
}

// MeshUnitRouteModelA performs the same data movement on a SIMD-A
// star machine: steps 1 and 3 are already single-generator routes,
// and step 2 is serialized into one route per generator index
// 0..k-1 actually used. Returns the number of SIMD-A unit routes.
func (m *Machine) MeshUnitRouteModelA(src, dst string, k, dir int) int {
	return m.MaskedMeshUnitRouteModelA(src, dst, k, dir, nil)
}

// MaskedMeshUnitRouteModelA is MeshUnitRouteModelA restricted to the
// mesh nodes selected by mask (nil = all).
func (m *Machine) MaskedMeshUnitRouteModelA(src, dst string, k, dir int, mask func(pe int) bool) int {
	if mask == nil && m.PlansEnabled() {
		routes, _ := m.plannedRoute(m.muraPlans, "mura", src, dst, k, dir,
			func() { m.maskedModelACached(src, dst, k, dir, nil) },
			func() { m.maskedModelAGeneric(src, dst, k, dir, nil) })
		return routes
	}
	if !m.noCache {
		return m.maskedModelACached(src, dst, k, dir, mask)
	}
	return m.maskedModelAGeneric(src, dst, k, dir, mask)
}

// maskedModelACached is the table-driven SIMD-A schedule; the
// generator-usage scans that dominated the generic path become
// linear passes over the cached partner ports.
func (m *Machine) maskedModelACached(src, dst string, k, dir int, mask func(pe int) bool) int {
	n := m.N
	front := n - 1
	fwd := m.routeTableFor(k, dir)
	portAt := func(id int) int {
		if fwd.nbr[id] == -1 || (mask != nil && !mask(id)) {
			return -1
		}
		return int(fwd.pport[id])
	}
	if k == front {
		routes := 0
		for g := 0; g < n-1; g++ {
			used := false
			for pe := range m.perms {
				if portAt(pe) == g {
					used = true
					break
				}
			}
			if !used {
				continue
			}
			m.RouteA(src, dst, g, func(pe int) bool {
				return portAt(pe) == g
			})
			routes++
		}
		return routes
	}
	rev := m.routeTableFor(k, -dir)
	const t1 = regAT1
	const t2 = regAT2
	routes := 0
	m.RouteA(src, t1, k, func(pe int) bool {
		return portAt(pe) != -1
	})
	routes++
	for g := 0; g < k; g++ {
		used := false
		for pe := range m.perms {
			if portAt(int(m.topo.table[pe][k])) == g {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		m.RouteA(t1, t2, g, func(pe int) bool {
			return portAt(int(m.topo.table[pe][k])) == g
		})
		routes++
	}
	m.RouteA(t2, dst, k, func(pe int) bool {
		sender := rev.nbr[int(m.topo.table[pe][k])]
		if sender == -1 {
			return false
		}
		return mask == nil || mask(int(sender))
	})
	routes++
	return routes
}

// maskedModelAGeneric is the original implementation, kept as the
// reference for the cached path.
func (m *Machine) maskedModelAGeneric(src, dst string, k, dir int, mask func(pe int) bool) int {
	n := m.N
	front := n - 1
	partnerPort := func(pi perm.Perm) int {
		t := core.Partner(pi, k, dir)
		if t == -1 {
			return -1
		}
		if mask != nil && !mask(int(pi.Rank())) {
			return -1
		}
		return t
	}
	if k == front {
		routes := 0
		for g := 0; g < n-1; g++ {
			used := false
			for pe := range m.perms {
				if partnerPort(m.perms[pe]) == g {
					used = true
					break
				}
			}
			if !used {
				continue
			}
			m.RouteA(src, dst, g, func(pe int) bool {
				return partnerPort(m.perms[pe]) == g
			})
			routes++
		}
		return routes
	}
	const t1 = regAT1
	const t2 = regAT2
	routes := 0
	m.RouteA(src, t1, k, func(pe int) bool {
		return partnerPort(m.perms[pe]) != -1
	})
	routes++
	for g := 0; g < k; g++ {
		used := false
		for pe := range m.perms {
			pi := m.perms[pe].SwapPositions(front, k)
			if partnerPort(pi) == g {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		m.RouteA(t1, t2, g, func(pe int) bool {
			pi := m.perms[pe].SwapPositions(front, k)
			return partnerPort(pi) == g
		})
		routes++
	}
	m.RouteA(t2, dst, k, func(pe int) bool {
		rho := m.perms[pe].SwapPositions(front, k)
		sender, ok := core.Neighbor(rho, k, -dir)
		if !ok {
			return false
		}
		return mask == nil || mask(int(sender.Rank()))
	})
	routes++
	return routes
}

// Broadcast floods register src from the PE holding the identity
// permutation to all PEs using greedy SIMD-B rounds, writing into
// dst on every PE (including the source). Returns the number of unit
// routes. This is the measured counterpart of the §2 broadcast bound
// 3(n·log n − 3/2); see star.GreedyBroadcast for the round counter
// on the bare graph.
func (m *Machine) Broadcast(src, dst string, source int) int {
	sr := m.Reg(src)
	dr := m.Reg(dst)
	// The source's self-copy is a direct register write the plan
	// recorder cannot capture; a plan recorded over a Broadcast must
	// therefore be rejected (the internal planned path below keeps
	// the write outside its recorded region instead).
	m.MarkImpure()
	dr[source] = sr[source]
	if m.PlansEnabled() {
		// The greedy schedule construction (informedAt bookkeeping,
		// neighbor scans) is purely topological, so it runs only at
		// record time; replay walks the compiled rounds directly.
		routes, _ := simd.RunMemoized(m.Machine, simd.SharedPlans, m.bcastPlans,
			bcastKey{src: src, dst: dst, source: source},
			func() string { return fmt.Sprintf("bcast:%s:%s:%d", src, dst, source) },
			func() { m.broadcastRoutes(dst, source) })
		return routes
	}
	return m.broadcastRoutes(dst, source)
}

// broadcastRoutes issues the greedy flood's unit routes (one RouteB
// per round), assuming dst at the source already holds the payload.
func (m *Machine) broadcastRoutes(dst string, source int) int {
	informedAt := make([]int, m.Size())
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[source] = 0
	count := 1
	round := 0
	topo := m.Topology()
	for count < m.Size() {
		round++
		ports := make([]int, m.Size())
		for i := range ports {
			ports[i] = -1
		}
		for pe := 0; pe < m.Size(); pe++ {
			if informedAt[pe] < 0 || informedAt[pe] >= round {
				continue
			}
			for p := 0; p < topo.Ports(); p++ {
				to := topo.Neighbor(pe, p)
				if to >= 0 && informedAt[to] == -1 {
					informedAt[to] = round
					ports[pe] = p
					count++
					break
				}
			}
		}
		m.RouteB(dst, dst, func(pe int) int { return ports[pe] })
	}
	return round
}

// EmbeddedStar exposes the underlying star graph for measurements.
func (m *Machine) EmbeddedStar() *star.Graph { return star.New(m.N) }
