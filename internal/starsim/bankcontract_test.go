package starsim

import (
	"fmt"
	"testing"
)

// TestRegisterBankContract pins the simd bank guarantees this
// package's hot paths rely on: hoisted register slices stay valid
// across Reset (zeroed in place) and across later EnsureReg growth,
// and plans bound before the growth still replay bit-identically.
func TestRegisterBankContract(t *testing.T) {
	m := New(4)
	m.EnsureReg("V")
	m.EnsureReg("W")
	v := m.Reg("V")
	m.Set("V", func(pe int) int64 { return int64(3*pe + 1) })
	m.MeshUnitRoute("V", "W", 1, +1) // records + binds the plan

	m.Reset()
	if &m.Reg("V")[0] != &v[0] {
		t.Fatal("Reset moved a register slice")
	}
	for pe, x := range v {
		if x != 0 {
			t.Fatalf("Reset left V[%d] = %d via the hoisted slice", pe, x)
		}
	}

	// Growth after the plan was bound: new chunks, old slots in place.
	for i := 0; i < 20; i++ {
		m.EnsureReg(fmt.Sprintf("scratch%d", i))
	}
	if &m.Reg("V")[0] != &v[0] {
		t.Fatal("EnsureReg growth moved a register slice")
	}

	m.Set("V", func(pe int) int64 { return int64(3*pe + 1) })
	m.MeshUnitRoute("V", "W", 1, +1) // replays through pre-growth handles

	fresh := New(4)
	fresh.EnsureReg("V")
	fresh.EnsureReg("W")
	fresh.Set("V", func(pe int) int64 { return int64(3*pe + 1) })
	fresh.MeshUnitRoute("V", "W", 1, +1)
	fw, mw := fresh.Reg("W"), m.Reg("W")
	for pe := range fw {
		if mw[pe] != fw[pe] {
			t.Fatalf("post-growth replay diverged at PE %d: got %d want %d", pe, mw[pe], fw[pe])
		}
	}
}
