package starsim

import (
	"testing"

	"starmesh/internal/core"
	"starmesh/internal/mesh"
	"starmesh/internal/perm"
)

func TestTopoMatchesStarEdges(t *testing.T) {
	topo := NewTopo(4)
	if topo.Size() != 24 || topo.Ports() != 3 || topo.N() != 4 {
		t.Fatalf("topo shape wrong")
	}
	perm.All(4, func(p perm.Perm) bool {
		id := int(p.Rank())
		for i := 0; i < 3; i++ {
			want := int(p.SwapPositions(3, i).Rank())
			if topo.Neighbor(id, i) != want {
				t.Fatalf("neighbor table wrong at %v port %d", p, i)
			}
		}
		return true
	})
}

func TestPermCache(t *testing.T) {
	m := New(4)
	for id := 0; id < 24; id++ {
		if int(m.Perm(id).Rank()) != id {
			t.Fatalf("perm cache wrong at %d", id)
		}
	}
}

// runUnitRoute initializes src[pe]=pe, runs the embedded-mesh unit
// route, and checks the data landed exactly at the mapped mesh
// neighbors. Returns (routes, conflicts).
func runUnitRoute(t *testing.T, n, k, dir int) (int, int) {
	t.Helper()
	m := New(n)
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	m.Set("B", func(pe int) int64 { return -1 })
	routes, conflicts := m.MeshUnitRoute("A", "B", k, dir)

	dn := mesh.D(n)
	for u := 0; u < dn.Order(); u++ {
		v := dn.Step(u, k-1, dir)
		if v == -1 {
			continue
		}
		su := core.MapID(n, u)
		sv := core.MapID(n, v)
		if m.Reg("B")[sv] != int64(su) {
			t.Fatalf("n=%d k=%d dir=%d: mesh %d->%d: B[%d]=%d, want %d",
				n, k, dir, u, v, sv, m.Reg("B")[sv], su)
		}
	}
	// PEs that are not destinations keep their old value.
	isDst := make(map[int]bool)
	for u := 0; u < dn.Order(); u++ {
		if v := dn.Step(u, k-1, dir); v != -1 {
			isDst[core.MapID(n, v)] = true
		}
	}
	for pe := 0; pe < m.Size(); pe++ {
		if !isDst[pe] && m.Reg("B")[pe] != -1 {
			t.Fatalf("non-destination PE %d modified", pe)
		}
	}
	return routes, conflicts
}

func TestTheorem6AllDimensionsExhaustive(t *testing.T) {
	// For n = 3..6, every dimension and direction: the unit route
	// completes correctly in ≤ 3 star routes with zero conflicts
	// (Lemma 5 / Theorem 6).
	for n := 3; n <= 6; n++ {
		for k := 1; k <= n-1; k++ {
			for _, dir := range []int{+1, -1} {
				routes, conflicts := runUnitRoute(t, n, k, dir)
				wantRoutes := 3
				if k == n-1 {
					wantRoutes = 1
				}
				if routes != wantRoutes {
					t.Fatalf("n=%d k=%d dir=%d: %d routes, want %d", n, k, dir, routes, wantRoutes)
				}
				if conflicts != 0 {
					t.Fatalf("n=%d k=%d dir=%d: %d conflicts (Lemma 5 violated!)", n, k, dir, conflicts)
				}
			}
		}
	}
}

func TestTheorem6N7Spot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, k := range []int{1, 3, 6} {
		routes, conflicts := runUnitRoute(t, 7, k, +1)
		if conflicts != 0 {
			t.Fatalf("n=7 k=%d: conflicts = %d", k, conflicts)
		}
		if k == 6 && routes != 1 || k != 6 && routes != 3 {
			t.Fatalf("n=7 k=%d: routes = %d", k, routes)
		}
	}
}

func TestModelASimulation(t *testing.T) {
	// The same data movement on a SIMD-A star machine: correct and
	// bounded by 2+k routes (k < n-1) or n-1 routes (k = n-1).
	for n := 3; n <= 5; n++ {
		for k := 1; k <= n-1; k++ {
			for _, dir := range []int{+1, -1} {
				m := New(n)
				m.AddReg("A")
				m.AddReg("B")
				m.Set("A", func(pe int) int64 { return int64(pe) })
				m.Set("B", func(pe int) int64 { return -1 })
				routes := m.MeshUnitRouteModelA("A", "B", k, dir)
				bound := 2 + k
				if k == n-1 {
					bound = n - 1
				}
				if routes > bound {
					t.Fatalf("n=%d k=%d: model-A routes %d > bound %d", n, k, routes, bound)
				}
				if m.Stats().ReceiveConflicts != 0 {
					t.Fatalf("model-A conflicts")
				}
				dn := mesh.D(n)
				for u := 0; u < dn.Order(); u++ {
					v := dn.Step(u, k-1, dir)
					if v == -1 {
						continue
					}
					if m.Reg("B")[core.MapID(n, v)] != int64(core.MapID(n, u)) {
						t.Fatalf("n=%d k=%d dir=%d: model-A data wrong", n, k, dir)
					}
				}
			}
		}
	}
}

func TestMeshUnitRoutePanics(t *testing.T) {
	m := New(3)
	m.AddReg("A")
	m.AddReg("B")
	for _, bad := range []struct{ k, dir int }{{0, 1}, {3, 1}, {1, 0}, {1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d dir=%d did not panic", bad.k, bad.dir)
				}
			}()
			m.MeshUnitRoute("A", "B", bad.k, bad.dir)
		}()
	}
}

func TestRoundTripUnitRoutes(t *testing.T) {
	// +k then -k restores interior values (composition sanity).
	n := 5
	m := New(n)
	m.AddReg("A")
	m.AddReg("B")
	m.AddReg("C")
	m.Set("A", func(pe int) int64 { return int64(3*pe + 1) })
	k := 2
	m.MeshUnitRoute("A", "B", k, +1)
	m.MeshUnitRoute("B", "C", k, -1)
	dn := mesh.D(n)
	for u := 0; u < dn.Order(); u++ {
		if dn.Step(u, k-1, +1) == -1 {
			continue
		}
		pe := core.MapID(n, u)
		if m.Reg("C")[pe] != int64(3*pe+1) {
			t.Fatalf("roundtrip failed at mesh %d", u)
		}
	}
}

func TestBroadcastInformsAll(t *testing.T) {
	n := 5
	m := New(n)
	m.AddReg("V")
	m.AddReg("W")
	src := 17
	m.Set("V", func(pe int) int64 {
		if pe == src {
			return 424242
		}
		return 0
	})
	rounds := m.Broadcast("V", "W", src)
	for pe := 0; pe < m.Size(); pe++ {
		if m.Reg("W")[pe] != 424242 {
			t.Fatalf("PE %d not informed", pe)
		}
	}
	if rounds < 7 { // ceil(log2 120)
		t.Fatalf("rounds %d below information bound", rounds)
	}
	if m.Stats().ReceiveConflicts != 0 {
		t.Fatalf("broadcast conflicts")
	}
}

func BenchmarkMeshUnitRoute(b *testing.B) {
	m := New(7)
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MeshUnitRoute("A", "B", 3, +1)
	}
}

func BenchmarkNewMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New(7)
	}
}

func TestMeshIDsMatchesUnmapAndSurvivesReset(t *testing.T) {
	m := New(4)
	ids := m.MeshIDs()
	for pe := range ids {
		if want := core.UnmapID(4, pe); ids[pe] != want {
			t.Fatalf("MeshIDs[%d] = %d, want %d", pe, ids[pe], want)
		}
	}
	m.Reset()
	again := m.MeshIDs()
	if &again[0] != &ids[0] {
		t.Fatal("MeshIDs rebuilt after Reset; the cache should survive")
	}
}
