package starsim

import (
	"reflect"
	"testing"

	"starmesh/internal/simd"
)

// TestPlannedRoutesMatchClosureResolution is the star machine's plan
// determinism contract: the plan-replayed schedules (unit routes in
// both models, broadcasts) must leave bit-identical Stats, PortUses
// and registers compared to the closure-resolved paths.
func TestPlannedRoutesMatchClosureResolution(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		planned := New(n)
		if !planned.PlansEnabled() {
			t.Fatalf("plans not enabled by default")
		}
		pStats, pUses, pRegs := starProgram(planned)

		closure := New(n, simd.WithPlans(false))
		cStats, cUses, cRegs := starProgram(closure)

		if pStats != cStats {
			t.Errorf("n=%d: planned stats %+v != closure %+v", n, pStats, cStats)
		}
		if !reflect.DeepEqual(pUses, cUses) {
			t.Errorf("n=%d: port uses diverged", n)
		}
		if !reflect.DeepEqual(pRegs, cRegs) {
			t.Errorf("n=%d: register contents diverged", n)
		}

		// The generic (route-cache-off) closure path must also agree
		// when planned.
		genericPlanned := New(n)
		genericPlanned.SetRouteCache(false)
		gStats, gUses, gRegs := starProgram(genericPlanned)
		if gStats != cStats || !reflect.DeepEqual(gUses, cUses) || !reflect.DeepEqual(gRegs, cRegs) {
			t.Errorf("n=%d: planned generic path diverged", n)
		}
	}
}

// TestPlanReusedAcrossMachines runs the same schedule on two fresh
// machines of the same n: the second replays plans the first
// recorded (via simd.SharedPlans) and must behave bit-identically.
func TestPlanReusedAcrossMachines(t *testing.T) {
	const n = 4
	first := New(n)
	fStats, fUses, fRegs := starProgram(first)
	// The second machine hits the shared cache for every unmasked
	// route and the broadcast; a repeat of the identical program must
	// not diverge in any counter or register.
	second := New(n)
	sStats, sUses, sRegs := starProgram(second)
	if fStats != sStats {
		t.Fatalf("replaying machine stats %+v != recording machine %+v", sStats, fStats)
	}
	if !reflect.DeepEqual(fUses, sUses) || !reflect.DeepEqual(fRegs, sRegs) {
		t.Fatalf("replaying machine registers/port uses diverged")
	}
}

// TestPlannedRoutesUnderParallelPool runs the planned program on the
// pooled parallel executor and checks it against the sequential
// planned run, then closes the pool.
func TestPlannedRoutesUnderParallelPool(t *testing.T) {
	const n = 5
	seqStats, seqUses, seqRegs := starProgram(New(n))
	for _, exec := range []simd.Executor{simd.Parallel(3), simd.ParallelSpawn(3)} {
		m := New(n, simd.WithExecutor(exec))
		pStats, pUses, pRegs := starProgram(m)
		if seqStats != pStats || !reflect.DeepEqual(seqUses, pUses) || !reflect.DeepEqual(seqRegs, pRegs) {
			t.Errorf("%s: planned program diverged from sequential", exec.Name())
		}
		m.Close()
	}
}

// TestSetRouteCacheKeepsPlanPathsApart: toggling SetRouteCache with
// plans enabled must not replay a plan recorded through the other
// closure path — the memo keys carry the generic flag.
func TestSetRouteCacheKeepsPlanPathsApart(t *testing.T) {
	m := New(4)
	m.AddReg("V")
	m.AddReg("W")
	m.Set("V", func(pe int) int64 { return int64(pe) })
	m.MeshUnitRoute("V", "W", 1, +1) // records via the Lemma-3 tables
	if len(m.murPlans) != 1 {
		t.Fatalf("murPlans = %d entries, want 1", len(m.murPlans))
	}
	m.SetRouteCache(false)
	m.MeshUnitRoute("V", "W", 1, +1) // must record via the generic role tests
	if len(m.murPlans) != 2 {
		t.Fatalf("murPlans = %d entries after SetRouteCache(false), want 2 (generic path not re-recorded)", len(m.murPlans))
	}
	cachedKey := murKey{k: 1, dir: +1, src: "V", dst: "W", generic: false}
	genericKey := murKey{k: 1, dir: +1, src: "V", dst: "W", generic: true}
	if m.murPlans[cachedKey] == nil || m.murPlans[genericKey] == nil {
		t.Fatalf("memo keys missing the generic flag: %v", m.murPlans)
	}
	if m.murPlans[cachedKey] == m.murPlans[genericKey] {
		t.Fatalf("both route-cache paths share one plan pointer")
	}
}

// TestRecordOverBroadcastIsImpure: Broadcast's source self-copy is a
// direct register write the recorder cannot capture, so an explicit
// Record over a Broadcast must yield an impure (non-replayable)
// plan. (Broadcast's own planned path keeps the write outside the
// recorded region, which the broadcast scenarios cover.)
func TestRecordOverBroadcastIsImpure(t *testing.T) {
	m := New(4)
	m.AddReg("V")
	m.AddReg("W")
	m.Reg("V")[0] = 42
	p := m.Record(func() { m.Broadcast("V", "W", 0) })
	if !p.Impure() {
		t.Fatalf("plan over Broadcast not marked impure — replay would drop the source payload")
	}
	for pe, v := range m.Reg("W") {
		if v != 42 {
			t.Fatalf("recording run broke the broadcast itself: W[%d] = %d", pe, v)
		}
	}
}

// TestSetPlansToggle: disabling plans mid-run falls back to closure
// resolution without disturbing results.
func TestSetPlansToggle(t *testing.T) {
	const n = 4
	m := New(n)
	m.AddReg("V")
	m.AddReg("W")
	m.Set("V", func(pe int) int64 { return int64(pe) })
	m.MeshUnitRoute("V", "W", 1, +1) // planned
	m.SetPlans(false)
	m.MeshUnitRoute("V", "W", 1, +1) // closure
	m.SetPlans(true)
	m.MeshUnitRoute("V", "W", 1, +1) // replayed

	ref := New(n, simd.WithPlans(false))
	ref.AddReg("V")
	ref.AddReg("W")
	ref.Set("V", func(pe int) int64 { return int64(pe) })
	for i := 0; i < 3; i++ {
		ref.MeshUnitRoute("V", "W", 1, +1)
	}
	if m.Stats() != ref.Stats() {
		t.Fatalf("toggled stats %+v != reference %+v", m.Stats(), ref.Stats())
	}
	if !reflect.DeepEqual(m.Reg("W"), ref.Reg("W")) {
		t.Fatalf("toggled registers diverged")
	}
}
