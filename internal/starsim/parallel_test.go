package starsim

import (
	"reflect"
	"testing"

	"starmesh/internal/simd"
)

// starProgram exercises every data-movement primitive of the star
// machine: Theorem-6 unit routes in both models across all
// dimensions and directions, a masked route, and a broadcast.
func starProgram(m *Machine) (simd.Stats, []int64, [][]int64) {
	m.AddReg("V")
	m.AddReg("W")
	m.Set("V", func(pe int) int64 { return int64(7*pe + 3) })
	m.Set("W", func(pe int) int64 { return -1 })
	for k := 1; k <= m.N-1; k++ {
		for _, dir := range []int{+1, -1} {
			m.MeshUnitRoute("V", "W", k, dir)
			m.MeshUnitRouteModelA("W", "V", k, dir)
		}
	}
	m.MaskedMeshUnitRoute("V", "W", 1, +1, func(pe int) bool { return pe%2 == 0 })
	m.Broadcast("V", "W", 1)
	return m.Stats(), m.PortUses(), [][]int64{
		append([]int64(nil), m.Reg("V")...),
		append([]int64(nil), m.Reg("W")...),
	}
}

// TestRouteCacheMatchesGeneric pins the table-driven unit-route
// schedule to the original closure-per-PE reference implementation.
func TestRouteCacheMatchesGeneric(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		cached := New(n)
		cachedStats, cachedUses, cachedRegs := starProgram(cached)
		generic := New(n)
		generic.SetRouteCache(false)
		genStats, genUses, genRegs := starProgram(generic)
		if cachedStats != genStats {
			t.Errorf("n=%d: cached stats %+v != generic %+v", n, cachedStats, genStats)
		}
		if !reflect.DeepEqual(cachedUses, genUses) {
			t.Errorf("n=%d: port uses diverged", n)
		}
		if !reflect.DeepEqual(cachedRegs, genRegs) {
			t.Errorf("n=%d: register contents diverged", n)
		}
	}
}

func TestParallelStarMachineMatchesSequential(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		seqStats, seqUses, seqRegs := starProgram(New(n))
		for _, workers := range []int{0, 2, 5} {
			parStats, parUses, parRegs := starProgram(New(n, simd.WithExecutor(simd.Parallel(workers))))
			if seqStats != parStats {
				t.Errorf("n=%d workers=%d: stats %+v != sequential %+v", n, workers, parStats, seqStats)
			}
			if !reflect.DeepEqual(seqUses, parUses) {
				t.Errorf("n=%d workers=%d: port uses diverged", n, workers)
			}
			if !reflect.DeepEqual(seqRegs, parRegs) {
				t.Errorf("n=%d workers=%d: register contents diverged", n, workers)
			}
		}
	}
}
