package mesh

// Snake linearization (boustrophedon order). SnakeIndex assigns each
// node a position along a Hamiltonian path of the mesh in which
// consecutive positions are mesh-adjacent; scanning direction of each
// dimension alternates with the parity of the already-encoded higher
// dimensions. This is the standard trick that lets a mesh simulate a
// combined ("grouped") dimension with dilation 1, which the paper's
// appendix uses to turn the 2×3×…×n mesh into a d-dimensional mesh
// in O(1) time per step.

// SnakeIndex returns the snake position of the node with the given
// coordinates (dimension Dims()-1 most significant).
func (m *Mesh) SnakeIndex(coords []int) int {
	if len(coords) != len(m.sizes) {
		panic("mesh: coordinate arity mismatch")
	}
	idx := 0
	for j := len(m.sizes) - 1; j >= 0; j-- {
		e := coords[j]
		if idx&1 == 1 {
			e = m.sizes[j] - 1 - e
		}
		idx = idx*m.sizes[j] + e
	}
	return idx
}

// SnakeCoords inverts SnakeIndex, appending coordinates to buf.
func (m *Mesh) SnakeCoords(buf []int, index int) []int {
	if index < 0 || index >= m.order {
		panic("mesh: snake index out of range")
	}
	start := len(buf)
	buf = append(buf, make([]int, len(m.sizes))...)
	out := buf[start:]
	idx := 0
	rem := index
	// Recompute the per-dimension bases from most significant down.
	base := m.order
	for j := len(m.sizes) - 1; j >= 0; j-- {
		base /= m.sizes[j]
		e := rem / base
		rem %= base
		c := e
		if idx&1 == 1 {
			c = m.sizes[j] - 1 - e
		}
		out[j] = c
		idx = idx*m.sizes[j] + e
	}
	return buf
}

// SnakeIndexOfID returns the snake position of a node id.
func (m *Mesh) SnakeIndexOfID(id int) int {
	return m.SnakeIndex(m.Coords(nil, id))
}

// SnakeIDAt returns the node id at snake position index.
func (m *Mesh) SnakeIDAt(index int) int {
	return m.ID(m.SnakeCoords(nil, index))
}
