// Package mesh implements rectangular multi-dimensional meshes
// (the paper's D(l_m, …, l_1) arrays, §2 item 3): coordinates, dense
// node ids, neighbor enumeration, unit-route destinations, and snake
// (boustrophedon) linearizations used to combine dimensions with
// dilation 1 (appendix).
//
// Dimension j (0-based) has size Sizes[j] and is the paper's
// dimension j+1; dimension 0 varies fastest in the node id. The mesh
// D_n of the paper — size 2×3×…×n — is produced by D(n).
package mesh

import (
	"fmt"

	"starmesh/internal/perm"
)

// Mesh is an l_1 × l_2 × … × l_m rectangular mesh (no wraparound).
type Mesh struct {
	sizes   []int
	strides []int
	order   int
}

// New returns a mesh with the given dimension sizes (each ≥ 1).
func New(sizes ...int) *Mesh {
	if len(sizes) == 0 {
		panic("mesh: no dimensions")
	}
	m := &Mesh{sizes: append([]int(nil), sizes...)}
	m.strides = make([]int, len(sizes))
	m.order = 1
	for j, l := range sizes {
		if l < 1 {
			panic(fmt.Sprintf("mesh: dimension %d has size %d", j, l))
		}
		m.strides[j] = m.order
		m.order *= l
	}
	return m
}

// D returns the paper's mesh D_n: the (n-1)-dimensional mesh of size
// 2×3×4×…×n, whose node count equals |S_n| = n!.
func D(n int) *Mesh {
	if n < 2 {
		panic("mesh: D(n) needs n ≥ 2")
	}
	sizes := make([]int, n-1)
	for k := 1; k <= n-1; k++ {
		sizes[k-1] = k + 1 // dimension k of the paper has size k+1
	}
	return New(sizes...)
}

// Dims returns the number of dimensions.
func (m *Mesh) Dims() int { return len(m.sizes) }

// Size returns the length of dimension j.
func (m *Mesh) Size(j int) int { return m.sizes[j] }

// Sizes returns a copy of all dimension sizes.
func (m *Mesh) Sizes() []int { return append([]int(nil), m.sizes...) }

// Order returns the total number of nodes.
func (m *Mesh) Order() int { return m.order }

// ID returns the dense node id of the given coordinates
// (dimension 0 fastest).
func (m *Mesh) ID(coords []int) int {
	if len(coords) != len(m.sizes) {
		panic("mesh: coordinate arity mismatch")
	}
	id := 0
	for j, c := range coords {
		if c < 0 || c >= m.sizes[j] {
			panic(fmt.Sprintf("mesh: coordinate %d out of range in dim %d", c, j))
		}
		id += c * m.strides[j]
	}
	return id
}

// Coords decodes a node id into coordinates, appending to buf.
func (m *Mesh) Coords(buf []int, id int) []int {
	if id < 0 || id >= m.order {
		panic(fmt.Sprintf("mesh: id %d out of range", id))
	}
	for j := range m.sizes {
		buf = append(buf, id%m.sizes[j])
		id /= m.sizes[j]
	}
	return buf
}

// Coord returns coordinate j of the node id without allocating.
func (m *Mesh) Coord(id, j int) int {
	return (id / m.strides[j]) % m.sizes[j]
}

// Step returns the id of the node one step in direction dir (+1/-1)
// along dimension j from id, or -1 if that neighbor does not exist.
func (m *Mesh) Step(id, j, dir int) int {
	c := m.Coord(id, j)
	c2 := c + dir
	if c2 < 0 || c2 >= m.sizes[j] {
		return -1
	}
	return id + dir*m.strides[j]
}

// AppendNeighbors implements graphalg.Graph.
func (m *Mesh) AppendNeighbors(buf []int, v int) []int {
	for j := range m.sizes {
		if w := m.Step(v, j, +1); w != -1 {
			buf = append(buf, w)
		}
		if w := m.Step(v, j, -1); w != -1 {
			buf = append(buf, w)
		}
	}
	return buf
}

// MaxDegree returns the largest node degree: a node in the interior
// of every dimension has two neighbors per dimension of size ≥ 3,
// one per dimension of size 2 and zero per trivial dimension. For
// D_n this is 2n-3, the quantity in the paper's Lemma 1.
func (m *Mesh) MaxDegree() int {
	d := 0
	for _, l := range m.sizes {
		switch {
		case l >= 3:
			d += 2
		case l == 2:
			d++
		}
	}
	return d
}

// Distance returns the Manhattan distance between two nodes.
func (m *Mesh) Distance(a, b int) int {
	d := 0
	for j := range m.sizes {
		ca, cb := m.Coord(a, j), m.Coord(b, j)
		if ca > cb {
			d += ca - cb
		} else {
			d += cb - ca
		}
	}
	return d
}

// Diameter returns the mesh diameter Σ(l_j − 1).
func (m *Mesh) Diameter() int {
	d := 0
	for _, l := range m.sizes {
		d += l - 1
	}
	return d
}

// String renders the mesh shape, e.g. "2*3*4 mesh".
func (m *Mesh) String() string {
	s := ""
	for j, l := range m.sizes {
		if j > 0 {
			s += "*"
		}
		s += fmt.Sprint(l)
	}
	return s + " mesh"
}

// DPoint converts a mesh id of D(n) into the paper's mesh coordinates
// (d_{n-1}, …, d_1): out[k-1] = d_k with 0 ≤ d_k ≤ k.
func DPoint(n, id int) []int {
	return D(n).Coords(nil, id)
}

// DPointString renders D_n coordinates in the paper's tuple order,
// e.g. "(3,0,1)" for d_3=3, d_2=0, d_1=1.
func DPointString(pt []int) string {
	s := "("
	for k := len(pt) - 1; k >= 0; k-- {
		s += fmt.Sprint(pt[k])
		if k > 0 {
			s += ","
		}
	}
	return s + ")"
}

// CheckDnMatchesStarOrder verifies |D(n)| == n! (sanity helper used
// by tests and the experiments binary).
func CheckDnMatchesStarOrder(n int) bool {
	return int64(D(n).Order()) == perm.Factorial(n)
}
