package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starmesh/internal/graphalg"
)

func TestBasicShape(t *testing.T) {
	m := New(2, 3, 4)
	if m.Order() != 24 || m.Dims() != 3 {
		t.Fatalf("shape wrong: %v", m)
	}
	if m.Size(0) != 2 || m.Size(1) != 3 || m.Size(2) != 4 {
		t.Fatalf("sizes wrong")
	}
	if m.String() != "2*3*4 mesh" {
		t.Fatalf("String = %q", m.String())
	}
	if m.Diameter() != 1+2+3 {
		t.Fatalf("diameter = %d", m.Diameter())
	}
}

func TestIDCoordsRoundTrip(t *testing.T) {
	m := New(3, 4, 2, 5)
	for id := 0; id < m.Order(); id++ {
		c := m.Coords(nil, id)
		if m.ID(c) != id {
			t.Fatalf("roundtrip failed at %d: %v", id, c)
		}
		for j := 0; j < m.Dims(); j++ {
			if m.Coord(id, j) != c[j] {
				t.Fatalf("Coord mismatch at %d dim %d", id, j)
			}
		}
	}
}

func TestStepAndNeighbors(t *testing.T) {
	m := New(2, 3, 4)
	// Corner (0,0,0): neighbors along +each dim only.
	n0 := graphalg.Neighbors(m, 0)
	if len(n0) != 3 {
		t.Fatalf("corner degree = %d", len(n0))
	}
	// Interior of a 3x3x3 mesh has 6 neighbors.
	c := New(3, 3, 3)
	mid := c.ID([]int{1, 1, 1})
	if d := graphalg.Degree(c, mid); d != 6 {
		t.Fatalf("interior degree = %d", d)
	}
	// Step off the edge returns -1.
	if m.Step(0, 0, -1) != -1 {
		t.Fatalf("step below 0 should be -1")
	}
	if m.Step(m.Order()-1, 2, +1) != -1 {
		t.Fatalf("step past end should be -1")
	}
	// Step is inverse of itself.
	if m.Step(m.Step(0, 1, +1), 1, -1) != 0 {
		t.Fatalf("step not invertible")
	}
}

func TestStepChangesOnlyOneCoord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(2+rng.Intn(3), 2+rng.Intn(4), 2+rng.Intn(5))
		id := rng.Intn(m.Order())
		j := rng.Intn(3)
		dir := 1 - 2*rng.Intn(2)
		w := m.Step(id, j, dir)
		if w == -1 {
			return true
		}
		a, b := m.Coords(nil, id), m.Coords(nil, w)
		for k := range a {
			want := a[k]
			if k == j {
				want += dir
			}
			if b[k] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDnShape(t *testing.T) {
	for n := 2; n <= 8; n++ {
		m := D(n)
		if !CheckDnMatchesStarOrder(n) {
			t.Fatalf("|D(%d)| != %d!", n, n)
		}
		if m.Dims() != n-1 {
			t.Fatalf("D(%d) dims = %d", n, m.Dims())
		}
		for k := 1; k <= n-1; k++ {
			if m.Size(k-1) != k+1 {
				t.Fatalf("D(%d) dim %d size = %d", n, k, m.Size(k-1))
			}
		}
	}
}

func TestMaxDegreeLemma1Quantity(t *testing.T) {
	// Lemma 1: node (1,1,…,1) of D_n has degree 2n-3 (dimension 1
	// has size 2 so contributes 1; the other n-2 dims contribute 2).
	for n := 3; n <= 8; n++ {
		if got := D(n).MaxDegree(); got != 2*n-3 {
			t.Fatalf("D(%d) max degree = %d, want %d", n, got, 2*n-3)
		}
	}
	// And the all-ones node actually achieves it.
	m := D(5)
	ones := []int{1, 1, 1, 1}
	if d := graphalg.Degree(m, m.ID(ones)); d != 2*5-3 {
		t.Fatalf("degree of all-ones = %d", d)
	}
	// Degenerate sizes.
	if New(1, 1).MaxDegree() != 0 {
		t.Fatalf("trivial dims should not add degree")
	}
}

func TestManhattanDistanceMatchesBFS(t *testing.T) {
	m := New(3, 4, 2)
	dist := graphalg.BFS(m, 0)
	for id := 0; id < m.Order(); id++ {
		if m.Distance(0, id) != dist[id] {
			t.Fatalf("distance mismatch at %d", id)
		}
	}
}

func TestFigure3Mesh(t *testing.T) {
	// Figure 3: the 2*3*4 mesh, 24 nodes, 46 edges.
	m := New(2, 3, 4)
	if graphalg.NumEdges(m) != 46 {
		t.Fatalf("2*3*4 edges = %d", graphalg.NumEdges(m))
	}
	if graphalg.Diameter(m) != 6 {
		t.Fatalf("2*3*4 diameter = %d", graphalg.Diameter(m))
	}
	if !graphalg.IsConnected(m) {
		t.Fatalf("mesh disconnected")
	}
}

func TestDPointString(t *testing.T) {
	// D_4 coordinates (d_3,d_2,d_1) = (3,0,1): pt[0]=d_1=1, pt[1]=d_2=0, pt[2]=d_3=3.
	if got := DPointString([]int{1, 0, 3}); got != "(3,0,1)" {
		t.Fatalf("DPointString = %q", got)
	}
}

func TestSnakeIsHamiltonianPath(t *testing.T) {
	shapes := [][]int{{2, 3}, {2, 3, 4}, {3, 3, 3}, {5, 2}, {2, 2, 2, 2}, {4}, {2, 3, 4, 5}}
	for _, s := range shapes {
		m := New(s...)
		seen := make([]bool, m.Order())
		prev := -1
		for idx := 0; idx < m.Order(); idx++ {
			id := m.SnakeIDAt(idx)
			if seen[id] {
				t.Fatalf("%v: snake revisits %d", s, id)
			}
			seen[id] = true
			if prev != -1 && m.Distance(prev, id) != 1 {
				t.Fatalf("%v: snake step %d not adjacent (%d -> %d)", s, idx, prev, id)
			}
			prev = id
		}
	}
}

func TestSnakeRoundTrip(t *testing.T) {
	m := New(3, 4, 5)
	for id := 0; id < m.Order(); id++ {
		c := m.Coords(nil, id)
		idx := m.SnakeIndex(c)
		back := m.SnakeCoords(nil, idx)
		for j := range c {
			if back[j] != c[j] {
				t.Fatalf("snake roundtrip failed at %v: idx=%d back=%v", c, idx, back)
			}
		}
		if m.SnakeIndexOfID(id) != idx {
			t.Fatalf("SnakeIndexOfID mismatch")
		}
	}
}

func TestSnake2x3MatchesHandComputation(t *testing.T) {
	// 2 (dim0) × 3 (dim1): path (0,0),(1,0),(1,1),(0,1),(0,2),(1,2)
	// — dim1 most significant, dim0 snakes.
	m := New(2, 3)
	want := [][]int{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 2}, {1, 2}}
	for idx, w := range want {
		got := m.SnakeCoords(nil, idx)
		if got[0] != w[0] || got[1] != w[1] {
			t.Fatalf("snake[%d] = %v, want %v", idx, got, w)
		}
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { New() },
		func() { New(0) },
		func() { D(1) },
		func() { New(2, 2).ID([]int{1}) },
		func() { New(2, 2).ID([]int{2, 0}) },
		func() { New(2, 2).Coords(nil, 4) },
		func() { New(2, 2).SnakeIndex([]int{0}) },
		func() { New(2, 2).SnakeCoords(nil, -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSnakeIndex(b *testing.B) {
	m := New(2, 3, 4, 5, 6, 7, 8)
	c := m.Coords(nil, m.Order()/2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.SnakeIndex(c)
	}
}

func BenchmarkNeighbors(b *testing.B) {
	m := D(8)
	var buf []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.AppendNeighbors(buf[:0], i%m.Order())
	}
}
