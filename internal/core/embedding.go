package core

import (
	"starmesh/internal/embed"
	"starmesh/internal/mesh"
	"starmesh/internal/perm"
	"starmesh/internal/star"
)

// NewEmbedding assembles the paper's D_n → S_n embedding as an
// embed.Embedding over the dense vertex ids of mesh.D(n) and
// star.New(n): the vertex map is ConvertDS and guest edges map to
// the Lemma-2 paths. Theorem 4: expansion 1, dilation 3.
func NewEmbedding(n int) *embed.Embedding {
	m := mesh.D(n)
	s := star.New(n)
	vm := make([]int, m.Order())
	coords := make([]int, 0, n-1)
	for id := 0; id < m.Order(); id++ {
		coords = m.Coords(coords[:0], id)
		vm[id] = s.ID(ConvertDS(coords))
	}
	e := &embed.Embedding{
		Guest:     m,
		Host:      s,
		VertexMap: vm,
		Dist: func(hu, hv int) int {
			return star.Distance(s.Node(hu), s.Node(hv))
		},
	}
	e.Path = func(u, v int) []int {
		// Identify the dimension and direction of the guest edge.
		cu := m.Coords(nil, u)
		cv := m.Coords(nil, v)
		dim, dir := -1, 0
		for j := range cu {
			if cu[j] != cv[j] {
				dim, dir = j+1, cv[j]-cu[j] // paper dimension k = j+1
			}
		}
		if dim == -1 || (dir != 1 && dir != -1) {
			return nil
		}
		p := ConvertDS(cu)
		path, ok := Path(p, dim, dir)
		if !ok {
			return nil
		}
		ids := make([]int, len(path))
		for i, q := range path {
			ids[i] = s.ID(q)
		}
		return ids
	}
	return e
}

// MapID maps a mesh node id of D(n) to a star vertex id.
func MapID(n, meshID int) int {
	m := mesh.D(n)
	return int(ConvertDS(m.Coords(nil, meshID)).Rank())
}

// UnmapID maps a star vertex id back to its mesh node id.
func UnmapID(n, starID int) int {
	m := mesh.D(n)
	return m.ID(ConvertSD(perm.Unrank(n, int64(starID))))
}
