package core

import "starmesh/internal/perm"

// This file implements Lemma 3's closed-form neighbor
// characterization. Let π correspond to mesh node (d_{n-1},…,d_1).
// Then the star node of the mesh neighbor along +dimension k is
// obtained by exchanging symbol a_k = π[k] with
//
//	a_l = max{ a_t | a_t < a_k, 0 ≤ t < k }
//
// and along -dimension k by exchanging a_k with
//
//	a_m = min{ a_t | a_t > a_k, 0 ≤ t < k }.
//
// The +neighbor exists iff d_k < k and the -neighbor iff d_k > 0,
// which coincides exactly with the partner sets being non-empty
// (verified exhaustively in the tests against ConvertDS/ConvertSD).

// PartnerPlus returns the position of the symbol that moves to
// position k when d_k increments, or -1 if d_k is already maximal.
func PartnerPlus(p perm.Perm, k int) int {
	ak := p[k]
	best, bestPos := -1, -1
	for t := 0; t < k; t++ {
		if p[t] < ak && p[t] > best {
			best, bestPos = p[t], t
		}
	}
	return bestPos
}

// PartnerMinus returns the position of the symbol that moves to
// position k when d_k decrements, or -1 if d_k is already 0.
func PartnerMinus(p perm.Perm, k int) int {
	ak := p[k]
	best, bestPos := -1, -1
	for t := 0; t < k; t++ {
		if p[t] > ak && (best == -1 || p[t] < best) {
			best, bestPos = p[t], t
		}
	}
	return bestPos
}

// Partner returns PartnerPlus for dir=+1 and PartnerMinus for
// dir=-1.
func Partner(p perm.Perm, k, dir int) int {
	if dir > 0 {
		return PartnerPlus(p, k)
	}
	return PartnerMinus(p, k)
}

// NeighborPlus returns the star node of the mesh neighbor along
// +dimension k (πk+ of Definition 2), or ok=false at the mesh
// boundary d_k = k.
func NeighborPlus(p perm.Perm, k int) (perm.Perm, bool) {
	t := PartnerPlus(p, k)
	if t == -1 {
		return nil, false
	}
	return p.SwapPositions(k, t), true
}

// NeighborMinus returns πk− (Definition 2), or ok=false at d_k = 0.
func NeighborMinus(p perm.Perm, k int) (perm.Perm, bool) {
	t := PartnerMinus(p, k)
	if t == -1 {
		return nil, false
	}
	return p.SwapPositions(k, t), true
}

// Neighbor returns the mesh neighbor along dimension k in direction
// dir (+1 or -1).
func Neighbor(p perm.Perm, k, dir int) (perm.Perm, bool) {
	if dir > 0 {
		return NeighborPlus(p, k)
	}
	return NeighborMinus(p, k)
}
