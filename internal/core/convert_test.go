package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starmesh/internal/mesh"
	"starmesh/internal/perm"
)

func TestConvertWorkedExampleDS(t *testing.T) {
	// §3.2: "node (3,0,1) is mapped to node (0 3 1 2)".
	got := ConvertDS([]int{1, 0, 3}) // pt[0]=d_1=1, pt[1]=d_2=0, pt[2]=d_3=3
	if got.String() != "(0 3 1 2)" {
		t.Fatalf("ConvertDS((3,0,1)) = %v, want (0 3 1 2)", got)
	}
}

func TestConvertWorkedExampleSD(t *testing.T) {
	// §3.2: "node (0 2 1 3) is mapped to node (3,1,1)".
	p := perm.MustNew([]int{3, 1, 2, 0}) // displays as (0 2 1 3)
	if p.String() != "(0 2 1 3)" {
		t.Fatalf("setup wrong: %v", p)
	}
	got := ConvertSD(p)
	want := []int{1, 1, 3} // (d_3,d_2,d_1) = (3,1,1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ConvertSD((0 2 1 3)) = %v, want %v", got, want)
		}
	}
}

func TestOriginMapsToIdentity(t *testing.T) {
	// "Assume that node (0,0,…,0) gets mapped to (n-1 n-2 … 2 1 0)."
	for n := 2; n <= 9; n++ {
		if !ConvertDS(make([]int, n-1)).IsIdentity() {
			t.Fatalf("n=%d: origin does not map to identity", n)
		}
	}
}

func TestFigure7Golden(t *testing.T) {
	if len(Figure7) != 24 {
		t.Fatalf("Figure 7 must have 24 rows")
	}
	seen := map[string]bool{}
	for _, row := range Figure7 {
		pt := []int{row.Mesh[2], row.Mesh[1], row.Mesh[0]} // (d3,d2,d1) → pt[k-1]=d_k
		got := ConvertDS(pt)
		if got.String() != row.Star {
			t.Errorf("ConvertDS(%v) = %v, want %s", row.Mesh, got, row.Star)
		}
		if seen[row.Star] {
			t.Errorf("duplicate star node %s in Figure 7", row.Star)
		}
		seen[row.Star] = true
		// And the inverse recovers the mesh node.
		back := ConvertSD(got)
		for i := range pt {
			if back[i] != pt[i] {
				t.Errorf("ConvertSD(%v) = %v, want %v", got, back, pt)
			}
		}
	}
}

func TestRoundTripExhaustive(t *testing.T) {
	// ConvertSD ∘ ConvertDS = id over all of D_n, and the images are
	// exactly all of S_n (bijectivity = expansion 1), for n ≤ 7.
	for n := 2; n <= 7; n++ {
		m := mesh.D(n)
		seen := make([]bool, perm.Factorial(n))
		coords := make([]int, 0, n-1)
		for id := 0; id < m.Order(); id++ {
			coords = m.Coords(coords[:0], id)
			p := ConvertDS(coords)
			r := p.Rank()
			if seen[r] {
				t.Fatalf("n=%d: ConvertDS not injective at %v", n, coords)
			}
			seen[r] = true
			back := ConvertSD(p)
			for j := range coords {
				if back[j] != coords[j] {
					t.Fatalf("n=%d: roundtrip failed: %v -> %v -> %v", n, coords, p, back)
				}
			}
		}
	}
}

func TestRoundTripQuickLargeN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(5) // n in 8..12
		pt := make([]int, n-1)
		for k := 1; k <= n-1; k++ {
			pt[k-1] = rng.Intn(k + 1)
		}
		p := ConvertDS(pt)
		if !p.Valid() {
			return false
		}
		back := ConvertSD(p)
		for i := range pt {
			if back[i] != pt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseDirectionQuick(t *testing.T) {
	// ConvertDS ∘ ConvertSD = id over random star nodes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		p := perm.Random(n, rng)
		return ConvertDS(ConvertSD(p)).Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConvertSDRangeInvariant(t *testing.T) {
	// Every output coordinate must satisfy 0 ≤ d_k ≤ k.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(9)
		pt := ConvertSD(perm.Random(n, rng))
		if len(pt) != n-1 {
			t.Fatalf("wrong arity")
		}
		for k := 1; k <= n-1; k++ {
			if pt[k-1] < 0 || pt[k-1] > k {
				t.Fatalf("d_%d = %d out of range", k, pt[k-1])
			}
		}
	}
}

func TestConvertDSPanicsOnBadCoordinate(t *testing.T) {
	for _, pt := range [][]int{{2}, {-1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ConvertDS(%v) did not panic", pt)
				}
			}()
			ConvertDS(pt)
		}()
	}
}

func TestExchangeRowMatchesTable1(t *testing.T) {
	// Table 1 row 1: (0 1). Row 2: (1 2)(0 1).
	// Row n-1: (n-2 n-1)(n-3 n-2)…(1 2)(0 1).
	r1 := ExchangeRow(1)
	if len(r1) != 1 || r1[0] != [2]int{0, 1} {
		t.Fatalf("row 1 = %v", r1)
	}
	r2 := ExchangeRow(2)
	if len(r2) != 2 || r2[0] != [2]int{1, 2} || r2[1] != [2]int{0, 1} {
		t.Fatalf("row 2 = %v", r2)
	}
	r5 := ExchangeRow(5)
	want := [][2]int{{4, 5}, {3, 4}, {2, 3}, {1, 2}, {0, 1}}
	for i := range want {
		if r5[i] != want[i] {
			t.Fatalf("row 5 = %v", r5)
		}
	}
}

func TestExchangeRowDrivesConvertDS(t *testing.T) {
	// Replaying the first d_k exchanges of each Table-1 row on the
	// identity must reproduce ConvertDS.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		pt := make([]int, n-1)
		for k := 1; k <= n-1; k++ {
			pt[k-1] = rng.Intn(k + 1)
		}
		p := perm.Identity(n)
		for k := 1; k <= n-1; k++ {
			for j, ex := range ExchangeRow(k) {
				if j >= pt[k-1] {
					break
				}
				p = p.SwapSymbols(ex[0], ex[1])
			}
		}
		if !p.Equal(ConvertDS(pt)) {
			t.Fatalf("table replay mismatch for %v", pt)
		}
	}
}

func TestHasDilation1Lemma1(t *testing.T) {
	// Lemma 1: no dilation-1 embedding for n > 2.
	if !HasDilation1(2) {
		t.Fatalf("n=2 admits dilation 1")
	}
	for n := 3; n <= 64; n++ {
		if HasDilation1(n) {
			t.Fatalf("n=%d should not admit dilation 1", n)
		}
	}
}

func TestLemma1ExhaustiveSearchN3(t *testing.T) {
	// Brute force: no bijection of D_3 (2×3 mesh, 6 nodes) onto S_3
	// (6-cycle) achieves dilation 1. D_3 has 7 edges but C_6 only 6,
	// so this must fail; we verify by trying all 720 bijections.
	m := mesh.D(3)
	// S_3 adjacency via star edges.
	adj := make([][]bool, 6)
	for i := range adj {
		adj[i] = make([]bool, 6)
	}
	perm.All(3, func(p perm.Perm) bool {
		for _, q := range starNeighbors(p) {
			adj[p.Rank()][q.Rank()] = true
		}
		return true
	})
	found := false
	perm.All(6, func(bij perm.Perm) bool {
		ok := true
		var buf []int
		for u := 0; u < 6 && ok; u++ {
			buf = m.AppendNeighbors(buf[:0], u)
			for _, v := range buf {
				if !adj[bij[u]][bij[v]] {
					ok = false
					break
				}
			}
		}
		if ok {
			found = true
			return false
		}
		return true
	})
	if found {
		t.Fatalf("found a dilation-1 embedding of D_3 on S_3, contradicting Lemma 1")
	}
}

func starNeighbors(p perm.Perm) []perm.Perm {
	front := len(p) - 1
	var out []perm.Perm
	for i := 0; i < front; i++ {
		out = append(out, p.SwapPositions(front, i))
	}
	return out
}

func BenchmarkConvertDS(b *testing.B) {
	pt := []int{1, 2, 0, 4, 3, 6, 2, 8, 5} // n = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ConvertDS(pt)
	}
}

func BenchmarkConvertSD(b *testing.B) {
	p := ConvertDS([]int{1, 2, 0, 4, 3, 6, 2, 8, 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ConvertSD(p)
	}
}
