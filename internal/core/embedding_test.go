package core

import (
	"math/rand"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/perm"
)

func TestTheorem4DilationAndExpansion(t *testing.T) {
	// The embedding has expansion 1 and dilation exactly 3 for n ≥ 3
	// (2 for n=2... n=2: D_2 is a 2-node path, S_2 a single edge —
	// dilation 1). Verified via exact star distances on every guest
	// edge for n ≤ 6.
	for n := 3; n <= 6; n++ {
		e := NewEmbedding(n)
		if e.Expansion() != 1 {
			t.Fatalf("n=%d expansion = %v", n, e.Expansion())
		}
		if d := e.DilationOnly(); d != 3 {
			t.Fatalf("n=%d dilation = %d, want 3", n, d)
		}
	}
	if d := NewEmbedding(2).DilationOnly(); d != 1 {
		t.Fatalf("n=2 dilation = %d, want 1", d)
	}
}

func TestEmbeddingValidates(t *testing.T) {
	for n := 2; n <= 5; n++ {
		if err := NewEmbedding(n).Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestEmbeddingMeasuredMetrics(t *testing.T) {
	// Measured over the Lemma-2 paths: dilation 3; every edge of
	// dimension n-1 has length 1, all others length 3.
	e := NewEmbedding(5)
	m := e.Measure()
	if m.Dilation != 3 {
		t.Fatalf("measured dilation = %d", m.Dilation)
	}
	if m.Expansion != 1 {
		t.Fatalf("measured expansion = %v", m.Expansion)
	}
	// Guest edge count of D_5 = Σ_j (l_j-1)·(N/l_j) for sizes 2,3,4,5.
	dn := mesh.D(5)
	want := 0
	for j := 0; j < dn.Dims(); j++ {
		want += (dn.Size(j) - 1) * dn.Order() / dn.Size(j)
	}
	if m.GuestEdges != want {
		t.Fatalf("guest edges = %d, want %d", m.GuestEdges, want)
	}
	if m.Congestion < 1 {
		t.Fatalf("congestion = %d", m.Congestion)
	}
}

func TestMapUnmapIDRoundTrip(t *testing.T) {
	for n := 2; n <= 5; n++ {
		N := mesh.D(n).Order()
		for id := 0; id < N; id++ {
			if UnmapID(n, MapID(n, id)) != id {
				t.Fatalf("n=%d id=%d roundtrip failed", n, id)
			}
		}
	}
}

func TestSampledDilationLargeN(t *testing.T) {
	// For n = 8..10, sample random mesh edges and confirm the host
	// distance is exactly 3 (or 1 on dimension n-1).
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 300; trial++ {
		n := 8 + rng.Intn(3)
		pt := make([]int, n-1)
		for k := 1; k <= n-1; k++ {
			pt[k-1] = rng.Intn(k + 1)
		}
		p := ConvertDS(pt)
		k := 1 + rng.Intn(n-1)
		dir := 1 - 2*rng.Intn(2)
		if Partner(p, k, dir) == -1 {
			continue
		}
		want := 3
		if k == n-1 {
			want = 1
		}
		if got := EdgeDistance(p, k, dir); got != want {
			t.Fatalf("n=%d k=%d: edge distance %d, want %d", n, k, got, want)
		}
	}
}

func TestEmbeddingPathOracleMatchesLemma2(t *testing.T) {
	// The embed.Embedding path oracle returns the same node
	// sequences as core.Path.
	n := 4
	e := NewEmbedding(n)
	m := mesh.D(n)
	var buf []int
	for u := 0; u < m.Order(); u++ {
		buf = m.AppendNeighbors(buf[:0], u)
		for _, v := range buf {
			ids := e.Path(u, v)
			if ids == nil {
				t.Fatalf("missing path for edge {%d,%d}", u, v)
			}
			if ids[0] != e.VertexMap[u] || ids[len(ids)-1] != e.VertexMap[v] {
				t.Fatalf("path endpoints wrong for {%d,%d}", u, v)
			}
			if len(ids) != 2 && len(ids) != 4 {
				t.Fatalf("path length %d for {%d,%d}", len(ids), u, v)
			}
		}
	}
}

func TestEmbeddingCongestionStable(t *testing.T) {
	// Record the measured congestion for n=3..5 so regressions in
	// path construction are caught. These are measured values, not
	// paper claims (the paper bounds congestion only per unit-route
	// dimension, via Lemma 5).
	want := map[int]int{3: 3, 4: 5, 5: 6}
	for n, w := range want {
		got := NewEmbedding(n).Measure().Congestion
		if got != w {
			t.Errorf("n=%d congestion = %d, previously measured %d", n, got, w)
		}
	}
}

func TestFigure7ViaEmbedding(t *testing.T) {
	// The assembled embedding's vertex map agrees with Figure 7.
	e := NewEmbedding(4)
	m := mesh.D(4)
	for _, row := range Figure7 {
		pt := []int{row.Mesh[2], row.Mesh[1], row.Mesh[0]}
		starID := e.VertexMap[m.ID(pt)]
		if perm.Unrank(4, int64(starID)).String() != row.Star {
			t.Fatalf("embedding map disagrees with Figure 7 at %v", row.Mesh)
		}
	}
}

func BenchmarkMapID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MapID(8, i%40320)
	}
}

func TestTheorem4DilationN7(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Full exhaustive dilation check at n=7 (5040 nodes, ~26k edges)
	// via the closed-form star distance.
	e := NewEmbedding(7)
	if d := e.DilationOnly(); d != 3 {
		t.Fatalf("n=7 dilation = %d, want 3", d)
	}
	if e.Expansion() != 1 {
		t.Fatalf("n=7 expansion = %v", e.Expansion())
	}
}
