package core

import "starmesh/internal/perm"

// This file constructs the host paths realizing mesh edges
// (Lemma 2). The mesh neighbor along dimension k is π with symbols
// a_k (at position k) and the partner a_l (at position t < k)
// exchanged. Three cases:
//
//   - k = n-1: position k IS the front, so a single generator g_t
//     performs the exchange — distance 1.
//   - otherwise: distance 3 via the canonical path
//     π → π·g_k → π·g_k·g_t → π·g_k·g_t·g_k.
//     Hops 1 and 3 use the dimension's own position k, identical for
//     every node routing along dimension k; only the middle hop
//     varies. That is the structure exploited by Lemma 5's
//     non-blocking argument and by SIMD-A scheduling (steps 1 and 3
//     are single-generator rounds).
//
// The paths returned here are exactly the ones whose edge-to-path
// mapping the paper illustrates after Lemma 3 for π = (2 3 4 0 1).

// PathGenerators returns the generator sequence realizing the mesh
// step along dimension k in direction dir from star node p, or
// (nil, false) at the mesh boundary. Length is 1 when k = n-1 and 3
// otherwise.
func PathGenerators(p perm.Perm, k, dir int) ([]int, bool) {
	t := Partner(p, k, dir)
	if t == -1 {
		return nil, false
	}
	if k == len(p)-1 {
		return []int{t}, true
	}
	return []int{k, t, k}, true
}

// Path returns the host path (node sequence, endpoints included)
// realizing the mesh step along dimension k in direction dir, or
// (nil, false) at the boundary.
func Path(p perm.Perm, k, dir int) ([]perm.Perm, bool) {
	gens, ok := PathGenerators(p, k, dir)
	if !ok {
		return nil, false
	}
	out := make([]perm.Perm, 0, len(gens)+1)
	cur := p.Clone()
	out = append(out, cur)
	for _, g := range gens {
		cur = cur.SwapPositions(len(p)-1, g)
		out = append(out, cur)
	}
	return out, true
}

// EdgeDistance returns the host distance realized for the mesh step
// (1 or 3), or 0 at the boundary. By Lemma 2 this is also the
// shortest-path distance between the two star nodes.
func EdgeDistance(p perm.Perm, k, dir int) int {
	if Partner(p, k, dir) == -1 {
		return 0
	}
	if k == len(p)-1 {
		return 1
	}
	return 3
}
