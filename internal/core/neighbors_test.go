package core

import (
	"math/rand"
	"testing"

	"starmesh/internal/perm"
	"starmesh/internal/star"
)

func TestLemma3WorkedExample(t *testing.T) {
	// π = (2 3 4 0 1), corresponding to mesh node (2,1,0,1):
	// π3+ = (2 1 4 0 3) and π3− = (2 4 3 0 1).
	pi := perm.MustNew([]int{1, 0, 4, 3, 2})
	if pi.String() != "(2 3 4 0 1)" {
		t.Fatalf("setup: %v", pi)
	}
	pt := ConvertSD(pi)
	want := []int{1, 0, 1, 2} // (d_4,d_3,d_2,d_1) = (2,1,0,1)
	for i := range want {
		if pt[i] != want[i] {
			t.Fatalf("mesh node = %v, want %v", pt, want)
		}
	}
	plus, ok := NeighborPlus(pi, 3)
	if !ok || plus.String() != "(2 1 4 0 3)" {
		t.Fatalf("π3+ = %v (ok=%v), want (2 1 4 0 3)", plus, ok)
	}
	minus, ok := NeighborMinus(pi, 3)
	if !ok || minus.String() != "(2 4 3 0 1)" {
		t.Fatalf("π3− = %v (ok=%v), want (2 4 3 0 1)", minus, ok)
	}
}

func TestLemma3EdgePathWorkedExample(t *testing.T) {
	// The paper's edge-to-path mapping after Lemma 3:
	// ((2,1,0,1),(2,2,0,1)) → (2 3 4 0 1)(3 2 4 0 1)(1 2 4 0 3)(2 1 4 0 3)
	// ((2,1,0,1),(2,0,0,1)) → (2 3 4 0 1)(3 2 4 0 1)(4 2 3 0 1)(2 4 3 0 1)
	pi := perm.MustNew([]int{1, 0, 4, 3, 2})
	pathPlus, ok := Path(pi, 3, +1)
	if !ok {
		t.Fatalf("plus path missing")
	}
	wantPlus := []string{"(2 3 4 0 1)", "(3 2 4 0 1)", "(1 2 4 0 3)", "(2 1 4 0 3)"}
	for i, w := range wantPlus {
		if pathPlus[i].String() != w {
			t.Fatalf("plus path[%d] = %v, want %s", i, pathPlus[i], w)
		}
	}
	pathMinus, ok := Path(pi, 3, -1)
	if !ok {
		t.Fatalf("minus path missing")
	}
	wantMinus := []string{"(2 3 4 0 1)", "(3 2 4 0 1)", "(4 2 3 0 1)", "(2 4 3 0 1)"}
	for i, w := range wantMinus {
		if pathMinus[i].String() != w {
			t.Fatalf("minus path[%d] = %v, want %s", i, pathMinus[i], w)
		}
	}
}

// meshStepGroundTruth computes πk± the slow way: via the mesh
// coordinates and ConvertDS.
func meshStepGroundTruth(p perm.Perm, k, dir int) (perm.Perm, bool) {
	pt := ConvertSD(p)
	pt[k-1] += dir
	if pt[k-1] < 0 || pt[k-1] > k {
		return nil, false
	}
	return ConvertDS(pt), true
}

func TestLemma3Exhaustive(t *testing.T) {
	// The closed-form neighbors equal the convert-based ground truth
	// for every node, dimension and direction, n ≤ 6.
	for n := 2; n <= 6; n++ {
		perm.All(n, func(p perm.Perm) bool {
			for k := 1; k <= n-1; k++ {
				for _, dir := range []int{+1, -1} {
					got, okG := Neighbor(p, k, dir)
					want, okW := meshStepGroundTruth(p, k, dir)
					if okG != okW {
						t.Fatalf("n=%d %v k=%d dir=%d: existence mismatch (%v vs %v)", n, p, k, dir, okG, okW)
					}
					if okG && !got.Equal(want) {
						t.Fatalf("n=%d %v k=%d dir=%d: %v != %v", n, p, k, dir, got, want)
					}
				}
			}
			return true
		})
	}
}

func TestLemma3SampledLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		n := 7 + rng.Intn(4)
		p := perm.Random(n, rng)
		k := 1 + rng.Intn(n-1)
		dir := 1 - 2*rng.Intn(2)
		got, okG := Neighbor(p, k, dir)
		want, okW := meshStepGroundTruth(p, k, dir)
		if okG != okW || (okG && !got.Equal(want)) {
			t.Fatalf("n=%d %v k=%d dir=%d mismatch", n, p, k, dir)
		}
	}
}

func TestNeighborExistenceMatchesBoundary(t *testing.T) {
	// πk+ exists iff d_k < k; πk− exists iff d_k > 0.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		p := perm.Random(n, rng)
		pt := ConvertSD(p)
		for k := 1; k <= n-1; k++ {
			if (PartnerPlus(p, k) != -1) != (pt[k-1] < k) {
				t.Fatalf("plus existence mismatch at k=%d, d=%v", k, pt)
			}
			if (PartnerMinus(p, k) != -1) != (pt[k-1] > 0) {
				t.Fatalf("minus existence mismatch at k=%d, d=%v", k, pt)
			}
		}
	}
}

func TestPlusMinusAreInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		p := perm.Random(n, rng)
		k := 1 + rng.Intn(n-1)
		if plus, ok := NeighborPlus(p, k); ok {
			back, ok2 := NeighborMinus(plus, k)
			if !ok2 || !back.Equal(p) {
				t.Fatalf("minus(plus) != id at %v k=%d", p, k)
			}
		}
		if minus, ok := NeighborMinus(p, k); ok {
			back, ok2 := NeighborPlus(minus, k)
			if !ok2 || !back.Equal(p) {
				t.Fatalf("plus(minus) != id at %v k=%d", p, k)
			}
		}
	}
}

func TestLemma2PathsAreShortest(t *testing.T) {
	// Each mesh edge's path has length exactly star.Distance (1 for
	// dimension n-1, else 3), and consists of star edges.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(7)
		p := perm.Random(n, rng)
		k := 1 + rng.Intn(n-1)
		dir := 1 - 2*rng.Intn(2)
		path, ok := Path(p, k, dir)
		if !ok {
			continue
		}
		dst := path[len(path)-1]
		d := star.Distance(p, dst)
		if len(path)-1 != d {
			t.Fatalf("path length %d != distance %d", len(path)-1, d)
		}
		if EdgeDistance(p, k, dir) != d {
			t.Fatalf("EdgeDistance mismatch")
		}
		if k == n-1 && d != 1 {
			t.Fatalf("front dimension should have distance 1, got %d", d)
		}
		if k < n-1 && d != 3 {
			t.Fatalf("non-front dimension should have distance 3, got %d", d)
		}
		for i := 0; i+1 < len(path); i++ {
			if !star.IsEdge(path[i], path[i+1]) {
				t.Fatalf("path step %d is not a star edge", i)
			}
		}
	}
}

func TestLemma2ExhaustiveTranspositionDistances(t *testing.T) {
	// Lemma 2 directly: dist(π, π(i,j)) is 1 if i or j is the front
	// symbol, else 3 — exhaustive over S_n × pairs for n ≤ 6.
	for n := 2; n <= 6; n++ {
		perm.All(n, func(p perm.Perm) bool {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					q := p.SwapSymbols(i, j)
					d := star.Distance(p, q)
					front := p[n-1]
					want := 3
					if front == i || front == j {
						want = 1
					}
					if d != want {
						t.Fatalf("n=%d %v swap(%d,%d): dist=%d want %d", n, p, i, j, d, want)
					}
				}
			}
			return true
		})
	}
}

func TestEdgeDistanceBoundary(t *testing.T) {
	// At the mesh boundary EdgeDistance returns 0.
	p := ConvertDS([]int{0, 0, 0}) // origin: every d_k = 0, no minus neighbors
	for k := 1; k <= 3; k++ {
		if EdgeDistance(p, k, -1) != 0 {
			t.Fatalf("boundary minus distance != 0")
		}
	}
	q := ConvertDS([]int{1, 2, 3}) // all d_k maximal: no plus neighbors
	for k := 1; k <= 3; k++ {
		if EdgeDistance(q, k, +1) != 0 {
			t.Fatalf("boundary plus distance != 0")
		}
	}
}

func TestPathGeneratorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		p := perm.Random(n, rng)
		k := 1 + rng.Intn(n-1)
		gens, ok := PathGenerators(p, k, +1)
		if !ok {
			continue
		}
		if k == n-1 {
			if len(gens) != 1 {
				t.Fatalf("front-dim path has %d generators", len(gens))
			}
		} else {
			if len(gens) != 3 || gens[0] != k || gens[2] != k {
				t.Fatalf("path generators = %v, want [k,·,k] with k=%d", gens, k)
			}
			if gens[1] >= k {
				t.Fatalf("middle generator %d should be below k=%d", gens[1], k)
			}
		}
	}
}

func TestMeshDims(t *testing.T) {
	if MeshDims(5) != 4 {
		t.Fatalf("MeshDims")
	}
}

func BenchmarkNeighborPlus(b *testing.B) {
	p := ConvertDS([]int{1, 2, 0, 4, 3, 6, 2, 8, 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = NeighborPlus(p, 7)
	}
}
