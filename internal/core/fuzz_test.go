package core

import (
	"testing"

	"starmesh/internal/perm"
	"starmesh/internal/star"
)

// Fuzz targets: `go test` exercises the seed corpus; `go test
// -fuzz=FuzzConvertRoundTrip ./internal/core` explores further.

// decodeCoords turns fuzz bytes into valid D_n coordinates,
// n = len(data)+1 clamped to [2, 12].
func decodeCoords(data []byte) []int {
	if len(data) == 0 {
		data = []byte{0}
	}
	if len(data) > 11 {
		data = data[:11]
	}
	pt := make([]int, len(data))
	for k := 1; k <= len(data); k++ {
		pt[k-1] = int(data[k-1]) % (k + 1)
	}
	return pt
}

func FuzzConvertRoundTrip(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 3})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		pt := decodeCoords(data)
		p := ConvertDS(pt)
		if !p.Valid() {
			t.Fatalf("ConvertDS produced invalid permutation: %v", p)
		}
		back := ConvertSD(p)
		for i := range pt {
			if back[i] != pt[i] {
				t.Fatalf("roundtrip failed: %v -> %v -> %v", pt, p, back)
			}
		}
	})
}

func FuzzNeighborConsistency(f *testing.F) {
	f.Add([]byte{1, 0, 3}, uint8(2), true)
	f.Add([]byte{0, 2, 1, 4}, uint8(1), false)
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8, plus bool) {
		pt := decodeCoords(data)
		n := len(pt) + 1
		k := 1 + int(kRaw)%(n-1)
		dir := -1
		if plus {
			dir = +1
		}
		p := ConvertDS(pt)
		got, okG := Neighbor(p, k, dir)
		pt2 := append([]int(nil), pt...)
		pt2[k-1] += dir
		okW := pt2[k-1] >= 0 && pt2[k-1] <= k
		if okG != okW {
			t.Fatalf("existence mismatch at %v k=%d dir=%d", pt, k, dir)
		}
		if !okG {
			return
		}
		want := ConvertDS(pt2)
		if !got.Equal(want) {
			t.Fatalf("neighbor mismatch at %v k=%d dir=%d", pt, k, dir)
		}
		// Lemma 2: realized distance is 1 (front dim) or 3.
		d := star.Distance(p, got)
		if k == n-1 && d != 1 || k < n-1 && d != 3 {
			t.Fatalf("dilation violated: k=%d d=%d", k, d)
		}
	})
}

func FuzzRankUnrank(f *testing.F) {
	f.Add(uint16(0), uint8(5))
	f.Add(uint16(119), uint8(5))
	f.Fuzz(func(t *testing.T, r uint16, nRaw uint8) {
		n := 2 + int(nRaw)%9
		rank := int64(r) % perm.Factorial(n)
		p := perm.Unrank(n, rank)
		if p.Rank() != rank {
			t.Fatalf("rank/unrank mismatch")
		}
	})
}
