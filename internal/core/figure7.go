package core

// Figure7 is the paper's Figure 7: the complete mapping of V(D_4)
// onto V(S_4), transcribed verbatim. Mesh nodes are the tuples
// (d_3,d_2,d_1) and star nodes the displayed permutations
// (a_3 a_2 a_1 a_0). The golden test TestFigure7Golden checks
// ConvertDS against every row; cmd/experiments regenerates the
// table.
var Figure7 = []struct {
	Mesh [3]int // (d_3, d_2, d_1)
	Star string // paper display, e.g. "(3 2 1 0)"
}{
	{[3]int{0, 0, 0}, "(3 2 1 0)"},
	{[3]int{0, 0, 1}, "(3 2 0 1)"},
	{[3]int{0, 1, 0}, "(3 1 2 0)"},
	{[3]int{0, 1, 1}, "(3 1 0 2)"},
	{[3]int{0, 2, 0}, "(3 0 2 1)"},
	{[3]int{0, 2, 1}, "(3 0 1 2)"},
	{[3]int{1, 0, 0}, "(2 3 1 0)"},
	{[3]int{1, 0, 1}, "(2 3 0 1)"},
	{[3]int{1, 1, 0}, "(2 1 3 0)"},
	{[3]int{1, 1, 1}, "(2 1 0 3)"},
	{[3]int{1, 2, 0}, "(2 0 3 1)"},
	{[3]int{1, 2, 1}, "(2 0 1 3)"},
	{[3]int{2, 0, 0}, "(1 3 2 0)"},
	{[3]int{2, 0, 1}, "(1 3 0 2)"},
	{[3]int{2, 1, 0}, "(1 2 3 0)"},
	{[3]int{2, 1, 1}, "(1 2 0 3)"},
	{[3]int{2, 2, 0}, "(1 0 3 2)"},
	{[3]int{2, 2, 1}, "(1 0 2 3)"},
	{[3]int{3, 0, 0}, "(0 3 2 1)"},
	{[3]int{3, 0, 1}, "(0 3 1 2)"},
	{[3]int{3, 1, 0}, "(0 2 3 1)"},
	{[3]int{3, 1, 1}, "(0 2 1 3)"},
	{[3]int{3, 2, 0}, "(0 1 3 2)"},
	{[3]int{3, 2, 1}, "(0 1 2 3)"},
}
