// Package core implements the paper's primary contribution (§3):
// the expansion-1, dilation-3 embedding of the (n-1)-dimensional
// mesh D_n = 2×3×…×n into the star graph S_n.
//
//   - ConvertDS is the CONVERT-D-S algorithm of Figure 5 (mesh node →
//     star node), driven by the exchange sequences of Table 1.
//   - ConvertSD is the CONVERT-S-D inverse of Figure 6.
//   - NeighborPlus / NeighborMinus are the closed-form πk± neighbor
//     characterizations of Lemma 3.
//   - PathPlus / PathMinus construct the length-≤3 host paths of
//     Lemma 2, in the order (g_k, g_partner, g_k) whose first and
//     third hops are the dimension's own position — the property
//     behind the non-blocking unit-route schedule of Lemma 5 /
//     Theorem 6 (see package starsim).
//
// Mesh coordinates follow package mesh: a node of D_n is pt[0..n-2]
// with pt[k-1] = d_k, 0 ≤ d_k ≤ k. Star nodes follow package perm:
// π[i] is the symbol at position i, front = position n-1.
package core

import (
	"fmt"

	"starmesh/internal/perm"
)

// ConvertDS maps a mesh node of D_n onto a star node of S_n
// (Figure 5). pt must have length n-1 with 0 ≤ pt[k-1] ≤ k. The mesh
// origin (0,…,0) maps to the identity node (n-1 n-2 … 1 0). O(n²).
func ConvertDS(pt []int) perm.Perm {
	n := len(pt) + 1
	pi := perm.Identity(n)
	pos := make([]int, n) // pos[s] = position of symbol s in pi
	for s := range pos {
		pos[s] = s
	}
	swapSymbols := func(a, b int) {
		pa, pb := pos[a], pos[b]
		pi[pa], pi[pb] = b, a
		pos[a], pos[b] = pb, pa
	}
	for k := 1; k <= n-1; k++ {
		dk := pt[k-1]
		if dk < 0 || dk > k {
			panic(fmt.Sprintf("core: d_%d = %d out of range [0,%d]", k, dk, k))
		}
		// Row k of Table 1: exchanges (k-1 k)(k-2 k-1)…; performing
		// the first d_k of them.
		for j := 1; j <= dk; j++ {
			swapSymbols(k-j, k-j+1)
		}
	}
	return pi
}

// ConvertSD inverts ConvertDS (Figure 6), recovering the mesh node
// from a star node. O(n²).
func ConvertSD(p perm.Perm) []int {
	n := len(p)
	q := append([]int(nil), p...)
	pt := make([]int, n-1)
	for i := n - 1; i >= 1; i-- {
		if i > q[i] {
			d := i - q[i]
			pt[i-1] = d
			// Symbols larger than q[i] among the remaining positions
			// shift down by one when the reverse exchanges pull
			// symbol i home (see the worked example in §3.2).
			for j := i - 1; j >= 0; j-- {
				if q[j] > q[i] {
					q[j]--
				}
			}
		} else {
			pt[i-1] = 0
		}
	}
	return pt
}

// ExchangeRow returns row i of Table 1: the full exchange sequence
// (i-1 i)(i-2 i-1)…(1 2)(0 1) along dimension i, most-significant
// exchange first. ConvertDS performs the first d_i entries... note
// that Figure 5 applies them in that same order (j = 1 → (i-1 i)).
func ExchangeRow(i int) [][2]int {
	row := make([][2]int, 0, i)
	for j := 1; j <= i; j++ {
		row = append(row, [2]int{i - j, i - j + 1})
	}
	return row
}

// MeshDims returns n-1, the dimensionality of D_n.
func MeshDims(n int) int { return n - 1 }

// HasDilation1 reports the Lemma 1 criterion: a dilation-1 embedding
// of D_n on S_n can only exist when the maximum mesh degree 2n-3
// does not exceed the star degree n-1, i.e. n ≤ 2.
func HasDilation1(n int) bool { return 2*n-3 <= n-1 }
