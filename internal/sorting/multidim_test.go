package sorting

import (
	"math/rand"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
)

func TestSnakeInversions(t *testing.T) {
	m := mesh.New(2, 3)
	key := make([]int64, 6)
	for s := 0; s < 6; s++ {
		key[m.SnakeIDAt(s)] = int64(s)
	}
	if SnakeInversions(m, key) != 0 {
		t.Fatalf("sorted sequence has inversions")
	}
	// Fully reversed: C(6,2) = 15 inversions.
	for s := 0; s < 6; s++ {
		key[m.SnakeIDAt(s)] = int64(5 - s)
	}
	if SnakeInversions(m, key) != 15 {
		t.Fatalf("reversed inversions = %d", SnakeInversions(m, key))
	}
}

func TestMultiDimShearMatchesShearSort2D(t *testing.T) {
	// In 2-D the generalization must sort within ~log(rows)+1 rounds
	// (the classical shearsort bound).
	rng := rand.New(rand.NewSource(1))
	m := meshsim.New(mesh.New(8, 8))
	m.AddReg("K")
	m.Set("K", func(pe int) int64 { return int64(rng.Intn(1000)) })
	hist := MultiDimShearRounds(m, "K", 10)
	if hist[len(hist)-1] != 0 {
		t.Fatalf("2-D shear did not sort: %v", hist)
	}
	if len(hist) > 4 { // ceil(log2 8) + 1 = 4
		t.Fatalf("2-D shear took %d rounds: %v", len(hist), hist)
	}
}

func TestMultiDimShearInversionsMonotone(t *testing.T) {
	// Rounds never increase inversions for these workloads.
	rng := rand.New(rand.NewSource(2))
	for _, sizes := range [][]int{{3, 3, 3}, {2, 3, 4}, {4, 4, 4}} {
		m := meshsim.New(mesh.New(sizes...))
		m.AddReg("K")
		m.Set("K", func(pe int) int64 { return int64(rng.Intn(1000)) })
		hist := MultiDimShearRounds(m, "K", 8)
		for i := 1; i < len(hist); i++ {
			if hist[i] > hist[i-1] {
				t.Fatalf("%v: inversions increased: %v", sizes, hist)
			}
		}
	}
}

func TestSortDimensionSortsLines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := meshsim.New(mesh.New(4, 3))
	m.AddReg("K")
	m.Set("K", func(pe int) int64 { return int64(rng.Intn(100)) })
	SortDimension(m, "K", 0)
	// Every row must be monotone in the direction given by its
	// higher-coordinate parity.
	for c1 := 0; c1 < 3; c1++ {
		asc := c1%2 == 0
		for c0 := 0; c0+1 < 4; c0++ {
			a := m.Reg("K")[m.M.ID([]int{c0, c1})]
			b := m.Reg("K")[m.M.ID([]int{c0 + 1, c1})]
			if asc && a > b || !asc && a < b {
				t.Fatalf("row %d not monotone (asc=%v)", c1, asc)
			}
		}
	}
}

func TestLineAscending2DMatchesShearsort(t *testing.T) {
	m := mesh.New(5, 4)
	for pe := 0; pe < m.Order(); pe++ {
		want := m.Coord(pe, 1)%2 == 0
		if lineAscending(m, pe, 0) != want {
			t.Fatalf("direction rule differs from shearsort at %d", pe)
		}
		if !lineAscending(m, pe, 1) {
			t.Fatalf("columns must always sort ascending")
		}
	}
}
