// Package sorting implements SIMD mesh sorting algorithms and runs
// them both on the mesh machine directly and on the star graph
// through the paper's embedding, supporting the §5 discussion: any
// T(n)-unit-route mesh algorithm runs in ≤ 3·T(n) star unit routes
// (Theorem 6).
//
// Algorithms:
//
//   - OddEvenSort1D: odd-even transposition sort on a 1-D mesh
//     ([THOM77]-era baseline; N phases, 2 routes each).
//   - ShearSort2D: shear sort on an a×b mesh ([SCHE89]; the paper
//     singles it out as the 2-D method that avoids divide and
//     conquer). ⌈log₂ a⌉+1 row/column rounds.
//   - SnakeSort: odd-even transposition over the snake
//     (boustrophedon) order of an arbitrary rectangular mesh —
//     runnable on the mesh machine and on the star machine, where
//     every masked mesh unit route costs ≤ 3 star routes.
package sorting

import (
	"context"
	"fmt"
	"hash/fnv"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/simd"
	"starmesh/internal/starsim"
)

// Result reports the cost of a sort run.
type Result struct {
	Sorted     bool
	Phases     int
	UnitRoutes int // unit routes on the executing machine
	Conflicts  int // receive conflicts observed (must be 0)
}

// IsSortedBySnake reports whether register key on machine m is
// nondecreasing along the snake order of its mesh.
func IsSortedBySnake(m *mesh.Mesh, key []int64) bool {
	prev := int64(0)
	for s := 0; s < m.Order(); s++ {
		v := key[m.SnakeIDAt(s)]
		if s > 0 && v < prev {
			return false
		}
		prev = v
	}
	return true
}

// IsSortedLinear reports whether key is nondecreasing in PE order.
func IsSortedLinear(key []int64) bool {
	for i := 1; i < len(key); i++ {
		if key[i] < key[i-1] {
			return false
		}
	}
	return true
}

// OddEvenSort1D sorts register key on a 1-D mesh machine using
// odd-even transposition: exactly N phases of 2 unit routes.
func OddEvenSort1D(m *meshsim.Machine, key string) Result {
	if m.M.Dims() != 1 {
		panic("sorting: OddEvenSort1D needs a 1-D mesh")
	}
	n := m.M.Order()
	before := m.Stats()
	for phase := 0; phase < n; phase++ {
		m.CompareExchange(key, 0, phase%2, nil)
	}
	after := m.Stats()
	return Result{
		Sorted:     IsSortedLinear(m.Reg(key)),
		Phases:     n,
		UnitRoutes: after.UnitRoutes - before.UnitRoutes,
		Conflicts:  after.ReceiveConflicts - before.ReceiveConflicts,
	}
}

// ShearSort2D sorts register key on an a×b mesh machine (dimension 0
// = position within a row of length b; dimension 1 = row index,
// a rows) into snake order: rows are sorted alternately ascending
// and descending, columns ascending, for ⌈log₂ a⌉ rounds plus a
// final row phase.
func ShearSort2D(m *meshsim.Machine, key string) Result {
	res, _ := shearSort2D(m, key, nil)
	return res
}

// ShearSort2DCtx is ShearSort2D with a cooperative cancellation
// checkpoint before every compare-exchange phase: when ctx fires the
// sort stops at the next phase boundary and returns the partial cost
// with ctx's error (Sorted false).
func ShearSort2DCtx(ctx context.Context, m *meshsim.Machine, key string) (Result, error) {
	return shearSort2D(m, key, ctx.Err)
}

// shearSort2D runs the shear sort, consulting stop (when non-nil)
// before every phase.
func shearSort2D(m *meshsim.Machine, key string, stop func() error) (Result, error) {
	if m.M.Dims() != 2 {
		panic("sorting: ShearSort2D needs a 2-D mesh")
	}
	b, a := m.M.Size(0), m.M.Size(1)
	before := m.Stats()
	rounds := 0
	for x := 1; x < a; x *= 2 {
		rounds++
	}
	partial := func(err error) (Result, error) {
		after := m.Stats()
		return Result{
			UnitRoutes: after.UnitRoutes - before.UnitRoutes,
			Conflicts:  after.ReceiveConflicts - before.ReceiveConflicts,
		}, err
	}
	check := func() error {
		if stop == nil {
			return nil
		}
		return stop()
	}
	rowAscending := func(pe int) bool { return m.M.Coord(pe, 1)%2 == 0 }
	sortRows := func() error {
		for phase := 0; phase < b; phase++ {
			if err := check(); err != nil {
				return err
			}
			m.CompareExchange(key, 0, phase%2, rowAscending)
		}
		return nil
	}
	sortCols := func() error {
		for phase := 0; phase < a; phase++ {
			if err := check(); err != nil {
				return err
			}
			m.CompareExchange(key, 1, phase%2, nil)
		}
		return nil
	}
	for r := 0; r < rounds; r++ {
		if err := sortRows(); err != nil {
			return partial(err)
		}
		if err := sortCols(); err != nil {
			return partial(err)
		}
	}
	if err := sortRows(); err != nil {
		return partial(err)
	}
	after := m.Stats()
	return Result{
		Sorted:     IsSortedBySnake(m.M, m.Reg(key)),
		Phases:     rounds + 1,
		UnitRoutes: after.UnitRoutes - before.UnitRoutes,
		Conflicts:  after.ReceiveConflicts - before.ReceiveConflicts,
	}, nil
}

// snakePlan precomputes, for every node of a mesh, its snake index
// and the (dim, dir) of the snake step to the next snake position.
type snakePlan struct {
	m     *mesh.Mesh
	index []int // node id -> snake index
	dim   []int // node id -> dim of step to snake successor (-1 at end)
	dir   []int
}

func newSnakePlan(m *mesh.Mesh) *snakePlan {
	p := &snakePlan{
		m:     m,
		index: make([]int, m.Order()),
		dim:   make([]int, m.Order()),
		dir:   make([]int, m.Order()),
	}
	prev := -1
	for s := 0; s < m.Order(); s++ {
		id := m.SnakeIDAt(s)
		p.index[id] = s
		p.dim[id] = -1
		if prev != -1 {
			for j := 0; j < m.Dims(); j++ {
				switch m.Coord(id, j) - m.Coord(prev, j) {
				case 1:
					p.dim[prev], p.dir[prev] = j, +1
				case -1:
					p.dim[prev], p.dir[prev] = j, -1
				}
			}
		}
		prev = id
	}
	return p
}

// exchanger abstracts "move register src one masked step along
// (dim,dir) into dst" over the two machines, so SnakeSort runs
// unchanged on a mesh (1 route per step) and on a star via the
// embedding (≤ 3 routes per step).
type exchanger interface {
	maskedStep(src, dst string, dim, dir int, mask func(meshID int) bool)
	machine() *simd.Machine
	theMesh() *mesh.Mesh
	// planTag distinguishes schedules that share a topology but move
	// data differently (mesh vs star exchange, SIMD model, vertex
	// map), so compiled phase plans never collide in the shared
	// cache.
	planTag() string
}

// meshExchanger runs on the mesh machine itself; PE ids are mesh ids.
type meshExchanger struct{ mm *meshsim.Machine }

func (e meshExchanger) machine() *simd.Machine { return e.mm.Machine }
func (e meshExchanger) theMesh() *mesh.Mesh    { return e.mm.M }
func (e meshExchanger) planTag() string        { return "mesh" }
func (e meshExchanger) maskedStep(src, dst string, dim, dir int, mask func(int) bool) {
	e.mm.RouteA(src, dst, meshsim.Port(dim, dir), mask)
}

// starExchanger runs on the star machine through the embedding; PE
// ids are star ids and mesh masks are translated via ConvertSD
// inside starsim's role tests (the machine's mask argument receives
// star PE ids, so we wrap it with the stored mesh-id lookup).
type starExchanger struct {
	sm     *starsim.Machine
	dn     *mesh.Mesh
	meshID []int // star PE id -> mesh id
	modelA bool  // serialize per-generator rounds (SIMD-A star)
}

func (e starExchanger) machine() *simd.Machine { return e.sm.Machine }
func (e starExchanger) theMesh() *mesh.Mesh    { return e.dn }
func (e starExchanger) planTag() string {
	// The meshID vertex map shapes every mask, so it is part of the
	// schedule identity.
	h := fnv.New64a()
	for _, id := range e.meshID {
		var buf [8]byte
		for b := 0; b < 8; b++ {
			buf[b] = byte(id >> (8 * b))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("star:modelA=%t:vm=%x", e.modelA, h.Sum64())
}
func (e starExchanger) maskedStep(src, dst string, dim, dir int, mask func(int) bool) {
	starMask := func(pe int) bool { return mask(e.meshID[pe]) }
	if e.modelA {
		e.sm.MaskedMeshUnitRouteModelA(src, dst, dim+1, dir, starMask)
		return
	}
	e.sm.MaskedMeshUnitRoute(src, dst, dim+1, dir, starMask)
}

// snakeSort runs odd-even transposition over the snake order using
// masked directional steps. meshOf maps PE ids to mesh ids. stop
// (when non-nil) is consulted once per phase — the cooperative
// cancellation checkpoint; a non-nil return aborts the sort at the
// phase boundary with the partial cost.
func snakeSort(e exchanger, key string, meshOf func(pe int) int, stop func() error) (Result, error) {
	m := e.theMesh()
	plan := newSnakePlan(m)
	mach := e.machine()
	const tmp = "__snake_tmp"
	mach.EnsureReg(tmp)
	n := m.Order()
	before := mach.Stats()
	// Register slices hoisted out of the phase loop (the map lookups
	// would otherwise run n times).
	k := mach.Reg(key)
	t := mach.Reg(tmp)
	// The route block of a phase depends only on the phase's parity,
	// so the whole odd-even transposition replays two compiled
	// schedules: record parity 0 and 1 once, replay them for the
	// remaining n-2 phases (and across machines of the same shape via
	// the shared plan cache).
	var phaseKeys [2]string
	for par := range phaseKeys {
		phaseKeys[par] = fmt.Sprintf("snakephase:%s:%s:%d", e.planTag(), key, par)
	}
	for phase := 0; phase < n; phase++ {
		if stop != nil {
			if err := stop(); err != nil {
				after := mach.Stats()
				return Result{
					Phases:     phase,
					UnitRoutes: after.UnitRoutes - before.UnitRoutes,
					Conflicts:  after.ReceiveConflicts - before.ReceiveConflicts,
				}, err
			}
		}
		lowMask := func(meshID int) bool {
			s := plan.index[meshID]
			return s%2 == phase%2 && plan.dim[meshID] != -1
		}
		highMask := func(meshID int) bool {
			s := plan.index[meshID]
			if s == 0 {
				return false
			}
			prev := m.SnakeIDAt(s - 1)
			return lowMask(prev)
		}
		// Each (dim,dir) class of snake steps is one masked route in
		// each direction.
		routeBlock := func() {
			for j := 0; j < m.Dims(); j++ {
				for _, dir := range []int{+1, -1} {
					dirMaskLow := func(meshID int) bool {
						return lowMask(meshID) && plan.dim[meshID] == j && plan.dir[meshID] == dir
					}
					dirMaskHigh := func(meshID int) bool {
						s := plan.index[meshID]
						if s == 0 {
							return false
						}
						return dirMaskLow(m.SnakeIDAt(s - 1))
					}
					if !anyMesh(m, dirMaskLow) {
						continue
					}
					e.maskedStep(key, tmp, j, dir, dirMaskLow)
					e.maskedStep(key, tmp, j, -dir, dirMaskHigh)
				}
			}
		}
		if mach.PlansEnabled() {
			mach.RunPlanned(simd.SharedPlans, phaseKeys[phase%2], routeBlock)
		} else {
			routeBlock()
		}
		// Local compare: lows keep min, highs keep max.
		for pe := range k {
			id := meshOf(pe)
			if lowMask(id) {
				if t[pe] < k[pe] {
					k[pe] = t[pe]
				}
			} else if highMask(id) {
				if t[pe] > k[pe] {
					k[pe] = t[pe]
				}
			}
		}
	}
	after := mach.Stats()
	// Gather keys in mesh-id order for the sortedness check.
	keys := make([]int64, n)
	for pe := 0; pe < mach.Size(); pe++ {
		keys[meshOf(pe)] = k[pe]
	}
	return Result{
		Sorted:     IsSortedBySnake(m, keys),
		Phases:     n,
		UnitRoutes: after.UnitRoutes - before.UnitRoutes,
		Conflicts:  after.ReceiveConflicts - before.ReceiveConflicts,
	}, nil
}

func anyMesh(m *mesh.Mesh, pred func(int) bool) bool {
	for id := 0; id < m.Order(); id++ {
		if pred(id) {
			return true
		}
	}
	return false
}

// SnakeSortMesh sorts register key on the mesh machine into snake
// order via odd-even transposition over the snake.
func SnakeSortMesh(m *meshsim.Machine, key string) Result {
	res, _ := snakeSort(meshExchanger{mm: m}, key, func(pe int) int { return pe }, nil)
	return res
}

// SnakeSortStar sorts register key on the star machine: the mesh
// D_n is embedded by the paper's mapping, every snake step is a
// masked mesh unit route, and every unit route costs ≤ 3 star
// routes (Theorem 6). meshID[pe] must give the mesh node hosted by
// star PE pe (i.e. core.UnmapID).
func SnakeSortStar(sm *starsim.Machine, key string, meshID []int) Result {
	res, _ := SnakeSortStarCtx(context.Background(), sm, key, meshID)
	return res
}

// SnakeSortStarCtx is SnakeSortStar with a cooperative cancellation
// checkpoint once per odd-even transposition phase: when ctx fires
// the sort stops at the next phase boundary and returns the partial
// cost with ctx's error (Sorted false).
func SnakeSortStarCtx(ctx context.Context, sm *starsim.Machine, key string, meshID []int) (Result, error) {
	dn := mesh.D(sm.N)
	e := starExchanger{sm: sm, dn: dn, meshID: meshID}
	return snakeSort(e, key, func(pe int) int { return meshID[pe] }, ctx.Err)
}

// SnakeSortStarModelA is SnakeSortStar on a SIMD-A star machine:
// every masked unit route is serialized into single-generator
// rounds, quantifying the §4 remark that SIMD-A results carry an
// extra O(n) factor.
func SnakeSortStarModelA(sm *starsim.Machine, key string, meshID []int) Result {
	dn := mesh.D(sm.N)
	e := starExchanger{sm: sm, dn: dn, meshID: meshID, modelA: true}
	res, _ := snakeSort(e, key, func(pe int) int { return meshID[pe] }, nil)
	return res
}
