package sorting

import (
	"math/rand"
	"reflect"
	"testing"

	"starmesh/internal/core"
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/simd"
	"starmesh/internal/starsim"
)

func fillRandom(rng *rand.Rand, n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	return vals
}

func TestOddEvenSort1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 16, 31} {
		m := meshsim.New(mesh.New(n))
		m.AddReg("K")
		vals := fillRandom(rng, n)
		m.Set("K", func(pe int) int64 { return vals[pe] })
		res := OddEvenSort1D(m, "K")
		if !res.Sorted {
			t.Fatalf("n=%d not sorted: %v", n, m.Reg("K"))
		}
		if res.UnitRoutes != 2*n {
			t.Fatalf("n=%d unit routes = %d, want %d", n, res.UnitRoutes, 2*n)
		}
		if res.Conflicts != 0 {
			t.Fatalf("conflicts")
		}
	}
}

func TestOddEvenSortWorstCase(t *testing.T) {
	n := 20
	m := meshsim.New(mesh.New(n))
	m.AddReg("K")
	m.Set("K", func(pe int) int64 { return int64(n - pe) }) // reversed
	if !OddEvenSort1D(m, "K").Sorted {
		t.Fatalf("reversed input not sorted")
	}
}

func TestOddEvenSort1DPanicsOn2D(t *testing.T) {
	m := meshsim.New(mesh.New(2, 2))
	m.AddReg("K")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	OddEvenSort1D(m, "K")
}

func TestShearSort2D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := [][]int{{4, 4}, {8, 4}, {3, 5}, {6, 6}, {2, 3}, {5, 2}}
	for _, s := range shapes {
		m := meshsim.New(mesh.New(s...))
		m.AddReg("K")
		vals := fillRandom(rng, m.M.Order())
		m.Set("K", func(pe int) int64 { return vals[pe] })
		res := ShearSort2D(m, "K")
		if !res.Sorted {
			t.Fatalf("%v: not snake-sorted", s)
		}
		if res.Conflicts != 0 {
			t.Fatalf("%v: conflicts", s)
		}
		// Route count: (rounds+1) row phases of 2b + rounds column
		// phases of 2a routes.
		b, a := s[0], s[1]
		rounds := 0
		for x := 1; x < a; x *= 2 {
			rounds++
		}
		want := (rounds+1)*2*b + rounds*2*a
		if res.UnitRoutes != want {
			t.Fatalf("%v: routes = %d, want %d", s, res.UnitRoutes, want)
		}
	}
}

func TestShearSortPanicsOn1D(t *testing.T) {
	m := meshsim.New(mesh.New(4))
	m.AddReg("K")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ShearSort2D(m, "K")
}

func TestSnakeSortMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{{2, 3}, {2, 3, 4}, {3, 4}, {5}, {2, 2, 3}}
	for _, s := range shapes {
		m := meshsim.New(mesh.New(s...))
		m.AddReg("K")
		vals := fillRandom(rng, m.M.Order())
		m.Set("K", func(pe int) int64 { return vals[pe] })
		res := SnakeSortMesh(m, "K")
		if !res.Sorted {
			t.Fatalf("%v: not sorted", s)
		}
		if res.Conflicts != 0 {
			t.Fatalf("%v: conflicts", s)
		}
	}
}

func TestSnakeSortStarMatchesMeshAndCostsAtMost3x(t *testing.T) {
	// The same workload sorted on D_n (mesh machine) and on S_n (star
	// machine via the embedding): identical final key placement,
	// star routes ≤ 3 × mesh routes, zero conflicts (Theorem 6).
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{3, 4, 5} {
		dn := mesh.D(n)
		N := dn.Order()
		vals := fillRandom(rng, N)

		mm := meshsim.New(dn)
		mm.AddReg("K")
		mm.Set("K", func(pe int) int64 { return vals[pe] })
		resMesh := SnakeSortMesh(mm, "K")

		sm := starsim.New(n)
		sm.AddReg("K")
		meshID := make([]int, sm.Size())
		for pe := 0; pe < sm.Size(); pe++ {
			meshID[pe] = core.UnmapID(n, pe)
		}
		sm.Set("K", func(pe int) int64 { return vals[meshID[pe]] })
		resStar := SnakeSortStar(sm, "K", meshID)

		if !resMesh.Sorted || !resStar.Sorted {
			t.Fatalf("n=%d: sorted mesh=%v star=%v", n, resMesh.Sorted, resStar.Sorted)
		}
		if resStar.Conflicts != 0 {
			t.Fatalf("n=%d: star conflicts = %d", n, resStar.Conflicts)
		}
		if resStar.UnitRoutes > 3*resMesh.UnitRoutes {
			t.Fatalf("n=%d: star routes %d > 3×mesh routes %d",
				n, resStar.UnitRoutes, 3*resMesh.UnitRoutes)
		}
		// Same final arrangement, mesh-node-wise.
		for pe := 0; pe < sm.Size(); pe++ {
			if sm.Reg("K")[pe] != mm.Reg("K")[meshID[pe]] {
				t.Fatalf("n=%d: final keys differ at star PE %d", n, pe)
			}
		}
	}
}

func TestIsSortedHelpers(t *testing.T) {
	if !IsSortedLinear([]int64{1, 2, 2, 3}) || IsSortedLinear([]int64{2, 1}) {
		t.Fatalf("IsSortedLinear wrong")
	}
	m := mesh.New(2, 2)
	keys := make([]int64, 4)
	for s := 0; s < 4; s++ {
		keys[m.SnakeIDAt(s)] = int64(s)
	}
	if !IsSortedBySnake(m, keys) {
		t.Fatalf("snake-ordered keys reported unsorted")
	}
	keys[m.SnakeIDAt(0)] = 99
	if IsSortedBySnake(m, keys) {
		t.Fatalf("unsorted keys reported sorted")
	}
}

func TestSnakeSortAlreadySorted(t *testing.T) {
	m := meshsim.New(mesh.New(3, 3))
	m.AddReg("K")
	for s := 0; s < 9; s++ {
		m.Reg("K")[m.M.SnakeIDAt(s)] = int64(s)
	}
	res := SnakeSortMesh(m, "K")
	if !res.Sorted {
		t.Fatalf("sorted input broke")
	}
}

func TestSnakeSortDuplicateKeys(t *testing.T) {
	m := meshsim.New(mesh.New(2, 3, 4))
	m.AddReg("K")
	m.Set("K", func(pe int) int64 { return int64(pe % 3) })
	if !SnakeSortMesh(m, "K").Sorted {
		t.Fatalf("duplicate keys broke sort")
	}
}

func BenchmarkShearSort16x16(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < b.N; i++ {
		m := meshsim.New(mesh.New(16, 16))
		m.AddReg("K")
		m.Set("K", func(pe int) int64 { return int64(rng.Intn(1 << 20)) })
		if !ShearSort2D(m, "K").Sorted {
			b.Fatalf("not sorted")
		}
	}
}

func BenchmarkSnakeSortStarN4(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	meshID := make([]int, 24)
	for pe := range meshID {
		meshID[pe] = core.UnmapID(4, pe)
	}
	for i := 0; i < b.N; i++ {
		sm := starsim.New(4)
		sm.AddReg("K")
		sm.Set("K", func(pe int) int64 { return int64(rng.Intn(1 << 20)) })
		if !SnakeSortStar(sm, "K", meshID).Sorted {
			b.Fatalf("not sorted")
		}
	}
}

func TestSnakeSortStarModelA(t *testing.T) {
	// SIMD-A execution sorts identically but pays the §4 O(n) factor
	// in unit routes relative to SIMD-B.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{3, 4} {
		N := mesh.D(n).Order()
		vals := fillRandom(rng, N)

		smB := starsim.New(n)
		smB.AddReg("K")
		meshID := make([]int, smB.Size())
		for pe := range meshID {
			meshID[pe] = core.UnmapID(n, pe)
		}
		smB.Set("K", func(pe int) int64 { return vals[meshID[pe]] })
		resB := SnakeSortStar(smB, "K", meshID)

		smA := starsim.New(n)
		smA.AddReg("K")
		smA.Set("K", func(pe int) int64 { return vals[meshID[pe]] })
		resA := SnakeSortStarModelA(smA, "K", meshID)

		if !resA.Sorted {
			t.Fatalf("n=%d: model-A sort failed", n)
		}
		if resA.Conflicts != 0 {
			t.Fatalf("n=%d: model-A conflicts", n)
		}
		if resA.UnitRoutes < resB.UnitRoutes {
			t.Fatalf("n=%d: model A (%d) cheaper than model B (%d)?",
				n, resA.UnitRoutes, resB.UnitRoutes)
		}
		// The slowdown is bounded by the O(n) factor of Section 4.
		if resA.UnitRoutes > n*resB.UnitRoutes {
			t.Fatalf("n=%d: model-A routes %d exceed n x model-B %d",
				n, resA.UnitRoutes, n*resB.UnitRoutes)
		}
		for pe := range meshID {
			if smA.Reg("K")[pe] != smB.Reg("K")[pe] {
				t.Fatalf("n=%d: model A/B final keys differ", n)
			}
		}
	}
}

// TestSnakeSortPlansMatchClosure pins the per-parity phase plans:
// sorting with plan replay (the default) must produce the same
// Result and final keys as closure-resolved routing, on both the
// mesh machine and the star machine through the embedding.
func TestSnakeSortPlansMatchClosure(t *testing.T) {
	keys := []int64{9, 3, 7, 1, 12, 0, 5, 11, 2, 8, 10, 4, 6, 23, 13, 17, 21, 14, 19, 15, 22, 16, 20, 18}

	load := func(m *simd.Machine) {
		kr := m.Reg("K")
		copy(kr, keys)
	}

	// Mesh machine.
	mmPlan := meshsim.New(mesh.D(4))
	mmPlan.AddReg("K")
	load(mmPlan.Machine)
	resPlan := SnakeSortMesh(mmPlan, "K")

	mmClosure := meshsim.New(mesh.D(4), simd.WithPlans(false))
	mmClosure.AddReg("K")
	load(mmClosure.Machine)
	resClosure := SnakeSortMesh(mmClosure, "K")

	if resPlan != resClosure {
		t.Fatalf("mesh results diverged: plan %+v, closure %+v", resPlan, resClosure)
	}
	if !reflect.DeepEqual(mmPlan.Reg("K"), mmClosure.Reg("K")) {
		t.Fatalf("mesh keys diverged")
	}
	if mmPlan.Stats() != mmClosure.Stats() {
		t.Fatalf("mesh stats diverged: %+v vs %+v", mmPlan.Stats(), mmClosure.Stats())
	}

	// Star machine through the embedding.
	meshID := make([]int, 24)
	for pe := range meshID {
		meshID[pe] = core.UnmapID(4, pe)
	}
	smPlan := starsim.New(4)
	smPlan.AddReg("K")
	load(smPlan.Machine)
	starPlan := SnakeSortStar(smPlan, "K", meshID)

	smClosure := starsim.New(4, simd.WithPlans(false))
	smClosure.AddReg("K")
	load(smClosure.Machine)
	starClosure := SnakeSortStar(smClosure, "K", meshID)

	if starPlan != starClosure {
		t.Fatalf("star results diverged: plan %+v, closure %+v", starPlan, starClosure)
	}
	if !reflect.DeepEqual(smPlan.Reg("K"), smClosure.Reg("K")) {
		t.Fatalf("star keys diverged")
	}
	if smPlan.Stats() != smClosure.Stats() {
		t.Fatalf("star stats diverged: %+v vs %+v", smPlan.Stats(), smClosure.Stats())
	}
	if !starPlan.Sorted || starPlan.Conflicts != 0 {
		t.Fatalf("star plan sort unsound: %+v", starPlan)
	}
}

// TestShearSortPlansMatchClosure does the same for the shear sort's
// compare-exchange plans.
func TestShearSortPlansMatchClosure(t *testing.T) {
	n := 8 * 4
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64((i*13 + 5) % n)
	}
	run := func(opts ...simd.Option) (Result, []int64, simd.Stats) {
		m := meshsim.New(mesh.New(4, 8), opts...)
		m.AddReg("K")
		copy(m.Reg("K"), keys)
		res := ShearSort2D(m, "K")
		return res, append([]int64(nil), m.Reg("K")...), m.Stats()
	}
	resPlan, keysPlan, statsPlan := run()
	resClosure, keysClosure, statsClosure := run(simd.WithPlans(false))
	if resPlan != resClosure || statsPlan != statsClosure || !reflect.DeepEqual(keysPlan, keysClosure) {
		t.Fatalf("shear sort diverged:\nplan    %+v %+v\nclosure %+v %+v", resPlan, statsPlan, resClosure, statsClosure)
	}
	if !resPlan.Sorted {
		t.Fatalf("shear sort failed to sort")
	}
}
