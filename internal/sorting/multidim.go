package sorting

import (
	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
)

// Multi-dimensional shear sort — the naive generalization the paper
// doubts: "Shear sort is one method which does not use divide and
// conquer, but it does not seem that it can be easily extended to
// dimensions greater than 2" (§5). Each round sorts every line along
// every dimension by odd-even transposition; the scanning direction
// of a line along dimension j alternates with the parity of the sum
// of its higher-dimension coordinates (the snake rule, which reduces
// to classical shearsort in 2-D). MultiDimShearRounds measures how
// the number of snake-order inversions evolves round by round, so
// the paper's skepticism can be tested empirically (experiment
// `mdshear`).

// lineAscending is the direction rule for dimension dim.
func lineAscending(m *mesh.Mesh, pe, dim int) bool {
	sum := 0
	for j := dim + 1; j < m.Dims(); j++ {
		sum += m.Coord(pe, j)
	}
	return sum%2 == 0
}

// SortDimension runs a full odd-even transposition pass along dim
// with snake directions (size(dim) phases).
func SortDimension(m *meshsim.Machine, key string, dim int) {
	asc := func(pe int) bool { return lineAscending(m.M, pe, dim) }
	for phase := 0; phase < m.M.Size(dim); phase++ {
		m.CompareExchange(key, dim, phase%2, asc)
	}
}

// SnakeInversions counts inversions of register key with respect to
// the snake order (0 = fully sorted). O(N²).
func SnakeInversions(m *mesh.Mesh, key []int64) int {
	inv := 0
	for a := 0; a < m.Order(); a++ {
		va := key[m.SnakeIDAt(a)]
		for b := a + 1; b < m.Order(); b++ {
			if va > key[m.SnakeIDAt(b)] {
				inv++
			}
		}
	}
	return inv
}

// MultiDimShearRounds runs up to maxRounds rounds (each round: sort
// along every dimension from highest to lowest) and returns the
// snake-order inversion count after each round, stopping early once
// sorted. The returned slice has one entry per executed round.
func MultiDimShearRounds(m *meshsim.Machine, key string, maxRounds int) []int {
	var hist []int
	for r := 0; r < maxRounds; r++ {
		for dim := m.M.Dims() - 1; dim >= 0; dim-- {
			SortDimension(m, key, dim)
		}
		inv := SnakeInversions(m.M, m.Reg(key))
		hist = append(hist, inv)
		if inv == 0 {
			break
		}
	}
	return hist
}
