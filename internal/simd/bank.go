// Register banks: the machine's register memory system.
//
// Registers used to live in a map of independently allocated slices —
// one heap object per register, scattered wherever the allocator put
// them. The bank replaces that with contiguous, cache-line-aligned
// []int64 arenas carved into fixed-stride slots:
//
//   - one slot per register, stride = PE count rounded up to a whole
//     number of 64-byte cache lines, so no two registers ever share a
//     line and sharded writers on aligned PE ranges never false-share
//     across a register boundary;
//   - slots are handed out as three-index subslices (cap == len), so
//     an accidental append can never bleed into the neighboring slot;
//   - arenas are chunked, never reallocated: registers declared after
//     construction (EnsureReg during a run, plan binding on a fresh
//     machine) carve from a new chunk while every previously returned
//     slice — including slices hoisted into hot loops and the
//     handle-resolved slices of bound plans — stays valid. This is
//     the invariant the whole module leans on: Reg/Handle results are
//     stable for the machine's lifetime.
//
// Registers are addressed two ways: by name (Reg, the map lookup) or
// by handle (RegByHandle, an int index into the bank's slot table).
// Plans resolve names to handles once at bind time; every replay
// after that is pure array indexing.
package simd

import "unsafe"

const (
	cacheLineBytes = 64
	// cacheLineWords is the number of int64 register words per cache
	// line — the alignment quantum of slots and shard boundaries.
	cacheLineWords = cacheLineBytes / 8
	// bankChunkRegs is how many register slots one arena chunk holds;
	// machines declaring more registers grow by whole chunks.
	bankChunkRegs = 8
)

// regBank is a machine's register memory: aligned arenas carved into
// fixed-stride slots, indexed by name or by dense handle.
type regBank struct {
	n      int // PE count: payload length of every register
	stride int // slot length: n rounded up to a cache-line multiple
	index  map[string]int
	names  []string
	slices [][]int64 // handle → register slice (len == cap == n)
	chunks [][]int64 // aligned arenas; appended to, never reallocated
	spare  []int64   // uncarved tail of the newest chunk
}

func newRegBank(n int) *regBank {
	stride := (n + cacheLineWords - 1) / cacheLineWords * cacheLineWords
	if stride == 0 {
		stride = cacheLineWords // degenerate empty topology: keep slots distinct
	}
	return &regBank{n: n, stride: stride, index: make(map[string]int)}
}

// alignedWords allocates words int64s whose first element sits on a
// cache-line boundary (Go guarantees 8-byte alignment for []int64;
// the over-allocation buys the remaining 56 bytes).
func alignedWords(words int) []int64 {
	if words == 0 {
		return nil
	}
	raw := make([]int64, words+cacheLineWords-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % cacheLineBytes; rem != 0 {
		off = int((cacheLineBytes - rem) / 8)
	}
	return raw[off : off+words]
}

// add carves a zeroed slot for a new register and returns its handle.
// The caller (Machine.AddReg) is responsible for duplicate checks.
func (b *regBank) add(name string) int {
	if len(b.spare) < b.stride {
		chunk := alignedWords(b.stride * bankChunkRegs)
		b.chunks = append(b.chunks, chunk)
		b.spare = chunk
	}
	slot := b.spare[0:b.n:b.n] // cap == len: appends can never clobber the next slot
	b.spare = b.spare[b.stride:]
	h := len(b.slices)
	b.slices = append(b.slices, slot)
	b.names = append(b.names, name)
	b.index[name] = h
	return h
}

// zero clears every register in place — whole chunks at a time, which
// is one linear memset pass over the arena rather than a pointer
// chase over a map — while keeping every slice and handle valid. This
// is what makes Machine.Reset cheap on pooled machines: capacity is
// preserved, only contents are zeroed.
func (b *regBank) zero() {
	for _, c := range b.chunks {
		clear(c)
	}
}

// words reports the total arena capacity in int64 words (diagnostic;
// tests assert Reset never shrinks or grows it).
func (b *regBank) words() int {
	w := 0
	for _, c := range b.chunks {
		w += len(c)
	}
	return w
}
