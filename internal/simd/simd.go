// Machine state and instructions: registers, masks, unit routes and
// the Stats counters. The package overview lives in doc.go.

package simd

import "fmt"

// Topology is a port-based network: PE pe's port p leads to
// Neighbor(pe, p), or -1 if that port is unconnected (mesh boundary).
type Topology interface {
	Size() int
	Ports() int
	Neighbor(pe, port int) int
}

// PortFunc selects, for each PE, the port to transmit through in a
// SIMD-B unit route; -1 means the PE stays silent.
type PortFunc func(pe int) int

// Stats accumulates the unit-route counts of a machine.
type Stats struct {
	UnitRoutes       int   // total unit routes executed
	ModelA           int   // routes where all PEs used one common port
	ModelB           int   // routes with per-PE port selection
	Sent             int64 // total messages transmitted
	ReceiveConflicts int   // PEs that received >1 message in one route
}

// Machine is an N-PE SIMD computer over a Topology.
type Machine struct {
	topo     Topology
	bank     *regBank
	stats    Stats
	portUses []int64
	exec     Executor
	// scratch buffers reused across routes
	inbox []int64
	// touched marks destinations that received a message in the
	// current route. Between routes every entry is false; instead of
	// an O(n) clear per route, touchedDirty lists the marked entries
	// so they can be reset selectively after delivery. touchedClean
	// records that the selective reset completed (a panicking route
	// leaves it false, forcing the next route to do a full clear).
	touched      []bool
	touchedDirty []int32
	touchedClean bool
	par          *parScratch // parallel-executor scratch, allocated lazily
	pool         *workerPool // persistent parallel workers, started lazily
	// plan state: the recorder active during Record, per-plan register
	// bindings, and the plans-enabled flag (plans are on by default).
	rec      *planRecorder
	bound    map[*Plan]*boundPlan
	plansOff bool
	// collector, when non-nil, receives route/replay events (see
	// collector.go). Survives Reset: it belongs to the machine's
	// owner, not to any one job.
	collector Collector
}

// New builds a machine with no registers. Options select the
// execution engine (default: the sequential reference executor).
func New(topo Topology, opts ...Option) *Machine {
	n := topo.Size()
	m := &Machine{
		topo:         topo,
		bank:         newRegBank(n),
		portUses:     make([]int64, topo.Ports()),
		exec:         Sequential(),
		inbox:        make([]int64, n),
		touched:      make([]bool, n),
		touchedDirty: make([]int32, 0, n),
		touchedClean: true,
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Close releases the machine's persistent worker pool, if one was
// started by a parallel executor. The machine remains usable — a
// later parallel route lazily starts a fresh pool. Close is
// idempotent and a no-op on sequential machines. (An unclosed pool
// is also released when the machine is garbage collected, so Close
// is an optimization for prompt shutdown, not a correctness
// requirement.)
func (m *Machine) Close() {
	if m.pool != nil {
		m.pool.close()
		m.pool = nil
	}
}

// Reset returns the machine to its post-construction state for
// reuse: every declared register is zeroed, Stats and PortUses are
// cleared, and the route scratch is restored to its clean state. The
// expensive amortizable state — topology, compiled-plan bindings,
// parallel scratch and the persistent worker pool — is deliberately
// kept, which is the whole point: a pool of reset machines serves a
// stream of jobs without paying construction again. Reset must not
// be called while the machine is recording a plan.
func (m *Machine) Reset() {
	if m.rec != nil {
		panic("simd: Reset called while recording a plan")
	}
	m.bank.zero()
	m.ResetStats()
	clear(m.touched)
	m.touchedDirty = m.touchedDirty[:0]
	m.touchedClean = true
}

// clearTouched prepares the touched buffer for a new route. The
// previous route's resetTouched normally already cleared every
// marked entry, so the full O(n) sweep runs only after a route that
// panicked before its reset.
func (m *Machine) clearTouched() {
	if !m.touchedClean {
		for i := range m.touched {
			m.touched[i] = false
		}
	}
	m.touchedDirty = m.touchedDirty[:0]
	m.touchedClean = false
}

// resetTouched clears exactly the entries the current route marked.
func (m *Machine) resetTouched() {
	for _, to := range m.touchedDirty {
		m.touched[to] = false
	}
	m.touchedDirty = m.touchedDirty[:0]
	m.touchedClean = true
}

// Executor returns the machine's execution engine.
func (m *Machine) Executor() Executor { return m.exec }

// PortUses returns, per port index, the number of transmissions that
// used it since the last ResetStats — the link-utilization profile
// of the workload (for the star machine, generator usage).
func (m *Machine) PortUses() []int64 {
	return append([]int64(nil), m.portUses...)
}

// Size returns the number of PEs.
func (m *Machine) Size() int { return m.topo.Size() }

// Topology returns the machine's network.
func (m *Machine) Topology() Topology { return m.topo }

// AddReg declares a register, zero-initialized, carving a
// cache-line-aligned slot from the machine's register bank. The
// returned-by-Reg slice stays valid (and in place) for the machine's
// lifetime: later declarations grow the bank by whole chunks and
// never move existing registers.
func (m *Machine) AddReg(name string) {
	if _, ok := m.bank.index[name]; ok {
		panic(fmt.Sprintf("simd: register %q already exists", name))
	}
	m.bank.add(name)
}

// HasReg reports whether a register has been declared.
func (m *Machine) HasReg(name string) bool {
	_, ok := m.bank.index[name]
	return ok
}

// EnsureReg declares a register if it does not already exist.
func (m *Machine) EnsureReg(name string) {
	if !m.HasReg(name) {
		m.AddReg(name)
	}
}

// Reg returns the backing slice of a register (index = PE id). The
// slice is a fixed window into the machine's register bank: len ==
// cap == Size(), stable across EnsureReg growth and across Reset
// (which zeroes contents in place), so hot loops may hoist it.
func (m *Machine) Reg(name string) []int64 {
	h, ok := m.bank.index[name]
	if !ok {
		panic(fmt.Sprintf("simd: unknown register %q", name))
	}
	return m.bank.slices[h]
}

// Handle resolves a register name to its dense bank handle — the
// index plans bind once so replays never pay the name lookup. Panics
// on unknown names (EnsureReg first).
func (m *Machine) Handle(name string) int {
	h, ok := m.bank.index[name]
	if !ok {
		panic(fmt.Sprintf("simd: unknown register %q", name))
	}
	return h
}

// RegByHandle returns the register slice for a handle from Handle.
func (m *Machine) RegByHandle(h int) []int64 { return m.bank.slices[h] }

// NumRegs returns the number of declared registers.
func (m *Machine) NumRegs() int { return len(m.bank.slices) }

// Set performs the intraprocessor assignment reg(i) := fn(i) on
// every PE (fn may close over other registers via Reg). Under a
// parallel executor fn must be pure (see the engine comment).
func (m *Machine) Set(name string, fn func(pe int) int64) {
	r := m.Reg(name)
	m.markImpure()
	m.exec.apply(m, func(pe int) { r[pe] = fn(pe) })
}

// SetMasked assigns reg(i) := fn(i) only where mask(i) holds — the
// paper's "A(i) := …, (f(i) = y)" masked instruction.
func (m *Machine) SetMasked(name string, fn func(pe int) int64, mask func(pe int) bool) {
	r := m.Reg(name)
	m.markImpure()
	m.exec.apply(m, func(pe int) {
		if mask(pe) {
			r[pe] = fn(pe)
		}
	})
}

// Apply runs fn once per PE through the machine's executor — the
// engine-aware way to write per-PE compute loops (compare-exchange
// combines and the like). fn(pe) may read any register and write
// state owned by PE pe; under a parallel executor it runs
// concurrently across shards and must not depend on evaluation
// order.
func (m *Machine) Apply(fn func(pe int)) {
	m.markImpure()
	m.exec.apply(m, fn)
}

// route executes one unit route: every PE with portOf(pe) >= 0
// transmits src(pe) through that port; each receiver stores the
// value into dst. Messages are delivered simultaneously (all reads
// precede all writes). Returns the number of receive conflicts.
func (m *Machine) route(src, dst string, portOf PortFunc, modelA bool) int {
	if m.rec != nil {
		return m.recordRoute(src, dst, portOf, modelA)
	}
	sr := m.Reg(src)
	dr := m.Reg(dst)
	conflicts := m.exec.route(m, sr, dr, portOf)
	m.stats.UnitRoutes++
	if modelA {
		m.stats.ModelA++
	} else {
		m.stats.ModelB++
	}
	m.stats.ReceiveConflicts += conflicts
	if m.collector != nil {
		m.collector.RecordRoutes(1, conflicts)
	}
	return conflicts
}

// RouteA performs a SIMD-A unit route: every PE whose given port is
// connected and selected by mask (nil = all) transmits src through
// that common port. dst(receiver) := src(sender).
func (m *Machine) RouteA(src, dst string, port int, mask func(pe int) bool) int {
	return m.route(src, dst, func(pe int) int {
		if mask != nil && !mask(pe) {
			return -1
		}
		if m.topo.Neighbor(pe, port) < 0 {
			return -1
		}
		return port
	}, true)
}

// RouteB performs a SIMD-B unit route with per-PE port selection.
func (m *Machine) RouteB(src, dst string, portOf PortFunc) int {
	return m.route(src, dst, portOf, false)
}

// Stats returns a copy of the accumulated counters.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (register contents are preserved).
func (m *Machine) ResetStats() {
	m.stats = Stats{}
	for i := range m.portUses {
		m.portUses[i] = 0
	}
}
